file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mixer.dir/bench_ablation_mixer.cpp.o"
  "CMakeFiles/bench_ablation_mixer.dir/bench_ablation_mixer.cpp.o.d"
  "bench_ablation_mixer"
  "bench_ablation_mixer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mixer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
