# Empty dependencies file for bench_ablation_mixer.
# This may be replaced when dependencies are built.
