file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_anneal.dir/bench_ablation_anneal.cpp.o"
  "CMakeFiles/bench_ablation_anneal.dir/bench_ablation_anneal.cpp.o.d"
  "bench_ablation_anneal"
  "bench_ablation_anneal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_anneal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
