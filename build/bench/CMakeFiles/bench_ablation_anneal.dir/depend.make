# Empty dependencies file for bench_ablation_anneal.
# This may be replaced when dependencies are built.
