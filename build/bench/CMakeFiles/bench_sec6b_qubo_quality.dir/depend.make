# Empty dependencies file for bench_sec6b_qubo_quality.
# This may be replaced when dependencies are built.
