file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6b_qubo_quality.dir/bench_sec6b_qubo_quality.cpp.o"
  "CMakeFiles/bench_sec6b_qubo_quality.dir/bench_sec6b_qubo_quality.cpp.o.d"
  "bench_sec6b_qubo_quality"
  "bench_sec6b_qubo_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6b_qubo_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
