
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_complexity.cpp" "bench/CMakeFiles/bench_table1_complexity.dir/bench_table1_complexity.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_complexity.dir/bench_table1_complexity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/nck_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/problems/CMakeFiles/nck_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/nck_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/anneal/CMakeFiles/nck_anneal.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/nck_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/classical/CMakeFiles/nck_classical.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/nck_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/qubo/CMakeFiles/nck_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nck_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nck_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
