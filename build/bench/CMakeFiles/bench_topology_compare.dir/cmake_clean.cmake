file(REMOVE_RECURSE
  "CMakeFiles/bench_topology_compare.dir/bench_topology_compare.cpp.o"
  "CMakeFiles/bench_topology_compare.dir/bench_topology_compare.cpp.o.d"
  "bench_topology_compare"
  "bench_topology_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topology_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
