# Empty dependencies file for bench_topology_compare.
# This may be replaced when dependencies are built.
