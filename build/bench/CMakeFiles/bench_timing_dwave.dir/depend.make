# Empty dependencies file for bench_timing_dwave.
# This may be replaced when dependencies are built.
