file(REMOVE_RECURSE
  "CMakeFiles/bench_timing_dwave.dir/bench_timing_dwave.cpp.o"
  "CMakeFiles/bench_timing_dwave.dir/bench_timing_dwave.cpp.o.d"
  "bench_timing_dwave"
  "bench_timing_dwave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timing_dwave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
