# Empty compiler generated dependencies file for bench_fig10_constraints_depth.
# This may be replaced when dependencies are built.
