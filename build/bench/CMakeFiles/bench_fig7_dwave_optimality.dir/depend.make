# Empty dependencies file for bench_fig7_dwave_optimality.
# This may be replaced when dependencies are built.
