file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_dwave_optimality.dir/bench_fig7_dwave_optimality.cpp.o"
  "CMakeFiles/bench_fig7_dwave_optimality.dir/bench_fig7_dwave_optimality.cpp.o.d"
  "bench_fig7_dwave_optimality"
  "bench_fig7_dwave_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dwave_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
