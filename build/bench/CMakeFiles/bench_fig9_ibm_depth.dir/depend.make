# Empty dependencies file for bench_fig9_ibm_depth.
# This may be replaced when dependencies are built.
