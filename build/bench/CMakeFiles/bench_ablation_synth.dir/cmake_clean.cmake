file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_synth.dir/bench_ablation_synth.cpp.o"
  "CMakeFiles/bench_ablation_synth.dir/bench_ablation_synth.cpp.o.d"
  "bench_ablation_synth"
  "bench_ablation_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
