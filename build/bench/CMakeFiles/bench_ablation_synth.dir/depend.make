# Empty dependencies file for bench_ablation_synth.
# This may be replaced when dependencies are built.
