# Empty compiler generated dependencies file for bench_ablation_qaoa_depth.
# This may be replaced when dependencies are built.
