# Empty compiler generated dependencies file for bench_fig11_qaoa_runtime.
# This may be replaced when dependencies are built.
