file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ibm_qubits.dir/bench_fig8_ibm_qubits.cpp.o"
  "CMakeFiles/bench_fig8_ibm_qubits.dir/bench_fig8_ibm_qubits.cpp.o.d"
  "bench_fig8_ibm_qubits"
  "bench_fig8_ibm_qubits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ibm_qubits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
