# Empty compiler generated dependencies file for bench_fig8_ibm_qubits.
# This may be replaced when dependencies are built.
