# Empty dependencies file for bench_clique_edge_study.
# This may be replaced when dependencies are built.
