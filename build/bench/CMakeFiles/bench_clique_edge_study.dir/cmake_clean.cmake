file(REMOVE_RECURSE
  "CMakeFiles/bench_clique_edge_study.dir/bench_clique_edge_study.cpp.o"
  "CMakeFiles/bench_clique_edge_study.dir/bench_clique_edge_study.cpp.o.d"
  "bench_clique_edge_study"
  "bench_clique_edge_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clique_edge_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
