file(REMOVE_RECURSE
  "../lib/libnck_bench_harness.a"
)
