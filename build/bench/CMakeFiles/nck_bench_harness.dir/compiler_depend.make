# Empty compiler generated dependencies file for nck_bench_harness.
# This may be replaced when dependencies are built.
