file(REMOVE_RECURSE
  "../lib/libnck_bench_harness.a"
  "../lib/libnck_bench_harness.pdb"
  "CMakeFiles/nck_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/nck_bench_harness.dir/harness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nck_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
