# Empty dependencies file for map_coloring_demo.
# This may be replaced when dependencies are built.
