file(REMOVE_RECURSE
  "CMakeFiles/map_coloring_demo.dir/map_coloring_demo.cpp.o"
  "CMakeFiles/map_coloring_demo.dir/map_coloring_demo.cpp.o.d"
  "map_coloring_demo"
  "map_coloring_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_coloring_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
