file(REMOVE_RECURSE
  "CMakeFiles/nck_cli.dir/nck_cli.cpp.o"
  "CMakeFiles/nck_cli.dir/nck_cli.cpp.o.d"
  "nck_cli"
  "nck_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nck_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
