# Empty dependencies file for nck_cli.
# This may be replaced when dependencies are built.
