file(REMOVE_RECURSE
  "CMakeFiles/ksat_demo.dir/ksat_demo.cpp.o"
  "CMakeFiles/ksat_demo.dir/ksat_demo.cpp.o.d"
  "ksat_demo"
  "ksat_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksat_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
