# Empty dependencies file for ksat_demo.
# This may be replaced when dependencies are built.
