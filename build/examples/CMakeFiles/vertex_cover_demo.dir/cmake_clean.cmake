file(REMOVE_RECURSE
  "CMakeFiles/vertex_cover_demo.dir/vertex_cover_demo.cpp.o"
  "CMakeFiles/vertex_cover_demo.dir/vertex_cover_demo.cpp.o.d"
  "vertex_cover_demo"
  "vertex_cover_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertex_cover_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
