# Empty dependencies file for vertex_cover_demo.
# This may be replaced when dependencies are built.
