# Empty dependencies file for max_cut_demo.
# This may be replaced when dependencies are built.
