file(REMOVE_RECURSE
  "CMakeFiles/max_cut_demo.dir/max_cut_demo.cpp.o"
  "CMakeFiles/max_cut_demo.dir/max_cut_demo.cpp.o.d"
  "max_cut_demo"
  "max_cut_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/max_cut_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
