
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/problems/coloring.cpp" "src/problems/CMakeFiles/nck_problems.dir/coloring.cpp.o" "gcc" "src/problems/CMakeFiles/nck_problems.dir/coloring.cpp.o.d"
  "/root/repo/src/problems/cover.cpp" "src/problems/CMakeFiles/nck_problems.dir/cover.cpp.o" "gcc" "src/problems/CMakeFiles/nck_problems.dir/cover.cpp.o.d"
  "/root/repo/src/problems/ksat.cpp" "src/problems/CMakeFiles/nck_problems.dir/ksat.cpp.o" "gcc" "src/problems/CMakeFiles/nck_problems.dir/ksat.cpp.o.d"
  "/root/repo/src/problems/max_cut.cpp" "src/problems/CMakeFiles/nck_problems.dir/max_cut.cpp.o" "gcc" "src/problems/CMakeFiles/nck_problems.dir/max_cut.cpp.o.d"
  "/root/repo/src/problems/vertex_cover.cpp" "src/problems/CMakeFiles/nck_problems.dir/vertex_cover.cpp.o" "gcc" "src/problems/CMakeFiles/nck_problems.dir/vertex_cover.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nck_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/qubo/CMakeFiles/nck_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nck_util.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/nck_synth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
