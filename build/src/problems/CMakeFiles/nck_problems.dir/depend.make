# Empty dependencies file for nck_problems.
# This may be replaced when dependencies are built.
