file(REMOVE_RECURSE
  "CMakeFiles/nck_problems.dir/coloring.cpp.o"
  "CMakeFiles/nck_problems.dir/coloring.cpp.o.d"
  "CMakeFiles/nck_problems.dir/cover.cpp.o"
  "CMakeFiles/nck_problems.dir/cover.cpp.o.d"
  "CMakeFiles/nck_problems.dir/ksat.cpp.o"
  "CMakeFiles/nck_problems.dir/ksat.cpp.o.d"
  "CMakeFiles/nck_problems.dir/max_cut.cpp.o"
  "CMakeFiles/nck_problems.dir/max_cut.cpp.o.d"
  "CMakeFiles/nck_problems.dir/vertex_cover.cpp.o"
  "CMakeFiles/nck_problems.dir/vertex_cover.cpp.o.d"
  "libnck_problems.a"
  "libnck_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nck_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
