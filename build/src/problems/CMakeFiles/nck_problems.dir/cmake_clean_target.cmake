file(REMOVE_RECURSE
  "libnck_problems.a"
)
