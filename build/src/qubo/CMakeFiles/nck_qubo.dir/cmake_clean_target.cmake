file(REMOVE_RECURSE
  "libnck_qubo.a"
)
