
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qubo/brute_force.cpp" "src/qubo/CMakeFiles/nck_qubo.dir/brute_force.cpp.o" "gcc" "src/qubo/CMakeFiles/nck_qubo.dir/brute_force.cpp.o.d"
  "/root/repo/src/qubo/heuristic.cpp" "src/qubo/CMakeFiles/nck_qubo.dir/heuristic.cpp.o" "gcc" "src/qubo/CMakeFiles/nck_qubo.dir/heuristic.cpp.o.d"
  "/root/repo/src/qubo/io.cpp" "src/qubo/CMakeFiles/nck_qubo.dir/io.cpp.o" "gcc" "src/qubo/CMakeFiles/nck_qubo.dir/io.cpp.o.d"
  "/root/repo/src/qubo/ising.cpp" "src/qubo/CMakeFiles/nck_qubo.dir/ising.cpp.o" "gcc" "src/qubo/CMakeFiles/nck_qubo.dir/ising.cpp.o.d"
  "/root/repo/src/qubo/presolve.cpp" "src/qubo/CMakeFiles/nck_qubo.dir/presolve.cpp.o" "gcc" "src/qubo/CMakeFiles/nck_qubo.dir/presolve.cpp.o.d"
  "/root/repo/src/qubo/qubo.cpp" "src/qubo/CMakeFiles/nck_qubo.dir/qubo.cpp.o" "gcc" "src/qubo/CMakeFiles/nck_qubo.dir/qubo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nck_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
