# Empty compiler generated dependencies file for nck_qubo.
# This may be replaced when dependencies are built.
