file(REMOVE_RECURSE
  "CMakeFiles/nck_qubo.dir/brute_force.cpp.o"
  "CMakeFiles/nck_qubo.dir/brute_force.cpp.o.d"
  "CMakeFiles/nck_qubo.dir/heuristic.cpp.o"
  "CMakeFiles/nck_qubo.dir/heuristic.cpp.o.d"
  "CMakeFiles/nck_qubo.dir/io.cpp.o"
  "CMakeFiles/nck_qubo.dir/io.cpp.o.d"
  "CMakeFiles/nck_qubo.dir/ising.cpp.o"
  "CMakeFiles/nck_qubo.dir/ising.cpp.o.d"
  "CMakeFiles/nck_qubo.dir/presolve.cpp.o"
  "CMakeFiles/nck_qubo.dir/presolve.cpp.o.d"
  "CMakeFiles/nck_qubo.dir/qubo.cpp.o"
  "CMakeFiles/nck_qubo.dir/qubo.cpp.o.d"
  "libnck_qubo.a"
  "libnck_qubo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nck_qubo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
