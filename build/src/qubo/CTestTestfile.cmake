# CMake generated Testfile for 
# Source directory: /root/repo/src/qubo
# Build directory: /root/repo/build/src/qubo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
