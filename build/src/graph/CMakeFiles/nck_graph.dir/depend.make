# Empty dependencies file for nck_graph.
# This may be replaced when dependencies are built.
