file(REMOVE_RECURSE
  "CMakeFiles/nck_graph.dir/algorithms.cpp.o"
  "CMakeFiles/nck_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/nck_graph.dir/generators.cpp.o"
  "CMakeFiles/nck_graph.dir/generators.cpp.o.d"
  "CMakeFiles/nck_graph.dir/graph.cpp.o"
  "CMakeFiles/nck_graph.dir/graph.cpp.o.d"
  "libnck_graph.a"
  "libnck_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nck_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
