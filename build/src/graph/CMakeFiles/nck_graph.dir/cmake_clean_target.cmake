file(REMOVE_RECURSE
  "libnck_graph.a"
)
