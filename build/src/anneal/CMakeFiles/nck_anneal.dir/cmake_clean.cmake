file(REMOVE_RECURSE
  "CMakeFiles/nck_anneal.dir/backend.cpp.o"
  "CMakeFiles/nck_anneal.dir/backend.cpp.o.d"
  "CMakeFiles/nck_anneal.dir/embedded_ising.cpp.o"
  "CMakeFiles/nck_anneal.dir/embedded_ising.cpp.o.d"
  "CMakeFiles/nck_anneal.dir/embedding.cpp.o"
  "CMakeFiles/nck_anneal.dir/embedding.cpp.o.d"
  "CMakeFiles/nck_anneal.dir/sampler.cpp.o"
  "CMakeFiles/nck_anneal.dir/sampler.cpp.o.d"
  "CMakeFiles/nck_anneal.dir/topology.cpp.o"
  "CMakeFiles/nck_anneal.dir/topology.cpp.o.d"
  "libnck_anneal.a"
  "libnck_anneal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nck_anneal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
