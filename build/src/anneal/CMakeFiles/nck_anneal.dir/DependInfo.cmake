
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anneal/backend.cpp" "src/anneal/CMakeFiles/nck_anneal.dir/backend.cpp.o" "gcc" "src/anneal/CMakeFiles/nck_anneal.dir/backend.cpp.o.d"
  "/root/repo/src/anneal/embedded_ising.cpp" "src/anneal/CMakeFiles/nck_anneal.dir/embedded_ising.cpp.o" "gcc" "src/anneal/CMakeFiles/nck_anneal.dir/embedded_ising.cpp.o.d"
  "/root/repo/src/anneal/embedding.cpp" "src/anneal/CMakeFiles/nck_anneal.dir/embedding.cpp.o" "gcc" "src/anneal/CMakeFiles/nck_anneal.dir/embedding.cpp.o.d"
  "/root/repo/src/anneal/sampler.cpp" "src/anneal/CMakeFiles/nck_anneal.dir/sampler.cpp.o" "gcc" "src/anneal/CMakeFiles/nck_anneal.dir/sampler.cpp.o.d"
  "/root/repo/src/anneal/topology.cpp" "src/anneal/CMakeFiles/nck_anneal.dir/topology.cpp.o" "gcc" "src/anneal/CMakeFiles/nck_anneal.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qubo/CMakeFiles/nck_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nck_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nck_util.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/nck_synth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
