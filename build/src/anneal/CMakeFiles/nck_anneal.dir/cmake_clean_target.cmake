file(REMOVE_RECURSE
  "libnck_anneal.a"
)
