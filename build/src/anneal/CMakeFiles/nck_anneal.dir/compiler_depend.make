# Empty compiler generated dependencies file for nck_anneal.
# This may be replaced when dependencies are built.
