file(REMOVE_RECURSE
  "libnck_util.a"
)
