file(REMOVE_RECURSE
  "CMakeFiles/nck_util.dir/logging.cpp.o"
  "CMakeFiles/nck_util.dir/logging.cpp.o.d"
  "CMakeFiles/nck_util.dir/rng.cpp.o"
  "CMakeFiles/nck_util.dir/rng.cpp.o.d"
  "CMakeFiles/nck_util.dir/stats.cpp.o"
  "CMakeFiles/nck_util.dir/stats.cpp.o.d"
  "CMakeFiles/nck_util.dir/table.cpp.o"
  "CMakeFiles/nck_util.dir/table.cpp.o.d"
  "libnck_util.a"
  "libnck_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nck_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
