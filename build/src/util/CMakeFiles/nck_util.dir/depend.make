# Empty dependencies file for nck_util.
# This may be replaced when dependencies are built.
