file(REMOVE_RECURSE
  "libnck_classical.a"
)
