file(REMOVE_RECURSE
  "CMakeFiles/nck_classical.dir/exact_solver.cpp.o"
  "CMakeFiles/nck_classical.dir/exact_solver.cpp.o.d"
  "CMakeFiles/nck_classical.dir/z3_backend.cpp.o"
  "CMakeFiles/nck_classical.dir/z3_backend.cpp.o.d"
  "libnck_classical.a"
  "libnck_classical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nck_classical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
