# Empty compiler generated dependencies file for nck_classical.
# This may be replaced when dependencies are built.
