
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classical/exact_solver.cpp" "src/classical/CMakeFiles/nck_classical.dir/exact_solver.cpp.o" "gcc" "src/classical/CMakeFiles/nck_classical.dir/exact_solver.cpp.o.d"
  "/root/repo/src/classical/z3_backend.cpp" "src/classical/CMakeFiles/nck_classical.dir/z3_backend.cpp.o" "gcc" "src/classical/CMakeFiles/nck_classical.dir/z3_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qubo/CMakeFiles/nck_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nck_util.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/nck_synth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
