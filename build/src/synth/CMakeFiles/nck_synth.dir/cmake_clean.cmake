file(REMOVE_RECURSE
  "CMakeFiles/nck_synth.dir/builtin.cpp.o"
  "CMakeFiles/nck_synth.dir/builtin.cpp.o.d"
  "CMakeFiles/nck_synth.dir/engine.cpp.o"
  "CMakeFiles/nck_synth.dir/engine.cpp.o.d"
  "CMakeFiles/nck_synth.dir/lp_synth.cpp.o"
  "CMakeFiles/nck_synth.dir/lp_synth.cpp.o.d"
  "CMakeFiles/nck_synth.dir/pattern.cpp.o"
  "CMakeFiles/nck_synth.dir/pattern.cpp.o.d"
  "CMakeFiles/nck_synth.dir/rational.cpp.o"
  "CMakeFiles/nck_synth.dir/rational.cpp.o.d"
  "CMakeFiles/nck_synth.dir/simplex.cpp.o"
  "CMakeFiles/nck_synth.dir/simplex.cpp.o.d"
  "CMakeFiles/nck_synth.dir/verify.cpp.o"
  "CMakeFiles/nck_synth.dir/verify.cpp.o.d"
  "CMakeFiles/nck_synth.dir/z3_synth.cpp.o"
  "CMakeFiles/nck_synth.dir/z3_synth.cpp.o.d"
  "libnck_synth.a"
  "libnck_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nck_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
