# Empty dependencies file for nck_synth.
# This may be replaced when dependencies are built.
