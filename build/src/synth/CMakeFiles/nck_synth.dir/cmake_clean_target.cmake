file(REMOVE_RECURSE
  "libnck_synth.a"
)
