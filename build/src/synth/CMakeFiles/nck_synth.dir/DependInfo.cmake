
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/builtin.cpp" "src/synth/CMakeFiles/nck_synth.dir/builtin.cpp.o" "gcc" "src/synth/CMakeFiles/nck_synth.dir/builtin.cpp.o.d"
  "/root/repo/src/synth/engine.cpp" "src/synth/CMakeFiles/nck_synth.dir/engine.cpp.o" "gcc" "src/synth/CMakeFiles/nck_synth.dir/engine.cpp.o.d"
  "/root/repo/src/synth/lp_synth.cpp" "src/synth/CMakeFiles/nck_synth.dir/lp_synth.cpp.o" "gcc" "src/synth/CMakeFiles/nck_synth.dir/lp_synth.cpp.o.d"
  "/root/repo/src/synth/pattern.cpp" "src/synth/CMakeFiles/nck_synth.dir/pattern.cpp.o" "gcc" "src/synth/CMakeFiles/nck_synth.dir/pattern.cpp.o.d"
  "/root/repo/src/synth/rational.cpp" "src/synth/CMakeFiles/nck_synth.dir/rational.cpp.o" "gcc" "src/synth/CMakeFiles/nck_synth.dir/rational.cpp.o.d"
  "/root/repo/src/synth/simplex.cpp" "src/synth/CMakeFiles/nck_synth.dir/simplex.cpp.o" "gcc" "src/synth/CMakeFiles/nck_synth.dir/simplex.cpp.o.d"
  "/root/repo/src/synth/verify.cpp" "src/synth/CMakeFiles/nck_synth.dir/verify.cpp.o" "gcc" "src/synth/CMakeFiles/nck_synth.dir/verify.cpp.o.d"
  "/root/repo/src/synth/z3_synth.cpp" "src/synth/CMakeFiles/nck_synth.dir/z3_synth.cpp.o" "gcc" "src/synth/CMakeFiles/nck_synth.dir/z3_synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qubo/CMakeFiles/nck_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nck_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
