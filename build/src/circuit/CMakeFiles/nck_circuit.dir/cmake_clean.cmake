file(REMOVE_RECURSE
  "CMakeFiles/nck_circuit.dir/aoa.cpp.o"
  "CMakeFiles/nck_circuit.dir/aoa.cpp.o.d"
  "CMakeFiles/nck_circuit.dir/backend.cpp.o"
  "CMakeFiles/nck_circuit.dir/backend.cpp.o.d"
  "CMakeFiles/nck_circuit.dir/circuit.cpp.o"
  "CMakeFiles/nck_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/nck_circuit.dir/coupling.cpp.o"
  "CMakeFiles/nck_circuit.dir/coupling.cpp.o.d"
  "CMakeFiles/nck_circuit.dir/optimizer.cpp.o"
  "CMakeFiles/nck_circuit.dir/optimizer.cpp.o.d"
  "CMakeFiles/nck_circuit.dir/qaoa.cpp.o"
  "CMakeFiles/nck_circuit.dir/qaoa.cpp.o.d"
  "CMakeFiles/nck_circuit.dir/statevector.cpp.o"
  "CMakeFiles/nck_circuit.dir/statevector.cpp.o.d"
  "CMakeFiles/nck_circuit.dir/transpiler.cpp.o"
  "CMakeFiles/nck_circuit.dir/transpiler.cpp.o.d"
  "libnck_circuit.a"
  "libnck_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nck_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
