
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/aoa.cpp" "src/circuit/CMakeFiles/nck_circuit.dir/aoa.cpp.o" "gcc" "src/circuit/CMakeFiles/nck_circuit.dir/aoa.cpp.o.d"
  "/root/repo/src/circuit/backend.cpp" "src/circuit/CMakeFiles/nck_circuit.dir/backend.cpp.o" "gcc" "src/circuit/CMakeFiles/nck_circuit.dir/backend.cpp.o.d"
  "/root/repo/src/circuit/circuit.cpp" "src/circuit/CMakeFiles/nck_circuit.dir/circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/nck_circuit.dir/circuit.cpp.o.d"
  "/root/repo/src/circuit/coupling.cpp" "src/circuit/CMakeFiles/nck_circuit.dir/coupling.cpp.o" "gcc" "src/circuit/CMakeFiles/nck_circuit.dir/coupling.cpp.o.d"
  "/root/repo/src/circuit/optimizer.cpp" "src/circuit/CMakeFiles/nck_circuit.dir/optimizer.cpp.o" "gcc" "src/circuit/CMakeFiles/nck_circuit.dir/optimizer.cpp.o.d"
  "/root/repo/src/circuit/qaoa.cpp" "src/circuit/CMakeFiles/nck_circuit.dir/qaoa.cpp.o" "gcc" "src/circuit/CMakeFiles/nck_circuit.dir/qaoa.cpp.o.d"
  "/root/repo/src/circuit/statevector.cpp" "src/circuit/CMakeFiles/nck_circuit.dir/statevector.cpp.o" "gcc" "src/circuit/CMakeFiles/nck_circuit.dir/statevector.cpp.o.d"
  "/root/repo/src/circuit/transpiler.cpp" "src/circuit/CMakeFiles/nck_circuit.dir/transpiler.cpp.o" "gcc" "src/circuit/CMakeFiles/nck_circuit.dir/transpiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nck_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qubo/CMakeFiles/nck_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nck_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nck_util.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/nck_synth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
