# Empty dependencies file for nck_circuit.
# This may be replaced when dependencies are built.
