file(REMOVE_RECURSE
  "libnck_circuit.a"
)
