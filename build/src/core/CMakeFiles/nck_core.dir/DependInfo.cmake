
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compile.cpp" "src/core/CMakeFiles/nck_core.dir/compile.cpp.o" "gcc" "src/core/CMakeFiles/nck_core.dir/compile.cpp.o.d"
  "/root/repo/src/core/constraint.cpp" "src/core/CMakeFiles/nck_core.dir/constraint.cpp.o" "gcc" "src/core/CMakeFiles/nck_core.dir/constraint.cpp.o.d"
  "/root/repo/src/core/env.cpp" "src/core/CMakeFiles/nck_core.dir/env.cpp.o" "gcc" "src/core/CMakeFiles/nck_core.dir/env.cpp.o.d"
  "/root/repo/src/core/parse.cpp" "src/core/CMakeFiles/nck_core.dir/parse.cpp.o" "gcc" "src/core/CMakeFiles/nck_core.dir/parse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/nck_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/qubo/CMakeFiles/nck_qubo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nck_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
