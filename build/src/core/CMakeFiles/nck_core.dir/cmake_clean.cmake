file(REMOVE_RECURSE
  "CMakeFiles/nck_core.dir/compile.cpp.o"
  "CMakeFiles/nck_core.dir/compile.cpp.o.d"
  "CMakeFiles/nck_core.dir/constraint.cpp.o"
  "CMakeFiles/nck_core.dir/constraint.cpp.o.d"
  "CMakeFiles/nck_core.dir/env.cpp.o"
  "CMakeFiles/nck_core.dir/env.cpp.o.d"
  "CMakeFiles/nck_core.dir/parse.cpp.o"
  "CMakeFiles/nck_core.dir/parse.cpp.o.d"
  "libnck_core.a"
  "libnck_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nck_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
