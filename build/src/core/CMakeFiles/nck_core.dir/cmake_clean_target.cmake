file(REMOVE_RECURSE
  "libnck_core.a"
)
