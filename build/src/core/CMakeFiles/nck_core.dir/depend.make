# Empty dependencies file for nck_core.
# This may be replaced when dependencies are built.
