file(REMOVE_RECURSE
  "CMakeFiles/nck_runtime.dir/result.cpp.o"
  "CMakeFiles/nck_runtime.dir/result.cpp.o.d"
  "CMakeFiles/nck_runtime.dir/solver.cpp.o"
  "CMakeFiles/nck_runtime.dir/solver.cpp.o.d"
  "libnck_runtime.a"
  "libnck_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nck_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
