# Empty dependencies file for nck_runtime.
# This may be replaced when dependencies are built.
