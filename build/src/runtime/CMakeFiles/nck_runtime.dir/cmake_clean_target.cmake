file(REMOVE_RECURSE
  "libnck_runtime.a"
)
