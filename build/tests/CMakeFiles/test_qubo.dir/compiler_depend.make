# Empty compiler generated dependencies file for test_qubo.
# This may be replaced when dependencies are built.
