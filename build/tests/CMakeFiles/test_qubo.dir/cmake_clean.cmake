file(REMOVE_RECURSE
  "CMakeFiles/test_qubo.dir/test_qubo.cpp.o"
  "CMakeFiles/test_qubo.dir/test_qubo.cpp.o.d"
  "test_qubo"
  "test_qubo.pdb"
  "test_qubo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qubo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
