file(REMOVE_RECURSE
  "CMakeFiles/test_aoa.dir/test_aoa.cpp.o"
  "CMakeFiles/test_aoa.dir/test_aoa.cpp.o.d"
  "test_aoa"
  "test_aoa.pdb"
  "test_aoa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aoa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
