# Empty dependencies file for test_aoa.
# This may be replaced when dependencies are built.
