# Empty compiler generated dependencies file for test_anneal.
# This may be replaced when dependencies are built.
