# Empty dependencies file for test_transpiler_property.
# This may be replaced when dependencies are built.
