file(REMOVE_RECURSE
  "CMakeFiles/test_transpiler_property.dir/test_transpiler_property.cpp.o"
  "CMakeFiles/test_transpiler_property.dir/test_transpiler_property.cpp.o.d"
  "test_transpiler_property"
  "test_transpiler_property.pdb"
  "test_transpiler_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transpiler_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
