# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_qubo[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_parse[1]_include.cmake")
include("/root/repo/build/tests/test_classical[1]_include.cmake")
include("/root/repo/build/tests/test_anneal[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_aoa[1]_include.cmake")
include("/root/repo/build/tests/test_transpiler_property[1]_include.cmake")
include("/root/repo/build/tests/test_problems[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
