// Section VIII-C reproduction (D-Wave side): QPU access-time breakdown for
// a 100-sample job — ~15 ms programming step, per-sample anneal (20 us) +
// readout (3-4x anneal) + delay (~20 us), sampling total slightly below the
// programming cost, ~30 ms per job overall — plus the client-side costs
// (QUBO compilation, embedding, and the ~40 ms submit preparation).
//
// `--trace=json` additionally captures a full observability trace per
// client-side run and writes them as one machine-readable document to
// BENCH_timing_dwave.json (override the path with --out=<file>) — the
// per-stage timing record future sessions diff for perf trajectories.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "anneal/backend.hpp"
#include "anneal/packed.hpp"
#include "anneal/topology.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "problems/vertex_cover.hpp"
#include "qubo/heuristic.hpp"
#include "qubo/ising.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace nck;

namespace {

/// Before/after sweep-kernel timing at true hardware density: a random
/// +-1 Ising over a Chimera C4 working graph (degree <= 6, the density of
/// the physical programs this bench's jobs run), scalar adjacency-list
/// annealing versus the bit-packed tempering kernel, equal sweep budget.
struct KernelTimings {
  std::size_t num_spins = 0;
  std::size_t num_reads = 0;
  std::size_t num_sweeps = 0;
  double scalar_ms = 0.0;
  double packed_ms = 0.0;
  double speedup = 0.0;
};

KernelTimings chimera_kernel_study() {
  KernelTimings k;
  k.num_reads = 10;
  k.num_sweeps = 1024;

  const Graph g = chimera_graph(4, 4, 4);
  k.num_spins = g.num_vertices();
  Rng gen(2023);
  IsingModel ising;
  ising.h.resize(k.num_spins);
  for (double& h : ising.h) h = gen.uniform(-1.0, 1.0);
  for (const Graph::Edge& e : g.edges()) {
    ising.j.emplace_back(e.first, e.second, gen.bernoulli(0.5) ? 1.0 : -1.0);
  }

  AnnealParams params;
  params.num_sweeps = k.num_sweeps;
  params.beta_initial = 0.05;
  params.beta_final = 6.0;
  Rng scalar_rng(3);
  Timer scalar_timer;
  for (std::size_t r = 0; r < k.num_reads; ++r) {
    const Qubo q = ising_to_qubo(ising);
    anneal_once(q, params, scalar_rng);
  }
  k.scalar_ms = scalar_timer.milliseconds();

  const PackedIsing packed(ising);
  PackedWorkspace workspace(packed);
  workspace.load_clean();
  TemperingOptions options;
  options.num_sweeps = k.num_sweeps;
  Rng packed_rng(3);
  Timer packed_timer;
  for (std::size_t r = 0; r < k.num_reads; ++r) {
    workspace.anneal(options, packed_rng);
  }
  k.packed_ms = packed_timer.milliseconds();
  k.speedup = k.packed_ms > 0.0 ? k.scalar_ms / k.packed_ms : 0.0;
  return k;
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_json = false;
  std::string out_path = "BENCH_timing_dwave.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace=json") {
      emit_json = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_timing_dwave [--trace=json] [--out=<file>]\n";
      return 2;
    }
  }

  std::cout << "=== Section VIII-C: D-Wave timing model ===\n\n";

  const DWaveTimingModel model;
  Table breakdown({"component", "time"});
  breakdown.row().cell("programming").cell(
      format_double(model.programming_us / 1000.0, 2) + " ms");
  breakdown.row().cell("anneal / sample").cell(
      format_double(model.anneal_us, 1) + " us");
  breakdown.row().cell("readout / sample").cell(
      format_double(model.readout_us(), 1) + " us");
  breakdown.row().cell("delay / sample").cell(
      format_double(model.delay_us, 1) + " us");
  breakdown.row().cell("sampling (100 reads)").cell(
      format_double(model.sampling_time_us(100) / 1000.0, 2) + " ms");
  breakdown.row().cell("post-processing").cell(
      format_double(model.postprocess_us / 1000.0, 2) + " ms");
  breakdown.row().cell("total QPU access (100 reads)").cell(
      format_double(model.qpu_access_time_us(100) / 1000.0, 2) + " ms");
  breakdown.print(std::cout);

  std::cout << "\nPaper: jobs spent ~30 ms apiece on the Advantage system; "
               "sampling for 100 reads\ncosts slightly less than the "
               "programming step. Both hold above.\n";

  // Client-side: compile + embed wall times for a few problem sizes.
  std::cout << "\n=== Client-side costs ===\n\n";
  Rng device_rng(2022);
  const Device device = advantage_4_1(device_rng);
  Rng rng(13);
  Table client({"problem", "nck-vars", "compile(ms)", "embed(ms)",
                "qpu-total(ms)"});
  std::vector<std::pair<std::string, obs::TraceData>> traces;
  for (std::size_t n : {9u, 18u, 27u}) {
    const std::string label = "min-vertex-cover " + std::to_string(n) + "v";
    const VertexCoverProblem problem{vertex_scaling_graph(n)};
    const Env env = problem.encode();
    SynthEngine engine;  // fresh engine: includes first-pattern synthesis
    AnnealBackendOptions options;
    options.sampler.num_reads = 100;
    obs::Trace trace;
    const AnnealOutcome outcome =
        run_annealer(env, device, engine, rng, options, &trace);
    if (emit_json) traces.emplace_back(label, trace.snapshot());
    if (!outcome.embedded) continue;
    client.row()
        .cell(label)
        .cell(env.num_vars())
        .cell(outcome.timing.client_compile_ms, 2)
        .cell(outcome.timing.client_embed_ms, 2)
        .cell(outcome.timing.total_us / 1000.0, 2);
  }
  client.print(std::cout);

  // Sweep-kernel before/after at hardware density.
  std::cout << "\n=== Annealing kernel (Chimera C4 density) ===\n\n";
  const KernelTimings kernel = chimera_kernel_study();
  Table kernel_table({"kernel", "wall(ms)", "speedup"});
  kernel_table.row()
      .cell("scalar per-read (old sampler path)")
      .cell(kernel.scalar_ms, 2)
      .cell("1.00x");
  kernel_table.row()
      .cell("packed tempering (anneal/packed.hpp)")
      .cell(kernel.packed_ms, 2)
      .cell(format_double(kernel.speedup, 2) + "x");
  kernel_table.print(std::cout);
  std::cout << "\n(" << kernel.num_reads << " reads x " << kernel.num_sweeps
            << " sweeps, " << kernel.num_spins << "-qubit Chimera program)\n";

  if (emit_json) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "bench_timing_dwave: cannot write " << out_path << "\n";
      return 1;
    }
    out << "{\"bench\":\"timing_dwave\",\"runs\":[";
    for (std::size_t i = 0; i < traces.size(); ++i) {
      if (i) out << ",";
      out << "{\"label\":\"" << traces[i].first << "\",\"trace\":";
      obs::write_trace(out, traces[i].second);
      out << "}";
    }
    out << "],\"kernel\":{\"num_spins\":" << kernel.num_spins
        << ",\"num_reads\":" << kernel.num_reads
        << ",\"num_sweeps\":" << kernel.num_sweeps
        << ",\"scalar_ms\":" << kernel.scalar_ms
        << ",\"packed_ms\":" << kernel.packed_ms
        << ",\"speedup\":" << kernel.speedup << "}}\n";
    std::cout << "\nwrote " << traces.size() << " trace(s) to " << out_path
              << "\n";
  }
  return 0;
}
