// Section VIII-C reproduction (D-Wave side): QPU access-time breakdown for
// a 100-sample job — ~15 ms programming step, per-sample anneal (20 us) +
// readout (3-4x anneal) + delay (~20 us), sampling total slightly below the
// programming cost, ~30 ms per job overall — plus the client-side costs
// (QUBO compilation, embedding, and the ~40 ms submit preparation).
//
// `--trace=json` additionally captures a full observability trace per
// client-side run and writes them as one machine-readable document to
// BENCH_timing_dwave.json (override the path with --out=<file>) — the
// per-stage timing record future sessions diff for perf trajectories.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "anneal/backend.hpp"
#include "anneal/topology.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "problems/vertex_cover.hpp"
#include "util/table.hpp"

using namespace nck;

int main(int argc, char** argv) {
  bool emit_json = false;
  std::string out_path = "BENCH_timing_dwave.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace=json") {
      emit_json = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_timing_dwave [--trace=json] [--out=<file>]\n";
      return 2;
    }
  }

  std::cout << "=== Section VIII-C: D-Wave timing model ===\n\n";

  const DWaveTimingModel model;
  Table breakdown({"component", "time"});
  breakdown.row().cell("programming").cell(
      format_double(model.programming_us / 1000.0, 2) + " ms");
  breakdown.row().cell("anneal / sample").cell(
      format_double(model.anneal_us, 1) + " us");
  breakdown.row().cell("readout / sample").cell(
      format_double(model.readout_us(), 1) + " us");
  breakdown.row().cell("delay / sample").cell(
      format_double(model.delay_us, 1) + " us");
  breakdown.row().cell("sampling (100 reads)").cell(
      format_double(model.sampling_time_us(100) / 1000.0, 2) + " ms");
  breakdown.row().cell("post-processing").cell(
      format_double(model.postprocess_us / 1000.0, 2) + " ms");
  breakdown.row().cell("total QPU access (100 reads)").cell(
      format_double(model.qpu_access_time_us(100) / 1000.0, 2) + " ms");
  breakdown.print(std::cout);

  std::cout << "\nPaper: jobs spent ~30 ms apiece on the Advantage system; "
               "sampling for 100 reads\ncosts slightly less than the "
               "programming step. Both hold above.\n";

  // Client-side: compile + embed wall times for a few problem sizes.
  std::cout << "\n=== Client-side costs ===\n\n";
  Rng device_rng(2022);
  const Device device = advantage_4_1(device_rng);
  Rng rng(13);
  Table client({"problem", "nck-vars", "compile(ms)", "embed(ms)",
                "qpu-total(ms)"});
  std::vector<std::pair<std::string, obs::TraceData>> traces;
  for (std::size_t n : {9u, 18u, 27u}) {
    const std::string label = "min-vertex-cover " + std::to_string(n) + "v";
    const VertexCoverProblem problem{vertex_scaling_graph(n)};
    const Env env = problem.encode();
    SynthEngine engine;  // fresh engine: includes first-pattern synthesis
    AnnealBackendOptions options;
    options.sampler.num_reads = 100;
    obs::Trace trace;
    const AnnealOutcome outcome =
        run_annealer(env, device, engine, rng, options, &trace);
    if (emit_json) traces.emplace_back(label, trace.snapshot());
    if (!outcome.embedded) continue;
    client.row()
        .cell(label)
        .cell(env.num_vars())
        .cell(outcome.timing.client_compile_ms, 2)
        .cell(outcome.timing.client_embed_ms, 2)
        .cell(outcome.timing.total_us / 1000.0, 2);
  }
  client.print(std::cout);

  if (emit_json) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "bench_timing_dwave: cannot write " << out_path << "\n";
      return 1;
    }
    out << "{\"bench\":\"timing_dwave\",\"runs\":[";
    for (std::size_t i = 0; i < traces.size(); ++i) {
      if (i) out << ",";
      out << "{\"label\":\"" << traces[i].first << "\",\"trace\":";
      obs::write_trace(out, traces[i].second);
      out << "}";
    }
    out << "]}\n";
    std::cout << "\nwrote " << traces.size() << " trace(s) to " << out_path
              << "\n";
  }
  return 0;
}
