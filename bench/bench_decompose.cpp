// Decomposition study: breaking the 65-variable device ceiling with the
// qbsolv-style large-neighborhood pipeline (DESIGN.md §3i).
//
// The workload is the chained set-cover instance from problems/cover:
// disjoint blocks with straddler subsets across every block boundary, so
// the interaction graph is one connected component far past the device cap
// while the minimum cover stays provable by counting (== num_blocks). The
// program solves end-to-end on the annealer backend with the per-sub-QUBO
// cap at Brooklyn's 65 variables; the report's round stats record the
// incumbent's energy trajectory and the sub-plan cache traffic (iterated
// rounds re-solve unchanged neighborhoods straight from the cache).
//
// Writes BENCH_decompose.json (override with --out=<file>).
#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "problems/cover.hpp"
#include "runtime/solver.hpp"
#include "util/table.hpp"

using namespace nck;

int main(int argc, char** argv) {
  std::string out_path = "BENCH_decompose.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_decompose [--out=<file>]\n";
      return 2;
    }
  }

  // 41 blocks x 8 elements with full/half alternatives and 2 straddlers
  // per boundary: 328 elements, 203 subset variables, one connected
  // interaction component, minimum cover provably 41 (the full blocks) —
  // see chained_set_system.
  constexpr std::size_t kBlocks = 41;
  const MinSetCoverProblem problem{chained_set_system(kBlocks, 8, 2, 4)};
  const Env env = problem.encode();

  Solver solver(7);
  solver.solve_options().decompose.enabled = true;

  const auto start = std::chrono::steady_clock::now();
  const SolveReport report = solver.solve(env, BackendKind::kAnnealer);
  const auto stop = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();

  if (!report.ran) {
    std::cerr << "bench_decompose: solve failed: " << report.failure_message()
              << "\n";
    return 1;
  }
  if (!report.decompose) {
    std::cerr << "bench_decompose: decompose stage never engaged\n";
    return 1;
  }
  const decompose::DecomposeSummary& sum = *report.decompose;

  const bool covered = problem.verify(report.best_assignment);
  const std::size_t cover = problem.cover_size(report.best_assignment);

  std::cout << "=== Decompose: " << env.num_vars()
            << "-variable set cover on the annealer ===\n\n";
  std::cout << "partition: " << sum.subproblems << " subproblems over "
            << sum.num_vars << " variables (" << sum.components
            << " interaction component" << (sum.components == 1 ? "" : "s")
            << "), cap 65\n";
  std::cout << "rounds: " << sum.rounds
            << (sum.converged ? " (converged)" : " (budget bound)")
            << ", wall " << wall_ms << " ms\n\n";

  Table table({"round", "hard_violated", "soft_satisfied", "improved",
               "ran", "cache_hits", "cache_misses"});
  for (const decompose::RoundStats& rs : sum.round_stats) {
    table.row()
        .cell(static_cast<double>(rs.round), 0)
        .cell(static_cast<double>(rs.hard_violated), 0)
        .cell(static_cast<double>(rs.soft_satisfied), 0)
        .cell(static_cast<double>(rs.improved), 0)
        .cell(static_cast<double>(rs.subproblems_ran), 0)
        .cell(static_cast<double>(rs.cache_hits), 0)
        .cell(static_cast<double>(rs.cache_misses), 0);
  }
  table.print(std::cout);

  std::cout << "\ncover: size " << cover << " (provable optimum " << kBlocks
            << "), " << (covered ? "valid" : "INVALID") << ", quality "
            << quality_name(report.best_quality) << "\n";

  // Sub-plan cache hit rate over the *iterated* rounds (round 1 is the cold
  // fill): an unimproved neighborhood re-clamps to the identical boundary
  // and must come straight from the cache.
  std::size_t later_hits = 0, later_misses = 0;
  for (std::size_t r = 1; r < sum.round_stats.size(); ++r) {
    later_hits += sum.round_stats[r].cache_hits;
    later_misses += sum.round_stats[r].cache_misses;
  }
  const double hit_rate =
      later_hits + later_misses > 0
          ? static_cast<double>(later_hits) /
                static_cast<double>(later_hits + later_misses)
          : 0.0;
  std::cout << "iterated-round cache: " << later_hits << " hits, "
            << later_misses << " misses (rate " << hit_rate << ")\n";

  bool ok = true;
  if (!covered) {
    std::cerr << "bench_decompose: stitched assignment is not a cover\n";
    ok = false;
  }
  if (cover != kBlocks) {
    std::cerr << "bench_decompose: cover size " << cover
              << " missed the provable optimum " << kBlocks << "\n";
    ok = false;
  }
  if (sum.rounds >= 2 && later_hits == 0) {
    std::cerr << "bench_decompose: iterated rounds never hit the sub-plan "
                 "cache\n";
    ok = false;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_decompose: cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\"bench\":\"decompose\",\"num_vars\":" << sum.num_vars
      << ",\"subproblems\":" << sum.subproblems
      << ",\"components\":" << sum.components << ",\"rounds\":" << sum.rounds
      << ",\"converged\":" << (sum.converged ? "true" : "false")
      << ",\"truth_exact\":" << (sum.truth_exact ? "true" : "false")
      << ",\"cover_size\":" << cover << ",\"optimal_cover\":" << kBlocks
      << ",\"valid_cover\":" << (covered ? "true" : "false")
      << ",\"wall_ms\":" << wall_ms << ",\"cache_hit_rate\":" << hit_rate
      << ",\"round_stats\":[";
  for (std::size_t r = 0; r < sum.round_stats.size(); ++r) {
    const decompose::RoundStats& rs = sum.round_stats[r];
    out << (r ? "," : "") << "{\"round\":" << rs.round
        << ",\"hard_violated\":" << rs.hard_violated
        << ",\"soft_satisfied\":" << rs.soft_satisfied
        << ",\"improved\":" << rs.improved
        << ",\"subproblems_ran\":" << rs.subproblems_ran
        << ",\"cache_hits\":" << rs.cache_hits
        << ",\"cache_misses\":" << rs.cache_misses << "}";
  }
  out << "]}\n";
  std::cout << "wrote " << out_path << "\n";
  return ok ? 0 : 1;
}
