// Batch-solver study: what the shared plan cache and the SolverPool's
// thread pool buy on a sweep of distinct programs.
//
// Two measurements over one 16-program batch (annealer backend, where
// prepare = QUBO synthesis + minor embedding dominates a small-read
// sample budget):
//
//   cold vs warm   the same pool solves the batch twice; the second pass
//                  serves every plan from the cache and should beat the
//                  first by well over 1.5x;
//   thread scaling the cold batch on fresh pools with 1, 4, and 8
//                  workers; tasks are independent, so 1 -> 4 should be
//                  near-linear.
//
// Writes BENCH_batch.json (override with --out=<file>); CI validates the
// JSON and checks the cold/warm speedup floor.
#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "problems/max_cut.hpp"
#include "problems/vertex_cover.hpp"
#include "runtime/pool.hpp"
#include "util/table.hpp"

using namespace nck;

namespace {

/// 16 structurally distinct programs: every task needs its own synthesis
/// and embedding, so a cold batch is 16 prepares and a warm batch is 0.
/// Dense graphs on purpose — complete-graph QUBOs need chain-heavy minor
/// embeddings, the expensive prepare work the cache exists to amortize.
std::vector<Env> batch_programs() {
  std::vector<Env> envs;
  for (std::size_t n = 6; n < 14; ++n) {
    envs.push_back(MaxCutProblem{complete_graph(n)}.encode());
    envs.push_back(
        VertexCoverProblem{circulant_graph(n + 4, std::size_t{4})}.encode());
  }
  return envs;
}

PoolOptions pool_options(std::size_t threads) {
  PoolOptions options;
  options.num_threads = threads;
  // Small sample budget: keeps execute cheap so prepare (the cacheable
  // part) dominates, which is the regime batch pipelines run in.
  options.annealer.sampler.num_reads = 20;
  options.annealer.sampler.num_sweeps = 128;
  return options;
}

double solve_batch_ms(SolverPool& pool, const std::vector<Env>& envs) {
  const auto start = std::chrono::steady_clock::now();
  const BatchReport report = pool.solve_all(envs, BackendKind::kAnnealer);
  const auto stop = std::chrono::steady_clock::now();
  std::size_t solved = report.solved();
  if (solved != envs.size()) {
    std::cerr << "bench_batch: only " << solved << "/" << envs.size()
              << " tasks solved\n";
  }
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_batch.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_batch [--out=<file>]\n";
      return 2;
    }
  }

  const std::vector<Env> envs = batch_programs();
  std::cout << "=== Batch solver: plan cache + thread scaling ===\n\n";
  std::cout << "batch: " << envs.size()
            << " distinct programs, annealer backend, 20 reads/task\n\n";

  // --- cold vs warm on one 4-worker pool --------------------------------
  SolverPool pool(pool_options(4));
  const double cold_ms = solve_batch_ms(pool, envs);
  // Best of three warm passes: the cache is already hot, so repetition
  // only strips scheduler noise from the measurement.
  double warm_ms = solve_batch_ms(pool, envs);
  for (int rep = 0; rep < 2; ++rep) {
    const double ms = solve_batch_ms(pool, envs);
    if (ms < warm_ms) warm_ms = ms;
  }
  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  const backend::PlanCacheStats cache = pool.plan_cache().stats();

  Table cache_table({"pass", "wall(ms)", "speedup"});
  cache_table.row().cell("cold (16 prepares)").cell(cold_ms, 2).cell("1.00x");
  cache_table.row().cell("warm (all cached)").cell(warm_ms, 2).cell(
      format_double(speedup, 2) + "x");
  cache_table.print(std::cout);
  std::cout << "\nplan cache: " << cache.hits << " hits, " << cache.misses
            << " misses, " << cache.bytes << " bytes\n\n";

  // --- cold-batch thread scaling on fresh pools -------------------------
  const std::size_t thread_counts[] = {1, 4, 8};
  std::vector<double> scaling_ms;
  for (std::size_t t : thread_counts) {
    SolverPool fresh(pool_options(t));
    scaling_ms.push_back(solve_batch_ms(fresh, envs));
  }
  Table scaling({"threads", "wall(ms)", "speedup vs 1"});
  for (std::size_t i = 0; i < scaling_ms.size(); ++i) {
    scaling.row()
        .cell(thread_counts[i])
        .cell(scaling_ms[i], 2)
        .cell(format_double(scaling_ms[0] / scaling_ms[i], 2) + "x");
  }
  scaling.print(std::cout);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_batch: cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\"bench\":\"batch\",\"tasks\":" << envs.size()
      << ",\"backend\":\"annealer\",\"reads_per_task\":20"
      << ",\"cold_ms\":" << cold_ms << ",\"warm_ms\":" << warm_ms
      << ",\"speedup_cold_over_warm\":" << speedup << ",\"cache\":{\"hits\":"
      << cache.hits << ",\"misses\":" << cache.misses << ",\"evictions\":"
      << cache.evictions << ",\"bytes\":" << cache.bytes << "},\"scaling\":[";
  for (std::size_t i = 0; i < scaling_ms.size(); ++i) {
    if (i) out << ",";
    out << "{\"threads\":" << thread_counts[i] << ",\"ms\":" << scaling_ms[i]
        << ",\"speedup_vs_1\":" << scaling_ms[0] / scaling_ms[i] << "}";
  }
  out << "]}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
