// Batch-solver study: what the shared plan cache and the SolverPool's
// thread pool buy on a sweep of distinct programs.
//
// Two measurements over one 16-program batch (annealer backend, where
// prepare = QUBO synthesis + minor embedding dominates a small-read
// sample budget):
//
//   cold vs warm   the same pool solves the batch twice; the second pass
//                  serves every plan from the cache and should beat the
//                  first by well over 1.5x;
//   thread scaling the cold batch on fresh pools with 1, 4, and 8
//                  workers; tasks are independent, so 1 -> 4 should be
//                  near-linear.
//
// Writes BENCH_batch.json (override with --out=<file>); CI validates the
// JSON and checks the cold/warm speedup floor.
#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "anneal/packed.hpp"
#include "graph/generators.hpp"
#include "problems/max_cut.hpp"
#include "problems/vertex_cover.hpp"
#include "qubo/heuristic.hpp"
#include "qubo/ising.hpp"
#include "runtime/pool.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace nck;

namespace {

/// 16 structurally distinct programs: every task needs its own synthesis
/// and embedding, so a cold batch is 16 prepares and a warm batch is 0.
/// Dense graphs on purpose — complete-graph QUBOs need chain-heavy minor
/// embeddings, the expensive prepare work the cache exists to amortize.
std::vector<Env> batch_programs() {
  std::vector<Env> envs;
  for (std::size_t n = 6; n < 14; ++n) {
    envs.push_back(MaxCutProblem{complete_graph(n)}.encode());
    envs.push_back(
        VertexCoverProblem{circulant_graph(n + 4, std::size_t{4})}.encode());
  }
  return envs;
}

PoolOptions pool_options(std::size_t threads) {
  PoolOptions options;
  options.num_threads = threads;
  // Small sample budget: keeps execute cheap so prepare (the cacheable
  // part) dominates, which is the regime batch pipelines run in.
  options.annealer.sampler.num_reads = 20;
  options.annealer.sampler.num_sweeps = 128;
  return options;
}

double solve_batch_ms(SolverPool& pool, const std::vector<Env>& envs) {
  const auto start = std::chrono::steady_clock::now();
  const BatchReport report = pool.solve_all(envs, BackendKind::kAnnealer);
  const auto stop = std::chrono::steady_clock::now();
  std::size_t solved = report.solved();
  if (solved != envs.size()) {
    std::cerr << "bench_batch: only " << solved << "/" << envs.size()
              << " tasks solved\n";
  }
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// Before/after timing of the annealing hot loop itself: the retired scalar
/// per-read path (QUBO conversion + adjacency-list Metropolis, what
/// sample_annealer ran before the packed kernel) against the bit-packed
/// parallel-tempering kernel, on an embedded-problem-density random Ising
/// with an equal total sweep budget per read.
struct KernelTimings {
  std::string label;
  std::size_t num_spins = 0;
  std::size_t num_reads = 0;
  std::size_t num_sweeps = 0;
  double scalar_ms = 0.0;
  double packed_ms = 0.0;
  double speedup = 0.0;
};

KernelTimings kernel_study(const std::string& label, const Graph& g) {
  KernelTimings k;
  k.label = label;
  k.num_spins = g.num_vertices();
  k.num_reads = 20;
  k.num_sweeps = 1024;

  Rng gen(99);
  IsingModel ising;
  ising.h.resize(k.num_spins);
  for (double& h : ising.h) h = gen.uniform(-1.0, 1.0);
  for (const Graph::Edge& e : g.edges()) {
    ising.j.emplace_back(e.first, e.second, gen.uniform(-1.0, 1.0));
  }

  // Scalar "before": per read, convert to QUBO and run the adjacency-list
  // annealer — exactly what each sampler read used to cost.
  AnnealParams params;
  params.num_sweeps = k.num_sweeps;
  params.beta_initial = 0.05;
  params.beta_final = 6.0;
  Rng scalar_rng(7);
  Timer scalar_timer;
  double scalar_best = 0.0;
  for (std::size_t r = 0; r < k.num_reads; ++r) {
    const Qubo q = ising_to_qubo(ising);
    const Sample s = anneal_once(q, params, scalar_rng);
    if (r == 0 || s.energy < scalar_best) scalar_best = s.energy;
  }
  k.scalar_ms = scalar_timer.milliseconds();

  // Packed "after": the CSR program is built once per problem (as in
  // sample_annealer) and each read reuses a workspace.
  const PackedIsing packed(ising);
  PackedWorkspace workspace(packed);
  workspace.load_clean();
  TemperingOptions options;
  options.num_sweeps = k.num_sweeps;
  Rng packed_rng(7);
  Timer packed_timer;
  double packed_best = 0.0;
  for (std::size_t r = 0; r < k.num_reads; ++r) {
    const PackedState& state = workspace.anneal(options, packed_rng);
    if (r == 0 || state.energy < packed_best) packed_best = state.energy;
  }
  k.packed_ms = packed_timer.milliseconds();
  k.speedup = k.packed_ms > 0.0 ? k.scalar_ms / k.packed_ms : 0.0;

  // Sanity line (offset is zero, so QUBO and packed energies compare 1:1).
  std::cout << "kernel [" << label << "]: best energy scalar " << scalar_best
            << " vs packed " << packed_best << "\n";
  return k;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_batch.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_batch [--out=<file>]\n";
      return 2;
    }
  }

  const std::vector<Env> envs = batch_programs();
  std::cout << "=== Batch solver: plan cache + thread scaling ===\n\n";
  std::cout << "batch: " << envs.size()
            << " distinct programs, annealer backend, 20 reads/task\n\n";

  // --- cold vs warm on one 4-worker pool --------------------------------
  SolverPool pool(pool_options(4));
  const double cold_ms = solve_batch_ms(pool, envs);
  // Best of three warm passes: the cache is already hot, so repetition
  // only strips scheduler noise from the measurement.
  double warm_ms = solve_batch_ms(pool, envs);
  for (int rep = 0; rep < 2; ++rep) {
    const double ms = solve_batch_ms(pool, envs);
    if (ms < warm_ms) warm_ms = ms;
  }
  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  const backend::PlanCacheStats cache = pool.plan_cache().stats();

  Table cache_table({"pass", "wall(ms)", "speedup"});
  cache_table.row().cell("cold (16 prepares)").cell(cold_ms, 2).cell("1.00x");
  cache_table.row().cell("warm (all cached)").cell(warm_ms, 2).cell(
      format_double(speedup, 2) + "x");
  cache_table.print(std::cout);
  std::cout << "\nplan cache: " << cache.hits << " hits, " << cache.misses
            << " misses, " << cache.bytes << " bytes\n\n";

  // --- cold-batch thread scaling on fresh pools -------------------------
  const std::size_t thread_counts[] = {1, 4, 8};
  std::vector<double> scaling_ms;
  for (std::size_t t : thread_counts) {
    SolverPool fresh(pool_options(t));
    scaling_ms.push_back(solve_batch_ms(fresh, envs));
  }
  Table scaling({"threads", "wall(ms)", "speedup vs 1"});
  for (std::size_t i = 0; i < scaling_ms.size(); ++i) {
    scaling.row()
        .cell(thread_counts[i])
        .cell(scaling_ms[i], 2)
        .cell(format_double(scaling_ms[0] / scaling_ms[i], 2) + "x");
  }
  scaling.print(std::cout);

  // --- annealing kernel: scalar adjacency loop vs packed tempering ------
  // Two density regimes: a degree-12 circulant at embedded-problem density
  // (chain-heavy minor embeddings on Pegasus have physical degree <= 15),
  // and a complete graph at logical density (NchooseK constraint blocks are
  // cliques, the regime the heuristic solver and boltzmann surrogate run).
  std::cout << "\n=== Annealing kernel: scalar vs bit-packed ===\n\n";
  const std::vector<KernelTimings> kernels = {
      kernel_study("embedded-density", circulant_graph(128, std::size_t{12})),
      kernel_study("logical-clique", complete_graph(96)),
  };
  Table kernel_table({"problem", "scalar(ms)", "packed(ms)", "speedup"});
  for (const KernelTimings& k : kernels) {
    kernel_table.row()
        .cell(k.label)
        .cell(k.scalar_ms, 2)
        .cell(k.packed_ms, 2)
        .cell(format_double(k.speedup, 2) + "x");
  }
  kernel_table.print(std::cout);
  std::cout << "\n(per problem: " << kernels[0].num_reads << " reads x "
            << kernels[0].num_sweeps
            << " total sweeps, equal budget both kernels)\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_batch: cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\"bench\":\"batch\",\"tasks\":" << envs.size()
      << ",\"backend\":\"annealer\",\"reads_per_task\":20"
      << ",\"cold_ms\":" << cold_ms << ",\"warm_ms\":" << warm_ms
      << ",\"speedup_cold_over_warm\":" << speedup << ",\"cache\":{\"hits\":"
      << cache.hits << ",\"misses\":" << cache.misses << ",\"evictions\":"
      << cache.evictions << ",\"bytes\":" << cache.bytes << "},\"scaling\":[";
  for (std::size_t i = 0; i < scaling_ms.size(); ++i) {
    if (i) out << ",";
    out << "{\"threads\":" << thread_counts[i] << ",\"ms\":" << scaling_ms[i]
        << ",\"speedup_vs_1\":" << scaling_ms[0] / scaling_ms[i] << "}";
  }
  out << "],\"kernel\":[";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelTimings& k = kernels[i];
    if (i) out << ",";
    out << "{\"problem\":\"" << k.label << "\",\"num_spins\":" << k.num_spins
        << ",\"num_reads\":" << k.num_reads
        << ",\"num_sweeps\":" << k.num_sweeps
        << ",\"scalar_ms\":" << k.scalar_ms << ",\"packed_ms\":" << k.packed_ms
        << ",\"speedup\":" << k.speedup << "}";
  }
  out << "]}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
