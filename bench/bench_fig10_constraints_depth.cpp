// Fig 10 reproduction: number of NchooseK constraints (x) versus transpiled
// circuit depth (y) per problem type. Pure transpilation — no sampling — so
// the sweep extends to the full 65-qubit ceiling quickly. Expected shape:
// depth grows with constraints at problem-specific rates, with occasional
// non-monotonicity (the paper's vertex-cover example: 30 vars / 82
// constraints needed depth 245 while 33 vars / 90 constraints needed 199 —
// layout/routing luck matters).
#include <iostream>

#include "circuit/coupling.hpp"
#include "circuit/qaoa.hpp"
#include "circuit/transpiler.hpp"
#include "core/compile.hpp"
#include "harness.hpp"
#include "qubo/ising.hpp"
#include "util/table.hpp"

using namespace nck;
using nck::bench::Instance;

int main() {
  std::cout << "=== Fig 10: constraints vs circuit depth (transpile only) "
               "===\n\n";
  const Graph coupling = brooklyn_coupling();
  SynthEngine engine;

  Table table({"problem", "size", "constraints", "nck-vars", "qubits", "depth",
               "cx", "swaps"});
  for (Instance& inst : bench::all_instances(33, 24, 16)) {
    const CompiledQubo cq = compile(inst.env, engine);
    if (cq.num_qubo_vars() > coupling.num_vertices()) continue;
    const IsingModel ising = qubo_to_ising(cq.qubo);
    const Circuit logical =
        build_qaoa_circuit(ising, std::vector<double>{0.5, 0.5});
    const auto result = transpile(logical, coupling);
    if (!result) continue;
    table.row()
        .cell(inst.problem)
        .cell(inst.label)
        .cell(inst.env.num_constraints())
        .cell(inst.env.num_vars())
        .cell(cq.num_qubo_vars())
        .cell(result->depth)
        .cell(result->cx_count)
        .cell(result->swap_count);
  }
  table.print(std::cout);
  return 0;
}
