// Table I reproduction: per problem, the number of non-symmetric constraint
// classes, total NchooseK constraints, and the number of terms of the
// direct (handcrafted) QUBO formulation, measured from actual encodings at
// several sizes. The paper's claims to check:
//   * non-symmetric classes are constant (1-2) for the graph problems,
//     O(n) for the cover problems, and <= k+1 for repeated-variable k-SAT;
//   * NchooseK constraint counts match the closed forms of Table I;
//   * handcrafted QUBO term counts grow at least as fast, often a
//     polynomial order faster (exact cover, k-SAT, map coloring).
#include <iostream>
#include <set>

#include "graph/generators.hpp"
#include "problems/coloring.hpp"
#include "problems/cover.hpp"
#include "problems/ksat.hpp"
#include "problems/max_cut.hpp"
#include "problems/vertex_cover.hpp"
#include "util/table.hpp"

using namespace nck;

namespace {

void add_row(Table& table, const std::string& problem, const std::string& cls,
             const std::string& size, const Env& env, const Qubo& handcrafted) {
  table.row()
      .cell(problem)
      .cell(cls)
      .cell(size)
      .cell(env.num_nonsymmetric())
      .cell(env.num_constraints())
      .cell(env.num_vars())
      .cell(handcrafted.num_terms())
      .cell(handcrafted.num_variables());
}

}  // namespace

int main() {
  std::cout << "=== Table I: NchooseK constraints vs direct QUBO terms ===\n\n";
  Table table({"problem", "class", "size", "nonsym", "nck-constraints",
               "nck-vars", "qubo-terms", "qubo-vars"});

  Rng rng(1);
  for (std::size_t n : {9u, 18u, 27u}) {
    const Graph g = vertex_scaling_graph(n);
    const std::string size =
        std::to_string(g.num_vertices()) + "v/" + std::to_string(g.num_edges()) + "e";

    const ExactCoverProblem ec{random_set_system(n, n / 3, n / 2, rng)};
    add_row(table, "1. Exact Cover", "NP-C",
            std::to_string(n) + "el/" + std::to_string(ec.system.subsets.size()) + "s",
            ec.encode(), ec.handcrafted_qubo());

    const MinSetCoverProblem msc{ec.system};
    add_row(table, "2. Min. Set Cover", "NP-H",
            std::to_string(n) + "el/" + std::to_string(msc.system.subsets.size()) + "s",
            msc.encode(), msc.handcrafted_qubo());

    const VertexCoverProblem vc{g};
    add_row(table, "3. Min. Vert. Cover", "NP-H", size, vc.encode(),
            vc.handcrafted_qubo());

    const MapColoringProblem col{g, 3};
    add_row(table, "4. Map Color (3)", "NP-C", size, col.encode(),
            col.handcrafted_qubo());

    const CliqueCoverProblem cc{g, static_cast<int>(n / 3)};
    add_row(table, "5. Clique Cover", "NP-C", size, cc.encode(),
            cc.handcrafted_qubo());

    const KSatProblem sat{random_ksat(n, 3 * n, 3, rng)};
    add_row(table, "6. 3-SAT (dual rail)", "NP-C",
            std::to_string(n) + "v/" + std::to_string(3 * n) + "c",
            sat.encode_dual_rail(), sat.handcrafted_mis_qubo());
    add_row(table, "6. 3-SAT (repeated)", "NP-C",
            std::to_string(n) + "v/" + std::to_string(3 * n) + "c",
            sat.encode_repeated(), sat.handcrafted_mis_qubo());

    const MaxCutProblem mc{g};
    add_row(table, "7. Max Cut", "NP-H", size, mc.encode(),
            mc.handcrafted_qubo());
  }
  table.print(std::cout);

  std::cout << "\nPaper claims checked:\n"
            << "  - min vertex cover / map coloring / clique cover: 2 "
               "non-symmetric classes at every size\n"
            << "  - max cut: 1 non-symmetric class\n"
            << "  - constraints: |E|+|V| (vc), |V|+c|E| (coloring), "
               "|V|+c(comp.edges) (clique), |E| (cut)\n"
            << "  - QUBO term counts meet or exceed NchooseK constraint "
               "counts (k-SAT's comparator is the Max-Independent-Set "
               "translation with O(km^2+k^2m) terms)\n";
  return 0;
}
