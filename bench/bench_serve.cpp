// Traffic replay against the serve daemon (in-process Server, real worker
// pool): thousands of mixed requests seeded from the example programs,
// three phases with SLO-style verdicts CI can assert from BENCH_serve.json:
//
//   warm      closed-loop replay (window = worker count) of solve/lint/
//             simplify traffic over a small program set; after the first
//             round every solve hits the shared plan cache. Reports client
//             p50/p99/mean latency, throughput, cache hit rate, and the
//             measured per-request service time that calibrates the next
//             phases.
//
//   overload  open-loop traffic at 2x the measured capacity into a small
//             admission queue, 80% warm / 20% cold (cold = structural
//             program variants whose fingerprints miss the cache). The
//             daemon must shed (shed > 0) instead of queueing without
//             bound: the p99 of *completed* requests stays under
//             (queue_depth + workers) * warm_max * 4 (`p99_bounded`),
//             because a bounded queue bounds the waiting ahead of any
//             admitted request.
//
//   drain     paced background traffic with a mid-run drain() (the SIGTERM
//             path): every submitted request must get exactly one response
//             -- in-flight ones finish (ok), queued-but-unstarted ones are
//             rejected as `draining`, nothing is dropped (dropped == 0).
//
// Writes BENCH_serve.json (override with --out=<file>). --programs=<dir>
// points at the .nck seed corpus (default examples/programs; falls back
// to a built-in set when unreadable). --requests=N scales all phases.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

using namespace nck;
using serve::Server;
using serve::ServerOptions;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point from) {
  return std::chrono::duration<double, std::milli>(Clock::now() - from)
      .count();
}

/// Closed/open-loop replay client: correlates responses to submissions by
/// id, tracks outstanding requests for windowed pacing, and classifies
/// outcomes by the typed wire error kind.
class Client {
 public:
  Server::Sink sink() {
    return [this](const std::string& line) { on_response(line); };
  }

  /// Must be called before submit_line (rejections respond synchronously).
  void note_submit(std::uint64_t id) {
    std::lock_guard lock(mutex_);
    pending_[id] = Clock::now();
    ++outstanding_;
    ++submitted_;
  }

  void wait_below(std::size_t window) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return outstanding_ < window; });
  }

  void wait_all() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return outstanding_ == 0; });
  }

  std::size_t submitted() const {
    std::lock_guard lock(mutex_);
    return submitted_;
  }
  std::size_t responses() const {
    std::lock_guard lock(mutex_);
    return responses_;
  }
  std::size_t ok() const {
    std::lock_guard lock(mutex_);
    return ok_;
  }
  std::size_t errors(const std::string& kind) const {
    std::lock_guard lock(mutex_);
    const auto it = error_kinds_.find(kind);
    return it == error_kinds_.end() ? 0 : it->second;
  }
  /// Latencies of ok responses, in ms, sorted ascending.
  std::vector<double> ok_latencies() const {
    std::lock_guard lock(mutex_);
    std::vector<double> out = ok_latencies_;
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  void on_response(const std::string& line) {
    // Responses open with {"id":N (the builders emit it first).
    std::uint64_t id = 0;
    bool has_id = false;
    if (line.rfind("{\"id\":", 0) == 0) {
      std::size_t pos = 6;
      while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
        id = id * 10 + static_cast<std::uint64_t>(line[pos] - '0');
        has_id = true;
        ++pos;
      }
    }
    const bool is_ok = line.find("\"ok\":true") != std::string::npos;
    std::string kind;
    const std::size_t at = line.find("\"kind\":\"");
    if (at != std::string::npos) {
      const std::size_t from = at + 8;
      kind = line.substr(from, line.find('"', from) - from);
    }

    std::lock_guard lock(mutex_);
    ++responses_;
    if (is_ok) ++ok_;
    if (!kind.empty()) ++error_kinds_[kind];
    if (has_id) {
      const auto it = pending_.find(id);
      if (it != pending_.end()) {
        if (is_ok) {
          ok_latencies_.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        it->second)
                  .count());
        }
        pending_.erase(it);
        --outstanding_;
      }
    }
    cv_.notify_all();
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Clock::time_point> pending_;
  std::size_t outstanding_ = 0;
  std::size_t submitted_ = 0;
  std::size_t responses_ = 0;
  std::size_t ok_ = 0;
  std::map<std::string, std::size_t> error_kinds_;
  std::vector<double> ok_latencies_;
};

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::vector<std::string> load_programs(const std::string& dir) {
  static const char* kNames[] = {
      "budget_reduction.nck", "multiplicity_votes.nck", "two_coloring.nck",
      "vertex_cover_triangle.nck", "xor_gate.nck"};
  std::vector<std::string> programs;
  for (const char* name : kNames) {
    std::ifstream in(dir + "/" + name);
    if (!in) continue;
    std::ostringstream text;
    text << in.rdbuf();
    if (!text.str().empty()) programs.push_back(text.str());
  }
  if (programs.empty()) {
    // Built-in fallback so the bench runs from any working directory.
    programs = {
        "nck({a, b}, {1, 2}) /\\ nck({a, c}, {1, 2}) /\\ nck({b, c}, {1, 2})\n"
        "nck({a}, {0}, soft) nck({b}, {0}, soft) nck({c}, {0}, soft)",
        "nck({x, y, s}, {0, 2}) nck({s}, {1}, soft)",
        "nck({u, v}, {1}) /\\ nck({v, w}, {1}) nck({u}, {0}, soft)",
    };
  }
  return programs;
}

/// Structural cold variant `i` of a base program: appended soft
/// constraints over fresh variables change the constraint multiset, so
/// the name-free plan fingerprint misses the cache (a mere rename would
/// not).
std::string cold_variant(const std::string& base, std::size_t i) {
  std::string out = base;
  const std::size_t pads = 1 + i % 3;
  for (std::size_t p = 0; p <= pads; ++p) {
    out += "\nnck({cold" + std::to_string(i) + "_" + std::to_string(p) +
           "}, {0}, soft)";
  }
  return out;
}

struct RequestMix {
  std::vector<std::string> programs;
  std::size_t reads = 10;

  /// Request `i` of a phase: 70% annealer solves (the cache-heavy op),
  /// 15% lint, 15% simplify. `cold` rewrites the program structurally.
  std::string line(std::uint64_t id, std::size_t i, bool cold) const {
    std::string program = programs[i % programs.size()];
    if (cold) program = cold_variant(program, i);
    const char* op = "solve";
    if (i % 7 == 5) op = "lint";
    if (i % 7 == 6) op = "simplify";
    std::string out = "{\"id\":" + std::to_string(id) + ",\"op\":\"" +
                      std::string(op) + "\",\"program\":\"" +
                      serve::json_escape(program) + "\"";
    if (std::string(op) == "solve") {
      out += ",\"backend\":\"annealer\",\"reads\":" + std::to_string(reads);
    }
    out += "}";
    return out;
  }
};

std::string json_num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  std::string programs_dir = "examples/programs";
  std::size_t requests = 1000;
  std::size_t workers = 4;
  std::uint64_t seed = 1234;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--programs=", 0) == 0) {
      programs_dir = arg.substr(11);
    } else if (arg.rfind("--requests=", 0) == 0) {
      requests = std::stoull(arg.substr(11));
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = std::stoull(arg.substr(10));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--out=FILE] [--programs=DIR] "
                   "[--requests=N] [--workers=N] [--seed=N]\n");
      return 2;
    }
  }
  requests = std::max<std::size_t>(requests, 50);

  RequestMix mix;
  mix.programs = load_programs(programs_dir);
  std::uint64_t next_id = 1;

  // ---- Phase 1: warm closed-loop -----------------------------------
  const std::size_t warm_n = requests;
  double warm_elapsed_ms = 0.0;
  std::vector<double> warm_lat;
  double warm_hit_rate = 0.0;
  {
    ServerOptions options;
    options.num_workers = workers;
    options.queue_depth = 2 * workers + warm_n;  // no shedding in this phase
    options.seed = seed;
    Client client;
    Server server(options, client.sink());
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < warm_n; ++i) {
      client.wait_below(workers);
      const std::uint64_t id = next_id++;
      client.note_submit(id);
      server.submit_line(mix.line(id, i, /*cold=*/false));
    }
    client.wait_all();
    warm_elapsed_ms = ms_since(t0);
    warm_lat = client.ok_latencies();
    warm_hit_rate = server.stats().cache_hit_rate;
  }
  const double warm_p50 = quantile(warm_lat, 0.50);
  const double warm_p99 = quantile(warm_lat, 0.99);
  const double warm_max = warm_lat.empty() ? 0.0 : warm_lat.back();
  const double warm_mean_ms =
      warm_lat.empty()
          ? 0.0
          : std::accumulate(warm_lat.begin(), warm_lat.end(), 0.0) /
                static_cast<double>(warm_lat.size());
  // Closed loop with `workers` in flight keeps every worker busy, so the
  // per-worker service time is workers * elapsed / n.
  const double service_ms = static_cast<double>(workers) * warm_elapsed_ms /
                            static_cast<double>(warm_n);
  const double capacity_rps = 1000.0 * static_cast<double>(workers) /
                              std::max(service_ms, 1e-3);
  const double warm_throughput =
      1000.0 * static_cast<double>(warm_n) / std::max(warm_elapsed_ms, 1e-3);

  // ---- Phase 2: overload at 2x capacity ----------------------------
  const std::size_t over_n = std::max<std::size_t>(requests * 4 / 5, 40);
  const std::size_t over_queue = 2 * workers;
  const double offered_rps = 2.0 * capacity_rps;
  std::size_t over_shed = 0, over_completed = 0;
  double over_p99 = 0.0;
  {
    ServerOptions options;
    options.num_workers = workers;
    options.queue_depth = over_queue;
    options.seed = seed;
    Client client;
    Server server(options, client.sink());
    const auto interval = std::chrono::duration<double>(1.0 / offered_rps);
    const auto start = Clock::now();
    for (std::size_t i = 0; i < over_n; ++i) {
      const std::uint64_t id = next_id++;
      client.note_submit(id);
      server.submit_line(mix.line(id, i, /*cold=*/i % 5 == 4));
      const auto next_at =
          start + std::chrono::duration_cast<Clock::duration>(
                      interval * static_cast<double>(i + 1));
      std::this_thread::sleep_until(next_at);
    }
    client.wait_all();
    const auto stats = server.stats();
    over_shed = stats.shed;
    over_completed = stats.completed;
    over_p99 = quantile(client.ok_latencies(), 0.99);
  }
  // A bounded queue bounds the work ahead of any admitted request; 4x
  // covers cold-variant service and scheduling noise (and survives the
  // sanitizer builds, where everything slows down together).
  const double p99_bound_ms = static_cast<double>(over_queue + workers) *
                              std::max(warm_max, service_ms) * 4.0;
  const bool p99_bounded = over_p99 <= p99_bound_ms;

  // ---- Phase 3: graceful drain mid-run -----------------------------
  const std::size_t drain_n = std::max<std::size_t>(requests * 2 / 5, 30);
  std::size_t drain_submitted = 0, drain_responses = 0, drain_ok = 0;
  std::size_t drain_rejected = 0, drain_dropped = 0;
  {
    ServerOptions options;
    options.num_workers = workers;
    options.queue_depth = 64;
    options.seed = seed;
    Client client;
    Server server(options, client.sink());
    const auto interval =
        std::chrono::duration<double>(1.0 / (1.5 * capacity_rps));
    std::thread submitter([&] {
      const auto start = Clock::now();
      for (std::size_t i = 0; i < drain_n; ++i) {
        const std::uint64_t id = next_id++;
        client.note_submit(id);
        server.submit_line(mix.line(id, i, /*cold=*/false));
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<Clock::duration>(
                        interval * static_cast<double>(i + 1)));
      }
    });
    // Let roughly a third of the traffic land, then pull the plug the way
    // SIGTERM does; the submitter keeps going and must only ever see
    // typed `draining` rejections.
    std::this_thread::sleep_for(std::chrono::duration_cast<Clock::duration>(
        interval * (static_cast<double>(drain_n) / 3.0)));
    server.drain();
    submitter.join();
    client.wait_all();
    drain_submitted = client.submitted();
    drain_responses = client.responses();
    drain_ok = client.ok();
    drain_rejected = client.errors("draining");
    drain_dropped = drain_submitted - drain_responses;
  }

  std::printf("bench_serve: %zu programs, %zu workers\n",
              mix.programs.size(), workers);
  std::printf("  warm:     n=%zu p50=%.2fms p99=%.2fms mean=%.2fms "
              "throughput=%.0f rps cache_hit=%.2f\n",
              warm_n, warm_p50, warm_p99, warm_mean_ms, warm_throughput,
              warm_hit_rate);
  std::printf("  overload: n=%zu offered=%.0f rps shed=%zu completed=%zu "
              "p99=%.2fms bound=%.2fms bounded=%s\n",
              over_n, offered_rps, over_shed, over_completed, over_p99,
              p99_bound_ms, p99_bounded ? "yes" : "NO");
  std::printf("  drain:    submitted=%zu responses=%zu ok=%zu "
              "rejected_draining=%zu dropped=%zu\n",
              drain_submitted, drain_responses, drain_ok, drain_rejected,
              drain_dropped);

  std::ofstream out(out_path);
  out << "{\"bench\":\"serve\",\"workers\":" << workers
      << ",\"programs\":" << mix.programs.size()
      << ",\"warm\":{\"requests\":" << warm_n
      << ",\"p50_ms\":" << json_num(warm_p50)
      << ",\"p99_ms\":" << json_num(warm_p99)
      << ",\"mean_ms\":" << json_num(warm_mean_ms)
      << ",\"max_ms\":" << json_num(warm_max)
      << ",\"service_ms\":" << json_num(service_ms)
      << ",\"throughput_rps\":" << json_num(warm_throughput)
      << ",\"capacity_rps\":" << json_num(capacity_rps)
      << ",\"cache_hit_rate\":" << json_num(warm_hit_rate) << "}"
      << ",\"overload\":{\"requests\":" << over_n
      << ",\"offered_rps\":" << json_num(offered_rps)
      << ",\"queue_depth\":" << over_queue << ",\"shed\":" << over_shed
      << ",\"completed\":" << over_completed
      << ",\"shed_rate\":" << json_num(static_cast<double>(over_shed) /
                                       static_cast<double>(over_n))
      << ",\"p99_ms\":" << json_num(over_p99)
      << ",\"p99_bound_ms\":" << json_num(p99_bound_ms)
      << ",\"p99_bounded\":" << (p99_bounded ? "true" : "false") << "}"
      << ",\"drain\":{\"submitted\":" << drain_submitted
      << ",\"responses\":" << drain_responses << ",\"ok\":" << drain_ok
      << ",\"rejected_draining\":" << drain_rejected
      << ",\"dropped\":" << drain_dropped << "}}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
