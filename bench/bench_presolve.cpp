// Presolve study: what the abstract-interpretation presolve removes and
// what that shrink buys at solve time.
//
// The sweep builds "padded vertex cover" programs: a circulant-graph cover
// core plus k spectator variables pinned FALSE by unit vetoes and swept
// into a redundant all-false constraint, one duplicated cover constraint,
// and one deliberately weaker (subsumed) copy. Presolve should strip all
// of the padding and hand the backend exactly the core.
//
// Three measurements per program (annealer backend, where problem size
// drives embedding and sampling cost):
//
//   baseline   solve with presolve off — the padded program reaches the
//              device;
//   cold       first presolving solve — dataflow fixpoint, reduction,
//              equivalence certification, then the reduced program solves;
//   warm       repeat presolving solve — the PresolvePlan and the backend
//              plan both return from the content-addressed cache.
//
// A fourth column reports the headline capability: a 12-variable
// non-contiguous committee constraint that NCK-P008 rejects outright
// becomes solvable once presolve pins half its members (budget_reduction
// in examples/programs).
//
// Writes BENCH_presolve.json (override with --out=<file>).
#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "problems/vertex_cover.hpp"
#include "runtime/solver.hpp"
#include "util/table.hpp"

using namespace nck;

namespace {

/// Vertex-cover core over circulant(n, 2) plus presolve-removable padding:
/// `pinned` spectator variables vetoed FALSE, one duplicate of cover
/// constraint #0, and a subsumed (weaker-selection) copy of it.
Env padded_cover(std::size_t n, std::size_t pinned) {
  Env env = VertexCoverProblem{circulant_graph(n, std::size_t{2})}.encode();
  const Constraint& first = env.constraints().front();
  const std::vector<VarId> edge(first.collection().begin(),
                                first.collection().end());
  env.nck(edge, std::set<unsigned>(first.selection().begin(),
                                   first.selection().end()));  // duplicate
  env.nck(edge, {0, 1, 2});  // subsumed: anything the tighter one allows
  std::vector<VarId> spectators;
  for (std::size_t i = 0; i < pinned; ++i) {
    const VarId v = env.new_var("pad" + std::to_string(i));
    spectators.push_back(v);
    env.nck({v}, {0});  // unit veto: forces FALSE
  }
  env.all_false(spectators);  // redundant once every veto fires
  return env;
}

struct PassStats {
  double wall_ms = 0.0;
  double qubits = 0.0;        // qubits_used, summed
  double forced = 0.0;        // presolve.forced, summed
  double removed = 0.0;       // presolve.removed_constraints, summed
  double cache_hits = 0.0;    // presolve.cache_hits, summed
  std::size_t optimal = 0;    // solves whose best sample classified optimal
};

PassStats run_pass(Solver& solver, const std::vector<Env>& envs) {
  PassStats stats;
  const auto start = std::chrono::steady_clock::now();
  for (const Env& env : envs) {
    const SolveReport report = solver.solve(env, BackendKind::kAnnealer);
    if (!report.ran) {
      std::cerr << "bench_presolve: solve failed: " << report.failure_message()
                << "\n";
      continue;
    }
    if (report.best_quality == Quality::kOptimal) ++stats.optimal;
    stats.qubits += static_cast<double>(report.qubits_used);
    stats.forced += report.trace.counter("presolve.forced");
    stats.removed += report.trace.counter("presolve.removed_constraints");
    stats.cache_hits += report.trace.counter("presolve.cache_hit");
  }
  const auto stop = std::chrono::steady_clock::now();
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_presolve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_presolve [--out=<file>]\n";
      return 2;
    }
  }

  std::vector<Env> envs;
  for (std::size_t n = 6; n <= 12; n += 2) envs.push_back(padded_cover(n, n));
  std::size_t total_vars = 0, total_constraints = 0;
  for (const Env& env : envs) {
    total_vars += env.num_vars();
    total_constraints += env.num_constraints();
  }

  // Static shrink, program by program (solver-independent).
  std::size_t reduced_vars = 0, reduced_constraints = 0;
  for (const Env& env : envs) {
    const ReduceResult result = reduce_program(env);
    const ReductionVerdict verdict = verify_reduction(env, result);
    if (verdict.checked && !verdict.ok) {
      std::cerr << "bench_presolve: reduction rejected: " << verdict.detail
                << "\n";
      return 1;
    }
    reduced_vars += result.reduced.num_vars();
    reduced_constraints += result.reduced.num_constraints();
  }

  std::cout << "=== Presolve: shrink and solve-time payoff ===\n\n";
  std::cout << "sweep: " << envs.size() << " padded-cover programs, "
            << total_vars << " -> " << reduced_vars << " variables, "
            << total_constraints << " -> " << reduced_constraints
            << " constraints after reduction\n\n";

  Solver baseline_solver(7);
  baseline_solver.solve_options().presolve = false;
  const PassStats baseline = run_pass(baseline_solver, envs);

  Solver presolving(7);
  const PassStats cold = run_pass(presolving, envs);
  // Best of three warm passes (cache already hot; strips scheduler noise).
  PassStats warm = run_pass(presolving, envs);
  for (int rep = 0; rep < 2; ++rep) {
    const PassStats again = run_pass(presolving, envs);
    if (again.wall_ms < warm.wall_ms) warm.wall_ms = again.wall_ms;
    warm.cache_hits += again.cache_hits;
  }

  Table table({"pass", "wall(ms)", "qubits", "forced", "removed", "optimal"});
  table.row()
      .cell("baseline (no presolve)")
      .cell(baseline.wall_ms, 2)
      .cell(baseline.qubits, 0)
      .cell(baseline.forced, 0)
      .cell(baseline.removed, 0)
      .cell(static_cast<double>(baseline.optimal), 0);
  table.row()
      .cell("cold presolve")
      .cell(cold.wall_ms, 2)
      .cell(cold.qubits, 0)
      .cell(cold.forced, 0)
      .cell(cold.removed, 0)
      .cell(static_cast<double>(cold.optimal), 0);
  table.row()
      .cell("warm presolve")
      .cell(warm.wall_ms, 2)
      .cell(warm.qubits, 0)
      .cell(warm.forced, 0)
      .cell(warm.removed, 0)
      .cell(static_cast<double>(warm.optimal), 0);
  table.print(std::cout);

  const double speedup =
      cold.wall_ms > 0.0 ? baseline.wall_ms / cold.wall_ms : 0.0;
  std::cout << "\ncold presolve speedup: " << speedup << "x ("
            << baseline.wall_ms << " -> " << cold.wall_ms << " ms); qubit "
            << "footprint " << baseline.qubits << " -> " << cold.qubits
            << "\n";

  // Headline: the P008-rejected committee program solves only with presolve.
  Env committee;
  const std::vector<VarId> members = committee.new_vars(12, "m");
  committee.nck(members, {0, 1, 2, 3, 12});
  for (std::size_t i = 6; i < 12; ++i) committee.nck({members[i]}, {0});
  for (std::size_t i = 0; i < 6; ++i) committee.prefer_true(members[i]);

  Solver no_presolve(11);
  no_presolve.solve_options().presolve = false;
  const SolveReport rejected = no_presolve.solve(committee,
                                                 BackendKind::kAnnealer);
  Solver with_presolve(11);
  const SolveReport unlocked = with_presolve.solve(committee,
                                                   BackendKind::kAnnealer);
  std::cout << "headline committee: without presolve "
            << (rejected.ran ? "ran" : "rejected") << " ["
            << failure_kind_name(rejected.failure) << "], with presolve "
            << (unlocked.ran ? quality_name(unlocked.best_quality)
                             : "did not run")
            << "\n";

  bool ok = true;
  if (cold.optimal != envs.size() || warm.optimal != envs.size()) {
    std::cerr << "bench_presolve: a presolving solve missed optimality\n";
    ok = false;
  }
  if (cold.forced == 0.0 || cold.removed == 0.0) {
    std::cerr << "bench_presolve: presolve removed nothing\n";
    ok = false;
  }
  if (warm.cache_hits == 0.0) {
    std::cerr << "bench_presolve: warm pass missed the presolve plan cache\n";
    ok = false;
  }
  if (rejected.ran || unlocked.best_quality != Quality::kOptimal) {
    std::cerr << "bench_presolve: headline committee story regressed\n";
    ok = false;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_presolve: cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\"bench\":\"presolve\",\"programs\":" << envs.size()
      << ",\"original_vars\":" << total_vars
      << ",\"reduced_vars\":" << reduced_vars
      << ",\"original_constraints\":" << total_constraints
      << ",\"reduced_constraints\":" << reduced_constraints
      << ",\"baseline_ms\":" << baseline.wall_ms
      << ",\"cold_ms\":" << cold.wall_ms << ",\"warm_ms\":" << warm.wall_ms
      << ",\"speedup\":" << speedup
      << ",\"baseline_qubits\":" << baseline.qubits
      << ",\"presolve_qubits\":" << cold.qubits
      << ",\"forced\":" << cold.forced << ",\"removed\":" << cold.removed
      << ",\"warm_cache_hits\":" << warm.cache_hits
      << ",\"headline_unlocked\":"
      << ((!rejected.ran && unlocked.ran &&
           unlocked.best_quality == Quality::kOptimal)
              ? "true"
              : "false")
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return ok ? 0 : 1;
}
