// Ablation: QAOA depth p. The paper runs Qiskit's default (p = 1); deeper
// ansatze trade circuit depth (hence noise) against expressiveness. This
// sweep quantifies the NISQ tension: noiseless quality rises with p while
// noisy quality peaks at shallow depth — the regime argument for why the
// paper's results sit where they do.
#include <iostream>

#include "circuit/coupling.hpp"
#include "circuit/qaoa.hpp"
#include "core/compile.hpp"
#include "graph/generators.hpp"
#include "problems/max_cut.hpp"
#include "util/table.hpp"

using namespace nck;

int main() {
  std::cout << "=== Ablation: QAOA depth p (max cut on a 10-vertex graph) "
               "===\n\n";
  Rng graph_rng(8);
  const MaxCutProblem problem{random_connected_gnm(10, 16, graph_rng)};
  const CompiledQubo cq = compile(problem.encode());
  const std::size_t best_cut = problem.optimal_cut();
  const Graph coupling = brooklyn_coupling();

  Table table({"p", "noise", "depth", "cx", "fidelity", "jobs",
               "%optimal-shots", "best-cut"});
  for (int p = 1; p <= 3; ++p) {
    for (bool noisy : {false, true}) {
      QaoaOptions options;
      options.p = p;
      options.shots = 2000;
      options.max_sim_qubits = 16;
      options.optimizer.max_evaluations = 24 + 12 * p;  // more params
      if (!noisy) {
        options.noise.error_1q = 0.0;
        options.noise.error_cx = 0.0;
        options.noise.readout_flip = 0.0;
      }
      Rng rng(100 + p);
      const QaoaResult result = run_qaoa(cq.qubo, coupling, options, rng);
      std::size_t optimal_shots = 0;
      std::size_t best_found = 0;
      for (const auto& s : result.samples) {
        const std::size_t cut = problem.cut_of(cq.project(s));
        best_found = std::max(best_found, cut);
        if (cut == best_cut) ++optimal_shots;
      }
      table.row()
          .cell(p)
          .cell(noisy ? "yes" : "no")
          .cell(result.depth)
          .cell(result.cx_count)
          .cell(result.fidelity, 3)
          .cell(result.num_jobs)
          .cell(100.0 * static_cast<double>(optimal_shots) /
                    static_cast<double>(result.samples.size()),
                1)
          .cell(std::to_string(best_found) + "/" + std::to_string(best_cut));
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: noiseless %optimal grows with p; with noise the "
               "depth cost wins\nand shallow circuits do best (the NISQ "
               "regime of the paper).\n";
  return 0;
}
