// Fig 8 reproduction: qubits used (y) per problem (x) on the simulated
// 65-qubit Brooklyn-class device, with each run classified optimal /
// suboptimal / incorrect. Expected shape: optimal results at small qubit
// counts, turning suboptimal then incorrect as utilization grows, with
// constraint-heavy problems (vertex cover) failing even at low qubit
// counts.
#include <iostream>

#include "circuit/backend.hpp"
#include "circuit/coupling.hpp"
#include "harness.hpp"
#include "util/table.hpp"

using namespace nck;
using nck::bench::Instance;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  std::cout << "=== Fig 8: qubits used per problem (simulated ibmq_brooklyn) "
               "===\n(result of each run marked optimal/suboptimal/incorrect; "
               "65-qubit ceiling)\n\n";

  const Graph coupling = brooklyn_coupling();
  SynthEngine engine;
  Rng rng(8);

  CircuitBackendOptions options;
  options.qaoa.shots = quick ? 512 : 2000;
  options.qaoa.max_sim_qubits = 14;  // state vector below, surrogate above
  options.qaoa.optimizer.max_evaluations = quick ? 12 : 28;

  Table table({"problem", "size", "qubits", "touched", "mode", "fidelity",
               "result"});

  for (Instance& inst : bench::all_instances(quick ? 9 : 18, quick ? 6 : 12,
                                             quick ? 4 : 8)) {
    const GroundTruth& truth = inst.truth;  // precomputed by the harness
    if (!truth.feasible) continue;
    const CircuitOutcome outcome =
        run_circuit_backend(inst.env, coupling, engine, rng, options);
    if (!outcome.fits) {
      table.row()
          .cell(inst.problem)
          .cell(inst.label)
          .cell(outcome.qubits_used)
          .cell("-")
          .cell("-")
          .cell("-")
          .cell("(does not fit)");
      continue;
    }
    // QAOA reports one answer: the lowest-energy sample.
    const Quality q = classify(outcome.evaluations.front(), truth);
    table.row()
        .cell(inst.problem)
        .cell(inst.label)
        .cell(outcome.qubits_used)
        .cell(outcome.qubits_touched)
        .cell(outcome.mode)
        .cell(outcome.fidelity, 3)
        .cell(quality_name(q));
  }
  table.print(std::cout);
  return 0;
}
