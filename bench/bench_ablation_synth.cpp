// Ablation: constraint -> QUBO synthesis paths. Compares the closed-form
// builtin constructions, the exact-LP search, and the Z3 search (the
// paper's method) on the constraint patterns the seven problems actually
// generate. Output: per-pattern synthesis time; ancilla counts are printed
// once at startup for context.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "synth/builtin.hpp"
#include "synth/lp_synth.hpp"
#include "synth/pattern.hpp"
#if NCK_HAVE_Z3
#include "synth/z3_synth.hpp"
#endif

namespace {

using namespace nck;

// Pattern zoo: (name, multiplicities, selection).
struct NamedPattern {
  const char* name;
  ConstraintPattern pattern;
};

const std::vector<NamedPattern>& patterns() {
  static const std::vector<NamedPattern> zoo = {
      {"edge{1,2}", ConstraintPattern({1, 1}, {1, 2})},
      {"exactly1of3", ConstraintPattern({1, 1, 1}, {1})},
      {"atmost1of2", ConstraintPattern({1, 1}, {0, 1})},
      {"xor3", ConstraintPattern({1, 1, 1}, {0, 2})},
      {"atleast1of4", ConstraintPattern({1, 1, 1, 1}, {1, 2, 3, 4})},
      {"sat-clause-q1", ConstraintPattern({1, 2, 2}, {0, 2, 3, 4, 5})},
  };
  return zoo;
}

void BM_Builtin(benchmark::State& state) {
  const auto& np = patterns()[static_cast<std::size_t>(state.range(0))];
  BuiltinSynthesizer synth;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth.synthesize(np.pattern));
  }
  state.SetLabel(np.name);
}
BENCHMARK(BM_Builtin)->DenseRange(0, 5);

void BM_LpSynth(benchmark::State& state) {
  const auto& np = patterns()[static_cast<std::size_t>(state.range(0))];
  LpSynthesizer synth;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth.synthesize(np.pattern));
  }
  state.SetLabel(np.name);
}
BENCHMARK(BM_LpSynth)->DenseRange(0, 5);

#if NCK_HAVE_Z3
void BM_Z3Synth(benchmark::State& state) {
  const auto& np = patterns()[static_cast<std::size_t>(state.range(0))];
  Z3Synthesizer synth;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth.synthesize(np.pattern));
  }
  state.SetLabel(np.name);
}
BENCHMARK(BM_Z3Synth)->DenseRange(0, 5);
#endif

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ancilla counts per path (builtin / lp%s):\n",
#if NCK_HAVE_Z3
              " / z3"
#else
              ""
#endif
  );
  for (const auto& np : patterns()) {
    BuiltinSynthesizer b;
    LpSynthesizer lp;
    const auto rb = b.synthesize(np.pattern);
    const auto rl = lp.synthesize(np.pattern);
    std::printf("  %-14s builtin=%s lp=%s", np.name,
                rb ? std::to_string(rb->num_ancillas).c_str() : "-",
                rl ? std::to_string(rl->num_ancillas).c_str() : "-");
#if NCK_HAVE_Z3
    Z3Synthesizer z3;
    const auto rz = z3.synthesize(np.pattern);
    std::printf(" z3=%s", rz ? std::to_string(rz->num_ancillas).c_str() : "-");
#endif
    std::printf("\n");
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
