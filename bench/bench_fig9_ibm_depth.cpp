// Fig 9 reproduction: transpiled circuit depth (y) per problem (x) on the
// simulated Brooklyn device, with optimal/suboptimal/incorrect markers.
// Expected shape: deeper circuits correlate with worse outcomes, with
// problem-specific exceptions (the paper shows a suboptimal Max Cut at
// depth 172 followed by optimal runs at 179+ — depth is not a perfect
// predictor because which qubits/paths get used also matters).
#include <iostream>

#include "circuit/backend.hpp"
#include "circuit/coupling.hpp"
#include "harness.hpp"
#include "util/table.hpp"

using namespace nck;
using nck::bench::Instance;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  std::cout << "=== Fig 9: circuit depth per problem (simulated "
               "ibmq_brooklyn) ===\n\n";

  const Graph coupling = brooklyn_coupling();
  SynthEngine engine;
  Rng rng(9);

  CircuitBackendOptions options;
  options.qaoa.shots = quick ? 512 : 2000;
  options.qaoa.max_sim_qubits = 14;
  options.qaoa.optimizer.max_evaluations = quick ? 12 : 28;

  Table table({"problem", "size", "qubits", "depth", "cx", "result"});
  for (Instance& inst : bench::all_instances(quick ? 9 : 18, quick ? 6 : 12,
                                             quick ? 4 : 8)) {
    const GroundTruth& truth = inst.truth;  // precomputed by the harness
    if (!truth.feasible) continue;
    const CircuitOutcome outcome =
        run_circuit_backend(inst.env, coupling, engine, rng, options);
    if (!outcome.fits) continue;
    const Quality q = classify(outcome.evaluations.front(), truth);
    table.row()
        .cell(inst.problem)
        .cell(inst.label)
        .cell(outcome.qubits_used)
        .cell(outcome.depth)
        .cell(outcome.cx_count)
        .cell(quality_name(q));
  }
  table.print(std::cout);
  return 0;
}
