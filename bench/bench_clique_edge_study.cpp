// Section VIII-A reproduction: the clique-cover edge-scaling study on
// 12 vertices. The paper's observations:
//   * at 48 one-hot variables and 18 edges the problem needs 188 physical
//     qubits; *adding* edges removes complement-edge constraints, shrinking
//     the footprint (37 edges -> 132 qubits; 63 edges -> 52 qubits) and
//     *raising* the success rate (65% at the dense end);
//   * constraint count matters as much as qubit count: at similar qubit
//     usage, more constraints = markedly lower success.
// We sweep the same 12-vertex family with 4 target cliques (and 3 where
// coverable), reporting constraints, embedded qubits and success rates.
#include <iostream>

#include "anneal/backend.hpp"
#include "anneal/topology.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "problems/coloring.hpp"
#include "runtime/result.hpp"
#include "util/table.hpp"

using namespace nck;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  std::cout << "=== Section VIII-A: clique cover edge-scaling (12 vertices) "
               "===\n\n";

  Rng device_rng(2022);
  const Device device = advantage_4_1(device_rng);
  SynthEngine engine;
  Rng rng(12);

  Table table({"edges", "cliques", "feasible", "constraints", "nck-vars",
               "qubits", "%optimal", "any-opt"});

  const std::vector<std::size_t> extra_edges =
      quick ? std::vector<std::size_t>{6, 25, 51}
            : std::vector<std::size_t>{6, 13, 19, 25, 31, 36, 41, 46, 51};
  for (std::size_t extra : extra_edges) {
    const Graph g = edge_scaling_graph(extra);
    for (int cliques : {4, 3}) {
      const CliqueCoverProblem problem{g, cliques};
      if (!problem.feasible()) {
        table.row()
            .cell(g.num_edges())
            .cell(cliques)
            .cell("no")
            .cell(problem.encode().num_constraints())
            .cell(problem.encode().num_vars())
            .cell("-")
            .cell("-")
            .cell("-");
        continue;
      }
      const Env env = problem.encode();
      const GroundTruth truth = ground_truth(env);
      AnnealBackendOptions options;
      options.sampler.num_reads = quick ? 50 : 100;
      const AnnealOutcome outcome =
          run_annealer(env, device, engine, rng, options);
      if (!outcome.embedded) continue;
      const QualityCounts counts = classify_all(outcome.evaluations, truth);
      table.row()
          .cell(g.num_edges())
          .cell(cliques)
          .cell("yes")
          .cell(env.num_constraints())
          .cell(env.num_vars())
          .cell(outcome.qubits_used)
          .cell(100.0 * counts.fraction_optimal(), 1)
          .cell(counts.any_optimal() ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: qubit footprint and constraint count "
               "*shrink* as edges are\nadded (fewer complement edges), and "
               "the optimal fraction rises.\n";
  return 0;
}
