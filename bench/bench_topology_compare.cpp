// Extension bench: embedding footprint on Chimera (D-Wave 2000Q-class)
// versus Pegasus (Advantage-class) topologies. The paper runs only on
// Advantage 4.1; this quantifies why: Pegasus's degree-15 connectivity
// roughly halves chain lengths relative to degree-6 Chimera, which is the
// direct driver of the qubit counts in Figs 7 and Section VIII-A.
#include <iostream>

#include "anneal/embedding.hpp"
#include "anneal/topology.hpp"
#include "core/compile.hpp"
#include "graph/generators.hpp"
#include "problems/coloring.hpp"
#include "problems/ksat.hpp"
#include "problems/max_cut.hpp"
#include "problems/vertex_cover.hpp"
#include "util/table.hpp"

using namespace nck;

namespace {

Graph interaction_graph(const Qubo& q) {
  Graph g(q.num_variables());
  for (const auto& [i, j, c] : q.quadratic_terms()) g.add_edge(i, j);
  return g;
}

}  // namespace

int main() {
  std::cout << "=== Topology ablation: Chimera (2000Q) vs Pegasus "
               "(Advantage) embedding footprint ===\n\n";
  const Graph chimera = chimera_graph(16, 16, 4);  // 2048 qubits
  const Graph pegasus = pegasus_graph(16);         // 5640 qubits

  Table table({"problem", "nck-vars", "chimera-qubits", "chimera-maxchain",
               "pegasus-qubits", "pegasus-maxchain"});
  SynthEngine engine;
  Rng instance_rng(4);

  std::vector<std::pair<std::string, Env>> cases;
  cases.emplace_back("max-cut-18", MaxCutProblem{vertex_scaling_graph(18)}.encode());
  cases.emplace_back("vertex-cover-18",
                     VertexCoverProblem{vertex_scaling_graph(18)}.encode());
  cases.emplace_back("map-coloring-9",
                     MapColoringProblem{vertex_scaling_graph(9), 3}.encode());
  cases.emplace_back(
      "3-sat-8", KSatProblem{random_ksat(8, 24, 3, instance_rng)}.encode_repeated());

  for (auto& [name, env] : cases) {
    const CompiledQubo cq = compile(env, engine);
    const Graph logical = interaction_graph(cq.qubo);

    std::size_t c_qubits = 0, c_chain = 0, p_qubits = 0, p_chain = 0;
    {
      Rng rng(7);
      if (auto emb = find_embedding(logical, chimera, rng)) {
        c_qubits = emb->total_qubits();
        c_chain = emb->max_chain_length();
      }
    }
    {
      Rng rng(7);
      if (auto emb = find_embedding(logical, pegasus, rng)) {
        p_qubits = emb->total_qubits();
        p_chain = emb->max_chain_length();
      }
    }
    auto cell_or_dash = [&](Table& t, std::size_t v) -> Table& {
      if (v == 0) return t.cell("(failed)");
      return t.cell(v);
    };
    auto& row = table.row().cell(name).cell(cq.num_qubo_vars());
    cell_or_dash(row, c_qubits);
    cell_or_dash(row, c_chain);
    cell_or_dash(row, p_qubits);
    cell_or_dash(row, p_chain);
  }
  table.print(std::cout);
  std::cout << "\nExpected: Pegasus needs consistently fewer qubits and "
               "shorter chains than\nChimera for the same logical problems "
               "(degree 15 vs 6).\n";
  return 0;
}
