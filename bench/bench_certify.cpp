// Certification-cost study: what semantic QUBO certification adds to a
// solve, and what the content-addressed certificate cache gives back.
//
// Three measurements over a sweep of vertex-cover programs (classical
// backend, so certification dominates the measured work):
//
//   baseline   solve with certification off;
//   cold       first certifying solve — per-constraint 2^(d+a) enumeration
//              plus the interval-propagated dominance check;
//   warm       repeat certifying solve on the same solver — the artifact
//              comes back from the plan cache and the NCK-V* diagnostics
//              re-derive arithmetically; the obs counters prove the warm
//              pass enumerated exactly zero constraints.
//
// Writes BENCH_certify.json (override with --out=<file>).
#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "problems/vertex_cover.hpp"
#include "runtime/solver.hpp"
#include "util/table.hpp"

using namespace nck;

namespace {

/// Structurally distinct programs so each needs its own certification.
std::vector<Env> programs() {
  std::vector<Env> envs;
  for (std::size_t n = 6; n <= 16; n += 2) {
    envs.push_back(
        VertexCoverProblem{circulant_graph(n, std::size_t{2})}.encode());
  }
  return envs;
}

struct PassStats {
  double wall_ms = 0.0;
  double enumerated = 0.0;  // certify.constraints_enumerated, summed
  double cache_hits = 0.0;  // certify.cache_hits, summed
};

PassStats run_pass(Solver& solver, const std::vector<Env>& envs) {
  PassStats stats;
  const auto start = std::chrono::steady_clock::now();
  for (const Env& env : envs) {
    const SolveReport report = solver.solve(env, BackendKind::kClassical);
    if (!report.ran) {
      std::cerr << "bench_certify: solve failed: " << report.failure_message()
                << "\n";
    }
    stats.enumerated += report.trace.counter("certify.constraints_enumerated");
    stats.cache_hits += report.trace.counter("certify.cache_hits");
  }
  const auto stop = std::chrono::steady_clock::now();
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_certify.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_certify [--out=<file>]\n";
      return 2;
    }
  }

  const std::vector<Env> envs = programs();
  std::size_t total_constraints = 0;
  for (const Env& env : envs) total_constraints += env.num_constraints();
  std::cout << "=== Semantic certification: cost and cache recall ===\n\n";
  std::cout << "sweep: " << envs.size() << " programs, " << total_constraints
            << " constraints, classical backend\n\n";

  Solver baseline_solver(7);
  const PassStats baseline = run_pass(baseline_solver, envs);

  Solver certifying(7);
  certifying.solve_options().certify = true;
  const PassStats cold = run_pass(certifying, envs);
  // Best of three warm passes (cache already hot; strips scheduler noise).
  PassStats warm = run_pass(certifying, envs);
  for (int rep = 0; rep < 2; ++rep) {
    const PassStats again = run_pass(certifying, envs);
    if (again.wall_ms < warm.wall_ms) warm.wall_ms = again.wall_ms;
    warm.enumerated += again.enumerated;  // must stay 0 across all passes
  }

  Table table({"pass", "wall(ms)", "enumerated", "cache hits"});
  table.row()
      .cell("baseline (no certify)")
      .cell(baseline.wall_ms, 2)
      .cell(baseline.enumerated, 0)
      .cell(baseline.cache_hits, 0);
  table.row()
      .cell("cold certify")
      .cell(cold.wall_ms, 2)
      .cell(cold.enumerated, 0)
      .cell(cold.cache_hits, 0);
  table.row()
      .cell("warm certify")
      .cell(warm.wall_ms, 2)
      .cell(warm.enumerated, 0)
      .cell(warm.cache_hits, 0);
  table.print(std::cout);

  const double overhead_ms = cold.wall_ms - baseline.wall_ms;
  std::cout << "\ncold certification overhead: " << overhead_ms
            << " ms over " << total_constraints << " constraint(s); warm "
            << "passes re-enumerated " << warm.enumerated
            << " constraint(s)\n";
  if (warm.enumerated != 0.0) {
    std::cerr << "bench_certify: warm pass re-enumerated constraints\n";
    return 1;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_certify: cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\"bench\":\"certify\",\"programs\":" << envs.size()
      << ",\"constraints\":" << total_constraints
      << ",\"baseline_ms\":" << baseline.wall_ms
      << ",\"cold_ms\":" << cold.wall_ms << ",\"warm_ms\":" << warm.wall_ms
      << ",\"cold_overhead_ms\":" << overhead_ms
      << ",\"cold_enumerated\":" << cold.enumerated
      << ",\"warm_enumerated\":" << warm.enumerated
      << ",\"warm_cache_hits\":" << warm.cache_hits << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
