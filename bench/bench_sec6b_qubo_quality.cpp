// Section VI-B reproduction: generated (NchooseK-compiled) versus
// handcrafted QUBOs. The paper's claims:
//   * for every problem here except 3-SAT and min set cover, the generated
//     QUBO matches the handcrafted one — we check minimizer-set equality by
//     brute force and compare sizes;
//   * min set cover / SAT differ in ancilla variables (the handcrafted
//     min-set-cover formulation carries its own one-hot counters — in fact
//     *more* extra variables than NchooseK's log-slack ancillas);
//   * the XOR constraint nck({a,b,c},{0,2}) requires one ancilla (Eq. 3) —
//     and, as printed, the paper's Eq. 3 itself fails verification (sign
//     typo), which we demonstrate.
#include <iostream>

#include "core/compile.hpp"
#include "graph/generators.hpp"
#include "problems/coloring.hpp"
#include "problems/cover.hpp"
#include "problems/max_cut.hpp"
#include "problems/vertex_cover.hpp"
#include "qubo/brute_force.hpp"
#include "synth/engine.hpp"
#include "synth/verify.hpp"
#include "util/table.hpp"

using namespace nck;

namespace {

// Compares minimizer sets restricted to problem variables (the generated
// QUBO may append ancillas; a minimizer projection must coincide).
bool same_minimizers(const Qubo& generated, std::size_t problem_vars,
                     const Qubo& handcrafted) {
  const auto g = brute_force_minimize(generated, 1u << 16);
  const auto h = brute_force_minimize(handcrafted, 1u << 16);
  std::set<std::vector<bool>> g_set, h_set;
  for (const auto& x : g.ground_states) {
    g_set.insert({x.begin(), x.begin() + static_cast<std::ptrdiff_t>(
                                             std::min(problem_vars, x.size()))});
  }
  for (const auto& x : h.ground_states) {
    h_set.insert({x.begin(), x.begin() + static_cast<std::ptrdiff_t>(
                                             std::min(problem_vars, x.size()))});
  }
  return g_set == h_set;
}

}  // namespace

int main() {
  std::cout << "=== Section VI-B: generated vs handcrafted QUBOs ===\n\n";
  Table table({"problem", "nck-vars", "gen-ancillas", "gen-terms",
               "hand-extra-vars", "hand-terms", "same-minimizers"});
  Rng rng(3);

  auto report = [&](const std::string& name, const Env& env,
                    const Qubo& handcrafted) {
    const CompiledQubo cq = compile(env);
    const std::size_t hand_extra =
        handcrafted.num_variables() > env.num_vars()
            ? handcrafted.num_variables() - env.num_vars()
            : 0;
    const bool same = cq.qubo.num_variables() <= 20 &&
                              handcrafted.num_variables() <= 20
                          ? same_minimizers(cq.qubo, env.num_vars(), handcrafted)
                          : false;
    table.row()
        .cell(name)
        .cell(env.num_vars())
        .cell(cq.num_ancillas)
        .cell(cq.qubo.num_terms())
        .cell(hand_extra)
        .cell(handcrafted.num_terms())
        .cell(cq.qubo.num_variables() <= 20 ? (same ? "yes" : "NO") : "(too big)");
  };

  {
    Graph g(5);  // the paper's Fig 2 graph
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    g.add_edge(3, 4);
    const VertexCoverProblem vc{g};
    report("min-vertex-cover", vc.encode(), vc.handcrafted_qubo());
    const MaxCutProblem mc{g};
    report("max-cut", mc.encode(), mc.handcrafted_qubo());
  }
  {
    const MapColoringProblem col{path_graph(4), 2};
    report("map-coloring", col.encode(), col.handcrafted_qubo());
    const CliqueCoverProblem cc{edge_scaling_graph(0).induced_subgraph(
                                    std::vector<Graph::Vertex>{0, 1, 2, 3, 4, 5}),
                                2};
    report("clique-cover", cc.encode(), cc.handcrafted_qubo());
  }
  {
    const SetSystem system = random_set_system(6, 2, 3, rng);
    const ExactCoverProblem ec{system};
    report("exact-cover", ec.encode(), ec.handcrafted_qubo());
    const MinSetCoverProblem msc{system};
    report("min-set-cover", msc.encode(), msc.handcrafted_qubo());
  }
  table.print(std::cout);

  // --- XOR / Eq. 3 (Section VI-C). ----------------------------------------
  std::cout << "\n=== Section VI-C: the XOR constraint ===\n\n";
  SynthEngine engine;
  const ConstraintPattern xor_pattern({1, 1, 1}, {0, 2});
  const SynthesizedQubo& synth = engine.synthesize(xor_pattern);
  std::cout << "nck({a,b,c},{0,2}) synthesized (" << synth.method << "): "
            << synth.num_ancillas << " ancilla, QUBO = "
            << synth.qubo.to_string() << "\n";
  const auto check = verify_synthesis(xor_pattern, synth);
  std::cout << "exhaustive verification: " << (check.ok ? "PASS" : "FAIL")
            << " (gap " << check.observed_gap << ")\n\n";

  // The paper's Eq. 3 as printed.
  Qubo eq3(4);
  eq3.add_linear(0, 1);
  eq3.add_linear(1, 1);
  eq3.add_linear(2, 1);
  eq3.add_linear(3, 4);
  eq3.add_quadratic(0, 1, -2);
  eq3.add_quadratic(0, 2, -2);
  eq3.add_quadratic(0, 3, -4);
  eq3.add_quadratic(1, 2, -2);
  eq3.add_quadratic(1, 3, -4);
  eq3.add_quadratic(2, 3, 4);
  SynthesizedQubo paper_eq3{eq3, 3, 1, 1.0, "paper-eq3"};
  const auto eq3_check = verify_synthesis(xor_pattern, paper_eq3);
  std::cout << "paper Eq. 3 as printed: "
            << (eq3_check.ok ? "verifies (unexpected!)"
                             : "FAILS verification — " + eq3_check.error)
            << "\n(reproduction note: Eq. 3 appears to contain a sign typo; "
               "energy at a=b=1, c=0, k=1 is "
            << eq3.energy({true, true, false, true}) << ")\n";
  return 0;
}
