// Shared machinery for the figure/table reproduction harnesses: the paper's
// scaling studies (Section VII), problem registry, and uniform run/classify
// helpers. Each bench binary prints one table/figure's data series.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/env.hpp"
#include "graph/generators.hpp"
#include "problems/coloring.hpp"
#include "problems/cover.hpp"
#include "problems/ksat.hpp"
#include "problems/max_cut.hpp"
#include "problems/vertex_cover.hpp"
#include "runtime/result.hpp"
#include "util/rng.hpp"

namespace nck::bench {

/// One experiment instance: a program plus its human-readable label, a
/// scale parameter (vertices / variables / elements, for the x-axis), and
/// its precomputed ground truth. Truths come from problem-specific exact
/// algorithms (vertex-cover/max-cut branch and bound, coloring feasibility,
/// exhaustive set-cover), NOT from the generic NchooseK solver — the
/// one-hot instances grow far past what a generic search can certify.
struct Instance {
  std::string problem;
  std::string label;
  std::size_t scale = 0;
  Env env;
  GroundTruth truth;
};

/// The paper's vertex-scaling study (Section VII): chained 3-cliques from
/// 6 vertices up to `max_vertices`, in steps of one clique (then larger
/// increments past 33, as in the paper).
std::vector<std::size_t> vertex_scaling_sizes(std::size_t max_vertices);

/// Graph-problem instances over the vertex-scaling graphs.
std::vector<Instance> graph_instances(const std::string& problem,
                                      std::size_t max_vertices);

/// Cover/SAT instances of growing size (same sets shared by exact cover and
/// min set cover, as in the paper).
std::vector<Instance> cover_instances(const std::string& problem,
                                      std::size_t max_elements,
                                      std::uint64_t seed = 424242);
std::vector<Instance> ksat_instances(std::size_t max_vars,
                                     std::uint64_t seed = 171717);

/// Everything, keyed by the paper's problem names.
std::vector<Instance> all_instances(std::size_t graph_max_vertices,
                                    std::size_t cover_max_elements,
                                    std::size_t sat_max_vars);

}  // namespace nck::bench
