// Fig 7 reproduction: percentage of optimal results (y) versus physical
// qubits used (x) on the (simulated) D-Wave Advantage, per problem, under
// the Section VII vertex-scaling study. Expected shape, per the paper:
//   * success decays as qubit usage grows;
//   * problems with soft constraints (max cut, min vertex cover, min set
//     cover) generally fare *worse* than hard-only problems at similar
//     sizes, because hard constraints get a larger bias and the optimal/
//     suboptimal energy gap shrinks — but their optimal+suboptimal
//     ("correct") rate is higher;
//   * exact cover is the soft-less exception that degrades early.
#include <iostream>

#include "anneal/backend.hpp"
#include "anneal/topology.hpp"
#include "harness.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace nck;
using nck::bench::Instance;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  // Per-problem size caps: the one-hot problems blow up quadratically in
  // QUBO variables, so they stop earlier (as they do in the paper, where
  // clique cover is the first to fail).
  const std::size_t cheap_max = quick ? 12 : 33;
  const std::size_t coloring_max = quick ? 12 : 15;
  // "12 vertices ... is where the clique cover problem fails on the D-Wave
  // system" (Section VII) — and where our embedder's budget is spent too.
  const std::size_t clique_max = 12;
  const std::size_t cover_max = quick ? 12 : 18;
  const std::size_t sat_max = quick ? 8 : 12;

  std::cout << "=== Fig 7: % optimal vs qubits used (simulated Advantage) ===\n"
            << "(100 reads per problem; 'correct' = optimal or suboptimal)\n\n";

  Rng device_rng(2022);
  const Device device = advantage_4_1(device_rng);
  SynthEngine engine;
  Rng rng(7);

  Table table({"problem", "size", "nck-vars", "qubits", "max-chain",
               "%optimal", "%correct", "any-opt", "soft?"});

  std::vector<bench::Instance> instances;
  for (const char* problem : {"max-cut", "min-vertex-cover"}) {
    for (auto& inst : bench::graph_instances(problem, cheap_max)) {
      instances.push_back(std::move(inst));
    }
  }
  for (auto& inst : bench::graph_instances("map-coloring", coloring_max)) {
    instances.push_back(std::move(inst));
  }
  for (auto& inst : bench::graph_instances("clique-cover", clique_max)) {
    instances.push_back(std::move(inst));
  }
  for (const char* problem : {"exact-cover", "min-set-cover"}) {
    for (auto& inst : bench::cover_instances(problem, cover_max)) {
      instances.push_back(std::move(inst));
    }
  }
  for (auto& inst : bench::ksat_instances(sat_max)) {
    instances.push_back(std::move(inst));
  }

  for (bench::Instance& inst : instances) {
    const GroundTruth& truth = inst.truth;  // precomputed by the harness
    if (!truth.feasible) continue;

    AnnealBackendOptions options;
    options.sampler.num_reads = 100;
    const AnnealOutcome outcome =
        run_annealer(inst.env, device, engine, rng, options);
    if (!outcome.embedded) {
      table.row()
          .cell(inst.problem)
          .cell(inst.label)
          .cell(inst.env.num_vars())
          .cell("(embed failed)")
          .cell("-")
          .cell("-")
          .cell("-")
          .cell("-")
          .cell(inst.env.num_soft() > 0 ? "yes" : "no");
      continue;
    }
    const QualityCounts counts = classify_all(outcome.evaluations, truth);
    table.row()
        .cell(inst.problem)
        .cell(inst.label)
        .cell(inst.env.num_vars())
        .cell(outcome.qubits_used)
        .cell(outcome.max_chain_length)
        .cell(100.0 * counts.fraction_optimal(), 1)
        .cell(100.0 * counts.fraction_correct(), 1)
        .cell(counts.any_optimal() ? "yes" : "NO")
        .cell(inst.env.num_soft() > 0 ? "yes" : "no");
  }
  table.print(std::cout);
  std::cout << "\n(run with --quick for a smaller sweep)\n";
  return 0;
}
