// Ablation (Section VIII-C's observation): the NchooseK implementation the
// paper measured "redundantly computes QUBOs for symmetric constraints
// instead of caching previously computed QUBOs", making compilation 40-50x
// slower than solving the problem directly with Z3. This bench measures:
//   * compile time WITH the symmetric-pattern cache (our default),
//   * compile time WITHOUT it (the paper's implementation),
//   * direct Z3 solve time for the same program,
// so both the cache speedup and the compile/solve ratio are visible.
#include <benchmark/benchmark.h>

#include "core/compile.hpp"
#include "graph/generators.hpp"
#include "problems/vertex_cover.hpp"
#if NCK_HAVE_Z3
#include "classical/z3_backend.hpp"
#endif

namespace {

using namespace nck;

Env make_program(std::int64_t vertices) {
  return VertexCoverProblem{
      vertex_scaling_graph(static_cast<std::size_t>(vertices))}
      .encode();
}

void BM_CompileCached(benchmark::State& state) {
  const Env env = make_program(state.range(0));
  for (auto _ : state) {
    SynthEngine engine;  // cache warms within one compile
    benchmark::DoNotOptimize(compile(env, engine));
  }
}
BENCHMARK(BM_CompileCached)->Arg(9)->Arg(18)->Arg(33);

void BM_CompileUncached(benchmark::State& state) {
  const Env env = make_program(state.range(0));
  SynthEngineOptions options;
  options.use_cache = false;
  for (auto _ : state) {
    SynthEngine engine(options);
    benchmark::DoNotOptimize(compile(env, engine));
  }
}
BENCHMARK(BM_CompileUncached)->Arg(9)->Arg(18)->Arg(33);

// The no-builtin, no-cache configuration resynthesizes from scratch (Z3 or
// LP search) per constraint — closest to what the paper measured.
void BM_CompileUncachedNoBuiltin(benchmark::State& state) {
  const Env env = make_program(state.range(0));
  SynthEngineOptions options;
  options.use_cache = false;
  options.use_builtin = false;
  for (auto _ : state) {
    SynthEngine engine(options);
    benchmark::DoNotOptimize(compile(env, engine));
  }
}
BENCHMARK(BM_CompileUncachedNoBuiltin)->Arg(9)->Arg(18)->Arg(33);

#if NCK_HAVE_Z3
void BM_DirectZ3Solve(benchmark::State& state) {
  const Env env = make_program(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_with_z3(env));
  }
}
BENCHMARK(BM_DirectZ3Solve)->Arg(9)->Arg(18)->Arg(33);
#endif

}  // namespace

BENCHMARK_MAIN();
