// Fig 11 reproduction: QAOA job run time (box plot) versus the number of
// NchooseK variables. The paper's observations to reproduce:
//   * each job takes 7-23 seconds;
//   * there is *no discernible correlation* between problem size and job
//     time (the time is dominated by server-side overheads, not circuit
//     execution);
//   * ~25-35 jobs per QAOA execution; ~500 s total per problem.
// The modeled job times come from the IbmTimingModel; the table also shows
// the *actual* local simulation wall time per job for contrast.
#include <iostream>

#include "circuit/backend.hpp"
#include "circuit/coupling.hpp"
#include "harness.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace nck;
using nck::bench::Instance;

int main() {
  std::cout << "=== Fig 11: QAOA job run time vs #variables ===\n\n";
  const Graph coupling = brooklyn_coupling();
  SynthEngine engine;
  Rng rng(11);

  CircuitBackendOptions options;
  options.qaoa.shots = 1024;
  options.qaoa.max_sim_qubits = 14;
  options.qaoa.optimizer.max_evaluations = 28;

  Table table({"nck-vars", "jobs", "min(s)", "q1(s)", "median(s)", "q3(s)",
               "max(s)", "total(s)", "sim-wall(ms)"});

  for (Instance& inst : bench::graph_instances("max-cut", 33)) {
    Timer wall;
    const CircuitOutcome outcome =
        run_circuit_backend(inst.env, coupling, engine, rng, options);
    const double wall_ms = wall.milliseconds();
    if (!outcome.fits) continue;
    const Summary s = summarize(outcome.job_seconds);
    table.row()
        .cell(inst.env.num_vars())
        .cell(outcome.num_jobs)
        .cell(s.min, 1)
        .cell(s.q1, 1)
        .cell(s.median, 1)
        .cell(s.q3, 1)
        .cell(s.max, 1)
        .cell(outcome.total_seconds, 0)
        .cell(wall_ms / static_cast<double>(outcome.num_jobs), 1);
  }
  table.print(std::cout);
  std::cout << "\nModeled job times stay in the paper's 7-23 s band with no "
               "size trend;\ntotals land near the paper's ~500 s "
               "(server overhead dominated).\n";
  return 0;
}
