// Fig 11 reproduction: QAOA job run time (box plot) versus the number of
// NchooseK variables. The paper's observations to reproduce:
//   * each job takes 7-23 seconds;
//   * there is *no discernible correlation* between problem size and job
//     time (the time is dominated by server-side overheads, not circuit
//     execution);
//   * ~25-35 jobs per QAOA execution; ~500 s total per problem.
// The modeled job times come from the IbmTimingModel; the table also shows
// the *actual* local simulation wall time per job for contrast.
#include <fstream>
#include <iostream>
#include <string>

#include "circuit/backend.hpp"
#include "circuit/coupling.hpp"
#include "circuit/diagonal.hpp"
#include "circuit/qaoa.hpp"
#include "circuit/statevector.hpp"
#include "harness.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace nck;
using nck::bench::Instance;

namespace {

/// Before/after timing of the QAOA evolution kernel at the simulation
/// ceiling: the retired per-gate path (rebuild the circuit and sweep the
/// state once per RZZ/RZ/RX gate, what run_qaoa_prepared did per optimizer
/// evaluation) against the fused diagonal phase-table kernel.
struct QaoaKernelTimings {
  std::size_t num_qubits = 0;
  std::size_t p = 0;
  std::size_t evals = 0;
  double pergate_ms = 0.0;
  double fused_ms = 0.0;
  double speedup = 0.0;
};

QaoaKernelTimings qaoa_kernel_study() {
  QaoaKernelTimings k;
  k.num_qubits = 14;
  k.p = 2;
  k.evals = 40;

  Rng gen(1111);
  const Graph g = circulant_graph(k.num_qubits, std::size_t{4});
  IsingModel ising;
  ising.h.resize(k.num_qubits);
  for (double& h : ising.h) h = gen.uniform(-1.0, 1.0);
  for (const Graph::Edge& e : g.edges()) {
    ising.j.emplace_back(e.first, e.second, gen.uniform(-1.0, 1.0));
  }

  std::vector<std::vector<double>> params(k.evals,
                                          std::vector<double>(2 * k.p));
  for (auto& row : params) {
    for (double& v : row) v = gen.uniform(-1.5, 1.5);
  }

  // Untimed warmup of both paths (touch the state memory, fault in code).
  {
    const Circuit circuit = build_qaoa_circuit(ising, params[0]);
    StateVector warm(k.num_qubits);
    circuit.run(warm);
    const DiagonalCost warm_cost(ising, k.num_qubits);
    warm_cost.evolve_qaoa(warm, params[0]);
  }

  // Per-gate "before": circuit rebuilt and applied gate-by-gate per eval.
  Timer pergate_timer;
  double pergate_checksum = 0.0;
  for (const auto& row : params) {
    const Circuit circuit = build_qaoa_circuit(ising, row);
    StateVector state(k.num_qubits);
    circuit.run(state);
    pergate_checksum += std::norm(state.amplitude(0));
  }
  k.pergate_ms = pergate_timer.milliseconds();

  // Fused "after": one phase table per problem, one pass per cost layer.
  const DiagonalCost cost(ising, k.num_qubits);
  StateVector state(k.num_qubits);
  Timer fused_timer;
  double fused_checksum = 0.0;
  for (const auto& row : params) {
    cost.evolve_qaoa(state, row);
    fused_checksum += std::norm(state.amplitude(0));
  }
  k.fused_ms = fused_timer.milliseconds();
  k.speedup = k.fused_ms > 0.0 ? k.pergate_ms / k.fused_ms : 0.0;

  // Golden-test territory, but cheap to sanity-check here too.
  std::cout << "kernel checksum (per-gate vs fused): " << pergate_checksum
            << " vs " << fused_checksum << "\n";
  return k;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_fig11.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_fig11_qaoa_runtime [--out=<file>]\n";
      return 2;
    }
  }

  std::cout << "=== Fig 11: QAOA job run time vs #variables ===\n\n";
  const Graph coupling = brooklyn_coupling();
  SynthEngine engine;
  Rng rng(11);

  CircuitBackendOptions options;
  options.qaoa.shots = 1024;
  options.qaoa.max_sim_qubits = 14;
  options.qaoa.optimizer.max_evaluations = 28;

  Table table({"nck-vars", "jobs", "min(s)", "q1(s)", "median(s)", "q3(s)",
               "max(s)", "total(s)", "sim-wall(ms)"});

  struct JobRow {
    std::size_t vars = 0;
    std::size_t jobs = 0;
    double total_seconds = 0.0;
    double sim_wall_ms = 0.0;
  };
  std::vector<JobRow> rows;
  for (Instance& inst : bench::graph_instances("max-cut", 33)) {
    Timer wall;
    const CircuitOutcome outcome =
        run_circuit_backend(inst.env, coupling, engine, rng, options);
    const double wall_ms = wall.milliseconds();
    if (!outcome.fits) continue;
    const Summary s = summarize(outcome.job_seconds);
    rows.push_back({inst.env.num_vars(), outcome.num_jobs,
                    outcome.total_seconds,
                    wall_ms / static_cast<double>(outcome.num_jobs)});
    table.row()
        .cell(inst.env.num_vars())
        .cell(outcome.num_jobs)
        .cell(s.min, 1)
        .cell(s.q1, 1)
        .cell(s.median, 1)
        .cell(s.q3, 1)
        .cell(s.max, 1)
        .cell(outcome.total_seconds, 0)
        .cell(wall_ms / static_cast<double>(outcome.num_jobs), 1);
  }
  table.print(std::cout);
  std::cout << "\nModeled job times stay in the paper's 7-23 s band with no "
               "size trend;\ntotals land near the paper's ~500 s "
               "(server overhead dominated).\n";

  // --- QAOA evolution kernel: per-gate vs fused phase table -------------
  std::cout << "\n=== QAOA evolution kernel: per-gate vs fused ===\n\n";
  const QaoaKernelTimings kernel = qaoa_kernel_study();
  Table kernel_table({"kernel", "wall(ms)", "speedup"});
  kernel_table.row()
      .cell("per-gate (old run_qaoa path)")
      .cell(kernel.pergate_ms, 2)
      .cell("1.00x");
  kernel_table.row()
      .cell("fused diagonal (circuit/diagonal.hpp)")
      .cell(kernel.fused_ms, 2)
      .cell(format_double(kernel.speedup, 2) + "x");
  kernel_table.print(std::cout);
  std::cout << "\n(" << kernel.evals << " optimizer evaluations, "
            << kernel.num_qubits << " qubits, p = " << kernel.p << ")\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_fig11_qaoa_runtime: cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\"bench\":\"fig11\",\"jobs\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i) out << ",";
    out << "{\"vars\":" << rows[i].vars << ",\"jobs\":" << rows[i].jobs
        << ",\"total_seconds\":" << rows[i].total_seconds
        << ",\"sim_wall_ms_per_job\":" << rows[i].sim_wall_ms << "}";
  }
  out << "],\"kernel\":{\"num_qubits\":" << kernel.num_qubits
      << ",\"p\":" << kernel.p << ",\"evals\":" << kernel.evals
      << ",\"pergate_ms\":" << kernel.pergate_ms
      << ",\"fused_ms\":" << kernel.fused_ms
      << ",\"speedup\":" << kernel.speedup << "}}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
