// Ablation for the paper's Section IX future work: standard QAOA
// (transverse-field mixer over the penalty-laden QUBO) versus the Quantum
// Alternating Operator Ansatz with one-hot-preserving XY mixers, on map
// coloring. The AOA's mixer confines evolution to the feasible one-hot
// subspace, so (noiselessly) *every* sample decodes, while standard QAOA
// wastes most of its amplitude on one-hot-violating states — the
// quantitative argument for why "custom mixers seem especially appropriate
// to NchooseK problems".
#include <iostream>

#include "circuit/aoa.hpp"
#include "circuit/coupling.hpp"
#include "core/compile.hpp"
#include "graph/generators.hpp"
#include "problems/coloring.hpp"
#include "util/table.hpp"

using namespace nck;

namespace {

struct Row {
  std::size_t valid = 0;    // samples that decode as one-hot
  std::size_t proper = 0;   // samples that are proper colorings
  std::size_t total = 0;
  std::size_t depth = 0;
  std::size_t cx = 0;
};

Row summarize_samples(const MapColoringProblem& problem,
                      const QaoaResult& result) {
  Row row;
  row.total = result.samples.size();
  row.depth = result.depth;
  row.cx = result.cx_count;
  for (const auto& s : result.samples) {
    if (decode_one_hot(s, problem.graph.num_vertices(),
                       static_cast<std::size_t>(problem.num_colors))) {
      ++row.valid;
    }
    if (problem.verify(s)) ++row.proper;
  }
  return row;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: standard QAOA vs XY-mixer AOA (map coloring, "
               "noiseless) ===\n\n";
  const Graph coupling = brooklyn_coupling();
  Table table({"graph", "qubits", "ansatz", "depth", "cx", "%one-hot",
               "%proper"});

  QaoaOptions options;
  options.shots = 2000;
  options.max_sim_qubits = 16;
  options.noise.error_1q = 0.0;
  options.noise.error_cx = 0.0;
  options.noise.readout_flip = 0.0;

  int case_index = 0;
  for (const auto& [name, graph, colors] :
       {std::tuple<const char*, Graph, int>{"path-4", path_graph(4), 2},
        {"cycle-5", cycle_graph(5), 3},
        {"triangle+tail", vertex_scaling_graph(3), 3}}) {
    const MapColoringProblem problem{graph, colors};
    const CompiledQubo cq = compile(problem.encode());
    if (cq.num_qubo_vars() > options.max_sim_qubits) continue;

    Rng rng_std(100 + case_index);
    const QaoaResult standard =
        run_qaoa(cq.qubo, coupling, options, rng_std);
    const Row std_row = summarize_samples(problem, standard);
    table.row()
        .cell(name)
        .cell(cq.num_qubo_vars())
        .cell("qaoa-x-mixer")
        .cell(std_row.depth)
        .cell(std_row.cx)
        .cell(100.0 * static_cast<double>(std_row.valid) /
                  static_cast<double>(std::max<std::size_t>(1, std_row.total)),
              1)
        .cell(100.0 * static_cast<double>(std_row.proper) /
                  static_cast<double>(std::max<std::size_t>(1, std_row.total)),
              1);

    Rng rng_aoa(200 + case_index);
    const QaoaResult aoa =
        run_aoa(problem.conflict_qubo(), cq.qubo,
                OneHotGroups{problem.one_hot_groups()}, coupling, options,
                rng_aoa);
    const Row aoa_row = summarize_samples(problem, aoa);
    table.row()
        .cell(name)
        .cell(cq.num_qubo_vars())
        .cell("aoa-xy-mixer")
        .cell(aoa_row.depth)
        .cell(aoa_row.cx)
        .cell(100.0 * static_cast<double>(aoa_row.valid) /
                  static_cast<double>(std::max<std::size_t>(1, aoa_row.total)),
              1)
        .cell(100.0 * static_cast<double>(aoa_row.proper) /
                  static_cast<double>(std::max<std::size_t>(1, aoa_row.total)),
              1);
    ++case_index;
  }
  table.print(std::cout);
  std::cout << "\nThe XY mixer holds %one-hot at 100 by construction; the "
               "transverse-field mixer\nmust *learn* the one-hot structure "
               "through penalties and loses most shots to it.\n";
  return 0;
}
