// Ablation: annealer fidelity knobs. Sweeps the integrated-control-error
// noise, readout error and chain strength on a fixed mixed hard/soft
// problem (minimum vertex cover) and reports the optimal fraction — the
// mechanism behind Fig 7's soft-constraint penalty: mixed problems have a
// small optimal/suboptimal gap that noise washes out first.
#include <iostream>

#include "anneal/backend.hpp"
#include "anneal/topology.hpp"
#include "graph/generators.hpp"
#include "problems/vertex_cover.hpp"
#include "runtime/result.hpp"
#include "util/table.hpp"

using namespace nck;

int main() {
  std::cout << "=== Ablation: annealer noise and chain strength ===\n\n";
  const VertexCoverProblem problem{vertex_scaling_graph(15)};
  const Env env = problem.encode();
  const GroundTruth truth = ground_truth(env);

  Rng device_rng(2022);
  const Device device = advantage_4_1(device_rng);

  Table table({"ice-sigma", "readout-err", "chain-strength", "qubits",
               "%optimal", "%correct"});
  for (double ice : {0.0, 0.015, 0.05, 0.15}) {
    for (double readout : {0.0, 0.002, 0.02}) {
      SynthEngine engine;
      Rng rng(99);
      AnnealBackendOptions options;
      options.sampler.num_reads = 100;
      options.sampler.ice_sigma = ice;
      options.sampler.readout_error = readout;
      const AnnealOutcome outcome =
          run_annealer(env, device, engine, rng, options);
      if (!outcome.embedded) continue;
      const QualityCounts counts = classify_all(outcome.evaluations, truth);
      table.row()
          .cell(ice, 3)
          .cell(readout, 3)
          .cell("auto")
          .cell(outcome.qubits_used)
          .cell(100.0 * counts.fraction_optimal(), 1)
          .cell(100.0 * counts.fraction_correct(), 1);
    }
  }
  // Mitigation options at fixed moderate noise: spin-reversal transforms
  // and greedy post-processing (both real D-Wave features).
  std::cout << "\n";
  Table mitig({"spin-reversal", "postprocess", "%optimal", "%correct"});
  for (bool srt : {false, true}) {
    for (bool post : {false, true}) {
      SynthEngine engine;
      Rng rng(99);
      AnnealBackendOptions options;
      options.sampler.num_reads = 100;
      options.sampler.ice_sigma = 0.05;  // noisier device to expose effects
      options.sampler.spin_reversal_transform = srt;
      options.sampler.postprocess = post;
      const AnnealOutcome outcome =
          run_annealer(env, device, engine, rng, options);
      if (!outcome.embedded) continue;
      const QualityCounts counts = classify_all(outcome.evaluations, truth);
      mitig.row()
          .cell(srt ? "on" : "off")
          .cell(post ? "on" : "off")
          .cell(100.0 * counts.fraction_optimal(), 1)
          .cell(100.0 * counts.fraction_correct(), 1);
    }
  }
  mitig.print(std::cout);
  std::cout << "\n";

  // Chain-strength sweep at fixed moderate noise.
  for (double strength : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    SynthEngine engine;
    Rng rng(99);
    AnnealBackendOptions options;
    options.sampler.num_reads = 100;
    options.chain_strength = strength;
    const AnnealOutcome outcome =
        run_annealer(env, device, engine, rng, options);
    if (!outcome.embedded) continue;
    const QualityCounts counts = classify_all(outcome.evaluations, truth);
    table.row()
        .cell(0.015, 3)
        .cell(0.002, 3)
        .cell(strength, 1)
        .cell(outcome.qubits_used)
        .cell(100.0 * counts.fraction_optimal(), 1)
        .cell(100.0 * counts.fraction_correct(), 1);
  }
  table.print(std::cout);
  std::cout << "\nExpected: fidelity degrades monotonically with ICE noise; "
               "too-weak chains break,\ntoo-strong chains drown the problem "
               "signal (sweet spot near the automatic value).\n";
  return 0;
}
