// Fig 12 reproduction: classical Z3 run time for minimum vertex cover on
// circulant graphs of growing size (30 runs each), fit to a polynomial —
// the paper reports a very close polynomial fit and sub-3-second solves.
// Also the Section VIII-C comparison: presenting Z3 with the problem
// *after* QUBO translation is drastically slower (paper: 10 vertices < 1 s,
// 20 vertices ~90 s, 30 vertices hours). We run the QUBO path at small
// sizes with a timeout to reproduce the blow-up's shape without the hours.
#include <iostream>

#include "classical/exact_solver.hpp"
#include "core/compile.hpp"
#include "graph/generators.hpp"
#include "problems/vertex_cover.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#if NCK_HAVE_Z3
#include "classical/z3_backend.hpp"
#endif

using namespace nck;

int main(int argc, char** argv) {
#if !NCK_HAVE_Z3
  (void)argc;
  (void)argv;
  std::cout << "Z3 not available in this build; Fig 12 needs NCK_WITH_Z3.\n";
  return 0;
#else
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const std::size_t runs = quick ? 5 : 30;  // the paper uses 30
  std::cout << "=== Fig 12: Z3 run time, min vertex cover on circulant "
               "graphs (" << runs << " runs each) ===\n\n";

  Table table({"vertices", "degree", "mean(ms)", "median(ms)", "stddev(ms)"});
  std::vector<double> xs, ys;
  for (std::size_t n = 100; n <= (quick ? 400u : 1000u); n += 100) {
    const VertexCoverProblem problem{circulant_graph(n, std::size_t{4})};
    const Env env = problem.encode();
    std::vector<double> times;
    for (std::size_t r = 0; r < runs; ++r) {
      Timer t;
      const auto solution = solve_with_z3(env);
      times.push_back(t.milliseconds());
      if (!solution.feasible) return 1;
    }
    const Summary s = summarize(times);
    table.row().cell(n).cell(4).cell(s.mean, 2).cell(s.median, 2).cell(
        s.stddev, 2);
    xs.push_back(static_cast<double>(n));
    ys.push_back(s.mean);
  }
  table.print(std::cout);

  if (xs.size() >= 4) {
    const auto fit = polyfit(xs, ys, 2);
    std::cout << "\nquadratic fit: t(ms) ~= " << fit[0] << " + " << fit[1]
              << "*n + " << fit[2] << "*n^2   (R^2 = "
              << r_squared(xs, ys, fit) << ", paper: 'fit very close to a "
              << "polynomial')\n";
  }

  // --- Z3 on the translated QUBO (Section VIII-C blow-up). ---------------
  std::cout << "\n=== Z3 on the compiled QUBO (same problems) ===\n\n";
  Table qubo_table({"vertices", "qubo-vars", "direct(ms)", "qubo-path(ms)",
                    "slowdown"});
  for (std::size_t n : {6u, 8u, 10u, 12u}) {
    const VertexCoverProblem problem{circulant_graph(n, std::size_t{4})};
    const Env env = problem.encode();
    Timer direct_t;
    (void)solve_with_z3(env);
    const double direct_ms = direct_t.milliseconds();

    const CompiledQubo cq = compile(env);
    Timer qubo_t;
    (void)solve_qubo_with_z3(cq.qubo, /*timeout_ms=*/quick ? 10000 : 60000);
    const double qubo_ms = qubo_t.milliseconds();
    qubo_table.row()
        .cell(n)
        .cell(cq.qubo.num_variables())
        .cell(direct_ms, 2)
        .cell(qubo_ms, 2)
        .cell(qubo_ms / std::max(0.01, direct_ms), 1);
  }
  qubo_table.print(std::cout);
  std::cout << "\nThe QUBO path degrades rapidly with size (the paper "
               "reports minutes at 20\nvertices and hours at 30; we stop "
               "earlier to keep the bench fast).\n";
  return 0;
#endif
}
