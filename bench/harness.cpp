#include "harness.hpp"

#include <stdexcept>

#include "classical/exact_solver.hpp"
#include "graph/algorithms.hpp"

namespace nck::bench {

std::vector<std::size_t> vertex_scaling_sizes(std::size_t max_vertices) {
  std::vector<std::size_t> sizes;
  for (std::size_t n = 6; n <= max_vertices && n <= 33; n += 3) {
    sizes.push_back(n);
  }
  // Past 33 the paper scales in larger increments.
  for (std::size_t n = 42; n <= max_vertices; n += 9) sizes.push_back(n);
  return sizes;
}

std::vector<Instance> graph_instances(const std::string& problem,
                                      std::size_t max_vertices) {
  std::vector<Instance> instances;
  for (std::size_t n : vertex_scaling_sizes(max_vertices)) {
    const Graph g = vertex_scaling_graph(n);
    Instance inst;
    inst.problem = problem;
    inst.label = std::to_string(n) + "v";
    inst.scale = n;
    if (problem == "max-cut") {
      inst.env = MaxCutProblem{g}.encode();
      // One soft constraint per edge; the optimum satisfies max-cut many.
      inst.truth = {true, maximum_cut_size(g)};
    } else if (problem == "min-vertex-cover") {
      inst.env = VertexCoverProblem{g}.encode();
      // |V| soft constraints; the optimum leaves min-cover of them unmet.
      inst.truth = {true, g.num_vertices() - minimum_vertex_cover_size(g)};
    } else if (problem == "map-coloring") {
      inst.env = MapColoringProblem{g, 3}.encode();
      // Chained triangles are 3-chromatic; hard-only problem.
      inst.truth = {true, 0};
    } else if (problem == "clique-cover") {
      // Chained triangles are coverable by n/3 cliques; hard-only problem.
      inst.env = CliqueCoverProblem{g, static_cast<int>(n / 3)}.encode();
      inst.truth = {true, 0};
    } else {
      throw std::invalid_argument("graph_instances: unknown problem " + problem);
    }
    instances.push_back(std::move(inst));
  }
  return instances;
}

std::vector<Instance> cover_instances(const std::string& problem,
                                      std::size_t max_elements,
                                      std::uint64_t seed) {
  std::vector<Instance> instances;
  Rng rng(seed);
  for (std::size_t n = 6; n <= max_elements; n += 6) {
    // Same sets for exact cover and min set cover, as in Section VII.
    Rng instance_rng(rng.split());
    const SetSystem system =
        random_set_system(n, /*partition_blocks=*/n / 3,
                          /*extra_subsets=*/n / 2, instance_rng);
    Instance inst;
    inst.problem = problem;
    inst.label = std::to_string(n) + "e/" + std::to_string(system.subsets.size()) + "s";
    inst.scale = system.subsets.size();
    if (problem == "exact-cover") {
      // Planted partition: always exactly coverable; hard-only problem.
      inst.env = ExactCoverProblem{system}.encode();
      inst.truth = {true, 0};
    } else if (problem == "min-set-cover") {
      const MinSetCoverProblem msc{system};
      inst.env = msc.encode();
      inst.truth = {true,
                    system.subsets.size() - msc.optimal_cover_size()};
    } else {
      throw std::invalid_argument("cover_instances: unknown problem " + problem);
    }
    instances.push_back(std::move(inst));
  }
  return instances;
}

std::vector<Instance> ksat_instances(std::size_t max_vars, std::uint64_t seed) {
  std::vector<Instance> instances;
  Rng rng(seed);
  for (std::size_t n = 4; n <= max_vars; n += 4) {
    Rng instance_rng(rng.split());
    const KSatInstance sat =
        random_ksat(n, /*num_clauses=*/3 * n, /*k=*/3, instance_rng);
    Instance inst;
    inst.problem = "3-sat";
    inst.label = std::to_string(n) + "v/" + std::to_string(sat.clauses.size()) + "c";
    inst.scale = n;
    inst.env = KSatProblem{sat}.encode_repeated();
    inst.truth = {true, 0};  // planted instances are satisfiable; hard-only
    instances.push_back(std::move(inst));
  }
  return instances;
}

std::vector<Instance> all_instances(std::size_t graph_max_vertices,
                                    std::size_t cover_max_elements,
                                    std::size_t sat_max_vars) {
  std::vector<Instance> all;
  for (const char* problem :
       {"max-cut", "min-vertex-cover", "map-coloring", "clique-cover"}) {
    auto batch = graph_instances(problem, graph_max_vertices);
    for (auto& inst : batch) all.push_back(std::move(inst));
  }
  for (const char* problem : {"exact-cover", "min-set-cover"}) {
    auto batch = cover_instances(problem, cover_max_elements);
    for (auto& inst : batch) all.push_back(std::move(inst));
  }
  auto sat = ksat_instances(sat_max_vars);
  for (auto& inst : sat) all.push_back(std::move(inst));
  return all;
}

}  // namespace nck::bench
