// Tests for the qbsolv-style decomposition stack (DESIGN.md §3i): the
// partition planner's QUBO-cost model, program-level incumbent clamping,
// the tabu polish, the one-subproblem byte-identity guarantee over the
// shipped example programs, and the headline 203-variable set cover
// solved end-to-end on the annealer past the 65-variable device cap.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "core/compile.hpp"
#include "core/parse.hpp"
#include "decompose/decompose.hpp"
#include "problems/cover.hpp"
#include "runtime/pool.hpp"
#include "runtime/solver.hpp"

namespace nck {
namespace {

// The headline instance: 41 blocks x 8 elements with full/half subset
// alternatives and 2 straddlers per boundary — 203 variables, one
// interaction component, minimum cover provably 41 (see
// chained_set_system). Small variants reuse the same generator.
MinSetCoverProblem headline_cover(std::size_t blocks = 41) {
  return MinSetCoverProblem{chained_set_system(blocks, 8, 2, 4)};
}

// Every variable appears in exactly one part.
void expect_exact_cover_of_vars(const decompose::Partition& plan,
                                std::size_t num_vars) {
  std::vector<std::size_t> seen(num_vars, 0);
  for (const auto& part : plan.parts) {
    EXPECT_FALSE(part.empty());
    EXPECT_TRUE(std::is_sorted(part.begin(), part.end()));
    for (VarId v : part) {
      ASSERT_LT(v, num_vars);
      ++seen[v];
    }
  }
  for (std::size_t v = 0; v < num_vars; ++v) {
    EXPECT_EQ(seen[v], 1u) << "variable " << v;
  }
}

// --------------------------------------------------------------------------
// plan_partition
// --------------------------------------------------------------------------

TEST(PlanPartition, NullEngineEnforcesPlainVariableCap) {
  // A 10-variable chain (pairwise constraints) with cap 4: every part has
  // at most 4 variables and the parts cover the chain exactly once.
  Env env;
  const auto vars = env.new_vars(10, "x");
  for (std::size_t i = 0; i + 1 < vars.size(); ++i) {
    env.nck({vars[i], vars[i + 1]}, {1});
  }
  const auto plan = decompose::plan_partition(env, 4);
  EXPECT_EQ(plan.components, 1u);
  EXPECT_GE(plan.parts.size(), 3u);
  for (const auto& part : plan.parts) EXPECT_LE(part.size(), 4u);
  expect_exact_cover_of_vars(plan, env.num_vars());
}

TEST(PlanPartition, DeterministicAcrossCalls) {
  const Env env = headline_cover(10).encode();
  SynthEngine engine_a, engine_b;
  const auto a = decompose::plan_partition(env, 65, &engine_a);
  const auto b = decompose::plan_partition(env, 65, &engine_b);
  EXPECT_EQ(a.parts, b.parts);
  EXPECT_EQ(a.components, b.components);
}

TEST(PlanPartition, CostModelKeepsCompiledSubQubosWithinBudget) {
  // The cap counts QUBO variables (program vars + synthesized ancillas of
  // every touched constraint). The planner's estimate uses the unclamped
  // patterns, which upper-bound the clamped copies, so each clamped
  // sub-program must compile within the budget.
  const Env env = headline_cover(10).encode();
  SynthEngine engine;
  constexpr std::size_t kBudget = 65;
  const auto plan = decompose::plan_partition(env, kBudget, &engine);
  expect_exact_cover_of_vars(plan, env.num_vars());
  ASSERT_GT(plan.parts.size(), 1u);

  const std::vector<bool> incumbent(env.num_vars(), false);
  for (const auto& part : plan.parts) {
    const auto sub = decompose::clamp_to_incumbent(env, part, incumbent);
    SynthEngine sub_engine;
    const CompiledQubo compiled = compile(sub.env, sub_engine);
    EXPECT_LE(compiled.num_qubo_vars(), kBudget)
        << "part starting at variable " << part.front();
  }
}

TEST(PlanPartition, AncillaChargingMakesPartsSmallerThanVarCapAlone) {
  const Env env = headline_cover(10).encode();
  SynthEngine engine;
  const auto cost_aware = decompose::plan_partition(env, 65, &engine);
  const auto var_only = decompose::plan_partition(env, 65);
  // Set-cover constraints synthesize several ancillas each, so charging
  // them must produce strictly more, smaller parts.
  EXPECT_GT(cost_aware.parts.size(), var_only.parts.size());
}

TEST(PlanPartition, PacksWholeComponentsFirstFit) {
  // Four independent 3-variable components under cap 6: packable two per
  // part without splitting any component.
  Env env;
  for (int k = 0; k < 4; ++k) {
    const auto vars = env.new_vars(3, "c" + std::to_string(k) + "_");
    env.nck({vars[0], vars[1], vars[2]}, {1});
  }
  const auto plan = decompose::plan_partition(env, 6);
  EXPECT_EQ(plan.components, 4u);
  EXPECT_EQ(plan.parts.size(), 2u);
  expect_exact_cover_of_vars(plan, env.num_vars());
}

TEST(PlanPartition, OversizedSingleVariableStillGetsAPart) {
  // A single constraint whose synthesized QUBO alone exceeds the budget:
  // decomposition can shrink neighborhoods, not constraints, so every
  // variable still lands in a (budget-violating) singleton part.
  Env env;
  const auto vars = env.new_vars(5, "x");
  env.nck({vars[0], vars[1], vars[2], vars[3], vars[4]}, {2, 3});
  SynthEngine engine;
  const auto plan = decompose::plan_partition(env, 2, &engine);
  expect_exact_cover_of_vars(plan, env.num_vars());
  EXPECT_EQ(plan.parts.size(), 5u);
}

TEST(PlanPartition, RejectsZeroBudget) {
  Env env;
  env.new_vars(2, "x");
  EXPECT_THROW(decompose::plan_partition(env, 0), std::invalid_argument);
}

// --------------------------------------------------------------------------
// clamp_to_incumbent
// --------------------------------------------------------------------------

TEST(ClampToIncumbent, ShiftsSelectionByClampedTrueCount) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b, c}, {2});
  std::vector<bool> incumbent{false, true, false};  // b clamped TRUE
  const auto sub = decompose::clamp_to_incumbent(env, {a, c}, incumbent);
  ASSERT_EQ(sub.env.num_constraints(), 1u);
  const Constraint& cc = sub.env.constraints()[0];
  EXPECT_EQ(cc.collection().size(), 2u);
  EXPECT_EQ(cc.selection(), (std::set<unsigned>{1}));  // 2 - 1 clamped TRUE
}

TEST(ClampToIncumbent, TalliesConstraintsDecidedByTheBoundary) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({b, c}, {2});               // fully clamped, violated
  env.nck({b}, {1}, ConstraintKind::kSoft);  // fully clamped, satisfied
  env.nck({c}, {1}, ConstraintKind::kSoft);  // fully clamped, violated
  env.prefer_true(a);                 // survives into the sub-program
  std::vector<bool> incumbent{false, true, false};
  const auto sub = decompose::clamp_to_incumbent(env, {a}, incumbent);
  EXPECT_EQ(sub.clamped_hard_violated, 1u);
  EXPECT_EQ(sub.clamped_soft_satisfied, 1u);
  EXPECT_EQ(sub.clamped_soft_violated, 1u);
  EXPECT_EQ(sub.env.num_constraints(), 1u);
}

TEST(ClampToIncumbent, DropsConditionalTautologies) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  // With b clamped TRUE, "at least 1 of {a, b}" holds for every a.
  env.at_least({a, b}, 1);
  std::vector<bool> incumbent{false, true};
  const auto sub = decompose::clamp_to_incumbent(env, {a}, incumbent);
  EXPECT_EQ(sub.env.num_constraints(), 0u);
  EXPECT_EQ(sub.clamped_hard_violated, 0u);
}

TEST(ClampToIncumbent, SubSolveMatchesConditionalOptimum) {
  // Brute-forcing the sub-program must equal brute-forcing the original
  // restricted to the part (the clamp is exact at the program level).
  const Env env = headline_cover(2).encode();
  const std::size_t n = env.num_vars();
  SynthEngine engine;
  const auto plan = decompose::plan_partition(env, 6, &engine);
  ASSERT_GT(plan.parts.size(), 1u);
  std::vector<bool> incumbent(n, false);
  for (std::size_t v = 0; v < n; v += 2) incumbent[v] = true;

  for (const auto& part : plan.parts) {
    const auto sub = decompose::clamp_to_incumbent(env, part, incumbent);
    ASSERT_LE(part.size(), 20u);

    // Conditional optimum via the original program.
    Evaluation best_direct;
    bool have_direct = false;
    std::vector<bool> full = incumbent;
    for (std::size_t mask = 0; mask < (1u << part.size()); ++mask) {
      for (std::size_t i = 0; i < part.size(); ++i) {
        full[part[i]] = (mask >> i) & 1;
      }
      const Evaluation ev = env.evaluate(full);
      if (!have_direct || decompose::improves(ev, best_direct)) {
        best_direct = ev;
        have_direct = true;
      }
    }

    // Conditional optimum via the sub-program plus the clamp tallies.
    Evaluation best_sub;
    bool have_sub = false;
    std::vector<bool> subx(sub.env.num_vars());
    for (std::size_t mask = 0; mask < (1u << part.size()); ++mask) {
      for (std::size_t i = 0; i < part.size(); ++i) subx[i] = (mask >> i) & 1;
      const Evaluation ev = sub.env.evaluate(subx);
      if (!have_sub || decompose::improves(ev, best_sub)) {
        best_sub = ev;
        have_sub = true;
      }
    }
    EXPECT_EQ(best_direct.hard_violated,
              best_sub.hard_violated + sub.clamped_hard_violated);
    EXPECT_EQ(best_direct.soft_satisfied,
              best_sub.soft_satisfied + sub.clamped_soft_satisfied);
  }
}

// --------------------------------------------------------------------------
// polish_assignment
// --------------------------------------------------------------------------

TEST(PolishAssignment, CrossesTheOneSoftUnitRidge) {
  // Minimal instance of the stall the polish exists for: covering {0..3}
  // with F = {0,1,2,3}, H1 = {0,1}, H2 = {2,3}. From the {H1, H2} cover,
  // reaching the one-subset optimum {F} requires turning F on first — a
  // strict soft loss no descent accepts. Tabu must cross it.
  const MinSetCoverProblem problem{SetSystem{4, {{0, 1, 2, 3}, {0, 1}, {2, 3}}}};
  const Env env = problem.encode();
  const std::vector<bool> halves{false, true, true};
  ASSERT_TRUE(env.evaluate(halves).feasible());
  const std::vector<bool> polished =
      decompose::polish_assignment(env, halves);
  const Evaluation ev = env.evaluate(polished);
  EXPECT_TRUE(ev.feasible());
  EXPECT_EQ(ev.soft_satisfied, 2u);  // F on, both halves off
  EXPECT_EQ(polished, (std::vector<bool>{true, false, false}));
}

TEST(PolishAssignment, NeverReturnsWorseAndRepairsFeasibility) {
  const Env env = headline_cover(3).encode();
  const std::vector<bool> nothing(env.num_vars(), false);  // all uncovered
  const std::vector<bool> polished =
      decompose::polish_assignment(env, nothing);
  const Evaluation ev = env.evaluate(polished);
  EXPECT_TRUE(ev.feasible());
  // Identical inputs give identical outputs (pure function, no RNG).
  EXPECT_EQ(polished, decompose::polish_assignment(env, nothing));
}

TEST(PolishAssignment, ZeroItersIsTheIdentity) {
  const Env env = headline_cover(2).encode();
  const std::vector<bool> start(env.num_vars(), true);
  EXPECT_EQ(decompose::polish_assignment(env, start, 0), start);
}

// --------------------------------------------------------------------------
// The trivial one-subproblem case: byte-identical to the plain pipeline
// --------------------------------------------------------------------------

std::string report_fingerprint(const SolveReport& r) {
  std::ostringstream os;
  os << r.ran << '|' << static_cast<int>(r.failure) << '|'
     << static_cast<int>(r.best_quality) << '|' << r.num_samples << '|'
     << r.counts.optimal << '/' << r.counts.suboptimal << '/'
     << r.counts.incorrect << '|' << r.truth_exact << '|';
  for (bool b : r.best_assignment) os << int(b);
  return os.str();
}

TEST(DecomposeStage, AtOrUnderTheCapIsByteIdenticalToPlainSolve) {
  // Over every shipped example program at or under the cap, enabling
  // decomposition must not change one byte of the outcome: the stage only
  // engages past subproblem_vars.
  const std::filesystem::path dir = NCK_REPO_DIR "/examples/programs";
  std::size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".nck") continue;
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const Env env = parse_program(buffer.str());
    if (env.num_vars() > 65) continue;  // the headline instance decomposes

    Solver plain(1234);
    const SolveReport before = plain.solve(env, BackendKind::kClassical);

    Solver decomposed(1234);
    decomposed.solve_options().decompose.enabled = true;
    const SolveReport after = decomposed.solve(env, BackendKind::kClassical);

    EXPECT_EQ(report_fingerprint(before), report_fingerprint(after))
        << entry.path().filename();
    ++checked;
  }
  EXPECT_GE(checked, 5u);
}

// --------------------------------------------------------------------------
// End to end: 203 variables through a 65-variable device cap
// --------------------------------------------------------------------------

SolveReport solve_headline(std::size_t num_threads) {
  Solver solver(7);
  auto& d = solver.solve_options().decompose;
  d.enabled = true;
  d.num_threads = num_threads;
  return solver.solve(headline_cover().encode(), BackendKind::kAnnealer);
}

TEST(DecomposeStage, SolvesPastTheDeviceCapAndMatchesGroundTruth) {
  const MinSetCoverProblem problem = headline_cover();
  const SolveReport report = solve_headline(1);
  ASSERT_TRUE(report.ran);
  ASSERT_TRUE(report.decompose.has_value());
  const auto& d = *report.decompose;
  EXPECT_EQ(d.num_vars, 203u);
  EXPECT_GT(d.subproblems, 1u);
  EXPECT_EQ(d.components, 1u);
  EXPECT_TRUE(d.converged);
  // One straddler-chained component of 203 variables: past the exact-truth
  // ceiling, so the truth is referenced to the incumbent.
  EXPECT_FALSE(d.truth_exact);
  EXPECT_FALSE(report.truth_exact);

  // Classification matches classical ground truth: the instance's minimum
  // cover is provably its block count (chained_set_system), and the
  // incumbent-referenced report must classify as optimal.
  EXPECT_TRUE(problem.verify(report.best_assignment));
  EXPECT_EQ(problem.cover_size(report.best_assignment), 41u);
  EXPECT_EQ(report.best_quality, Quality::kOptimal);

  // Iterated rounds hit the content-addressed sub-plan cache: every round
  // after the first re-solves clamped variants of the same parts.
  ASSERT_GE(d.round_stats.size(), 2u);
  std::size_t later_hits = 0;
  for (std::size_t r = 1; r < d.round_stats.size(); ++r) {
    later_hits += d.round_stats[r].cache_hits;
  }
  EXPECT_GT(later_hits, 0u);
  // The incumbent energy trajectory is monotone (strict acceptance).
  for (std::size_t r = 1; r < d.round_stats.size(); ++r) {
    EXPECT_GE(d.round_stats[r - 1].hard_violated,
              d.round_stats[r].hard_violated);
    EXPECT_GE(d.round_stats[r].soft_satisfied,
              d.round_stats[r - 1].soft_satisfied);
  }
}

TEST(DecomposeStage, ShippedExampleProgramMatchesTheGenerator) {
  // examples/programs/set_cover_large.nck is the checked-in text of the
  // headline instance; regenerate and compare so the walkthroughs in the
  // README cannot drift from the generator.
  std::ifstream in(NCK_REPO_DIR "/examples/programs/set_cover_large.nck");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), headline_cover().encode().to_string() + "\n");
}

TEST(DecomposeStage, BitIdenticalAcrossThreadCounts) {
  const SolveReport one = solve_headline(1);
  const SolveReport eight = solve_headline(8);
  ASSERT_TRUE(one.ran);
  ASSERT_TRUE(eight.ran);
  EXPECT_EQ(one.best_assignment, eight.best_assignment);
  EXPECT_EQ(report_fingerprint(one), report_fingerprint(eight));
  ASSERT_TRUE(one.decompose.has_value());
  ASSERT_TRUE(eight.decompose.has_value());
  EXPECT_EQ(one.decompose->rounds, eight.decompose->rounds);
  for (std::size_t r = 0; r < one.decompose->round_stats.size(); ++r) {
    EXPECT_EQ(one.decompose->round_stats[r].soft_satisfied,
              eight.decompose->round_stats[r].soft_satisfied);
  }
}

}  // namespace
}  // namespace nck
