// Minimized reproducers for bugs found while standing up the fuzzing
// subsystem (DESIGN.md §3j promote-path: every crash or contract
// violation a harness finds lands here as a ctest regression, even when
// the fix was a one-liner). Each test names the harness that found the
// input and the pre-fix failure mode.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/parse.hpp"
#include "serve/protocol.hpp"

namespace nck {
namespace {

// fuzz_parse: selection literals past ULONG_MAX made std::stoul throw
// std::out_of_range, escaping the documented "ParseError or
// std::invalid_argument" contract (an uncaught-exception abort in any
// caller that honored the header, including the serve daemon's workers).
TEST(FuzzRegressions, HugeSelectionLiteralThrowsTypedParseError) {
  const std::string program = "nck({a},{99999999999999999999999})";
  try {
    parse_program(program);
    FAIL() << "expected ParseLimitError";
  } catch (const ParseLimitError& e) {
    EXPECT_EQ(e.limit(), ParseLimit::kNumberValue);
  } catch (const std::exception& e) {
    FAIL() << "wrong exception type escaped: " << e.what();
  }
}

// fuzz_parse: selection literals in (UINT_MAX, ULONG_MAX] were silently
// truncated by static_cast<unsigned> — nck({a},{4294967296}) parsed as
// nck({a},{0}) and *solved*, quietly answering a different question than
// the program asked. Now a typed limit rejection.
TEST(FuzzRegressions, WideSelectionLiteralDoesNotWrapModulo32Bits) {
  for (const char* program : {
           "nck({a},{4294967296})",  // == {0} after the old truncation
           "nck({a},{4294967297})",  // == {1} after the old truncation
       }) {
    try {
      parse_program(program);
      FAIL() << program << " was accepted";
    } catch (const ParseLimitError& e) {
      EXPECT_EQ(e.limit(), ParseLimit::kNumberValue) << program;
    }
  }
}

// fuzz_serve_protocol: the "strict" wire reader delegated number scanning
// to strtod, which also accepts inf / nan / hex floats — none of them
// JSON. {"op":"stats","deadline_ms":inf} and hex sample budgets like
// {"reads":0x10} slipped through the documented known-domains gate.
TEST(FuzzRegressions, WireNumbersMustBeJsonGrammar) {
  serve::Request request;
  std::string why;
  for (const char* line : {
           R"json({"op":"stats","deadline_ms":inf})json",
           R"json({"op":"stats","deadline_ms":nan})json",
           R"json({"op":"stats","deadline_ms":-infinity})json",
           R"json({"op":"solve","program":"nck({a},{1})","reads":0x10})json",
           R"json({"op":"solve","program":"nck({a},{1})","shots":+5})json",
           R"json({"op":"stats","id":1.})json",
           R"json({"op":"stats","id":.5})json",
           R"json({"op":"stats","id":1e})json",
       }) {
    EXPECT_FALSE(serve::parse_request(line, request, why)) << line;
    EXPECT_FALSE(why.empty()) << line;
  }
  // The JSON number grammar itself stays fully accepted.
  for (const char* line : {
           R"json({"op":"stats","id":0})json",
           R"json({"op":"stats","deadline_ms":-2.5e-1})json",
           R"json({"op":"stats","deadline_ms":250})json",
           R"json({"op":"solve","program":"nck({a},{1})","reads":100})json",
       }) {
    EXPECT_TRUE(serve::parse_request(line, request, why)) << line << why;
  }
}

// fuzz_serve_protocol: grammar-valid overflow (1e999 -> +inf) is still
// admitted for deadline_ms — infinity is the documented "defer to the
// server default" value — but NaN never is.
TEST(FuzzRegressions, OverflowingJsonDeadlineStaysAccepted) {
  serve::Request request;
  std::string why;
  EXPECT_TRUE(serve::parse_request(R"json({"op":"stats","deadline_ms":1e999})json",
                                   request, why))
      << why;
  EXPECT_TRUE(std::isinf(request.deadline_ms));
}

}  // namespace
}  // namespace nck
