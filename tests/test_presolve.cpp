// Tests for the abstract-interpretation presolve stack: the dataflow
// fixpoint engine (analysis/dataflow), the model-preserving reduction
// catalog and its equivalence certification (analysis/reduce), the
// NCK-D* lint pass, deterministic diagnostic emission, the
// order-canonical program fingerprint, and the Solver presolve
// integration (reduce -> solve -> lift).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <stdexcept>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/dataflow/dataflow.hpp"
#include "analysis/reduce/reduce.hpp"
#include "backend/fingerprint.hpp"
#include "runtime/solver.hpp"

namespace nck {
namespace {

const Diagnostic& find_code(const AnalysisReport& report, DiagCode code) {
  for (const auto& d : report.diagnostics()) {
    if (d.code == code) return d;
  }
  throw std::logic_error("diagnostic not found");
}

/// The pair-mining showcase: nck({a,b},{1}) forces an XOR, while
/// nck({a,b,c,c},{0,4}) forces a == b (both 0 or both 1, whatever c is).
/// Jointly unsatisfiable, yet no single constraint's reachable-count set
/// is empty and the collections differ, so neither NCK-P001 nor NCK-P002
/// reasoning can see it — only the pairwise intersection can.
Env pair_unsat_program() {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b}, {1});
  env.nck({a, b, c, c}, {0, 4});
  return env;
}

/// nck({a,b},{0,2}) (a == b) and nck({a,b},{0,1}) (at most one) intersect
/// to the single joint value (FALSE, FALSE): pair mining must force both
/// variables where unary propagation forces neither.
Env pair_forcing_program() {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, b}, {0, 2});
  env.nck({a, b}, {0, 1});
  return env;
}

// --------------------------------------------------------------------------
// Dataflow engine
// --------------------------------------------------------------------------

TEST(Dataflow, PropagationForcesUnitAndSaturatedConstraints) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a}, {0});      // veto: a FALSE
  env.nck({b, c}, {2});   // saturation: both TRUE
  const DataflowResult result = solve_dataflow(env);
  ASSERT_FALSE(result.proved_unsat);
  EXPECT_EQ(result.values[a], ForcedValue::kFalse);
  EXPECT_EQ(result.values[b], ForcedValue::kTrue);
  EXPECT_EQ(result.values[c], ForcedValue::kTrue);
  EXPECT_FALSE(result.needed_pairs);  // phase 1 found everything
}

TEST(Dataflow, SoftConstraintsNeverForce) {
  Env env;
  const VarId a = env.var("a");
  env.nck({a}, {1}, ConstraintKind::kSoft);
  const DataflowResult result = solve_dataflow(env);
  EXPECT_FALSE(result.proved_unsat);
  EXPECT_EQ(result.values[a], ForcedValue::kUnknown);
  EXPECT_EQ(result.num_forced(), 0u);
}

TEST(Dataflow, MinesXorPairFact) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.different(a, b);  // nck({a,b},{1})
  const DataflowResult result = solve_dataflow(env);
  ASSERT_EQ(result.facts.size(), 1u);
  EXPECT_EQ(result.facts[0].a, a);
  EXPECT_EQ(result.facts[0].b, b);
  // XOR: exactly the joint values (1,0) and (0,1).
  EXPECT_EQ(result.facts[0].mask, pair_bit(true, false) | pair_bit(false, true));
}

TEST(Dataflow, PairMiningProvesUnsatBeyondPropagation) {
  const Env env = pair_unsat_program();
  const DataflowResult result = solve_dataflow(env);
  EXPECT_TRUE(result.proved_unsat);
  EXPECT_TRUE(result.needed_pairs);
  EXPECT_TRUE(result.pair_witness);
  EXPECT_NE(result.unsat_constraint, result.unsat_constraint2);

  DataflowOptions no_pairs;
  no_pairs.mine_pairs = false;
  const DataflowResult weak = solve_dataflow(env, no_pairs);
  EXPECT_FALSE(weak.proved_unsat);  // exactly the NCK-P002 engine
}

TEST(Dataflow, PairMiningForcesWhatPropagationCannot) {
  const Env env = pair_forcing_program();
  DataflowOptions no_pairs;
  no_pairs.mine_pairs = false;
  const DataflowResult weak = solve_dataflow(env, no_pairs);
  EXPECT_EQ(weak.num_forced(), 0u);

  const DataflowResult result = solve_dataflow(env);
  ASSERT_FALSE(result.proved_unsat);
  EXPECT_TRUE(result.needed_pairs);
  EXPECT_EQ(result.values[0], ForcedValue::kFalse);
  EXPECT_EQ(result.values[1], ForcedValue::kFalse);
}

TEST(Dataflow, PropagationStyleUnsatKeepsSingleWitness) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, b}, {2});  // both TRUE
  env.nck({a}, {0});     // a FALSE
  const DataflowResult result = solve_dataflow(env);
  EXPECT_TRUE(result.proved_unsat);
  EXPECT_FALSE(result.pair_witness);
  EXPECT_EQ(result.unsat_constraint, result.unsat_constraint2);
}

// --------------------------------------------------------------------------
// Reduction catalog
// --------------------------------------------------------------------------

TEST(Reduce, ForcedSubstitutionShiftsSelections) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b, c}, {1, 2});
  env.nck({a}, {1});  // a forced TRUE
  const ReduceResult result = reduce_program(env);
  ASSERT_FALSE(result.proved_unsat);
  EXPECT_TRUE(result.changed());
  EXPECT_EQ(result.reduced.num_vars(), 2u);
  ASSERT_EQ(result.reduced.num_constraints(), 1u);
  // Selection {1,2} shifted by the substituted TRUE: {0,1} over {b,c}.
  const Constraint& kept = result.reduced.constraints().front();
  EXPECT_EQ(kept.cardinality(), 2u);
  EXPECT_EQ(std::vector<unsigned>(kept.selection().begin(),
                                  kept.selection().end()),
            (std::vector<unsigned>{0, 1}));

  // Lift maps reduced assignments back under the forced values.
  const std::vector<bool> lifted = result.trace.lift({true, false});
  ASSERT_EQ(lifted.size(), 3u);
  EXPECT_TRUE(lifted[a]);   // forced
  EXPECT_TRUE(lifted[b]);   // copied
  EXPECT_FALSE(lifted[c]);  // copied
  EXPECT_TRUE(result.trace.consistent(lifted));
  EXPECT_EQ(result.trace.project(lifted), (std::vector<bool>{true, false}));

  const ReductionVerdict verdict = verify_reduction(env, result);
  EXPECT_TRUE(verdict.checked);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

TEST(Reduce, DuplicateAndSubsumedHardConstraintsRemoved) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, b}, {1});        // tight
  env.nck({a, b}, {1});        // duplicate of #0
  env.nck({a, b}, {0, 1, 2});  // subsumed by #0 (and a tautology besides)
  env.prefer_false(a);
  const ReduceResult result = reduce_program(env);
  EXPECT_EQ(result.reduced.num_hard(), 1u);
  EXPECT_EQ(result.reduced.num_soft(), 1u);

  const std::vector<Subsumption> subs = find_hard_subsumptions(env);
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0].removed, 1u);
  EXPECT_EQ(subs[0].by, 0u);
  EXPECT_TRUE(subs[0].duplicate);
  EXPECT_EQ(subs[1].removed, 2u);
  EXPECT_FALSE(subs[1].duplicate);

  const ReductionVerdict verdict = verify_reduction(env, result);
  EXPECT_TRUE(verdict.checked);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

TEST(Reduce, DecidedSoftConstraintsBecomeOffsets) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a}, {1});     // a forced TRUE
  env.prefer_true(a);    // always satisfied once substituted
  env.prefer_false(a);   // never satisfiable
  env.nck({b}, {0, 1});  // tautology, keeps b in the program
  env.prefer_false(b);   // undecided: survives
  const ReduceResult result = reduce_program(env);
  EXPECT_EQ(result.trace.soft_always_satisfied, 1u);
  EXPECT_EQ(result.trace.soft_never_satisfied, 1u);
  EXPECT_EQ(result.reduced.num_soft(), 1u);
  EXPECT_EQ(result.reduced.num_hard(), 0u);

  const ReductionVerdict verdict = verify_reduction(env, result);
  EXPECT_TRUE(verdict.checked);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

TEST(Reduce, UnsatShortCircuitProducesEmptyProgram) {
  const Env env = pair_unsat_program();
  const ReduceResult result = reduce_program(env);
  EXPECT_TRUE(result.proved_unsat);
  EXPECT_TRUE(result.needed_pairs);
  EXPECT_EQ(result.reduced.num_constraints(), 0u);
  ASSERT_FALSE(result.steps.empty());
  EXPECT_EQ(result.steps.front().rule, ReductionRule::kUnsatShortCircuit);

  // Certification confirms: no assignment satisfies the original.
  const ReductionVerdict verdict = verify_reduction(env, result);
  EXPECT_TRUE(verdict.checked);
  EXPECT_TRUE(verdict.ok) << verdict.detail;
}

TEST(Reduce, NeverConstrainedVariablePassesThrough) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  (void)env.var("ghost");  // appears in no constraint (the NCK-P004 story)
  env.nck({a, b}, {1});
  const ReduceResult result = reduce_program(env);
  EXPECT_FALSE(result.changed());
  EXPECT_EQ(result.reduced.num_vars(), 3u);
  EXPECT_TRUE(result.trace.identity());
}

TEST(Reduce, VerifyRejectsATamperedReduction) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b, c}, {2});
  env.nck({a}, {1});
  ReduceResult result = reduce_program(env);
  ASSERT_TRUE(result.changed());
  ASSERT_EQ(result.reduced.num_vars(), 2u);
  // Sabotage: swap the surviving constraint for a looser one. The
  // reduced program now admits assignments the original rejects.
  Env loose;
  loose.var("b");
  loose.var("c");
  loose.nck({0, 1}, {0, 1, 2});
  result.reduced = loose;
  const ReductionVerdict verdict = verify_reduction(env, result);
  EXPECT_TRUE(verdict.checked);
  EXPECT_FALSE(verdict.ok);
  EXPECT_FALSE(verdict.detail.empty());
}

TEST(Reduce, VerifySkipsOversizedPrograms) {
  Env env;
  const std::vector<VarId> vars = env.new_vars(6, "v");
  env.at_most(vars, 3);
  const ReduceResult result = reduce_program(env);
  const ReductionVerdict verdict = verify_reduction(env, result, 4);
  EXPECT_FALSE(verdict.checked);
  EXPECT_TRUE(verdict.ok);  // vacuously
}

TEST(Reduce, ComponentsAndSplit) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  const VarId c = env.var("c"), d = env.var("d");
  env.nck({a, b}, {1});
  env.nck({c, d}, {2});
  env.prefer_false(a);
  const auto components = constraint_components(env);
  ASSERT_EQ(components.size(), 2u);

  const ComponentSplit split = split_components(env);
  ASSERT_EQ(split.programs.size(), 2u);
  EXPECT_EQ(split.programs[0].num_constraints(), 2u);  // hard + its soft
  EXPECT_EQ(split.programs[1].num_constraints(), 1u);
  EXPECT_EQ(split.var_maps[0], (std::vector<VarId>{a, b}));
  EXPECT_EQ(split.var_maps[1], (std::vector<VarId>{c, d}));
  EXPECT_EQ(split.constraint_maps[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(split.constraint_maps[1], (std::vector<std::size_t>{1}));
  EXPECT_TRUE(split.free_vars.empty());
}

TEST(Reduce, SplitListsUnconstrainedVariablesAsFree) {
  // Variables in no constraint belong to no component; the decomposer
  // relies on var_maps + free_vars covering [0, n) exactly once.
  Env env;
  const VarId a = env.var("a");
  const VarId isolated = env.var("isolated");
  const VarId b = env.var("b");
  env.nck({a, b}, {1});
  const ComponentSplit split = split_components(env);
  ASSERT_EQ(split.programs.size(), 1u);
  EXPECT_EQ(split.var_maps[0], (std::vector<VarId>{a, b}));
  EXPECT_EQ(split.free_vars, (std::vector<VarId>{isolated}));
}

TEST(Reduce, SplitOfUnconstrainedProgramIsAllFree) {
  Env env;
  const std::vector<VarId> vars = env.new_vars(3, "v");
  const ComponentSplit split = split_components(env);
  EXPECT_TRUE(split.programs.empty());
  EXPECT_EQ(split.free_vars, vars);

  const ComponentSplit empty = split_components(Env{});
  EXPECT_TRUE(empty.programs.empty());
  EXPECT_TRUE(empty.free_vars.empty());
}

TEST(Reduce, SplitKeepsAllSoftProgramsWhole) {
  // A program with only soft constraints still splits per shared-variable
  // component, each sub-program carrying its own soft constraints.
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b}, {1}, ConstraintKind::kSoft);
  env.prefer_true(c);
  const ComponentSplit split = split_components(env);
  ASSERT_EQ(split.programs.size(), 2u);
  EXPECT_EQ(split.programs[0].num_soft(), 1u);
  EXPECT_EQ(split.programs[0].num_hard(), 0u);
  EXPECT_EQ(split.var_maps[0], (std::vector<VarId>{a, b}));
  EXPECT_EQ(split.var_maps[1], (std::vector<VarId>{c}));
  EXPECT_TRUE(split.free_vars.empty());
}

TEST(Reduce, SplitJoinsHardClustersBridgedBySoftConstraint) {
  // Two hard-disjoint clusters tied only through a soft constraint must
  // land in one component: their soft counts are coupled, so solving them
  // separately could mis-rank assignments.
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  const VarId c = env.var("c"), d = env.var("d");
  env.nck({a, b}, {1});
  env.nck({c, d}, {1});
  env.nck({b, c}, {2}, ConstraintKind::kSoft);  // the bridge
  const ComponentSplit split = split_components(env);
  ASSERT_EQ(split.programs.size(), 1u);
  EXPECT_EQ(split.var_maps[0], (std::vector<VarId>{a, b, c, d}));
  EXPECT_EQ(split.programs[0].num_hard(), 2u);
  EXPECT_EQ(split.programs[0].num_soft(), 1u);
}

TEST(Reduce, SummaryCountsMatchTrace) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b, c}, {1, 2});
  env.nck({c}, {1});
  env.prefer_true(c);
  const ReduceResult result = reduce_program(env);
  const PresolveSummary summary = summarize_reduction(env, result);
  EXPECT_EQ(summary.original_vars, 3u);
  EXPECT_EQ(summary.reduced_vars, 2u);
  EXPECT_EQ(summary.forced, 1u);
  EXPECT_EQ(summary.soft_always_satisfied, 1u);
  EXPECT_EQ(summary.original_constraints, 3u);
  EXPECT_EQ(summary.reduced_constraints, 1u);
  EXPECT_FALSE(summary.proved_unsat);
}

// --------------------------------------------------------------------------
// NCK-D* lint pass
// --------------------------------------------------------------------------

TEST(PresolveLint, ForcedVariableNote) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, b}, {1, 2});  // b TRUE already satisfies this: a stays free
  env.nck({b}, {1});
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  ASSERT_TRUE(report.has_code(DiagCode::kForcedVariable));
  const Diagnostic& d = find_code(report, DiagCode::kForcedVariable);
  EXPECT_EQ(d.severity, Severity::kNote);
  EXPECT_EQ(d.location.kind, DiagLocation::Kind::kVariable);
  EXPECT_EQ(d.location.index, static_cast<std::size_t>(b));
}

TEST(PresolveLint, SubsumedConstraintNote) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, b}, {1});
  env.nck({a, b}, {0, 1});
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  ASSERT_TRUE(report.has_code(DiagCode::kSubsumedConstraint));
  const Diagnostic& d = find_code(report, DiagCode::kSubsumedConstraint);
  EXPECT_EQ(d.severity, Severity::kNote);
  EXPECT_EQ(d.location.index, 1u);   // the weaker constraint
  EXPECT_EQ(d.location.index2, 0u);  // subsumed by the tighter one
}

TEST(PresolveLint, IndependentComponentsNote) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  const VarId c = env.var("c"), d = env.var("d");
  env.nck({a, b}, {1});
  env.nck({c, d}, {1});
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  EXPECT_TRUE(report.has_code(DiagCode::kIndependentComponents));
}

TEST(PresolveLint, PairUnsatIsAnErrorOnlyWhenNovel) {
  // Jointly unsatisfiable, invisible to P001/P002: D003 carries the proof.
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(pair_unsat_program());
  ASSERT_TRUE(report.has_code(DiagCode::kPresolveUnsat));
  const Diagnostic& d = find_code(report, DiagCode::kPresolveUnsat);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.location.kind, DiagLocation::Kind::kConstraintPair);
  EXPECT_FALSE(report.has_code(DiagCode::kContradictoryPair));
  EXPECT_FALSE(report.has_code(DiagCode::kInfeasibleByPropagation));

  // A P001-detectable contradiction must NOT be re-reported as D003.
  Env p001;
  const VarId a = p001.var("a"), b = p001.var("b");
  p001.nck({a, b}, {2});
  p001.nck({a, b}, {0});
  const AnalysisReport old_story = analyzer.analyze(p001);
  EXPECT_TRUE(old_story.has_code(DiagCode::kContradictoryPair));
  EXPECT_FALSE(old_story.has_code(DiagCode::kPresolveUnsat));
}

TEST(PresolveLint, CleanProgramHasNoDFindings) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b}, {1, 2});
  env.nck({a, c}, {1, 2});
  env.nck({b, c}, {1, 2});
  env.prefer_false(a);
  env.prefer_false(b);
  env.prefer_false(c);
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  EXPECT_FALSE(report.has_code(DiagCode::kForcedVariable));
  EXPECT_FALSE(report.has_code(DiagCode::kSubsumedConstraint));
  EXPECT_FALSE(report.has_code(DiagCode::kIndependentComponents));
  EXPECT_FALSE(report.has_code(DiagCode::kPresolveUnsat));
}

// --------------------------------------------------------------------------
// Satellite: deterministic diagnostic emission
// --------------------------------------------------------------------------

/// Trips many passes at once: forced variable, subsumption, duplicate,
/// tautology, unused variable, independent components.
Env noisy_program() {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  const VarId c = env.var("c"), d = env.var("d");
  (void)env.var("ghost");
  env.nck({a, b}, {1});
  env.nck({a, b}, {0, 1});     // subsumed
  env.nck({c, d}, {0, 1, 2});  // tautology, separate component
  env.nck({d}, {1});           // forces d TRUE
  env.prefer_false(a);
  return env;
}

TEST(DeterministicDiagnostics, ReportIsSortedByCodeThenLocation) {
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(noisy_program());
  const auto& diags = report.diagnostics();
  ASSERT_GE(diags.size(), 4u);
  EXPECT_TRUE(std::is_sorted(
      diags.begin(), diags.end(), [](const Diagnostic& x, const Diagnostic& y) {
        return x.code < y.code;
      }));
}

TEST(DeterministicDiagnostics, LintJsonIsByteStable) {
  Analyzer first, second;
  const std::string a = first.analyze(noisy_program()).to_json();
  const std::string b = second.analyze(noisy_program()).to_json();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

// --------------------------------------------------------------------------
// Satellite: order-canonical program fingerprint
// --------------------------------------------------------------------------

TEST(CanonicalFingerprint, ShuffledConstraintOrderHashesAlike) {
  Env one;
  const VarId a1 = one.var("a"), b1 = one.var("b"), c1 = one.var("c");
  one.nck({a1, b1}, {1, 2});
  one.nck({b1, c1}, {1});
  one.prefer_false(c1);

  Env two;  // same variables, same constraints, permuted order
  const VarId a2 = two.var("a"), b2 = two.var("b"), c2 = two.var("c");
  two.prefer_false(c2);
  two.nck({b2, c2}, {1});
  two.nck({a2, b2}, {1, 2});

  backend::Fingerprint f1, f2;
  backend::mix_env(f1, one);
  backend::mix_env(f2, two);
  EXPECT_EQ(f1, f2);
}

TEST(CanonicalFingerprint, RepeatedSoftConstraintsStayDistinct) {
  Env once;
  const VarId a1 = once.var("a");
  once.nck({a1}, {0, 1});
  once.prefer_true(a1);

  Env twice;  // the repeated soft doubles its weight: different program
  const VarId a2 = twice.var("a");
  twice.nck({a2}, {0, 1});
  twice.prefer_true(a2);
  twice.prefer_true(a2);

  backend::Fingerprint f1, f2;
  backend::mix_env(f1, once);
  backend::mix_env(f2, twice);
  EXPECT_NE(f1, f2);
}

// --------------------------------------------------------------------------
// Solver integration
// --------------------------------------------------------------------------

/// The headline instance: a 12-variable committee constraint with a
/// non-contiguous selection set is beyond every synthesis budget
/// (NCK-P008), but six unit vetoes let presolve collapse it to a
/// contiguous at-most-3 over six variables.
Env committee_program() {
  Env env;
  const std::vector<VarId> members = env.new_vars(12, "m");
  env.nck(members, {0, 1, 2, 3, 12});
  for (std::size_t i = 6; i < 12; ++i) env.nck({members[i]}, {0});
  for (std::size_t i = 0; i < 6; ++i) env.prefer_true(members[i]);
  return env;
}

TEST(SolverPresolve, UnlocksSynthBudgetRejectedProgram) {
  const Env env = committee_program();

  Solver without(99);
  without.solve_options().presolve = false;
  const SolveReport rejected = without.solve(env, BackendKind::kClassical);
  EXPECT_FALSE(rejected.ran);
  EXPECT_EQ(rejected.failure, FailureKind::kAnalysisRejected);
  EXPECT_TRUE(rejected.analysis.has_code(DiagCode::kSynthBudgetExceeded));

  Solver with(99);
  const SolveReport solved = with.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(solved.ran);
  EXPECT_EQ(solved.best_quality, Quality::kOptimal);
  EXPECT_EQ(solved.truth.best_soft_satisfied, 3u);  // any 3 of m0..m5
  ASSERT_TRUE(solved.presolve.has_value());
  EXPECT_EQ(solved.presolve->forced, 6u);
  EXPECT_TRUE(solved.presolve->verified);
  // The lifted best assignment pins every vetoed member FALSE.
  std::size_t chosen = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    chosen += solved.best_assignment[i] ? 1u : 0u;
  }
  EXPECT_EQ(chosen, 3u);
  for (std::size_t i = 6; i < 12; ++i) EXPECT_FALSE(solved.best_assignment[i]);
  // Definition-8 classification agrees in the original space.
  EXPECT_EQ(env.evaluate(solved.best_assignment).hard_violated, 0u);
}

TEST(SolverPresolve, FullyDecidedProgramShortCircuits) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a}, {1});
  env.nck({b}, {0});
  env.prefer_true(a);
  Solver solver(7);
  const SolveReport report = solver.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(report.ran);
  EXPECT_EQ(report.best_quality, Quality::kOptimal);
  EXPECT_EQ(report.num_samples, 1u);
  EXPECT_TRUE(report.truth.feasible);
  EXPECT_EQ(report.truth.best_soft_satisfied, 1u);  // the decided soft
  EXPECT_EQ(report.best_assignment, (std::vector<bool>{true, false}));
  EXPECT_EQ(report.trace.counter("presolve.short_circuit"), 1.0);
}

TEST(SolverPresolve, LiftAddsDecidedSoftOffsets) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b, c}, {1, 2});
  env.nck({c}, {1});   // forces c TRUE
  env.prefer_true(c);  // decided: always satisfied after substitution
  env.prefer_false(a);
  Solver solver(7);
  const SolveReport report = solver.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(report.ran);
  EXPECT_EQ(report.best_quality, Quality::kOptimal);
  // Reduced-space best (prefer_false(a)) plus the decided soft.
  EXPECT_EQ(report.truth.best_soft_satisfied, 2u);
  EXPECT_TRUE(report.best_assignment[c]);
  ASSERT_TRUE(report.presolve.has_value());
  EXPECT_EQ(report.presolve->soft_always_satisfied, 1u);
  EXPECT_EQ(env.evaluate(report.best_assignment).soft_satisfied, 2u);
}

TEST(SolverPresolve, PairProvedUnsatRejectsWithD003) {
  Solver solver(7);
  const SolveReport report =
      solver.solve(pair_unsat_program(), BackendKind::kClassical);
  EXPECT_FALSE(report.ran);
  EXPECT_EQ(report.failure, FailureKind::kAnalysisRejected);
  EXPECT_TRUE(report.analysis.has_code(DiagCode::kPresolveUnsat));
  ASSERT_TRUE(report.presolve.has_value());
  EXPECT_TRUE(report.presolve->proved_unsat);
}

TEST(SolverPresolve, PlanCacheServesWarmPresolve) {
  const Env env = committee_program();
  Solver solver(7);
  const SolveReport cold = solver.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(cold.ran);
  EXPECT_EQ(cold.trace.counter("presolve.cache_hit"), 0.0);
  EXPECT_EQ(cold.trace.counter("presolve.cache_miss"), 1.0);
  const SolveReport warm = solver.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(warm.ran);
  EXPECT_EQ(warm.trace.counter("presolve.cache_hit"), 1.0);
  EXPECT_EQ(warm.best_quality, Quality::kOptimal);
}

TEST(SolverPresolve, IdentityPresolveLeavesReportDisengaged) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, b}, {1});
  env.prefer_false(a);
  Solver solver(7);
  const SolveReport report = solver.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(report.ran);
  EXPECT_FALSE(report.presolve.has_value());
  EXPECT_EQ(report.best_quality, Quality::kOptimal);
}

TEST(SolverPresolve, OnAndOffAgreeOnCleanPrograms) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b}, {1, 2});
  env.nck({b, c}, {1});
  env.nck({c}, {0});  // reducible: c FALSE, then b TRUE
  env.prefer_false(a);
  Solver on(7), off(7);
  off.solve_options().presolve = false;
  const SolveReport with = on.solve(env, BackendKind::kClassical);
  const SolveReport without = off.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(with.ran);
  ASSERT_TRUE(without.ran);
  EXPECT_EQ(with.best_quality, without.best_quality);
  EXPECT_EQ(with.truth.feasible, without.truth.feasible);
  EXPECT_EQ(with.truth.best_soft_satisfied, without.truth.best_soft_satisfied);
  EXPECT_EQ(with.best_assignment, without.best_assignment);
}

// --------------------------------------------------------------------------
// Satellite: randomized equivalence property
// --------------------------------------------------------------------------

/// Random nck(N, K) program: up to 5 variables, 1..6 constraints, mixed
/// hard/soft, collections with repetition (multiplicities), arbitrary
/// non-empty selection sets.
Env random_program(std::mt19937_64& rng) {
  Env env;
  std::uniform_int_distribution<std::size_t> var_count(1, 5);
  const std::vector<VarId> vars = env.new_vars(var_count(rng), "v");
  std::uniform_int_distribution<std::size_t> constraint_count(1, 6);
  std::uniform_int_distribution<std::size_t> collection_size(1, 4);
  std::uniform_int_distribution<std::size_t> pick(0, vars.size() - 1);
  std::uniform_int_distribution<int> percent(0, 99);
  const std::size_t num_constraints = constraint_count(rng);
  for (std::size_t i = 0; i < num_constraints; ++i) {
    std::vector<VarId> collection;
    const std::size_t size = collection_size(rng);
    for (std::size_t j = 0; j < size; ++j) collection.push_back(vars[pick(rng)]);
    std::set<unsigned> selection;
    for (unsigned k = 0; k <= collection.size(); ++k) {
      if (percent(rng) < 40) selection.insert(k);
    }
    if (selection.empty()) {
      selection.insert(static_cast<unsigned>(pick(rng) % (size + 1)));
    }
    const bool soft = percent(rng) < 30;
    env.nck(std::move(collection), std::move(selection),
            soft ? ConstraintKind::kSoft : ConstraintKind::kHard);
  }
  return env;
}

/// Brute-force Definition-8 ground truth by full enumeration.
GroundTruth enumerate_truth(const Env& env) {
  GroundTruth truth;
  const std::size_t n = env.num_vars();
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
    std::vector<bool> assignment(n);
    for (std::size_t v = 0; v < n; ++v) assignment[v] = (bits >> v) & 1;
    const Evaluation eval = env.evaluate(assignment);
    if (!eval.feasible()) continue;
    if (!truth.feasible || eval.soft_satisfied > truth.best_soft_satisfied) {
      truth.feasible = true;
      truth.best_soft_satisfied = eval.soft_satisfied;
    }
  }
  return truth;
}

TEST(PresolveProperty, RandomProgramsPreserveGroundTruthAcross100Seeds) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull);
    const Env env = random_program(rng);
    const ReduceResult result = reduce_program(env);
    const ReductionVerdict verdict = verify_reduction(env, result);
    ASSERT_TRUE(verdict.checked) << "seed " << seed;
    EXPECT_TRUE(verdict.ok) << "seed " << seed << ": " << verdict.detail;

    const GroundTruth original = enumerate_truth(env);
    if (result.proved_unsat) {
      EXPECT_FALSE(original.feasible) << "seed " << seed;
      continue;
    }
    const GroundTruth reduced = enumerate_truth(result.reduced);
    ASSERT_EQ(original.feasible, reduced.feasible) << "seed " << seed;
    if (original.feasible) {
      EXPECT_EQ(original.best_soft_satisfied,
                reduced.best_soft_satisfied +
                    result.trace.soft_always_satisfied)
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace nck
