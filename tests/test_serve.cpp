// Serve-daemon robustness: wire-protocol strictness (malformed input can
// never kill the daemon, only earn a typed bad_request), admission
// control and load shedding, queue-deadline rejection, graceful drain,
// the stuck-worker watchdog, and the latency histogram behind the p50/p99
// gauges.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/latency.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace nck::serve {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------- protocol

TEST(Protocol, ParsesFullRequest) {
  Request req;
  std::string why;
  ASSERT_TRUE(parse_request(
      R"x({"id":7,"op":"solve","program":"nck({a,b},{1})","backend":"annealer",)x"
      R"x("deadline_ms":250,"reads":100,"shots":4000,"trace":true})x",
      req, why))
      << why;
  EXPECT_TRUE(req.has_id);
  EXPECT_EQ(req.id, 7u);
  EXPECT_EQ(req.op, Op::kSolve);
  EXPECT_EQ(req.program, "nck({a,b},{1})");
  EXPECT_EQ(req.backend, BackendKind::kAnnealer);
  EXPECT_DOUBLE_EQ(req.deadline_ms, 250.0);
  EXPECT_EQ(req.reads, 100u);
  EXPECT_EQ(req.shots, 4000u);
  EXPECT_TRUE(req.trace);
}

TEST(Protocol, RejectsMalformedLinesWithAReason) {
  const char* bad[] = {
      "",                                    // empty
      "not json at all",                     // garbage
      "{\"op\":\"solve\"",                   // truncated object
      "{\"op\":\"solve\",}",                 // trailing comma
      "{\"op\":\"launch_missiles\"}",        // unknown op
      "{\"op\":\"solve\"}",                  // missing program
      "{\"op\":\"solve\",\"program\":\"\"}", // empty program
      "{\"program\":\"nck({a},{1})\"}",      // missing op
      "{\"op\":\"solve\",\"program\":\"x\",\"frobnicate\":1}",  // unknown key
      "{\"id\":-3,\"op\":\"stats\"}",        // negative id
      "{\"id\":1.5,\"op\":\"stats\"}",       // fractional id
      "{\"op\":\"solve\",\"program\":\"x\",\"backend\":\"abacus\"}",
      "{\"op\":\"solve\",\"program\":\"x\",\"reads\":-1}",
      "{\"op\":\"solve\",\"program\":\"x\",\"deadline_ms\":\"soon\"}",
      "{\"op\":\"stats\"} trailing",         // trailing characters
      "[1,2,3]",                             // not an object
  };
  for (const char* line : bad) {
    Request req;
    std::string why;
    EXPECT_FALSE(parse_request(line, req, why)) << line;
    EXPECT_FALSE(why.empty()) << line;
  }
}

TEST(Protocol, OversizedLineIsRejectedBeforeParsing) {
  std::string line = "{\"op\":\"solve\",\"program\":\"";
  line += std::string(kMaxRequestBytes, 'x');
  line += "\"}";
  Request req;
  std::string why;
  EXPECT_FALSE(parse_request(line, req, why));
  EXPECT_NE(why.find("byte cap"), std::string::npos);
}

TEST(Protocol, IdParsedBeforeTheFailureIsEchoed) {
  Request req;
  std::string why;
  EXPECT_FALSE(parse_request("{\"id\":9,\"op\":\"nope\"}", req, why));
  EXPECT_TRUE(req.has_id);
  EXPECT_EQ(id_json(req), "9");
  EXPECT_EQ(error_response(id_json(req), "invalid", WireError::kBadRequest,
                           why)
                .find("{\"id\":9,"),
            0u);
}

TEST(Protocol, ResponsesEscapeDetails) {
  const std::string resp = error_response(
      "null", "solve", WireError::kBadRequest, "quote \" and\nnewline");
  EXPECT_NE(resp.find("\\\""), std::string::npos);
  EXPECT_NE(resp.find("\\n"), std::string::npos);
  EXPECT_EQ(resp.find('\n'), std::string::npos)
      << "a response must stay a single line";
}

// ----------------------------------------------------- latency histogram

TEST(Latency, QuantilesApproximateWithinBucketGrowth) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Geometric buckets with 1.25 growth: at most 25% relative error, and
  // quantile() reports bucket upper bounds so the estimate never reads low.
  EXPECT_GE(h.quantile(0.5), 500.0);
  EXPECT_LE(h.quantile(0.5), 500.0 * 1.25);
  EXPECT_GE(h.quantile(0.99), 990.0);
  EXPECT_LE(h.quantile(0.99), 1000.0);  // clamped to the observed max
  EXPECT_EQ(h.quantile(1.0), 1000.0);
}

TEST(Latency, EmptyAndEdgeObservations) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.99), 0.0);
  h.observe(-5.0);  // clamps to 0
  h.observe(0.0);
  h.observe(1e9);  // clamps into the last bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  EXPECT_EQ(h.quantile(1.0), 1e9);
}

// ------------------------------------------------------------- harness

/// Collects responses from an in-process Server and lets tests wait for
/// them by count or by id substring.
class TestClient {
 public:
  Server::Sink sink() {
    return [this](const std::string& line) {
      std::lock_guard lock(mutex_);
      lines_.push_back(line);
      cv_.notify_all();
    };
  }

  /// Blocks until at least `n` responses arrived (fails the test on a 10s
  /// timeout, so a deadlocked daemon cannot hang the suite).
  std::vector<std::string> wait_for(std::size_t n) {
    std::unique_lock lock(mutex_);
    EXPECT_TRUE(cv_.wait_for(lock, 10s, [&] { return lines_.size() >= n; }))
        << "timed out waiting for " << n << " responses, have "
        << lines_.size();
    return lines_;
  }

  /// The response echoing `id`, or "" when absent.
  std::string by_id(std::uint64_t id) {
    const std::string tag = "{\"id\":" + std::to_string(id) + ",";
    std::lock_guard lock(mutex_);
    for (const std::string& line : lines_) {
      if (line.rfind(tag, 0) == 0) return line;
    }
    return "";
  }

  std::size_t count() {
    std::lock_guard lock(mutex_);
    return lines_.size();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::string> lines_;
};

ServerOptions fast_options(std::size_t workers = 2) {
  ServerOptions options;
  options.num_workers = workers;
  options.annealer.sampler.num_reads = 10;
  options.annealer.sampler.num_sweeps = 64;
  return options;
}

bool has(const std::string& line, const std::string& needle) {
  return line.find(needle) != std::string::npos;
}

// -------------------------------------------------------- op round trips

TEST(Serve, SolveLintCertifySimplifyRoundTrip) {
  TestClient client;
  Server server(fast_options(), client.sink());
  server.submit_line(
      R"x({"id":1,"op":"solve","program":"nck({a,b},{1})","backend":"classical"})x");
  server.submit_line(
      R"x({"id":2,"op":"solve","program":"nck({a,b,c},{1,2}) nck({a},{0},soft)","backend":"annealer"})x");
  server.submit_line(R"x({"id":3,"op":"lint","program":"nck({a,b},{1})"})x");
  server.submit_line(R"x({"id":4,"op":"certify","program":"nck({a,b},{1})"})x");
  server.submit_line(
      R"x({"id":5,"op":"simplify","program":"nck({a},{1}) /\\ nck({a,b},{2})"})x");
  client.wait_for(5);

  EXPECT_TRUE(has(client.by_id(1), "\"ok\":true"));
  EXPECT_TRUE(has(client.by_id(1), "\"quality\":\"optimal\""));
  EXPECT_TRUE(has(client.by_id(1), "\"assignment\":{"));
  EXPECT_TRUE(has(client.by_id(2), "\"backend\":\"annealer\""));
  EXPECT_TRUE(has(client.by_id(2), "\"ok\":true"));
  EXPECT_TRUE(has(client.by_id(3), "\"report\":{"));
  EXPECT_TRUE(has(client.by_id(4), "\"certificate\":{"));
  EXPECT_TRUE(has(client.by_id(5), "\"simplify\":{"));
  EXPECT_TRUE(has(client.by_id(5), "\"changed\":true"));

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.admitted, 5u);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.latency_count, 5u);
  EXPECT_GT(stats.p99_ms, 0.0);
}

TEST(Serve, TraceRequestCarriesTheObsDocument) {
  TestClient client;
  Server server(fast_options(), client.sink());
  server.submit_line(
      R"x({"id":1,"op":"solve","program":"nck({a,b},{1})","backend":"annealer","trace":true})x");
  client.wait_for(1);
  EXPECT_TRUE(has(client.by_id(1), "\"trace\":{\"schema\":\"nck-trace-v1\""));
}

TEST(Serve, StatsAnswersInlineAndCountsCacheHits) {
  TestClient client;
  Server server(fast_options(), client.sink());
  const std::string solve =
      R"x({"id":1,"op":"solve","program":"nck({a,b},{1})","backend":"annealer"})x";
  server.submit_line(solve);
  client.wait_for(1);
  server.submit_line(
      R"x({"id":2,"op":"solve","program":"nck({x,y},{1})","backend":"annealer"})x");
  client.wait_for(2);
  server.submit_line(R"x({"id":3,"op":"stats"})x");
  client.wait_for(3);
  const std::string stats = client.by_id(3);
  EXPECT_TRUE(has(stats, "\"op\":\"stats\""));
  EXPECT_TRUE(has(stats, "\"admitted\":2"));
  EXPECT_TRUE(has(stats, "\"latency_ms\":{"));
  // The renamed-but-isomorphic second program hits the name-free plan key.
  EXPECT_GT(server.stats().cache.hits, 0u);
  EXPECT_GT(server.stats().cache_hit_rate, 0.0);
}

// ------------------------------------------------- malformed-input fuzz

TEST(Serve, GarbageNeverKillsTheDaemonOnlyBadRequests) {
  TestClient client;
  Server server(fast_options(1), client.sink());
  const char* garbage[] = {
      "",
      "\x01\x02\xff binary trash",
      "{\"op\":\"solve\"",
      "{{{{{{{{",
      "{\"op\":\"solve\",\"program\":\"nck(\"}",  // parses, program broken
      "{\"op\":\"solve\",\"program\":123}",
      "{\"id\":999999999999999999999999,\"op\":\"stats\"}",
      "null",
      "\"op\"",
  };
  std::size_t expect = 0;
  for (const char* line : garbage) {
    server.submit_line(line);
    client.wait_for(++expect);
  }
  for (const std::string& line : client.wait_for(expect)) {
    EXPECT_TRUE(has(line, "\"ok\":false")) << line;
    EXPECT_TRUE(has(line, "\"kind\":\"bad_request\"")) << line;
  }
  // The daemon still serves after the abuse.
  server.submit_line(
      R"x({"id":10,"op":"solve","program":"nck({a,b},{1})","backend":"classical"})x");
  client.wait_for(expect + 1);
  EXPECT_TRUE(has(client.by_id(10), "\"ok\":true"));
}

TEST(Serve, UnparsableProgramIsATypedBadRequestNotACrash) {
  TestClient client;
  Server server(fast_options(1), client.sink());
  server.submit_line(
      R"x({"id":1,"op":"solve","program":"this is not nck syntax"})x");
  client.wait_for(1);
  EXPECT_TRUE(has(client.by_id(1), "\"kind\":\"bad_request\""));
  server.submit_line(R"x({"id":2,"op":"lint","program":"nck({a,b},{2})"})x");
  client.wait_for(2);
  EXPECT_TRUE(has(client.by_id(2), "\"ok\":true"));
}

TEST(Serve, OversizedLineCountsAsBadRequest) {
  TestClient client;
  Server server(fast_options(1), client.sink());
  std::string line = "{\"op\":\"solve\",\"program\":\"";
  line += std::string(kMaxRequestBytes, 'x');
  line += "\"}";
  server.submit_line(line);
  server.reject_oversized(kMaxRequestBytes * 3);  // the stdio streaming path
  client.wait_for(2);
  for (const std::string& resp : client.wait_for(2)) {
    EXPECT_TRUE(has(resp, "\"kind\":\"bad_request\"")) << resp;
  }
  EXPECT_EQ(server.stats().rejected_bad_request, 2u);
}

// --------------------------------------------- admission and deadlines

TEST(Serve, FullQueueShedsWithTypedOverload) {
  std::atomic<bool> release{false};
  ServerOptions options = fast_options(1);
  options.queue_depth = 1;
  options.test_stall = [&](const Request&) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  };
  TestClient client;
  Server server(options, client.sink());

  const std::string solve =
      R"x({"id":IDID,"op":"solve","program":"nck({a,b},{1})","backend":"classical"})x";
  auto line = [&](int id) {
    std::string s = solve;
    return s.replace(s.find("IDID"), 4, std::to_string(id));
  };
  server.submit_line(line(1));  // occupies the single worker
  // Wait until the worker actually picked it up so the queue is empty.
  while (server.stats().in_flight == 0) std::this_thread::sleep_for(1ms);
  server.submit_line(line(2));  // fills the queue (depth 1)
  server.submit_line(line(3));  // must shed
  const std::string shed = client.wait_for(1)[0];
  EXPECT_TRUE(has(shed, "{\"id\":3,"));
  EXPECT_TRUE(has(shed, "\"kind\":\"overloaded\""));
  EXPECT_EQ(server.stats().shed, 1u);

  release = true;
  client.wait_for(3);
  EXPECT_TRUE(has(client.by_id(1), "\"ok\":true"));
  EXPECT_TRUE(has(client.by_id(2), "\"ok\":true"));
  EXPECT_EQ(server.stats().completed, 2u);
}

TEST(Serve, QueueExpiredDeadlineRejectedWithoutBurningAWorker) {
  std::atomic<bool> release{false};
  std::atomic<int> stalls{0};
  ServerOptions options = fast_options(1);
  options.test_stall = [&](const Request&) {
    ++stalls;
    while (!release.load()) std::this_thread::sleep_for(1ms);
  };
  TestClient client;
  Server server(options, client.sink());

  server.submit_line(
      R"x({"id":1,"op":"solve","program":"nck({a,b},{1})","backend":"classical"})x");
  while (server.stats().in_flight == 0) std::this_thread::sleep_for(1ms);
  // 1 ms budget, but the only worker is pinned for ~50 ms: the budget is
  // gone by dequeue time, so the request is rejected at the gate — the
  // stall hook (and the solver) must never run for it.
  server.submit_line(
      R"x({"id":2,"op":"solve","program":"nck({a,b},{1})","deadline_ms":1})x");
  std::this_thread::sleep_for(50ms);
  release = true;
  client.wait_for(2);

  EXPECT_TRUE(has(client.by_id(2), "\"kind\":\"deadline_expired\""));
  EXPECT_TRUE(has(client.by_id(1), "\"ok\":true"));
  EXPECT_EQ(server.stats().rejected_deadline, 1u);
  EXPECT_EQ(stalls.load(), 1) << "the expired request must not reach a worker";
}

TEST(Serve, RemainingBudgetPropagatesIntoTheSolver) {
  // An admitted request whose budget survives the queue but is consumed
  // mid-dispatch fails *inside* the solver with the typed FailureKind —
  // ok:true at the wire layer, kDeadlineExhausted in the result.
  std::atomic<bool> release{false};
  ServerOptions options = fast_options(1);
  options.test_stall = [&](const Request& req) {
    // Pin only the deadline request itself, after the dequeue gate.
    if (req.deadline_ms < 1000.0) {
      while (!release.load()) std::this_thread::sleep_for(1ms);
    }
  };
  TestClient client;
  Server server(options, client.sink());
  // Warm the worker up first (Solver construction can dwarf the deadline
  // on slow/sanitized builds): the budget must die in-dispatch, not in
  // the queue.
  server.submit_line(R"x({"id":9,"op":"lint","program":"nck({a,b},{1})"})x");
  client.wait_for(1);
  server.submit_line(
      R"x({"id":1,"op":"solve","program":"nck({a,b},{1})","deadline_ms":40})x");
  std::this_thread::sleep_for(80ms);
  release = true;
  client.wait_for(2);
  const std::string resp = client.by_id(1);
  EXPECT_TRUE(has(resp, "\"ok\":true")) << resp;
  EXPECT_TRUE(has(resp, "\"failure\":\"deadline-exhausted\"")) << resp;
}

// ------------------------------------------------------- drain semantics

TEST(Serve, DrainFinishesInFlightRejectsQueuedRefusesNew) {
  std::atomic<bool> release{false};
  ServerOptions options = fast_options(1);
  options.test_stall = [&](const Request&) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  };
  TestClient client;
  Server server(options, client.sink());

  server.submit_line(
      R"x({"id":1,"op":"solve","program":"nck({a,b},{1})","backend":"classical"})x");
  while (server.stats().in_flight == 0) std::this_thread::sleep_for(1ms);
  server.submit_line(R"x({"id":2,"op":"lint","program":"nck({a,b},{1})"})x");
  server.submit_line(R"x({"id":3,"op":"lint","program":"nck({a,b},{1})"})x");

  std::thread releaser([&] {
    std::this_thread::sleep_for(50ms);
    release = true;
  });
  server.drain();  // blocks until the in-flight solve lands
  releaser.join();

  EXPECT_TRUE(has(client.by_id(1), "\"ok\":true"))
      << "in-flight work must complete";
  EXPECT_TRUE(has(client.by_id(2), "\"kind\":\"draining\""));
  EXPECT_TRUE(has(client.by_id(3), "\"kind\":\"draining\""));

  // Post-drain admissions are refused; stats still answers.
  server.submit_line(R"x({"id":4,"op":"lint","program":"nck({a,b},{1})"})x");
  server.submit_line(R"x({"id":5,"op":"stats"})x");
  client.wait_for(5);
  EXPECT_TRUE(has(client.by_id(4), "\"kind\":\"draining\""));
  EXPECT_TRUE(has(client.by_id(5), "\"ok\":true"));
  EXPECT_TRUE(has(client.by_id(5), "\"draining\":true"));

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.rejected_draining, 3u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(Serve, ShutdownOpClosesAdmissionAndSignalsTheDriver) {
  TestClient client;
  Server server(fast_options(1), client.sink());
  EXPECT_EQ(server.submit_line(R"x({"id":1,"op":"shutdown"})x"),
            Server::Submit::kShutdown);
  EXPECT_TRUE(server.draining());
  EXPECT_TRUE(has(client.by_id(1), "\"ok\":true"));
  server.drain();
  EXPECT_EQ(server.submit_line(R"x({"id":2,"op":"lint","program":"x"})x"),
            Server::Submit::kContinue);
  EXPECT_TRUE(has(client.by_id(2), "\"kind\":\"draining\""));
}

// ------------------------------------------------------------- watchdog

TEST(Serve, WatchdogFailsStuckWorkerAndDropsTheLateResult) {
  ServerOptions options = fast_options(1);
  options.stuck_after_ms = 50.0;
  options.watchdog_interval_ms = 10.0;
  options.test_stall = [](const Request&) {
    std::this_thread::sleep_for(500ms);  // well past the service cap
  };
  TestClient client;
  Server server(options, client.sink());
  server.submit_line(
      R"x({"id":1,"op":"solve","program":"nck({a,b},{1})","backend":"classical"})x");
  // The typed worker_stuck response must arrive while the worker is still
  // pinned — long before the 500 ms stall ends.
  const std::string resp = client.wait_for(1)[0];
  EXPECT_TRUE(has(resp, "\"kind\":\"worker_stuck\"")) << resp;
  EXPECT_EQ(server.stats().worker_stuck, 1u);
  EXPECT_EQ(server.stats().in_flight, 1u) << "worker still busy";

  server.drain();  // waits for the stalled worker to come back
  EXPECT_EQ(client.count(), 1u)
      << "the late result must be dropped, not double-responded";
  EXPECT_EQ(server.stats().late_dropped, 1u);
  EXPECT_EQ(server.stats().completed, 0u);

  // The worker rejoined the pool: post-stall requests would stall again,
  // so only check the daemon still answers stats inline.
  server.submit_line(R"x({"id":9,"op":"stats"})x");
  client.wait_for(2);
  EXPECT_TRUE(has(client.by_id(9), "\"worker_stuck\":1"));
}

// ------------------------------------------------------------ chaos mode

TEST(Serve, ChaosModeStillYieldsWellFormedResponses) {
  // NCK_CHAOS=1 arms the fixed-seed fault schedule in every worker Solver
  // (read at construction). Faulted solves may fail — but every response
  // must stay well-formed and typed; the daemon itself never dies.
  ::setenv("NCK_CHAOS", "1", 1);
  {
    TestClient client;
    Server server(fast_options(2), client.sink());
    for (int i = 1; i <= 8; ++i) {
      const char* backend = i % 2 ? "annealer" : "classical";
      server.submit_line(
          "{\"id\":" + std::to_string(i) +
          ",\"op\":\"solve\",\"program\":\"nck({a,b,c},{1,2}) "
          "nck({a},{0},soft)\",\"backend\":\"" + backend + "\"}");
    }
    client.wait_for(8);
    server.drain();
    for (int i = 1; i <= 8; ++i) {
      const std::string resp = client.by_id(static_cast<std::uint64_t>(i));
      ASSERT_FALSE(resp.empty()) << "request " << i << " got no response";
      EXPECT_TRUE(has(resp, "\"op\":\"solve\"")) << resp;
      // Chaos faults surface as ok:true with a typed result.failure (the
      // solve ran and failed) — never as a malformed line.
      EXPECT_TRUE(has(resp, "\"ok\":true")) << resp;
      EXPECT_TRUE(has(resp, "\"failure\":\"")) << resp;
    }
    EXPECT_EQ(server.stats().completed, 8u);
  }
  ::unsetenv("NCK_CHAOS");
}

// ------------------------------------------------------- determinism

TEST(Serve, SameRequestStreamSameResultsRegardlessOfWorkerCount) {
  const auto run = [](std::size_t workers) {
    TestClient client;
    Server server(fast_options(workers), client.sink());
    for (int i = 1; i <= 6; ++i) {
      server.submit_line(
          "{\"id\":" + std::to_string(i) +
          ",\"op\":\"solve\",\"program\":\"nck({a,b,c},{1,2}) "
          "nck({a},{0},soft)\",\"backend\":\"annealer\"}");
    }
    client.wait_for(6);
    std::vector<std::string> out;
    for (int i = 1; i <= 6; ++i) {
      std::string resp = client.by_id(static_cast<std::uint64_t>(i));
      // Strip the timing fields (the only nondeterministic part).
      const std::size_t at = resp.find(",\"queue_ms\":");
      out.push_back(resp.substr(0, at));
    }
    return out;
  };
  EXPECT_EQ(run(1), run(4)) << "per-request seeds must make results "
                               "independent of worker scheduling";
}

}  // namespace
}  // namespace nck::serve
