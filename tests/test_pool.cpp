#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "graph/generators.hpp"
#include "problems/max_cut.hpp"
#include "problems/vertex_cover.hpp"
#include "runtime/pool.hpp"

namespace nck {
namespace {

std::vector<Env> mixed_batch() {
  std::vector<Env> envs;
  envs.push_back(MaxCutProblem{cycle_graph(5)}.encode());
  envs.push_back(MaxCutProblem{complete_graph(4)}.encode());
  envs.push_back(VertexCoverProblem{cycle_graph(6)}.encode());
  envs.push_back(MaxCutProblem{path_graph(6)}.encode());
  return envs;
}

PoolOptions small_options(std::size_t threads) {
  PoolOptions options;
  options.num_threads = threads;
  options.annealer.sampler.num_reads = 20;
  options.circuit.qaoa.shots = 64;
  return options;
}

void expect_same_report(const SolveReport& a, const SolveReport& b,
                        std::size_t task) {
  EXPECT_EQ(a.ran, b.ran) << "task " << task;
  EXPECT_EQ(a.backend, b.backend) << "task " << task;
  EXPECT_EQ(a.failure, b.failure) << "task " << task;
  EXPECT_EQ(a.best_quality, b.best_quality) << "task " << task;
  EXPECT_EQ(a.best_assignment, b.best_assignment) << "task " << task;
  EXPECT_EQ(a.num_samples, b.num_samples) << "task " << task;
  EXPECT_EQ(a.counts.optimal, b.counts.optimal) << "task " << task;
  EXPECT_EQ(a.counts.suboptimal, b.counts.suboptimal) << "task " << task;
  EXPECT_EQ(a.counts.incorrect, b.counts.incorrect) << "task " << task;
  EXPECT_EQ(a.resilience.attempts.size(), b.resilience.attempts.size())
      << "task " << task;
}

TEST(SolverPoolTest, SameBatchTwiceIsBitIdentical) {
  const std::vector<Env> envs = mixed_batch();
  SolverPool first(small_options(2));
  SolverPool second(small_options(2));
  const BatchReport a = first.solve_all(envs, BackendKind::kAnnealer);
  const BatchReport b = second.solve_all(envs, BackendKind::kAnnealer);
  ASSERT_EQ(a.reports.size(), envs.size());
  ASSERT_EQ(b.reports.size(), envs.size());
  for (std::size_t i = 0; i < envs.size(); ++i) {
    EXPECT_TRUE(a.reports[i].ran) << a.reports[i].failure_message();
    expect_same_report(a.reports[i], b.reports[i], i);
  }
}

TEST(SolverPoolTest, ResultsIndependentOfThreadCount) {
  const std::vector<Env> envs = mixed_batch();
  SolverPool serial(small_options(1));
  SolverPool wide(small_options(8));
  const BatchReport a = serial.solve_all(envs, BackendKind::kAnnealer);
  const BatchReport b = wide.solve_all(envs, BackendKind::kAnnealer);
  for (std::size_t i = 0; i < envs.size(); ++i) {
    expect_same_report(a.reports[i], b.reports[i], i);
  }
}

TEST(SolverPoolTest, CacheSharedAcrossEightThreadsAndBatches) {
  const std::vector<Env> envs(8, MaxCutProblem{cycle_graph(5)}.encode());
  SolverPool pool(small_options(8));

  const BatchReport cold = pool.solve_all(envs, BackendKind::kAnnealer);
  ASSERT_EQ(cold.reports.size(), envs.size());
  for (const SolveReport& r : cold.reports) {
    EXPECT_TRUE(r.ran) << r.failure_message();
  }
  EXPECT_GE(cold.cache.misses, 1u);
  EXPECT_GE(cold.cache.inserts, 1u);

  // The warm batch re-solves the same programs against the same shared
  // cache: every prepare is a hit, no new misses, identical answers.
  const std::size_t cold_misses = pool.plan_cache().stats().misses;
  const BatchReport warm = pool.solve_all(envs, BackendKind::kAnnealer);
  EXPECT_EQ(warm.cache.misses, cold_misses)
      << "a warm batch must not re-prepare any plan";
  EXPECT_GE(warm.cache.hits, cold.cache.hits + envs.size());
  for (std::size_t i = 0; i < envs.size(); ++i) {
    expect_same_report(cold.reports[i], warm.reports[i], i);
  }
}

TEST(SolverPoolTest, PortfolioKeepsClassicalWhenQuantumRungsFault) {
  const std::vector<Env> envs(2, MaxCutProblem{cycle_graph(5)}.encode());
  PoolOptions options = small_options(2);
  ResilienceOptions res;
  res.faults = FaultPlan::parse("reject");  // every submission bounces
  res.retry.max_retries = 1;
  res.retry.backoff_initial_ms = 1.0;
  options.resilience = res;
  SolverPool pool(options);

  const BackendKind candidates[] = {BackendKind::kAnnealer,
                                    BackendKind::kCircuit,
                                    BackendKind::kClassical};
  const BatchReport batch = pool.solve_portfolio(envs, candidates);
  ASSERT_EQ(batch.reports.size(), envs.size());
  ASSERT_EQ(batch.candidates.size(), envs.size());
  for (std::size_t i = 0; i < envs.size(); ++i) {
    EXPECT_TRUE(batch.reports[i].ran);
    EXPECT_EQ(batch.reports[i].backend, BackendKind::kClassical);
    EXPECT_EQ(batch.reports[i].best_quality, Quality::kOptimal);
    ASSERT_EQ(batch.candidates[i].size(), 3u);
    EXPECT_FALSE(batch.candidates[i][0].ran);  // annealer: rejected
    EXPECT_EQ(batch.candidates[i][0].failure,
              FailureKind::kRetriesExhausted);
    EXPECT_FALSE(batch.candidates[i][1].ran);  // circuit: rejected
    EXPECT_TRUE(batch.candidates[i][2].ran);   // classical ignores the queue
  }
}

TEST(SolverPoolTest, PortfolioPrefersEarlierCandidateOnTies) {
  // Classical and annealer both land an optimal answer on this easy
  // instance; the winner must be the earlier candidate, deterministically.
  const std::vector<Env> envs(1, MaxCutProblem{cycle_graph(5)}.encode());
  SolverPool pool(small_options(1));
  const BackendKind candidates[] = {BackendKind::kClassical,
                                    BackendKind::kAnnealer};
  const BatchReport batch = pool.solve_portfolio(envs, candidates);
  ASSERT_EQ(batch.reports.size(), 1u);
  ASSERT_TRUE(batch.reports[0].ran);
  if (batch.candidates[0][1].best_quality == Quality::kOptimal) {
    EXPECT_EQ(batch.reports[0].backend, BackendKind::kClassical);
  }
}

TEST(SolverPoolTest, StitchedTraceAggregatesTasks) {
  const std::vector<Env> envs(2, MaxCutProblem{cycle_graph(5)}.encode());
  SolverPool pool(small_options(2));
  const BatchReport batch = pool.solve_all(envs, BackendKind::kAnnealer);

  const obs::SpanRecord* task0 = batch.trace.find_span("task0");
  const obs::SpanRecord* task1 = batch.trace.find_span("task1");
  ASSERT_NE(task0, nullptr);
  ASSERT_NE(task1, nullptr);
  EXPECT_EQ(task0->depth, 0u);
  // Each task's own "solve" span is re-parented under its task root.
  bool found_child_solve = false;
  for (const obs::SpanRecord& s : batch.trace.spans) {
    if (s.name == "solve" && s.depth == 1) found_child_solve = true;
  }
  EXPECT_TRUE(found_child_solve);
  // Counters are summed across tasks: both tasks consulted the cache.
  EXPECT_GE(batch.trace.counter("plan_cache.hit") +
                batch.trace.counter("plan_cache.miss"),
            2.0);
}

TEST(SolverPoolTest, EmptyBatchIsWellFormed) {
  SolverPool pool(small_options(4));
  const std::vector<Env> none;
  const BatchReport batch = pool.solve_all(none, BackendKind::kClassical);
  EXPECT_TRUE(batch.reports.empty());
  EXPECT_EQ(batch.solved(), 0u);
  EXPECT_TRUE(batch.trace.spans.empty());
}

}  // namespace
}  // namespace nck
