#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace nck {
namespace {

TEST(Graph, AddEdgeRejectsDuplicatesAndLoops) {
  Graph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));  // same edge, reversed
  EXPECT_FALSE(g.add_edge(2, 2));  // self loop
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_THROW(g.add_edge(0, 9), std::out_of_range);
}

TEST(Graph, NeighborsAndDegree) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(Graph, ComplementEdges) {
  Graph g = path_graph(4);  // edges 01, 12, 23
  const auto comp = g.complement_edges();
  EXPECT_EQ(comp.size(), 3u);  // 02, 03, 13
  for (const auto& [u, v] : comp) EXPECT_FALSE(g.has_edge(u, v));
}

TEST(Graph, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.connected());
  EXPECT_TRUE(Graph().connected());
}

TEST(Graph, InducedSubgraph) {
  Graph g = complete_graph(5);
  const std::vector<Graph::Vertex> keep{0, 2, 4};
  const Graph sub = g.induced_subgraph(keep);
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 3u);  // K3
}

TEST(UnionFind, UniteAndCount) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.find(0), uf.find(2));
  EXPECT_NE(uf.find(0), uf.find(4));
}

TEST(Generators, CirculantDegreeAndEdges) {
  const Graph g = circulant_graph(10, std::size_t{4});
  EXPECT_EQ(g.num_vertices(), 10u);
  for (Graph::Vertex v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(g.num_edges(), 20u);
  EXPECT_THROW(circulant_graph(10, std::size_t{3}), std::invalid_argument);
}

TEST(Generators, VertexScalingStructure) {
  // 3 vertices -> one triangle; each extra triangle adds 3 vertices, 5 edges.
  EXPECT_EQ(vertex_scaling_graph(3).num_edges(), 3u);
  const Graph g = vertex_scaling_graph(12);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u + 3u * 5u);
  EXPECT_TRUE(g.connected());
  EXPECT_THROW(vertex_scaling_graph(4), std::invalid_argument);
  EXPECT_THROW(vertex_scaling_graph(0), std::invalid_argument);
}

TEST(Generators, EdgeScalingStartsWithFourTriangles) {
  const Graph g0 = edge_scaling_graph(0);
  EXPECT_EQ(g0.num_vertices(), 12u);
  EXPECT_EQ(g0.num_edges(), 12u);
  EXPECT_TRUE(clique_coverable(g0, 4));
  // The paper's starting point: 18 edges (12 + 6 connectors).
  const Graph g6 = edge_scaling_graph(6);
  EXPECT_EQ(g6.num_edges(), 18u);
  // Saturates at the complete graph.
  const Graph gmax = edge_scaling_graph(1000);
  EXPECT_EQ(gmax.num_edges(), 66u);
}

TEST(Generators, RandomGnmCounts) {
  Rng rng(1);
  const Graph g = random_gnm(20, 35, rng);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 35u);
  EXPECT_THROW(random_gnm(4, 10, rng), std::invalid_argument);
}

TEST(Generators, RandomConnectedGnmIsConnected) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_gnm(15, 20, rng);
    EXPECT_TRUE(g.connected());
    EXPECT_EQ(g.num_edges(), 20u);
  }
  EXPECT_THROW(random_connected_gnm(10, 5, rng), std::invalid_argument);
}

TEST(Generators, BasicFamilies) {
  EXPECT_EQ(complete_graph(6).num_edges(), 15u);
  EXPECT_EQ(cycle_graph(5).num_edges(), 5u);
  EXPECT_EQ(path_graph(5).num_edges(), 4u);
  EXPECT_EQ(star_graph(5).num_edges(), 4u);
  EXPECT_EQ(grid_graph(3, 4).num_edges(), 3u * 3u + 2u * 4u);
}

TEST(Generators, RegionMapIsPlanarish) {
  Rng rng(3);
  const Graph g = region_map_graph(4, 4, 0.5, rng);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_GE(g.num_edges(), 24u);           // base grid edges
  EXPECT_TRUE(k_colorable(g, 4));          // stays 4-colorable
}

TEST(Algorithms, VertexCoverChecks) {
  const Graph g = path_graph(4);
  std::vector<bool> cover{false, true, true, false};
  EXPECT_TRUE(is_vertex_cover(g, cover));
  cover[1] = false;
  EXPECT_FALSE(is_vertex_cover(g, cover));
}

TEST(Algorithms, MinimumVertexCoverKnownValues) {
  EXPECT_EQ(minimum_vertex_cover_size(path_graph(4)), 2u);
  EXPECT_EQ(minimum_vertex_cover_size(cycle_graph(5)), 3u);
  EXPECT_EQ(minimum_vertex_cover_size(complete_graph(5)), 4u);
  EXPECT_EQ(minimum_vertex_cover_size(star_graph(6)), 1u);
  // The paper's 5-vertex running example (Fig 2): a-b, a-c, b-c, c-d, d-e.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  EXPECT_EQ(minimum_vertex_cover_size(g), 3u);
}

TEST(Algorithms, MaxCutKnownValues) {
  EXPECT_EQ(maximum_cut_size(path_graph(4)), 3u);
  EXPECT_EQ(maximum_cut_size(cycle_graph(5)), 4u);   // odd cycle: n-1
  EXPECT_EQ(maximum_cut_size(cycle_graph(6)), 6u);   // even cycle: n
  EXPECT_EQ(maximum_cut_size(complete_graph(4)), 4u);
  EXPECT_EQ(maximum_cut_size(Graph(3)), 0u);
}

TEST(Algorithms, CutSize) {
  const Graph g = cycle_graph(4);
  std::vector<bool> side{true, false, true, false};
  EXPECT_EQ(cut_size(g, side), 4u);
}

TEST(Algorithms, ColoringChecks) {
  const Graph g = cycle_graph(5);
  EXPECT_FALSE(k_colorable(g, 2));
  EXPECT_TRUE(k_colorable(g, 3));
  EXPECT_EQ(chromatic_number(g), 3);
  EXPECT_EQ(chromatic_number(complete_graph(4)), 4);
  EXPECT_EQ(chromatic_number(Graph(3)), 1);

  std::vector<int> colors{0, 1, 0, 1, 2};
  EXPECT_TRUE(is_proper_coloring(g, colors, 3));
  colors[1] = 0;
  EXPECT_FALSE(is_proper_coloring(g, colors, 3));
}

TEST(Algorithms, CliqueCoverChecks) {
  // Two disjoint triangles: coverable by 2 cliques, not 1.
  Graph g(6);
  for (int base : {0, 3}) {
    g.add_edge(base, base + 1);
    g.add_edge(base, base + 2);
    g.add_edge(base + 1, base + 2);
  }
  EXPECT_FALSE(clique_coverable(g, 1));
  EXPECT_TRUE(clique_coverable(g, 2));
  EXPECT_EQ(clique_cover_number(g), 2);

  std::vector<int> assign{0, 0, 0, 1, 1, 1};
  EXPECT_TRUE(is_clique_cover(g, assign, 2));
  assign[0] = 1;
  EXPECT_FALSE(is_clique_cover(g, assign, 2));
}

TEST(Algorithms, GreedyBaselines) {
  const Graph g = cycle_graph(7);
  const auto cover = greedy_vertex_cover(g);
  EXPECT_TRUE(is_vertex_cover(g, cover));
  const auto colors = greedy_coloring(g);
  int max_color = 0;
  for (int c : colors) max_color = std::max(max_color, c);
  EXPECT_TRUE(is_proper_coloring(g, colors, max_color + 1));
}

// Property sweep: exact minimum vertex cover is never larger than greedy and
// always a valid cover size on random graphs.
class VcProperty : public ::testing::TestWithParam<int> {};

TEST_P(VcProperty, ExactNotWorseThanGreedy) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 6 + rng.below(6);
  const std::size_t max_m = n * (n - 1) / 2;
  const std::size_t m = std::min(max_m, n + rng.below(n));
  const Graph g = random_gnm(n, m, rng);
  const auto greedy = greedy_vertex_cover(g);
  const std::size_t greedy_size =
      static_cast<std::size_t>(std::count(greedy.begin(), greedy.end(), true));
  const std::size_t exact = minimum_vertex_cover_size(g);
  EXPECT_LE(exact, greedy_size);
  EXPECT_LE(exact, g.num_vertices());
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, VcProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace nck
