#include <gtest/gtest.h>

#include <algorithm>

#include "anneal/backend.hpp"
#include "anneal/embedded_ising.hpp"
#include "anneal/embedding.hpp"
#include "anneal/sampler.hpp"
#include "anneal/topology.hpp"
#include "graph/generators.hpp"
#include "problems/vertex_cover.hpp"
#include "qubo/brute_force.hpp"
#include "runtime/result.hpp"
#include "util/rng.hpp"

namespace nck {
namespace {

// ---------------------------------------------------------------- Topology

TEST(Pegasus, QubitCountMatchesFormula) {
  for (int m : {2, 3, 4, 16}) {
    // Full lattice: 24m(m-1). Fabric: minus the 8(m-1) couplerless qubits.
    EXPECT_EQ(pegasus_graph(m, /*fabric_only=*/false).num_vertices(),
              static_cast<std::size_t>(24 * m * (m - 1)));
    EXPECT_EQ(pegasus_graph(m).num_vertices(),
              static_cast<std::size_t>(24 * m * (m - 1) - 8 * (m - 1)));
  }
  // P16 fabric == the Advantage 4.1 qubit count the paper reports.
  EXPECT_EQ(pegasus_graph(16).num_vertices(), 5640u);
  EXPECT_THROW(pegasus_graph(1), std::invalid_argument);
}

TEST(Pegasus, DegreeStructure) {
  const Graph g = pegasus_graph(6);
  std::size_t max_degree = 0;
  std::size_t degree15 = 0;
  for (Graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
    if (g.degree(v) == 15) ++degree15;
  }
  // Pegasus interior qubits have degree 15 (12 internal + 2 external + odd).
  EXPECT_EQ(max_degree, 15u);
  EXPECT_GT(degree15, g.num_vertices() / 3);  // bulk of the lattice
  EXPECT_TRUE(g.connected());
}

TEST(Pegasus, CoordinateRoundTrip) {
  const int m = 4;
  const Graph g = pegasus_graph(m, /*fabric_only=*/false);
  for (Graph::Vertex q = 0; q < g.num_vertices(); ++q) {
    const PegasusCoord c = pegasus_coord(m, q);
    EXPECT_EQ(pegasus_id(m, c), q);
    EXPECT_GE(c.u, 0);
    EXPECT_LE(c.u, 1);
    EXPECT_LT(c.w, m);
    EXPECT_LT(c.k, 12);
    EXPECT_LT(c.z, m - 1);
  }
}

TEST(Chimera, StructureChecks) {
  const Graph g = chimera_graph(3, 3, 4);
  EXPECT_EQ(g.num_vertices(), 3u * 3u * 8u);
  // Interior cell qubit degree: 4 intra + 2 inter = 6.
  std::size_t max_degree = 0;
  for (Graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  EXPECT_EQ(max_degree, 6u);
  EXPECT_TRUE(g.connected());
}

TEST(Device, Advantage41MatchesPaperQubitCount) {
  Rng rng(5);
  const Device d = advantage_4_1(rng);
  EXPECT_EQ(d.graph.num_vertices(), 5640u);  // the paper's figure
  EXPECT_EQ(d.num_operable(), 5640u);
  EXPECT_TRUE(d.working_graph().connected());
}

TEST(Device, YieldModelDisablesQubits) {
  Rng rng(6);
  const Device d = advantage_4_1(rng, 13);
  EXPECT_EQ(d.num_operable(), 5640u - 13u);
  const Graph working = d.working_graph();
  std::size_t isolated = 0;
  for (Graph::Vertex v = 0; v < working.num_vertices(); ++v) {
    if (working.degree(v) == 0) ++isolated;
  }
  EXPECT_GE(isolated, 13u);
}

// --------------------------------------------------------------- Embedding

TEST(Embedding, IdentityForNativeSubgraph) {
  // A path embeds into a path with (mostly) unit chains.
  const Graph logical = path_graph(4);
  const Graph physical = path_graph(8);
  Rng rng(1);
  const auto embedding = find_embedding(logical, physical, rng);
  ASSERT_TRUE(embedding.has_value());
  const auto check = validate_embedding(logical, physical, *embedding);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Embedding, TriangleNeedsChainsOnCycle) {
  // K3 is not a subgraph of C6, but it is a minor (contract alternate
  // edges), so chains are required. (It is *not* a minor of any path —
  // trees have no cyclic minors — which FailsWhenImpossible covers.)
  const Graph logical = complete_graph(3);
  const Graph physical = cycle_graph(6);
  Rng rng(2);
  const auto embedding = find_embedding(logical, physical, rng);
  ASSERT_TRUE(embedding.has_value());
  const auto check = validate_embedding(logical, physical, *embedding);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GT(embedding->total_qubits(), 3u);
}

TEST(Embedding, FailsWhenImpossible) {
  // K4 is not a minor of a path graph.
  const Graph logical = complete_graph(4);
  const Graph physical = path_graph(10);
  Rng rng(3);
  EmbedOptions options;
  options.max_passes = 12;
  options.tries = 2;
  const auto embedding = find_embedding(logical, physical, rng, options);
  EXPECT_FALSE(embedding.has_value());
}

TEST(Embedding, CliqueOnPegasus) {
  const Graph logical = complete_graph(8);
  const Graph physical = pegasus_graph(3);
  Rng rng(4);
  const auto embedding = find_embedding(logical, physical, rng);
  ASSERT_TRUE(embedding.has_value());
  const auto check = validate_embedding(logical, physical, *embedding);
  EXPECT_TRUE(check.ok) << check.error;
  // Dense problems need chains: more qubits than logical variables.
  EXPECT_GT(embedding->total_qubits(), logical.num_vertices());
}

TEST(Embedding, ValidatorCatchesBrokenChains) {
  const Graph logical = path_graph(2);
  const Graph physical = path_graph(4);
  Embedding bad;
  bad.chains = {{0, 2}, {1}};  // chain {0,2} is disconnected; also overlaps..
  const auto check = validate_embedding(logical, physical, bad);
  EXPECT_FALSE(check.ok);
}

TEST(Embedding, ValidatorCatchesMissingCoupler) {
  const Graph logical = path_graph(2);
  const Graph physical = path_graph(4);
  Embedding bad;
  bad.chains = {{0}, {3}};  // no physical edge between 0 and 3
  const auto check = validate_embedding(logical, physical, bad);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("no physical coupler"), std::string::npos);
}

class EmbeddingProperty : public ::testing::TestWithParam<int> {};

TEST_P(EmbeddingProperty, RandomGraphsOnPegasus) {
  Rng rng(static_cast<std::uint64_t>(31337 + GetParam()));
  const std::size_t n = 4 + rng.below(10);
  const std::size_t m =
      std::min(n * (n - 1) / 2, n + rng.below(2 * n));
  const Graph logical = random_gnm(n, m, rng);
  const Graph physical = pegasus_graph(4);
  const auto embedding = find_embedding(logical, physical, rng);
  ASSERT_TRUE(embedding.has_value());
  const auto check = validate_embedding(logical, physical, *embedding);
  EXPECT_TRUE(check.ok) << check.error;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, EmbeddingProperty,
                         ::testing::Range(0, 15));

// ---------------------------------------------------------- Embedded Ising

TEST(EmbeddedIsing, IntactChainsPreserveLogicalEnergy) {
  // Logical triangle problem embedded on a path-of-6 (one chain of 2).
  IsingModel logical;
  logical.h = {0.5, -0.25, 0.75};
  logical.j = {{0, 1, 1.0}, {0, 2, -0.5}, {1, 2, 0.25}};
  const Graph logical_graph = complete_graph(3);
  const Graph physical = pegasus_graph(2);
  Rng rng(6);
  const auto embedding = find_embedding(logical_graph, physical, rng);
  ASSERT_TRUE(embedding.has_value());
  const EmbeddedProblem problem = embed_ising(logical, *embedding, physical);

  // For every logical spin assignment, setting all chain qubits coherently
  // must reproduce the logical energy exactly (offset calibrated).
  for (std::uint32_t bits = 0; bits < 8; ++bits) {
    std::vector<bool> logical_spins(3);
    for (std::size_t i = 0; i < 3; ++i) logical_spins[i] = (bits >> i) & 1u;
    std::vector<bool> physical_spins(problem.num_physical_qubits());
    for (std::size_t v = 0; v < 3; ++v) {
      for (std::uint32_t c : problem.chain[v]) {
        physical_spins[c] = logical_spins[v];
      }
    }
    EXPECT_NEAR(problem.ising.energy(physical_spins),
                logical.energy(logical_spins), 1e-9)
        << "bits=" << bits;
  }
}

TEST(EmbeddedIsing, UnembedMajorityVote) {
  EmbeddedProblem problem;
  problem.chain = {{0, 1, 2}, {3}};
  problem.qubit = {10, 11, 12, 13};
  UnembedStats stats;
  // Chain 0: two of three up -> logical up, one break, no tie.
  const auto logical =
      unembed_sample({true, true, false, false}, problem, &stats);
  EXPECT_EQ(logical, (std::vector<bool>{true, false}));
  EXPECT_EQ(stats.chain_breaks, 1u);
  EXPECT_EQ(stats.ties, 0u);
}

TEST(EmbeddedIsing, TieBreakUsesRngNotAlwaysTrue) {
  // Regression: an exactly split chain always resolved to TRUE, biasing
  // every tied majority vote. With an Rng the coin must land both ways,
  // and the tie must be counted.
  EmbeddedProblem problem;
  problem.chain = {{0, 1}};
  problem.qubit = {10, 11};
  const std::vector<bool> split{true, false};

  Rng rng(21);
  std::size_t trues = 0;
  constexpr std::size_t kDraws = 200;
  for (std::size_t i = 0; i < kDraws; ++i) {
    UnembedStats stats;
    const auto logical = unembed_sample(split, problem, &stats, &rng);
    EXPECT_EQ(stats.chain_breaks, 1u);
    EXPECT_EQ(stats.ties, 1u);
    if (logical[0]) ++trues;
  }
  // A fair coin over 200 draws: both outcomes occur (each side fails with
  // probability 2^-200).
  EXPECT_GT(trues, 0u);
  EXPECT_LT(trues, kDraws);

  // Null rng keeps the deterministic ties-to-TRUE fallback for tests.
  UnembedStats stats;
  EXPECT_EQ(unembed_sample(split, problem, &stats, nullptr),
            (std::vector<bool>{true}));
  EXPECT_EQ(stats.ties, 1u);
}

TEST(EmbeddedIsing, OddChainsCannotTie) {
  EmbeddedProblem problem;
  problem.chain = {{0, 1, 2}};
  problem.qubit = {10, 11, 12};
  Rng rng(22);
  UnembedStats stats;
  const auto logical =
      unembed_sample({false, true, false}, problem, &stats, &rng);
  EXPECT_EQ(logical, (std::vector<bool>{false}));
  EXPECT_EQ(stats.chain_breaks, 1u);
  EXPECT_EQ(stats.ties, 0u);
}

TEST(EmbeddedIsing, ChainStrengthScalesWithCouplings) {
  IsingModel weak;
  weak.h = {0.0, 0.0};
  weak.j = {{0, 1, 0.1}};
  IsingModel strong;
  strong.h = {0.0, 0.0};
  strong.j = {{0, 1, 10.0}};
  EXPECT_LT(recommended_chain_strength(weak),
            recommended_chain_strength(strong));
}

// ----------------------------------------------------------------- Sampler

TEST(Sampler, FindsGroundStateOfSmallProblem) {
  // Ferromagnetic triangle with a bias: ground state all-up.
  IsingModel logical;
  logical.h = {-0.5, -0.5, -0.5};
  logical.j = {{0, 1, -1.0}, {0, 2, -1.0}, {1, 2, -1.0}};
  const Graph logical_graph = complete_graph(3);
  const Graph physical = pegasus_graph(2);
  Rng rng(7);
  const auto embedding = find_embedding(logical_graph, physical, rng);
  ASSERT_TRUE(embedding.has_value());
  const EmbeddedProblem problem = embed_ising(logical, *embedding, physical);

  AnnealerSamplerOptions options;
  options.num_reads = 20;
  const auto result = sample_annealer(logical, problem, options, rng);
  ASSERT_EQ(result.reads.size(), 20u);
  EXPECT_EQ(result.reads.front().logical, (std::vector<bool>{true, true, true}));
  // Sorted by energy.
  for (std::size_t i = 1; i < result.reads.size(); ++i) {
    EXPECT_LE(result.reads[i - 1].logical_energy,
              result.reads[i].logical_energy);
  }
}

TEST(Sampler, TimingModelMatchesPaperBallpark) {
  // Section VIII-C: ~15 ms programming + 100 samples costing slightly less
  // than programming, ~30 ms total.
  const DWaveTimingModel model;
  const double total_ms = model.qpu_access_time_us(100) / 1000.0;
  EXPECT_GT(total_ms, 20.0);
  EXPECT_LT(total_ms, 40.0);
  EXPECT_LT(model.sampling_time_us(100), model.programming_us);
}

TEST(Sampler, PostprocessTimeOnlyChargedWhenEnabled) {
  // Regression: the timing model charged the post-processing tail even
  // when options.postprocess was off, over-reporting QPU access time.
  IsingModel logical;
  logical.h = {-0.5, -0.5};
  logical.j = {{0, 1, -1.0}};
  const Graph logical_graph = path_graph(2);
  const Graph physical = pegasus_graph(2);
  Rng rng(23);
  const auto embedding = find_embedding(logical_graph, physical, rng);
  ASSERT_TRUE(embedding.has_value());
  const EmbeddedProblem problem = embed_ising(logical, *embedding, physical);

  AnnealerSamplerOptions options;
  options.num_reads = 5;
  options.postprocess = false;
  obs::Trace trace_off;
  Rng rng_off(24);
  const auto off = sample_annealer(logical, problem, options, rng_off,
                                   &trace_off);
  EXPECT_DOUBLE_EQ(off.timing.postprocess_us, 0.0);
  EXPECT_DOUBLE_EQ(off.timing.total_us,
                   off.timing.programming_us + off.timing.sampling_us);
  // Asserted through the trace too: the modeled device span shows 0.
  const obs::TraceData data_off = trace_off.snapshot();
  const auto* span_off = data_off.find_span("device.postprocess");
  ASSERT_NE(span_off, nullptr);
  EXPECT_DOUBLE_EQ(span_off->duration_us, 0.0);

  options.postprocess = true;
  obs::Trace trace_on;
  Rng rng_on(24);
  const auto on = sample_annealer(logical, problem, options, rng_on,
                                  &trace_on);
  EXPECT_DOUBLE_EQ(on.timing.postprocess_us,
                   options.timing_model.postprocess_us);
  EXPECT_DOUBLE_EQ(on.timing.total_us, on.timing.programming_us +
                                           on.timing.sampling_us +
                                           on.timing.postprocess_us);
  const obs::TraceData data_on = trace_on.snapshot();
  const auto* span_on = data_on.find_span("device.postprocess");
  ASSERT_NE(span_on, nullptr);
  EXPECT_DOUBLE_EQ(span_on->duration_us, options.timing_model.postprocess_us);
}

TEST(Sampler, ExtremeNoiseDegradesResults) {
  IsingModel logical;
  logical.h = {-1.0, -1.0, -1.0, -1.0};
  logical.j = {{0, 1, -1.0}, {1, 2, -1.0}, {2, 3, -1.0}};
  const Graph logical_graph = path_graph(4);
  const Graph physical = pegasus_graph(2);
  Rng rng(8);
  const auto embedding = find_embedding(logical_graph, physical, rng);
  ASSERT_TRUE(embedding.has_value());
  const EmbeddedProblem problem = embed_ising(logical, *embedding, physical);

  AnnealerSamplerOptions clean;
  clean.num_reads = 30;
  clean.ice_sigma = 0.0;
  clean.readout_error = 0.0;
  AnnealerSamplerOptions noisy = clean;
  noisy.readout_error = 0.45;  // near-random readout

  Rng rng_clean(100), rng_noisy(100);
  const auto r_clean = sample_annealer(logical, problem, clean, rng_clean);
  const auto r_noisy = sample_annealer(logical, problem, noisy, rng_noisy);
  EXPECT_LT(r_clean.reads.front().logical_energy,
            r_noisy.reads[r_noisy.reads.size() / 2].logical_energy);
}

// ----------------------------------------------------------------- Backend

TEST(AnnealBackend, SolvesVertexCoverEndToEnd) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const VertexCoverProblem problem{g};
  const Env env = problem.encode();

  const Device device = perfect_device("pegasus-4", pegasus_graph(4));
  SynthEngine engine;
  Rng rng(9);
  AnnealBackendOptions options;
  options.sampler.num_reads = 50;
  const AnnealOutcome outcome = run_annealer(env, device, engine, rng, options);
  ASSERT_TRUE(outcome.embedded);
  EXPECT_GE(outcome.qubits_used, 5u);
  ASSERT_EQ(outcome.samples.size(), 50u);

  // Annealer success criterion: any read optimal.
  const GroundTruth truth = ground_truth(env);
  const QualityCounts counts = classify_all(outcome.evaluations, truth);
  EXPECT_TRUE(counts.any_optimal());
}

TEST(AnnealBackend, ReportsEmbeddingFailure) {
  // A dense problem cannot embed on a tiny path device.
  const VertexCoverProblem problem{complete_graph(6)};
  const Device device = perfect_device("path", path_graph(8));
  SynthEngine engine;
  Rng rng(10);
  AnnealBackendOptions options;
  options.embed.max_passes = 8;
  options.embed.tries = 1;
  const AnnealOutcome outcome =
      run_annealer(problem.encode(), device, engine, rng, options);
  EXPECT_FALSE(outcome.embedded);
  EXPECT_TRUE(outcome.samples.empty());
}

}  // namespace
}  // namespace nck
