#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "anneal/adapter.hpp"
#include "anneal/topology.hpp"
#include "backend/fingerprint.hpp"
#include "backend/plan.hpp"
#include "backend/plan_cache.hpp"
#include "circuit/adapter.hpp"
#include "circuit/coupling.hpp"
#include "graph/generators.hpp"
#include "problems/max_cut.hpp"

namespace nck::backend {
namespace {

// ------------------------------------------------------ fingerprint core

TEST(FingerprintTest, LanesStartDecorrelatedAndMixChanges) {
  Fingerprint a;
  Fingerprint b;
  EXPECT_EQ(a, b);
  a.mix(std::uint64_t{1});
  EXPECT_NE(a, b);
  b.mix(std::uint64_t{2});
  EXPECT_NE(a, b);  // different content, different prints
}

TEST(FingerprintTest, DoubleNormalizesNans) {
  Fingerprint a;
  Fingerprint b;
  a.mix(std::numeric_limits<double>::quiet_NaN());
  b.mix(-std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(a, b);
  Fingerprint c;
  c.mix(0.5);
  EXPECT_NE(a, c);
}

// ------------------------------------------- plan-key hash sensitivity

Device small_device() {
  // A deterministic toy device large enough to embed a 5-cycle max-cut.
  return perfect_device("toy", circulant_graph(24, std::size_t{4}));
}

AnnealBackendOptions small_anneal_options() {
  AnnealBackendOptions options;
  options.sampler.num_reads = 20;
  return options;
}

Fingerprint anneal_key(const Env& env, const AnnealBackendOptions& options,
                       const Device& device) {
  AnnealAdapter adapter(&options, &device);
  PrepareContext ctx;
  ctx.env = &env;
  return adapter.plan_key(ctx);
}

TEST(PlanKey, RenamedButIsomorphicProgramHits) {
  const Graph g = cycle_graph(5);
  const Env a = MaxCutProblem{g}.encode();
  Env b;
  const auto vars = b.new_vars(5, "totally_different_name");
  for (const auto& [u, v] : g.edges()) {
    b.nck({vars[u], vars[v]}, {1}, ConstraintKind::kSoft);
  }
  const AnnealBackendOptions options = small_anneal_options();
  const Device device = small_device();
  EXPECT_EQ(anneal_key(a, options, device), anneal_key(b, options, device));
}

TEST(PlanKey, OneConstraintCoefficientMisses) {
  const Graph g = cycle_graph(5);
  const Env a = MaxCutProblem{g}.encode();
  Env b;
  const auto vars = b.new_vars(5, "v");
  bool first = true;
  for (const auto& [u, v] : g.edges()) {
    // One constraint selects {0, 2} instead of {1}: same variables, same
    // arity, different selection set — a different QUBO synthesis.
    if (first) {
      b.nck({vars[u], vars[v]}, {0, 2}, ConstraintKind::kSoft);
      first = false;
    } else {
      b.nck({vars[u], vars[v]}, {1}, ConstraintKind::kSoft);
    }
  }
  const AnnealBackendOptions options = small_anneal_options();
  const Device device = small_device();
  EXPECT_NE(anneal_key(a, options, device), anneal_key(b, options, device));
}

TEST(PlanKey, OneTopologyEdgeMisses) {
  const Env env = MaxCutProblem{cycle_graph(5)}.encode();
  const AnnealBackendOptions options = small_anneal_options();
  const Device device = small_device();

  Device tweaked = device;
  Graph g(device.graph.num_vertices());
  bool dropped = false;
  for (const auto& [u, v] : device.graph.edges()) {
    if (!dropped) {
      dropped = true;  // drop exactly one coupler
      continue;
    }
    g.add_edge(u, v);
  }
  tweaked.graph = g;
  EXPECT_NE(anneal_key(env, options, device),
            anneal_key(env, options, tweaked));

  // A single inoperable qubit (same graph) must also miss: dead-qubit
  // recovery relies on the degraded mask forcing a re-prepare.
  Device degraded = device;
  degraded.operable[3] = false;
  EXPECT_NE(anneal_key(env, options, device),
            anneal_key(env, options, degraded));
}

TEST(PlanKey, OnePrepareOptionMissesButExecuteOptionsHit) {
  const Env env = MaxCutProblem{cycle_graph(5)}.encode();
  const Device device = small_device();
  const AnnealBackendOptions base = small_anneal_options();

  AnnealBackendOptions chain = base;
  chain.chain_strength = base.chain_strength + 0.25;
  EXPECT_NE(anneal_key(env, base, device), anneal_key(env, chain, device));

  AnnealBackendOptions margin = base;
  margin.compile.hard_margin = base.compile.hard_margin + 1.0;
  EXPECT_NE(anneal_key(env, base, device), anneal_key(env, margin, device));

  // Execute-only knobs must NOT change the key: degraded retries and
  // noise sweeps reuse the cached embedding.
  AnnealBackendOptions reads = base;
  reads.sampler.num_reads = 7;
  reads.sampler.ice_sigma = base.sampler.ice_sigma + 0.01;
  EXPECT_EQ(anneal_key(env, base, device), anneal_key(env, reads, device));
}

TEST(PlanKey, CircuitDepthIsPrepareShotsAreExecute) {
  const Env env = MaxCutProblem{cycle_graph(5)}.encode();
  const Graph coupling = brooklyn_coupling();
  CircuitBackendOptions base;

  const auto key_of = [&](const CircuitBackendOptions& options) {
    CircuitAdapter adapter(&options, &coupling);
    PrepareContext ctx;
    ctx.env = &env;
    return adapter.plan_key(ctx);
  };

  CircuitBackendOptions deeper = base;
  deeper.qaoa.p += 1;
  EXPECT_NE(key_of(base), key_of(deeper));

  CircuitBackendOptions shots = base;
  shots.qaoa.shots = 17;
  EXPECT_EQ(key_of(base), key_of(shots));
}

TEST(PlanKey, BackendsNeverCollide) {
  // The same program on different backends must map to different keys
  // (the kind tag leads the fingerprint).
  const Env env = MaxCutProblem{cycle_graph(5)}.encode();
  const AnnealBackendOptions anneal_options = small_anneal_options();
  const Device device = small_device();
  const Graph coupling = brooklyn_coupling();
  CircuitBackendOptions circuit_options;
  CircuitAdapter circuit(&circuit_options, &coupling);
  PrepareContext ctx;
  ctx.env = &env;
  EXPECT_NE(anneal_key(env, anneal_options, device), circuit.plan_key(ctx));
}

// ----------------------------------------------------------- LRU cache

struct FakePlan final : Plan {
  explicit FakePlan(std::size_t size_, int tag_ = 0) : size(size_), tag(tag_) {}
  std::size_t size;
  int tag;
  std::size_t bytes() const noexcept override { return size; }
};

Fingerprint key_of(int i) {
  Fingerprint fp;
  fp.mix(i);
  return fp;
}

TEST(PlanCacheTest, HitRefreshesAndMissCounts) {
  PlanCache cache(1024);
  EXPECT_EQ(cache.find(key_of(1)), nullptr);
  cache.insert(key_of(1), std::make_shared<FakePlan>(100));
  const PlanPtr hit = cache.find(key_of(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->bytes(), 100u);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 100u);
}

TEST(PlanCacheTest, LruEvictionUnderTinyBudget) {
  PlanCache cache(250);
  cache.insert(key_of(1), std::make_shared<FakePlan>(100, 1));
  cache.insert(key_of(2), std::make_shared<FakePlan>(100, 2));
  // Touch 1 so 2 becomes the least recently used.
  ASSERT_NE(cache.find(key_of(1)), nullptr);
  cache.insert(key_of(3), std::make_shared<FakePlan>(100, 3));

  EXPECT_NE(cache.find(key_of(1)), nullptr);
  EXPECT_EQ(cache.find(key_of(2)), nullptr) << "LRU entry should be evicted";
  EXPECT_NE(cache.find(key_of(3)), nullptr);

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, 250u);
}

TEST(PlanCacheTest, OversizedPlanStillUsableOnce) {
  PlanCache cache(50);
  cache.insert(key_of(1), std::make_shared<FakePlan>(500));
  // The current solve still gets to use it...
  EXPECT_NE(cache.find(key_of(1)), nullptr);
  // ...but the next insert pushes it out.
  cache.insert(key_of(2), std::make_shared<FakePlan>(10));
  EXPECT_EQ(cache.find(key_of(1)), nullptr);
  EXPECT_NE(cache.find(key_of(2)), nullptr);
}

TEST(PlanCacheTest, ZeroBudgetMeansUnbounded) {
  PlanCache cache(0);
  for (int i = 0; i < 64; ++i) {
    cache.insert(key_of(i), std::make_shared<FakePlan>(1 << 20));
  }
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().entries, 64u);
}

TEST(PlanCacheTest, ReplacementAccountsTheNewSizeOnly) {
  // Re-inserting an existing key must swap the byte accounting, not sum
  // it — drift here would slowly shrink the effective budget.
  PlanCache cache(1024);
  cache.insert(key_of(1), std::make_shared<FakePlan>(100));
  cache.insert(key_of(1), std::make_shared<FakePlan>(300));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().bytes, 300u);
  EXPECT_EQ(cache.stats().inserts, 2u);
  cache.insert(key_of(1), std::make_shared<FakePlan>(40));
  EXPECT_EQ(cache.stats().bytes, 40u);
}

TEST(PlanCacheTest, EvictionChurnStressKeepsAccountingExact) {
  // 8 threads hammer a byte budget small enough that almost every insert
  // evicts: the shared-state invariants must hold exactly at the end —
  // every lookup counted exactly one hit or miss, resident bytes within
  // budget (every plan individually fits), and no deadlock/livelock.
  constexpr std::size_t kBudget = 4096;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr int kKeySpace = 64;
  PlanCache cache(kBudget);
  std::atomic<std::size_t> lookups{0};
  std::atomic<std::size_t> observed_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::size_t my_lookups = 0;
      std::size_t my_hits = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int k = (t * 31 + i * 17) % kKeySpace;
        ++my_lookups;
        if (cache.find(key_of(k)) != nullptr) {
          ++my_hits;
        } else {
          // Sizes vary so replacement accounting is exercised too; all
          // stay well under the budget so the bytes bound must hold.
          cache.insert(key_of(k),
                       std::make_shared<FakePlan>(64 + (k % 7) * 128, k));
        }
      }
      lookups.fetch_add(my_lookups);
      observed_hits.fetch_add(my_hits);
    });
  }
  for (std::thread& th : threads) th.join();

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, lookups.load())
      << "every find() must count exactly one hit or miss";
  EXPECT_EQ(stats.hits, observed_hits.load());
  EXPECT_LE(stats.bytes, kBudget);
  EXPECT_GE(stats.entries, 1u);
  EXPECT_GT(stats.evictions, 0u) << "the budget should force churn";
  // Resident entries must re-sum to the byte gauge: re-find every key
  // (single-threaded now) and cross-check.
  std::size_t resident = 0;
  std::size_t resident_bytes = 0;
  for (int k = 0; k < kKeySpace; ++k) {
    if (const PlanPtr p = cache.find(key_of(k))) {
      ++resident;
      resident_bytes += p->bytes();
    }
  }
  EXPECT_EQ(resident, stats.entries);
  EXPECT_EQ(resident_bytes, stats.bytes);
}

TEST(PlanCacheTest, ClearDropsEntriesKeepsCounters) {
  PlanCache cache(1024);
  cache.insert(key_of(1), std::make_shared<FakePlan>(10));
  ASSERT_NE(cache.find(key_of(1)), nullptr);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.find(key_of(1)), nullptr);
  EXPECT_GE(cache.stats().hits, 1u);
}

}  // namespace
}  // namespace nck::backend
