#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "problems/vertex_cover.hpp"
#include "runtime/solver.hpp"

namespace nck {
namespace {

// ------------------------------------------------------------------- Spans

TEST(Span, NestingRecordsParentsAndDepths) {
  obs::Trace trace;
  {
    obs::Span outer(trace, "outer");
    {
      obs::Span inner(trace, "inner");
      obs::Span leaf(trace, "leaf");
    }
    obs::Span sibling(trace, "sibling");
  }
  const obs::TraceData data = trace.snapshot();
  ASSERT_EQ(data.spans.size(), 4u);
  EXPECT_EQ(data.spans[0].name, "outer");
  EXPECT_EQ(data.spans[0].parent, obs::kNoParent);
  EXPECT_EQ(data.spans[0].depth, 0u);
  EXPECT_EQ(data.spans[1].name, "inner");
  EXPECT_EQ(data.spans[1].parent, 0u);
  EXPECT_EQ(data.spans[1].depth, 1u);
  EXPECT_EQ(data.spans[2].name, "leaf");
  EXPECT_EQ(data.spans[2].parent, 1u);
  EXPECT_EQ(data.spans[2].depth, 2u);
  EXPECT_EQ(data.spans[3].name, "sibling");
  EXPECT_EQ(data.spans[3].parent, 0u);
  // Children start no earlier than parents; durations are non-negative.
  for (const obs::SpanRecord& span : data.spans) {
    EXPECT_GE(span.duration_us, 0.0);
    if (span.parent != obs::kNoParent) {
      EXPECT_GE(span.start_us, data.spans[span.parent].start_us);
    }
    EXPECT_FALSE(span.modeled);
  }
}

TEST(Span, NullTraceIsANoOp) {
  obs::Span span(nullptr, "nothing");
  span.close();
  obs::count(nullptr, "nothing");
  obs::gauge(nullptr, "nothing", 1.0);
  obs::observe(nullptr, "nothing", 1.0);
}

TEST(Span, EarlyCloseIsIdempotent) {
  obs::Trace trace;
  {
    obs::Span span(trace, "stage");
    span.close();
    span.close();  // second close (and the destructor) must be harmless
  }
  const obs::TraceData data = trace.snapshot();
  ASSERT_EQ(data.spans.size(), 1u);
  EXPECT_GE(data.spans[0].duration_us, 0.0);
}

TEST(Span, OpenSpansSnapshotWithZeroDuration) {
  obs::Trace trace;
  obs::Span open(trace, "still-open");
  const obs::TraceData data = trace.snapshot();
  ASSERT_EQ(data.spans.size(), 1u);
  EXPECT_EQ(data.spans[0].duration_us, 0.0);
}

TEST(Span, ModeledSpansNestUnderOpenSpan) {
  obs::Trace trace;
  {
    obs::Span stage(trace, "device");
    trace.record_modeled("device.programming", 15000.0);
  }
  trace.record_modeled("root-modeled", 7.5);
  const obs::TraceData data = trace.snapshot();
  ASSERT_EQ(data.spans.size(), 3u);
  const obs::SpanRecord* modeled = data.find_span("device.programming");
  ASSERT_NE(modeled, nullptr);
  EXPECT_TRUE(modeled->modeled);
  EXPECT_DOUBLE_EQ(modeled->duration_us, 15000.0);
  EXPECT_EQ(modeled->parent, 0u);
  const obs::SpanRecord* root = data.find_span("root-modeled");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, obs::kNoParent);
}

// ---------------------------------------------------------------- Registry

TEST(Registry, CountersGaugesHistograms) {
  obs::Registry reg;
  reg.add("hits");
  reg.add("hits", 2.0);
  reg.set("depth", 10.0);
  reg.set("depth", 12.0);  // last write wins
  reg.observe("chain", 1.0);
  reg.observe("chain", 4.0);
  reg.observe("chain", 2.0);
  obs::TraceData data;
  reg.snapshot_into(data);
  EXPECT_DOUBLE_EQ(data.counter("hits"), 3.0);
  EXPECT_DOUBLE_EQ(data.gauge("depth"), 12.0);
  EXPECT_DOUBLE_EQ(data.counter("never-recorded"), 0.0);
  const obs::HistogramData& h = data.histograms.at("chain");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 4.0);
  EXPECT_DOUBLE_EQ(h.sum, 7.0);
  EXPECT_NEAR(h.mean(), 7.0 / 3.0, 1e-12);
}

TEST(Registry, ConcurrentWritersDoNotLoseUpdates) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < kIncrements; ++i) {
        reg.add("shared");
        reg.observe("dist", 1.0);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  obs::TraceData data;
  reg.snapshot_into(data);
  EXPECT_DOUBLE_EQ(data.counter("shared"), kThreads * kIncrements);
  EXPECT_EQ(data.histograms.at("dist").count,
            static_cast<std::size_t>(kThreads * kIncrements));
}

// -------------------------------------------------------------------- JSON

obs::TraceData sample_trace() {
  obs::Trace trace;
  {
    obs::Span outer(trace, "solve");
    obs::Span inner(trace, "compile");
    trace.record_modeled("device.sampling", 14936.25);
  }
  trace.registry().add("synth.requests", 6.0);
  trace.registry().set("qaoa.fidelity", 0.9619234567891234);
  trace.registry().observe("embed.chain_length", 1.0);
  trace.registry().observe("embed.chain_length", 3.0);
  return trace.snapshot();
}

void expect_same_trace(const obs::TraceData& a, const obs::TraceData& b) {
  ASSERT_EQ(a.spans.size(), b.spans.size());
  for (std::size_t i = 0; i < a.spans.size(); ++i) {
    EXPECT_EQ(a.spans[i].name, b.spans[i].name);
    EXPECT_EQ(a.spans[i].parent, b.spans[i].parent);
    EXPECT_EQ(a.spans[i].depth, b.spans[i].depth);
    // max_digits10 output: doubles round-trip bit-exactly.
    EXPECT_EQ(a.spans[i].start_us, b.spans[i].start_us);
    EXPECT_EQ(a.spans[i].duration_us, b.spans[i].duration_us);
    EXPECT_EQ(a.spans[i].modeled, b.spans[i].modeled);
  }
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (const auto& [name, h] : a.histograms) {
    ASSERT_TRUE(b.histograms.count(name)) << name;
    const obs::HistogramData& other = b.histograms.at(name);
    EXPECT_EQ(h.count, other.count);
    EXPECT_EQ(h.sum, other.sum);
    EXPECT_EQ(h.min, other.min);
    EXPECT_EQ(h.max, other.max);
  }
}

TEST(TraceJson, RoundTripIsExact) {
  const obs::TraceData original = sample_trace();
  const std::string text = obs::trace_to_json(original);
  EXPECT_NE(text.find("\"nck-trace-v1\""), std::string::npos);
  const obs::TraceData back = obs::trace_from_json(text);
  expect_same_trace(original, back);
  // And once more through the parsed copy: serialization is stable.
  EXPECT_EQ(obs::trace_to_json(back), text);
}

TEST(TraceJson, EmptyTraceRoundTrips) {
  const obs::TraceData empty;
  EXPECT_TRUE(empty.empty());
  const obs::TraceData back = obs::trace_from_json(obs::trace_to_json(empty));
  EXPECT_TRUE(back.empty());
}

TEST(TraceJson, RejectsMalformedInput) {
  EXPECT_THROW(obs::trace_from_json(""), std::runtime_error);
  EXPECT_THROW(obs::trace_from_json("{}"), std::runtime_error);
  EXPECT_THROW(obs::trace_from_json("{\"schema\":\"nck-trace-v2\"}"),
               std::runtime_error);  // unknown schema version
  const std::string good = obs::trace_to_json(sample_trace());
  EXPECT_THROW(obs::trace_from_json(good.substr(0, good.size() / 2)),
               std::runtime_error);  // truncated document
  EXPECT_THROW(obs::trace_from_json(good + "trailing"), std::runtime_error);
}

TEST(TraceJson, ReaderRejectsCorruptDocuments) {
  // Table-driven corruption sweep: every document must be rejected with a
  // clear std::runtime_error — never a crash, hang, or silent partial
  // parse. Documents are grouped by the failure they exercise.
  struct Case {
    const char* label;
    const char* doc;
  };
  const Case cases[] = {
      {"empty document", ""},
      {"whitespace only", "   \n\t  "},
      {"array root", "[]"},
      {"null root", "null"},
      {"bare number", "42"},
      {"unterminated object", "{\"schema\":\"nck-trace-v1\""},
      {"wrong schema version", "{\"schema\":\"nck-trace-v0\"}"},
      {"future schema version", "{\"schema\":\"nck-trace-v2\"}"},
      {"schema value not a string", "{\"schema\":42}"},
      {"unknown top-level key", "{\"schema\":\"nck-trace-v1\",\"bogus\":1}"},
      {"missing colon", "{\"schema\" \"nck-trace-v1\"}"},
      {"spans not an array", "{\"schema\":\"nck-trace-v1\",\"spans\":{}}"},
      {"span not an object", "{\"schema\":\"nck-trace-v1\",\"spans\":[7]}"},
      {"empty span object", "{\"schema\":\"nck-trace-v1\",\"spans\":[{}]}"},
      {"unknown span key",
       "{\"schema\":\"nck-trace-v1\",\"spans\":[{\"wat\":1}]}"},
      {"unquoted span key",
       "{\"schema\":\"nck-trace-v1\",\"spans\":[{name:\"x\"}]}"},
      {"span parent not a number",
       "{\"schema\":\"nck-trace-v1\",\"spans\":[{\"parent\":\"root\"}]}"},
      {"modeled not a boolean",
       "{\"schema\":\"nck-trace-v1\",\"spans\":[{\"modeled\":1}]}"},
      {"dangling comma in spans",
       "{\"schema\":\"nck-trace-v1\",\"spans\":[,]}"},
      {"unterminated string",
       "{\"schema\":\"nck-trace-v1\",\"counters\":{\"a"},
      {"unsupported escape",
       "{\"schema\":\"nck-trace-v1\",\"counters\":{\"\\q\":1}}"},
      {"counter value not a number",
       "{\"schema\":\"nck-trace-v1\",\"counters\":{\"a\":\"b\"}}"},
      {"histograms not an object",
       "{\"schema\":\"nck-trace-v1\",\"histograms\":[]}"},
      {"unknown histogram key",
       "{\"schema\":\"nck-trace-v1\",\"histograms\":{\"h\":{\"median\":1}}}"},
      {"extra closing brace", "{\"schema\":\"nck-trace-v1\"}}"},
  };
  for (const Case& c : cases) {
    try {
      obs::trace_from_json(c.doc);
      FAIL() << c.label << ": corrupt document was accepted";
    } catch (const std::runtime_error& e) {
      // Every rejection names the parser and carries a reason.
      EXPECT_NE(std::string(e.what()).find("trace_from_json"),
                std::string::npos)
          << c.label << ": unhelpful error \"" << e.what() << "\"";
    }
  }
}

TEST(TraceJson, ReaderRejectsEveryTruncationOfAValidDocument) {
  // A valid document cut off at any byte must throw, not crash or return
  // a half-filled trace.
  const std::string good = obs::trace_to_json(sample_trace());
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW(obs::trace_from_json(good.substr(0, len)),
                 std::runtime_error)
        << "prefix of length " << len << " was accepted";
  }
  EXPECT_NO_THROW(obs::trace_from_json(good));
}

TEST(TraceJson, PrintTraceRendersTables) {
  std::ostringstream os;
  obs::print_trace(os, sample_trace());
  const std::string text = os.str();
  EXPECT_NE(text.find("solve"), std::string::npos);
  EXPECT_NE(text.find("compile"), std::string::npos);
  EXPECT_NE(text.find("model"), std::string::npos);  // modeled span kind
  EXPECT_NE(text.find("synth.requests"), std::string::npos);
  EXPECT_NE(text.find("embed.chain_length"), std::string::npos);
}

// ------------------------------------------------------------- Solver wiring

TEST(SolveTrace, AnnealerSolveRecordsStagesAndRoundTrips) {
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 30;
  const VertexCoverProblem p{path_graph(4)};
  const SolveReport report = solver.solve(p.encode(), BackendKind::kAnnealer);
  ASSERT_TRUE(report.ran) << report.failure_message();

  // Per-stage spans of the anneal pipeline.
  ASSERT_FALSE(report.trace.empty());
  for (const char* name : {"solve", "analyze", "ground_truth", "anneal",
                           "compile", "embed", "anneal.sample"}) {
    EXPECT_NE(report.trace.find_span(name), nullptr) << name;
  }
  const obs::SpanRecord* device = report.trace.find_span("device.programming");
  ASSERT_NE(device, nullptr);
  EXPECT_TRUE(device->modeled);

  // Synthesis cache counters surfaced from SynthEngine::Stats: every
  // request either hits or misses the cache.
  EXPECT_GT(report.trace.counter("synth.requests"), 0.0);
  EXPECT_DOUBLE_EQ(report.trace.counter("synth.cache_hits") +
                       report.trace.counter("synth.cache_misses"),
                   report.trace.counter("synth.requests"));
  EXPECT_EQ(report.trace.counter("anneal.reads"), 30.0);
  EXPECT_TRUE(report.trace.histograms.count("embed.chain_length"));

  // Acceptance criterion: a real solve trace survives the JSON exporter.
  const obs::TraceData back =
      obs::trace_from_json(obs::trace_to_json(report.trace));
  expect_same_trace(report.trace, back);
}

TEST(SolveTrace, FailedSolveStillCarriesATrace) {
  Env env;
  const auto v = env.new_vars(2, "v");
  env.different(v[0], v[1]);
  env.same(v[0], v[1]);  // infeasible
  Solver solver(42);
  const SolveReport report = solver.solve(env, BackendKind::kClassical);
  EXPECT_FALSE(report.ran);
  EXPECT_FALSE(report.failure_message().empty());
  // Static analysis rejects the program, so only the early stages ran —
  // but the report still carries their spans.
  EXPECT_NE(report.trace.find_span("solve"), nullptr);
  EXPECT_NE(report.trace.find_span("analyze"), nullptr);
}

// ------------------------------------------------------------ merge_trace

TEST(MergeTrace, ReparentsSpansAndAggregatesMetrics) {
  obs::TraceData task;
  task.spans.push_back({"solve", obs::kNoParent, 0, 0.0, 100.0, false});
  task.spans.push_back({"embed", 0, 1, 10.0, 40.0, false});
  task.spans.push_back({"anneal", 0, 1, 60.0, 80.0, true});
  task.counters["plan_cache.hit"] = 2.0;
  task.gauges["transpile.depth"] = 7.0;
  task.histograms["embed.chain_length"].observe(3.0);
  task.histograms["embed.chain_length"].observe(5.0);

  obs::TraceData batch;
  obs::merge_trace(batch, task, "task0");
  obs::merge_trace(batch, task, "task1");

  ASSERT_EQ(batch.spans.size(), 8u);
  ASSERT_NE(batch.find_span("task0"), nullptr);
  ASSERT_NE(batch.find_span("task1"), nullptr);
  // Synthetic roots sit at depth 0 and span the task's full extent
  // (last span end = 60 + 80).
  EXPECT_EQ(batch.spans[0].name, "task0");
  EXPECT_EQ(batch.spans[0].parent, obs::kNoParent);
  EXPECT_EQ(batch.spans[0].depth, 0u);
  EXPECT_DOUBLE_EQ(batch.spans[0].duration_us, 140.0);
  // Task spans keep pre-order, re-parented one level down.
  EXPECT_EQ(batch.spans[1].name, "solve");
  EXPECT_EQ(batch.spans[1].parent, 0u);
  EXPECT_EQ(batch.spans[1].depth, 1u);
  EXPECT_EQ(batch.spans[2].parent, 1u);  // embed -> solve
  EXPECT_EQ(batch.spans[2].depth, 2u);
  EXPECT_TRUE(batch.spans[3].modeled);
  // The second task's copy points at its own root, not the first's.
  EXPECT_EQ(batch.spans[4].name, "task1");
  EXPECT_EQ(batch.spans[5].parent, 4u);

  // Counters sum, gauges last-write-win, histograms merge.
  EXPECT_DOUBLE_EQ(batch.counter("plan_cache.hit"), 4.0);
  EXPECT_DOUBLE_EQ(batch.gauge("transpile.depth"), 7.0);
  const obs::HistogramData& h = batch.histograms.at("embed.chain_length");
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.min, 3.0);
  EXPECT_DOUBLE_EQ(h.max, 5.0);
  EXPECT_DOUBLE_EQ(h.sum, 16.0);
}

TEST(MergeTrace, EmptyTaskStillGetsARoot) {
  obs::TraceData batch;
  obs::merge_trace(batch, obs::TraceData{}, "task0");
  ASSERT_EQ(batch.spans.size(), 1u);
  EXPECT_EQ(batch.spans[0].name, "task0");
  EXPECT_DOUBLE_EQ(batch.spans[0].duration_us, 0.0);
}

}  // namespace
}  // namespace nck
