#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/parse.hpp"
#include "util/rng.hpp"

namespace nck {
namespace {

TEST(Parse, IntroExample) {
  const Env env = parse_program(
      "nck({a, b}, {0, 1}) /\\ nck({b, c}, {1})");
  EXPECT_EQ(env.num_vars(), 3u);
  ASSERT_EQ(env.num_constraints(), 2u);
  EXPECT_EQ(env.constraints()[0].selection(), (std::set<unsigned>{0, 1}));
  EXPECT_EQ(env.constraints()[1].selection(), (std::set<unsigned>{1}));
  EXPECT_EQ(env.num_hard(), 2u);
}

TEST(Parse, SoftMarkerAndComments) {
  const Env env = parse_program(
      "# minimize a\n"
      "nck({a}, {0}, soft)\n"
      "nck({a, b}, {1, 2})  # cover the edge\n");
  EXPECT_EQ(env.num_soft(), 1u);
  EXPECT_EQ(env.num_hard(), 1u);
  EXPECT_TRUE(env.constraints()[0].soft());
}

TEST(Parse, SeparatorsAreOptional) {
  const Env a = parse_program("nck({x},{1}) nck({y},{0})");
  const Env b = parse_program("nck({x},{1}) /\\ nck({y},{0})");
  EXPECT_EQ(a.num_constraints(), b.num_constraints());
}

TEST(Parse, RepeatedVariablesKeepMultiplicity) {
  const Env env = parse_program("nck({x, y, y}, {2})");
  const auto& c = env.constraints()[0];
  EXPECT_EQ(c.cardinality(), 3u);
  EXPECT_EQ(c.pattern().multiplicities(), (std::vector<unsigned>{1, 2}));
}

TEST(Parse, ExplicitHardMarker) {
  const Env env = parse_program("nck({a}, {1}, hard)");
  EXPECT_EQ(env.num_hard(), 1u);
}

TEST(Parse, SyntaxErrorsCarryLocation) {
  try {
    parse_program("nck({a}, {1})\nnck(oops");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parse, RejectsMalformedInput) {
  EXPECT_THROW(parse_program("nck({}, {1})"), ParseError);
  EXPECT_THROW(parse_program("nck({a}, {})"), ParseError);
  EXPECT_THROW(parse_program("nck({a} {1})"), ParseError);
  EXPECT_THROW(parse_program("foo({a}, {1})"), ParseError);
  EXPECT_THROW(parse_program("nck({a}, {1}, maybe)"), ParseError);
  EXPECT_THROW(parse_program("nck({a}, {1}) @"), ParseError);
}

TEST(Parse, RejectsSemanticErrors) {
  // Selection value exceeding cardinality is a semantic error from Env.
  EXPECT_THROW(parse_program("nck({a, b}, {5})"), std::invalid_argument);
}

TEST(Parse, StreamOverload) {
  std::istringstream in("nck({p, q}, {1})");
  const Env env = parse_program(in);
  EXPECT_EQ(env.num_vars(), 2u);
}

TEST(Parse, EmptyProgramIsEmpty) {
  const Env env = parse_program("  # nothing here\n");
  EXPECT_EQ(env.num_constraints(), 0u);
}

// Round trip: to_string output parses back to an equivalent program.
class ParseRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ParseRoundTrip, ToStringParsesBack) {
  Rng rng(static_cast<std::uint64_t>(1300 + GetParam()));
  Env original;
  const auto vars = original.new_vars(3 + rng.below(4), "v");
  const std::size_t n = vars.size();
  for (std::size_t k = 0; k < 2 + rng.below(4); ++k) {
    std::vector<VarId> coll;
    for (std::size_t i = 0; i < 1 + rng.below(3); ++i) {
      coll.push_back(vars[rng.below(n)]);
    }
    std::set<unsigned> sel;
    for (unsigned s = 0; s <= coll.size(); ++s) {
      if (rng.bernoulli(0.5)) sel.insert(s);
    }
    if (sel.empty()) sel.insert(0);
    original.nck(coll, sel,
                 rng.bernoulli(0.4) ? ConstraintKind::kSoft
                                    : ConstraintKind::kHard);
  }
  const Env reparsed = parse_program(original.to_string());
  ASSERT_EQ(reparsed.num_constraints(), original.num_constraints());
  for (std::size_t i = 0; i < original.num_constraints(); ++i) {
    EXPECT_EQ(reparsed.constraints()[i].selection(),
              original.constraints()[i].selection());
    EXPECT_EQ(reparsed.constraints()[i].cardinality(),
              original.constraints()[i].cardinality());
    EXPECT_EQ(reparsed.constraints()[i].soft(),
              original.constraints()[i].soft());
  }
  // Behavioural equivalence on every assignment. Reparsed variable ids
  // follow first *mention* order (and unmentioned variables vanish), so map
  // assignments across by name.
  std::vector<std::size_t> original_id_of(reparsed.num_vars());
  for (std::size_t r = 0; r < reparsed.num_vars(); ++r) {
    const std::string& name = reparsed.var_name(static_cast<VarId>(r));
    const auto& names = original.var_names();
    const auto it = std::find(names.begin(), names.end(), name);
    ASSERT_NE(it, names.end());
    original_id_of[r] = static_cast<std::size_t>(it - names.begin());
  }
  for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
    std::vector<bool> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = (bits >> i) & 1u;
    std::vector<bool> xr(reparsed.num_vars());
    for (std::size_t r = 0; r < xr.size(); ++r) x[original_id_of[r]] ? xr[r] = true : xr[r] = false;
    const Evaluation a = original.evaluate(x);
    const Evaluation b = reparsed.evaluate(xr);
    EXPECT_EQ(a.hard_violated, b.hard_violated);
    EXPECT_EQ(a.soft_satisfied, b.soft_satisfied);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, ParseRoundTrip,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace nck

namespace nck {
namespace {

// Resource-limit hardening: every ParseLimit is enforced with a typed
// ParseLimitError so callers (serve, the fuzz harnesses) can distinguish
// "input too big" from "input malformed" without string matching.
ParseLimit limit_of(const std::string& text, const ParseLimits& limits) {
  try {
    parse_program(text, limits);
  } catch (const ParseLimitError& e) {
    return e.limit();
  }
  ADD_FAILURE() << "no ParseLimitError for: " << text.substr(0, 60);
  return ParseLimit::kInputBytes;
}

TEST(ParseLimits_, InputBytesCapMirrorsServe) {
  ParseLimits limits;
  limits.max_input_bytes = 32;
  EXPECT_EQ(limit_of(std::string(33, ' '), limits), ParseLimit::kInputBytes);
  // Default matches serve's kMaxRequestBytes (1 MiB).
  EXPECT_EQ(limit_of("nck({a},{1})" + std::string(1u << 20, ' '),
                     ParseLimits{}),
            ParseLimit::kInputBytes);
  EXPECT_NO_THROW(parse_program(std::string(32, ' '), limits));
}

TEST(ParseLimits_, TokenLengthCapped) {
  const std::string long_name(300, 'a');
  EXPECT_EQ(limit_of("nck({" + long_name + "},{1})", ParseLimits{}),
            ParseLimit::kTokenLength);
  ParseLimits tight;
  tight.max_token_length = 4;
  EXPECT_EQ(limit_of("nck({abcde},{1})", tight), ParseLimit::kTokenLength);
  EXPECT_NO_THROW(parse_program("nck({abcd},{1})", tight));
}

TEST(ParseLimits_, NestingDepthCapped) {
  // The grammar nests two deep (nck( ... { ... } ... )) and the parser is
  // iterative, so the default limit is pure defense-in-depth for grammar
  // growth; a tightened limit must trip on the inner '{'.
  ParseLimits tight;
  tight.max_nesting_depth = 1;
  EXPECT_EQ(limit_of("nck({a},{1})", tight), ParseLimit::kNestingDepth);
  EXPECT_NO_THROW(parse_program("nck({a},{1})", ParseLimits{}));
}

TEST(ParseLimits_, NumberValueCapped) {
  // Both the stoul-out-of-range escape and the modulo-2^32 wrap are
  // covered in test_fuzz_regressions.cpp; here: the boundary is exact,
  // and the limit fires during parsing, before semantic validation.
  EXPECT_EQ(limit_of("nck({a},{1048577})", ParseLimits{}),
            ParseLimit::kNumberValue);
  ParseLimits tight;
  tight.max_number_value = 3;
  EXPECT_EQ(limit_of("nck({a,b,c},{4})", tight), ParseLimit::kNumberValue);
  EXPECT_NO_THROW(parse_program("nck({a,b,c},{3})", tight));
}

TEST(ParseLimits_, CollectionAndSelectionSizesCapped) {
  ParseLimits tight;
  tight.max_collection_size = 3;
  tight.max_selection_size = 2;
  EXPECT_EQ(limit_of("nck({a,b,c,d},{1})", tight),
            ParseLimit::kCollectionSize);
  EXPECT_EQ(limit_of("nck({a,b,c},{0,1,2})", tight),
            ParseLimit::kSelectionSize);
  EXPECT_NO_THROW(parse_program("nck({a,b,c},{0,2})", tight));
}

TEST(ParseLimits_, ConstraintAndVariableCountsCapped) {
  ParseLimits tight;
  tight.max_constraints = 2;
  EXPECT_EQ(limit_of("nck({a},{1}) nck({a},{1}) nck({a},{1})", tight),
            ParseLimit::kConstraints);
  ParseLimits few_vars;
  few_vars.max_variables = 2;
  EXPECT_EQ(limit_of("nck({a,b,c},{1})", few_vars), ParseLimit::kVariables);
  EXPECT_NO_THROW(parse_program("nck({a,b},{1}) nck({b},{0})", few_vars));
}

TEST(ParseLimits_, LimitErrorsNameTheLimitAndStayParseErrors) {
  ParseLimits tight;
  tight.max_nesting_depth = 1;
  try {
    parse_program("nck({a},{1})", tight);
    FAIL() << "expected ParseLimitError";
  } catch (const ParseError& e) {  // ParseLimitError is-a ParseError
    EXPECT_NE(std::string(e.what()).find("limit"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(
                  parse_limit_name(ParseLimit::kNestingDepth)),
              std::string::npos);
  }
}

// Fuzz-ish robustness: random byte strings must either parse or throw a
// ParseError / std::invalid_argument — never crash or hang.
class ParseFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParseFuzz, RandomInputNeverCrashes) {
  Rng rng(static_cast<std::uint64_t>(9900 + GetParam()));
  const char alphabet[] = "nck(){},01soft/\\ \t\n#ab_";
  std::string text;
  const std::size_t len = rng.below(200);
  for (std::size_t i = 0; i < len; ++i) {
    text.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
  }
  try {
    const Env env = parse_program(text);
    (void)env.num_constraints();
  } catch (const ParseError&) {
  } catch (const std::invalid_argument&) {
  }
}

INSTANTIATE_TEST_SUITE_P(RandomBytes, ParseFuzz, ::testing::Range(0, 30));

TEST(ParseFuzz, ArbitraryBinaryBytesRejected) {
  std::string junk;
  for (int i = 1; i < 128; i += 7) junk.push_back(static_cast<char>(i));
  EXPECT_THROW(parse_program(junk), ParseError);
}

}  // namespace
}  // namespace nck
