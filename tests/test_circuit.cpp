#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "circuit/backend.hpp"
#include "circuit/circuit.hpp"
#include "circuit/coupling.hpp"
#include "circuit/optimizer.hpp"
#include "circuit/qaoa.hpp"
#include "circuit/statevector.hpp"
#include "circuit/transpiler.hpp"
#include "core/compile.hpp"
#include "problems/max_cut.hpp"
#include "graph/generators.hpp"
#include "runtime/result.hpp"
#include "util/rng.hpp"

namespace nck {
namespace {

// -------------------------------------------------------------- StateVector

TEST(StateVector, InitialState) {
  StateVector s(3);
  EXPECT_EQ(s.dimension(), 8u);
  EXPECT_NEAR(std::abs(s.amplitude(0)), 1.0, 1e-12);
  EXPECT_NEAR(s.norm(), 1.0, 1e-12);
  EXPECT_THROW(StateVector(40), std::invalid_argument);
}

TEST(StateVector, HadamardCreatesUniform) {
  StateVector s(2);
  s.h(0);
  s.h(1);
  const auto p = s.probabilities();
  for (double prob : p) EXPECT_NEAR(prob, 0.25, 1e-12);
}

TEST(StateVector, XFlipsBit) {
  StateVector s(2);
  s.x(1);
  EXPECT_NEAR(std::abs(s.amplitude(0b10)), 1.0, 1e-12);
}

TEST(StateVector, BellState) {
  StateVector s(2);
  s.h(0);
  s.cx(0, 1);
  EXPECT_NEAR(std::norm(s.amplitude(0b00)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(s.amplitude(0b11)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(s.amplitude(0b01)), 0.0, 1e-12);
}

TEST(StateVector, RotationsPreserveNorm) {
  StateVector s(4);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const std::size_t q = rng.below(4);
    switch (rng.below(5)) {
      case 0: s.rx(q, rng.uniform(-3, 3)); break;
      case 1: s.ry(q, rng.uniform(-3, 3)); break;
      case 2: s.rz(q, rng.uniform(-3, 3)); break;
      case 3: s.h(q); break;
      case 4: {
        const std::size_t q2 = (q + 1 + rng.below(3)) % 4;
        s.rzz(q, q2, rng.uniform(-3, 3));
        break;
      }
    }
  }
  EXPECT_NEAR(s.norm(), 1.0, 1e-9);
}

TEST(StateVector, RxPiFlipsQubit) {
  StateVector s(1);
  s.rx(0, M_PI);
  EXPECT_NEAR(std::norm(s.amplitude(1)), 1.0, 1e-12);
}

TEST(StateVector, RzzAppliesParityPhases) {
  // On |++>, RZZ followed by undoing phases should leave probabilities flat.
  StateVector s(2);
  s.h(0);
  s.h(1);
  s.rzz(0, 1, 1.3);
  const auto p = s.probabilities();
  for (double prob : p) EXPECT_NEAR(prob, 0.25, 1e-12);
  // Phase check: amplitude(00)/amplitude(01) should differ by e^{i*1.3}.
  const auto ratio = s.amplitude(0) / s.amplitude(1);
  EXPECT_NEAR(std::arg(ratio), -1.3, 1e-9);
}

TEST(StateVector, SwapExchangesQubits) {
  StateVector s(2);
  s.x(0);
  s.swap(0, 1);
  EXPECT_NEAR(std::norm(s.amplitude(0b10)), 1.0, 1e-12);
}

TEST(StateVector, SamplingMatchesProbabilities) {
  StateVector s(2);
  s.h(0);  // 50/50 over qubit 0
  Rng rng(4);
  const auto shots = s.sample(10000, rng);
  std::size_t ones = 0;
  for (auto b : shots) ones += b & 1u;
  EXPECT_NEAR(static_cast<double>(ones) / 10000.0, 0.5, 0.02);
}

// ----------------------------------------------------------------- Circuit

TEST(Circuit, DepthGreedyLayering) {
  Circuit c(3);
  c.h(0);       // layer 1 on q0
  c.h(1);       // layer 1 on q1
  c.cx(0, 1);   // layer 2
  c.rz(2, 0.5); // layer 1 on q2
  c.cx(1, 2);   // layer 3
  EXPECT_EQ(c.depth(), 3u);
  EXPECT_EQ(c.num_gates(), 5u);
  EXPECT_EQ(c.num_two_qubit_gates(), 2u);
}

TEST(Circuit, RejectsBadQubits) {
  Circuit c(2);
  EXPECT_THROW(c.h(5), std::out_of_range);
  EXPECT_THROW(c.cx(0, 0), std::invalid_argument);
}

TEST(Circuit, RunMatchesDirectApplication) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  StateVector via_circuit(2);
  c.run(via_circuit);
  StateVector direct(2);
  direct.h(0);
  direct.cx(0, 1);
  for (std::uint64_t b = 0; b < 4; ++b) {
    EXPECT_NEAR(std::abs(via_circuit.amplitude(b) - direct.amplitude(b)), 0.0,
                1e-12);
  }
}

// ---------------------------------------------------------------- Coupling

TEST(Coupling, BrooklynHas65Qubits) {
  const Graph g = brooklyn_coupling();
  EXPECT_EQ(g.num_vertices(), 65u);
  EXPECT_TRUE(g.connected());
  // Heavy-hex: maximum degree 3.
  std::size_t max_degree = 0;
  for (Graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  EXPECT_EQ(max_degree, 3u);
}

TEST(Coupling, LatticeScales) {
  EXPECT_EQ(heavy_hex_lattice(2).num_vertices(), 10u + 10u + 3u);
  EXPECT_GT(heavy_hex_lattice(7).num_vertices(), 65u);
  EXPECT_THROW(heavy_hex_lattice(1), std::invalid_argument);
}

// --------------------------------------------------------------- Transpiler

TEST(Transpiler, AdjacentGatesNeedNoSwaps) {
  Circuit logical(2);
  logical.h(0);
  logical.cx(0, 1);
  const Graph coupling = path_graph(4);
  const auto result = transpile(logical, coupling);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->swap_count, 0u);
  EXPECT_EQ(result->cx_count, 1u);
}

TEST(Transpiler, RoutesDistantGates) {
  // Star-shaped interaction on a line must insert SWAPs.
  Circuit logical(4);
  logical.rzz(0, 1, 0.3);
  logical.rzz(0, 2, 0.3);
  logical.rzz(0, 3, 0.3);
  logical.rzz(1, 3, 0.3);
  const Graph coupling = path_graph(4);
  const auto result = transpile(logical, coupling);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->swap_count, 0u);
  // RZZ decomposes into 2 CX; SWAPs into 3 CX each.
  EXPECT_EQ(result->cx_count, 4u * 2u + result->swap_count * 3u);
}

TEST(Transpiler, RejectsOversizedCircuits) {
  Circuit logical(10);
  logical.h(0);
  const auto result = transpile(logical, path_graph(5));
  EXPECT_FALSE(result.has_value());
}

TEST(Transpiler, PreservesSemanticsUpToLayout) {
  // Compare output distributions of logical and transpiled circuits
  // (transpiled runs on more qubits; marginalize over the layout).
  Circuit logical(3);
  logical.h(0);
  logical.h(1);
  logical.h(2);
  logical.rzz(0, 2, 0.7);
  logical.rx(0, 0.4);
  logical.rzz(1, 2, -0.3);
  const Graph coupling = path_graph(5);
  const auto result = transpile(logical, coupling);
  ASSERT_TRUE(result.has_value());

  StateVector ls(3);
  logical.run(ls);
  const auto lp = ls.probabilities();

  StateVector ps(coupling.num_vertices());
  result->physical.run(ps);
  const auto pp = ps.probabilities();

  // For each logical basis state, sum physical probabilities whose layout
  // bits match.
  for (std::uint64_t lb = 0; lb < 8; ++lb) {
    double marginal = 0.0;
    for (std::uint64_t pb = 0; pb < pp.size(); ++pb) {
      bool match = true;
      for (std::size_t q = 0; q < 3; ++q) {
        const bool lbit = (lb >> q) & 1u;
        const bool pbit = (pb >> result->layout[q]) & 1u;
        if (lbit != pbit) {
          match = false;
          break;
        }
      }
      if (match) marginal += pp[pb];
    }
    EXPECT_NEAR(marginal, lp[lb], 1e-9) << "basis " << lb;
  }
}

// ---------------------------------------------------------------- Optimizer

TEST(Optimizer, NelderMeadQuadraticBowl) {
  const Objective f = [](const std::vector<double>& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  NelderMeadOptions options;
  options.max_evaluations = 200;
  options.tolerance = 1e-10;
  const auto result = nelder_mead(f, {0.0, 0.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-2);
  EXPECT_NEAR(result.x[1], -2.0, 1e-2);
  EXPECT_LE(result.evaluations, 200u);
}

TEST(Optimizer, NelderMeadRespectsBudget) {
  std::size_t calls = 0;
  const Objective f = [&](const std::vector<double>& x) {
    ++calls;
    return x[0] * x[0];
  };
  NelderMeadOptions options;
  options.max_evaluations = 10;
  nelder_mead(f, {5.0}, options);
  EXPECT_LE(calls, 12u);  // simplex construction may finish the last round
}

TEST(Optimizer, SpsaImprovesNoisyObjective) {
  Rng noise(5);
  const Objective f = [&](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1] + noise.gaussian(0.0, 0.01);
  };
  const auto result = spsa(f, {2.0, -2.0});
  EXPECT_LT(result.x[0] * result.x[0] + result.x[1] * result.x[1], 2.0);
}

// --------------------------------------------------------------------- QAOA

TEST(Qaoa, CircuitStructure) {
  IsingModel ising;
  ising.h = {0.5, 0.0, -0.5};
  ising.j = {{0, 1, 1.0}, {1, 2, 1.0}};
  const Circuit c = build_qaoa_circuit(ising, {0.3, 0.7});
  // 3 H + 2 RZZ + 2 RZ (h[1] == 0 skipped) + 3 RX.
  EXPECT_EQ(c.num_gates(), 3u + 2u + 2u + 3u);
  EXPECT_THROW(build_qaoa_circuit(ising, {0.1}), std::invalid_argument);
}

TEST(Qaoa, SolvesTinyMaxCut) {
  // Max cut on a square: QAOA should find a 4-edge cut among its samples.
  const MaxCutProblem problem{cycle_graph(4)};
  const CompiledQubo cq = compile(problem.encode());
  QaoaOptions options;
  options.shots = 2000;
  options.noise = {};  // noiseless
  options.noise.error_1q = 0.0;
  options.noise.error_cx = 0.0;
  options.noise.readout_flip = 0.0;
  Rng rng(11);
  const QaoaResult result = run_qaoa(cq.qubo, brooklyn_coupling(), options, rng);
  EXPECT_EQ(result.mode, "statevector");
  EXPECT_EQ(result.qubits, 4u);
  std::vector<bool> best(result.samples.front().begin(),
                         result.samples.front().end());
  EXPECT_EQ(problem.cut_of(cq.project(best)), 4u);
}

TEST(Qaoa, NoiseFidelityDecaysWithGates) {
  NoiseModel noise;
  EXPECT_GT(noise.fidelity(10, 5), noise.fidelity(10, 50));
  EXPECT_GT(noise.fidelity(10, 5), noise.fidelity(100, 5));
  const NoiseModel noiseless{0.0, 0.0, 0.0};
  EXPECT_NEAR(noiseless.fidelity(100, 100), 1.0, 1e-12);
}

TEST(Qaoa, SurrogateModeForWideProblems) {
  // 30 variables exceeds the state-vector cutoff -> Boltzmann surrogate.
  const MaxCutProblem problem{cycle_graph(30)};
  const CompiledQubo cq = compile(problem.encode());
  QaoaOptions options;
  options.shots = 500;
  options.max_sim_qubits = 22;
  Rng rng(12);
  const QaoaResult result =
      run_qaoa(cq.qubo, heavy_hex_lattice(7), options, rng);
  EXPECT_EQ(result.mode, "boltzmann-surrogate");
  EXPECT_EQ(result.samples.size(), 500u);
  EXPECT_GT(result.depth, 0u);  // transpiler metrics still exact
}

// ------------------------------------------------------------------ Backend

TEST(CircuitBackend, EndToEndMaxCut) {
  const MaxCutProblem problem{cycle_graph(5)};
  const Env env = problem.encode();
  SynthEngine engine;
  Rng rng(13);
  CircuitBackendOptions options;
  options.qaoa.shots = 1000;
  const CircuitOutcome outcome =
      run_circuit_backend(env, brooklyn_coupling(), engine, rng, options);
  ASSERT_TRUE(outcome.fits);
  EXPECT_EQ(outcome.qubits_used, 5u);
  EXPECT_GT(outcome.depth, 0u);
  EXPECT_GT(outcome.num_jobs, 5u);

  // Paper job-time model: every job lands in the observed 7-23 s band.
  for (double t : outcome.job_seconds) {
    EXPECT_GE(t, 7.0);
    EXPECT_LE(t, 23.0);
  }
  EXPECT_GT(outcome.total_seconds, 400.0);  // ~500 s of server time

  const GroundTruth truth = ground_truth(env);
  const QualityCounts counts = classify_all(outcome.evaluations, truth);
  EXPECT_GT(counts.total(), 0u);
  // QAOA's reported answer is the lowest-energy sample; for this tiny
  // problem it should be optimal (cut of 4 on C5).
  EXPECT_EQ(classify(outcome.evaluations.front(), truth), Quality::kOptimal);
}

TEST(CircuitBackend, RejectsOversizedProblems) {
  const MaxCutProblem problem{cycle_graph(80)};
  SynthEngine engine;
  Rng rng(14);
  const CircuitOutcome outcome = run_circuit_backend(
      problem.encode(), brooklyn_coupling(), engine, rng, {});
  EXPECT_FALSE(outcome.fits);
  EXPECT_EQ(outcome.qubits_used, 80u);  // still reports the requirement
}

}  // namespace
}  // namespace nck
