#include <gtest/gtest.h>

#include "core/compile.hpp"
#include "core/env.hpp"
#include "qubo/brute_force.hpp"
#include "util/rng.hpp"

namespace nck {
namespace {

TEST(Constraint, ValidationErrors) {
  EXPECT_THROW(Constraint({}, {0}, ConstraintKind::kHard),
               std::invalid_argument);
  EXPECT_THROW(Constraint({0}, {}, ConstraintKind::kHard),
               std::invalid_argument);
  EXPECT_THROW(Constraint({0, 1}, {5}, ConstraintKind::kHard),
               std::invalid_argument);
}

TEST(Constraint, DistinctVarsSortedByMultiplicity) {
  // collection {5, 3, 5}: var 3 has multiplicity 1, var 5 has 2.
  const Constraint c({5, 3, 5}, {1}, ConstraintKind::kHard);
  EXPECT_EQ(c.distinct_vars(), (std::vector<VarId>{3, 5}));
  EXPECT_EQ(c.pattern().multiplicities(), (std::vector<unsigned>{1, 2}));
  EXPECT_EQ(c.cardinality(), 3u);
}

TEST(Constraint, SatisfiedCountsMultiplicity) {
  const Constraint c({0, 1, 1}, {2}, ConstraintKind::kHard);
  EXPECT_TRUE(c.satisfied({false, true}));   // 0 + 2*1 = 2
  EXPECT_FALSE(c.satisfied({true, true}));   // 3
  EXPECT_FALSE(c.satisfied({true, false}));  // 1
}

TEST(Constraint, SymmetryKeyMatchesDefinition7) {
  // Same selection set + same cardinality => symmetric.
  const Constraint a({0, 1, 2}, {0, 2}, ConstraintKind::kHard);
  const Constraint b({1, 2, 3}, {0, 2}, ConstraintKind::kHard);
  const Constraint c({1, 2, 3}, {1, 2}, ConstraintKind::kHard);
  const Constraint d({1, 2}, {0, 2}, ConstraintKind::kHard);
  EXPECT_EQ(a.symmetry_key(), b.symmetry_key());
  EXPECT_NE(a.symmetry_key(), c.symmetry_key());
  EXPECT_NE(a.symmetry_key(), d.symmetry_key());
}

TEST(Constraint, ToStringRendersPaperSyntax) {
  const Constraint c({0, 1}, {0, 1}, ConstraintKind::kHard);
  EXPECT_EQ(c.to_string({"a", "b"}), "nck({a, b}, {0, 1})");
  const Constraint s({0}, {0}, ConstraintKind::kSoft);
  EXPECT_EQ(s.to_string({"a"}), "nck({a}, {0}, soft)");
}

TEST(Env, VariableManagement) {
  Env env;
  const VarId a = env.new_var("a");
  const VarId b = env.new_var();
  EXPECT_EQ(env.num_vars(), 2u);
  EXPECT_EQ(env.var_name(a), "a");
  EXPECT_FALSE(env.var_name(b).empty());
  EXPECT_EQ(env.var("a"), a);       // lookup
  const VarId c = env.var("c");     // create on demand
  EXPECT_EQ(env.num_vars(), 3u);
  EXPECT_EQ(env.var("c"), c);
  EXPECT_THROW(env.new_var("a"), std::invalid_argument);
}

TEST(Env, NewVarsWithPrefix) {
  Env env;
  const auto vars = env.new_vars(3, "x");
  EXPECT_EQ(env.var_name(vars[0]), "x0");
  EXPECT_EQ(env.var_name(vars[2]), "x2");
}

TEST(Env, NckRejectsUnknownVariable) {
  Env env;
  env.new_var("a");
  EXPECT_THROW(env.nck({5}, {0}), std::invalid_argument);
}

TEST(Env, ConvenienceBuilders) {
  Env env;
  const auto v = env.new_vars(3, "v");
  env.exactly({v[0], v[1]}, 1);
  env.at_least({v[0], v[1], v[2]}, 2);
  env.at_most({v[0], v[1]}, 1);
  env.different(v[0], v[1]);
  env.same(v[1], v[2]);
  env.prefer_false(v[0]);
  env.prefer_true(v[1]);
  EXPECT_EQ(env.num_constraints(), 7u);
  EXPECT_EQ(env.num_hard(), 5u);
  EXPECT_EQ(env.num_soft(), 2u);

  // at_least(2 of 3) selection should be {2, 3}.
  EXPECT_EQ(env.constraints()[1].selection(), (std::set<unsigned>{2, 3}));
  // at_most(1 of 2) selection should be {0, 1}.
  EXPECT_EQ(env.constraints()[2].selection(), (std::set<unsigned>{0, 1}));
}

TEST(Env, EvaluateCountsHardAndSoft) {
  // The paper's intro example: nck({a,b},{0,1}) && nck({b,c},{1}).
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b}, {0, 1});
  env.nck({b, c}, {1});
  env.prefer_false(a);

  const Evaluation good = env.evaluate({false, false, true});
  EXPECT_EQ(good.hard_violated, 0u);
  EXPECT_EQ(good.soft_satisfied, 1u);
  EXPECT_TRUE(good.feasible());

  const Evaluation bad = env.evaluate({true, true, true});
  EXPECT_EQ(bad.hard_violated, 2u);
  EXPECT_FALSE(bad.feasible());
}

TEST(Env, NonsymmetricCountMinVertexCoverIsTwo) {
  // Table I row 3: minimum vertex cover has exactly 2 non-symmetric
  // constraint classes regardless of graph size.
  Env env;
  const auto v = env.new_vars(5, "v");
  const std::pair<int, int> edges[] = {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}};
  for (auto [s, t] : edges) env.nck({v[s], v[t]}, {1, 2});
  for (VarId x : v) env.prefer_false(x);
  EXPECT_EQ(env.num_nonsymmetric(), 2u);
  EXPECT_EQ(env.num_constraints(), 10u);
}

TEST(Env, ToStringIsConjunction) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, b}, {0, 1});
  env.nck({a, b}, {1});
  const std::string s = env.to_string();
  EXPECT_NE(s.find("/\\"), std::string::npos);
  EXPECT_NE(s.find("nck({a, b}, {0, 1})"), std::string::npos);
}

// ----------------------------------------------------------------- compile

// Helper: exhaustively find the best program-variable assignments of a
// compiled QUBO (minimizing over ancillas).
std::vector<std::vector<bool>> best_assignments(const Env& /*env*/,
                                                const CompiledQubo& cq) {
  const std::size_t n = cq.num_problem_vars;
  const std::size_t a = cq.num_ancillas;
  std::vector<std::vector<bool>> best;
  double best_energy = std::numeric_limits<double>::infinity();
  std::vector<bool> bits(n + a);
  for (std::uint64_t x = 0; x < (1ull << n); ++x) {
    double e_min = std::numeric_limits<double>::infinity();
    for (std::uint64_t z = 0; z < (1ull << a); ++z) {
      const std::uint64_t full = x | (z << n);
      for (std::size_t i = 0; i < n + a; ++i) bits[i] = (full >> i) & 1u;
      e_min = std::min(e_min, cq.qubo.energy(bits));
    }
    if (e_min < best_energy - 1e-9) {
      best_energy = e_min;
      best.clear();
    }
    if (e_min < best_energy + 1e-9) {
      std::vector<bool> xb(n);
      for (std::size_t i = 0; i < n; ++i) xb[i] = (x >> i) & 1u;
      best.push_back(std::move(xb));
    }
  }
  return best;
}

TEST(Compile, HardOnlyProgramGroundStatesAreSolutions) {
  // Intro example: nck({a,b},{0,1}) && nck({b,c},{1}).
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b}, {0, 1});
  env.nck({b, c}, {1});
  const CompiledQubo cq = compile(env);
  for (const auto& x : best_assignments(env, cq)) {
    EXPECT_TRUE(env.evaluate(x).feasible());
  }
}

TEST(Compile, MinimumVertexCoverGroundStatesAreMinimumCovers) {
  // Section IV running example (Figs 2-5): 5 vertices, min cover size 3.
  Env env;
  const auto v = env.new_vars(5, "v");
  const std::pair<int, int> edges[] = {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}};
  for (auto [s, t] : edges) env.nck({v[s], v[t]}, {1, 2});
  for (VarId x : v) env.prefer_false(x);

  const CompiledQubo cq = compile(env);
  const auto best = best_assignments(env, cq);
  ASSERT_FALSE(best.empty());
  for (const auto& x : best) {
    const auto eval = env.evaluate(x);
    EXPECT_TRUE(eval.feasible());
    // Minimum cover has 3 vertices -> exactly 2 soft constraints satisfied.
    EXPECT_EQ(eval.soft_satisfied, 2u);
    std::size_t cover_size = 0;
    for (bool bit : x) cover_size += bit;
    EXPECT_EQ(cover_size, 3u);
  }
}

TEST(Compile, SoftViolationNeverBeatsHardViolation) {
  // One hard constraint and many soft ones: breaking the hard constraint
  // must cost more than ignoring every soft constraint.
  Env env;
  const auto v = env.new_vars(4, "v");
  env.exactly({v[0], v[1]}, 1);  // hard
  for (VarId x : v) env.prefer_true(x);
  const CompiledQubo cq = compile(env);
  EXPECT_GT(cq.hard_scale, cq.max_soft_energy);
  for (const auto& x : best_assignments(env, cq)) {
    EXPECT_TRUE(env.evaluate(x).feasible());
  }
}

TEST(Compile, InfeasibleProgramStillCompiles) {
  // The Section IV-B contradiction: three pairwise nck({.,.},{1}) over a
  // triangle is unsatisfiable; compilation succeeds but no ground state is
  // feasible.
  Env env;
  const auto v = env.new_vars(3, "v");
  env.different(v[0], v[1]);
  env.different(v[0], v[2]);
  env.different(v[1], v[2]);
  const CompiledQubo cq = compile(env);
  for (const auto& x : best_assignments(env, cq)) {
    EXPECT_FALSE(env.evaluate(x).feasible());
  }
}

TEST(Compile, MaxCutSoftOnlyEncoding) {
  // Section IV-C: one soft nck({u,v},{1}) per edge solves Max Cut.
  // Square graph: max cut = 4.
  Env env;
  const auto v = env.new_vars(4, "v");
  const std::pair<int, int> edges[] = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  for (auto [s, t] : edges) env.nck({v[s], v[t]}, {1}, ConstraintKind::kSoft);
  const CompiledQubo cq = compile(env);
  for (const auto& x : best_assignments(env, cq)) {
    EXPECT_EQ(env.evaluate(x).soft_satisfied, 4u);
  }
}

TEST(Compile, AncillasAppendedAfterProblemVars) {
  Env env;
  const auto v = env.new_vars(3, "v");
  env.nck({v[0], v[1], v[2]}, {0, 2});  // XOR pattern needs one ancilla
  const CompiledQubo cq = compile(env);
  EXPECT_EQ(cq.num_problem_vars, 3u);
  EXPECT_EQ(cq.num_ancillas, 1u);
  EXPECT_EQ(cq.qubo.num_variables(), 4u);
  const std::vector<bool> full{true, false, true, false};
  EXPECT_EQ(cq.project(full), (std::vector<bool>{true, false, true}));
}

TEST(Compile, EngineStatsExposeCacheBehaviour) {
  Env env;
  const auto v = env.new_vars(6, "v");
  for (int i = 0; i < 5; ++i) {
    env.nck({v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i) + 1]},
            {1, 2});
  }
  SynthEngine engine;
  compile(env, engine);
  EXPECT_EQ(engine.stats().requests, 5u);
  EXPECT_EQ(engine.stats().cache_hits, 4u);  // all edges share one pattern
}

// Property: for random small programs, QUBO ground states (minimized over
// ancillas) coincide with the best assignments found by direct enumeration
// of the constraint semantics.
class CompileProperty : public ::testing::TestWithParam<int> {};

TEST_P(CompileProperty, GroundStatesMatchSemantics) {
  Rng rng(static_cast<std::uint64_t>(4242 + GetParam()));
  Env env;
  const std::size_t n = 3 + rng.below(3);
  const auto vars = env.new_vars(n, "v");
  const std::size_t num_constraints = 2 + rng.below(3);
  for (std::size_t k = 0; k < num_constraints; ++k) {
    const std::size_t size = 1 + rng.below(3);
    std::vector<VarId> coll;
    for (std::size_t i = 0; i < size; ++i) {
      coll.push_back(vars[rng.below(n)]);
    }
    std::set<unsigned> sel;
    for (unsigned s = 0; s <= coll.size(); ++s) {
      if (rng.bernoulli(0.5)) sel.insert(s);
    }
    if (sel.empty()) sel.insert(static_cast<unsigned>(coll.size()));
    env.nck(coll, sel, rng.bernoulli(0.3) ? ConstraintKind::kSoft
                                          : ConstraintKind::kHard);
  }

  // Semantic optimum by enumeration: lexicographically (hard_violated,
  // -soft_satisfied) minimal.
  std::size_t best_hard = SIZE_MAX;
  std::size_t best_soft = 0;
  for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
    std::vector<bool> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = (bits >> i) & 1u;
    const Evaluation e = env.evaluate(x);
    if (e.hard_violated < best_hard ||
        (e.hard_violated == best_hard && e.soft_satisfied > best_soft)) {
      best_hard = e.hard_violated;
      best_soft = e.soft_satisfied;
    }
  }
  if (best_hard != 0) GTEST_SKIP() << "random program infeasible";

  const CompiledQubo cq = compile(env);
  for (const auto& x : best_assignments(env, cq)) {
    const Evaluation e = env.evaluate(x);
    EXPECT_EQ(e.hard_violated, 0u);
    EXPECT_EQ(e.soft_satisfied, best_soft);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, CompileProperty,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace nck
