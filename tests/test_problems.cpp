#include <gtest/gtest.h>

#include "classical/exact_solver.hpp"
#include "core/compile.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "problems/coloring.hpp"
#include "problems/cover.hpp"
#include "problems/ksat.hpp"
#include "problems/max_cut.hpp"
#include "problems/vertex_cover.hpp"
#include "qubo/brute_force.hpp"
#include "util/rng.hpp"

namespace nck {
namespace {

Graph paper_graph() {  // the 5-vertex running example of Fig 2
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  return g;
}

// ------------------------------------------------------------ Vertex cover

TEST(VertexCover, EncodingShape) {
  const VertexCoverProblem p{paper_graph()};
  const Env env = p.encode();
  EXPECT_EQ(env.num_vars(), 5u);
  EXPECT_EQ(env.num_hard(), 5u);  // one per edge
  EXPECT_EQ(env.num_soft(), 5u);  // one per vertex
  EXPECT_EQ(env.num_nonsymmetric(), 2u);  // Table I row 3
}

TEST(VertexCover, ExactSolverFindsMinimumCover) {
  const VertexCoverProblem p{paper_graph()};
  const auto solution = solve_exact(p.encode());
  ASSERT_TRUE(solution.feasible);
  EXPECT_TRUE(p.verify(solution.assignment));
  EXPECT_EQ(p.cover_size(solution.assignment), p.optimal_cover_size());
}

TEST(VertexCover, HandcraftedQuboGroundStatesAreMinimumCovers) {
  const VertexCoverProblem p{paper_graph()};
  const auto result = brute_force_minimize(p.handcrafted_qubo());
  for (const auto& gs : result.ground_states) {
    EXPECT_TRUE(p.verify(gs));
    EXPECT_EQ(p.cover_size(gs), 3u);
  }
}

TEST(VertexCover, GeneratedQuboMatchesHandcraftedGroundStates) {
  // Section VI-B claim: for vertex cover, the NchooseK-generated QUBO has
  // the same minimizers as the handcrafted one.
  const VertexCoverProblem p{paper_graph()};
  const CompiledQubo cq = compile(p.encode());
  ASSERT_EQ(cq.num_ancillas, 0u);  // {1,2} and {0} patterns need no ancillas
  const auto generated = brute_force_minimize(cq.qubo);
  const auto handcrafted = brute_force_minimize(p.handcrafted_qubo());
  EXPECT_EQ(generated.ground_states, handcrafted.ground_states);
}

// ----------------------------------------------------------------- Max cut

TEST(MaxCut, EncodingIsSoftOnly) {
  const MaxCutProblem p{paper_graph()};
  const Env env = p.encode();
  EXPECT_EQ(env.num_hard(), 0u);
  EXPECT_EQ(env.num_soft(), 5u);
  EXPECT_EQ(env.num_nonsymmetric(), 1u);  // Table I row 7
}

TEST(MaxCut, ExactSolverFindsMaximumCut) {
  const MaxCutProblem p{paper_graph()};
  const auto solution = solve_exact(p.encode());
  ASSERT_TRUE(solution.feasible);
  EXPECT_EQ(solution.soft_satisfied, p.optimal_cut());
  EXPECT_EQ(p.cut_of(solution.assignment), p.optimal_cut());
}

TEST(MaxCut, EdgeVarEncodingAgreesButIsBigger) {
  const MaxCutProblem p{cycle_graph(4)};
  const Env lean = p.encode();
  const Env fat = p.encode_with_edge_vars();
  EXPECT_GT(fat.num_vars(), lean.num_vars());
  EXPECT_GT(fat.num_constraints(), lean.num_constraints());
  const auto lean_solution = solve_exact(lean);
  const auto fat_solution = solve_exact(fat);
  ASSERT_TRUE(fat_solution.feasible);
  // Same optimal cut through both encodings.
  std::vector<bool> fat_sides(fat_solution.assignment.begin(),
                              fat_solution.assignment.begin() + 4);
  EXPECT_EQ(p.cut_of(fat_sides), p.cut_of(lean_solution.assignment));
}

TEST(MaxCut, HandcraftedQuboMinimizersAreMaxCuts) {
  const MaxCutProblem p{cycle_graph(5)};
  const auto result = brute_force_minimize(p.handcrafted_qubo());
  for (const auto& gs : result.ground_states) {
    EXPECT_EQ(p.cut_of(gs), p.optimal_cut());
  }
}

// ---------------------------------------------------------------- Coloring

TEST(MapColoring, EncodingShape) {
  const MapColoringProblem p{cycle_graph(4), 3};
  const Env env = p.encode();
  EXPECT_EQ(env.num_vars(), 12u);             // |V| * n
  EXPECT_EQ(env.num_constraints(), 4u + 12u); // |V| + n|E|
  EXPECT_EQ(env.num_nonsymmetric(), 2u);      // Table I row 4
}

TEST(MapColoring, SolvesOddCycle) {
  const MapColoringProblem p{cycle_graph(5), 3};
  ASSERT_TRUE(p.feasible());
  const auto solution = solve_exact(p.encode());
  ASSERT_TRUE(solution.feasible);
  EXPECT_TRUE(p.verify(solution.assignment));
}

TEST(MapColoring, InfeasibleWithTooFewColors) {
  const MapColoringProblem p{cycle_graph(5), 2};
  EXPECT_FALSE(p.feasible());
  EXPECT_FALSE(solve_exact(p.encode()).feasible);
}

TEST(MapColoring, GeneratedQuboMatchesHandcrafted) {
  // Section VI-B: the generated and handcrafted one-hot QUBOs agree on
  // ground states (both exactly the proper colorings).
  const MapColoringProblem p{path_graph(3), 2};
  const CompiledQubo cq = compile(p.encode());
  ASSERT_EQ(cq.num_ancillas, 0u);
  const auto generated = brute_force_minimize(cq.qubo, 1u << 12);
  const auto handcrafted = brute_force_minimize(p.handcrafted_qubo(), 1u << 12);
  EXPECT_EQ(generated.ground_states, handcrafted.ground_states);
  for (const auto& gs : generated.ground_states) EXPECT_TRUE(p.verify(gs));
}

TEST(DecodeOneHot, RejectsInvalidStates) {
  EXPECT_FALSE(decode_one_hot({true, true, false, true}, 2, 2).has_value());
  EXPECT_FALSE(decode_one_hot({false, false, false, true}, 2, 2).has_value());
  const auto colors = decode_one_hot({true, false, false, true}, 2, 2);
  ASSERT_TRUE(colors.has_value());
  EXPECT_EQ(*colors, (std::vector<int>{0, 1}));
}

TEST(CliqueCover, TwoTrianglesNeedTwoCliques) {
  Graph g(6);
  for (int base : {0, 3}) {
    g.add_edge(base, base + 1);
    g.add_edge(base, base + 2);
    g.add_edge(base + 1, base + 2);
  }
  const CliqueCoverProblem p2{g, 2};
  ASSERT_TRUE(p2.feasible());
  const auto solution = solve_exact(p2.encode());
  ASSERT_TRUE(solution.feasible);
  EXPECT_TRUE(p2.verify(solution.assignment));

  const CliqueCoverProblem p1{g, 1};
  EXPECT_FALSE(p1.feasible());
  EXPECT_FALSE(solve_exact(p1.encode()).feasible);
}

TEST(CliqueCover, MoreEdgesMeanFewerConstraints) {
  // Section VIII-A: adding edges *reduces* clique-cover constraints
  // (constraints run over complement edges).
  const CliqueCoverProblem sparse{edge_scaling_graph(6), 4};
  const CliqueCoverProblem dense{edge_scaling_graph(30), 4};
  EXPECT_GT(sparse.encode().num_constraints(),
            dense.encode().num_constraints());
}

// ------------------------------------------------------------------- Cover

TEST(SetSystem, RandomSystemHasPlantedExactCover) {
  Rng rng(21);
  const SetSystem system = random_set_system(12, 4, 6, rng);
  EXPECT_EQ(system.subsets.size(), 10u);
  // The first 4 subsets are the planted partition.
  std::vector<bool> chosen(system.subsets.size(), false);
  for (std::size_t i = 0; i < 4; ++i) chosen[i] = true;
  const ExactCoverProblem p{system};
  EXPECT_TRUE(p.verify(chosen));
}

TEST(ExactCover, SolverFindsCover) {
  Rng rng(22);
  const ExactCoverProblem p{random_set_system(10, 3, 5, rng)};
  const auto solution = solve_exact(p.encode());
  ASSERT_TRUE(solution.feasible);
  EXPECT_TRUE(p.verify(solution.assignment));
}

TEST(ExactCover, GeneratedQuboMatchesHandcrafted) {
  Rng rng(23);
  const ExactCoverProblem p{random_set_system(8, 3, 3, rng)};
  const CompiledQubo cq = compile(p.encode());
  ASSERT_EQ(cq.num_ancillas, 0u);  // exactly-1 patterns are ancilla-free
  const auto generated = brute_force_minimize(cq.qubo);
  const auto handcrafted = brute_force_minimize(p.handcrafted_qubo());
  EXPECT_EQ(generated.ground_states, handcrafted.ground_states);
}

TEST(MinSetCover, SolverFindsMinimumCover) {
  Rng rng(24);
  const MinSetCoverProblem p{random_set_system(10, 3, 5, rng)};
  const auto solution = solve_exact(p.encode());
  ASSERT_TRUE(solution.feasible);
  EXPECT_TRUE(p.verify(solution.assignment));
  EXPECT_EQ(p.cover_size(solution.assignment), p.optimal_cover_size());
}

TEST(MinSetCover, HandcraftedQuboMinimizersAreMinimumCovers) {
  Rng rng(25);
  // Small system so the counter-variable QUBO stays brute-forceable.
  const MinSetCoverProblem p{random_set_system(4, 2, 2, rng)};
  const Qubo q = p.handcrafted_qubo();
  ASSERT_LE(q.num_variables(), 30u);
  const auto result = brute_force_minimize(q);
  ASSERT_FALSE(result.ground_states.empty());
  for (const auto& gs : result.ground_states) {
    std::vector<bool> chosen(gs.begin(), gs.begin() + 4);
    EXPECT_TRUE(p.verify(chosen));
    EXPECT_EQ(p.cover_size(chosen), p.optimal_cover_size());
  }
}

TEST(MinSetCover, NeedsMoreTermsThanExactCover) {
  // Table I: min set cover's handcrafted QUBO (with counters) dwarfs exact
  // cover's on the same system.
  Rng rng(26);
  const SetSystem system = random_set_system(8, 3, 4, rng);
  const ExactCoverProblem ec{system};
  const MinSetCoverProblem msc{system};
  EXPECT_GT(msc.handcrafted_qubo().num_terms(),
            ec.handcrafted_qubo().num_terms());
}

// -------------------------------------------------------------------- kSAT

TEST(KSat, PlantedInstancesAreSatisfiable) {
  Rng rng(27);
  for (int trial = 0; trial < 5; ++trial) {
    const KSatInstance instance = random_ksat(8, 20, 3, rng);
    const KSatProblem p{instance};
    const auto solution = solve_exact(p.encode_dual_rail());
    ASSERT_TRUE(solution.feasible) << "trial " << trial;
    EXPECT_TRUE(p.verify(solution.assignment));
  }
}

TEST(KSat, DualRailShape) {
  Rng rng(28);
  const KSatProblem p{random_ksat(6, 10, 3, rng)};
  const Env env = p.encode_dual_rail();
  EXPECT_EQ(env.num_vars(), 12u);          // n + n companions
  EXPECT_EQ(env.num_constraints(), 16u);   // n rail + m clause
  EXPECT_LE(env.num_nonsymmetric(), 2u);   // two classes (Section VI-A-f)
}

TEST(KSat, RepeatedEncodingAgreesWithDualRail) {
  Rng rng(29);
  for (int trial = 0; trial < 5; ++trial) {
    const KSatProblem p{random_ksat(6, 12, 3, rng)};
    const Env repeated = p.encode_repeated();
    EXPECT_EQ(repeated.num_vars(), 6u);  // no companion variables
    const auto solution = solve_exact(repeated);
    ASSERT_TRUE(solution.feasible) << "trial " << trial;
    EXPECT_TRUE(p.verify(solution.assignment)) << "trial " << trial;
  }
}

TEST(KSat, UnplantedUnsatDetected) {
  // x and !x clauses of width 1... use k=1 clauses to force contradiction.
  KSatInstance instance;
  instance.num_vars = 1;
  instance.clauses = {{{0, false}}, {{0, true}}};
  const KSatProblem p{instance};
  EXPECT_FALSE(solve_exact(p.encode_dual_rail()).feasible);
  EXPECT_FALSE(solve_exact(p.encode_repeated()).feasible);
}

TEST(KSat, InstanceEvaluation) {
  KSatInstance instance;
  instance.num_vars = 3;
  instance.clauses = {{{0, false}, {1, false}, {2, true}},
                      {{1, true}, {2, false}, {0, true}}};
  EXPECT_TRUE(instance.satisfied({true, false, false}));
  EXPECT_EQ(instance.num_satisfied({false, false, true}), 1u);
}

// --------------------------------------------- Table I complexity sweeps

class Table1Property : public ::testing::TestWithParam<int> {};

TEST_P(Table1Property, ConstraintCountsMatchFormulas) {
  Rng rng(static_cast<std::uint64_t>(5000 + GetParam()));
  const std::size_t n = 6 + rng.below(6);
  const Graph g = random_connected_gnm(n, n + rng.below(n), rng);
  const std::size_t V = g.num_vertices(), E = g.num_edges();

  // Min vertex cover: |E| hard + |V| soft.
  const Env vc = VertexCoverProblem{g}.encode();
  EXPECT_EQ(vc.num_constraints(), E + V);

  // Max cut: |E| constraints.
  const Env mc = MaxCutProblem{g}.encode();
  EXPECT_EQ(mc.num_constraints(), E);

  // Map coloring with c colors: |V| + c|E|.
  const int colors = 3;
  const Env col = MapColoringProblem{g, colors}.encode();
  EXPECT_EQ(col.num_constraints(), V + static_cast<std::size_t>(colors) * E);

  // Clique cover with c cliques: |V| + c * (complement edges).
  const std::size_t comp = V * (V - 1) / 2 - E;
  const Env cc = CliqueCoverProblem{g, colors}.encode();
  EXPECT_EQ(cc.num_constraints(), V + static_cast<std::size_t>(colors) * comp);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, Table1Property, ::testing::Range(0, 10));

}  // namespace
}  // namespace nck

namespace nck {
namespace {

TEST(KSatMis, GroundStatesDecodeToSatisfyingAssignments) {
  Rng rng(31);
  const KSatProblem p{random_ksat(4, 6, 3, rng)};
  const Qubo mis = p.handcrafted_mis_qubo();
  ASSERT_LE(mis.num_variables(), 20u);
  const auto result = brute_force_minimize(mis);
  // Satisfiable instance: minimum is exactly -m (one pick per clause).
  EXPECT_DOUBLE_EQ(result.min_energy,
                   -static_cast<double>(p.instance.clauses.size()));
  for (const auto& gs : result.ground_states) {
    const auto assignment = p.decode_mis(gs);
    ASSERT_TRUE(assignment.has_value());
    EXPECT_TRUE(p.instance.satisfied(*assignment));
  }
}

TEST(KSatMis, UnsatInstanceHasShallowerMinimum) {
  // (x) and (!x) as 1-SAT clauses: MIS of size 2 impossible.
  KSatInstance instance;
  instance.num_vars = 1;
  instance.clauses = {{{0, false}}, {{0, true}}};
  const KSatProblem p{instance};
  const auto result = brute_force_minimize(p.handcrafted_mis_qubo());
  EXPECT_GT(result.min_energy, -2.0 + 1e-9);
  for (const auto& gs : result.ground_states) {
    EXPECT_FALSE(p.decode_mis(gs).has_value());
  }
}

TEST(KSatMis, TermCountMatchesTableOneOrder) {
  // O(k m^2 + k^2 m): dominated by conflict pairs between opposite literals.
  Rng rng(32);
  const KSatProblem small{random_ksat(6, 10, 3, rng)};
  const KSatProblem big{random_ksat(6, 30, 3, rng)};
  const std::size_t small_terms = small.handcrafted_mis_qubo().num_terms();
  const std::size_t big_terms = big.handcrafted_mis_qubo().num_terms();
  // Tripling m should grow terms super-linearly (m^2 conflict pairs).
  EXPECT_GT(big_terms, 3 * small_terms);
  // And the NchooseK encoding stays linear in m.
  EXPECT_EQ(big.encode_repeated().num_constraints(), 30u);
}

TEST(KSatMis, DecodeRejectsBadSelections) {
  Rng rng(33);
  const KSatProblem p{random_ksat(3, 4, 2, rng)};
  const std::size_t nodes = p.handcrafted_mis_qubo().num_variables();
  // Empty selection: not a full cover of clauses.
  EXPECT_FALSE(p.decode_mis(std::vector<bool>(nodes, false)).has_value());
  // Everything selected: clause cliques violated.
  EXPECT_FALSE(p.decode_mis(std::vector<bool>(nodes, true)).has_value());
}

}  // namespace
}  // namespace nck
