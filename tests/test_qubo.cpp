#include <gtest/gtest.h>

#include <cmath>

#include <sstream>

#include "qubo/brute_force.hpp"
#include "qubo/heuristic.hpp"
#include "qubo/io.hpp"
#include "qubo/ising.hpp"
#include "qubo/qubo.hpp"
#include "util/rng.hpp"

namespace nck {
namespace {

Qubo random_qubo(std::size_t n, Rng& rng, double density = 0.5) {
  Qubo q(n);
  for (std::size_t i = 0; i < n; ++i) {
    q.add_linear(static_cast<Qubo::Var>(i),
                 static_cast<double>(rng.between(-5, 5)));
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(density)) {
        q.add_quadratic(static_cast<Qubo::Var>(i), static_cast<Qubo::Var>(j),
                        static_cast<double>(rng.between(-5, 5)));
      }
    }
  }
  q.add_offset(static_cast<double>(rng.between(-3, 3)));
  return q;
}

TEST(Qubo, EnergyOfPaperVertexCoverQubo) {
  // f(a, b) = ab - a - b from Section V, minimized when at least one is 1.
  Qubo q;
  q.add_quadratic(0, 1, 1.0);
  q.add_linear(0, -1.0);
  q.add_linear(1, -1.0);
  EXPECT_DOUBLE_EQ(q.energy({false, false}), 0.0);
  EXPECT_DOUBLE_EQ(q.energy({true, false}), -1.0);
  EXPECT_DOUBLE_EQ(q.energy({false, true}), -1.0);
  EXPECT_DOUBLE_EQ(q.energy({true, true}), -1.0);
}

TEST(Qubo, QuadraticAccumulatesUnordered) {
  Qubo q;
  q.add_quadratic(2, 5, 1.5);
  q.add_quadratic(5, 2, 0.5);
  EXPECT_DOUBLE_EQ(q.quadratic(2, 5), 2.0);
  EXPECT_DOUBLE_EQ(q.quadratic(5, 2), 2.0);
  EXPECT_EQ(q.num_variables(), 6u);
}

TEST(Qubo, DiagonalFoldsToLinear) {
  Qubo q;
  q.add_quadratic(3, 3, 2.0);
  EXPECT_DOUBLE_EQ(q.linear(3), 2.0);
  EXPECT_EQ(q.num_quadratic_terms(), 0u);
}

TEST(Qubo, TermCounts) {
  Qubo q;
  q.add_linear(0, 1.0);
  q.add_linear(1, 0.0);  // zero: not counted
  q.add_quadratic(0, 1, -2.0);
  q.add_quadratic(1, 2, 1e-12);  // below eps: not counted
  EXPECT_EQ(q.num_linear_terms(), 1u);
  EXPECT_EQ(q.num_quadratic_terms(), 1u);
  EXPECT_EQ(q.num_terms(), 2u);
}

TEST(Qubo, CompositionIsAdditive) {
  Rng rng(5);
  const Qubo a = random_qubo(6, rng);
  const Qubo b = random_qubo(6, rng);
  const Qubo sum = a + b;
  std::vector<bool> x(6);
  for (std::uint32_t bits = 0; bits < 64; ++bits) {
    for (std::size_t i = 0; i < 6; ++i) x[i] = (bits >> i) & 1u;
    EXPECT_NEAR(sum.energy(x), a.energy(x) + b.energy(x), 1e-9);
  }
}

TEST(Qubo, ScalePreservesMinimizers) {
  Rng rng(6);
  const Qubo q = random_qubo(5, rng);
  Qubo scaled = q;
  scaled.scale(3.5);
  const auto r1 = brute_force_minimize(q);
  const auto r2 = brute_force_minimize(scaled);
  EXPECT_EQ(r1.ground_states, r2.ground_states);
  EXPECT_NEAR(r2.min_energy, 3.5 * r1.min_energy, 1e-9);
  EXPECT_THROW(scaled.scale(-1.0), std::invalid_argument);
}

TEST(Qubo, RemappedRelabelsVariables) {
  Qubo q;
  q.add_linear(0, 1.0);
  q.add_quadratic(0, 1, 2.0);
  const std::vector<Qubo::Var> mapping{7, 3};
  const Qubo r = q.remapped(mapping);
  EXPECT_DOUBLE_EQ(r.linear(7), 1.0);
  EXPECT_DOUBLE_EQ(r.quadratic(3, 7), 2.0);
  EXPECT_EQ(r.num_variables(), 8u);
}

TEST(Qubo, ScaleRejectsNonPositiveFactor) {
  Qubo q;
  q.add_linear(0, 1.0);
  EXPECT_THROW(q.scale(0.0), std::invalid_argument);
  EXPECT_THROW(q.scale(-2.5), std::invalid_argument);
  // A throwing scale must leave the QUBO untouched.
  EXPECT_DOUBLE_EQ(q.linear(0), 1.0);
}

TEST(Qubo, EnergyRejectsShortAssignment) {
  Qubo q;
  q.add_linear(4, 1.0);
  EXPECT_THROW(q.energy({true, false}), std::invalid_argument);
}

TEST(Qubo, EnergyIgnoresTrailingExtraEntries) {
  // Over-long assignments are fine (samplers hand back physical-size
  // vectors); only indices below num_variables() contribute.
  Qubo q;
  q.add_linear(0, -1.0);
  q.add_quadratic(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(q.energy({true, true, true, true}), 1.0);
  EXPECT_DOUBLE_EQ(q.energy({true, false, true}), -1.0);
}

TEST(Qubo, RemappedDuplicateTargetsFoldQuadraticToLinear) {
  // A non-injective mapping merges variables: x_i x_j with both mapped to
  // the same target becomes x^2 == x, i.e. a linear term.
  Qubo q;
  q.add_linear(0, 1.0);
  q.add_linear(1, 0.5);
  q.add_quadratic(0, 1, 2.0);
  const std::vector<Qubo::Var> mapping{4, 4};
  const Qubo r = q.remapped(mapping);
  EXPECT_DOUBLE_EQ(r.linear(4), 3.5);  // 1.0 + 0.5 + folded 2.0
  EXPECT_EQ(r.num_quadratic_terms(), 0u);
  EXPECT_EQ(r.num_variables(), 5u);
  // Energies agree with substituting the merged variable.
  EXPECT_DOUBLE_EQ(r.energy({false, false, false, false, true}),
                   q.energy({true, true}));
  EXPECT_DOUBLE_EQ(r.energy({false, false, false, false, false}),
                   q.energy({false, false}));
}

TEST(Qubo, ToStringReadable) {
  Qubo q;
  q.add_offset(1.0);
  q.add_linear(0, -1.0);
  q.add_quadratic(0, 1, 1.0);
  const std::string s = q.to_string();
  EXPECT_NE(s.find("x0"), std::string::npos);
  EXPECT_NE(s.find("x0*x1"), std::string::npos);
}

TEST(Ising, RoundTripPreservesEnergies) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Qubo q = random_qubo(6, rng);
    const IsingModel m = qubo_to_ising(q);
    const Qubo back = ising_to_qubo(m);
    std::vector<bool> x(6);
    for (std::uint32_t bits = 0; bits < 64; ++bits) {
      for (std::size_t i = 0; i < 6; ++i) x[i] = (bits >> i) & 1u;
      // QUBO energy at x == Ising energy at s = 2x - 1 (same bool encoding).
      EXPECT_NEAR(q.energy(x), m.energy(x), 1e-9);
      EXPECT_NEAR(q.energy(x), back.energy(x), 1e-9);
    }
  }
}

TEST(Ising, MaxCutConversionAddsLinearTerms) {
  // The paper (Table I, max cut) notes Ising -> QUBO conversion raises
  // O(|E|) to O(|E| + |V|): pure couplers gain linear terms.
  IsingModel m;
  m.h.assign(3, 0.0);
  m.j = {{0, 1, 1.0}, {1, 2, 1.0}};
  const Qubo q = ising_to_qubo(m);
  EXPECT_EQ(q.num_quadratic_terms(), 2u);
  EXPECT_GT(q.num_linear_terms(), 0u);
}

TEST(BruteForce, FindsAllGroundStates) {
  // x0 XOR x1 penalty: equal assignments are ground.
  Qubo q;
  q.add_linear(0, 1.0);
  q.add_linear(1, 1.0);
  q.add_quadratic(0, 1, -2.0);
  const auto r = brute_force_minimize(q);
  EXPECT_DOUBLE_EQ(r.min_energy, 0.0);
  ASSERT_EQ(r.ground_states.size(), 2u);
  EXPECT_EQ(r.ground_states[0], (std::vector<bool>{false, false}));
  EXPECT_EQ(r.ground_states[1], (std::vector<bool>{true, true}));
  EXPECT_FALSE(r.truncated);
}

TEST(BruteForce, TruncationFlag) {
  const Qubo q(4);  // all-zero: every state is ground
  const auto r = brute_force_minimize(q, 5);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.ground_states.size(), 5u);
}

TEST(BruteForce, RejectsHugeProblems) {
  const Qubo q(31);
  EXPECT_THROW(brute_force_minimize(q), std::invalid_argument);
}

TEST(BruteForce, FixedVariablesRestrictSearch) {
  Qubo q;
  q.add_linear(0, -1.0);
  q.add_linear(1, 2.0);
  // Unconstrained min: x0=1, x1=0 -> -1. Forcing x0=0: min 0.
  const std::vector<int> fixed{0, -1};
  EXPECT_DOUBLE_EQ(brute_force_min_energy_with_fixed(q, fixed), 0.0);
  EXPECT_DOUBLE_EQ(brute_force_min_energy(q), -1.0);
}

TEST(Heuristic, AnnealFindsGroundOfSmallProblems) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const Qubo q = random_qubo(10, rng);
    const double exact = brute_force_min_energy(q);
    Rng sampler_rng(100 + trial);
    const auto samples = anneal(q, {}, 32, sampler_rng);
    ASSERT_FALSE(samples.empty());
    EXPECT_NEAR(samples.front().energy, exact, 1e-9)
        << "trial " << trial;
    // Sorted ascending by energy.
    for (std::size_t i = 1; i < samples.size(); ++i) {
      EXPECT_LE(samples[i - 1].energy, samples[i].energy);
    }
  }
}

TEST(Heuristic, GreedyDescentReachesLocalMinimum) {
  Rng rng(12);
  const Qubo q = random_qubo(8, rng);
  const Sample s = greedy_descent(q, std::vector<bool>(8, false));
  // No single flip improves.
  for (std::size_t i = 0; i < 8; ++i) {
    auto flipped = s.x;
    flipped[i] = !flipped[i];
    EXPECT_GE(q.energy(flipped), s.energy - 1e-9);
  }
  EXPECT_NEAR(q.energy(s.x), s.energy, 1e-9);
}

TEST(Heuristic, TabuSearchCrossesBarriersDescentCannot) {
  // Two coupled variables: E(00) = 0 (global), E(11) = 1 (local),
  // E(01) = E(10) = 3 (the ridge). Descent from 11 is stuck; tabu must
  // climb through the ridge and reach 00.
  Qubo q;
  q.add_linear(0, 3.0);
  q.add_linear(1, 3.0);
  q.add_quadratic(0, 1, -5.0);
  ASSERT_NEAR(q.energy({true, true}), 1.0, 1e-12);
  ASSERT_NEAR(q.energy({false, false}), 0.0, 1e-12);

  const Sample stuck = greedy_descent(q, {true, true});
  EXPECT_NEAR(stuck.energy, 1.0, 1e-12);  // descent cannot move

  const Sample s = tabu_search(q, {true, true}, {.max_iters = 16});
  EXPECT_NEAR(s.energy, 0.0, 1e-12);
  EXPECT_EQ(s.x, (std::vector<bool>{false, false}));
}

TEST(Heuristic, TabuSearchIsDeterministicAndNeverWorseThanDescent) {
  Rng rng(14);
  for (int trial = 0; trial < 5; ++trial) {
    const Qubo q = random_qubo(10, rng);
    const std::vector<bool> start(10, trial % 2 == 0);
    const Sample descended = greedy_descent(q, start);
    const Sample a = tabu_search(q, start, {.max_iters = 200});
    const Sample b = tabu_search(q, start, {.max_iters = 200});
    EXPECT_EQ(a.x, b.x) << "trial " << trial;
    EXPECT_LE(a.energy, descended.energy + 1e-9) << "trial " << trial;
    EXPECT_NEAR(q.energy(a.x), a.energy, 1e-9) << "trial " << trial;
  }
}

TEST(Heuristic, TabuSearchWithZeroItersIsGreedyDescent) {
  Rng rng(15);
  const Qubo q = random_qubo(8, rng);
  const std::vector<bool> start(8, true);
  EXPECT_EQ(tabu_search(q, start, {}).x, greedy_descent(q, start).x);
}

TEST(Heuristic, BoltzmannPrefersLowEnergy) {
  // Single variable with energy gap: P(x=1)/P(x=0) should be ~exp(-beta).
  Qubo q;
  q.add_linear(0, 1.0);
  Rng rng(13);
  const auto samples = boltzmann_sample(q, 2.0, 4000, rng);
  std::size_t ones = 0;
  for (const auto& s : samples) {
    if (s.x[0]) ++ones;
  }
  const double p1 =
      static_cast<double>(ones) / static_cast<double>(samples.size());
  const double expected = std::exp(-2.0) / (1.0 + std::exp(-2.0));
  EXPECT_NEAR(p1, expected, 0.03);
}

TEST(Io, RoundTrip) {
  Rng rng(14);
  const Qubo q = random_qubo(7, rng);
  const std::string text = qubo_to_text(q);
  const Qubo back = qubo_from_text(text);
  EXPECT_EQ(back.num_variables(), q.num_variables());
  std::vector<bool> x(7);
  for (std::uint32_t bits = 0; bits < 128; ++bits) {
    for (std::size_t i = 0; i < 7; ++i) x[i] = (bits >> i) & 1u;
    EXPECT_NEAR(back.energy(x), q.energy(x), 1e-9);
  }
}

TEST(Io, RejectsMalformedInput) {
  EXPECT_THROW(qubo_from_text("0 1 2.0\n"), std::runtime_error);  // no header
  EXPECT_THROW(qubo_from_text("p qubo x\n"), std::runtime_error);
  EXPECT_THROW(qubo_from_text("p qubo 0 2 1 0\n0 bad 1\n"), std::runtime_error);
}

// Property sweep: brute force on random QUBOs agrees with a slow reference
// evaluation of the reported ground states.
class BruteForceProperty : public ::testing::TestWithParam<int> {};

TEST_P(BruteForceProperty, GroundStatesHaveMinEnergy) {
  Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
  const Qubo q = random_qubo(4 + GetParam() % 6, rng);
  const auto r = brute_force_minimize(q);
  ASSERT_FALSE(r.ground_states.empty());
  for (const auto& gs : r.ground_states) {
    EXPECT_NEAR(q.energy(gs), r.min_energy, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomQubos, BruteForceProperty,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace nck

#include "qubo/presolve.hpp"

namespace nck {
namespace {

TEST(Presolve, FixesObviouslyPositiveAndNegativeVariables) {
  Qubo q;
  q.add_linear(0, 3.0);   // always harmful -> fix 0
  q.add_linear(1, -2.0);  // always helpful -> fix 1
  q.add_quadratic(0, 1, 1.0);
  const PresolveResult r = presolve(q);
  EXPECT_EQ(r.fixed[0], 0);
  EXPECT_EQ(r.fixed[1], 1);
  EXPECT_EQ(r.num_fixed, 2u);
}

TEST(Presolve, CascadesThroughFixings) {
  // x1 fixable to 1 only after x0 is fixed to 0 (the +5 coupling vanishes).
  Qubo q;
  q.add_linear(0, 10.0);
  q.add_linear(1, -1.0);
  q.add_quadratic(0, 1, 5.0);
  const PresolveResult r = presolve(q);
  EXPECT_EQ(r.fixed[0], 0);
  EXPECT_EQ(r.fixed[1], 1);
  EXPECT_GE(r.rounds, 1u);
}

TEST(Presolve, LeavesFrustratedVariablesFree) {
  // XOR-like structure: neither variable is decidable alone.
  Qubo q;
  q.add_linear(0, 1.0);
  q.add_linear(1, 1.0);
  q.add_quadratic(0, 1, -2.0);
  const PresolveResult r = presolve(q);
  EXPECT_EQ(r.fixed[0], -1);
  EXPECT_EQ(r.fixed[1], -1);
  EXPECT_EQ(r.num_fixed, 0u);
}

TEST(Presolve, CompleteMergesFixedValues) {
  Qubo q;
  q.add_linear(0, 3.0);
  q.add_linear(1, -2.0);
  q.add_linear(2, 0.5);
  q.add_quadratic(1, 2, -1.0);
  const PresolveResult r = presolve(q);
  const auto full = r.complete({false, false, true});
  EXPECT_FALSE(full[0]);  // fixed 0 overrides
  EXPECT_TRUE(full[1]);   // fixed 1 overrides
}

class PresolveProperty : public ::testing::TestWithParam<int> {};

TEST_P(PresolveProperty, PreservesMinimumEnergy) {
  Rng rng(static_cast<std::uint64_t>(8600 + GetParam()));
  const Qubo q = random_qubo(8, rng, 0.4);
  const PresolveResult r = presolve(q);
  const double original_min = brute_force_min_energy(q);
  // Minimize the reduced problem with fixed variables pinned.
  const double reduced_min =
      brute_force_min_energy_with_fixed(r.reduced, r.fixed);
  EXPECT_NEAR(original_min, reduced_min, 1e-9);
  // And a reduced minimizer completes into an original minimizer.
  auto reduced = brute_force_minimize(r.reduced);
  bool found_valid = false;
  for (const auto& gs : reduced.ground_states) {
    bool respects = true;
    for (std::size_t i = 0; i < r.fixed.size(); ++i) {
      if (r.fixed[i] != -1 && gs[i] != (r.fixed[i] == 1)) respects = false;
    }
    if (!respects) continue;
    found_valid = true;
    EXPECT_NEAR(q.energy(r.complete(gs)), original_min, 1e-9);
  }
  EXPECT_TRUE(found_valid);
}

INSTANTIATE_TEST_SUITE_P(RandomQubos, PresolveProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace nck
