// Property tests for the transpiler: random circuits over the full gate set
// must keep their output distribution (up to qubit layout) after routing
// and basis decomposition onto random coupling maps.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "circuit/coupling.hpp"
#include "circuit/transpiler.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace nck {
namespace {

Circuit random_circuit(std::size_t num_qubits, std::size_t num_gates,
                       Rng& rng) {
  Circuit c(num_qubits);
  for (std::size_t g = 0; g < num_gates; ++g) {
    const auto q0 = static_cast<std::uint32_t>(rng.below(num_qubits));
    auto q1 = static_cast<std::uint32_t>(rng.below(num_qubits));
    if (q1 == q0) q1 = static_cast<std::uint32_t>((q1 + 1) % num_qubits);
    const double angle = rng.uniform(-3.0, 3.0);
    switch (rng.below(9)) {
      case 0: c.h(q0); break;
      case 1: c.x(q0); break;
      case 2: c.rx(q0, angle); break;
      case 3: c.ry(q0, angle); break;
      case 4: c.rz(q0, angle); break;
      case 5: c.cx(q0, q1); break;
      case 6: c.cz(q0, q1); break;
      case 7: c.rzz(q0, q1, angle); break;
      case 8: c.xy(q0, q1, angle); break;
    }
  }
  return c;
}

// Marginal probability of each logical basis state in the physical output.
double marginal(const std::vector<double>& physical_probs,
                const std::vector<std::uint32_t>& layout, std::uint64_t lb,
                std::size_t num_logical) {
  double total = 0.0;
  for (std::uint64_t pb = 0; pb < physical_probs.size(); ++pb) {
    bool match = true;
    for (std::size_t q = 0; q < num_logical; ++q) {
      if (((lb >> q) & 1u) != ((pb >> layout[q]) & 1u)) {
        match = false;
        break;
      }
    }
    if (match) total += physical_probs[pb];
  }
  return total;
}

class TranspilerProperty : public ::testing::TestWithParam<int> {};

TEST_P(TranspilerProperty, RandomCircuitsPreserveDistributions) {
  Rng rng(static_cast<std::uint64_t>(5100 + GetParam()));
  const std::size_t n = 2 + rng.below(3);  // 2-4 logical qubits
  const Circuit logical = random_circuit(n, 8 + rng.below(10), rng);

  // Random coupling map big enough to host the circuit.
  Graph coupling;
  switch (rng.below(3)) {
    case 0: coupling = path_graph(n + 2); break;
    case 1: coupling = cycle_graph(n + 3); break;
    default: coupling = heavy_hex_lattice(2); break;
  }
  const auto result = transpile(logical, coupling);
  ASSERT_TRUE(result.has_value());

  StateVector ls(n);
  logical.run(ls);
  StateVector ps(coupling.num_vertices());
  result->physical.run(ps);
  const auto pp = ps.probabilities();
  for (std::uint64_t lb = 0; lb < (1ull << n); ++lb) {
    EXPECT_NEAR(marginal(pp, result->layout, lb, n),
                std::norm(ls.amplitude(lb)), 1e-9)
        << "case " << GetParam() << " basis " << lb;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, TranspilerProperty,
                         ::testing::Range(0, 25));

// The physical circuit must only use coupling-map edges for 2q gates and
// only basis gates (no RZZ/XY/SWAP leftovers).
class TranspilerLegality : public ::testing::TestWithParam<int> {};

TEST_P(TranspilerLegality, OutputRespectsCouplingAndBasis) {
  Rng rng(static_cast<std::uint64_t>(6200 + GetParam()));
  const std::size_t n = 3 + rng.below(4);
  const Circuit logical = random_circuit(n, 12 + rng.below(12), rng);
  const Graph coupling = heavy_hex_lattice(3);
  const auto result = transpile(logical, coupling);
  ASSERT_TRUE(result.has_value());
  for (const Gate& g : result->physical.gates()) {
    if (g.two_qubit()) {
      EXPECT_EQ(g.kind, GateKind::kCX) << gate_name(g.kind);
      EXPECT_TRUE(coupling.has_edge(g.q0, g.q1))
          << "gate on non-adjacent qubits " << g.q0 << "," << g.q1;
    } else {
      EXPECT_NE(g.kind, GateKind::kSwap);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, TranspilerLegality,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace nck
