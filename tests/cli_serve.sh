#!/usr/bin/env bash
# Daemon-lifecycle contract of nck_serve (and `nck_cli serve`), exercised
# from the outside the way an operator would:
#   - here-doc request stream: one typed JSON response per line, shutdown
#     drains and exits 0 with a final stats snapshot on stderr
#   - malformed + oversized request lines earn typed bad_request responses
#     and never kill the daemon
#   - first SIGTERM drains gracefully (exit 0, queued work rejected as
#     `draining`, in-flight work completed)
#   - second SIGTERM force-exits a daemon wedged by a stuck worker
# Run by ctest as: cli_serve.sh <path-to-nck_serve> <path-to-nck_cli>
set -u

SERVE="$1"
CLI="${2:-}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fails=0
fail() {
  echo "FAIL: $1" >&2
  shift
  for f in "$@"; do sed 's/^/  /' "$f" >&2; done
  fails=$((fails + 1))
}

# ---- 1. here-doc round trip: solve/lint/stats/shutdown, exit 0 --------
"$SERVE" --workers=2 > "$TMP/out" 2> "$TMP/err" <<'EOF'
{"id":1,"op":"solve","program":"nck({a, b}, {1})","backend":"classical"}
{"id":2,"op":"lint","program":"nck({a, b}, {1})"}
{"id":3,"op":"bogus"}
{"id":4,"op":"stats"}
{"id":5,"op":"shutdown"}
EOF
code=$?
[ "$code" -eq 0 ] || fail "here-doc stream should exit 0, got $code" "$TMP/err"
grep -q '"id":3,.*"kind":"bad_request"' "$TMP/out" ||
  fail "unknown op should earn a typed bad_request" "$TMP/out"
grep -q '"id":4,"op":"stats","ok":true' "$TMP/out" ||
  fail "stats should answer inline" "$TMP/out"
grep -q '"id":5,"op":"shutdown","ok":true' "$TMP/out" ||
  fail "shutdown should be acknowledged" "$TMP/out"
grep -q 'final stats' "$TMP/err" ||
  fail "final stats snapshot missing from stderr" "$TMP/err"
# Every request got exactly one response line.
responses=$(grep -c '^{"id":' "$TMP/out")
[ "$responses" -eq 5 ] ||
  fail "expected 5 response lines, got $responses" "$TMP/out"
[ "$fails" -eq 0 ] && echo "ok: here-doc round trip"

# ---- 2. oversized + garbage lines never kill the daemon ---------------
# Drive via a fifo and wait for the solve response before shutting down:
# a piped `shutdown` would race ahead of the queued solve and the drain
# would (correctly) reject it as `draining`.
mkfifo "$TMP/in2"
"$SERVE" --workers=1 < "$TMP/in2" > "$TMP/out2" 2> "$TMP/err2" &
pid=$!
exec 5> "$TMP/in2"
{
  # ~2 MiB on one line: over the 1 MiB request cap, streamed and discarded.
  printf '{"id":1,"op":"solve","program":"'
  head -c 2097152 /dev/zero | tr '\0' 'x'
  printf '"}\n'
  printf 'complete garbage\n'
  printf '{"id":2,"op":"solve","program":"nck({a, b}, {1})","backend":"classical"}\n'
} >&5
for _ in $(seq 1 200); do
  grep -q '"id":2' "$TMP/out2" 2>/dev/null && break
  sleep 0.1
done
printf '{"id":3,"op":"shutdown"}\n' >&5
exec 5>&-
alive=1
for _ in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || { alive=0; break; }
  sleep 0.1
done
if [ "$alive" -eq 0 ]; then
  wait "$pid" 2>/dev/null
  code=$?
else
  kill -KILL "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
  code=137
fi
[ "$code" -eq 0 ] || fail "oversized-line stream should exit 0, got $code" "$TMP/err2"
grep -q '"kind":"bad_request".*byte cap' "$TMP/out2" ||
  fail "oversized line should earn a typed bad_request naming the cap" "$TMP/out2"
grep -q '"id":2,"op":"solve","ok":true' "$TMP/out2" ||
  fail "daemon should still solve after abuse" "$TMP/out2"
[ "$fails" -eq 0 ] && echo "ok: oversized and garbage input survived"

# ---- 3. first SIGTERM drains gracefully ------------------------------
# Keep stdin open via a fifo so the daemon is idle-blocked on read().
mkfifo "$TMP/in3"
"$SERVE" --workers=1 < "$TMP/in3" > "$TMP/out3" 2> "$TMP/err3" &
pid=$!
exec 3> "$TMP/in3"  # hold the write end open
printf '{"id":1,"op":"solve","program":"nck({a, b}, {1})","backend":"classical"}\n' >&3
# Wait until the solve response lands so the request is genuinely in/past flight.
for _ in $(seq 1 100); do
  grep -q '"id":1' "$TMP/out3" 2>/dev/null && break
  sleep 0.1
done
kill -TERM "$pid"
graceful=1
for _ in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || { graceful=0; break; }
  sleep 0.1
done
if [ "$graceful" -eq 0 ]; then
  wait "$pid" 2>/dev/null
  code=$?
else
  kill -KILL "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
  code=137
fi
exec 3>&-
[ "$graceful" -eq 0 ] || fail "daemon did not exit after SIGTERM" "$TMP/err3"
[ "$code" -eq 0 ] || fail "SIGTERM drain should exit 0, got $code" "$TMP/err3"
grep -q '"id":1,"op":"solve","ok":true' "$TMP/out3" ||
  fail "in-flight solve should complete before the drain" "$TMP/out3"
grep -q 'final stats' "$TMP/err3" ||
  fail "drained daemon should flush final stats" "$TMP/err3"
[ "$fails" -eq 0 ] && echo "ok: graceful SIGTERM drain"

# ---- 4. second SIGTERM force-exits a wedged daemon --------------------
# --test-stall-ms pins the only worker far longer than the test budget, so
# the first SIGTERM's drain can never finish on its own.
mkfifo "$TMP/in4"
"$SERVE" --workers=1 --test-stall-ms=60000 < "$TMP/in4" > "$TMP/out4" 2> "$TMP/err4" &
pid=$!
exec 4> "$TMP/in4"
printf '{"id":1,"op":"solve","program":"nck({a, b}, {1})","backend":"classical"}\n' >&4
sleep 1  # let the worker enter the stall
kill -TERM "$pid"
sleep 1  # drain is now wedged behind the stalled worker
kill -0 "$pid" 2>/dev/null ||
  fail "daemon should still be draining behind the stuck worker" "$TMP/err4"
kill -TERM "$pid"
forced=1
for _ in $(seq 1 50); do
  kill -0 "$pid" 2>/dev/null || { forced=0; break; }
  sleep 0.1
done
if [ "$forced" -eq 0 ]; then
  wait "$pid" 2>/dev/null
  code=$?
else
  kill -KILL "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
  code=137
fi
exec 4>&-
[ "$forced" -eq 0 ] || fail "second SIGTERM must force exit" "$TMP/err4"
[ "$code" -ne 0 ] || fail "forced exit should be nonzero, got $code" "$TMP/err4"
[ "$fails" -eq 0 ] && echo "ok: second SIGTERM forces exit"

# ---- 5. nck_cli serve is the same daemon ------------------------------
if [ -n "$CLI" ]; then
  printf '{"id":1,"op":"stats"}\n{"id":2,"op":"shutdown"}\n' |
    "$CLI" serve --workers=1 > "$TMP/out5" 2> "$TMP/err5"
  code=$?
  [ "$code" -eq 0 ] || fail "nck_cli serve should exit 0, got $code" "$TMP/err5"
  grep -q '"id":1,"op":"stats","ok":true' "$TMP/out5" ||
    fail "nck_cli serve should answer stats" "$TMP/out5"
  [ "$fails" -eq 0 ] && echo "ok: nck_cli serve subcommand"
fi

if [ "$fails" -ne 0 ]; then
  echo "$fails case(s) failed" >&2
  exit 1
fi
echo "all serve lifecycle cases passed"
