#include <gtest/gtest.h>

#include "qubo/brute_force.hpp"
#include "synth/builtin.hpp"
#include "synth/engine.hpp"
#include "synth/lp_synth.hpp"
#include "synth/pattern.hpp"
#include "synth/rational.hpp"
#include "synth/simplex.hpp"
#include "synth/verify.hpp"
#if NCK_HAVE_Z3
#include "synth/z3_synth.hpp"
#endif
#include "util/rng.hpp"

namespace nck {
namespace {

// ---------------------------------------------------------------- Rational

TEST(Rational, NormalizationAndArithmetic) {
  const Rational half(1, 2);
  const Rational third(1, 3);
  EXPECT_EQ((half + third), Rational(5, 6));
  EXPECT_EQ((half - third), Rational(1, 6));
  EXPECT_EQ((half * third), Rational(1, 6));
  EXPECT_EQ((half / third), Rational(3, 2));
  EXPECT_EQ(Rational(2, 4), half);
  EXPECT_EQ(Rational(-2, -4), half);
  EXPECT_EQ(Rational(2, -4), -half);
  EXPECT_TRUE(Rational(0, 5).is_zero());
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GE(Rational(3), Rational(2));
}

TEST(Rational, ConversionAndErrors) {
  EXPECT_DOUBLE_EQ(Rational(3, 4).to_double(), 0.75);
  EXPECT_EQ(Rational(7).to_string(), "7");
  EXPECT_EQ(Rational(-3, 6).to_string(), "-1/2");
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
  EXPECT_THROW(Rational(1) / Rational(0), std::invalid_argument);
}

// ----------------------------------------------------------------- Simplex

TEST(Simplex, SimpleMinimization) {
  LinearProgram lp;
  lp.num_vars = 2;
  lp.add_ge({Rational(1), Rational(1)}, Rational(2));
  lp.c = {Rational(1), Rational(1)};
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(2));
}

TEST(Simplex, EqualityConstraint) {
  LinearProgram lp;
  lp.num_vars = 2;
  lp.add_eq({Rational(1), Rational(1)}, Rational(3));
  lp.c = {Rational(1), Rational(0)};
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(0));
  EXPECT_EQ(r.x[1], Rational(3));
}

TEST(Simplex, DetectsInfeasibility) {
  LinearProgram lp;
  lp.num_vars = 1;
  lp.add_ge({Rational(1)}, Rational(1));
  lp.add_ge({Rational(-1)}, Rational(0));  // x <= 0 contradicts x >= 1
  const LpResult r = solve_lp(lp);
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LinearProgram lp;
  lp.num_vars = 1;
  lp.add_ge({Rational(1)}, Rational(0));
  lp.c = {Rational(-1)};  // minimize -x with x unbounded above
  const LpResult r = solve_lp(lp);
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(Simplex, FeasibilityOnlyMode) {
  LinearProgram lp;
  lp.num_vars = 2;
  lp.add_ge({Rational(1), Rational(0)}, Rational(1));
  lp.add_ge({Rational(0), Rational(1)}, Rational(2));
  const LpResult r = solve_lp(lp);  // empty objective
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_GE(r.x[0], Rational(1));
  EXPECT_GE(r.x[1], Rational(2));
}

TEST(Simplex, ExactFractionalSolution) {
  // min x0 s.t. 3 x0 = 1  ->  x0 = 1/3 exactly.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.add_eq({Rational(3)}, Rational(1));
  lp.c = {Rational(1)};
  const LpResult r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.x[0], Rational(1, 3));
}

// ----------------------------------------------------------------- Pattern

TEST(Pattern, CanonicalizationSortsMultiplicities) {
  const ConstraintPattern p({3, 1, 2}, {1});
  EXPECT_EQ(p.multiplicities(), (std::vector<unsigned>{1, 2, 3}));
  EXPECT_EQ(p.cardinality(), 6u);
  EXPECT_EQ(p.key(), "m:1,2,3|k:1");
}

TEST(Pattern, SatisfactionWithMultiplicities) {
  // Repeated-variable encoding of the 3-SAT clause (x \/ y \/ !z) from
  // Section VI-A-f. Note: the paper prints nck({x,y,z,z}, {0,1,2,4,5}),
  // which violates its own Definition 2 (5 > cardinality 4) and cannot
  // separate the clause (count 2 arises from both a satisfying and the
  // falsifying assignment). The working encoding doubles the *positive*
  // literals instead: nck({x,x,y,y,z}, {0,2,3,4,5}); the sole falsifying
  // assignment x=y=0, z=1 is the only one with weighted count 1.
  const ConstraintPattern p({1, 2, 2}, {0, 2, 3, 4, 5});
  // Canonical variable order: (z, x, y) with multiplicities (1, 2, 2).
  EXPECT_TRUE(p.satisfied(0b000));   // 0: clause satisfied via !z
  EXPECT_FALSE(p.satisfied(0b001));  // 1: x=y=0, z=1 — clause falsified
  EXPECT_TRUE(p.satisfied(0b010));   // 2: x=1
  EXPECT_TRUE(p.satisfied(0b011));   // 3: x=1, z=1
  EXPECT_TRUE(p.satisfied(0b110));   // 4: x=y=1
  EXPECT_TRUE(p.satisfied(0b111));   // 5: all
}

TEST(Pattern, PaperSatExampleAsPrintedIsInvalid) {
  // Definition 2 requires selection values <= cardinality; the printed
  // example nck({x,y,z,z}, {0,1,2,4,5}) has cardinality 4 but contains 5.
  EXPECT_THROW(ConstraintPattern({1, 1, 2}, {0, 1, 2, 4, 5}),
               std::invalid_argument);
}

TEST(Pattern, ValidationErrors) {
  EXPECT_THROW(ConstraintPattern({}, {0}), std::invalid_argument);
  EXPECT_THROW(ConstraintPattern({1}, {}), std::invalid_argument);
  EXPECT_THROW(ConstraintPattern({1, 1}, {3}), std::invalid_argument);
  EXPECT_THROW(ConstraintPattern({0, 1}, {1}), std::invalid_argument);
}

TEST(Pattern, ContiguityDetection) {
  EXPECT_TRUE(ConstraintPattern({1, 1}, {1, 2}).selection_contiguous());
  EXPECT_TRUE(ConstraintPattern({1, 1}, {1}).selection_contiguous());
  EXPECT_FALSE(ConstraintPattern({1, 1}, {0, 2}).selection_contiguous());
}

// ----------------------------------------------------------------- Builtin

TEST(Builtin, ExactlyK) {
  BuiltinSynthesizer synth;
  const ConstraintPattern p({1, 1, 1}, {1});
  const auto result = synth.synthesize(p);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->num_ancillas, 0u);
  EXPECT_EQ(result->method, "builtin-exact-k");
  const auto check = verify_synthesis(p, *result);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Builtin, IntervalAtLeastOne) {
  BuiltinSynthesizer synth;
  // The paper's vertex-cover edge constraint nck({u, v}, {1, 2}).
  const ConstraintPattern p({1, 1}, {1, 2});
  const auto result = synth.synthesize(p);
  ASSERT_TRUE(result.has_value());
  const auto check = verify_synthesis(p, *result);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Builtin, TrivialFullRange) {
  BuiltinSynthesizer synth;
  const ConstraintPattern p({1, 1}, {0, 1, 2});
  const auto result = synth.synthesize(p);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->method, "builtin-trivial");
  EXPECT_EQ(result->qubo.num_terms(), 0u);
}

TEST(Builtin, RefusesNonContiguous) {
  BuiltinSynthesizer synth;
  EXPECT_FALSE(synth.synthesize(ConstraintPattern({1, 1, 1}, {0, 2})));
}

TEST(Builtin, LargeIntervalUsesLogSlacks) {
  BuiltinSynthesizer synth;
  // at-least-1 of 8: interval {1..8}, span 7 -> 3 slack ancillas.
  std::vector<unsigned> mults(8, 1);
  std::set<unsigned> sel;
  for (unsigned k = 1; k <= 8; ++k) sel.insert(k);
  const ConstraintPattern p(mults, sel);
  const auto result = synth.synthesize(p);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->num_ancillas, 3u);
  const auto check = verify_synthesis(p, *result);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Builtin, MultiplicityAwareExactK) {
  // nck({x, y, y}, {2}): weighted count x + 2y == 2, so x=0,y=1 only...
  // and x=1,y=... 1+2=3 no; x=0,y=1 -> 2 yes. x=1,y=0 -> 1 no.
  const ConstraintPattern p({1, 2}, {2});
  BuiltinSynthesizer synth;
  const auto result = synth.synthesize(p);
  ASSERT_TRUE(result.has_value());
  const auto check = verify_synthesis(p, *result);
  EXPECT_TRUE(check.ok) << check.error;
}

// ----------------------------------------------------------------- LP path

TEST(LpSynth, TwoVariableXorNeedsNoAncilla) {
  LpSynthesizer synth;
  const ConstraintPattern p({1, 1}, {0, 2});  // a == b
  const auto result = synth.synthesize(p);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->num_ancillas, 0u);
  const auto check = verify_synthesis(p, *result);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(LpSynth, ThreeVariableXorNeedsAncilla) {
  // Section VI-C: nck({a,b,c},{0,2}) cannot be a 3-variable QUBO; one
  // ancilla suffices (the paper's Eq. 3).
  LpSynthesizer synth;
  const ConstraintPattern p({1, 1, 1}, {0, 2});
  const auto result = synth.synthesize(p);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->num_ancillas, 1u);
  const auto check = verify_synthesis(p, *result);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(LpSynth, SatTrickPattern) {
  // Repeated-variable 3-SAT clause encoding (corrected form of the
  // Section VI-A-f example; see Pattern.SatisfactionWithMultiplicities).
  LpSynthesizer synth;
  const ConstraintPattern p({1, 2, 2}, {0, 2, 3, 4, 5});
  const auto result = synth.synthesize(p);
  ASSERT_TRUE(result.has_value());
  const auto check = verify_synthesis(p, *result);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(LpSynth, GapIsRespected) {
  LpSynthesizer synth;
  const ConstraintPattern p({1, 1}, {1});
  const auto result = synth.synthesize(p);
  ASSERT_TRUE(result.has_value());
  const auto check = verify_synthesis(p, *result);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_GE(check.observed_gap, 1.0 - 1e-9);
}

// ------------------------------------------------------------------ Eq. 3

TEST(PaperEq3, XorQuboAsPrintedIsInconsistent) {
  // Eq. 3 of the paper claims the XOR constraint nck({a,b,c},{0,2}) equals
  //   f(a,b,c,k) = a + b + c + 4k - 2ab - 2ac - 4ak - 2bc - 4bk + 4ck.
  // As printed this is *not* a valid penalty: at the satisfying assignment
  // a=b=1, c=0 the ancilla k=1 yields energy -4 < 0, so the formula (likely
  // a sign typo in the paper) fails exhaustive verification. Our
  // synthesizers produce a correct 1-ancilla XOR QUBO instead (see
  // LpSynth.ThreeVariableXorNeedsAncilla / Z3Synth.ThreeVariableXor).
  Qubo q(4);
  q.add_linear(0, 1);
  q.add_linear(1, 1);
  q.add_linear(2, 1);
  q.add_linear(3, 4);
  q.add_quadratic(0, 1, -2);
  q.add_quadratic(0, 2, -2);
  q.add_quadratic(0, 3, -4);
  q.add_quadratic(1, 2, -2);
  q.add_quadratic(1, 3, -4);
  q.add_quadratic(2, 3, 4);
  SynthesizedQubo synth;
  synth.qubo = q;
  synth.num_vars = 3;
  synth.num_ancillas = 1;
  synth.gap = 1.0;
  const ConstraintPattern p({1, 1, 1}, {0, 2});
  const auto check = verify_synthesis(p, synth);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("valid assignment"), std::string::npos);
  // The specific counterexample: (a,b,c,k) = (1,1,0,1) has energy -4.
  EXPECT_DOUBLE_EQ(q.energy({true, true, false, true}), -4.0);
}

// ---------------------------------------------------------------- Z3 path

#if NCK_HAVE_Z3
TEST(Z3Synth, ThreeVariableXor) {
  Z3Synthesizer synth;
  const ConstraintPattern p({1, 1, 1}, {0, 2});
  const auto result = synth.synthesize(p);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->num_ancillas, 1u);
  const auto check = verify_synthesis(p, *result);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(Z3Synth, AgreesWithLpOnGroundStates) {
  const ConstraintPattern p({1, 2, 2}, {0, 2, 3, 4, 5});
  Z3Synthesizer z3synth;
  LpSynthesizer lpsynth;
  const auto a = z3synth.synthesize(p);
  const auto b = lpsynth.synthesize(p);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(verify_synthesis(p, *a).ok);
  EXPECT_TRUE(verify_synthesis(p, *b).ok);
}
#endif

// ------------------------------------------------------------------ Engine

TEST(Engine, CachesSymmetricPatterns) {
  SynthEngine engine;
  const ConstraintPattern p1({1, 1}, {1, 2});
  const ConstraintPattern p2({1, 1}, {1, 2});
  engine.synthesize(p1);
  engine.synthesize(p2);
  EXPECT_EQ(engine.stats().requests, 2u);
  EXPECT_EQ(engine.stats().cache_hits, 1u);
}

TEST(Engine, CacheDisabledRecomputes) {
  SynthEngineOptions opt;
  opt.use_cache = false;
  SynthEngine engine(opt);
  const ConstraintPattern p({1, 1}, {1, 2});
  engine.synthesize(p);
  engine.synthesize(p);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
  EXPECT_EQ(engine.stats().builtin_hits, 2u);
}

TEST(Engine, UncachedResultsStayValidAcrossCalls) {
  // Regression: synthesize() used to return a reference into an
  // engine-owned scratch slot when the cache was off, so the next call
  // silently overwrote earlier results. It now returns by value; holding
  // several results (including via lifetime-extended const references, as
  // call sites do) must be safe.
  SynthEngineOptions opt;
  opt.use_cache = false;
  SynthEngine engine(opt);
  const auto& first = engine.synthesize(ConstraintPattern({1, 1}, {1, 2}));
  const std::string first_qubo = first.qubo.to_string();
  const std::string first_method = first.method;
  const auto& second = engine.synthesize(ConstraintPattern({1, 1, 1}, {1}));
  EXPECT_EQ(first.qubo.to_string(), first_qubo);
  EXPECT_EQ(first.method, first_method);
  EXPECT_EQ(second.method, "builtin-exact-k");
  EXPECT_NE(first.qubo.to_string(), second.qubo.to_string());
}

TEST(Engine, BuiltinPreferredForContiguous) {
  SynthEngine engine;
  const ConstraintPattern p({1, 1, 1}, {1});
  const auto& result = engine.synthesize(p);
  EXPECT_EQ(result.method, "builtin-exact-k");
  EXPECT_EQ(engine.stats().builtin_hits, 1u);
}

TEST(Engine, GeneralPathForNonContiguous) {
  SynthEngineOptions opt;
  opt.verify = true;  // paranoid mode
  SynthEngine engine(opt);
  const ConstraintPattern p({1, 1, 1}, {0, 2});
  const auto& result = engine.synthesize(p);
  EXPECT_NE(result.method, "builtin-exact-k");
  EXPECT_EQ(result.num_ancillas, 1u);
}

TEST(Engine, BuiltinDisabledStillWorks) {
  SynthEngineOptions opt;
  opt.use_builtin = false;
  opt.verify = true;
  SynthEngine engine(opt);
  const ConstraintPattern p({1, 1}, {1});
  const auto& result = engine.synthesize(p);
  EXPECT_NE(result.method.substr(0, 7), "builtin");
  EXPECT_TRUE(verify_synthesis(p, result).ok);
}

// Property sweep: every synthesizable random pattern verifies exhaustively.
struct PatternCase {
  std::vector<unsigned> mults;
  std::set<unsigned> selection;
};

class SynthProperty : public ::testing::TestWithParam<int> {};

TEST_P(SynthProperty, RandomPatternsVerify) {
  Rng rng(static_cast<std::uint64_t>(777 + GetParam()));
  const std::size_t d = 1 + rng.below(4);
  std::vector<unsigned> mults;
  unsigned card = 0;
  for (std::size_t i = 0; i < d; ++i) {
    const unsigned m = 1 + static_cast<unsigned>(rng.below(2));
    mults.push_back(m);
    card += m;
  }
  std::set<unsigned> sel;
  for (unsigned k = 0; k <= card; ++k) {
    if (rng.bernoulli(0.4)) sel.insert(k);
  }
  if (sel.empty()) sel.insert(card);
  // Ensure satisfiable: some achievable weighted count must be in sel.
  const ConstraintPattern p(mults, sel);
  if (p.valid_assignments().empty()) {
    GTEST_SKIP() << "unsatisfiable pattern";
  }
  SynthEngineOptions opt;
  opt.verify = true;  // throws internally on a bad synthesis
  SynthEngine engine(opt);
  const auto& result = engine.synthesize(p);
  EXPECT_GT(result.gap, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RandomPatterns, SynthProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace nck
