#include <gtest/gtest.h>

#include "classical/exact_solver.hpp"
#if NCK_HAVE_Z3
#include "classical/z3_backend.hpp"
#endif
#include "core/compile.hpp"
#include "problems/vertex_cover.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace nck {
namespace {

Env random_program(std::size_t n, std::size_t constraints, double soft_p,
                   Rng& rng) {
  Env env;
  const auto vars = env.new_vars(n, "v");
  for (std::size_t k = 0; k < constraints; ++k) {
    const std::size_t size = 1 + rng.below(std::min<std::size_t>(4, n));
    std::vector<VarId> coll;
    for (std::size_t i = 0; i < size; ++i) coll.push_back(vars[rng.below(n)]);
    std::set<unsigned> sel;
    for (unsigned s = 0; s <= coll.size(); ++s) {
      if (rng.bernoulli(0.5)) sel.insert(s);
    }
    if (sel.empty()) sel.insert(0);
    env.nck(coll, sel,
            rng.bernoulli(soft_p) ? ConstraintKind::kSoft
                                  : ConstraintKind::kHard);
  }
  return env;
}

TEST(ExactSolver, SimpleFeasibleProgram) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b}, {0, 1});
  env.nck({b, c}, {1});
  const auto solution = solve_exact(env);
  ASSERT_TRUE(solution.feasible);
  EXPECT_TRUE(env.evaluate(solution.assignment).feasible());
}

TEST(ExactSolver, DetectsInfeasibility) {
  Env env;
  const auto v = env.new_vars(3, "v");
  env.different(v[0], v[1]);
  env.different(v[0], v[2]);
  env.different(v[1], v[2]);
  const auto solution = solve_exact(env);
  EXPECT_FALSE(solution.feasible);
  EXPECT_TRUE(solution.assignment.empty());
}

TEST(ExactSolver, MaximizesSoftConstraints) {
  // Minimum vertex cover on the paper's 5-vertex graph: 2 of 5 soft
  // constraints satisfiable (cover size 3).
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const VertexCoverProblem problem{g};
  const auto solution = solve_exact(problem.encode());
  ASSERT_TRUE(solution.feasible);
  EXPECT_EQ(solution.soft_satisfied, 2u);
  EXPECT_TRUE(problem.verify(solution.assignment));
  EXPECT_EQ(problem.cover_size(solution.assignment), 3u);
}

TEST(ExactSolver, HandlesMultiplicityConstraints) {
  Env env;
  const VarId x = env.var("x"), y = env.var("y");
  env.nck({x, x, y}, {2});  // 2x + y == 2 -> x=1, y=0
  const auto solution = solve_exact(env);
  ASSERT_TRUE(solution.feasible);
  EXPECT_TRUE(solution.assignment[x]);
  EXPECT_FALSE(solution.assignment[y]);
}

TEST(ExactSolver, NodeBudgetThrows) {
  // A soft-only program over many variables forces a deep search that must
  // blow a 3-node budget (infeasible random programs can prune in fewer).
  Env env;
  const auto vars = env.new_vars(10, "v");
  for (VarId v : vars) env.prefer_true(v);
  ExactSolverOptions options;
  options.max_nodes = 3;
  EXPECT_THROW(solve_exact(env, options), std::runtime_error);
}

TEST(ExactSolver, SoftOnlyProgramAlwaysFeasible) {
  Env env;
  const auto v = env.new_vars(3, "v");
  env.nck({v[0], v[1]}, {1}, ConstraintKind::kSoft);
  env.nck({v[1], v[2]}, {1}, ConstraintKind::kSoft);
  const auto solution = solve_exact(env);
  ASSERT_TRUE(solution.feasible);
  EXPECT_EQ(solution.soft_satisfied, 2u);
}

class ExactVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(ExactVsBrute, AgreeOnRandomPrograms) {
  Rng rng(static_cast<std::uint64_t>(9000 + GetParam()));
  Env env = random_program(4 + rng.below(5), 3 + rng.below(5), 0.4, rng);
  const auto exact = solve_exact(env);
  const auto brute = solve_brute_force(env);
  EXPECT_EQ(exact.feasible, brute.feasible);
  if (exact.feasible) {
    EXPECT_EQ(exact.soft_satisfied, brute.soft_satisfied);
    EXPECT_TRUE(env.evaluate(exact.assignment).feasible());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, ExactVsBrute, ::testing::Range(0, 30));

#if NCK_HAVE_Z3

TEST(Z3Backend, AgreesWithExactSolver) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Env env = random_program(5 + rng.below(4), 4 + rng.below(4), 0.4, rng);
    const auto native = solve_exact(env);
    const auto z3 = solve_with_z3(env);
    EXPECT_EQ(native.feasible, z3.feasible) << "trial " << trial;
    if (native.feasible) {
      EXPECT_EQ(native.soft_satisfied, z3.soft_satisfied) << "trial " << trial;
    }
  }
}

TEST(Z3Backend, HardOnlyFastPath) {
  Env env;
  const auto v = env.new_vars(4, "v");
  env.exactly({v[0], v[1]}, 1);
  env.exactly({v[2], v[3]}, 2);
  Z3SolveOptions options;
  options.optimize_soft = false;
  const auto solution = solve_with_z3(env, options);
  ASSERT_TRUE(solution.feasible);
  EXPECT_TRUE(env.evaluate(solution.assignment).feasible());
}

TEST(Z3Backend, SolvesCompiledQubo) {
  // Fig 12's "Z3 on the QUBO" path: minimize the compiled vertex-cover QUBO
  // and check the result is a minimum cover.
  const VertexCoverProblem problem{circulant_graph(6, std::size_t{2})};
  const Env env = problem.encode();
  const CompiledQubo cq = compile(env);
  const auto result = solve_qubo_with_z3(cq.qubo);
  const std::vector<bool> cover = cq.project(result.assignment);
  EXPECT_TRUE(problem.verify(cover));
  EXPECT_EQ(problem.cover_size(cover), problem.optimal_cover_size());
}

#endif  // NCK_HAVE_Z3

}  // namespace
}  // namespace nck
