// Golden and regression tests for the hardware-fast hot loops: the
// bit-packed parallel-tempering annealer (anneal/packed.hpp) against the
// scalar IsingModel energy, the fused diagonal QAOA kernel
// (circuit/diagonal.hpp) against per-gate application, the beta-schedule
// endpoint fix, the deep-p norm-drift fix, and the sampler's per-read RNG
// determinism contract (thread-count invariance, postprocess isolation).
#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "anneal/embedded_ising.hpp"
#include "anneal/embedding.hpp"
#include "anneal/packed.hpp"
#include "anneal/sampler.hpp"
#include "anneal/topology.hpp"
#include "circuit/circuit.hpp"
#include "circuit/diagonal.hpp"
#include "circuit/qaoa.hpp"
#include "circuit/statevector.hpp"
#include "graph/generators.hpp"
#include "qubo/heuristic.hpp"
#include "qubo/ising.hpp"
#include "util/rng.hpp"

namespace nck {
namespace {

std::vector<bool> spins_of(const PackedState& state, std::size_t n) {
  std::vector<bool> spins(n);
  for (std::size_t i = 0; i < n; ++i) spins[i] = state.up(i);
  return spins;
}

// Random sparse Ising with embedded-problem structure: weak logical-style
// couplers plus a sprinkling of strong ferromagnetic (chain-style) ones.
IsingModel random_embedded_ising(std::size_t n, Rng& rng) {
  IsingModel model;
  model.h.resize(n);
  for (double& h : model.h) h = rng.uniform(-1.0, 1.0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (!rng.bernoulli(std::min(1.0, 4.0 / static_cast<double>(n)))) continue;
      const bool chain_like = rng.bernoulli(0.25);
      const double w = chain_like ? -2.0 : rng.uniform(-1.0, 1.0);
      model.j.emplace_back(static_cast<Qubo::Var>(a),
                           static_cast<Qubo::Var>(b), w);
    }
  }
  model.offset = rng.uniform(-1.0, 1.0);
  return model;
}

// ------------------------------------------------- Packed energy goldens

TEST(PackedKernel, EnergyAndDeltasMatchScalarModelOn200RandomProblems) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(trial) % 39;
    const IsingModel model = random_embedded_ising(n, rng);
    const PackedIsing packed(model);
    PackedWorkspace workspace(packed);
    workspace.load_clean();

    PackedState state;
    state.words.resize(packed.num_words());
    state.field.resize(n);
    workspace.randomize(state, rng);
    workspace.refresh(state);

    // Tracked energy (offset excluded) matches the scalar reference.
    EXPECT_NEAR(state.energy + model.offset, model.energy(spins_of(state, n)),
                1e-9);

    // Field-based flip deltas match scalar energy differences, and the
    // incrementally-maintained energy stays exact across a flip walk.
    for (std::size_t step = 0; step < 3 * n; ++step) {
      const std::size_t i = static_cast<std::size_t>(rng.below(n));
      const double s = state.up(i) ? 1.0 : -1.0;
      const double delta = -2.0 * s * state.field[i];
      const double before = model.energy(spins_of(state, n));
      // Apply the flip through a sweep-free path: toggle via a forced
      // Metropolis acceptance is private, so recompute by hand.
      std::vector<bool> flipped = spins_of(state, n);
      flipped[i] = !flipped[i];
      EXPECT_NEAR(model.energy(flipped) - before, delta, 1e-9)
          << "trial " << trial << " spin " << i;
      // Walk the state forward with refresh as the oracle.
      state.toggle(i);
      workspace.refresh(state);
    }
  }
}

TEST(PackedKernel, SweepAndDescendKeepTrackedEnergyConsistent) {
  Rng rng(77);
  const IsingModel model = random_embedded_ising(24, rng);
  const PackedIsing packed(model);
  PackedWorkspace workspace(packed);
  workspace.load_clean();

  PackedState state;
  state.words.resize(packed.num_words());
  state.field.resize(model.num_spins());
  workspace.randomize(state, rng);
  workspace.refresh(state);
  for (int sweep = 0; sweep < 32; ++sweep) {
    workspace.sweep(state, 0.5 + 0.1 * sweep, rng);
  }
  workspace.descend(state);
  const double tracked = state.energy;
  workspace.refresh(state);
  EXPECT_NEAR(tracked, state.energy, 1e-9);
  EXPECT_NEAR(state.energy + model.offset,
              model.energy(spins_of(state, model.num_spins())), 1e-9);
}

TEST(PackedKernel, TemperingFindsGroundStateOfFrustratedProblem) {
  // Frustrated 6-spin ring with a bias; brute-force the true ground energy.
  IsingModel model;
  model.h = {0.3, -0.2, 0.1, 0.25, -0.15, 0.05};
  for (std::uint32_t i = 0; i < 6; ++i) {
    model.j.emplace_back(std::min(i, (i + 1) % 6u), std::max(i, (i + 1) % 6u),
                         i % 2 == 0 ? 1.0 : -1.0);
  }
  double ground = 1e300;
  for (std::uint32_t bits = 0; bits < 64; ++bits) {
    std::vector<bool> s(6);
    for (std::size_t q = 0; q < 6; ++q) s[q] = (bits >> q) & 1u;
    ground = std::min(ground, model.energy(s));
  }

  const PackedIsing packed(model);
  PackedWorkspace workspace(packed);
  workspace.load_clean();
  TemperingOptions options;
  options.num_replicas = 4;
  options.num_sweeps = 256;
  options.exchange_interval = 8;
  Rng rng(5);
  const PackedState& best = workspace.anneal(options, rng);
  EXPECT_NEAR(best.energy + model.offset, ground, 1e-9);
}

TEST(PackedKernel, AnnealIsDeterministicForFixedSeed) {
  Rng gen(11);
  const IsingModel model = random_embedded_ising(30, gen);
  const PackedIsing packed(model);
  TemperingOptions options;
  options.num_replicas = 8;
  options.num_sweeps = 512;

  PackedWorkspace w1(packed), w2(packed);
  w1.load_clean();
  w2.load_clean();
  Rng r1(99), r2(99);
  const PackedState& a = w1.anneal(options, r1);
  const std::vector<bool> sa = spins_of(a, model.num_spins());
  const double ea = a.energy;
  const PackedState& b = w2.anneal(options, r2);
  EXPECT_EQ(sa, spins_of(b, model.num_spins()));
  EXPECT_EQ(ea, b.energy);
}

// ------------------------------------------------------- Beta schedule

TEST(BetaSchedule, HitsBothEndpointsExactly) {
  AnnealParams params;
  params.num_sweeps = 1024;
  params.beta_initial = 0.05;
  params.beta_final = 6.0;
  const std::vector<double> betas = beta_schedule(params);
  ASSERT_EQ(betas.size(), 1024u);
  // Exact equality is the point of the fix: the old cumulative
  // multiplication drifted off beta_final on the last sweep.
  EXPECT_EQ(betas.front(), params.beta_initial);
  EXPECT_EQ(betas.back(), params.beta_final);
  for (std::size_t i = 1; i < betas.size(); ++i) {
    EXPECT_GE(betas[i], betas[i - 1]);
  }
}

TEST(BetaSchedule, SingleSweepAnnealsColdNotHot) {
  // Regression: a one-sweep schedule used to run at beta_initial (never
  // annealed); it must run at beta_final.
  AnnealParams params;
  params.num_sweeps = 1;
  params.beta_initial = 0.1;
  params.beta_final = 8.0;
  const std::vector<double> betas = beta_schedule(params);
  ASSERT_EQ(betas.size(), 1u);
  EXPECT_EQ(betas[0], params.beta_final);
}

TEST(BetaSchedule, TemperingLadderEndpointsExact) {
  TemperingOptions options;
  options.num_replicas = 8;
  options.beta_initial = 0.05;
  options.beta_final = 6.0;
  const std::vector<double> ladder = tempering_ladder(options);
  ASSERT_EQ(ladder.size(), 8u);
  EXPECT_EQ(ladder.front(), options.beta_initial);
  EXPECT_EQ(ladder.back(), options.beta_final);
  options.num_replicas = 1;
  const std::vector<double> single = tempering_ladder(options);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], options.beta_final);
}

// --------------------------------------------------- Fused QAOA kernel

TEST(FusedDiagonal, MatchesPerGateApplicationOnRandomCircuits) {
  Rng rng(404);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(trial) % 9;
    const IsingModel model = random_embedded_ising(n, rng);
    const std::size_t p = 1 + static_cast<std::size_t>(trial) % 3;
    std::vector<double> params(2 * p);
    for (double& v : params) v = rng.uniform(-1.5, 1.5);

    // Per-gate reference: H layer + RZZ/RZ cost + RX mixer, gate by gate.
    const Circuit circuit = build_qaoa_circuit(model, params);
    StateVector reference(n);
    circuit.run(reference);

    StateVector fused(n);
    DiagonalCost cost(model, n);
    cost.evolve_qaoa(fused, params);

    ASSERT_EQ(reference.dimension(), fused.dimension());
    for (std::uint64_t z = 0; z < reference.dimension(); ++z) {
      EXPECT_NEAR(std::abs(reference.amplitude(z) - fused.amplitude(z)), 0.0,
                  1e-12)
          << "trial " << trial << " basis " << z;
    }
  }
}

TEST(FusedDiagonal, TableIsTheIsingEnergyWithoutOffset) {
  Rng rng(8);
  const IsingModel model = random_embedded_ising(6, rng);
  const DiagonalCost cost(model, 6);
  for (std::uint64_t z = 0; z < 64; ++z) {
    std::vector<bool> s(6);
    for (std::size_t q = 0; q < 6; ++q) s[q] = (z >> q) & 1u;
    EXPECT_NEAR(cost.table()[z] + model.offset, model.energy(s), 1e-12);
  }
}

TEST(FusedDiagonal, DeepCircuitNormStaysWithinTolerance) {
  // Satellite bugfix: deep-p QAOA (p = 10) must keep ||psi||^2 within 1e-9
  // of 1 — the fused path renormalizes, and even the per-gate path must not
  // drift past the tolerance.
  Rng rng(91);
  const IsingModel model = random_embedded_ising(10, rng);
  std::vector<double> params(20);
  for (double& v : params) v = rng.uniform(-1.2, 1.2);

  StateVector fused(10);
  const DiagonalCost cost(model, 10);
  cost.evolve_qaoa(fused, params);
  EXPECT_NEAR(fused.norm(), 1.0, 1e-9);

  const Circuit circuit = build_qaoa_circuit(model, params);
  StateVector reference(10);
  circuit.run(reference);
  EXPECT_NEAR(reference.norm(), 1.0, 1e-9);
}

TEST(FusedDiagonal, CostLayerPhaseSignMatchesEvolutionConvention) {
  // Regression for the rz sign bug: the builders emitted rz(+2*gamma*h),
  // which evolves under -sum h_i s_i instead of +sum h_i s_i whenever the
  // model mixes fields and couplers. For H = h*s on one qubit with beta = 0
  // the state must be e^{-i*gamma*E(z)} per basis state, i.e.
  // arg(amp(1)) - arg(amp(0)) = -gamma*(E(1) - E(0)) = -2*gamma*h.
  IsingModel model;
  model.h = {0.7};
  const double gamma = 0.6;
  const Circuit circuit = build_qaoa_circuit(model, {gamma, 0.0});
  StateVector state(1);
  circuit.run(state);
  const double phase =
      std::arg(state.amplitude(1)) - std::arg(state.amplitude(0));
  EXPECT_NEAR(phase, -2.0 * gamma * model.h[0], 1e-12);

  StateVector fused(1);
  const DiagonalCost cost(model, 1);
  cost.evolve_qaoa(fused, {gamma, 0.0});
  EXPECT_NEAR(std::arg(fused.amplitude(1)) - std::arg(fused.amplitude(0)),
              -2.0 * gamma * model.h[0], 1e-12);
}

TEST(FusedDiagonal, RxLayerMatchesPerQubitRx) {
  Rng rng(55);
  const std::size_t n = 7;
  StateVector a(n), b(n);
  a.fill_uniform();
  b.fill_uniform();
  const double theta = 0.73;
  a.rx_layer(theta);
  for (std::size_t q = 0; q < n; ++q) b.rx(q, theta);
  for (std::uint64_t z = 0; z < a.dimension(); ++z) {
    EXPECT_NEAR(std::abs(a.amplitude(z) - b.amplitude(z)), 0.0, 1e-13);
  }
}

TEST(FusedDiagonal, FillUniformMatchesHadamardLayer) {
  const std::size_t n = 9;
  StateVector a(n), b(n);
  a.fill_uniform();
  for (std::size_t q = 0; q < n; ++q) b.h(q);
  for (std::uint64_t z = 0; z < a.dimension(); ++z) {
    EXPECT_NEAR(std::abs(a.amplitude(z) - b.amplitude(z)), 0.0, 1e-12);
  }
  EXPECT_NEAR(a.norm(), 1.0, 1e-12);
}

// ------------------------------------------- Sampler determinism contract

struct SamplerFixture {
  IsingModel logical;
  EmbeddedProblem problem;

  SamplerFixture() {
    logical.h = {-0.5, -0.5, -0.5, 0.25};
    logical.j = {{0, 1, -1.0}, {0, 2, -1.0}, {1, 2, -1.0}, {2, 3, 0.75}};
    const Graph logical_graph = complete_graph(4);
    const Graph physical = pegasus_graph(2);
    Rng rng(7);
    const auto embedding = find_embedding(logical_graph, physical, rng);
    EXPECT_TRUE(embedding.has_value());
    problem = embed_ising(logical, *embedding, physical);
  }
};

bool reads_identical(const AnnealSampleResult& a, const AnnealSampleResult& b) {
  if (a.reads.size() != b.reads.size()) return false;
  for (std::size_t i = 0; i < a.reads.size(); ++i) {
    const AnnealRead& x = a.reads[i];
    const AnnealRead& y = b.reads[i];
    if (x.read_index != y.read_index || x.logical != y.logical ||
        x.logical_energy != y.logical_energy ||
        x.chain_breaks != y.chain_breaks || x.chain_ties != y.chain_ties) {
      return false;
    }
  }
  return true;
}

TEST(SamplerDeterminism, ResultsIdenticalAcrossThreadCounts) {
  // Satellite bugfix audit: every read draws from an independently split
  // per-read stream, so 1-thread and 8-thread runs must be bit-identical
  // (the PR 4 contract). This pins the property against future kernels.
  const SamplerFixture fx;
  AnnealerSamplerOptions options;
  options.num_reads = 24;
  options.num_sweeps = 256;

  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  Rng rng1(1234);
  const auto single = sample_annealer(fx.logical, fx.problem, options, rng1);
  omp_set_num_threads(8);
  Rng rng8(1234);
  const auto eight = sample_annealer(fx.logical, fx.problem, options, rng8);
  omp_set_num_threads(saved);

  EXPECT_TRUE(reads_identical(single, eight));
}

TEST(SamplerDeterminism, PostprocessDoesNotPerturbOtherReads) {
  // Satellite bugfix audit: chain-tie coin flips come from the same
  // per-read stream as the read itself, and postprocessing consumes no
  // randomness — so enabling postprocess must leave every read's
  // pre-postprocess sample (and its unembedding decisions) unchanged, and
  // only apply a deterministic greedy descent on top.
  const SamplerFixture fx;
  AnnealerSamplerOptions options;
  options.num_reads = 32;
  options.num_sweeps = 256;
  options.postprocess = false;

  Rng rng_off(4321);
  const auto off = sample_annealer(fx.logical, fx.problem, options, rng_off);
  options.postprocess = true;
  Rng rng_on(4321);
  const auto on = sample_annealer(fx.logical, fx.problem, options, rng_on);

  ASSERT_EQ(off.reads.size(), on.reads.size());
  std::map<std::size_t, const AnnealRead*> by_index;
  for (const AnnealRead& read : on.reads) by_index[read.read_index] = &read;

  const Qubo logical_qubo = ising_to_qubo(fx.logical);
  for (const AnnealRead& raw : off.reads) {
    ASSERT_TRUE(by_index.count(raw.read_index));
    const AnnealRead& cooked = *by_index[raw.read_index];
    // Unembedding decisions identical: same chain stats per read.
    EXPECT_EQ(raw.chain_breaks, cooked.chain_breaks);
    EXPECT_EQ(raw.chain_ties, cooked.chain_ties);
    // The postprocessed sample is exactly the greedy descent of the raw one.
    EXPECT_EQ(cooked.logical, greedy_descent(logical_qubo, raw.logical).x);
    EXPECT_LE(cooked.logical_energy, raw.logical_energy + 1e-12);
  }
}

TEST(SamplerDeterminism, RepeatedRunsAreBitIdentical) {
  const SamplerFixture fx;
  AnnealerSamplerOptions options;
  options.num_reads = 16;
  options.num_sweeps = 128;
  Rng a(777), b(777);
  EXPECT_TRUE(reads_identical(sample_annealer(fx.logical, fx.problem, options, a),
                              sample_annealer(fx.logical, fx.problem, options, b)));
}

TEST(SamplerDeterminism, SingleReplicaPathStillDeterministic) {
  const SamplerFixture fx;
  AnnealerSamplerOptions options;
  options.num_reads = 8;
  options.num_sweeps = 128;
  options.num_replicas = 1;
  Rng a(31), b(31);
  EXPECT_TRUE(reads_identical(sample_annealer(fx.logical, fx.problem, options, a),
                              sample_annealer(fx.logical, fx.problem, options, b)));
}

}  // namespace
}  // namespace nck
