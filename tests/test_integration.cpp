// Cross-module integration tests: text program -> compile -> serialize ->
// backends -> classification, plus failure injection along the pipeline.
#include <gtest/gtest.h>

#include "anneal/backend.hpp"
#include "anneal/topology.hpp"
#include "classical/exact_solver.hpp"
#include "core/compile.hpp"
#include "core/parse.hpp"
#include "graph/generators.hpp"
#include "problems/vertex_cover.hpp"
#include "qubo/brute_force.hpp"
#include "qubo/io.hpp"
#include "runtime/solver.hpp"
#include "util/rng.hpp"

namespace nck {
namespace {

TEST(Integration, TextProgramToClassicalAnswer) {
  const Env env = parse_program(
      "# minimum vertex cover of a triangle\n"
      "nck({a, b}, {1, 2}) /\\ nck({a, c}, {1, 2}) /\\ nck({b, c}, {1, 2})\n"
      "nck({a}, {0}, soft) nck({b}, {0}, soft) nck({c}, {0}, soft)\n");
  const ClassicalSolution solution = solve_exact(env);
  ASSERT_TRUE(solution.feasible);
  // Triangle: min cover 2 -> exactly 1 soft satisfied.
  EXPECT_EQ(solution.soft_satisfied, 1u);
}

TEST(Integration, CompiledQuboSurvivesSerialization) {
  const VertexCoverProblem problem{cycle_graph(5)};
  const CompiledQubo cq = compile(problem.encode());
  const Qubo restored = qubo_from_text(qubo_to_text(cq.qubo));
  const auto a = brute_force_minimize(cq.qubo);
  const auto b = brute_force_minimize(restored);
  EXPECT_NEAR(a.min_energy, b.min_energy, 1e-9);
  EXPECT_EQ(a.ground_states, b.ground_states);
}

TEST(Integration, NoiselessAnnealerIsNearExact) {
  const VertexCoverProblem problem{vertex_scaling_graph(9)};
  const Env env = problem.encode();
  const GroundTruth truth = ground_truth(env);
  const Device device = perfect_device("pegasus-4", pegasus_graph(4));
  SynthEngine engine;
  Rng rng(42);
  AnnealBackendOptions options;
  options.sampler.num_reads = 50;
  options.sampler.ice_sigma = 0.0;
  options.sampler.readout_error = 0.0;
  const AnnealOutcome outcome = run_annealer(env, device, engine, rng, options);
  ASSERT_TRUE(outcome.embedded);
  const QualityCounts counts = classify_all(outcome.evaluations, truth);
  // Mixed hard/soft problem: the hard-over-soft bias shrinks the optimal/
  // suboptimal gap (the paper's Section VIII-A observation), so demand a
  // high *correct* rate and at least some optimal reads.
  EXPECT_GT(counts.fraction_correct(), 0.9);
  EXPECT_TRUE(counts.any_optimal());
}

TEST(Integration, PostprocessingNeverHurtsEnergy) {
  const VertexCoverProblem problem{vertex_scaling_graph(12)};
  const Env env = problem.encode();
  const Device device = perfect_device("pegasus-4", pegasus_graph(4));
  const GroundTruth truth = ground_truth(env);

  auto run = [&](bool post) {
    SynthEngine engine;
    Rng rng(4242);
    AnnealBackendOptions options;
    options.sampler.num_reads = 60;
    options.sampler.ice_sigma = 0.08;  // noisy so postprocessing matters
    options.sampler.postprocess = post;
    const AnnealOutcome outcome =
        run_annealer(env, device, engine, rng, options);
    EXPECT_TRUE(outcome.embedded);
    return classify_all(outcome.evaluations, truth);
  };
  const QualityCounts without = run(false);
  const QualityCounts with = run(true);
  EXPECT_GE(with.optimal + with.suboptimal, without.optimal + without.suboptimal);
}

TEST(Integration, GaugeTransformPreservesSolutionQuality) {
  // With zero noise the spin-reversal transform must be semantically
  // invisible (same classification profile, statistically).
  const VertexCoverProblem problem{vertex_scaling_graph(9)};
  const Env env = problem.encode();
  const Device device = perfect_device("pegasus-4", pegasus_graph(4));
  const GroundTruth truth = ground_truth(env);
  for (bool srt : {false, true}) {
    SynthEngine engine;
    Rng rng(9);
    AnnealBackendOptions options;
    options.sampler.num_reads = 40;
    options.sampler.ice_sigma = 0.0;
    options.sampler.readout_error = 0.0;
    options.sampler.spin_reversal_transform = srt;
    const AnnealOutcome outcome =
        run_annealer(env, device, engine, rng, options);
    ASSERT_TRUE(outcome.embedded);
    const QualityCounts counts = classify_all(outcome.evaluations, truth);
    EXPECT_GT(counts.fraction_correct(), 0.9) << "srt=" << srt;
    EXPECT_TRUE(counts.any_optimal()) << "srt=" << srt;
  }
}

TEST(Integration, HardScaleDominatesSoftInCompiledProblems) {
  // Random mixed programs: the compiled QUBO's hard scale must exceed the
  // total achievable soft penalty (the compile-time invariant behind
  // Definition 6's semantics).
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Env env;
    const auto vars = env.new_vars(4 + rng.below(4), "v");
    for (std::size_t k = 0; k < 4 + rng.below(4); ++k) {
      std::vector<VarId> coll;
      for (std::size_t i = 0; i < 1 + rng.below(3); ++i) {
        coll.push_back(vars[rng.below(vars.size())]);
      }
      std::set<unsigned> sel{static_cast<unsigned>(rng.below(coll.size() + 1))};
      env.nck(coll, sel,
              rng.bernoulli(0.5) ? ConstraintKind::kSoft
                                 : ConstraintKind::kHard);
    }
    const CompiledQubo cq = compile(env);
    EXPECT_GT(cq.hard_scale, cq.max_soft_energy);
  }
}

TEST(Integration, SolverReusesSynthesisCacheAcrossSolves) {
  Solver solver(11);
  const VertexCoverProblem p1{cycle_graph(4)};
  const VertexCoverProblem p2{cycle_graph(6)};
  solver.solve(p1.encode(), BackendKind::kClassical);
  const std::size_t requests_before = solver.engine().stats().requests;
  const std::size_t hits_before = solver.engine().stats().cache_hits;
  solver.solve(p2.encode(), BackendKind::kClassical);
  // Classical solves don't compile; run the annealer to force compilation.
  solver.annealer_options().sampler.num_reads = 5;
  solver.solve(p1.encode(), BackendKind::kAnnealer);
  solver.solve(p2.encode(), BackendKind::kAnnealer);
  EXPECT_GT(solver.engine().stats().requests, requests_before);
  EXPECT_GT(solver.engine().stats().cache_hits, hits_before);
}

TEST(Integration, OversizedProblemFailsGracefullyOnTinyDevice) {
  const VertexCoverProblem problem{complete_graph(10)};
  const Device device = perfect_device("tiny", cycle_graph(12));
  SynthEngine engine;
  Rng rng(3);
  AnnealBackendOptions options;
  options.embed.max_passes = 8;
  options.embed.tries = 1;
  const AnnealOutcome outcome =
      run_annealer(problem.encode(), device, engine, rng, options);
  EXPECT_FALSE(outcome.embedded);
  EXPECT_EQ(outcome.samples.size(), 0u);
  EXPECT_GT(outcome.timing.client_compile_ms, 0.0);
}

TEST(Integration, EvaluationConsistencyAcrossPipeline) {
  // For every sample a backend returns, re-evaluating through Env must
  // reproduce the backend's classification inputs.
  Solver solver(21);
  solver.annealer_options().sampler.num_reads = 20;
  const VertexCoverProblem problem{vertex_scaling_graph(6)};
  const Env env = problem.encode();
  const SolveReport report = solver.solve(env, BackendKind::kAnnealer);
  ASSERT_TRUE(report.ran);
  const Evaluation check = env.evaluate(report.best_assignment);
  EXPECT_EQ(classify(check, report.truth), report.best_quality);
}

}  // namespace
}  // namespace nck

namespace nck {
namespace {

TEST(Integration, PresolveShrinksAnnealerFootprint) {
  // A program with forced variables: nck({a},{1}) pins a; the remaining
  // chain of different() constraints then cascades.
  Env env;
  const auto v = env.new_vars(6, "v");
  env.exactly({v[0]}, 1);  // v0 == 1
  for (std::size_t i = 0; i + 1 < 6; ++i) env.different(v[i], v[i + 1]);
  const GroundTruth truth = ground_truth(env);
  ASSERT_TRUE(truth.feasible);

  const Device device = perfect_device("pegasus-2", pegasus_graph(2));
  auto run = [&](bool use_presolve) {
    SynthEngine engine;
    Rng rng(77);
    AnnealBackendOptions options;
    options.sampler.num_reads = 20;
    options.use_presolve = use_presolve;
    return run_annealer(env, device, engine, rng, options);
  };
  const AnnealOutcome plain = run(false);
  const AnnealOutcome reduced = run(true);
  ASSERT_TRUE(plain.embedded);
  ASSERT_TRUE(reduced.embedded);
  EXPECT_GT(reduced.presolve_fixed, 0u);
  EXPECT_LT(reduced.qubits_used, plain.qubits_used);
  // Results stay correct: every read satisfies the forced value.
  for (const auto& sample : reduced.samples) {
    EXPECT_TRUE(sample[v[0]]);
  }
  const QualityCounts counts = classify_all(reduced.evaluations, truth);
  EXPECT_TRUE(counts.any_optimal());
}

TEST(Integration, PresolveFullyPinnedProblemNeedsNoDevice) {
  // Forced chain: every variable decided by presolve; the "annealer" never
  // actually embeds anything (qubits_used == 0) yet answers perfectly.
  Env env;
  const auto v = env.new_vars(3, "v");
  env.exactly({v[0]}, 1);
  env.exactly({v[1]}, 0);
  env.exactly({v[2]}, 1);
  const Device device = perfect_device("pegasus-2", pegasus_graph(2));
  SynthEngine engine;
  Rng rng(78);
  AnnealBackendOptions options;
  options.sampler.num_reads = 10;
  options.use_presolve = true;
  const AnnealOutcome outcome = run_annealer(env, device, engine, rng, options);
  ASSERT_TRUE(outcome.embedded);
  EXPECT_EQ(outcome.qubits_used, 0u);
  EXPECT_EQ(outcome.presolve_fixed, 3u);
  for (const auto& sample : outcome.samples) {
    EXPECT_TRUE(sample[0]);
    EXPECT_FALSE(sample[1]);
    EXPECT_TRUE(sample[2]);
  }
}

}  // namespace
}  // namespace nck
