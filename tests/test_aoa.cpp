#include <gtest/gtest.h>

#include <cmath>

#include "circuit/aoa.hpp"
#include "circuit/coupling.hpp"
#include "circuit/transpiler.hpp"
#include "core/compile.hpp"
#include "graph/generators.hpp"
#include "problems/coloring.hpp"
#include "util/rng.hpp"

namespace nck {
namespace {

// ------------------------------------------------------------------ XY gate

TEST(XyGate, ActsOnlyOnTheOddParitySubspace) {
  StateVector s(2);
  s.h(0);
  s.h(1);
  const auto before = s.probabilities();
  s.xy(0, 1, 1.1);
  // |00> and |11> amplitudes untouched; |01>/|10> rotate within their span.
  EXPECT_NEAR(std::abs(s.amplitude(0b00)), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(s.amplitude(0b11)), 0.5, 1e-12);
  EXPECT_NEAR(s.norm(), 1.0, 1e-12);
  (void)before;
}

TEST(XyGate, FullAngleTransfersPopulation) {
  StateVector s(2);
  s.x(0);  // |01> in (q1 q0) reading: q0 set
  s.xy(0, 1, M_PI);
  // theta = pi: complete transfer (up to a -i phase).
  EXPECT_NEAR(std::norm(s.amplitude(0b10)), 1.0, 1e-12);
}

TEST(XyGate, PreservesHammingWeight) {
  Rng rng(1);
  StateVector s(4);
  s.x(1);  // weight-1 state
  for (int i = 0; i < 20; ++i) {
    const std::size_t a = rng.below(4);
    std::size_t b = rng.below(4);
    if (a == b) b = (b + 1) % 4;
    s.xy(a, b, rng.uniform(-3, 3));
  }
  // All probability mass stays on weight-1 basis states.
  const auto p = s.probabilities();
  double weight1_mass = 0.0;
  for (std::uint64_t basis = 0; basis < p.size(); ++basis) {
    if (__builtin_popcountll(basis) == 1) weight1_mass += p[basis];
  }
  EXPECT_NEAR(weight1_mass, 1.0, 1e-12);
}

TEST(XyGate, TranspilerDecompositionMatches) {
  // XY through the transpiler (RXX.RYY via conjugated RZZ) must equal the
  // native kernel, up to layout.
  Circuit logical(2);
  logical.h(0);
  logical.ry(1, 0.3);
  logical.xy(0, 1, 0.9);
  const Graph coupling = path_graph(3);
  const auto result = transpile(logical, coupling);
  ASSERT_TRUE(result.has_value());

  StateVector ls(2);
  logical.run(ls);
  StateVector ps(coupling.num_vertices());
  result->physical.run(ps);

  for (std::uint64_t lb = 0; lb < 4; ++lb) {
    double marginal = 0.0;
    const auto pp = ps.probabilities();
    for (std::uint64_t pb = 0; pb < pp.size(); ++pb) {
      bool match = true;
      for (std::size_t q = 0; q < 2; ++q) {
        if (((lb >> q) & 1u) !=
            ((pb >> result->layout[q]) & 1u)) {
          match = false;
          break;
        }
      }
      if (match) marginal += pp[pb];
    }
    EXPECT_NEAR(marginal, std::norm(ls.amplitude(lb)), 1e-9) << "basis " << lb;
  }
}

// -------------------------------------------------------------- OneHotGroups

TEST(OneHotGroups, Validation) {
  OneHotGroups ok{{{0, 1}, {2, 3}}};
  EXPECT_NO_THROW(ok.validate(4));
  EXPECT_EQ(ok.num_qubits(), 4u);

  OneHotGroups overlapping{{{0, 1}, {1, 2}}};
  EXPECT_THROW(overlapping.validate(3), std::invalid_argument);
  OneHotGroups empty{{{}}};
  EXPECT_THROW(empty.validate(1), std::invalid_argument);
  OneHotGroups out_of_range{{{7}}};
  EXPECT_THROW(out_of_range.validate(3), std::invalid_argument);
}

// ----------------------------------------------------------------- W states

TEST(Aoa, WStatePreparationIsUniformOneHot) {
  for (std::size_t k : {1u, 2u, 3u, 5u}) {
    IsingModel empty_cost;
    empty_cost.h.assign(k, 0.0);
    OneHotGroups groups;
    groups.groups.push_back({});
    for (std::size_t i = 0; i < k; ++i) {
      groups.groups[0].push_back(static_cast<Qubo::Var>(i));
    }
    // Zero-parameter trick: gamma = beta = 0 leaves only the preparation.
    const Circuit c = build_aoa_circuit(empty_cost, groups, {0.0, 0.0});
    StateVector s(k);
    c.run(s);
    const auto p = s.probabilities();
    for (std::uint64_t basis = 0; basis < p.size(); ++basis) {
      if (__builtin_popcountll(basis) == 1) {
        EXPECT_NEAR(p[basis], 1.0 / static_cast<double>(k), 1e-9)
            << "k=" << k << " basis=" << basis;
      } else {
        EXPECT_NEAR(p[basis], 0.0, 1e-9) << "k=" << k << " basis=" << basis;
      }
    }
  }
}

TEST(Aoa, MixerKeepsTheFeasibleSubspace) {
  // Two groups of 2; arbitrary parameters: every sampled (noiseless) state
  // must be exactly one-hot per group.
  IsingModel cost;
  cost.h.assign(4, 0.1);
  cost.j = {{0, 2, 0.7}};
  OneHotGroups groups{{{0, 1}, {2, 3}}};
  const Circuit c = build_aoa_circuit(cost, groups, {0.8, 0.3, 0.2, 0.9});
  StateVector s(4);
  c.run(s);
  const auto p = s.probabilities();
  for (std::uint64_t basis = 0; basis < p.size(); ++basis) {
    const bool g0 = __builtin_popcountll(basis & 0b0011) == 1;
    const bool g1 = __builtin_popcountll(basis & 0b1100) == 1;
    if (!(g0 && g1)) {
      EXPECT_NEAR(p[basis], 0.0, 1e-9) << basis;
    }
  }
}

// ----------------------------------------------------------------- Full run

TEST(Aoa, SolvesSmallColoringWithoutOneHotPenalties) {
  // 3-coloring of a 5-cycle: 15 qubits. The AOA needs only the conflict
  // terms; every noiseless sample is one-hot valid by construction.
  const MapColoringProblem problem{cycle_graph(5), 3};
  const CompiledQubo cq = compile(problem.encode());
  QaoaOptions options;
  options.shots = 1500;
  options.noise.error_1q = 0.0;
  options.noise.error_cx = 0.0;
  options.noise.readout_flip = 0.0;
  options.max_sim_qubits = 16;
  Rng rng(5);
  const QaoaResult result =
      run_aoa(problem.conflict_qubo(), cq.qubo, OneHotGroups{problem.one_hot_groups()},
              brooklyn_coupling(), options, rng);
  EXPECT_EQ(result.mode, "xy-mixer-aoa");
  // All samples decode as one-hot; a good fraction are proper colorings.
  std::size_t proper = 0;
  for (const auto& s : result.samples) {
    ASSERT_TRUE(decode_one_hot(s, 5, 3).has_value());
    if (problem.verify(s)) ++proper;
  }
  EXPECT_GT(proper, result.samples.size() / 10);
}

TEST(Aoa, RejectsOversizedProblems) {
  const MapColoringProblem problem{cycle_graph(12), 3};  // 36 qubits
  QaoaOptions options;
  options.max_sim_qubits = 16;
  Rng rng(6);
  const Qubo conflict = problem.conflict_qubo();
  EXPECT_THROW(run_aoa(conflict, conflict,
                       OneHotGroups{problem.one_hot_groups()},
                       brooklyn_coupling(), options, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace nck
