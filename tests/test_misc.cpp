// Edge-case coverage for the smaller surfaces: timing models, logging,
// empty-program behaviour, and defensive paths not exercised elsewhere.
#include <gtest/gtest.h>

#include <thread>

#include "anneal/embedded_ising.hpp"
#include "anneal/timing.hpp"
#include "circuit/backend.hpp"
#include "circuit/circuit.hpp"
#include "core/compile.hpp"
#include "core/env.hpp"
#include "problems/cover.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace nck {
namespace {

TEST(Timer, MonotoneNonNegative) {
  Timer t;
  const double a = t.seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GT(b, a);
  t.reset();
  EXPECT_LT(t.seconds(), b);
  EXPECT_NEAR(t.milliseconds(), t.seconds() * 1e3, 1.0);
}

TEST(Logging, LevelsGateMessages) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  // Nothing observable to assert beyond "does not crash/print"; exercise
  // the paths at every level.
  Log(LogLevel::kDebug) << "dropped";
  Log(LogLevel::kError) << "also dropped at kOff";
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  Log(LogLevel::kWarn) << "dropped";
  set_log_level(before);
}

TEST(DWaveTimingModelTest, ComponentArithmetic) {
  DWaveTimingModel m;
  m.programming_us = 10000.0;
  m.anneal_us = 10.0;
  m.readout_us_per_anneal = 3.0;
  m.delay_us = 20.0;
  m.postprocess_us = 500.0;
  EXPECT_DOUBLE_EQ(m.readout_us(), 30.0);
  EXPECT_DOUBLE_EQ(m.sampling_time_us(10), 10 * (10.0 + 30.0 + 20.0));
  EXPECT_DOUBLE_EQ(m.qpu_access_time_us(10),
                   10000.0 + m.sampling_time_us(10) + 500.0);
  EXPECT_DOUBLE_EQ(m.sampling_time_us(0), 0.0);
}

TEST(IbmTimingModelTest, JobsStayInPaperBand) {
  IbmTimingModel m;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double t = m.job_seconds(rng);
    EXPECT_GE(t, 7.0);
    EXPECT_LE(t, 23.0);
  }
}

TEST(EmbeddingStats, Accessors) {
  Embedding e;
  e.chains = {{1, 2, 3}, {7}, {4, 5}};
  EXPECT_EQ(e.total_qubits(), 6u);
  EXPECT_EQ(e.max_chain_length(), 3u);
  EXPECT_EQ(Embedding{}.total_qubits(), 0u);
}

TEST(ChainStrength, EdgeCases) {
  IsingModel no_couplers;
  no_couplers.h = {2.5, -0.5};
  EXPECT_DOUBLE_EQ(recommended_chain_strength(no_couplers), 2.5);
  IsingModel empty;
  EXPECT_DOUBLE_EQ(recommended_chain_strength(empty), 1.0);
}

TEST(CompileEdge, EmptyProgram) {
  Env env;
  env.new_vars(3, "v");
  const CompiledQubo cq = compile(env);
  EXPECT_EQ(cq.num_problem_vars, 3u);
  EXPECT_EQ(cq.num_ancillas, 0u);
  EXPECT_EQ(cq.qubo.num_terms(), 0u);
  EXPECT_DOUBLE_EQ(cq.max_soft_energy, 0.0);
}

TEST(CompileEdge, SoftOnlyHasUnitHardScaleMargin) {
  Env env;
  const VarId a = env.var("a");
  env.prefer_true(a);
  const CompiledQubo cq = compile(env);
  EXPECT_DOUBLE_EQ(cq.hard_scale, cq.max_soft_energy + 1.0);
}

TEST(EnvEdge, EvaluateRejectsShortAssignment) {
  Env env;
  const auto v = env.new_vars(3, "v");
  env.exactly({v[2]}, 1);
  EXPECT_THROW(env.evaluate({true}), std::out_of_range);
}

TEST(EnvEdge, ConstraintToStringFallsBackToIds) {
  const Constraint c({2, 4}, {1}, ConstraintKind::kHard);
  EXPECT_EQ(c.to_string(), "nck({v2, v4}, {1})");
}

TEST(GateNames, AllKindsNamed) {
  for (GateKind kind : {GateKind::kH, GateKind::kX, GateKind::kRX,
                        GateKind::kRY, GateKind::kRZ, GateKind::kCX,
                        GateKind::kCZ, GateKind::kRZZ, GateKind::kXY,
                        GateKind::kSwap}) {
    EXPECT_STRNE(gate_name(kind), "?");
  }
}

TEST(CircuitEdge, ToStringListsGates) {
  Circuit c(2);
  c.h(0);
  c.rzz(0, 1, 0.25);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("h q0"), std::string::npos);
  EXPECT_NE(s.find("rzz q0, q1"), std::string::npos);
  EXPECT_NE(s.find("0.25"), std::string::npos);
}

TEST(SetSystemEdge, CoveringFindsAllSupersets) {
  SetSystem system;
  system.num_elements = 3;
  system.subsets = {{0, 1}, {1, 2}, {0, 2}, {1}};
  EXPECT_EQ(system.covering(1), (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(system.covering(0), (std::vector<std::size_t>{0, 2}));
}

TEST(SetSystemEdge, GeneratorValidation) {
  Rng rng(1);
  EXPECT_THROW(random_set_system(5, 0, 2, rng), std::invalid_argument);
  EXPECT_THROW(random_set_system(5, 9, 2, rng), std::invalid_argument);
}

TEST(ExactCoverEdge, UncoverableElementRejectedAtEncode) {
  SetSystem system;
  system.num_elements = 2;
  system.subsets = {{0}};  // element 1 in no subset
  const ExactCoverProblem p{system};
  EXPECT_THROW(p.encode(), std::invalid_argument);
}

}  // namespace
}  // namespace nck
