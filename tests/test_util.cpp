#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace nck {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, BetweenInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Stats, SummaryBasics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.q1, 2);
  EXPECT_DOUBLE_EQ(s.q3, 4);
  EXPECT_EQ(s.n, 5u);
}

TEST(Stats, SummaryEmptyAndSingle) {
  EXPECT_EQ(summarize({}).n, 0u);
  std::vector<double> one{7.5};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.median, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PolyfitRecoversQuadratic) {
  std::vector<double> x, y;
  for (int i = 0; i <= 10; ++i) {
    x.push_back(i);
    y.push_back(2.0 + 3.0 * i - 0.5 * i * i);
  }
  const auto c = polyfit(x, y, 2);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0], 2.0, 1e-6);
  EXPECT_NEAR(c[1], 3.0, 1e-6);
  EXPECT_NEAR(c[2], -0.5, 1e-6);
  EXPECT_NEAR(r_squared(x, y, c), 1.0, 1e-9);
}

TEST(Stats, PolyfitRejectsBadInput) {
  std::vector<double> x{1, 2}, y{1};
  EXPECT_THROW(polyfit(x, y, 1), std::invalid_argument);
  std::vector<double> x2{1}, y2{1};
  EXPECT_THROW(polyfit(x2, y2, 2), std::invalid_argument);
}

TEST(Stats, PolyvalHorner) {
  std::vector<double> c{1.0, -2.0, 1.0};  // (x-1)^2
  EXPECT_DOUBLE_EQ(polyval(c, 3.0), 4.0);
  EXPECT_DOUBLE_EQ(polyval(c, 1.0), 0.0);
}

TEST(Table, AlignedAndCsvOutput) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(42);
  t.row().cell("b").cell(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);

  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("name,value"), std::string::npos);
  EXPECT_NE(csv.str().find("alpha,42"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace nck
