// Tests for the nck::analysis static-analysis subsystem: every diagnostic
// code has a positive (fires) and a negative (clean program stays clean)
// case, plus the Solver integration contract — error diagnostics abort a
// solve before any backend work, warnings ride along on the report.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "analysis/analyzer.hpp"
#include "anneal/topology.hpp"
#include "circuit/coupling.hpp"
#include "graph/generators.hpp"
#include "problems/vertex_cover.hpp"
#include "runtime/solver.hpp"

namespace nck {
namespace {

bool has_code(const AnalysisReport& report, DiagCode code) {
  return report.has_code(code);
}

const Diagnostic& find_code(const AnalysisReport& report, DiagCode code) {
  for (const auto& d : report.diagnostics()) {
    if (d.code == code) return d;
  }
  throw std::logic_error("diagnostic not found");
}

/// Feasible vertex-cover-of-a-triangle program: three hard OR constraints
/// plus one soft minimization preference per vertex. Exercises hard + soft
/// without tripping any pass.
Env clean_program() {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b}, {1, 2});
  env.nck({a, c}, {1, 2});
  env.nck({b, c}, {1, 2});
  env.prefer_false(a);
  env.prefer_false(b);
  env.prefer_false(c);
  return env;
}

Env contradictory_program() {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, b}, {2});
  env.nck({a, b}, {0});
  return env;
}

/// A hand-built CompiledQubo whose interaction graph is K_n (unit weights).
CompiledQubo complete_compiled(std::size_t n) {
  CompiledQubo compiled;
  compiled.qubo.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    compiled.qubo.add_linear(static_cast<Qubo::Var>(i), -1.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      compiled.qubo.add_quadratic(static_cast<Qubo::Var>(i),
                                  static_cast<Qubo::Var>(j), 1.0);
    }
  }
  compiled.num_problem_vars = n;
  return compiled;
}

TEST(AnalysisDiagnostics, CodeNamesAreStable) {
  EXPECT_STREQ(diag_code_name(DiagCode::kEmptyProgram), "NCK-P000");
  EXPECT_STREQ(diag_code_name(DiagCode::kContradictoryPair), "NCK-P001");
  EXPECT_STREQ(diag_code_name(DiagCode::kInfeasibleByPropagation), "NCK-P002");
  EXPECT_STREQ(diag_code_name(DiagCode::kTautology), "NCK-P003");
  EXPECT_STREQ(diag_code_name(DiagCode::kUnusedVariable), "NCK-P004");
  EXPECT_STREQ(diag_code_name(DiagCode::kSoftOnlyVariable), "NCK-P005");
  EXPECT_STREQ(diag_code_name(DiagCode::kDuplicateConstraint), "NCK-P006");
  EXPECT_STREQ(diag_code_name(DiagCode::kScaleSeparation), "NCK-P007");
  EXPECT_STREQ(diag_code_name(DiagCode::kSynthesisFailed), "NCK-Q000");
  EXPECT_STREQ(diag_code_name(DiagCode::kSubNoiseTerm), "NCK-Q001");
  EXPECT_STREQ(diag_code_name(DiagCode::kEmbeddingInfeasible), "NCK-Q002");
  EXPECT_STREQ(diag_code_name(DiagCode::kEmbeddingTight), "NCK-Q003");
  EXPECT_STREQ(diag_code_name(DiagCode::kCircuitTooWide), "NCK-C001");
  EXPECT_STREQ(diag_code_name(DiagCode::kCircuitDepthBudget), "NCK-C002");
}

TEST(AnalysisDiagnostics, ReportCountsAndSummary) {
  AnalysisReport report;
  report.add({Severity::kNote, DiagCode::kSoftOnlyVariable,
              DiagLocation::variable(0, "a"), "note msg", ""});
  report.add({Severity::kError, DiagCode::kContradictoryPair,
              DiagLocation::constraint_pair(0, 1), "error msg", "fix it"});
  EXPECT_EQ(report.count(Severity::kNote), 1u);
  EXPECT_EQ(report.count(Severity::kError), 1u);
  EXPECT_TRUE(report.has_errors());
  const std::string errors_only = report.summary();
  EXPECT_NE(errors_only.find("NCK-P001"), std::string::npos);
  EXPECT_EQ(errors_only.find("note msg"), std::string::npos);
  const std::string all = report.summary(Severity::kNote);
  EXPECT_NE(all.find("note msg"), std::string::npos);
}

TEST(AnalysisDiagnostics, JsonIsMachineReadable) {
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(contradictory_program());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"code\":\"NCK-P001\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":"), std::string::npos);
  // Labels contain quotes-free constraint text; braces must be escaped-safe.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(AnalysisDiagnostics, TablePrintRendersEveryRow) {
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(contradictory_program());
  std::ostringstream os;
  report.print(os);
  EXPECT_NE(os.str().find("severity"), std::string::npos);
  EXPECT_NE(os.str().find("NCK-P001"), std::string::npos);
}

TEST(ProgramPasses, CleanProgramProducesNoDiagnostics) {
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(clean_program());
  EXPECT_TRUE(report.empty()) << report.summary(Severity::kNote);
}

TEST(ProgramPasses, EmptyProgramWarns) {
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(Env{});
  ASSERT_TRUE(has_code(report, DiagCode::kEmptyProgram));
  EXPECT_EQ(find_code(report, DiagCode::kEmptyProgram).severity,
            Severity::kWarning);
  EXPECT_FALSE(report.has_errors());
}

TEST(ProgramPasses, ContradictoryPairIsAnError) {
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(contradictory_program());
  ASSERT_TRUE(has_code(report, DiagCode::kContradictoryPair));
  const Diagnostic& d = find_code(report, DiagCode::kContradictoryPair);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.location.kind, DiagLocation::Kind::kConstraintPair);
  EXPECT_EQ(d.location.index, 0u);
  EXPECT_EQ(d.location.index2, 1u);
  EXPECT_FALSE(d.hint.empty());
}

TEST(ProgramPasses, ContradictionNeedsIdenticalCollections) {
  // Same selection sets, different collections: satisfiable, no error.
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b}, {2});
  env.nck({b, c}, {0});  // wait: forces b false, but {a,b}={2} forces b true
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  // This program *is* infeasible, but via propagation, not pair intersection.
  EXPECT_FALSE(has_code(report, DiagCode::kContradictoryPair));
  EXPECT_TRUE(has_code(report, DiagCode::kInfeasibleByPropagation));
}

TEST(ProgramPasses, PropagationFindsForcedValueConflicts) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a}, {1});      // a must be TRUE
  env.nck({a, b}, {0});   // a and b must both be FALSE
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  ASSERT_TRUE(has_code(report, DiagCode::kInfeasibleByPropagation));
  EXPECT_EQ(find_code(report, DiagCode::kInfeasibleByPropagation).severity,
            Severity::kError);
}

TEST(ProgramPasses, PropagationUsesExactParityReasoning) {
  // Multiplicity-2 members can only contribute even counts: nck({a,a,b,b},
  // {1,3}) is unsatisfiable even though 1 and 3 lie inside [0, 4].
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, a, b, b}, {1, 3});
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  EXPECT_TRUE(has_code(report, DiagCode::kInfeasibleByPropagation));
}

TEST(ProgramPasses, PropagationResultExposesForcedValues) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.all_true({a, b});
  env.nck({b, c}, {1});  // b TRUE forces c FALSE
  const PropagationResult prop = propagate_forced_values(env, {});
  ASSERT_FALSE(prop.contradiction);
  EXPECT_EQ(prop.values[a], ForcedValue::kTrue);
  EXPECT_EQ(prop.values[b], ForcedValue::kTrue);
  EXPECT_EQ(prop.values[c], ForcedValue::kFalse);
}

TEST(ProgramPasses, SoftConstraintsNeverMakeAProgramInfeasible) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, b}, {2});
  env.nck({a, b}, {0}, ConstraintKind::kSoft);  // conflicting but soft
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  EXPECT_FALSE(report.has_errors()) << report.summary();
}

TEST(ProgramPasses, TautologyWarns) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, b}, {0, 1, 2});
  env.nck({a}, {1});  // keep the program non-trivial
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  ASSERT_TRUE(has_code(report, DiagCode::kTautology));
  const Diagnostic& d = find_code(report, DiagCode::kTautology);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.location.index, 0u);
  EXPECT_FALSE(report.has_errors());
}

TEST(ProgramPasses, UnusedVariableWarns) {
  Env env;
  const VarId a = env.var("a");
  env.var("dangling");
  env.nck({a}, {1});
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  ASSERT_TRUE(has_code(report, DiagCode::kUnusedVariable));
  const Diagnostic& d = find_code(report, DiagCode::kUnusedVariable);
  EXPECT_EQ(d.location.kind, DiagLocation::Kind::kVariable);
  EXPECT_EQ(d.location.label, "dangling");
}

TEST(ProgramPasses, SoftOnlyVariableGetsANote) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a}, {1});
  env.prefer_true(b);
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  ASSERT_TRUE(has_code(report, DiagCode::kSoftOnlyVariable));
  EXPECT_EQ(find_code(report, DiagCode::kSoftOnlyVariable).severity,
            Severity::kNote);
  EXPECT_FALSE(has_code(report, DiagCode::kUnusedVariable));
}

TEST(ProgramPasses, DuplicateHardConstraintWarnsDuplicateSoftNotes) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, b}, {1});
  env.nck({b, a}, {1});  // same multiset, different order
  env.prefer_false(a);
  env.prefer_false(a);
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  std::size_t warnings = 0, notes = 0;
  for (const auto& d : report.diagnostics()) {
    if (d.code != DiagCode::kDuplicateConstraint) continue;
    if (d.severity == Severity::kWarning) ++warnings;
    if (d.severity == Severity::kNote) ++notes;
  }
  EXPECT_EQ(warnings, 1u);
  EXPECT_EQ(notes, 1u);
}

TEST(ProgramPasses, ScaleSeparationLintFiresOnManySoftConstraints) {
  Env env;
  const auto vars = env.new_vars(40, "x");
  env.at_least(vars, 1);
  for (VarId v : vars) env.prefer_false(v);
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  ASSERT_TRUE(has_code(report, DiagCode::kScaleSeparation));
  EXPECT_EQ(find_code(report, DiagCode::kScaleSeparation).severity,
            Severity::kWarning);

  // Few soft constraints: the soft-energy unit stays resolvable.
  Analyzer strict;
  const AnalysisReport clean = strict.analyze(clean_program());
  EXPECT_FALSE(has_code(clean, DiagCode::kScaleSeparation));
}

TEST(QuboPasses, SynthesisFailureBecomesADiagnostic) {
  // Odd parity over three variables needs an ancilla; with the ancilla
  // budget at zero and the closed forms disabled, synthesis must fail.
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b, c}, {1, 3});
  SynthEngineOptions opts;
  opts.use_builtin = false;
  opts.max_ancillas = 0;
  SynthEngine engine(opts);
  const Device device = perfect_device("test", chimera_graph(2, 2));
  Analyzer analyzer;
  AnalysisTarget target;
  target.annealer = &device;
  const AnalysisReport report = analyzer.analyze(env, engine, target);
  ASSERT_TRUE(has_code(report, DiagCode::kSynthesisFailed));
  EXPECT_TRUE(report.has_errors());
}

TEST(QuboPasses, InteractionGraphMatchesQuadraticTerms) {
  Qubo q(4);
  q.add_quadratic(0, 1, 1.0);
  q.add_quadratic(2, 3, -2.0);
  const Graph g = interaction_graph(q);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(QuboPasses, SubNoiseTermsAreFlagged) {
  CompiledQubo compiled;
  compiled.qubo.resize(3);
  compiled.qubo.add_quadratic(0, 1, 100.0);
  compiled.qubo.add_quadratic(1, 2, 0.01);  // 1e4:1 dynamic range
  compiled.num_problem_vars = 3;
  AnalysisReport report;
  analyze_coefficient_range(compiled, {}, report);
  ASSERT_TRUE(has_code(report, DiagCode::kSubNoiseTerm));
  const Diagnostic& d = find_code(report, DiagCode::kSubNoiseTerm);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_NE(d.message.find("ICE"), std::string::npos);

  // Uniform coefficients: nothing below the noise floor.
  AnalysisReport clean;
  analyze_coefficient_range(complete_compiled(4), {}, clean);
  EXPECT_FALSE(has_code(clean, DiagCode::kSubNoiseTerm));
}

TEST(QuboPasses, EmbeddingInfeasibleWhenDeviceTooSmall) {
  const Device tiny = perfect_device("tiny", path_graph(3));
  AnalysisReport report;
  analyze_embedding_feasibility(complete_compiled(5), tiny, {}, report);
  ASSERT_TRUE(has_code(report, DiagCode::kEmbeddingInfeasible));
  EXPECT_TRUE(report.has_errors());
}

TEST(QuboPasses, EmbeddingInfeasibleWhenCouplersRunOut) {
  // K5 has 10 logical edges; a 6-qubit path offers only 5 couplers.
  const Device device = perfect_device("path6", path_graph(6));
  AnalysisReport report;
  analyze_embedding_feasibility(complete_compiled(5), device, {}, report);
  ASSERT_TRUE(has_code(report, DiagCode::kEmbeddingInfeasible));
  EXPECT_NE(find_code(report, DiagCode::kEmbeddingInfeasible)
                .message.find("coupler"),
            std::string::npos);
}

TEST(QuboPasses, EmbeddingTightWarnsBeforeInfeasible) {
  // K5 on one Chimera K_{4,4} cell: 5 of 8 qubits needed by the lower
  // bound (> 50% yield budget) but still feasible -> warning, no error.
  const Device cell = perfect_device("cell", chimera_graph(1, 1));
  AnalysisReport report;
  analyze_embedding_feasibility(complete_compiled(5), cell, {}, report);
  EXPECT_FALSE(report.has_errors()) << report.summary();
  ASSERT_TRUE(has_code(report, DiagCode::kEmbeddingTight));

  // A small problem on a big lattice is entirely clean.
  const Device roomy = perfect_device("roomy", chimera_graph(4, 4));
  AnalysisReport clean;
  analyze_embedding_feasibility(complete_compiled(3), roomy, {}, clean);
  EXPECT_TRUE(clean.empty()) << clean.summary(Severity::kNote);
}

TEST(QuboPasses, CircuitTooWideIsAnError) {
  AnalysisReport report;
  analyze_circuit_feasibility(complete_compiled(5), path_graph(3), {}, report);
  ASSERT_TRUE(has_code(report, DiagCode::kCircuitTooWide));
  EXPECT_TRUE(report.has_errors());

  AnalysisReport clean;
  analyze_circuit_feasibility(complete_compiled(3), path_graph(8), {}, clean);
  EXPECT_FALSE(has_code(clean, DiagCode::kCircuitTooWide));
}

TEST(QuboPasses, CircuitDepthBudgetWarnsOnDenseProblems) {
  // K12: 66 quadratic terms -> ~330 modeled CX at p=1, fidelity < 0.5.
  AnalysisReport report;
  analyze_circuit_feasibility(complete_compiled(12), path_graph(16), {},
                              report);
  ASSERT_TRUE(has_code(report, DiagCode::kCircuitDepthBudget));
  EXPECT_EQ(find_code(report, DiagCode::kCircuitDepthBudget).severity,
            Severity::kWarning);

  AnalysisReport clean;
  analyze_circuit_feasibility(complete_compiled(3), path_graph(8), {}, clean);
  EXPECT_TRUE(clean.empty()) << clean.summary(Severity::kNote);
}

TEST(AnalyzerFacade, HardwarePassesSkippedWhenProgramIsBroken) {
  SynthEngine engine;
  const Device device = perfect_device("cell", chimera_graph(1, 1));
  Analyzer analyzer;
  AnalysisTarget target;
  target.annealer = &device;
  const AnalysisReport report =
      analyzer.analyze(contradictory_program(), engine, target);
  EXPECT_TRUE(report.has_errors());
  // No QUBO-level diagnostics: compilation was never attempted.
  for (const auto& d : report.diagnostics()) {
    EXPECT_NE(diag_code_name(d.code)[4], 'Q');
    EXPECT_NE(diag_code_name(d.code)[4], 'C');
  }
}

TEST(AnalyzerFacade, CleanProgramOnRealTargetsStaysClean) {
  SynthEngine engine;
  Rng rng(7);
  const Device device = advantage_4_1(rng);
  const Graph coupling = heavy_hex_lattice(5);
  Analyzer analyzer;
  AnalysisTarget target;
  target.annealer = &device;
  target.coupling = &coupling;
  const AnalysisReport report =
      analyzer.analyze(clean_program(), engine, target);
  EXPECT_FALSE(report.has_errors()) << report.summary();
  EXPECT_FALSE(has_code(report, DiagCode::kEmbeddingTight));
  EXPECT_FALSE(has_code(report, DiagCode::kCircuitTooWide));
}

TEST(SolverIntegration, InfeasibleProgramRejectedWithDiagnosticCode) {
  Solver solver(42);
  for (BackendKind backend : {BackendKind::kClassical, BackendKind::kAnnealer,
                              BackendKind::kCircuit}) {
    const SolveReport report = solver.solve(contradictory_program(), backend);
    EXPECT_FALSE(report.ran);
    EXPECT_EQ(report.failure, FailureKind::kAnalysisRejected);
    EXPECT_NE(report.failure_message().find("NCK-P001"), std::string::npos)
        << backend_name(backend) << ": " << report.failure_message();
    EXPECT_TRUE(report.analysis.has_errors());
    EXPECT_EQ(report.num_samples, 0u);  // no backend work happened
  }
}

TEST(SolverIntegration, WarningsAttachToSuccessfulSolves) {
  Env env = clean_program();
  env.var("dangling");  // unused -> warning, but not an error
  Solver solver(42);
  const SolveReport report = solver.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_TRUE(report.analysis.has_code(DiagCode::kUnusedVariable));
  EXPECT_FALSE(report.analysis.has_errors());
}

TEST(SolverIntegration, CleanSolveCarriesNoDiagnostics) {
  Solver solver(42);
  const SolveReport report =
      solver.solve(clean_program(), BackendKind::kClassical);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_TRUE(report.analysis.empty())
      << report.analysis.summary(Severity::kNote);
}

}  // namespace
}  // namespace nck
