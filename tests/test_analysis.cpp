// Tests for the nck::analysis static-analysis subsystem: every diagnostic
// code has a positive (fires) and a negative (clean program stays clean)
// case, plus the Solver integration contract — error diagnostics abort a
// solve before any backend work, warnings ride along on the report.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "analysis/analyzer.hpp"
#include "analysis/certify.hpp"
#include "analysis/unsat_core.hpp"
#include "anneal/topology.hpp"
#include "circuit/coupling.hpp"
#include "graph/generators.hpp"
#include "problems/vertex_cover.hpp"
#include "runtime/solver.hpp"

namespace nck {
namespace {

bool has_code(const AnalysisReport& report, DiagCode code) {
  return report.has_code(code);
}

const Diagnostic& find_code(const AnalysisReport& report, DiagCode code) {
  for (const auto& d : report.diagnostics()) {
    if (d.code == code) return d;
  }
  throw std::logic_error("diagnostic not found");
}

/// Feasible vertex-cover-of-a-triangle program: three hard OR constraints
/// plus one soft minimization preference per vertex. Exercises hard + soft
/// without tripping any pass.
Env clean_program() {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b}, {1, 2});
  env.nck({a, c}, {1, 2});
  env.nck({b, c}, {1, 2});
  env.prefer_false(a);
  env.prefer_false(b);
  env.prefer_false(c);
  return env;
}

Env contradictory_program() {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, b}, {2});
  env.nck({a, b}, {0});
  return env;
}

/// A hand-built CompiledQubo whose interaction graph is K_n (unit weights).
CompiledQubo complete_compiled(std::size_t n) {
  CompiledQubo compiled;
  compiled.qubo.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    compiled.qubo.add_linear(static_cast<Qubo::Var>(i), -1.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      compiled.qubo.add_quadratic(static_cast<Qubo::Var>(i),
                                  static_cast<Qubo::Var>(j), 1.0);
    }
  }
  compiled.num_problem_vars = n;
  return compiled;
}

TEST(AnalysisDiagnostics, CodeNamesAreStable) {
  EXPECT_STREQ(diag_code_name(DiagCode::kEmptyProgram), "NCK-P000");
  EXPECT_STREQ(diag_code_name(DiagCode::kContradictoryPair), "NCK-P001");
  EXPECT_STREQ(diag_code_name(DiagCode::kInfeasibleByPropagation), "NCK-P002");
  EXPECT_STREQ(diag_code_name(DiagCode::kTautology), "NCK-P003");
  EXPECT_STREQ(diag_code_name(DiagCode::kUnusedVariable), "NCK-P004");
  EXPECT_STREQ(diag_code_name(DiagCode::kSoftOnlyVariable), "NCK-P005");
  EXPECT_STREQ(diag_code_name(DiagCode::kDuplicateConstraint), "NCK-P006");
  EXPECT_STREQ(diag_code_name(DiagCode::kScaleSeparation), "NCK-P007");
  EXPECT_STREQ(diag_code_name(DiagCode::kSynthesisFailed), "NCK-Q000");
  EXPECT_STREQ(diag_code_name(DiagCode::kSubNoiseTerm), "NCK-Q001");
  EXPECT_STREQ(diag_code_name(DiagCode::kEmbeddingInfeasible), "NCK-Q002");
  EXPECT_STREQ(diag_code_name(DiagCode::kEmbeddingTight), "NCK-Q003");
  EXPECT_STREQ(diag_code_name(DiagCode::kCircuitTooWide), "NCK-C001");
  EXPECT_STREQ(diag_code_name(DiagCode::kCircuitDepthBudget), "NCK-C002");
  EXPECT_STREQ(diag_code_name(DiagCode::kSynthBudgetExceeded), "NCK-P008");
  EXPECT_STREQ(diag_code_name(DiagCode::kUnsatCore), "NCK-P009");
  EXPECT_STREQ(diag_code_name(DiagCode::kFallbackChainInfeasible), "NCK-R000");
  EXPECT_STREQ(diag_code_name(DiagCode::kCertificationFailed), "NCK-V000");
  EXPECT_STREQ(diag_code_name(DiagCode::kGapDominatedBySoft), "NCK-V001");
  EXPECT_STREQ(diag_code_name(DiagCode::kGapMarginThin), "NCK-V002");
  EXPECT_STREQ(diag_code_name(DiagCode::kForcedVariable), "NCK-D000");
  EXPECT_STREQ(diag_code_name(DiagCode::kSubsumedConstraint), "NCK-D001");
  EXPECT_STREQ(diag_code_name(DiagCode::kIndependentComponents), "NCK-D002");
  EXPECT_STREQ(diag_code_name(DiagCode::kPresolveUnsat), "NCK-D003");
  EXPECT_STREQ(diag_code_name(DiagCode::kReductionRejected), "NCK-D004");
}

TEST(AnalysisDiagnostics, ConstraintSetLocationRendersAndSerializes) {
  const DiagLocation loc = DiagLocation::constraint_set({2, 0, 1}, "core");
  EXPECT_EQ(loc.kind, DiagLocation::Kind::kConstraintSet);
  EXPECT_EQ(loc.index, 0u);  // mirrors the first (sorted) member
  EXPECT_EQ(loc.to_string(), "constraints {#0, #1, #2} (core)");

  AnalysisReport report;
  report.add({Severity::kNote, DiagCode::kUnsatCore, loc, "msg", ""});
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"kind\":\"constraint-set\""), std::string::npos);
  EXPECT_NE(json.find("\"indices\":[0,1,2]"), std::string::npos);
}

TEST(AnalysisDiagnostics, ReportCountsAndSummary) {
  AnalysisReport report;
  report.add({Severity::kNote, DiagCode::kSoftOnlyVariable,
              DiagLocation::variable(0, "a"), "note msg", ""});
  report.add({Severity::kError, DiagCode::kContradictoryPair,
              DiagLocation::constraint_pair(0, 1), "error msg", "fix it"});
  EXPECT_EQ(report.count(Severity::kNote), 1u);
  EXPECT_EQ(report.count(Severity::kError), 1u);
  EXPECT_TRUE(report.has_errors());
  const std::string errors_only = report.summary();
  EXPECT_NE(errors_only.find("NCK-P001"), std::string::npos);
  EXPECT_EQ(errors_only.find("note msg"), std::string::npos);
  const std::string all = report.summary(Severity::kNote);
  EXPECT_NE(all.find("note msg"), std::string::npos);
}

TEST(AnalysisDiagnostics, JsonIsMachineReadable) {
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(contradictory_program());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"code\":\"NCK-P001\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":"), std::string::npos);
  // Labels contain quotes-free constraint text; braces must be escaped-safe.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(AnalysisDiagnostics, TablePrintRendersEveryRow) {
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(contradictory_program());
  std::ostringstream os;
  report.print(os);
  EXPECT_NE(os.str().find("severity"), std::string::npos);
  EXPECT_NE(os.str().find("NCK-P001"), std::string::npos);
}

TEST(ProgramPasses, CleanProgramProducesNoDiagnostics) {
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(clean_program());
  EXPECT_TRUE(report.empty()) << report.summary(Severity::kNote);
}

TEST(ProgramPasses, EmptyProgramWarns) {
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(Env{});
  ASSERT_TRUE(has_code(report, DiagCode::kEmptyProgram));
  EXPECT_EQ(find_code(report, DiagCode::kEmptyProgram).severity,
            Severity::kWarning);
  EXPECT_FALSE(report.has_errors());
}

TEST(ProgramPasses, ContradictoryPairIsAnError) {
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(contradictory_program());
  ASSERT_TRUE(has_code(report, DiagCode::kContradictoryPair));
  const Diagnostic& d = find_code(report, DiagCode::kContradictoryPair);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.location.kind, DiagLocation::Kind::kConstraintPair);
  EXPECT_EQ(d.location.index, 0u);
  EXPECT_EQ(d.location.index2, 1u);
  EXPECT_FALSE(d.hint.empty());
}

TEST(ProgramPasses, ContradictionNeedsIdenticalCollections) {
  // Same selection sets, different collections: satisfiable, no error.
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b}, {2});
  env.nck({b, c}, {0});  // wait: forces b false, but {a,b}={2} forces b true
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  // This program *is* infeasible, but via propagation, not pair intersection.
  EXPECT_FALSE(has_code(report, DiagCode::kContradictoryPair));
  EXPECT_TRUE(has_code(report, DiagCode::kInfeasibleByPropagation));
}

TEST(ProgramPasses, PropagationFindsForcedValueConflicts) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a}, {1});      // a must be TRUE
  env.nck({a, b}, {0});   // a and b must both be FALSE
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  ASSERT_TRUE(has_code(report, DiagCode::kInfeasibleByPropagation));
  EXPECT_EQ(find_code(report, DiagCode::kInfeasibleByPropagation).severity,
            Severity::kError);
}

TEST(ProgramPasses, PropagationUsesExactParityReasoning) {
  // Multiplicity-2 members can only contribute even counts: nck({a,a,b,b},
  // {1,3}) is unsatisfiable even though 1 and 3 lie inside [0, 4].
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, a, b, b}, {1, 3});
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  EXPECT_TRUE(has_code(report, DiagCode::kInfeasibleByPropagation));
}

TEST(ProgramPasses, PropagationResultExposesForcedValues) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.all_true({a, b});
  env.nck({b, c}, {1});  // b TRUE forces c FALSE
  const PropagationResult prop = propagate_forced_values(env, {});
  ASSERT_FALSE(prop.contradiction);
  EXPECT_EQ(prop.values[a], ForcedValue::kTrue);
  EXPECT_EQ(prop.values[b], ForcedValue::kTrue);
  EXPECT_EQ(prop.values[c], ForcedValue::kFalse);
}

TEST(ProgramPasses, SoftConstraintsNeverMakeAProgramInfeasible) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, b}, {2});
  env.nck({a, b}, {0}, ConstraintKind::kSoft);  // conflicting but soft
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  EXPECT_FALSE(report.has_errors()) << report.summary();
}

TEST(ProgramPasses, TautologyWarns) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, b}, {0, 1, 2});
  env.nck({a}, {1});  // keep the program non-trivial
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  ASSERT_TRUE(has_code(report, DiagCode::kTautology));
  const Diagnostic& d = find_code(report, DiagCode::kTautology);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.location.index, 0u);
  EXPECT_FALSE(report.has_errors());
}

TEST(ProgramPasses, UnusedVariableWarns) {
  Env env;
  const VarId a = env.var("a");
  env.var("dangling");
  env.nck({a}, {1});
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  ASSERT_TRUE(has_code(report, DiagCode::kUnusedVariable));
  const Diagnostic& d = find_code(report, DiagCode::kUnusedVariable);
  EXPECT_EQ(d.location.kind, DiagLocation::Kind::kVariable);
  EXPECT_EQ(d.location.label, "dangling");
}

TEST(ProgramPasses, SoftOnlyVariableGetsANote) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a}, {1});
  env.prefer_true(b);
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  ASSERT_TRUE(has_code(report, DiagCode::kSoftOnlyVariable));
  EXPECT_EQ(find_code(report, DiagCode::kSoftOnlyVariable).severity,
            Severity::kNote);
  EXPECT_FALSE(has_code(report, DiagCode::kUnusedVariable));
}

TEST(ProgramPasses, DuplicateHardConstraintWarnsDuplicateSoftNotes) {
  Env env;
  const VarId a = env.var("a"), b = env.var("b");
  env.nck({a, b}, {1});
  env.nck({b, a}, {1});  // same multiset, different order
  env.prefer_false(a);
  env.prefer_false(a);
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  std::size_t warnings = 0, notes = 0;
  for (const auto& d : report.diagnostics()) {
    if (d.code != DiagCode::kDuplicateConstraint) continue;
    if (d.severity == Severity::kWarning) ++warnings;
    if (d.severity == Severity::kNote) ++notes;
  }
  EXPECT_EQ(warnings, 1u);
  EXPECT_EQ(notes, 1u);
}

TEST(ProgramPasses, ScaleSeparationLintFiresOnManySoftConstraints) {
  Env env;
  const auto vars = env.new_vars(40, "x");
  env.at_least(vars, 1);
  for (VarId v : vars) env.prefer_false(v);
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(env);
  ASSERT_TRUE(has_code(report, DiagCode::kScaleSeparation));
  EXPECT_EQ(find_code(report, DiagCode::kScaleSeparation).severity,
            Severity::kWarning);

  // Few soft constraints: the soft-energy unit stays resolvable.
  Analyzer strict;
  const AnalysisReport clean = strict.analyze(clean_program());
  EXPECT_FALSE(has_code(clean, DiagCode::kScaleSeparation));
}

TEST(QuboPasses, SynthesisFailureBecomesADiagnostic) {
  // Odd parity over three variables needs an ancilla; with the ancilla
  // budget at zero and the closed forms disabled, synthesis must fail.
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b, c}, {1, 3});
  SynthEngineOptions opts;
  opts.use_builtin = false;
  opts.max_ancillas = 0;
  SynthEngine engine(opts);
  const Device device = perfect_device("test", chimera_graph(2, 2));
  Analyzer analyzer;
  AnalysisTarget target;
  target.annealer = &device;
  const AnalysisReport report = analyzer.analyze(env, engine, target);
  ASSERT_TRUE(has_code(report, DiagCode::kSynthesisFailed));
  EXPECT_TRUE(report.has_errors());
}

TEST(QuboPasses, InteractionGraphMatchesQuadraticTerms) {
  Qubo q(4);
  q.add_quadratic(0, 1, 1.0);
  q.add_quadratic(2, 3, -2.0);
  const Graph g = interaction_graph(q);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(QuboPasses, SubNoiseTermsAreFlagged) {
  CompiledQubo compiled;
  compiled.qubo.resize(3);
  compiled.qubo.add_quadratic(0, 1, 100.0);
  compiled.qubo.add_quadratic(1, 2, 0.01);  // 1e4:1 dynamic range
  compiled.num_problem_vars = 3;
  AnalysisReport report;
  analyze_coefficient_range(compiled, {}, report);
  ASSERT_TRUE(has_code(report, DiagCode::kSubNoiseTerm));
  const Diagnostic& d = find_code(report, DiagCode::kSubNoiseTerm);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_NE(d.message.find("ICE"), std::string::npos);

  // Uniform coefficients: nothing below the noise floor.
  AnalysisReport clean;
  analyze_coefficient_range(complete_compiled(4), {}, clean);
  EXPECT_FALSE(has_code(clean, DiagCode::kSubNoiseTerm));
}

TEST(QuboPasses, EmbeddingInfeasibleWhenDeviceTooSmall) {
  const Device tiny = perfect_device("tiny", path_graph(3));
  AnalysisReport report;
  analyze_embedding_feasibility(complete_compiled(5), tiny, {}, report);
  ASSERT_TRUE(has_code(report, DiagCode::kEmbeddingInfeasible));
  EXPECT_TRUE(report.has_errors());
}

TEST(QuboPasses, EmbeddingInfeasibleWhenCouplersRunOut) {
  // K5 has 10 logical edges; a 6-qubit path offers only 5 couplers.
  const Device device = perfect_device("path6", path_graph(6));
  AnalysisReport report;
  analyze_embedding_feasibility(complete_compiled(5), device, {}, report);
  ASSERT_TRUE(has_code(report, DiagCode::kEmbeddingInfeasible));
  EXPECT_NE(find_code(report, DiagCode::kEmbeddingInfeasible)
                .message.find("coupler"),
            std::string::npos);
}

TEST(QuboPasses, EmbeddingTightWarnsBeforeInfeasible) {
  // K5 on one Chimera K_{4,4} cell: 5 of 8 qubits needed by the lower
  // bound (> 50% yield budget) but still feasible -> warning, no error.
  const Device cell = perfect_device("cell", chimera_graph(1, 1));
  AnalysisReport report;
  analyze_embedding_feasibility(complete_compiled(5), cell, {}, report);
  EXPECT_FALSE(report.has_errors()) << report.summary();
  ASSERT_TRUE(has_code(report, DiagCode::kEmbeddingTight));

  // A small problem on a big lattice is entirely clean.
  const Device roomy = perfect_device("roomy", chimera_graph(4, 4));
  AnalysisReport clean;
  analyze_embedding_feasibility(complete_compiled(3), roomy, {}, clean);
  EXPECT_TRUE(clean.empty()) << clean.summary(Severity::kNote);
}

TEST(QuboPasses, CircuitTooWideIsAnError) {
  AnalysisReport report;
  analyze_circuit_feasibility(complete_compiled(5), path_graph(3), {}, report);
  ASSERT_TRUE(has_code(report, DiagCode::kCircuitTooWide));
  EXPECT_TRUE(report.has_errors());

  AnalysisReport clean;
  analyze_circuit_feasibility(complete_compiled(3), path_graph(8), {}, clean);
  EXPECT_FALSE(has_code(clean, DiagCode::kCircuitTooWide));
}

TEST(QuboPasses, CircuitDepthBudgetWarnsOnDenseProblems) {
  // K12: 66 quadratic terms -> ~330 modeled CX at p=1, fidelity < 0.5.
  AnalysisReport report;
  analyze_circuit_feasibility(complete_compiled(12), path_graph(16), {},
                              report);
  ASSERT_TRUE(has_code(report, DiagCode::kCircuitDepthBudget));
  EXPECT_EQ(find_code(report, DiagCode::kCircuitDepthBudget).severity,
            Severity::kWarning);

  AnalysisReport clean;
  analyze_circuit_feasibility(complete_compiled(3), path_graph(8), {}, clean);
  EXPECT_TRUE(clean.empty()) << clean.summary(Severity::kNote);
}

TEST(AnalyzerFacade, HardwarePassesSkippedWhenProgramIsBroken) {
  SynthEngine engine;
  const Device device = perfect_device("cell", chimera_graph(1, 1));
  Analyzer analyzer;
  AnalysisTarget target;
  target.annealer = &device;
  const AnalysisReport report =
      analyzer.analyze(contradictory_program(), engine, target);
  EXPECT_TRUE(report.has_errors());
  // No QUBO-level diagnostics: compilation was never attempted.
  for (const auto& d : report.diagnostics()) {
    EXPECT_NE(diag_code_name(d.code)[4], 'Q');
    EXPECT_NE(diag_code_name(d.code)[4], 'C');
  }
}

TEST(AnalyzerFacade, CleanProgramOnRealTargetsStaysClean) {
  SynthEngine engine;
  Rng rng(7);
  const Device device = advantage_4_1(rng);
  const Graph coupling = heavy_hex_lattice(5);
  Analyzer analyzer;
  AnalysisTarget target;
  target.annealer = &device;
  target.coupling = &coupling;
  const AnalysisReport report =
      analyzer.analyze(clean_program(), engine, target);
  EXPECT_FALSE(report.has_errors()) << report.summary();
  EXPECT_FALSE(has_code(report, DiagCode::kEmbeddingTight));
  EXPECT_FALSE(has_code(report, DiagCode::kCircuitTooWide));
}

TEST(SolverIntegration, InfeasibleProgramRejectedWithDiagnosticCode) {
  Solver solver(42);
  for (BackendKind backend : {BackendKind::kClassical, BackendKind::kAnnealer,
                              BackendKind::kCircuit}) {
    const SolveReport report = solver.solve(contradictory_program(), backend);
    EXPECT_FALSE(report.ran);
    EXPECT_EQ(report.failure, FailureKind::kAnalysisRejected);
    EXPECT_NE(report.failure_message().find("NCK-P001"), std::string::npos)
        << backend_name(backend) << ": " << report.failure_message();
    EXPECT_TRUE(report.analysis.has_errors());
    EXPECT_EQ(report.num_samples, 0u);  // no backend work happened
  }
}

TEST(SolverIntegration, WarningsAttachToSuccessfulSolves) {
  Env env = clean_program();
  env.var("dangling");  // unused -> warning, but not an error
  Solver solver(42);
  const SolveReport report = solver.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_TRUE(report.analysis.has_code(DiagCode::kUnusedVariable));
  EXPECT_FALSE(report.analysis.has_errors());
}

TEST(SolverIntegration, CleanSolveCarriesNoDiagnostics) {
  Solver solver(42);
  const SolveReport report =
      solver.solve(clean_program(), BackendKind::kClassical);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_TRUE(report.analysis.empty())
      << report.analysis.summary(Severity::kNote);
}

// --- Unsat-core (MUS) extraction ------------------------------------------

/// Three hard constraints that are jointly unsatisfiable (a and b forced
/// TRUE, but their pair count must stay <= 1) plus one satisfiable
/// bystander that must NOT appear in the core.
Env mus_program() {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a}, {1});
  env.nck({b}, {1});
  env.nck({a, b}, {0, 1});
  env.nck({c}, {1});  // bystander
  return env;
}

TEST(UnsatCore, FeasibleProgramHasNoCore) {
  const UnsatCore core = extract_unsat_core(clean_program(), {});
  EXPECT_FALSE(core.found);
  EXPECT_TRUE(core.members.empty());
}

TEST(UnsatCore, DeletionYieldsVerifiedMinimalCore) {
  const Env env = mus_program();
  const UnsatCore core = extract_unsat_core(env, {});
  ASSERT_TRUE(core.found);
  EXPECT_EQ(core.members, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(core.verified_minimal);
  // Independently re-check minimality: the full core is infeasible and
  // every single-member deletion restores oracle feasibility.
  EXPECT_TRUE(oracle_infeasible(env, core.members, {}));
  for (std::size_t skip = 0; skip < core.members.size(); ++skip) {
    std::vector<std::size_t> without;
    for (std::size_t i = 0; i < core.members.size(); ++i) {
      if (i != skip) without.push_back(core.members[i]);
    }
    EXPECT_FALSE(oracle_infeasible(env, without, {}))
        << "core stayed infeasible without member " << core.members[skip];
  }
}

TEST(UnsatCore, DisjointPairShrinksToThePair) {
  Env env = contradictory_program();
  env.nck({env.var("a")}, {0, 1});  // tautology bystander
  const UnsatCore core = extract_unsat_core(env, {});
  ASSERT_TRUE(core.found);
  EXPECT_EQ(core.members, (std::vector<std::size_t>{0, 1}));
}

TEST(UnsatCore, P009NoteRefinesInfeasibilityErrors) {
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(mus_program());
  ASSERT_TRUE(has_code(report, DiagCode::kInfeasibleByPropagation));
  ASSERT_TRUE(has_code(report, DiagCode::kUnsatCore));
  const Diagnostic& d = find_code(report, DiagCode::kUnsatCore);
  EXPECT_EQ(d.severity, Severity::kNote);
  EXPECT_EQ(d.location.kind, DiagLocation::Kind::kConstraintSet);
  EXPECT_EQ(d.location.indices, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_NE(d.message.find("minimality re-verified"), std::string::npos);
}

TEST(UnsatCore, NoNoteOnFeasiblePrograms) {
  Analyzer analyzer;
  const AnalysisReport report = analyzer.analyze(clean_program());
  EXPECT_FALSE(has_code(report, DiagCode::kUnsatCore));
}

// --- NCK-P008 synthesis-budget pre-check ----------------------------------

/// Non-contiguous selection over `n` distinct variables (count 0 or n, i.e.
/// all-equal), which no closed form covers.
Env wide_noncontiguous(std::size_t n) {
  Env env;
  std::vector<VarId> vars = env.new_vars(n, "x");
  env.nck(vars, {0u, static_cast<unsigned>(n)});
  return env;
}

TEST(SynthBudget, ErrorWhenWidthExceedsBudget) {
  Analyzer analyzer;
  analyzer.options().program.synth_var_budget = 8;
  const AnalysisReport report = analyzer.analyze(wide_noncontiguous(9));
  ASSERT_TRUE(has_code(report, DiagCode::kSynthBudgetExceeded));
  EXPECT_EQ(find_code(report, DiagCode::kSynthBudgetExceeded).severity,
            Severity::kError);
}

TEST(SynthBudget, WarningAtExactBudget) {
  Analyzer analyzer;
  analyzer.options().program.synth_var_budget = 8;
  const AnalysisReport report = analyzer.analyze(wide_noncontiguous(8));
  ASSERT_TRUE(has_code(report, DiagCode::kSynthBudgetExceeded));
  EXPECT_EQ(find_code(report, DiagCode::kSynthBudgetExceeded).severity,
            Severity::kWarning);
}

TEST(SynthBudget, ContiguousWideConstraintsBypassTheBudget) {
  // A 9-variable at-least-one has a closed form regardless of budget...
  Env env;
  env.at_least(env.new_vars(9, "x"), 1);
  Analyzer analyzer;
  analyzer.options().program.synth_var_budget = 8;
  EXPECT_FALSE(
      has_code(analyzer.analyze(env), DiagCode::kSynthBudgetExceeded));
  // ...but only while the closed-form path is actually enabled.
  analyzer.options().program.synth_builtin = false;
  EXPECT_TRUE(
      has_code(analyzer.analyze(env), DiagCode::kSynthBudgetExceeded));
}

TEST(SynthBudget, BudgetIsSkippedWithoutEngineContext) {
  Analyzer analyzer;  // default: synth_var_budget == 0 -> pass disabled
  EXPECT_FALSE(has_code(analyzer.analyze(wide_noncontiguous(12)),
                        DiagCode::kSynthBudgetExceeded));
}

TEST(SynthBudget, EngineBudgetFlowsIntoHardwareAnalysis) {
  // 11 distinct variables exceed both documented general budgets (Z3: 10,
  // LP: 8), so the engine-aware overload must flag the program no matter
  // which general synthesizer this build carries.
  SynthEngine engine;
  EXPECT_GE(engine.general_var_budget(), 8u);
  EXPECT_LE(engine.general_var_budget(), 10u);
  EXPECT_TRUE(engine.builtin_enabled());
  Analyzer analyzer;
  const AnalysisReport report =
      analyzer.analyze(wide_noncontiguous(11), engine, AnalysisTarget{});
  ASSERT_TRUE(has_code(report, DiagCode::kSynthBudgetExceeded));
  EXPECT_TRUE(report.has_errors());
}

// --- Semantic QUBO certification ------------------------------------------

/// Perturbs one coefficient of `synth` beyond the gap so the certified
/// ground-state equivalence must break: if some satisfying assignment sets
/// x0, lowering x0's linear weight by 2*gap drags a valid ground below 0;
/// otherwise every satisfying assignment avoids x0 and shifting the offset
/// up by 2*gap lifts all valid grounds off 0.
SynthesizedQubo mutate_beyond_gap(const ConstraintPattern& pattern,
                                  const SynthesizedQubo& synth) {
  SynthesizedQubo mutated = synth;
  bool valid_sets_x0 = false;
  for (std::uint32_t xb = 0; xb < (1u << synth.num_vars); ++xb) {
    valid_sets_x0 = valid_sets_x0 || ((xb & 1u) && pattern.satisfied(xb));
  }
  if (valid_sets_x0) {
    mutated.qubo.add_linear(0, -2.0 * synth.gap);
  } else {
    mutated.qubo.add_offset(2.0 * synth.gap);
  }
  return mutated;
}

TEST(Certify, AcceptsEngineSynthesesAndRejectsMutants) {
  // Property sweep: every nck over <= 5 distinct variables with a random
  // selection set. The certifier must accept the engine's QUBO and reject
  // a single-coefficient perturbation beyond the gap.
  SynthEngine engine;
  Rng rng(20260806);
  std::size_t certified = 0;
  for (std::size_t n = 1; n <= 5; ++n) {
    for (int trial = 0; trial < 8; ++trial) {
      std::set<unsigned> selection;
      for (unsigned k = 0; k <= n; ++k) {
        if (rng.bernoulli(0.4)) selection.insert(k);
      }
      if (selection.empty()) {
        selection.insert(static_cast<unsigned>(rng.below(n + 1)));
      }
      Env env;
      const Constraint c(env.new_vars(n, "x"), selection,
                         ConstraintKind::kHard);
      const ConstraintPattern pattern = c.pattern();
      const SynthesizedQubo synth = engine.synthesize(pattern);
      const ConstraintCertificate cert = certify_synthesis(pattern, synth);
      ASSERT_TRUE(cert.ok) << "n=" << n << " method=" << synth.method << ": "
                           << cert.error;
      EXPECT_GE(cert.observed_gap, synth.gap - 1e-6);
      EXPECT_LE(cert.worst_valid_ground, 1e-6);

      const ConstraintCertificate broken =
          certify_synthesis(pattern, mutate_beyond_gap(pattern, synth));
      EXPECT_FALSE(broken.ok) << "n=" << n << " mutation went undetected";
      ++certified;
    }
  }
  EXPECT_EQ(certified, 40u);
}

TEST(Certify, MultiplicityPatternsCertify) {
  SynthEngine engine;
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  const std::vector<Constraint> cases = {
      Constraint({a, a, b}, {1, 2}, ConstraintKind::kHard),
      Constraint({a, a, b, b}, {2}, ConstraintKind::kHard),
      Constraint({a, b, c}, {0, 2}, ConstraintKind::kHard),  // XOR (Eq. 3)
  };
  for (const Constraint& cons : cases) {
    const ConstraintPattern pattern = cons.pattern();
    const SynthesizedQubo synth = engine.synthesize(pattern);
    const ConstraintCertificate cert = certify_synthesis(pattern, synth);
    EXPECT_TRUE(cert.ok) << cons.to_string() << ": " << cert.error;
    const ConstraintCertificate broken =
        certify_synthesis(pattern, mutate_beyond_gap(pattern, synth));
    EXPECT_FALSE(broken.ok) << cons.to_string();
  }
}

TEST(Certify, ProgramCertificateMatchesCompile) {
  // The interval-propagated program bounds must agree with what compile()
  // actually computes for the same program.
  SynthEngine engine;
  const Env env = clean_program();
  const ProgramCertificate cert = certify_program(env, engine);
  ASSERT_TRUE(cert.ok);
  EXPECT_EQ(cert.constraints.size(), 6u);
  const CompiledQubo compiled = compile(env, engine);
  EXPECT_DOUBLE_EQ(cert.max_soft_energy, compiled.max_soft_energy);
  EXPECT_DOUBLE_EQ(cert.hard_scale, compiled.hard_scale);

  const std::string json = cert.to_json();
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"observed_gap\":"), std::string::npos);
  EXPECT_NE(json.find("\"hard_scale\":"), std::string::npos);
}

TEST(CertifySolver, PaperWorkloadStaysSilentAndSuppressesP007) {
  // The paper's vertex-cover workload with the default margin: certification
  // proves dominance, so no V* fires — and the heuristic P007 yields to it.
  Env env = clean_program();
  Solver solver(42);
  solver.solve_options().certify = true;
  const SolveReport report = solver.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(report.ran) << report.failure_message();
  ASSERT_TRUE(report.certificate.has_value());
  EXPECT_TRUE(report.certificate->ok);
  EXPECT_TRUE(report.analysis.empty())
      << report.analysis.summary(Severity::kNote);
  EXPECT_FALSE(has_code(report.analysis, DiagCode::kScaleSeparation));
}

TEST(CertifySolver, ZeroMarginProgramRejectedWithV001) {
  // hard_margin = 0 makes each scaled hard gap exactly equal the
  // soft-energy bound: a soft-drowned optimum is possible, and the sound
  // dominance check must reject the program before any backend runs.
  Solver solver(42);
  solver.solve_options().certify = true;
  solver.solve_options().certify_options.hard_margin = 0.0;
  const SolveReport report =
      solver.solve(clean_program(), BackendKind::kClassical);
  EXPECT_FALSE(report.ran);
  EXPECT_EQ(report.failure, FailureKind::kAnalysisRejected);
  ASSERT_TRUE(has_code(report.analysis, DiagCode::kGapDominatedBySoft));
  EXPECT_NE(report.failure_message().find("NCK-V001"), std::string::npos);
}

TEST(CertifySolver, ThinMarginWarnsWithV002ButRuns) {
  Solver solver(42);
  solver.solve_options().certify = true;
  solver.solve_options().certify_options.hard_margin = 1e-4;
  const SolveReport report =
      solver.solve(clean_program(), BackendKind::kClassical);
  ASSERT_TRUE(report.ran) << report.failure_message();
  ASSERT_TRUE(has_code(report.analysis, DiagCode::kGapMarginThin));
  EXPECT_EQ(find_code(report.analysis, DiagCode::kGapMarginThin).severity,
            Severity::kWarning);
}

TEST(CertifySolver, HeuristicP007ReplacedBySoundV002) {
  // Enough softs that the P007 heuristic fires on a plain solve; under
  // certification the same program gets the sound V002 margin warning
  // instead, derived from certified gaps rather than a soft-count guess.
  Env env;
  const auto vars = env.new_vars(34, "x");
  env.at_least({vars[0], vars[1]}, 1);
  for (VarId v : vars) env.prefer_false(v);

  Solver plain(42);
  const SolveReport heuristic = plain.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(heuristic.ran) << heuristic.failure_message();
  EXPECT_TRUE(has_code(heuristic.analysis, DiagCode::kScaleSeparation));

  Solver certifying(42);
  certifying.solve_options().certify = true;
  const SolveReport sound = certifying.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(sound.ran) << sound.failure_message();
  EXPECT_FALSE(has_code(sound.analysis, DiagCode::kScaleSeparation));
  EXPECT_TRUE(has_code(sound.analysis, DiagCode::kGapMarginThin));
}

TEST(CertifySolver, WarmCertifyDoesZeroReEnumeration) {
  Env env = clean_program();
  Solver solver(42);
  solver.solve_options().certify = true;

  const SolveReport cold = solver.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(cold.ran) << cold.failure_message();
  EXPECT_DOUBLE_EQ(cold.trace.counter("certify.constraints_enumerated"), 6.0);
  EXPECT_DOUBLE_EQ(cold.trace.counter("certify.cache_hits"), 0.0);

  const SolveReport warm = solver.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(warm.ran) << warm.failure_message();
  // The artifact came back from the content-addressed plan cache: the
  // V-diagnostics re-derive by pure arithmetic, enumerating nothing.
  EXPECT_DOUBLE_EQ(warm.trace.counter("certify.constraints_enumerated"), 0.0);
  EXPECT_DOUBLE_EQ(warm.trace.counter("certify.cache_hits"), 1.0);
  ASSERT_TRUE(warm.certificate.has_value());
  EXPECT_TRUE(warm.certificate->ok);
  EXPECT_EQ(warm.certificate->constraints.size(),
            cold.certificate->constraints.size());
  EXPECT_DOUBLE_EQ(warm.certificate->hard_scale, cold.certificate->hard_scale);
}

TEST(CertifySolver, DifferentMarginsDoNotShareCachedCertificates) {
  Env env = clean_program();
  Solver solver(42);
  solver.solve_options().certify = true;
  const SolveReport first = solver.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(first.ran);
  // A different margin changes the artifact, so it must be a cache miss —
  // recalling the old certificate would report the wrong hard_scale.
  solver.solve_options().certify_options.hard_margin = 2.0;
  const SolveReport second = solver.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(second.ran);
  EXPECT_DOUBLE_EQ(second.trace.counter("certify.cache_hits"), 0.0);
  EXPECT_DOUBLE_EQ(second.certificate->hard_scale, 5.0);  // S_max 3 + 2
}

}  // namespace
}  // namespace nck
