#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "problems/max_cut.hpp"
#include "problems/vertex_cover.hpp"
#include "runtime/result.hpp"
#include "runtime/solver.hpp"

namespace nck {
namespace {

Graph paper_graph() {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  return g;
}

TEST(Classify, Definition8Semantics) {
  GroundTruth truth{true, 3};
  Evaluation optimal{0, 3, 5};
  Evaluation suboptimal{0, 2, 5};
  Evaluation incorrect{1, 3, 5};
  EXPECT_EQ(classify(optimal, truth), Quality::kOptimal);
  EXPECT_EQ(classify(suboptimal, truth), Quality::kSuboptimal);
  EXPECT_EQ(classify(incorrect, truth), Quality::kIncorrect);
  EXPECT_STREQ(quality_name(Quality::kOptimal), "optimal");
}

TEST(Classify, HardOnlyProgramsHaveNoSuboptimal) {
  // With zero soft constraints, every feasible assignment is optimal.
  GroundTruth truth{true, 0};
  EXPECT_EQ(classify({0, 0, 0}, truth), Quality::kOptimal);
  EXPECT_EQ(classify({2, 0, 0}, truth), Quality::kIncorrect);
}

TEST(Classify, CountsAggregate) {
  GroundTruth truth{true, 2};
  std::vector<Evaluation> evals{{0, 2, 3}, {0, 1, 3}, {1, 0, 3}, {0, 2, 3}};
  const QualityCounts counts = classify_all(evals, truth);
  EXPECT_EQ(counts.optimal, 2u);
  EXPECT_EQ(counts.suboptimal, 1u);
  EXPECT_EQ(counts.incorrect, 1u);
  EXPECT_DOUBLE_EQ(counts.fraction_optimal(), 0.5);
  EXPECT_DOUBLE_EQ(counts.fraction_correct(), 0.75);
  EXPECT_TRUE(counts.any_optimal());
}

TEST(GroundTruthTest, ComputedFromExactSolver) {
  const VertexCoverProblem p{paper_graph()};
  const GroundTruth truth = ground_truth(p.encode());
  EXPECT_TRUE(truth.feasible);
  EXPECT_EQ(truth.best_soft_satisfied, 2u);  // min cover 3 of 5 vertices
}

TEST(SolverFacade, ClassicalBackendIsAlwaysOptimal) {
  Solver solver(42);
  const VertexCoverProblem p{paper_graph()};
  const SolveReport report = solver.solve(p.encode(), BackendKind::kClassical);
  ASSERT_TRUE(report.ran);
  EXPECT_EQ(report.best_quality, Quality::kOptimal);
  EXPECT_TRUE(p.verify(report.best_assignment));
}

TEST(SolverFacade, InfeasibleProgramReported) {
  Env env;
  const auto v = env.new_vars(3, "v");
  env.different(v[0], v[1]);
  env.different(v[0], v[2]);
  env.different(v[1], v[2]);
  Solver solver(42);
  const SolveReport report = solver.solve(env, BackendKind::kClassical);
  EXPECT_FALSE(report.ran);
  EXPECT_EQ(report.failure, FailureKind::kInfeasible);
  EXPECT_FALSE(report.failure_message().empty());
}

TEST(SolverFacade, AnnealerBackendRunsSmallProblem) {
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 40;
  const MaxCutProblem p{cycle_graph(5)};
  const SolveReport report = solver.solve(p.encode(), BackendKind::kAnnealer);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_GE(report.qubits_used, 5u);
  EXPECT_EQ(report.num_samples, 40u);
  // D-Wave success criterion: some read should reach the max cut of 4.
  EXPECT_TRUE(report.counts.any_optimal());
  // Timing model: ~30 ms of QPU access for a small job (40 reads here).
  EXPECT_GT(report.backend_seconds, 0.01);
  EXPECT_LT(report.backend_seconds, 0.1);
}

TEST(SolverFacade, CircuitBackendRunsSmallProblem) {
  Solver solver(42);
  solver.circuit_options().qaoa.shots = 800;
  const MaxCutProblem p{cycle_graph(4)};
  const SolveReport report = solver.solve(p.encode(), BackendKind::kCircuit);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_EQ(report.qubits_used, 4u);
  EXPECT_GT(report.circuit_depth, 0u);
  EXPECT_GT(report.backend_seconds, 100.0);  // ~500 s of modeled server time
}

TEST(SolverFacade, ZeroReadsFailsSoftNotUndefined) {
  // Regression: num_reads == 0 produced an empty sample vector and the
  // solver indexed samples[best_idx] anyway (undefined behavior). Entry
  // validation now rejects it before any backend work.
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 0;
  const MaxCutProblem p{cycle_graph(4)};
  const SolveReport report = solver.solve(p.encode(), BackendKind::kAnnealer);
  EXPECT_FALSE(report.ran);
  EXPECT_EQ(report.failure, FailureKind::kBadOptions);
  EXPECT_NE(report.failure_message().find("num_reads"), std::string::npos)
      << report.failure_message();
  EXPECT_TRUE(report.best_assignment.empty());
}

TEST(SolverFacade, ZeroShotsFailsSoftNotUndefined) {
  // Same regression on the circuit path: shots == 0 hit
  // samples.front() / evaluations.front() on empty vectors.
  Solver solver(42);
  solver.circuit_options().qaoa.shots = 0;
  const MaxCutProblem p{cycle_graph(4)};
  const SolveReport report = solver.solve(p.encode(), BackendKind::kCircuit);
  EXPECT_FALSE(report.ran);
  EXPECT_EQ(report.failure, FailureKind::kBadOptions);
  EXPECT_NE(report.failure_message().find("shots"), std::string::npos)
      << report.failure_message();
  EXPECT_TRUE(report.best_assignment.empty());
}

TEST(SolverFacade, SameProgramAcrossAllThreeBackends) {
  // The paper's portability claim: one program, three execution targets.
  Solver solver(7);
  solver.annealer_options().sampler.num_reads = 30;
  solver.circuit_options().qaoa.shots = 600;
  const VertexCoverProblem p{path_graph(4)};
  const Env env = p.encode();
  for (BackendKind backend : {BackendKind::kClassical, BackendKind::kAnnealer,
                              BackendKind::kCircuit}) {
    const SolveReport report = solver.solve(env, backend);
    ASSERT_TRUE(report.ran) << backend_name(backend) << ": "
                            << report.failure_message();
    EXPECT_TRUE(p.verify(report.best_assignment))
        << backend_name(backend) << " returned a non-cover";
  }
}

}  // namespace
}  // namespace nck
