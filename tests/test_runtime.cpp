#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "backend/fingerprint.hpp"
#include "graph/generators.hpp"
#include "problems/max_cut.hpp"
#include "problems/vertex_cover.hpp"
#include "runtime/result.hpp"
#include "runtime/solver.hpp"

namespace nck {
namespace {

Graph paper_graph() {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  return g;
}

TEST(Classify, Definition8Semantics) {
  GroundTruth truth{true, 3};
  Evaluation optimal{0, 3, 5};
  Evaluation suboptimal{0, 2, 5};
  Evaluation incorrect{1, 3, 5};
  EXPECT_EQ(classify(optimal, truth), Quality::kOptimal);
  EXPECT_EQ(classify(suboptimal, truth), Quality::kSuboptimal);
  EXPECT_EQ(classify(incorrect, truth), Quality::kIncorrect);
  EXPECT_STREQ(quality_name(Quality::kOptimal), "optimal");
}

TEST(Classify, HardOnlyProgramsHaveNoSuboptimal) {
  // With zero soft constraints, every feasible assignment is optimal.
  GroundTruth truth{true, 0};
  EXPECT_EQ(classify({0, 0, 0}, truth), Quality::kOptimal);
  EXPECT_EQ(classify({2, 0, 0}, truth), Quality::kIncorrect);
}

TEST(Classify, CountsAggregate) {
  GroundTruth truth{true, 2};
  std::vector<Evaluation> evals{{0, 2, 3}, {0, 1, 3}, {1, 0, 3}, {0, 2, 3}};
  const QualityCounts counts = classify_all(evals, truth);
  EXPECT_EQ(counts.optimal, 2u);
  EXPECT_EQ(counts.suboptimal, 1u);
  EXPECT_EQ(counts.incorrect, 1u);
  EXPECT_DOUBLE_EQ(counts.fraction_optimal(), 0.5);
  EXPECT_DOUBLE_EQ(counts.fraction_correct(), 0.75);
  EXPECT_TRUE(counts.any_optimal());
}

TEST(GroundTruthTest, ComputedFromExactSolver) {
  const VertexCoverProblem p{paper_graph()};
  const GroundTruth truth = ground_truth(p.encode());
  EXPECT_TRUE(truth.feasible);
  EXPECT_EQ(truth.best_soft_satisfied, 2u);  // min cover 3 of 5 vertices
}

TEST(SolverFacade, ClassicalBackendIsAlwaysOptimal) {
  Solver solver(42);
  const VertexCoverProblem p{paper_graph()};
  const SolveReport report = solver.solve(p.encode(), BackendKind::kClassical);
  ASSERT_TRUE(report.ran);
  EXPECT_EQ(report.best_quality, Quality::kOptimal);
  EXPECT_TRUE(p.verify(report.best_assignment));
}

TEST(SolverFacade, InfeasibleProgramReported) {
  Env env;
  const auto v = env.new_vars(3, "v");
  env.different(v[0], v[1]);
  env.different(v[0], v[2]);
  env.different(v[1], v[2]);
  Solver solver(42);
  const SolveReport report = solver.solve(env, BackendKind::kClassical);
  EXPECT_FALSE(report.ran);
  EXPECT_EQ(report.failure, FailureKind::kInfeasible);
  EXPECT_FALSE(report.failure_message().empty());
}

TEST(SolverFacade, AnnealerBackendRunsSmallProblem) {
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 40;
  const MaxCutProblem p{cycle_graph(5)};
  const SolveReport report = solver.solve(p.encode(), BackendKind::kAnnealer);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_GE(report.qubits_used, 5u);
  EXPECT_EQ(report.num_samples, 40u);
  // D-Wave success criterion: some read should reach the max cut of 4.
  EXPECT_TRUE(report.counts.any_optimal());
  // Timing model: ~30 ms of QPU access for a small job (40 reads here).
  EXPECT_GT(report.backend_seconds, 0.01);
  EXPECT_LT(report.backend_seconds, 0.1);
}

TEST(SolverFacade, CircuitBackendRunsSmallProblem) {
  Solver solver(42);
  solver.circuit_options().qaoa.shots = 800;
  const MaxCutProblem p{cycle_graph(4)};
  const SolveReport report = solver.solve(p.encode(), BackendKind::kCircuit);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_EQ(report.qubits_used, 4u);
  EXPECT_GT(report.circuit_depth, 0u);
  EXPECT_GT(report.backend_seconds, 100.0);  // ~500 s of modeled server time
}

TEST(SolverFacade, ZeroReadsFailsSoftNotUndefined) {
  // Regression: num_reads == 0 produced an empty sample vector and the
  // solver indexed samples[best_idx] anyway (undefined behavior). Entry
  // validation now rejects it before any backend work.
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 0;
  const MaxCutProblem p{cycle_graph(4)};
  const SolveReport report = solver.solve(p.encode(), BackendKind::kAnnealer);
  EXPECT_FALSE(report.ran);
  EXPECT_EQ(report.failure, FailureKind::kBadOptions);
  EXPECT_NE(report.failure_message().find("num_reads"), std::string::npos)
      << report.failure_message();
  EXPECT_TRUE(report.best_assignment.empty());
}

TEST(SolverFacade, ZeroShotsFailsSoftNotUndefined) {
  // Same regression on the circuit path: shots == 0 hit
  // samples.front() / evaluations.front() on empty vectors.
  Solver solver(42);
  solver.circuit_options().qaoa.shots = 0;
  const MaxCutProblem p{cycle_graph(4)};
  const SolveReport report = solver.solve(p.encode(), BackendKind::kCircuit);
  EXPECT_FALSE(report.ran);
  EXPECT_EQ(report.failure, FailureKind::kBadOptions);
  EXPECT_NE(report.failure_message().find("shots"), std::string::npos)
      << report.failure_message();
  EXPECT_TRUE(report.best_assignment.empty());
}

// ------------------------------------------ backend / plan-cache layering

TEST(SolveDeterminism, RejectedAttemptsDoNotPerturbTheSampleStream) {
  const Env env = MaxCutProblem{cycle_graph(5)}.encode();

  Solver bumpy(123);
  bumpy.annealer_options().sampler.num_reads = 25;
  ResilienceOptions rough;
  rough.faults = FaultPlan::parse("reject@1,reject@2,reject@3");
  rough.retry.max_retries = 3;
  rough.retry.backoff_initial_ms = 1.0;
  bumpy.resilience_options() = rough;

  Solver clean(123);
  clean.annealer_options().sampler.num_reads = 25;
  clean.resilience_options() = ResilienceOptions{};  // explicit: no faults

  const SolveReport a = bumpy.solve(env, BackendKind::kAnnealer);
  const SolveReport b = clean.solve(env, BackendKind::kAnnealer);
  ASSERT_TRUE(a.ran) << a.failure_message();
  ASSERT_TRUE(b.ran) << b.failure_message();
  EXPECT_EQ(a.resilience.attempts.size(), 4u);  // 3 rejections + success
  // The regression this pins down: a solve preceded by rejected attempts
  // must sample exactly like a clean solve (neither the fault gates nor
  // the backoff jitter may advance the sample stream).
  EXPECT_EQ(a.best_assignment, b.best_assignment);
  EXPECT_EQ(a.best_quality, b.best_quality);
  EXPECT_EQ(a.num_samples, b.num_samples);
  EXPECT_EQ(a.counts.optimal, b.counts.optimal);
  EXPECT_EQ(a.counts.suboptimal, b.counts.suboptimal);
  EXPECT_EQ(a.counts.incorrect, b.counts.incorrect);
}

TEST(ChainDedupe, DuplicateRungsDiagnosedOnce) {
  // complete_graph(10) max-cut has 45 quadratic terms: enough modeled CX
  // gates to fire the NCK-C002 fidelity warning on every circuit rung.
  const Env env = MaxCutProblem{complete_graph(10)}.encode();
  Solver solver(42);
  ResilienceOptions opts;
  // The circuit rung appears twice, non-consecutively; entry dedupe must
  // collapse the chain to [classical, circuit] before analysis.
  opts.fallback = std::vector<BackendKind>{
      BackendKind::kCircuit, BackendKind::kClassical, BackendKind::kCircuit};
  solver.resilience_options() = opts;

  const SolveReport report = solver.solve(env, BackendKind::kClassical);
  ASSERT_TRUE(report.ran) << report.failure_message();
  std::size_t depth_warnings = 0;
  for (const Diagnostic& d : report.analysis.diagnostics()) {
    if (d.code == DiagCode::kCircuitDepthBudget) ++depth_warnings;
  }
  EXPECT_EQ(depth_warnings, 1u)
      << "duplicate fallback rungs must not duplicate diagnostics";
}

TEST(PlanCacheIntegration, WarmSolveSkipsPreparation) {
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 20;
  const Env env = MaxCutProblem{cycle_graph(5)}.encode();

  const SolveReport cold = solver.solve(env, BackendKind::kAnnealer);
  ASSERT_TRUE(cold.ran) << cold.failure_message();
  EXPECT_GE(cold.trace.counter("plan_cache.miss"), 1.0);
  EXPECT_NE(cold.trace.find_span("compile"), nullptr);
  EXPECT_NE(cold.trace.find_span("embed"), nullptr);

  // Second solve of the same program: the plan (QUBO synthesis + minor
  // embedding) is served from the cache — no compile span, no embed span,
  // zero misses — while sampling still runs.
  const SolveReport warm = solver.solve(env, BackendKind::kAnnealer);
  ASSERT_TRUE(warm.ran) << warm.failure_message();
  EXPECT_DOUBLE_EQ(warm.trace.counter("plan_cache.miss"), 0.0);
  EXPECT_GE(warm.trace.counter("plan_cache.hit"), 1.0);
  EXPECT_EQ(warm.trace.find_span("compile"), nullptr);
  EXPECT_EQ(warm.trace.find_span("embed"), nullptr);
  EXPECT_NE(warm.trace.find_span("anneal.sample"), nullptr);
  EXPECT_EQ(warm.num_samples, 20u);
  EXPECT_GE(solver.plan_cache().stats().hits, 1u);
}

TEST(PlanCacheIntegration, ExecuteOnlyOptionChangesStillHit) {
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 20;
  const Env env = MaxCutProblem{cycle_graph(5)}.encode();
  ASSERT_TRUE(solver.solve(env, BackendKind::kAnnealer).ran);

  // Shots and noise are execute-only: the cached embedding is reused.
  solver.annealer_options().sampler.num_reads = 10;
  solver.annealer_options().sampler.ice_sigma += 0.01;
  const SolveReport warm = solver.solve(env, BackendKind::kAnnealer);
  ASSERT_TRUE(warm.ran) << warm.failure_message();
  EXPECT_DOUBLE_EQ(warm.trace.counter("plan_cache.miss"), 0.0);
  EXPECT_EQ(warm.num_samples, 10u);

  // chain_strength feeds the embedded Ising model: prepare-relevant, so
  // changing it must re-prepare.
  solver.annealer_options().chain_strength += 0.5;
  const SolveReport re = solver.solve(env, BackendKind::kAnnealer);
  ASSERT_TRUE(re.ran) << re.failure_message();
  EXPECT_GE(re.trace.counter("plan_cache.miss"), 1.0);
}

struct StubPlan final : backend::Plan {
  Env env;
  std::size_t bytes() const noexcept override { return sizeof(Env); }
};

/// Minimal custom backend: answers every program with all-true. Replaces
/// the builtin circuit adapter (latest registration wins) to prove the
/// solve loop is driven by the registry, not a kind switch.
class StubBackend final : public backend::Backend {
 public:
  BackendKind kind() const noexcept override { return BackendKind::kCircuit; }
  const char* name() const noexcept override { return "stub"; }
  bool validate(std::string* why) const override {
    (void)why;
    return true;
  }
  AnalysisTarget analysis_target() const noexcept override { return {}; }
  backend::Fingerprint plan_key(
      const backend::PrepareContext& ctx) const override {
    backend::Fingerprint fp;
    fp.mix(std::string("stub"));
    backend::mix_env(fp, *ctx.env);
    return fp;
  }
  backend::PrepareOutcome prepare(
      const backend::PrepareContext& ctx) const override {
    auto plan = std::make_shared<StubPlan>();
    plan->env = *ctx.env;
    backend::PrepareOutcome outcome;
    outcome.plan = std::move(plan);
    return outcome;
  }
  backend::ExecutionResult execute(const backend::Plan& plan,
                                   backend::ExecuteContext& ctx) const override {
    (void)ctx;
    const auto& stub = static_cast<const StubPlan&>(plan);
    backend::ExecutionResult result;
    std::vector<bool> all_true(stub.env.num_vars(), true);
    result.single_answer = true;
    result.evaluations.push_back(stub.env.evaluate(all_true));
    result.samples.push_back(std::move(all_true));
    return result;
  }
  backend::Budget initial_budget(
      const backend::SampleFloors& floors) const noexcept override {
    (void)floors;
    return {1, 0, 1, 0};
  }
};

TEST(BackendRegistry, CustomBackendReplacesBuiltin) {
  Solver solver(42);
  solver.backends().add(std::make_unique<StubBackend>());
  const Env env = MaxCutProblem{cycle_graph(5)}.encode();
  const SolveReport report = solver.solve(env, BackendKind::kCircuit);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_EQ(report.backend, BackendKind::kCircuit);
  // all-true cuts no edge of the 5-cycle: feasible but suboptimal — the
  // answer only the stub would give.
  EXPECT_EQ(report.best_quality, Quality::kSuboptimal);
  EXPECT_NE(report.trace.find_span("stub"), nullptr);
  EXPECT_EQ(report.trace.find_span("circuit"), nullptr);
}

TEST(SolverFacade, SameProgramAcrossAllThreeBackends) {
  // The paper's portability claim: one program, three execution targets.
  Solver solver(7);
  solver.annealer_options().sampler.num_reads = 30;
  solver.circuit_options().qaoa.shots = 600;
  const VertexCoverProblem p{path_graph(4)};
  const Env env = p.encode();
  for (BackendKind backend : {BackendKind::kClassical, BackendKind::kAnnealer,
                              BackendKind::kCircuit}) {
    const SolveReport report = solver.solve(env, backend);
    ASSERT_TRUE(report.ran) << backend_name(backend) << ": "
                            << report.failure_message();
    EXPECT_TRUE(p.verify(report.best_assignment))
        << backend_name(backend) << " returned a non-cover";
  }
}

}  // namespace
}  // namespace nck
