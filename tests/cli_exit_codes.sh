#!/usr/bin/env bash
# Exit-code contract of `nck_cli lint` / `nck_cli certify` / `nck_cli
# simplify`:
#   0  no error-severity diagnostic (simplify: sound, possibly identity,
#      reduction)
#   1  error diagnostics / program provably broken (simplify: presolve
#      proved unsat, or the reduction failed equivalence certification)
#   2  the analysis could not run (unreadable/unparsable input, bad usage)
# Run by ctest as: cli_exit_codes.sh <path-to-nck_cli>
set -u

CLI="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cat > "$TMP/clean.nck" <<'EOF'
nck({a, b}, {1, 2}) /\ nck({a, c}, {1, 2}) /\ nck({b, c}, {1, 2})
nck({a}, {0}, soft) nck({b}, {0}, soft) nck({c}, {0}, soft)
EOF

cat > "$TMP/broken.nck" <<'EOF'
# same collection, disjoint selections: provably unsatisfiable (NCK-P001)
nck({a, b}, {2}) /\ nck({a, b}, {0})
EOF

cat > "$TMP/garbage.nck" <<'EOF'
this is not an nck program
EOF

fails=0
expect() {
  local want="$1"
  local desc="$2"
  shift 2
  "$@" > "$TMP/out" 2> "$TMP/err"
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $desc: expected exit $want, got $got" >&2
    sed 's/^/  stdout: /' "$TMP/out" >&2
    sed 's/^/  stderr: /' "$TMP/err" >&2
    fails=$((fails + 1))
  else
    echo "ok: $desc (exit $got)"
  fi
}

expect 0 "lint clean program"            "$CLI" lint "$TMP/clean.nck"
expect 1 "lint broken program"           "$CLI" lint "$TMP/broken.nck"
expect 2 "lint unreadable file"          "$CLI" lint "$TMP/missing.nck"
expect 2 "lint unparsable program"       "$CLI" lint "$TMP/garbage.nck"
expect 2 "lint bad usage"                "$CLI" lint
expect 0 "certify clean program"         "$CLI" certify "$TMP/clean.nck"
expect 0 "certify clean program (json)"  "$CLI" certify --json "$TMP/clean.nck"
expect 1 "certify broken program"        "$CLI" certify "$TMP/broken.nck"
expect 1 "certify drowned gaps (V001)"   "$CLI" certify --hard-margin=0 "$TMP/clean.nck"
expect 2 "certify unreadable file"       "$CLI" certify "$TMP/missing.nck"
expect 2 "certify unparsable program"    "$CLI" certify "$TMP/garbage.nck"
expect 2 "certify bad usage"             "$CLI" certify

cat > "$TMP/reducible.nck" <<'EOF'
# unit veto pins b FALSE; presolve substitutes it away
nck({a, b}, {0, 1}) /\ nck({b}, {0})
nck({a}, {1}, soft)
EOF

expect 0 "simplify clean program"        "$CLI" simplify "$TMP/clean.nck"
expect 0 "simplify reducible program"    "$CLI" simplify "$TMP/reducible.nck"
expect 1 "simplify unsat program"        "$CLI" simplify "$TMP/broken.nck"
expect 2 "simplify unreadable file"      "$CLI" simplify "$TMP/missing.nck"
expect 2 "simplify unparsable program"   "$CLI" simplify "$TMP/garbage.nck"
expect 2 "simplify bad usage"            "$CLI" simplify
expect 2 "simplify empty emit path"      "$CLI" simplify --emit= "$TMP/clean.nck"

# simplify --emit writes a reduced program this tool itself can lint, and
# --json records matching original/reduced ground truths.
expect 0 "simplify --emit reduced form"  "$CLI" simplify --emit="$TMP/reduced.nck" "$TMP/reducible.nck"
expect 0 "lint emitted reduced form"     "$CLI" lint "$TMP/reduced.nck"
"$CLI" simplify --json "$TMP/reducible.nck" > "$TMP/simplify.json"
if ! grep -q '"changed":true' "$TMP/simplify.json" ||
   ! grep -q '"verification":{"checked":true,"ok":true' "$TMP/simplify.json" ||
   ! grep -q '"truth":{"checked":true' "$TMP/simplify.json"; then
  echo "FAIL: simplify --json document missing reduction/verdict/truth keys" >&2
  fails=$((fails + 1))
else
  echo "ok: simplify --json document shape"
fi

# The certify --json document must carry both the artifact and the report.
"$CLI" certify --json "$TMP/clean.nck" > "$TMP/cert.json"
if ! grep -q '"certificate":{"ok":true' "$TMP/cert.json" ||
   ! grep -q '"report":{"diagnostics":' "$TMP/cert.json"; then
  echo "FAIL: certify --json document missing certificate/report keys" >&2
  fails=$((fails + 1))
else
  echo "ok: certify --json document shape"
fi

if [ "$fails" -ne 0 ]; then
  echo "$fails case(s) failed" >&2
  exit 1
fi
echo "all exit-code cases passed"
