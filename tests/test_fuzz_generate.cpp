// The fuzz subsystem's own test coverage (DESIGN.md §3j):
//   * the structured generator is total — 200 seeded byte strings decode
//     to valid programs that parse, print-fixpoint, and round-trip
//     through the simplify/--emit reduction path;
//   * every generated program's classification agrees with brute-forced
//     truth on all three backends (the ctest-registered, non-fuzz slice
//     of the differential oracle);
//   * the oracle itself has teeth: a deliberately-injected synthesis bug
//     (one flipped coefficient) must trip it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/reduce/reduce.hpp"
#include "core/parse.hpp"
#include "fuzz/differential.hpp"
#include "fuzz/generate.hpp"
#include "runtime/result.hpp"
#include "util/rng.hpp"

namespace nck::fuzz {
namespace {

std::vector<std::uint8_t> seeded_bytes(std::uint64_t seed, std::size_t size) {
  Rng rng(seed);
  std::vector<std::uint8_t> bytes(size);
  for (auto& b : bytes) {
    b = static_cast<std::uint8_t>(rng());
  }
  return bytes;
}

GeneratorOptions small_options() {
  GeneratorOptions options;
  options.max_vars = 6;
  options.max_constraints = 3;
  options.max_collection = 5;
  return options;
}

TEST(FuzzGenerate, TwoHundredSeedsDecodeParseAndSimplifyRoundTrip) {
  const GeneratorOptions options = small_options();
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const std::vector<std::uint8_t> bytes =
        seeded_bytes(seed, 8 + static_cast<std::size_t>(seed % 64));
    const Env env = generate_program(bytes.data(), bytes.size(), options);
    ASSERT_GE(env.num_constraints(), 1u) << "seed " << seed;
    ASSERT_LE(env.num_constraints(), options.max_constraints);
    ASSERT_GE(env.num_vars(), 1u);
    ASSERT_LE(env.num_vars(), options.max_vars);

    // Printer/parser agreement: parse(to_string) reaches a fixpoint.
    const std::string text = env.to_string();
    Env reparsed;
    ASSERT_NO_THROW(reparsed = parse_program(text)) << text;
    EXPECT_EQ(reparsed.to_string(), text) << "seed " << seed;
    EXPECT_EQ(reparsed.num_vars(), env.num_vars());
    EXPECT_EQ(reparsed.num_constraints(), env.num_constraints());
    EXPECT_EQ(reparsed.num_hard(), env.num_hard());

    // simplify/--emit round trip: the reduced program must itself parse,
    // and reduction must preserve feasibility and the soft optimum up to
    // the statically-decided offset (exactly what `nck_cli simplify
    // --emit` writes and what downstream consumers re-read).
    const GroundTruth original = brute_force_truth(env);
    const ReduceResult reduced = reduce_program(env);
    if (reduced.proved_unsat) {
      EXPECT_FALSE(original.feasible) << "seed " << seed << "\n" << text;
      continue;
    }
    if (reduced.reduced.num_constraints() > 0) {
      const std::string emitted = reduced.reduced.to_string();
      Env reloaded;
      ASSERT_NO_THROW(reloaded = parse_program(emitted))
          << "seed " << seed << "\n" << emitted;
      EXPECT_EQ(reloaded.to_string(), emitted);
    }
    const GroundTruth after = brute_force_truth(reduced.reduced);
    ASSERT_EQ(after.feasible, original.feasible)
        << "seed " << seed << "\n" << text;
    if (original.feasible) {
      EXPECT_EQ(after.best_soft_satisfied +
                    reduced.trace.soft_always_satisfied,
                original.best_soft_satisfied)
          << "seed " << seed << "\n" << text;
    }
  }
}

TEST(FuzzGenerate, TwoHundredSeedsAgreeWithBruteForceOnAllBackends) {
  const GeneratorOptions options = small_options();
  DifferentialOptions diff;
  diff.check_synthesis = false;  // backend slice; synthesis slice below
  diff.anneal_reads = 10;
  diff.circuit_shots = 64;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const std::vector<std::uint8_t> bytes =
        seeded_bytes(seed, 8 + static_cast<std::size_t>(seed % 64));
    const Env env = generate_program(bytes.data(), bytes.size(), options);
    const DifferentialReport report = run_differential(env, diff);
    EXPECT_TRUE(report.ok()) << "seed " << seed << "\n"
                             << env.to_string() << report.to_string();
    EXPECT_EQ(report.backends_checked, 3u);
  }
}

TEST(FuzzGenerate, SynthesisOracleAcceptsGeneratedPrograms) {
  const GeneratorOptions options = small_options();
  DifferentialOptions diff;
  diff.check_backends = false;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const std::vector<std::uint8_t> bytes = seeded_bytes(seed * 977, 40);
    const Env env = generate_program(bytes.data(), bytes.size(), options);
    const DifferentialReport report = run_differential(env, diff);
    EXPECT_TRUE(report.ok()) << "seed " << seed << "\n"
                             << env.to_string() << report.to_string();
    EXPECT_GE(report.syntheses_checked, 1u);
  }
}

TEST(FuzzGenerate, ExhaustedInputYieldsMinimalValidProgram) {
  const Env env = generate_program(nullptr, 0);
  EXPECT_EQ(env.num_vars(), 1u);
  EXPECT_EQ(env.num_constraints(), 1u);
  EXPECT_NO_THROW(parse_program(env.to_string()));
}

TEST(FuzzGenerate, DecoderIsDeterministic) {
  const std::vector<std::uint8_t> bytes = seeded_bytes(42, 64);
  const Env a = generate_program(bytes.data(), bytes.size());
  const Env b = generate_program(bytes.data(), bytes.size());
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(FuzzOracle, BruteForceTruthMatchesRuntimeGroundTruth) {
  for (const char* text : {
           "nck({a, b}, {1}) /\\ nck({b, c}, {1}) /\\ nck({a}, {0}, soft)",
           "nck({a, a, b}, {0, 2}) /\\ nck({b}, {1}, soft)",
           "nck({a}, {1}) /\\ nck({a}, {0})",  // infeasible
       }) {
    const Env env = parse_program(text);
    const GroundTruth ours = brute_force_truth(env);
    const GroundTruth theirs = ground_truth(env);
    EXPECT_EQ(ours.feasible, theirs.feasible) << text;
    if (ours.feasible) {
      EXPECT_EQ(ours.best_soft_satisfied, theirs.best_soft_satisfied) << text;
    }
  }
}

TEST(FuzzOracle, CleanProgramPassesBothOracles) {
  const Env env = parse_program(
      "nck({u0, u1}, {1}) /\\ nck({u0, v0}, {0, 1}) /\\ "
      "nck({v0, v1}, {1}) /\\ nck({u0}, {0}, soft)");
  const DifferentialReport report = run_differential(env);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GE(report.patterns_checked, 2u);
  EXPECT_EQ(report.backends_checked, 3u);
}

// Acceptance pin: the differential harness demonstrably catches a
// deliberately-injected synthesis bug. Flipping a single coefficient of
// any synthesized QUBO must break certification — if this test ever
// passes with report.ok(), the oracle has gone blind.
TEST(FuzzOracle, InjectedCoefficientFlipTripsTheOracle) {
  const Env env = parse_program("nck({a, b}, {1})");
  DifferentialOptions diff;
  diff.check_backends = false;
  diff.synth_mutator = [](SynthesizedQubo& synth) {
    synth.qubo.add_linear(0, 0.75);  // corrupt one diagonal coefficient
  };
  const DifferentialReport report = run_differential(env, diff);
  ASSERT_FALSE(report.ok());
  EXPECT_GE(report.divergences.size(), 1u);
  EXPECT_NE(report.to_string().find("failed certification"),
            std::string::npos)
      << report.to_string();
}

// The mutator hook is surgical: an identity mutator must not trip.
TEST(FuzzOracle, IdentityMutatorDoesNotTrip) {
  const Env env = parse_program("nck({a, b}, {1})");
  DifferentialOptions diff;
  diff.check_backends = false;
  diff.synth_mutator = [](SynthesizedQubo&) {};
  const DifferentialReport report = run_differential(env, diff);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

}  // namespace
}  // namespace nck::fuzz
