// The resilient solve layer: fault-plan parsing, the deterministic
// injector, retry/backoff policy, the modeled session clock, and the
// end-to-end recovery behavior of runtime::Solver (retries, re-embedding
// around dead qubits, deadline degradation, and backend fallback).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "graph/generators.hpp"
#include "problems/max_cut.hpp"
#include "problems/vertex_cover.hpp"
#include "resilience/fault.hpp"
#include "resilience/policy.hpp"
#include "runtime/solver.hpp"

namespace nck {
namespace {

// ------------------------------------------------------------ fault plans

TEST(FaultPlan, ParsesKindsParamsAndAttempts) {
  const FaultPlan plan = FaultPlan::parse("reject@1,dead:2@2,drift:0.005");
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kJobRejection);
  EXPECT_EQ(plan.events[0].attempt, 1u);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kDeadQubits);
  EXPECT_DOUBLE_EQ(plan.events[1].param, 2.0);
  EXPECT_EQ(plan.events[1].attempt, 2u);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kCalibrationDrift);
  EXPECT_DOUBLE_EQ(plan.events[2].param, 0.005);
  EXPECT_EQ(plan.events[2].attempt, 0u);  // every attempt
}

TEST(FaultPlan, KindSpecificDefaults) {
  const FaultPlan plan = FaultPlan::parse("timeout,drift,dead,exec,reject");
  EXPECT_DOUBLE_EQ(plan.events[0].param, 1000.0);  // timeout ms
  EXPECT_DOUBLE_EQ(plan.events[1].param, 0.01);    // drift sigma
  EXPECT_DOUBLE_EQ(plan.events[2].param, 1.0);     // dead qubits
}

TEST(FaultPlan, ToStringRoundTrips) {
  const char* spec = "reject@1,dead:2@2,timeout:500,drift:0.01";
  const FaultPlan plan = FaultPlan::parse(spec);
  const FaultPlan again = FaultPlan::parse(plan.to_string());
  ASSERT_EQ(again.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(again.events[i].kind, plan.events[i].kind);
    EXPECT_DOUBLE_EQ(again.events[i].param, plan.events[i].param);
    EXPECT_EQ(again.events[i].attempt, plan.events[i].attempt);
  }
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("explode"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("reject:5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("dead:0.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("dead@0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("dead@x"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drift:abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("timeout:-5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("reject,,dead"), std::invalid_argument);
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultPlan, ChaosDefaultIsTheDocumentedSchedule) {
  EXPECT_EQ(FaultPlan::chaos_default().to_string(), "reject@1,dead:2@2");
}

// -------------------------------------------------------------- injector

TEST(FaultInjectorTest, DefaultInjectorNeverFires) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  injector.begin_attempt(1);
  EXPECT_FALSE(injector.submit_fault().has_value());
  EXPECT_DOUBLE_EQ(injector.drift_sigma(), 0.0);
  EXPECT_TRUE(injector.dead_qubit_event({1, 2, 3}).empty());
  EXPECT_FALSE(injector.execution_fault());
}

TEST(FaultInjectorTest, AttemptGatingAndOneShotPerAttempt) {
  FaultInjector injector(FaultPlan::parse("reject@2"), 7);
  injector.begin_attempt(1);
  EXPECT_FALSE(injector.submit_fault().has_value());
  injector.begin_attempt(2);
  EXPECT_EQ(injector.submit_fault(), FaultKind::kJobRejection);
  // The query is consumed: asking twice in one attempt cannot double-fire.
  EXPECT_FALSE(injector.submit_fault().has_value());
  injector.begin_attempt(3);
  EXPECT_FALSE(injector.submit_fault().has_value());
  ASSERT_EQ(injector.history().size(), 1u);
  EXPECT_EQ(injector.history()[0].attempt, 2u);
}

TEST(FaultInjectorTest, RejectionWinsOverTimeout) {
  FaultInjector injector(FaultPlan::parse("timeout:100,reject"), 7);
  injector.begin_attempt(1);
  EXPECT_EQ(injector.submit_fault(), FaultKind::kJobRejection);
}

TEST(FaultInjectorTest, UnpinnedDriftGrowsWithAttempts) {
  FaultInjector injector(FaultPlan::parse("drift:0.01"), 7);
  injector.begin_attempt(1);
  EXPECT_DOUBLE_EQ(injector.drift_sigma(), 0.01);
  injector.begin_attempt(3);
  EXPECT_DOUBLE_EQ(injector.drift_sigma(), 0.03);
}

TEST(FaultInjectorTest, DeadQubitEventIsSeededDeterministic) {
  const std::vector<std::size_t> in_use{10, 20, 30, 40, 50};
  FaultInjector a(FaultPlan::parse("dead:2@1"), 99);
  FaultInjector b(FaultPlan::parse("dead:2@1"), 99);
  a.begin_attempt(1);
  b.begin_attempt(1);
  const auto killed_a = a.dead_qubit_event(in_use);
  const auto killed_b = b.dead_qubit_event(in_use);
  ASSERT_EQ(killed_a.size(), 2u);
  EXPECT_EQ(killed_a, killed_b);
  // Requesting more than the embedding uses kills the whole embedding.
  FaultInjector c(FaultPlan::parse("dead:9@1"), 99);
  c.begin_attempt(1);
  EXPECT_EQ(c.dead_qubit_event({3, 4}).size(), 2u);
}

TEST(FaultInjectorTest, TimeoutWaitIsChargedPerAttempt) {
  FaultInjector injector(FaultPlan::parse("timeout:250"), 7);
  injector.begin_attempt(1);
  (void)injector.submit_fault();
  injector.begin_attempt(2);
  (void)injector.submit_fault();
  EXPECT_DOUBLE_EQ(injector.modeled_wait_ms(1), 250.0);
  EXPECT_DOUBLE_EQ(injector.modeled_wait_ms(2), 250.0);
  EXPECT_DOUBLE_EQ(injector.modeled_wait_ms(3), 0.0);
}

// ------------------------------------------------------- policy and clock

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithoutJitter) {
  RetryPolicy policy;
  policy.backoff_initial_ms = 100.0;
  policy.backoff_multiplier = 2.0;
  policy.backoff_max_ms = 350.0;
  policy.backoff_jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(1, rng), 100.0);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(2, rng), 200.0);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(3, rng), 350.0);  // capped
  EXPECT_DOUBLE_EQ(policy.backoff_ms(9, rng), 350.0);
}

TEST(RetryPolicyTest, JitterStaysInBand) {
  RetryPolicy policy;
  policy.backoff_initial_ms = 100.0;
  policy.backoff_jitter = 0.25;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double wait = policy.backoff_ms(1, rng);
    EXPECT_GE(wait, 75.0);
    EXPECT_LE(wait, 125.0);
  }
}

TEST(RetryPolicyTest, ValidateCatchesNonsense) {
  std::string why;
  RetryPolicy bad;
  bad.backoff_initial_ms = std::nan("");
  EXPECT_FALSE(bad.validate(&why));
  EXPECT_NE(why.find("backoff_initial_ms"), std::string::npos);

  bad = RetryPolicy{};
  bad.backoff_multiplier = 0.5;
  EXPECT_FALSE(bad.validate(&why));

  bad = RetryPolicy{};
  bad.backoff_jitter = 1.5;
  EXPECT_FALSE(bad.validate(&why));

  bad = RetryPolicy{};
  bad.deadline_ms = -1.0;
  EXPECT_FALSE(bad.validate(&why));

  EXPECT_TRUE(RetryPolicy{}.validate(&why)) << why;
}

TEST(SessionClockTest, BucketsSumIntoElapsed) {
  SessionClock clock;
  clock.charge_wall_ms(1.5);
  clock.charge_device_ms(20.0);
  clock.charge_wait_ms(100.0);
  clock.charge_wall_ms(0.5);
  EXPECT_DOUBLE_EQ(clock.wall_ms(), 2.0);
  EXPECT_DOUBLE_EQ(clock.device_ms(), 20.0);
  EXPECT_DOUBLE_EQ(clock.wait_ms(), 100.0);
  EXPECT_DOUBLE_EQ(clock.elapsed_ms(), 122.0);
}

TEST(DegradeSamples, HalvesTowardFloorNeverBelow) {
  EXPECT_EQ(degrade_samples(100, 10), 50u);
  EXPECT_EQ(degrade_samples(12, 10), 10u);
  EXPECT_EQ(degrade_samples(10, 10), 10u);
  EXPECT_EQ(degrade_samples(5, 10), 10u);
}

// ------------------------------------------------------------ names/kinds

TEST(FailureKinds, AllNamed) {
  for (FailureKind kind :
       {FailureKind::kNone, FailureKind::kBadOptions,
        FailureKind::kAnalysisRejected, FailureKind::kInfeasible,
        FailureKind::kNoEmbedding, FailureKind::kDeviceTooSmall,
        FailureKind::kNoSamples, FailureKind::kJobRejected,
        FailureKind::kQueueTimeout, FailureKind::kDeadQubits,
        FailureKind::kExecutionError, FailureKind::kRetriesExhausted,
        FailureKind::kDeadlineExhausted}) {
    EXPECT_STRNE(failure_kind_name(kind), "?");
    EXPECT_STRNE(failure_kind_description(kind), "?");
  }
  for (FaultKind kind :
       {FaultKind::kJobRejection, FaultKind::kQueueTimeout,
        FaultKind::kCalibrationDrift, FaultKind::kDeadQubits,
        FaultKind::kExecutionError}) {
    EXPECT_STRNE(fault_name(kind), "?");
  }
  EXPECT_TRUE(transient_failure(FailureKind::kDeadQubits));
  EXPECT_TRUE(transient_failure(FailureKind::kJobRejected));
  EXPECT_FALSE(transient_failure(FailureKind::kNoEmbedding));
  EXPECT_FALSE(transient_failure(FailureKind::kBadOptions));
  EXPECT_EQ(failure_from_fault(FaultKind::kCalibrationDrift),
            FailureKind::kNone);
  EXPECT_EQ(failure_from_fault(FaultKind::kDeadQubits),
            FailureKind::kDeadQubits);
}

// --------------------------------------------------- solver recovery path

Env small_problem() { return MaxCutProblem{cycle_graph(5)}.encode(); }

/// The ISSUE acceptance pair, part 1: a seeded schedule that kills two
/// embedded qubits mid-session must end with a successful solve that
/// re-embedded around them, with the recovery visible in both the
/// ResilienceLog and the obs trace.
TEST(ResilientSolve, DeadQubitsRecoveredByReembedding) {
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 30;
  ResilienceOptions opts;
  opts.faults = FaultPlan::parse("dead:2@1");
  opts.retry.max_retries = 2;
  opts.retry.backoff_initial_ms = 5.0;
  solver.resilience_options() = opts;

  const SolveReport report =
      solver.solve(small_problem(), BackendKind::kAnnealer);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_EQ(report.failure, FailureKind::kNone);
  EXPECT_EQ(report.num_samples, 30u);
  const ResilienceLog& log = report.resilience;
  ASSERT_EQ(log.attempts.size(), 2u);
  EXPECT_EQ(log.attempts[0].failure, FailureKind::kDeadQubits);
  EXPECT_EQ(log.attempts[1].failure, FailureKind::kNone);
  EXPECT_EQ(log.reembeds, 1u);
  EXPECT_EQ(log.retries, 1u);
  ASSERT_EQ(log.faults.size(), 1u);
  EXPECT_EQ(log.faults[0].kind, FaultKind::kDeadQubits);
  EXPECT_EQ(log.faults[0].qubits_killed, 2u);
  EXPECT_GT(log.total_wait_ms, 0.0);  // the backoff was charged
  // Recovery is visible in the trace too.
  EXPECT_DOUBLE_EQ(report.trace.counter("resilience.reembeds"), 1.0);
  EXPECT_DOUBLE_EQ(report.trace.counter("resilience.attempts"), 2.0);
  EXPECT_NE(report.trace.find_span("attempt"), nullptr);
}

/// Part 2: the identical schedule with retries disabled reproduces the
/// terminal failure the pre-resilience solver exhibited.
TEST(ResilientSolve, SameScheduleWithoutRetriesFailsTerminally) {
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 30;
  ResilienceOptions opts;
  opts.faults = FaultPlan::parse("dead:2@1");
  opts.retry.max_retries = 0;
  solver.resilience_options() = opts;

  const SolveReport report =
      solver.solve(small_problem(), BackendKind::kAnnealer);
  EXPECT_FALSE(report.ran);
  EXPECT_EQ(report.failure, FailureKind::kDeadQubits);
  ASSERT_EQ(report.resilience.attempts.size(), 1u);
  EXPECT_EQ(report.resilience.reembeds, 0u);
  EXPECT_EQ(report.resilience.retries, 0u);
}

TEST(ResilientSolve, FirstRejectionRetriedOnce) {
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 30;
  ResilienceOptions opts;
  opts.faults = FaultPlan::parse("reject@1");
  opts.retry.max_retries = 1;
  opts.retry.backoff_initial_ms = 5.0;
  solver.resilience_options() = opts;

  const SolveReport report =
      solver.solve(small_problem(), BackendKind::kAnnealer);
  ASSERT_TRUE(report.ran) << report.failure_message();
  ASSERT_EQ(report.resilience.attempts.size(), 2u);
  EXPECT_EQ(report.resilience.attempts[0].failure, FailureKind::kJobRejected);
  EXPECT_EQ(report.resilience.retries, 1u);
}

TEST(ResilientSolve, PersistentFaultExhaustsRetries) {
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 30;
  ResilienceOptions opts;
  opts.faults = FaultPlan::parse("reject");  // every attempt
  opts.retry.max_retries = 2;
  opts.retry.backoff_initial_ms = 5.0;
  solver.resilience_options() = opts;

  const SolveReport report =
      solver.solve(small_problem(), BackendKind::kAnnealer);
  EXPECT_FALSE(report.ran);
  EXPECT_EQ(report.failure, FailureKind::kRetriesExhausted);
  EXPECT_NE(report.failure_message().find("retry budget"), std::string::npos);
  EXPECT_EQ(report.resilience.attempts.size(), 3u);  // 1 + 2 retries
  EXPECT_EQ(report.resilience.retries, 2u);
}

TEST(ResilientSolve, FallbackToClassicalLandsTheSolve) {
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 30;
  ResilienceOptions opts;
  opts.faults = FaultPlan::parse("reject");
  opts.retry.max_retries = 1;
  opts.retry.backoff_initial_ms = 5.0;
  opts.fallback = std::vector<BackendKind>{BackendKind::kClassical};
  solver.resilience_options() = opts;

  const SolveReport report =
      solver.solve(small_problem(), BackendKind::kAnnealer);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_EQ(report.backend, BackendKind::kClassical);
  EXPECT_EQ(report.best_quality, Quality::kOptimal);
  EXPECT_EQ(report.resilience.fallbacks, 1u);
  const auto& attempts = report.resilience.attempts;
  ASSERT_EQ(attempts.size(), 3u);
  EXPECT_EQ(attempts.back().backend, BackendKind::kClassical);
  EXPECT_EQ(attempts.back().failure, FailureKind::kNone);
}

// ------------------------------------------------- presolve under faults

/// Presolve-reducible program: c is forced TRUE, its soft is decided, and
/// the backend sees only {a, b}. The lift must hold up whatever the fault
/// schedule does to the attempt that finally lands.
Env reducible_problem() {
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b, c}, {1, 2});
  env.nck({c}, {1});
  env.prefer_true(c);
  env.prefer_false(a);
  return env;
}

TEST(ResilientSolve, PresolvedSolveRecoversByReembedding) {
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 30;
  ResilienceOptions opts;
  opts.faults = FaultPlan::parse("dead:2@1");
  opts.retry.max_retries = 2;
  opts.retry.backoff_initial_ms = 5.0;
  solver.resilience_options() = opts;

  const SolveReport report =
      solver.solve(reducible_problem(), BackendKind::kAnnealer);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_EQ(report.resilience.reembeds, 1u);
  ASSERT_TRUE(report.presolve.has_value());
  EXPECT_EQ(report.presolve->forced, 1u);
  // The recovered samples are reduced-space; the report is original-space.
  ASSERT_EQ(report.best_assignment.size(), 3u);
  EXPECT_TRUE(report.best_assignment[2]);              // forced c
  EXPECT_EQ(report.truth.best_soft_satisfied, 2u);     // decided soft counted
  EXPECT_EQ(report.best_quality, Quality::kOptimal);
}

TEST(ResilientSolve, ChaosSchedulePreservesPresolvedLift) {
  // The CI chaos schedule (reject@1, dead:2@2) against the reduced program:
  // rejection retried, dead qubits re-embedded, and the surviving samples
  // still lift back with the forced value and the soft offset intact.
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 30;
  ResilienceOptions opts;
  opts.faults = FaultPlan::chaos_default();
  opts.retry.max_retries = 3;
  opts.retry.backoff_initial_ms = 5.0;
  solver.resilience_options() = opts;

  const SolveReport report =
      solver.solve(reducible_problem(), BackendKind::kAnnealer);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_GE(report.resilience.attempts.size(), 2u);
  ASSERT_TRUE(report.presolve.has_value());
  EXPECT_TRUE(report.best_assignment[2]);
  EXPECT_EQ(report.truth.best_soft_satisfied, 2u);
  EXPECT_EQ(report.best_quality, Quality::kOptimal);
}

TEST(ResilientSolve, PresolvedSolveFallsBackWithLiftIntact) {
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 30;
  ResilienceOptions opts;
  opts.faults = FaultPlan::parse("reject");  // annealer never succeeds
  opts.retry.max_retries = 1;
  opts.retry.backoff_initial_ms = 5.0;
  opts.fallback = std::vector<BackendKind>{BackendKind::kClassical};
  solver.resilience_options() = opts;

  const SolveReport report =
      solver.solve(reducible_problem(), BackendKind::kAnnealer);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_EQ(report.backend, BackendKind::kClassical);
  EXPECT_EQ(report.resilience.fallbacks, 1u);
  ASSERT_TRUE(report.presolve.has_value());
  EXPECT_TRUE(report.best_assignment[2]);
  EXPECT_EQ(report.truth.best_soft_satisfied, 2u);
  EXPECT_EQ(report.best_quality, Quality::kOptimal);
}

TEST(ResilientSolve, CircuitExecutionErrorRetried) {
  Solver solver(42);
  solver.circuit_options().qaoa.shots = 600;
  ResilienceOptions opts;
  opts.faults = FaultPlan::parse("exec@1");
  opts.retry.max_retries = 1;
  opts.retry.backoff_initial_ms = 5.0;
  solver.resilience_options() = opts;

  const SolveReport report = solver.solve(
      MaxCutProblem{cycle_graph(4)}.encode(), BackendKind::kCircuit);
  ASSERT_TRUE(report.ran) << report.failure_message();
  ASSERT_EQ(report.resilience.attempts.size(), 2u);
  EXPECT_EQ(report.resilience.attempts[0].failure,
            FailureKind::kExecutionError);
  // The failed attempt never reached the device, so only the successful
  // one carries modeled device time.
  EXPECT_DOUBLE_EQ(report.resilience.attempts[0].device_ms, 0.0);
  EXPECT_GT(report.resilience.attempts[1].device_ms, 0.0);
}

TEST(ResilientSolve, QueueTimeoutChargesModeledWait) {
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 30;
  ResilienceOptions opts;
  opts.faults = FaultPlan::parse("timeout:5000@1");
  opts.retry.max_retries = 1;
  opts.retry.backoff_initial_ms = 5.0;
  solver.resilience_options() = opts;

  const SolveReport report =
      solver.solve(small_problem(), BackendKind::kAnnealer);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_EQ(report.resilience.attempts[0].failure,
            FailureKind::kQueueTimeout);
  EXPECT_GE(report.resilience.attempts[0].wait_ms, 5000.0);
  EXPECT_GE(report.resilience.total_wait_ms, 5000.0);
}

TEST(ResilientSolve, DeadlinePressureShrinksReads) {
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 100;
  ResilienceOptions opts;
  // 100 reads model to ~27.1 ms of QPU access; 50 reads to ~21.6 ms.
  opts.retry.deadline_ms = 22.0;
  solver.resilience_options() = opts;

  const SolveReport report =
      solver.solve(small_problem(), BackendKind::kAnnealer);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_EQ(report.num_samples, 50u);
  EXPECT_EQ(report.resilience.degradations, 1u);
  EXPECT_FALSE(report.resilience.deadline_exhausted);
  EXPECT_EQ(report.resilience.attempts.back().samples_requested, 50u);
}

TEST(ResilientSolve, ExhaustedDeadlineFallsBackToClassical) {
  Solver solver(42);
  solver.annealer_options().sampler.num_reads = 100;
  ResilienceOptions opts;
  // Even the 10-read floor models to ~17 ms: the annealer rung can never
  // fit, but the classical rung ignores the deadline and lands the solve.
  opts.retry.deadline_ms = 10.0;
  opts.fallback = std::vector<BackendKind>{BackendKind::kClassical};
  solver.resilience_options() = opts;

  const SolveReport report =
      solver.solve(small_problem(), BackendKind::kAnnealer);
  ASSERT_TRUE(report.ran) << report.failure_message();
  EXPECT_EQ(report.backend, BackendKind::kClassical);
  EXPECT_TRUE(report.resilience.deadline_exhausted);
  EXPECT_GT(report.resilience.degradations, 0u);
  // No annealer attempt was ever dispatched.
  for (const AttemptRecord& a : report.resilience.attempts) {
    EXPECT_EQ(a.backend, BackendKind::kClassical);
  }
}

TEST(WallDeadline, AlreadyExpiredBudgetFailsFastTyped) {
  // The serve-layer contract: a request whose wall budget ran out while
  // queued must fail with the typed kind *before* any presolve, analysis,
  // or backend work — no attempts, no spans, just the rejection.
  Solver solver(42);
  solver.solve_options().wall_budget_ms = 0.0;
  const SolveReport report =
      solver.solve(small_problem(), BackendKind::kAnnealer);
  EXPECT_FALSE(report.ran);
  EXPECT_EQ(report.failure, FailureKind::kDeadlineExhausted);
  EXPECT_TRUE(report.resilience.deadline_exhausted);
  EXPECT_TRUE(report.resilience.attempts.empty());
  EXPECT_NE(report.failure_detail.find("wall-clock"), std::string::npos);
  // No stage beyond the solve root ever ran.
  EXPECT_EQ(report.trace.find_span("presolve"), nullptr);
  EXPECT_EQ(report.trace.find_span("analyze"), nullptr);
  EXPECT_EQ(report.trace.find_span("ground_truth"), nullptr);
  EXPECT_EQ(report.trace.counter("resilience.wall_deadline_exhausted"), 1.0);
}

TEST(WallDeadline, NegativeBudgetFailsFastClassicalToo) {
  // Unlike the modeled session deadline, the wall deadline is not
  // classical-exempt: a caller past its latency budget has no use for a
  // late answer.
  Solver solver(42);
  solver.solve_options().wall_budget_ms = -5.0;
  const SolveReport report =
      solver.solve(small_problem(), BackendKind::kClassical);
  EXPECT_FALSE(report.ran);
  EXPECT_EQ(report.failure, FailureKind::kDeadlineExhausted);
}

TEST(WallDeadline, NanBudgetIsBadOptions) {
  Solver solver(42);
  solver.solve_options().wall_budget_ms = std::nan("");
  const SolveReport report =
      solver.solve(small_problem(), BackendKind::kClassical);
  EXPECT_FALSE(report.ran);
  EXPECT_EQ(report.failure, FailureKind::kBadOptions);
}

TEST(WallDeadline, GenerousBudgetDoesNotPerturbTheSolve) {
  Solver with(42);
  with.solve_options().wall_budget_ms = 60000.0;
  Solver without(42);
  const SolveReport a = with.solve(small_problem(), BackendKind::kAnnealer);
  const SolveReport b = without.solve(small_problem(), BackendKind::kAnnealer);
  ASSERT_TRUE(a.ran) << a.failure_message();
  ASSERT_TRUE(b.ran) << b.failure_message();
  EXPECT_EQ(a.best_assignment, b.best_assignment);
  EXPECT_EQ(a.counts.optimal, b.counts.optimal);
}

TEST(ResilientSolve, BadOptionsRejectedAtEntry) {
  const Env env = small_problem();
  {
    Solver solver(42);
    ResilienceOptions opts;
    opts.retry.backoff_initial_ms = std::nan("");
    solver.resilience_options() = opts;
    const SolveReport report = solver.solve(env, BackendKind::kAnnealer);
    EXPECT_FALSE(report.ran);
    EXPECT_EQ(report.failure, FailureKind::kBadOptions);
  }
  {
    Solver solver(42);
    ResilienceOptions opts;
    opts.fallback.emplace();  // engaged but empty
    solver.resilience_options() = opts;
    const SolveReport report = solver.solve(env, BackendKind::kClassical);
    EXPECT_FALSE(report.ran);
    EXPECT_EQ(report.failure, FailureKind::kBadOptions);
    EXPECT_NE(report.failure_message().find("fallback"), std::string::npos);
  }
  {
    Solver solver(42);
    solver.annealer_options().sampler.timing_model.anneal_us = -1.0;
    solver.resilience_options() = ResilienceOptions{};
    const SolveReport report = solver.solve(env, BackendKind::kAnnealer);
    EXPECT_FALSE(report.ran);
    EXPECT_EQ(report.failure, FailureKind::kBadOptions);
    EXPECT_NE(report.failure_message().find("anneal_us"), std::string::npos);
  }
  {
    // Chain-wide validation: the primary backend is fine, but a fallback
    // rung's options are nonsense.
    Solver solver(42);
    solver.circuit_options().qaoa.shots = 0;
    ResilienceOptions opts;
    opts.fallback = std::vector<BackendKind>{BackendKind::kCircuit};
    solver.resilience_options() = opts;
    const SolveReport report = solver.solve(env, BackendKind::kClassical);
    EXPECT_FALSE(report.ran);
    EXPECT_EQ(report.failure, FailureKind::kBadOptions);
    EXPECT_NE(report.failure_message().find("shots"), std::string::npos);
  }
}

// ------------------------------------------------- chain feasibility lint

TEST(ChainAnalysis, AllRungsInfeasibleIsAnError) {
  const Env env = VertexCoverProblem{cycle_graph(5)}.encode();
  Analyzer analyzer;
  SynthEngine engine;
  const Graph tiny = path_graph(2);  // no 5-variable QUBO fits 2 qubits
  AnalysisTarget circuit_rung;
  circuit_rung.coupling = &tiny;
  const AnalysisReport report =
      analyzer.analyze_chain(env, engine, {circuit_rung});
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_code(DiagCode::kFallbackChainInfeasible));
}

TEST(ChainAnalysis, OneFeasibleRungDemotesTheRest) {
  const Env env = VertexCoverProblem{cycle_graph(5)}.encode();
  Analyzer analyzer;
  SynthEngine engine;
  const Graph tiny = path_graph(2);
  AnalysisTarget circuit_rung;
  circuit_rung.coupling = &tiny;
  AnalysisTarget classical_rung;  // both pointers null: always feasible
  const AnalysisReport report =
      analyzer.analyze_chain(env, engine, {circuit_rung, classical_rung});
  EXPECT_FALSE(report.has_errors()) << report.summary();
  EXPECT_FALSE(report.has_code(DiagCode::kFallbackChainInfeasible));
  // The infeasible rung's error rides along demoted and tagged.
  EXPECT_NE(report.summary(Severity::kWarning).find("fallback rung 1"),
            std::string::npos)
      << report.summary(Severity::kWarning);
}

// ----------------------------------------------------------- log rendering

TEST(ResilienceLogTest, PrintShowsAttemptsAndFaults) {
  ResilienceLog log;
  AttemptRecord first;
  first.attempt = 1;
  first.backend = BackendKind::kAnnealer;
  first.samples_requested = 100;
  first.failure = FailureKind::kDeadQubits;
  first.detail = "2 embedded qubit(s) died mid-session";
  AttemptRecord second;
  second.attempt = 2;
  second.backend = BackendKind::kAnnealer;
  second.samples_requested = 100;
  log.attempts = {first, second};
  log.faults = {{FaultKind::kDeadQubits, 1, 2.0, 2}};
  log.retries = 1;
  log.reembeds = 1;

  std::ostringstream os;
  log.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("2 attempt(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("1 re-embed(s)"), std::string::npos);
  EXPECT_NE(text.find("dead-qubits"), std::string::npos);
  EXPECT_NE(text.find("ok"), std::string::npos);

  std::ostringstream empty_os;
  ResilienceLog{}.print(empty_os);
  EXPECT_NE(empty_os.str().find("no attempts"), std::string::npos);
}

}  // namespace
}  // namespace nck
