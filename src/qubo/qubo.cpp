#include "qubo/qubo.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace nck {

Qubo::Qubo(std::size_t num_variables) : linear_(num_variables, 0.0) {}

void Qubo::resize(std::size_t n) {
  if (n > linear_.size()) linear_.resize(n, 0.0);
}

std::uint64_t Qubo::key(Var i, Var j) noexcept {
  if (i > j) std::swap(i, j);
  return (static_cast<std::uint64_t>(i) << 32) | j;
}

void Qubo::add_linear(Var i, double c) {
  resize(static_cast<std::size_t>(i) + 1);
  linear_[i] += c;
}

void Qubo::add_quadratic(Var i, Var j, double c) {
  if (i == j) {
    // x^2 == x for binary variables; fold into the linear term.
    add_linear(i, c);
    return;
  }
  resize(static_cast<std::size_t>(std::max(i, j)) + 1);
  quadratic_[key(i, j)] += c;
}

double Qubo::quadratic(Var i, Var j) const noexcept {
  if (i == j) return 0.0;
  const auto it = quadratic_.find(key(i, j));
  return it == quadratic_.end() ? 0.0 : it->second;
}

std::size_t Qubo::num_linear_terms() const noexcept {
  std::size_t n = 0;
  for (double c : linear_) {
    if (std::abs(c) > kEps) ++n;
  }
  return n;
}

std::size_t Qubo::num_quadratic_terms() const noexcept {
  std::size_t n = 0;
  for (const auto& [k, c] : quadratic_) {
    if (std::abs(c) > kEps) ++n;
  }
  return n;
}

double Qubo::energy(const std::vector<bool>& x) const {
  if (x.size() < linear_.size()) {
    throw std::invalid_argument("Qubo::energy: assignment too short");
  }
  double e = offset_;
  for (std::size_t i = 0; i < linear_.size(); ++i) {
    if (x[i]) e += linear_[i];
  }
  for (const auto& [k, c] : quadratic_) {
    const Var i = static_cast<Var>(k >> 32);
    const Var j = static_cast<Var>(k & 0xFFFFFFFFu);
    if (x[i] && x[j]) e += c;
  }
  return e;
}

Qubo& Qubo::operator+=(const Qubo& other) {
  resize(other.linear_.size());
  for (std::size_t i = 0; i < other.linear_.size(); ++i) {
    linear_[i] += other.linear_[i];
  }
  for (const auto& [k, c] : other.quadratic_) quadratic_[k] += c;
  offset_ += other.offset_;
  return *this;
}

Qubo& Qubo::scale(double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("Qubo::scale: factor must be positive");
  }
  for (double& c : linear_) c *= factor;
  for (auto& [k, c] : quadratic_) c *= factor;
  offset_ *= factor;
  return *this;
}

double Qubo::max_abs_coefficient() const noexcept {
  double m = 0.0;
  for (double c : linear_) m = std::max(m, std::abs(c));
  for (const auto& [k, c] : quadratic_) m = std::max(m, std::abs(c));
  return m;
}

Qubo Qubo::remapped(std::span<const Var> mapping) const {
  Qubo out;
  for (std::size_t i = 0; i < linear_.size(); ++i) {
    if (std::abs(linear_[i]) > kEps) {
      if (i >= mapping.size()) {
        throw std::invalid_argument("Qubo::remapped: mapping too short");
      }
      out.add_linear(mapping[i], linear_[i]);
    }
  }
  for (const auto& [k, c] : quadratic_) {
    if (std::abs(c) <= kEps) continue;
    const Var i = static_cast<Var>(k >> 32);
    const Var j = static_cast<Var>(k & 0xFFFFFFFFu);
    if (i >= mapping.size() || j >= mapping.size()) {
      throw std::invalid_argument("Qubo::remapped: mapping too short");
    }
    out.add_quadratic(mapping[i], mapping[j], c);
  }
  out.add_offset(offset_);
  return out;
}

std::vector<std::vector<std::pair<Qubo::Var, double>>> Qubo::adjacency() const {
  std::vector<std::vector<std::pair<Var, double>>> adj(num_variables());
  for (const auto& [k, c] : quadratic_) {
    if (std::abs(c) <= kEps) continue;
    const Var i = static_cast<Var>(k >> 32);
    const Var j = static_cast<Var>(k & 0xFFFFFFFFu);
    adj[i].emplace_back(j, c);
    adj[j].emplace_back(i, c);
  }
  return adj;
}

std::vector<std::tuple<Qubo::Var, Qubo::Var, double>> Qubo::quadratic_terms()
    const {
  std::vector<std::tuple<Var, Var, double>> terms;
  terms.reserve(quadratic_.size());
  for (const auto& [k, c] : quadratic_) {
    if (std::abs(c) <= kEps) continue;
    terms.emplace_back(static_cast<Var>(k >> 32),
                       static_cast<Var>(k & 0xFFFFFFFFu), c);
  }
  std::sort(terms.begin(), terms.end());
  return terms;
}

std::string Qubo::to_string() const {
  std::ostringstream os;
  bool first = true;
  auto emit = [&](double c, const std::string& mono) {
    if (std::abs(c) <= kEps) return;
    if (first) {
      if (c < 0) os << "-";
      first = false;
    } else {
      os << (c < 0 ? " - " : " + ");
    }
    const double a = std::abs(c);
    if (mono.empty()) {
      os << a;
    } else if (a == 1.0) {
      os << mono;
    } else {
      os << a << "*" << mono;
    }
  };
  emit(offset_, "");
  for (std::size_t i = 0; i < linear_.size(); ++i) {
    std::string mono = "x";
    mono += std::to_string(i);
    emit(linear_[i], mono);
  }
  for (const auto& [i, j, c] : quadratic_terms()) {
    std::string mono = "x";
    mono += std::to_string(i);
    mono += "*x";
    mono += std::to_string(j);
    emit(c, mono);
  }
  if (first) os << "0";
  return os.str();
}

}  // namespace nck
