// QUBO presolve: fixes variables whose optimal value is decidable from
// coefficient signs alone (single-variable roof-duality bounds):
//
//   x_i can be fixed to 0 if  a_i + sum_j min(0, b_ij) >= 0   (turning it on
//                             can never lower the energy), and
//   x_i can be fixed to 1 if  a_i + sum_j max(0, b_ij) <= 0   (turning it on
//                             can never raise it).
//
// Fixings are substituted (folding quadratic terms into linear ones) and the
// analysis iterates to a fixpoint, so one fixing can unlock another. The
// minimizer-set projection onto the free variables is preserved; at least
// one global minimizer always survives.
#pragma once

#include <vector>

#include "qubo/qubo.hpp"

namespace nck {

struct PresolveResult {
  /// Per-variable decision: -1 free, 0 fixed FALSE, 1 fixed TRUE.
  std::vector<int> fixed;
  /// Reduced QUBO over the same indices; fixed variables no longer carry
  /// terms (their contribution moved into linear terms / the offset).
  Qubo reduced;
  std::size_t num_fixed = 0;
  std::size_t rounds = 0;  // fixpoint iterations taken

  /// Completes an assignment of the reduced problem with the fixed values.
  std::vector<bool> complete(std::vector<bool> assignment) const;
};

PresolveResult presolve(const Qubo& q);

}  // namespace nck
