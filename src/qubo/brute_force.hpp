// Exact QUBO minimization by exhaustive enumeration, OpenMP-parallel over
// the state space. Usable up to ~28 variables; the synthesizer verification
// and ground-truth checks for small studies rely on it.
#pragma once

#include <optional>
#include <vector>

#include "qubo/qubo.hpp"

namespace nck {

struct BruteForceResult {
  double min_energy = 0.0;
  /// All minimizing assignments found, up to `max_ground_states`
  /// (deterministic order: ascending as binary integers, bit i = x_i).
  std::vector<std::vector<bool>> ground_states;
  bool truncated = false;  // true if more minimizers exist than returned
};

/// Enumerates all 2^n assignments. Throws if n > 30.
/// Energies within `tie_eps` of the minimum count as ground states.
BruteForceResult brute_force_minimize(const Qubo& q,
                                      std::size_t max_ground_states = 4096,
                                      double tie_eps = 1e-6);

/// Convenience: minimum energy only.
double brute_force_min_energy(const Qubo& q);

/// Minimum energy restricted to assignments extending `prefix_mask` /
/// `prefix_value` on the first `prefix_bits` variables; used by tests to
/// check conditional ground states (e.g. per-ancilla minima).
double brute_force_min_energy_with_fixed(const Qubo& q,
                                         std::span<const int> fixed);

/// Ancilla projection of a per-constraint QUBO over variables [0, d) with
/// trailing ancillas [d, d+a): element x of the result (x read as a binary
/// integer, bit i = x_i) is min over the 2^a ancilla settings z of
/// f(x, z). This is the function whose argmin the certifier compares with
/// the constraint's satisfying set, and whose per-x maximum bounds the
/// worst-case penalty a constraint contributes. Throws if d + a > 28 or
/// the QUBO touches variables beyond d + a.
std::vector<double> ancilla_projected_minima(const Qubo& q, std::size_t d,
                                             std::size_t a);

}  // namespace nck
