// Heuristic QUBO samplers: single-flip Metropolis simulated annealing and a
// greedy descent. These serve two roles:
//  * generic heuristic minimization for problems beyond brute-force reach;
//  * the low-temperature Boltzmann sampler that approximates the ideal QAOA
//    output distribution for circuits too wide to state-vector-simulate
//    (see DESIGN.md, hardware substitutions).
#pragma once

#include <vector>

#include "qubo/qubo.hpp"
#include "util/rng.hpp"

namespace nck {

struct AnnealParams {
  std::size_t num_sweeps = 256;   // full-variable Metropolis sweeps per read
  double beta_initial = 0.1;      // inverse temperature at start
  double beta_final = 8.0;        // inverse temperature at end (geometric ramp)
};

struct Sample {
  std::vector<bool> x;
  double energy = 0.0;
};

/// Per-sweep inverse-temperature ramp: geometric interpolation from
/// beta_initial to beta_final with both endpoints exact — the last sweep
/// runs at beta_final (the previous cumulative-multiplication ramp drifted
/// off the endpoint, and a single-sweep schedule stayed at beta_initial,
/// i.e. never annealed). A one-sweep schedule is {beta_final}.
std::vector<double> beta_schedule(const AnnealParams& params);

/// One simulated-annealing read from a random start. Deterministic given rng.
Sample anneal_once(const Qubo& q, const AnnealParams& params, Rng& rng);

/// `num_reads` independent reads, OpenMP-parallel, each from its own rng
/// stream split from `rng`. Results sorted by ascending energy.
std::vector<Sample> anneal(const Qubo& q, const AnnealParams& params,
                           std::size_t num_reads, Rng& rng);

/// Greedy single-flip descent to a local minimum from the given start.
Sample greedy_descent(const Qubo& q, std::vector<bool> start);

struct TabuParams {
  std::size_t max_iters = 0;    // total single-flip moves; 0 disables search
  std::size_t stall_iters = 0;  // stop after this many non-improving moves
                                // in a row; 0 = max_iters / 4 + 1
  std::size_t tenure = 0;       // moves a flipped variable stays tabu;
                                // 0 = min(20, n / 4) + 1 (qbsolv-style)
};

/// Deterministic tabu search from the given start (qbsolv's classical
/// sub-QUBO solver). Each move flips the best admissible variable — lowest
/// energy delta, ties to the lowest index — where admissible means not
/// tabu, or tabu but beating the best energy seen (aspiration). Unlike
/// greedy_descent this crosses small uphill barriers, which matters for
/// compiled programs whose hard-constraint scale flattens the soft
/// landscape: a one-soft-unit ridge (e.g. swapping a set cover's two
/// halves for the full block) is invisible to pure descent. Returns the
/// best state visited. No randomness: identical inputs give identical
/// outputs on any thread count.
Sample tabu_search(const Qubo& q, std::vector<bool> start,
                   const TabuParams& params);

/// Draws `num_samples` samples approximately from the Boltzmann distribution
/// exp(-beta * E(x)) via Metropolis with burn-in; used as the wide-circuit
/// QAOA surrogate.
std::vector<Sample> boltzmann_sample(const Qubo& q, double beta,
                                     std::size_t num_samples, Rng& rng,
                                     std::size_t burn_in_sweeps = 64,
                                     std::size_t thin_sweeps = 4);

}  // namespace nck
