#include "qubo/io.hpp"

#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nck {

void write_qubo(std::ostream& os, const Qubo& q) {
  os << "p qubo 0 " << q.num_variables() << ' ' << q.num_linear_terms() << ' '
     << q.num_quadratic_terms() << '\n';
  if (std::abs(q.offset()) > Qubo::kEps) {
    os << "c offset " << q.offset() << '\n';
  }
  for (std::size_t i = 0; i < q.num_variables(); ++i) {
    const double c = q.linear(static_cast<Qubo::Var>(i));
    if (std::abs(c) > Qubo::kEps) os << i << ' ' << i << ' ' << c << '\n';
  }
  for (const auto& [i, j, c] : q.quadratic_terms()) {
    os << i << ' ' << j << ' ' << c << '\n';
  }
}

std::string qubo_to_text(const Qubo& q) {
  std::ostringstream os;
  os.precision(17);
  write_qubo(os, q);
  return os.str();
}

Qubo read_qubo(std::istream& is) {
  Qubo q;
  std::string line;
  bool saw_header = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    if (line[0] == 'p') {
      std::string p, fmt;
      int zero = 0;
      std::size_t nvars = 0, nlin = 0, nquad = 0;
      if (!(ls >> p >> fmt >> zero >> nvars >> nlin >> nquad) || fmt != "qubo") {
        throw std::runtime_error("read_qubo: malformed header: " + line);
      }
      q.resize(nvars);
      saw_header = true;
    } else if (line[0] == 'c') {
      std::string c, tag;
      double value = 0.0;
      ls >> c >> tag;
      if (tag == "offset" && (ls >> value)) q.add_offset(value);
    } else {
      Qubo::Var i = 0, j = 0;
      double coeff = 0.0;
      if (!(ls >> i >> j >> coeff)) {
        throw std::runtime_error("read_qubo: malformed term line: " + line);
      }
      if (i == j) {
        q.add_linear(i, coeff);
      } else {
        q.add_quadratic(i, j, coeff);
      }
    }
  }
  if (!saw_header) throw std::runtime_error("read_qubo: missing header");
  return q;
}

Qubo qubo_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_qubo(is);
}

}  // namespace nck
