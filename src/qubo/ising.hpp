// Two-local Ising form  H(s) = offset + sum_i h_i s_i + sum_{i<j} J_ij s_i s_j
// with spins s_i in {-1, +1}. D-Wave hardware natively minimizes this form;
// the paper (Section VI) notes the simple linear transformation between the
// two. We use the convention x_i = (1 + s_i) / 2, i.e. spin +1 <=> TRUE.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "qubo/qubo.hpp"

namespace nck {

struct IsingModel {
  using Var = Qubo::Var;

  std::vector<double> h;                             // per-spin fields
  std::vector<std::tuple<Var, Var, double>> j;       // couplers, i < j
  double offset = 0.0;

  std::size_t num_spins() const noexcept { return h.size(); }

  /// Energy for spins in {-1,+1} encoded as bools (true == +1).
  double energy(const std::vector<bool>& spins) const;

  /// Number of nonzero h plus nonzero J entries (Ising "terms").
  std::size_t num_terms() const noexcept;
};

/// Exact conversion: minimizers map bijectively via x = (1+s)/2.
IsingModel qubo_to_ising(const Qubo& q);

/// Inverse conversion.
Qubo ising_to_qubo(const IsingModel& m);

}  // namespace nck
