#include "qubo/presolve.hpp"

#include <algorithm>
#include <stdexcept>

namespace nck {

std::vector<bool> PresolveResult::complete(std::vector<bool> assignment) const {
  assignment.resize(fixed.size(), false);
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    if (fixed[i] == 0) assignment[i] = false;
    if (fixed[i] == 1) assignment[i] = true;
  }
  return assignment;
}

PresolveResult presolve(const Qubo& q) {
  const std::size_t n = q.num_variables();
  PresolveResult result;
  result.fixed.assign(n, -1);
  result.reduced = q;

  bool changed = true;
  while (changed) {
    changed = false;
    ++result.rounds;
    const auto adj = result.reduced.adjacency();
    for (std::size_t i = 0; i < n; ++i) {
      if (result.fixed[i] != -1) continue;
      const double a = result.reduced.linear(static_cast<Qubo::Var>(i));
      double worst_down = 0.0;  // sum of negative couplings
      double worst_up = 0.0;    // sum of positive couplings
      for (const auto& [j, c] : adj[i]) {
        if (result.fixed[j] != -1) continue;  // already folded away
        worst_down += std::min(0.0, c);
        worst_up += std::max(0.0, c);
      }
      int decide = -1;
      if (a + worst_down >= 0.0) {
        decide = 0;  // activating i can never strictly help
      } else if (a + worst_up <= 0.0) {
        decide = 1;  // activating i can never hurt
      }
      if (decide == -1) continue;

      result.fixed[i] = decide;
      ++result.num_fixed;
      changed = true;
      // Substitute: x_i = decide. For decide == 1, b_ij x_j folds into the
      // linear term of j and a_i into the offset; either way i's terms go.
      Qubo next(n);
      next.add_offset(result.reduced.offset());
      for (std::size_t k = 0; k < n; ++k) {
        double lin = result.reduced.linear(static_cast<Qubo::Var>(k));
        if (k == i) {
          if (decide == 1) next.add_offset(lin);
          continue;
        }
        next.add_linear(static_cast<Qubo::Var>(k), lin);
      }
      for (const auto& [u, v, c] : result.reduced.quadratic_terms()) {
        if (u == i || v == i) {
          if (decide == 1) {
            next.add_linear(u == i ? v : u, c);
          }
          continue;
        }
        next.add_quadratic(u, v, c);
      }
      result.reduced = std::move(next);
    }
  }
  return result;
}

}  // namespace nck
