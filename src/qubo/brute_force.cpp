#include "qubo/brute_force.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace nck {
namespace {

std::vector<bool> unpack(std::uint64_t bits, std::size_t n) {
  std::vector<bool> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = (bits >> i) & 1u;
  return x;
}

}  // namespace

BruteForceResult brute_force_minimize(const Qubo& q,
                                      std::size_t max_ground_states,
                                      double tie_eps) {
  const std::size_t n = q.num_variables();
  if (n > 30) {
    throw std::invalid_argument("brute_force_minimize: too many variables");
  }
  const std::uint64_t total = 1ull << n;

  // Pass 1: find the minimum energy in parallel.
  double min_energy = std::numeric_limits<double>::infinity();
#pragma omp parallel
  {
    double local_min = std::numeric_limits<double>::infinity();
    std::vector<bool> x(n);
#pragma omp for schedule(static)
    for (std::int64_t bits = 0; bits < static_cast<std::int64_t>(total);
         ++bits) {
      for (std::size_t i = 0; i < n; ++i) x[i] = (bits >> i) & 1;
      local_min = std::min(local_min, q.energy(x));
    }
#pragma omp critical
    min_energy = std::min(min_energy, local_min);
  }

  // Pass 2: collect ground states in deterministic order.
  BruteForceResult result;
  result.min_energy = min_energy;
  std::vector<bool> x(n);
  for (std::uint64_t bits = 0; bits < total; ++bits) {
    for (std::size_t i = 0; i < n; ++i) x[i] = (bits >> i) & 1u;
    if (q.energy(x) <= min_energy + tie_eps) {
      if (result.ground_states.size() >= max_ground_states) {
        result.truncated = true;
        break;
      }
      result.ground_states.push_back(unpack(bits, n));
    }
  }
  return result;
}

double brute_force_min_energy(const Qubo& q) {
  return brute_force_minimize(q, 1).min_energy;
}

double brute_force_min_energy_with_fixed(const Qubo& q,
                                         std::span<const int> fixed) {
  const std::size_t n = q.num_variables();
  if (n > 30) {
    throw std::invalid_argument("brute_force: too many variables");
  }
  std::vector<std::size_t> free_vars;
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= fixed.size() || fixed[i] < 0) free_vars.push_back(i);
  }
  const std::uint64_t total = 1ull << free_vars.size();
  double best = std::numeric_limits<double>::infinity();
  std::vector<bool> x(n, false);
  for (std::size_t i = 0; i < n && i < fixed.size(); ++i) {
    if (fixed[i] > 0) x[i] = true;
  }
  for (std::uint64_t bits = 0; bits < total; ++bits) {
    for (std::size_t k = 0; k < free_vars.size(); ++k) {
      x[free_vars[k]] = (bits >> k) & 1u;
    }
    best = std::min(best, q.energy(x));
  }
  return best;
}

std::vector<double> ancilla_projected_minima(const Qubo& q, std::size_t d,
                                             std::size_t a) {
  if (d + a > 28) {
    throw std::invalid_argument(
        "ancilla_projected_minima: constraint too large");
  }
  if (q.num_variables() > d + a) {
    throw std::invalid_argument(
        "ancilla_projected_minima: QUBO touches variables beyond d + a");
  }
  std::vector<double> minima(1ull << d,
                             std::numeric_limits<double>::infinity());
  std::vector<bool> bits(d + a);
  for (std::uint64_t x = 0; x < (1ull << d); ++x) {
    double best = std::numeric_limits<double>::infinity();
    for (std::uint64_t z = 0; z < (1ull << a); ++z) {
      const std::uint64_t full = x | (z << d);
      for (std::size_t i = 0; i < d + a; ++i) bits[i] = (full >> i) & 1u;
      best = std::min(best, q.energy(bits));
    }
    minima[x] = best;
  }
  return minima;
}

}  // namespace nck
