#include "qubo/heuristic.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>

namespace nck {
namespace {

// Local view used by all samplers: adjacency lists plus the energy delta of
// flipping one variable, maintained incrementally.
struct FlipState {
  const Qubo& q;
  std::vector<std::vector<std::pair<Qubo::Var, double>>> adj;
  std::vector<bool> x;
  double energy;

  FlipState(const Qubo& q_, std::vector<bool> start)
      : q(q_), adj(q_.adjacency()), x(std::move(start)), energy(q_.energy(x)) {}

  // Energy change if variable i were flipped.
  double delta(std::size_t i) const {
    const double sign = x[i] ? -1.0 : 1.0;
    double d = sign * q.linear(static_cast<Qubo::Var>(i));
    for (const auto& [j, c] : adj[i]) {
      if (x[j]) d += sign * c;
    }
    return d;
  }

  void flip(std::size_t i, double d) {
    x[i] = !x[i];
    energy += d;
  }
};

std::vector<bool> random_state(std::size_t n, Rng& rng) {
  std::vector<bool> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = rng.bernoulli(0.5);
  return x;
}

void metropolis_sweep(FlipState& s, double beta, Rng& rng) {
  const std::size_t n = s.x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = s.delta(i);
    if (d <= 0.0 || rng.uniform() < std::exp(-beta * d)) {
      s.flip(i, d);
    }
  }
}

}  // namespace

std::vector<double> beta_schedule(const AnnealParams& params) {
  std::vector<double> betas(params.num_sweeps);
  if (betas.empty()) return betas;
  if (betas.size() == 1) {
    betas[0] = params.beta_final;
    return betas;
  }
  const double log_ratio = std::log(params.beta_final / params.beta_initial);
  const double denom = static_cast<double>(betas.size() - 1);
  for (std::size_t k = 0; k < betas.size(); ++k) {
    betas[k] =
        params.beta_initial * std::exp(log_ratio * static_cast<double>(k) / denom);
  }
  betas.front() = params.beta_initial;
  betas.back() = params.beta_final;
  return betas;
}

Sample anneal_once(const Qubo& q, const AnnealParams& params, Rng& rng) {
  FlipState s(q, random_state(q.num_variables(), rng));
  if (q.num_variables() == 0) return {s.x, s.energy};
  for (double beta : beta_schedule(params)) {
    metropolis_sweep(s, beta, rng);
  }
  // Quench to the nearest local minimum for a clean readout.
  Sample out = greedy_descent(q, std::move(s.x));
  return out;
}

std::vector<Sample> anneal(const Qubo& q, const AnnealParams& params,
                           std::size_t num_reads, Rng& rng) {
  std::vector<Rng> streams;
  streams.reserve(num_reads);
  for (std::size_t r = 0; r < num_reads; ++r) streams.push_back(rng.split());
  std::vector<Sample> samples(num_reads);
#pragma omp parallel for schedule(dynamic)
  for (std::int64_t r = 0; r < static_cast<std::int64_t>(num_reads); ++r) {
    samples[static_cast<std::size_t>(r)] =
        anneal_once(q, params, streams[static_cast<std::size_t>(r)]);
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.energy < b.energy; });
  return samples;
}

Sample greedy_descent(const Qubo& q, std::vector<bool> start) {
  start.resize(q.num_variables(), false);
  FlipState s(q, std::move(start));
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double d = s.delta(i);
      if (d < -Qubo::kEps) {
        s.flip(i, d);
        improved = true;
      }
    }
  }
  return {std::move(s.x), s.energy};
}

Sample tabu_search(const Qubo& q, std::vector<bool> start,
                   const TabuParams& params) {
  start.resize(q.num_variables(), false);
  FlipState s(q, std::move(start));
  const std::size_t n = s.x.size();
  if (n == 0 || params.max_iters == 0) {
    return greedy_descent(q, std::move(s.x));
  }
  const std::size_t tenure =
      params.tenure ? params.tenure : std::min<std::size_t>(20, n / 4) + 1;
  const std::size_t stall_iters =
      params.stall_iters ? params.stall_iters : params.max_iters / 4 + 1;

  std::vector<bool> best = s.x;
  double best_energy = s.energy;
  std::vector<std::size_t> tabu_until(n, 0);
  std::size_t stall = 0;
  for (std::size_t iter = 1;
       iter <= params.max_iters && stall < stall_iters; ++iter) {
    std::size_t move = n;
    double move_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = s.delta(i);
      const bool tabu = tabu_until[i] >= iter;
      if (tabu && s.energy + d >= best_energy - Qubo::kEps) continue;
      if (move == n || d < move_delta - Qubo::kEps) {
        move = i;
        move_delta = d;
      }
    }
    if (move == n) break;  // everything tabu and nothing aspirates
    s.flip(move, move_delta);
    tabu_until[move] = iter + tenure;
    if (s.energy < best_energy - Qubo::kEps) {
      best_energy = s.energy;
      best = s.x;
      stall = 0;
    } else {
      ++stall;
    }
  }
  // Quench the best state: tabu may have stepped off a local minimum last.
  return greedy_descent(q, std::move(best));
}

std::vector<Sample> boltzmann_sample(const Qubo& q, double beta,
                                     std::size_t num_samples, Rng& rng,
                                     std::size_t burn_in_sweeps,
                                     std::size_t thin_sweeps) {
  FlipState s(q, random_state(q.num_variables(), rng));
  for (std::size_t i = 0; i < burn_in_sweeps; ++i) metropolis_sweep(s, beta, rng);
  std::vector<Sample> out;
  out.reserve(num_samples);
  for (std::size_t k = 0; k < num_samples; ++k) {
    for (std::size_t i = 0; i < thin_sweeps; ++i) metropolis_sweep(s, beta, rng);
    out.push_back({s.x, s.energy});
  }
  return out;
}

}  // namespace nck
