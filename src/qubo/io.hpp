// Plain-text QUBO serialization, format compatible in spirit with the
// qbsolv ".qubo" style: a header line then one line per term.
//
//   p qubo 0 <num_vars> <num_linear> <num_quadratic>
//   <i> <i> <coeff>      (linear)
//   <i> <j> <coeff>      (quadratic, i < j)
//   c offset <value>     (optional comment-carried offset)
#pragma once

#include <iosfwd>
#include <string>

#include "qubo/qubo.hpp"

namespace nck {

void write_qubo(std::ostream& os, const Qubo& q);
std::string qubo_to_text(const Qubo& q);

/// Parses the format written by write_qubo. Throws std::runtime_error on
/// malformed input.
Qubo read_qubo(std::istream& is);
Qubo qubo_from_text(const std::string& text);

}  // namespace nck
