// Quadratic unconstrained binary optimization (QUBO) model — the paper's
// intermediate representation (Section V):
//
//   f(x) = offset + sum_i a_i x_i + sum_{i<j} b_ij x_i x_j,  x_i in {0,1}.
//
// Key property exploited by NchooseK: QUBOs are *compositional with respect
// to addition*, so per-constraint QUBOs sum into a whole-problem QUBO, and
// can be scaled by positive factors (used to bias hard over soft
// constraints).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace nck {

class Qubo {
 public:
  using Var = std::uint32_t;

  Qubo() = default;
  /// Pre-declares `num_variables` variables (they may all stay zero-weight).
  explicit Qubo(std::size_t num_variables);

  /// Number of declared variables (max touched index + 1).
  std::size_t num_variables() const noexcept { return linear_.size(); }

  /// Declares variables up to `n` without adding terms.
  void resize(std::size_t n);

  /// Adds `c` to the linear coefficient of x_i (declaring i if needed).
  void add_linear(Var i, double c);

  /// Adds `c` to the quadratic coefficient of x_i x_j. Requires i != j;
  /// the pair is stored unordered ((i,j) and (j,i) accumulate together).
  void add_quadratic(Var i, Var j, double c);

  /// Adds a constant to the objective.
  void add_offset(double c) noexcept { offset_ += c; }

  double linear(Var i) const noexcept {
    return i < linear_.size() ? linear_[i] : 0.0;
  }
  double quadratic(Var i, Var j) const noexcept;
  double offset() const noexcept { return offset_; }

  /// Number of nonzero linear terms (|a_i| > eps).
  std::size_t num_linear_terms() const noexcept;
  /// Number of nonzero quadratic terms (|b_ij| > eps).
  std::size_t num_quadratic_terms() const noexcept;
  /// Total nonzero terms — the "QUBO terms" column of Table I.
  std::size_t num_terms() const noexcept {
    return num_linear_terms() + num_quadratic_terms();
  }

  /// Objective value for a full assignment (size must be >= num_variables).
  double energy(const std::vector<bool>& x) const;

  /// In-place sum of another QUBO (variables identified by index).
  Qubo& operator+=(const Qubo& other);
  friend Qubo operator+(Qubo lhs, const Qubo& rhs) {
    lhs += rhs;
    return lhs;
  }

  /// Scales every coefficient (including the offset) by `factor`.
  /// `factor` must be positive to preserve the minimizer set.
  Qubo& scale(double factor);

  /// Largest absolute coefficient over linear and quadratic terms.
  double max_abs_coefficient() const noexcept;

  /// Remaps variable i to `mapping[i]`. Used when composing per-constraint
  /// QUBOs into problem-level variable space. A non-injective mapping
  /// merges variables: quadratic terms whose endpoints collide fold into
  /// linear terms (x^2 == x for binaries).
  Qubo remapped(std::span<const Var> mapping) const;

  /// Interaction list of (neighbor, coefficient) per variable; rebuilt on
  /// call. Samplers use this for O(degree) energy deltas.
  std::vector<std::vector<std::pair<Var, double>>> adjacency() const;

  /// Quadratic terms as a flat list of (i, j, coeff) with i < j, in
  /// deterministic (sorted) order.
  std::vector<std::tuple<Var, Var, double>> quadratic_terms() const;

  /// Human-readable polynomial, e.g. "1 + 2*x0 - 3*x0*x1" (debugging aid).
  std::string to_string() const;

  /// Coefficients closer to zero than this are treated as absent.
  static constexpr double kEps = 1e-9;

 private:
  static std::uint64_t key(Var i, Var j) noexcept;

  std::vector<double> linear_;
  std::unordered_map<std::uint64_t, double> quadratic_;
  double offset_ = 0.0;
};

}  // namespace nck
