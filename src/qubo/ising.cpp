#include "qubo/ising.hpp"

#include <cmath>
#include <stdexcept>

namespace nck {

double IsingModel::energy(const std::vector<bool>& spins) const {
  if (spins.size() < h.size()) {
    throw std::invalid_argument("IsingModel::energy: assignment too short");
  }
  auto s = [&](Var i) { return spins[i] ? 1.0 : -1.0; };
  double e = offset;
  for (std::size_t i = 0; i < h.size(); ++i) e += h[i] * s(static_cast<Var>(i));
  for (const auto& [a, b, c] : j) e += c * s(a) * s(b);
  return e;
}

std::size_t IsingModel::num_terms() const noexcept {
  std::size_t n = 0;
  for (double v : h) {
    if (std::abs(v) > Qubo::kEps) ++n;
  }
  for (const auto& [a, b, c] : j) {
    if (std::abs(c) > Qubo::kEps) ++n;
  }
  return n;
}

IsingModel qubo_to_ising(const Qubo& q) {
  // x_i = (1 + s_i)/2:
  //   a_i x_i           -> a_i/2 s_i + a_i/2
  //   b_ij x_i x_j      -> b_ij/4 (s_i s_j + s_i + s_j + 1)
  IsingModel m;
  m.h.assign(q.num_variables(), 0.0);
  m.offset = q.offset();
  for (std::size_t i = 0; i < q.num_variables(); ++i) {
    const double a = q.linear(static_cast<Qubo::Var>(i));
    m.h[i] += a / 2.0;
    m.offset += a / 2.0;
  }
  for (const auto& [i, j, b] : q.quadratic_terms()) {
    m.j.emplace_back(i, j, b / 4.0);
    m.h[i] += b / 4.0;
    m.h[j] += b / 4.0;
    m.offset += b / 4.0;
  }
  return m;
}

Qubo ising_to_qubo(const IsingModel& m) {
  // s_i = 2 x_i - 1:
  //   h_i s_i      -> 2 h_i x_i - h_i
  //   J_ij s_i s_j -> 4 J x_i x_j - 2 J x_i - 2 J x_j + J
  Qubo q(m.num_spins());
  q.add_offset(m.offset);
  for (std::size_t i = 0; i < m.h.size(); ++i) {
    q.add_linear(static_cast<Qubo::Var>(i), 2.0 * m.h[i]);
    q.add_offset(-m.h[i]);
  }
  for (const auto& [a, b, c] : m.j) {
    q.add_quadratic(a, b, 4.0 * c);
    q.add_linear(a, -2.0 * c);
    q.add_linear(b, -2.0 * c);
    q.add_offset(c);
  }
  return q;
}

}  // namespace nck
