// Lightweight, zero-dependency tracing + metrics for the solve path.
//
// The pipeline (compile -> synth -> presolve -> embed -> anneal, or
// compile -> transpile -> QAOA) reports per-stage costs through one
// `Trace` per solve: RAII `Span`s time wall-clock stages on a monotonic
// clock, modeled device times (the D-Wave/IBM timing models) enter as
// `modeled` spans, and a thread-safe `Registry` holds named counters,
// gauges, and min/max/sum histograms (e.g. the embedding chain-length
// distribution).
//
// Naming scheme (see DESIGN.md §3b): dotted lowercase paths, with the
// first component naming the stage ("compile", "synth", "presolve",
// "embed", "anneal", "transpile", "qaoa", "statevector", "device").
// Counters count events ("synth.cache_hits"), gauges record last-written
// values ("transpile.depth"), histograms record distributions
// ("embed.chain_length").
//
// Everything here degrades to a no-op when the trace pointer is null, so
// instrumented code paths cost one branch when tracing is off.
#pragma once

#include <chrono>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace nck::obs {

/// Sentinel parent index for root spans.
inline constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

/// One completed (or still-open) stage timing.
struct SpanRecord {
  std::string name;
  std::size_t parent = kNoParent;  // index into TraceData::spans
  std::size_t depth = 0;
  double start_us = 0.0;     // offset from trace creation, monotonic clock
  double duration_us = 0.0;  // 0 while the span is still open
  /// Modeled device time (from a timing model) rather than measured wall
  /// clock. Kept distinct so benches can separate client from device cost.
  bool modeled = false;
};

/// Running min/max/sum/count summary of an observed distribution.
struct HistogramData {
  std::size_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void observe(double value) noexcept {
    if (count == 0) {
      min = max = value;
    } else {
      if (value < min) min = value;
      if (value > max) max = value;
    }
    sum += value;
    ++count;
  }
  double mean() const noexcept {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Plain, copyable snapshot of a whole trace — what `SolveReport` carries
/// and what the JSON exporter serializes.
struct TraceData {
  std::vector<SpanRecord> spans;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  bool empty() const noexcept {
    return spans.empty() && counters.empty() && gauges.empty() &&
           histograms.empty();
  }
  /// First span with the given name, or nullptr.
  const SpanRecord* find_span(const std::string& name) const noexcept;
  /// Counter/gauge value, or 0 when the name was never recorded.
  double counter(const std::string& name) const noexcept;
  double gauge(const std::string& name) const noexcept;
};

/// Thread-safe named metrics. Safe to call from inside OpenMP regions
/// (one mutex; callers on hot paths should aggregate locally and record
/// once per batch, as the annealing sampler does).
class Registry {
 public:
  /// Adds `delta` to a monotonic counter (created at 0).
  void add(const std::string& name, double delta = 1.0);
  /// Sets a gauge to `value` (last write wins).
  void set(const std::string& name, double value);
  /// Feeds one observation into a histogram.
  void observe(const std::string& name, double value);

  void snapshot_into(TraceData& out) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramData> histograms_;
};

/// One trace per solve. Spans open/close LIFO on the constructing thread;
/// the registry may be written from any thread.
class Trace {
 public:
  Trace() : start_(Clock::now()) {}

  Registry& registry() noexcept { return registry_; }

  /// Appends a completed span with a duration taken from a device timing
  /// model instead of the wall clock. Nested under the innermost open span.
  void record_modeled(const std::string& name, double duration_us);

  /// Copies spans + metrics into a plain snapshot. Open spans appear with
  /// duration 0.
  TraceData snapshot() const;

 private:
  friend class Span;
  using Clock = std::chrono::steady_clock;

  double elapsed_us() const noexcept {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }
  std::size_t open_span(const std::string& name);
  void close_span(std::size_t index);

  Clock::time_point start_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::vector<std::size_t> stack_;  // indices of open spans, innermost last
  Registry registry_;
};

/// RAII stage timer. A null trace makes every operation a no-op, so call
/// sites can thread an optional `Trace*` without branching themselves.
class Span {
 public:
  Span(Trace* trace, const std::string& name) : trace_(trace) {
    if (trace_) index_ = trace_->open_span(name);
  }
  Span(Trace& trace, const std::string& name) : Span(&trace, name) {}
  ~Span() { close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Closes early (idempotent); the destructor then does nothing.
  void close() {
    if (trace_) {
      trace_->close_span(index_);
      trace_ = nullptr;
    }
  }

 private:
  Trace* trace_ = nullptr;
  std::size_t index_ = 0;
};

///// Stitches one task's trace into a batch trace: appends a synthetic root
/// span named `root` (duration = the task's last span end) and re-parents
/// the task's spans under it at depth + 1, preserving pre-order. Counters
/// are summed, histograms merged, gauges last-write-wins — so a stitched
/// batch trace aggregates "plan_cache.hit" style counters across tasks
/// while keeping each task's span tree inspectable.
void merge_trace(TraceData& out, const TraceData& task, const std::string& root);

/// Convenience: adds to `trace->registry()` when trace is non-null.
inline void count(Trace* trace, const std::string& name, double delta = 1.0) {
  if (trace) trace->registry().add(name, delta);
}
inline void gauge(Trace* trace, const std::string& name, double value) {
  if (trace) trace->registry().set(name, value);
}
inline void observe(Trace* trace, const std::string& name, double value) {
  if (trace) trace->registry().observe(name, value);
}

}  // namespace nck::obs
