// JSON serialization of trace snapshots, in the spirit of qubo/io: a
// writer pair (stream + string) and a strict reader pair that round-trips
// everything the writer emits. Schema (versioned as "nck-trace-v1"):
//
//   {
//     "schema": "nck-trace-v1",
//     "spans": [{"name": "...", "parent": -1, "depth": 0,
//                "start_us": 0.0, "duration_us": 1.5, "modeled": false}],
//     "counters": {"synth.requests": 5.0},
//     "gauges": {"transpile.depth": 42.0},
//     "histograms": {"embed.chain_length":
//                    {"count": 4, "sum": 9.0, "min": 1.0, "max": 4.0}}
//   }
//
// Doubles are written with max_digits10 precision so numeric values
// round-trip bit-exactly.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/obs.hpp"

namespace nck::obs {

void write_trace(std::ostream& os, const TraceData& trace);
std::string trace_to_json(const TraceData& trace);

/// Parses the format written by write_trace. Throws std::runtime_error on
/// malformed input or a schema mismatch.
TraceData read_trace(std::istream& is);
TraceData trace_from_json(const std::string& text);

/// Renders the trace as aligned tables (spans, then counters/gauges, then
/// histograms) via util/table — the `nck_cli solve --trace` output.
void print_trace(std::ostream& os, const TraceData& trace);

}  // namespace nck::obs
