#include "obs/json.hpp"

#include <cstdlib>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/table.hpp"

namespace nck::obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

void write_double(std::ostream& os, double v) {
  // max_digits10 round-trips binary64 exactly through text.
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
}

void write_metric_map(std::ostream& os, const char* key,
                      const std::map<std::string, double>& values) {
  os << "\"" << key << "\":{";
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":";
    write_double(os, value);
  }
  os << "}";
}

// ----------------------------------------------------------------- Parser
//
// Strict recursive-descent parser for the subset of JSON the writer emits
// (objects, arrays, strings, numbers, booleans). Unknown keys are
// rejected: the schema is ours, so silence would only hide writer drift.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  /// Consumes `c` if it is next; returns whether it did.
  bool accept(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: fail(std::string("unsupported escape '\\") + e + "'");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  double number() {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) fail("expected a number");
    pos_ += static_cast<std::size_t>(end - begin);
    return value;
  }

  bool boolean() {
    skip_ws();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("expected a boolean");
  }

  void finish() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("trace_from_json: " + why + " at offset " +
                             std::to_string(pos_));
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

std::map<std::string, double> parse_metric_map(Cursor& c) {
  std::map<std::string, double> out;
  c.expect('{');
  if (c.accept('}')) return out;
  do {
    const std::string name = c.string();
    c.expect(':');
    out[name] = c.number();
  } while (c.accept(','));
  c.expect('}');
  return out;
}

SpanRecord parse_span(Cursor& c) {
  SpanRecord span;
  c.expect('{');
  do {
    const std::string key = c.string();
    c.expect(':');
    if (key == "name") {
      span.name = c.string();
    } else if (key == "parent") {
      const double parent = c.number();
      span.parent =
          parent < 0 ? kNoParent : static_cast<std::size_t>(parent);
    } else if (key == "depth") {
      span.depth = static_cast<std::size_t>(c.number());
    } else if (key == "start_us") {
      span.start_us = c.number();
    } else if (key == "duration_us") {
      span.duration_us = c.number();
    } else if (key == "modeled") {
      span.modeled = c.boolean();
    } else {
      c.fail("unknown span key \"" + key + "\"");
    }
  } while (c.accept(','));
  c.expect('}');
  return span;
}

HistogramData parse_histogram(Cursor& c) {
  HistogramData h;
  c.expect('{');
  do {
    const std::string key = c.string();
    c.expect(':');
    if (key == "count") {
      h.count = static_cast<std::size_t>(c.number());
    } else if (key == "sum") {
      h.sum = c.number();
    } else if (key == "min") {
      h.min = c.number();
    } else if (key == "max") {
      h.max = c.number();
    } else {
      c.fail("unknown histogram key \"" + key + "\"");
    }
  } while (c.accept(','));
  c.expect('}');
  return h;
}

}  // namespace

void write_trace(std::ostream& os, const TraceData& trace) {
  os << "{\"schema\":\"nck-trace-v1\",\"spans\":[";
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const SpanRecord& s = trace.spans[i];
    if (i) os << ",";
    os << "{\"name\":\"" << json_escape(s.name) << "\",\"parent\":"
       << (s.parent == kNoParent ? -1 : static_cast<long long>(s.parent))
       << ",\"depth\":" << s.depth << ",\"start_us\":";
    write_double(os, s.start_us);
    os << ",\"duration_us\":";
    write_double(os, s.duration_us);
    os << ",\"modeled\":" << (s.modeled ? "true" : "false") << "}";
  }
  os << "],";
  write_metric_map(os, "counters", trace.counters);
  os << ",";
  write_metric_map(os, "gauges", trace.gauges);
  os << ",\"histograms\":{";
  bool first = true;
  for (const auto& [name, h] : trace.histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":{\"count\":" << h.count
       << ",\"sum\":";
    write_double(os, h.sum);
    os << ",\"min\":";
    write_double(os, h.min);
    os << ",\"max\":";
    write_double(os, h.max);
    os << "}";
  }
  os << "}}";
}

std::string trace_to_json(const TraceData& trace) {
  std::ostringstream os;
  write_trace(os, trace);
  return os.str();
}

TraceData trace_from_json(const std::string& text) {
  TraceData trace;
  Cursor c(text);
  c.expect('{');
  do {
    const std::string key = c.string();
    c.expect(':');
    if (key == "schema") {
      const std::string schema = c.string();
      if (schema != "nck-trace-v1") {
        throw std::runtime_error("trace_from_json: unsupported schema \"" +
                                 schema + "\"");
      }
    } else if (key == "spans") {
      c.expect('[');
      if (!c.accept(']')) {
        do {
          trace.spans.push_back(parse_span(c));
        } while (c.accept(','));
        c.expect(']');
      }
    } else if (key == "counters") {
      trace.counters = parse_metric_map(c);
    } else if (key == "gauges") {
      trace.gauges = parse_metric_map(c);
    } else if (key == "histograms") {
      c.expect('{');
      if (!c.accept('}')) {
        do {
          const std::string name = c.string();
          c.expect(':');
          trace.histograms[name] = parse_histogram(c);
        } while (c.accept(','));
        c.expect('}');
      }
    } else {
      c.fail("unknown trace key \"" + key + "\"");
    }
  } while (c.accept(','));
  c.expect('}');
  c.finish();
  return trace;
}

TraceData read_trace(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return trace_from_json(buffer.str());
}

void print_trace(std::ostream& os, const TraceData& trace) {
  if (trace.empty()) {
    os << "trace: empty\n";
    return;
  }
  if (!trace.spans.empty()) {
    Table spans({"span", "start(ms)", "dur(ms)", "kind"});
    for (const SpanRecord& s : trace.spans) {
      spans.row()
          .cell(std::string(2 * s.depth, ' ') + s.name)
          .cell(s.start_us / 1000.0, 3)
          .cell(s.duration_us / 1000.0, 3)
          .cell(s.modeled ? "model" : "wall");
    }
    spans.print(os);
  }
  if (!trace.counters.empty() || !trace.gauges.empty()) {
    Table metrics({"metric", "kind", "value"});
    for (const auto& [name, value] : trace.counters) {
      metrics.row().cell(name).cell("counter").cell(value, 3);
    }
    for (const auto& [name, value] : trace.gauges) {
      metrics.row().cell(name).cell("gauge").cell(value, 3);
    }
    metrics.print(os);
  }
  if (!trace.histograms.empty()) {
    Table hist({"histogram", "count", "mean", "min", "max"});
    for (const auto& [name, h] : trace.histograms) {
      hist.row()
          .cell(name)
          .cell(h.count)
          .cell(h.mean(), 3)
          .cell(h.min, 3)
          .cell(h.max, 3);
    }
    hist.print(os);
  }
}

}  // namespace nck::obs
