#include "obs/obs.hpp"

#include <algorithm>

namespace nck::obs {

const SpanRecord* TraceData::find_span(const std::string& name) const noexcept {
  for (const SpanRecord& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

double TraceData::counter(const std::string& name) const noexcept {
  const auto it = counters.find(name);
  return it == counters.end() ? 0.0 : it->second;
}

double TraceData::gauge(const std::string& name) const noexcept {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

void Registry::add(const std::string& name, double delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void Registry::set(const std::string& name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void Registry::observe(const std::string& name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  histograms_[name].observe(value);
}

void Registry::snapshot_into(TraceData& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  out.counters = counters_;
  out.gauges = gauges_;
  out.histograms = histograms_;
}

void Trace::record_modeled(const std::string& name, double duration_us) {
  const std::lock_guard<std::mutex> lock(mutex_);
  SpanRecord record;
  record.name = name;
  record.parent = stack_.empty() ? kNoParent : stack_.back();
  record.depth = stack_.size();
  record.start_us = elapsed_us();
  record.duration_us = duration_us;
  record.modeled = true;
  spans_.push_back(std::move(record));
}

std::size_t Trace::open_span(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  SpanRecord record;
  record.name = name;
  record.parent = stack_.empty() ? kNoParent : stack_.back();
  record.depth = stack_.size();
  record.start_us = elapsed_us();
  const std::size_t index = spans_.size();
  spans_.push_back(std::move(record));
  stack_.push_back(index);
  return index;
}

void Trace::close_span(std::size_t index) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (index >= spans_.size()) return;
  spans_[index].duration_us = elapsed_us() - spans_[index].start_us;
  // Usually the innermost open span; erase wherever it sits so an
  // out-of-order close() cannot wedge the stack.
  const auto it = std::find(stack_.begin(), stack_.end(), index);
  if (it != stack_.end()) stack_.erase(it);
}

TraceData Trace::snapshot() const {
  TraceData out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.spans = spans_;
  }
  registry_.snapshot_into(out);
  return out;
}

void merge_trace(TraceData& out, const TraceData& task,
                 const std::string& root) {
  SpanRecord root_span;
  root_span.name = root;
  for (const SpanRecord& s : task.spans) {
    const double end_us = s.start_us + s.duration_us;
    if (end_us > root_span.duration_us) root_span.duration_us = end_us;
  }
  const std::size_t root_index = out.spans.size();
  out.spans.push_back(std::move(root_span));

  const std::size_t offset = out.spans.size();
  for (const SpanRecord& s : task.spans) {
    SpanRecord copy = s;
    copy.parent = s.parent == kNoParent ? root_index : offset + s.parent;
    copy.depth = s.depth + 1;
    out.spans.push_back(std::move(copy));
  }

  for (const auto& [name, value] : task.counters) out.counters[name] += value;
  for (const auto& [name, value] : task.gauges) out.gauges[name] = value;
  for (const auto& [name, hist] : task.histograms) {
    HistogramData& dst = out.histograms[name];
    if (dst.count == 0) {
      dst = hist;
    } else if (hist.count > 0) {
      if (hist.min < dst.min) dst.min = hist.min;
      if (hist.max > dst.max) dst.max = hist.max;
      dst.sum += hist.sum;
      dst.count += hist.count;
    }
  }
}

}  // namespace nck::obs
