// backend::Backend adapter over the annealing pipeline. The adapter does
// not own its configuration: it points at the caller's
// AnnealBackendOptions and base Device (so options edited through
// Solver::annealer_options() take effect on the next solve), and builds
// plans via prepare_annealer / executes them via execute_annealer.
//
// The plan key covers the program, the (possibly degraded) device
// topology, and the prepare-relevant options: compile margin, embedding
// knobs, chain strength, presolve. Sampler options (reads, sweeps, ICE
// noise, timing model) are execute-only and deliberately excluded, so
// degraded retries and re-tuned noise levels still hit the cache.
#pragma once

#include "anneal/backend.hpp"
#include "backend/backend.hpp"

namespace nck::backend {

class AnnealAdapter final : public Backend {
 public:
  /// Both pointees must outlive the adapter and stay externally owned.
  AnnealAdapter(const AnnealBackendOptions* options, const Device* device)
      : options_(options), device_(device) {}

  BackendKind kind() const noexcept override { return BackendKind::kAnnealer; }
  const char* name() const noexcept override { return "anneal"; }
  bool validate(std::string* why) const override;
  AnalysisTarget analysis_target() const noexcept override;
  Fingerprint plan_key(const PrepareContext& ctx) const override;
  PrepareOutcome prepare(const PrepareContext& ctx) const override;
  ExecutionResult execute(const Plan& plan, ExecuteContext& ctx) const override;
  Budget initial_budget(const SampleFloors& floors) const noexcept override;
  double estimate_attempt_ms(const Budget& budget) const noexcept override;
  bool degrade(Budget& budget) const noexcept override;

 private:
  const Device& device_for(const PrepareContext& ctx) const noexcept {
    return ctx.device != nullptr ? *ctx.device : *device_;
  }

  const AnnealBackendOptions* options_;
  const Device* device_;
};

}  // namespace nck::backend
