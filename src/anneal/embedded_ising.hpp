// Turning a logical Ising problem plus an embedding into the physical-qubit
// Ising program a D-Wave QPU would run: fields split across chains, logical
// couplers distributed over available physical couplers, and ferromagnetic
// intra-chain couplers at the chain strength. Also the inverse direction:
// majority-vote unembedding with chain-break accounting.
#pragma once

#include "anneal/embedding.hpp"
#include "qubo/ising.hpp"
#include "util/rng.hpp"

namespace nck {

/// Physical Ising program over a *compact* index space covering only the
/// qubits actually used (keeps the sampler cost proportional to the
/// embedded size, not the 5760-qubit lattice).
struct EmbeddedProblem {
  IsingModel ising;                           // over compact indices
  std::vector<Graph::Vertex> qubit;           // compact index -> physical qubit
  std::vector<std::vector<std::uint32_t>> chain;  // logical var -> compact ids
  double chain_strength = 0.0;

  std::size_t num_physical_qubits() const noexcept { return qubit.size(); }
};

/// Uniform-torque-compensation style heuristic: strong enough to hold
/// chains together, scaled by the problem's coupling magnitudes.
double recommended_chain_strength(const IsingModel& logical);

/// Builds the physical program. `chain_strength <= 0` selects the
/// recommendation. Requires a valid embedding for the logical interaction
/// graph (every nonzero J must have at least one physical coupler).
EmbeddedProblem embed_ising(const IsingModel& logical,
                            const Embedding& embedding, const Graph& physical,
                            double chain_strength = 0.0);

/// Chain-break accounting for one unembedded sample.
struct UnembedStats {
  std::size_t chain_breaks = 0;  // chains whose qubits disagreed
  std::size_t ties = 0;          // broken even-length chains with a 50/50 vote
};

/// Majority-vote per chain. Exact ties (even-length broken chains) are
/// resolved by a fair coin from `rng`, matching real chain-break
/// postprocessing; a null `rng` falls back to the deterministic
/// ties-to-TRUE rule (only appropriate for tests that need stability —
/// it biases tied chains toward TRUE).
std::vector<bool> unembed_sample(const std::vector<bool>& physical_sample,
                                 const EmbeddedProblem& problem,
                                 UnembedStats* stats = nullptr,
                                 Rng* rng = nullptr);

}  // namespace nck
