#include "anneal/adapter.hpp"

#include <cmath>
#include <string>

#include "resilience/policy.hpp"

namespace nck::backend {
namespace {

struct AnnealPlan final : Plan {
  AnnealPrepared prepared;
  std::size_t footprint = 0;
  std::size_t bytes() const noexcept override { return footprint; }
};

bool finite_nonnegative(double value, const char* what, std::string* why) {
  if (std::isnan(value) || value < 0.0 || !std::isfinite(value)) {
    if (why) *why = std::string(what) + " must be finite and >= 0";
    return false;
  }
  return true;
}

}  // namespace

bool AnnealAdapter::validate(std::string* why) const {
  const AnnealerSamplerOptions& s = options_->sampler;
  const auto reject = [&](const std::string& what) {
    if (why) *why = what;
    return false;
  };
  if (s.num_reads == 0) return reject("annealer num_reads must be > 0");
  if (s.num_sweeps == 0) return reject("annealer num_sweeps must be > 0");
  if (s.num_replicas == 0) return reject("annealer num_replicas must be > 0");
  if (s.exchange_interval == 0) {
    return reject("annealer exchange_interval must be > 0");
  }
  const DWaveTimingModel& t = s.timing_model;
  std::string timing_why;
  if (!finite_nonnegative(t.anneal_us, "anneal_us", &timing_why) ||
      !finite_nonnegative(t.programming_us, "programming_us", &timing_why) ||
      !finite_nonnegative(t.readout_us_per_anneal, "readout_us_per_anneal",
                          &timing_why) ||
      !finite_nonnegative(t.delay_us, "delay_us", &timing_why) ||
      !finite_nonnegative(t.postprocess_us, "postprocess_us", &timing_why)) {
    return reject(timing_why);
  }
  if (std::isnan(s.ice_sigma) || s.ice_sigma < 0.0) {
    return reject("ice_sigma must be >= 0");
  }
  return true;
}

AnalysisTarget AnnealAdapter::analysis_target() const noexcept {
  AnalysisTarget target;
  target.annealer = device_;
  return target;
}

Fingerprint AnnealAdapter::plan_key(const PrepareContext& ctx) const {
  Fingerprint fp;
  fp.mix(std::string("anneal"));
  mix_env(fp, *ctx.env);
  mix_device(fp, device_for(ctx));
  fp.mix(options_->compile.hard_margin);
  fp.mix(options_->embed.max_passes);
  fp.mix(options_->embed.penalty_base);
  fp.mix(options_->embed.tries);
  fp.mix(options_->chain_strength);
  fp.mix(options_->use_presolve);
  return fp;
}

PrepareOutcome AnnealAdapter::prepare(const PrepareContext& ctx) const {
  // Content-addressed preparation RNG: derived from the plan key, never
  // from the solve's sample stream, so the embedding a plan carries is a
  // function of its inputs alone (warm and cold solves agree exactly, and
  // batch results do not depend on which worker built the plan first).
  Rng prep_rng(ctx.key.lo() ^ (ctx.key.hi() * 0x9E3779B97F4A7C15ull));
  auto plan = std::make_shared<AnnealPlan>();
  plan->prepared = prepare_annealer(*ctx.env, device_for(ctx), *ctx.engine,
                                    prep_rng, *options_, ctx.trace);
  PrepareOutcome outcome;
  if (!plan->prepared.embedded) {
    outcome.failure = FailureKind::kNoEmbedding;
    outcome.detail = "no minor embedding found on the device";
    return outcome;
  }
  plan->footprint = plan->prepared.bytes();
  outcome.plan = std::move(plan);
  return outcome;
}

ExecutionResult AnnealAdapter::execute(const Plan& plan,
                                       ExecuteContext& ctx) const {
  const auto& anneal_plan = static_cast<const AnnealPlan&>(plan);
  AnnealBackendOptions options = *options_;
  options.sampler.num_reads = ctx.budget.samples;
  options.faults = ctx.faults;
  AnnealOutcome outcome =
      execute_annealer(anneal_plan.prepared, *ctx.rng, options, ctx.trace);

  ExecutionResult result;
  result.device_seconds = outcome.timing.total_us * 1e-6;
  result.qubits_used = outcome.qubits_used;
  if (outcome.fault) {
    result.failure = failure_from_fault(*outcome.fault);
    result.detail = failure_kind_description(result.failure);
    result.dead_qubits = outcome.dead_qubits;
    if (!result.dead_qubits.empty()) {
      result.detail = std::to_string(result.dead_qubits.size()) +
                      " embedded qubit(s) died mid-session";
    }
    return result;
  }
  if (outcome.samples.empty()) {
    result.failure = FailureKind::kNoSamples;
    result.detail = "annealer returned no samples";
    return result;
  }
  result.samples = std::move(outcome.samples);
  result.evaluations = std::move(outcome.evaluations);
  return result;
}

Budget AnnealAdapter::initial_budget(
    const SampleFloors& floors) const noexcept {
  return {options_->sampler.num_reads, 0, floors.min_reads, 0};
}

double AnnealAdapter::estimate_attempt_ms(const Budget& budget) const noexcept {
  return options_->sampler.timing_model.qpu_access_time_us(budget.samples) *
         1e-3;
}

bool AnnealAdapter::degrade(Budget& budget) const noexcept {
  if (budget.samples <= budget.min_samples) return false;
  budget.samples = degrade_samples(budget.samples, budget.min_samples);
  return true;
}

}  // namespace nck::backend
