// Bit-packed parallel-tempering annealing kernel: the hardware-fast hot
// loop behind sample_annealer (DESIGN.md §3g). Spin states are packed into
// uint64_t words (bit set == spin +1, matching the repo-wide x = (1+s)/2
// convention), the interaction graph is a flat CSR neighbor list built once
// per embedded problem, and per-spin local fields are maintained
// incrementally so a Metropolis proposal costs O(1) instead of O(degree).
// Each read runs a ladder of replicas at fixed inverse temperatures with
// replica-exchange moves; every draw (program noise, sweeps, exchanges)
// comes from one per-read Rng stream, so outputs are bit-identical for a
// fixed seed regardless of thread count (the PR 4 determinism contract).
#pragma once

#include <cstdint>
#include <vector>

#include "qubo/ising.hpp"
#include "util/rng.hpp"

namespace nck {

/// Immutable CSR view of an Ising model, built once per (embedded) problem
/// and shared read-only by every read and thread.
struct PackedIsing {
  explicit PackedIsing(const IsingModel& model);

  std::size_t num_spins() const noexcept { return h.size(); }
  std::size_t num_couplers() const noexcept { return couplers.size(); }
  std::size_t num_words() const noexcept { return (h.size() + 63) / 64; }

  struct Coupler {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    double weight = 0.0;
  };

  std::vector<double> h;          // clean per-spin fields
  std::vector<Coupler> couplers;  // clean couplers, in the model's j order

  // CSR over directed coupler entries: the neighbors of spin i are entries
  // [offsets[i], offsets[i+1]). coupler_of maps each directed entry back to
  // its undirected coupler, so per-read noise drawn once per coupler lands
  // identically on both directions.
  std::vector<std::uint32_t> offsets;    // num_spins + 1
  std::vector<std::uint32_t> neighbors;  // 2 * num_couplers
  std::vector<std::uint32_t> coupler_of; // 2 * num_couplers
};

struct TemperingOptions {
  /// Ladder width; 1 disables tempering in favor of a single-replica
  /// geometric beta ramp (still bit-packed).
  std::size_t num_replicas = 8;
  /// Total sweep budget for the read, split evenly across replicas.
  std::size_t num_sweeps = 1024;
  /// Sweeps between replica-exchange rounds.
  std::size_t exchange_interval = 16;
  double beta_initial = 0.05;
  double beta_final = 6.0;
};

/// Geometric inverse-temperature ladder with both endpoints exact:
/// ladder.front() == beta_initial, ladder.back() == beta_final. A
/// single-replica ladder is {beta_final} (anneal cold, never hot-only).
std::vector<double> tempering_ladder(const TemperingOptions& options);

/// One replica: packed spins, incrementally-maintained local fields
/// field[i] = h_i + sum_j J_ij s_j, and the tracked energy
/// sum_i h_i s_i + sum_{i<j} J_ij s_i s_j (model offset excluded).
struct PackedState {
  std::vector<std::uint64_t> words;
  std::vector<double> field;
  double energy = 0.0;

  bool up(std::size_t i) const noexcept {
    return ((words[i >> 6] >> (i & 63)) & 1u) != 0;
  }
  void toggle(std::size_t i) noexcept { words[i >> 6] ^= 1ull << (i & 63); }
};

/// Per-thread scratch: the gauged/noisy/scaled program of the current read
/// plus the replica ensemble, reused across reads so the hot loop never
/// allocates.
class PackedWorkspace {
 public:
  explicit PackedWorkspace(const PackedIsing& packed);

  /// Loads the clean program (no gauge, no noise, unit scale).
  void load_clean();

  /// Loads one read's physical program: optional spin-reversal gauge,
  /// Gaussian ICE noise of absolute stddev `sigma` on every field and
  /// coupler, then division by `scale` (hardware-style auto-scaling;
  /// `scale <= 0` means no scaling). Draw order — gauge bits, field noise,
  /// coupler noise — matches the original scalar sampler so the per-read
  /// stream discipline is preserved.
  void load_program(bool gauge_enabled, double sigma, double scale, Rng& rng);

  /// Runs bit-packed parallel tempering on the loaded program and returns
  /// the coldest replica after a final greedy quench. Deterministic given
  /// `rng`; the returned reference is owned by the workspace and valid
  /// until the next anneal() or destruction.
  const PackedState& anneal(const TemperingOptions& options, Rng& rng);

  /// One Metropolis sweep at inverse temperature beta; flip delta is
  /// dE(i) = -2 s_i field_i, accepted when dE <= 0 or with probability
  /// exp(-beta dE).
  void sweep(PackedState& state, double beta, Rng& rng) const;

  /// Greedy single-flip descent to a local minimum.
  void descend(PackedState& state) const;

  /// Recomputes fields and energy of `state` from its spin words.
  void refresh(PackedState& state) const;

  /// Uniform random spins (one word draw per 64 spins).
  void randomize(PackedState& state, Rng& rng) const;

  bool gauge_bit(std::size_t i) const noexcept {
    return ((gauge_[i >> 6] >> (i & 63)) & 1u) != 0;
  }

  const PackedIsing& packed() const noexcept { return *packed_; }
  const std::vector<double>& fields() const noexcept { return h_; }
  const std::vector<double>& coupler_weights() const noexcept { return jw_; }

 private:
  void flip(PackedState& state, std::size_t i, double s_old, double d) const;

  const PackedIsing* packed_;
  std::vector<double> h_;             // current program fields
  std::vector<double> jw_;            // current per-coupler weights
  std::vector<double> w_;             // per-directed-entry weights
  std::vector<std::uint64_t> gauge_;  // packed gauge bits of the read
  std::vector<PackedState> replicas_;
  std::vector<std::size_t> order_;    // ladder rung -> replica index
  std::vector<double> ladder_;
};

}  // namespace nck
