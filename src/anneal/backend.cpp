#include "anneal/backend.hpp"

#include <numeric>

#include "qubo/ising.hpp"
#include "qubo/presolve.hpp"
#include "util/timer.hpp"

namespace nck {
namespace {

// Interaction graph of a QUBO: one vertex per variable, one edge per
// nonzero quadratic term. This is what gets minor-embedded.
Graph interaction_graph(const Qubo& q) {
  Graph g(q.num_variables());
  for (const auto& [i, j, c] : q.quadratic_terms()) g.add_edge(i, j);
  return g;
}

// Expands a sample over the (possibly compacted) sampled problem back to
// the program variables.
std::vector<bool> to_program_vars(const AnnealPrepared& prepared,
                                  const std::vector<bool>& sampled) {
  std::vector<bool> full(prepared.compiled.num_qubo_vars(), false);
  if (prepared.use_presolve) {
    for (std::size_t k = 0; k < prepared.free_vars.size(); ++k) {
      full[prepared.free_vars[k]] = sampled[k];
    }
    full = prepared.pres.complete(std::move(full));
  } else {
    full = sampled;
    full.resize(prepared.compiled.num_qubo_vars(), false);
  }
  return {full.begin(), full.begin() + static_cast<std::ptrdiff_t>(
                            prepared.compiled.num_problem_vars)};
}

}  // namespace

std::size_t AnnealPrepared::bytes() const noexcept {
  std::size_t total = sizeof(AnnealPrepared);
  total += compiled.qubo.num_variables() * sizeof(double);
  total += compiled.qubo.num_quadratic_terms() * 3 * sizeof(double);
  total += pres.fixed.capacity() * sizeof(int);
  total += pres.reduced.num_variables() * sizeof(double);
  total += free_vars.capacity() * sizeof(std::size_t);
  total += logical.h.capacity() * sizeof(double);
  total += logical.j.capacity() * sizeof(std::tuple<Qubo::Var, Qubo::Var, double>);
  for (const auto& chain : embedding.chains) {
    total += chain.capacity() * sizeof(Graph::Vertex);
  }
  total += problem.ising.h.capacity() * sizeof(double);
  total +=
      problem.ising.j.capacity() * sizeof(std::tuple<Qubo::Var, Qubo::Var, double>);
  total += problem.qubit.capacity() * sizeof(Graph::Vertex);
  for (const auto& chain : problem.chain) {
    total += chain.capacity() * sizeof(std::uint32_t);
  }
  // The env copy: constraint collections dominate.
  for (const Constraint& c : env.constraints()) {
    total += c.collection().capacity() * sizeof(VarId);
    total += c.distinct_vars().capacity() * sizeof(VarId);
  }
  return total;
}

AnnealPrepared prepare_annealer(const Env& env, const Device& device,
                                SynthEngine& engine, Rng& rng,
                                const AnnealBackendOptions& options,
                                obs::Trace* trace) {
  AnnealPrepared prepared;
  prepared.env = env;
  prepared.use_presolve = options.use_presolve;

  Timer compile_timer;
  prepared.compiled = compile(env, engine, options.compile, trace);

  // Optional presolve: pin decidable variables, then sample only the free
  // ones. `free_vars` maps compacted indices back to full QUBO indices.
  Qubo sampled_qubo = prepared.compiled.qubo;
  if (options.use_presolve) {
    obs::Span presolve_span(trace, "presolve");
    prepared.pres = presolve(prepared.compiled.qubo);
    std::vector<Qubo::Var> to_sampled(prepared.compiled.num_qubo_vars(), 0);
    for (std::size_t i = 0; i < prepared.pres.fixed.size(); ++i) {
      if (prepared.pres.fixed[i] == -1) {
        to_sampled[i] = static_cast<Qubo::Var>(prepared.free_vars.size());
        prepared.free_vars.push_back(i);
      }
    }
    sampled_qubo = prepared.pres.reduced.remapped(to_sampled);
    sampled_qubo.resize(prepared.free_vars.size());
    obs::count(trace, "presolve.fixed",
               static_cast<double>(prepared.pres.num_fixed));
  }
  prepared.num_sampled_vars = sampled_qubo.num_variables();
  prepared.logical = qubo_to_ising(sampled_qubo);
  prepared.compile_ms = compile_timer.milliseconds();

  if (prepared.num_sampled_vars == 0) {
    // Everything pinned by presolve: the answer is deterministic and
    // nothing needs embedding.
    prepared.embedded = true;
    return prepared;
  }

  obs::Span embed_span(trace, "embed");
  Timer embed_timer;
  const Graph logical_graph = interaction_graph(sampled_qubo);
  const Graph working = device.working_graph();
  const auto embedding =
      find_embedding(logical_graph, working, rng, options.embed);
  prepared.embed_ms = embed_timer.milliseconds();
  embed_span.close();
  if (!embedding) return prepared;  // embedded == false

  prepared.embedded = true;
  prepared.embedding = *embedding;
  prepared.qubits_used = embedding->total_qubits();
  prepared.max_chain_length = embedding->max_chain_length();
  prepared.problem = embed_ising(prepared.logical, prepared.embedding, working,
                                 options.chain_strength);
  return prepared;
}

AnnealOutcome execute_annealer(const AnnealPrepared& prepared, Rng& rng,
                               const AnnealBackendOptions& options,
                               obs::Trace* trace) {
  AnnealOutcome outcome;
  outcome.num_logical = prepared.compiled.num_qubo_vars();
  outcome.presolve_fixed = prepared.pres.num_fixed;
  outcome.timing.client_compile_ms = prepared.compile_ms;
  outcome.timing.client_embed_ms = prepared.embed_ms;

  if (!prepared.embedded) return outcome;  // embedded == false

  if (prepared.num_sampled_vars == 0) {
    // Fully pinned by presolve: replicate the deterministic answer.
    outcome.embedded = true;
    for (std::size_t r = 0; r < options.sampler.num_reads; ++r) {
      std::vector<bool> program_vars = to_program_vars(prepared, {});
      outcome.evaluations.push_back(prepared.env.evaluate(program_vars));
      outcome.samples.push_back(std::move(program_vars));
    }
    return outcome;
  }

  outcome.embedded = true;
  outcome.qubits_used = prepared.qubits_used;
  outcome.max_chain_length = prepared.max_chain_length;

  if (options.faults) {
    // The job is built and submitted only now, so an injected session
    // fault wastes the client-side compile/embed work — as on real QPUs.
    // Note: `rng` is untouched until both gates below pass.
    if (const auto fault = options.faults->submit_fault()) {
      outcome.fault = fault;
      obs::count(trace, std::string("resilience.fault.") + fault_name(*fault));
      return outcome;
    }
    // Mid-session dead-qubit event: the device was already programmed, so
    // that time is lost; the current embedding is invalidated.
    std::vector<std::size_t> in_use;
    for (const auto& chain : prepared.embedding.chains) {
      in_use.insert(in_use.end(), chain.begin(), chain.end());
    }
    const std::vector<std::size_t> dead =
        options.faults->dead_qubit_event(in_use);
    if (!dead.empty()) {
      outcome.fault = FaultKind::kDeadQubits;
      outcome.dead_qubits = dead;
      outcome.timing.programming_us = options.sampler.timing_model.programming_us;
      outcome.timing.total_us = outcome.timing.programming_us;
      obs::count(trace, "resilience.fault.dead-qubits");
      obs::count(trace, "resilience.dead_qubits",
                 static_cast<double>(dead.size()));
      return outcome;
    }
  }

  if (trace) {
    obs::Registry& reg = trace->registry();
    reg.set("embed.qubits_used", static_cast<double>(outcome.qubits_used));
    reg.set("embed.max_chain_length",
            static_cast<double>(outcome.max_chain_length));
    for (const auto& chain : prepared.embedding.chains) {
      reg.observe("embed.chain_length", static_cast<double>(chain.size()));
    }
  }

  AnnealerSamplerOptions sampler_options = options.sampler;
  if (options.faults) {
    const double drift = options.faults->drift_sigma();
    if (drift > 0.0) {
      sampler_options.ice_sigma += drift;
      obs::gauge(trace, "resilience.drift_sigma", drift);
    }
  }

  const AnnealSampleResult sampled = sample_annealer(
      prepared.logical, prepared.problem, sampler_options, rng, trace);

  outcome.samples.reserve(sampled.reads.size());
  outcome.evaluations.reserve(sampled.reads.size());
  for (const auto& read : sampled.reads) {
    std::vector<bool> program_vars = to_program_vars(prepared, read.logical);
    outcome.evaluations.push_back(prepared.env.evaluate(program_vars));
    outcome.samples.push_back(std::move(program_vars));
  }
  outcome.timing = sampled.timing;
  outcome.timing.client_compile_ms = prepared.compile_ms;
  outcome.timing.client_embed_ms = prepared.embed_ms;
  return outcome;
}

AnnealOutcome run_annealer(const Env& env, const Device& device,
                           SynthEngine& engine, Rng& rng,
                           const AnnealBackendOptions& options,
                           obs::Trace* trace) {
  const AnnealPrepared prepared =
      prepare_annealer(env, device, engine, rng, options, trace);
  return execute_annealer(prepared, rng, options, trace);
}

}  // namespace nck
