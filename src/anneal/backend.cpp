#include "anneal/backend.hpp"

#include <numeric>

#include "qubo/ising.hpp"
#include "qubo/presolve.hpp"
#include "util/timer.hpp"

namespace nck {
namespace {

// Interaction graph of a QUBO: one vertex per variable, one edge per
// nonzero quadratic term. This is what gets minor-embedded.
Graph interaction_graph(const Qubo& q) {
  Graph g(q.num_variables());
  for (const auto& [i, j, c] : q.quadratic_terms()) g.add_edge(i, j);
  return g;
}

}  // namespace

AnnealOutcome run_annealer(const Env& env, const Device& device,
                           SynthEngine& engine, Rng& rng,
                           const AnnealBackendOptions& options,
                           obs::Trace* trace) {
  AnnealOutcome outcome;

  Timer compile_timer;
  const CompiledQubo compiled = compile(env, engine, options.compile, trace);
  outcome.num_logical = compiled.num_qubo_vars();

  // Optional presolve: pin decidable variables, then sample only the free
  // ones. `to_sampled` maps full QUBO indices to the compacted problem.
  Qubo sampled_qubo = compiled.qubo;
  PresolveResult pres;
  std::vector<std::size_t> free_vars;
  if (options.use_presolve) {
    obs::Span presolve_span(trace, "presolve");
    pres = presolve(compiled.qubo);
    outcome.presolve_fixed = pres.num_fixed;
    std::vector<Qubo::Var> to_sampled(compiled.num_qubo_vars(), 0);
    for (std::size_t i = 0; i < pres.fixed.size(); ++i) {
      if (pres.fixed[i] == -1) {
        to_sampled[i] = static_cast<Qubo::Var>(free_vars.size());
        free_vars.push_back(i);
      }
    }
    sampled_qubo = pres.reduced.remapped(to_sampled);
    sampled_qubo.resize(free_vars.size());
    obs::count(trace, "presolve.fixed", static_cast<double>(pres.num_fixed));
  }
  const IsingModel logical = qubo_to_ising(sampled_qubo);
  const double compile_ms = compile_timer.milliseconds();

  // Expands a sample over the (possibly compacted) sampled problem back to
  // the program variables.
  auto to_program_vars = [&](const std::vector<bool>& sampled) {
    std::vector<bool> full(compiled.num_qubo_vars(), false);
    if (options.use_presolve) {
      for (std::size_t k = 0; k < free_vars.size(); ++k) {
        full[free_vars[k]] = sampled[k];
      }
      full = pres.complete(std::move(full));
    } else {
      full = sampled;
      full.resize(compiled.num_qubo_vars(), false);
    }
    return std::vector<bool>(
        full.begin(),
        full.begin() + static_cast<std::ptrdiff_t>(compiled.num_problem_vars));
  };

  if (sampled_qubo.num_variables() == 0) {
    // Everything pinned by presolve: the answer is deterministic.
    outcome.embedded = true;
    for (std::size_t r = 0; r < options.sampler.num_reads; ++r) {
      std::vector<bool> program_vars = to_program_vars({});
      outcome.evaluations.push_back(env.evaluate(program_vars));
      outcome.samples.push_back(std::move(program_vars));
    }
    outcome.timing.client_compile_ms = compile_ms;
    return outcome;
  }

  obs::Span embed_span(trace, "embed");
  Timer embed_timer;
  const Graph logical_graph = interaction_graph(sampled_qubo);
  const Graph working = device.working_graph();
  const auto embedding =
      find_embedding(logical_graph, working, rng, options.embed);
  const double embed_ms = embed_timer.milliseconds();
  embed_span.close();
  if (!embedding) {
    outcome.timing.client_compile_ms = compile_ms;
    outcome.timing.client_embed_ms = embed_ms;
    return outcome;  // embedded == false
  }

  outcome.embedded = true;
  outcome.qubits_used = embedding->total_qubits();
  outcome.max_chain_length = embedding->max_chain_length();

  if (options.faults) {
    // The job is built and submitted only now, so an injected session
    // fault wastes the client-side compile/embed work — as on real QPUs.
    if (const auto fault = options.faults->submit_fault()) {
      outcome.fault = fault;
      outcome.timing.client_compile_ms = compile_ms;
      outcome.timing.client_embed_ms = embed_ms;
      obs::count(trace, std::string("resilience.fault.") + fault_name(*fault));
      return outcome;
    }
    // Mid-session dead-qubit event: the device was already programmed, so
    // that time is lost; the current embedding is invalidated.
    std::vector<std::size_t> in_use;
    for (const auto& chain : embedding->chains) {
      in_use.insert(in_use.end(), chain.begin(), chain.end());
    }
    const std::vector<std::size_t> dead =
        options.faults->dead_qubit_event(in_use);
    if (!dead.empty()) {
      outcome.fault = FaultKind::kDeadQubits;
      outcome.dead_qubits = dead;
      outcome.timing.programming_us = options.sampler.timing_model.programming_us;
      outcome.timing.total_us = outcome.timing.programming_us;
      outcome.timing.client_compile_ms = compile_ms;
      outcome.timing.client_embed_ms = embed_ms;
      obs::count(trace, "resilience.fault.dead-qubits");
      obs::count(trace, "resilience.dead_qubits",
                 static_cast<double>(dead.size()));
      return outcome;
    }
  }

  if (trace) {
    obs::Registry& reg = trace->registry();
    reg.set("embed.qubits_used", static_cast<double>(outcome.qubits_used));
    reg.set("embed.max_chain_length",
            static_cast<double>(outcome.max_chain_length));
    for (const auto& chain : embedding->chains) {
      reg.observe("embed.chain_length", static_cast<double>(chain.size()));
    }
  }

  AnnealerSamplerOptions sampler_options = options.sampler;
  if (options.faults) {
    const double drift = options.faults->drift_sigma();
    if (drift > 0.0) {
      sampler_options.ice_sigma += drift;
      obs::gauge(trace, "resilience.drift_sigma", drift);
    }
  }

  const EmbeddedProblem problem =
      embed_ising(logical, *embedding, working, options.chain_strength);
  const AnnealSampleResult sampled =
      sample_annealer(logical, problem, sampler_options, rng, trace);

  outcome.samples.reserve(sampled.reads.size());
  outcome.evaluations.reserve(sampled.reads.size());
  for (const auto& read : sampled.reads) {
    std::vector<bool> program_vars = to_program_vars(read.logical);
    outcome.evaluations.push_back(env.evaluate(program_vars));
    outcome.samples.push_back(std::move(program_vars));
  }
  outcome.timing = sampled.timing;
  outcome.timing.client_compile_ms = compile_ms;
  outcome.timing.client_embed_ms = embed_ms;
  return outcome;
}

}  // namespace nck
