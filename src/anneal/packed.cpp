#include "anneal/packed.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "qubo/heuristic.hpp"
#include "qubo/qubo.hpp"

namespace nck {

PackedIsing::PackedIsing(const IsingModel& model) : h(model.h) {
  const std::size_t n = model.num_spins();
  couplers.reserve(model.j.size());
  for (const auto& [a, b, w] : model.j) {
    couplers.push_back({a, b, w});
  }

  offsets.assign(n + 1, 0);
  for (const Coupler& c : couplers) {
    ++offsets[c.a + 1];
    ++offsets[c.b + 1];
  }
  for (std::size_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];

  neighbors.resize(2 * couplers.size());
  coupler_of.resize(2 * couplers.size());
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t c = 0; c < couplers.size(); ++c) {
    const Coupler& cp = couplers[c];
    neighbors[cursor[cp.a]] = cp.b;
    coupler_of[cursor[cp.a]++] = static_cast<std::uint32_t>(c);
    neighbors[cursor[cp.b]] = cp.a;
    coupler_of[cursor[cp.b]++] = static_cast<std::uint32_t>(c);
  }
}

std::vector<double> tempering_ladder(const TemperingOptions& options) {
  AnnealParams ramp;
  ramp.num_sweeps = std::max<std::size_t>(1, options.num_replicas);
  ramp.beta_initial = options.beta_initial;
  ramp.beta_final = options.beta_final;
  return beta_schedule(ramp);
}

PackedWorkspace::PackedWorkspace(const PackedIsing& packed)
    : packed_(&packed),
      h_(packed.num_spins(), 0.0),
      jw_(packed.num_couplers(), 0.0),
      w_(packed.neighbors.size(), 0.0),
      gauge_(packed.num_words(), 0) {}

void PackedWorkspace::load_clean() {
  std::fill(gauge_.begin(), gauge_.end(), 0);
  std::copy(packed_->h.begin(), packed_->h.end(), h_.begin());
  for (std::size_t c = 0; c < jw_.size(); ++c) {
    jw_[c] = packed_->couplers[c].weight;
  }
  for (std::size_t k = 0; k < w_.size(); ++k) {
    w_[k] = jw_[packed_->coupler_of[k]];
  }
}

void PackedWorkspace::load_program(bool gauge_enabled, double sigma,
                                   double scale, Rng& rng) {
  const std::size_t n = packed_->num_spins();
  std::fill(gauge_.begin(), gauge_.end(), 0);
  if (gauge_enabled) {
    for (std::size_t q = 0; q < n; ++q) {
      if (rng.bernoulli(0.5)) gauge_[q >> 6] |= 1ull << (q & 63);
    }
  }
  const double inv = scale > 0.0 ? 1.0 / scale : 1.0;
  for (std::size_t q = 0; q < n; ++q) {
    double v = gauge_bit(q) ? -packed_->h[q] : packed_->h[q];
    if (sigma > 0.0) v += rng.gaussian(0.0, sigma);
    h_[q] = v * inv;
  }
  for (std::size_t c = 0; c < jw_.size(); ++c) {
    const PackedIsing::Coupler& cp = packed_->couplers[c];
    double v = gauge_bit(cp.a) != gauge_bit(cp.b) ? -cp.weight : cp.weight;
    if (sigma > 0.0) v += rng.gaussian(0.0, sigma);
    jw_[c] = v * inv;
  }
  for (std::size_t k = 0; k < w_.size(); ++k) {
    w_[k] = jw_[packed_->coupler_of[k]];
  }
}

void PackedWorkspace::refresh(PackedState& state) const {
  const std::size_t n = packed_->num_spins();
  double e = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    state.field[i] = h_[i];
    e += state.up(i) ? h_[i] : -h_[i];
  }
  for (std::size_t c = 0; c < jw_.size(); ++c) {
    const PackedIsing::Coupler& cp = packed_->couplers[c];
    const double sa = state.up(cp.a) ? 1.0 : -1.0;
    const double sb = state.up(cp.b) ? 1.0 : -1.0;
    const double w = jw_[c];
    e += w * sa * sb;
    state.field[cp.a] += w * sb;
    state.field[cp.b] += w * sa;
  }
  state.energy = e;
}

void PackedWorkspace::randomize(PackedState& state, Rng& rng) const {
  const std::size_t n = packed_->num_spins();
  for (std::uint64_t& word : state.words) word = rng();
  if ((n & 63) != 0 && !state.words.empty()) {
    state.words.back() &= (1ull << (n & 63)) - 1;
  }
}

void PackedWorkspace::flip(PackedState& state, std::size_t i, double s_old,
                           double d) const {
  state.toggle(i);
  state.energy += d;
  const std::uint32_t begin = packed_->offsets[i];
  const std::uint32_t end = packed_->offsets[i + 1];
  const double shift = -2.0 * s_old;
  for (std::uint32_t k = begin; k < end; ++k) {
    state.field[packed_->neighbors[k]] += shift * w_[k];
  }
}

void PackedWorkspace::sweep(PackedState& state, double beta, Rng& rng) const {
  const std::size_t n = packed_->num_spins();
  for (std::size_t i = 0; i < n; ++i) {
    const double s = state.up(i) ? 1.0 : -1.0;
    const double d = -2.0 * s * state.field[i];
    if (d <= 0.0 || rng.uniform() < std::exp(-beta * d)) {
      flip(state, i, s, d);
    }
  }
}

void PackedWorkspace::descend(PackedState& state) const {
  const std::size_t n = packed_->num_spins();
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t i = 0; i < n; ++i) {
      const double s = state.up(i) ? 1.0 : -1.0;
      const double d = -2.0 * s * state.field[i];
      if (d < -Qubo::kEps) {
        flip(state, i, s, d);
        improved = true;
      }
    }
  }
}

const PackedState& PackedWorkspace::anneal(const TemperingOptions& options,
                                           Rng& rng) {
  const std::size_t num_replicas = std::max<std::size_t>(1, options.num_replicas);
  const std::size_t n = packed_->num_spins();
  const std::size_t nwords = packed_->num_words();
  if (replicas_.size() < num_replicas) replicas_.resize(num_replicas);
  for (std::size_t r = 0; r < num_replicas; ++r) {
    replicas_[r].words.resize(nwords);
    replicas_[r].field.resize(n);
  }
  order_.resize(num_replicas);
  std::iota(order_.begin(), order_.end(), std::size_t{0});

  TemperingOptions ladder_options = options;
  ladder_options.num_replicas = num_replicas;
  ladder_ = tempering_ladder(ladder_options);

  for (std::size_t r = 0; r < num_replicas; ++r) {
    randomize(replicas_[r], rng);
    refresh(replicas_[r]);
  }

  const std::size_t per_replica =
      std::max<std::size_t>(1, options.num_sweeps / num_replicas);

  if (num_replicas == 1) {
    // Single-replica fallback: the classic geometric ramp, endpoints exact.
    AnnealParams ramp;
    ramp.num_sweeps = per_replica;
    ramp.beta_initial = options.beta_initial;
    ramp.beta_final = options.beta_final;
    for (double beta : beta_schedule(ramp)) {
      sweep(replicas_[0], beta, rng);
    }
    descend(replicas_[0]);
    return replicas_[0];
  }

  const std::size_t interval =
      options.exchange_interval > 0 ? options.exchange_interval : per_replica;
  std::size_t done = 0;
  std::size_t parity = 0;
  while (done < per_replica) {
    const std::size_t block = std::min(interval, per_replica - done);
    for (std::size_t t = 0; t < num_replicas; ++t) {
      PackedState& state = replicas_[order_[t]];
      for (std::size_t s = 0; s < block; ++s) sweep(state, ladder_[t], rng);
    }
    done += block;
    if (done >= per_replica) break;
    // Replica exchange between adjacent rungs, alternating pair parity.
    // Swap acceptance min(1, exp((beta_t - beta_u)(E_t - E_u))) moves low
    // energies toward cold rungs; one uniform draw per attempted pair keeps
    // the stream's draw count data-independent.
    for (std::size_t t = parity; t + 1 < num_replicas; t += 2) {
      const double d = (ladder_[t] - ladder_[t + 1]) *
                       (replicas_[order_[t]].energy -
                        replicas_[order_[t + 1]].energy);
      const double u = rng.uniform();
      if (d >= 0.0 || u < std::exp(d)) {
        std::swap(order_[t], order_[t + 1]);
      }
    }
    parity ^= 1;
  }

  PackedState& best = replicas_[order_[num_replicas - 1]];
  descend(best);
  return best;
}

}  // namespace nck
