// Quantum-annealer hardware topologies.
//
// Pegasus (D-Wave Advantage) is generated from the segment-intersection
// model: each qubit is a length-12 line segment on an integer grid; vertical
// and horizontal segments are coupled where they cross ("internal"
// couplers), collinear consecutive segments are coupled ("external"), and
// adjacent parallel segments within a cell pair up ("odd"). P_m has
// 24*m*(m-1) qubits with maximum degree 15. Chimera (D-Wave 2000Q) is the
// classic m x n grid of K_{4,4} cells.
//
// The exact Pegasus shift offsets are configurable; the defaults reproduce
// the standard degree/count structure, which is what the embedding engine
// and the paper's qubit-usage numbers depend on.
#pragma once

#include <array>
#include <string>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace nck {

/// Pegasus P_m.
///
/// With `fabric_only` (the default, matching dwave-networkx), the 8*(m-1)
/// boundary qubits that carry no internal couplers are pruned and ids are
/// compacted in (u, w, k, z) order: P16 then has 24*16*15 - 8*15 = 5640
/// qubits — exactly the Advantage 4.1 count the paper reports. With
/// fabric_only = false the full 24*m*(m-1)-qubit lattice is returned and
/// ids follow pegasus_id() directly.
Graph pegasus_graph(int m, bool fabric_only = true);

/// Pegasus coordinate <-> linear id helpers (exposed for tests).
struct PegasusCoord {
  int u;  // orientation: 0 = vertical, 1 = horizontal
  int w;  // perpendicular offset block
  int k;  // track within block, [0, 12)
  int z;  // position along the segment direction, [0, m-1)
};
PegasusCoord pegasus_coord(int m, Graph::Vertex q);
Graph::Vertex pegasus_id(int m, const PegasusCoord& c);

/// Chimera C_{m,n} with shore size t (K_{t,t} cells). Qubit ids ordered by
/// (row, column, side, index).
Graph chimera_graph(int m, int n, int t = 4);

/// A named device: its connectivity graph plus which qubits are operable.
struct Device {
  std::string name;
  Graph graph;                 // full lattice connectivity
  std::vector<bool> operable;  // per qubit; inoperable qubits must not be used

  std::size_t num_operable() const;
  /// Connectivity restricted to operable qubits (inoperable ones become
  /// isolated vertices so ids stay stable).
  Graph working_graph() const;
};

/// D-Wave Advantage 4.1 analogue: the Pegasus P16 fabric (5640 qubits, the
/// paper's figure), optionally minus `dead_qubits` random fabrication
/// defects (0 by default; real devices lose a further handful).
Device advantage_4_1(Rng& rng, std::size_t dead_qubits = 0);

/// Defect-free device over any graph (for tests and small studies).
Device perfect_device(std::string name, Graph graph);

}  // namespace nck
