// QPU access-time model following the D-Wave documentation as summarized in
// the paper's timing section (Section VIII-C): one long programming step
// (~15 ms), then per sample an anneal (20 us default), a readout (3-4x the
// anneal time), and an inter-sample delay (~20 us), plus a small
// post-processing tail. A 100-read job lands at roughly 30 ms of QPU time.
#pragma once

#include <cstddef>

namespace nck {

struct DWaveTimingModel {
  double programming_us = 15000.0;
  double anneal_us = 20.0;
  double readout_us_per_anneal = 3.5;  // readout = this factor * anneal
  double delay_us = 21.0;
  double postprocess_us = 1000.0;

  double readout_us() const noexcept { return readout_us_per_anneal * anneal_us; }

  double sampling_time_us(std::size_t num_reads) const noexcept {
    return static_cast<double>(num_reads) *
           (anneal_us + readout_us() + delay_us);
  }

  double qpu_access_time_us(std::size_t num_reads) const noexcept {
    return programming_us + sampling_time_us(num_reads) + postprocess_us;
  }
};

struct DWaveTiming {
  std::size_t num_reads = 0;
  double programming_us = 0.0;
  double sampling_us = 0.0;
  double postprocess_us = 0.0;
  double total_us = 0.0;
  double client_embed_ms = 0.0;    // measured wall clock on the "client"
  double client_compile_ms = 0.0;  // NchooseK -> QUBO time
};

}  // namespace nck
