#include "anneal/topology.hpp"

#include <stdexcept>

namespace nck {
namespace {

// Default shift offsets (one per track k) for the vertical and horizontal
// segment families. Any choice with the right periodic structure yields the
// canonical 24m(m-1)-qubit, max-degree-15 Pegasus lattice.
constexpr std::array<int, 12> kVerticalOffsets = {2, 2, 10, 10, 6, 6,
                                                  2, 2, 10, 10, 6, 6};
constexpr std::array<int, 12> kHorizontalOffsets = {6, 6, 2, 2, 10, 10,
                                                    6, 6, 2, 2, 10, 10};

}  // namespace

PegasusCoord pegasus_coord(int m, Graph::Vertex q) {
  const int per_u = 12 * m * (m - 1);
  int rest = static_cast<int>(q);
  PegasusCoord c{};
  c.u = rest / per_u;
  rest %= per_u;
  c.w = rest / (12 * (m - 1));
  rest %= 12 * (m - 1);
  c.k = rest / (m - 1);
  c.z = rest % (m - 1);
  return c;
}

Graph::Vertex pegasus_id(int m, const PegasusCoord& c) {
  return static_cast<Graph::Vertex>(
      ((c.u * m + c.w) * 12 + c.k) * (m - 1) + c.z);
}

Graph pegasus_graph(int m, bool fabric_only) {
  if (m < 2) throw std::invalid_argument("pegasus_graph: m must be >= 2");
  const std::size_t n = static_cast<std::size_t>(24 * m * (m - 1));
  Graph g(n);

  // External couplers: consecutive segments on the same line.
  // Odd couplers: track pairs (2j, 2j+1) at the same (u, w, z).
  for (int u = 0; u < 2; ++u) {
    for (int w = 0; w < m; ++w) {
      for (int k = 0; k < 12; ++k) {
        for (int z = 0; z < m - 1; ++z) {
          const auto q = pegasus_id(m, {u, w, k, z});
          if (z + 1 < m - 1) g.add_edge(q, pegasus_id(m, {u, w, k, z + 1}));
          if (k % 2 == 0) g.add_edge(q, pegasus_id(m, {u, w, k + 1, z}));
        }
      }
    }
  }

  // Internal couplers via segment crossing. The vertical qubit
  // (0, w, k, z) occupies line x = 12w + k over y in
  // [12z + ov[k], 12z + ov[k] + 12); symmetric for horizontal.
  for (int w = 0; w < m; ++w) {
    for (int k = 0; k < 12; ++k) {
      for (int z = 0; z < m - 1; ++z) {
        const int x = 12 * w + k;
        const int y0 = 12 * z + kVerticalOffsets[static_cast<std::size_t>(k)];
        for (int y = y0; y < y0 + 12; ++y) {
          const int w1 = y / 12;
          const int k1 = y % 12;
          if (w1 < 0 || w1 >= m) continue;
          // The horizontal qubit on line y covering x has
          // 12*z1 + oh[k1] <= x < 12*z1 + oh[k1] + 12.
          const int shifted = x - kHorizontalOffsets[static_cast<std::size_t>(k1)];
          const int z1 = shifted >= 0 ? shifted / 12 : -((-shifted + 11) / 12);
          if (z1 < 0 || z1 >= m - 1) continue;
          g.add_edge(pegasus_id(m, {0, w, k, z}),
                     pegasus_id(m, {1, w1, k1, z1}));
        }
      }
    }
  }
  if (!fabric_only) return g;

  // Prune boundary qubits that ended up with no internal coupler (they sit
  // outside every perpendicular segment's span). These form isolated
  // external/odd chainlets; dwave-networkx drops them the same way.
  std::vector<bool> has_internal(n, false);
  for (const auto& [a, b] : g.edges()) {
    const PegasusCoord ca = pegasus_coord(m, a);
    const PegasusCoord cb = pegasus_coord(m, b);
    if (ca.u != cb.u) {
      has_internal[a] = true;
      has_internal[b] = true;
    }
  }
  std::vector<Graph::Vertex> keep;
  for (Graph::Vertex q = 0; q < n; ++q) {
    if (has_internal[q]) keep.push_back(q);
  }
  return g.induced_subgraph(keep);
}

Graph chimera_graph(int m, int n, int t) {
  if (m < 1 || n < 1 || t < 1) {
    throw std::invalid_argument("chimera_graph: invalid dimensions");
  }
  const std::size_t total = static_cast<std::size_t>(m) * n * 2 * t;
  Graph g(total);
  auto id = [&](int i, int j, int side, int idx) {
    return static_cast<Graph::Vertex>((((i * n) + j) * 2 + side) * t + idx);
  };
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      // Intra-cell K_{t,t}.
      for (int a = 0; a < t; ++a) {
        for (int b = 0; b < t; ++b) {
          g.add_edge(id(i, j, 0, a), id(i, j, 1, b));
        }
      }
      // Inter-cell: vertical shore couples down, horizontal shore right.
      for (int a = 0; a < t; ++a) {
        if (i + 1 < m) g.add_edge(id(i, j, 0, a), id(i + 1, j, 0, a));
        if (j + 1 < n) g.add_edge(id(i, j, 1, a), id(i, j + 1, 1, a));
      }
    }
  }
  return g;
}

std::size_t Device::num_operable() const {
  std::size_t n = 0;
  for (bool b : operable) {
    if (b) ++n;
  }
  return n;
}

Graph Device::working_graph() const {
  Graph g(graph.num_vertices());
  for (const auto& [u, v] : graph.edges()) {
    if (operable[u] && operable[v]) g.add_edge(u, v);
  }
  return g;
}

Device advantage_4_1(Rng& rng, std::size_t dead_qubits) {
  Device d;
  d.name = "advantage-4.1-sim";
  d.graph = pegasus_graph(16);  // P16 fabric: 5640 qubits
  d.operable.assign(d.graph.num_vertices(), true);
  std::size_t to_disable = dead_qubits;
  while (to_disable > 0) {
    const auto q = static_cast<std::size_t>(rng.below(d.graph.num_vertices()));
    if (d.operable[q]) {
      d.operable[q] = false;
      --to_disable;
    }
  }
  return d;
}

Device perfect_device(std::string name, Graph graph) {
  Device d;
  d.name = std::move(name);
  d.operable.assign(graph.num_vertices(), true);
  d.graph = std::move(graph);
  return d;
}

}  // namespace nck
