// Minor embedding of a logical interaction graph into a hardware topology,
// following the Cai-Macready-Roy heuristic that minorminer implements:
// iteratively route every logical variable to a connected chain of physical
// qubits via weighted shortest paths, squeezing out qubit overuse by growing
// the penalty on shared qubits until chains are disjoint.
//
// Chain-length blow-up on Pegasus is what makes the paper's D-Wave qubit
// counts exceed the NchooseK variable counts (Section VIII-A).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace nck {

struct Embedding {
  /// chains[v] = physical qubits representing logical variable v
  /// (connected in the physical graph, pairwise disjoint across chains).
  std::vector<std::vector<Graph::Vertex>> chains;

  std::size_t total_qubits() const;
  std::size_t max_chain_length() const;
};

struct EmbedOptions {
  std::size_t max_passes = 64;   // improvement sweeps before giving up
  double penalty_base = 4.0;     // per-pass growth of the overuse penalty
  std::size_t tries = 5;         // independent restarts (region grows each try)
};

/// Attempts to embed `logical` into `physical`. Qubits that are isolated in
/// `physical` (e.g. masked-out defective qubits) are never used.
/// Returns std::nullopt if no valid embedding was found within the budget.
std::optional<Embedding> find_embedding(const Graph& logical,
                                        const Graph& physical, Rng& rng,
                                        const EmbedOptions& options = {});

struct EmbeddingCheck {
  bool ok = false;
  std::string error;
};

/// Checks the three minor-embedding invariants: every chain non-empty and
/// connected in `physical`, chains pairwise disjoint, and every logical edge
/// realized by at least one physical coupler between the two chains.
EmbeddingCheck validate_embedding(const Graph& logical, const Graph& physical,
                                  const Embedding& embedding);

}  // namespace nck
