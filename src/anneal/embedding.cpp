#include "anneal/embedding.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <sstream>

#include "util/logging.hpp"

namespace nck {

std::size_t Embedding::total_qubits() const {
  std::size_t n = 0;
  for (const auto& chain : chains) n += chain.size();
  return n;
}

std::size_t Embedding::max_chain_length() const {
  std::size_t n = 0;
  for (const auto& chain : chains) n = std::max(n, chain.size());
  return n;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One shortest-path field: distance from a source chain to every qubit,
// where entering qubit q costs weight[q]. parent[q] reconstructs the path
// back towards the source chain (source qubits have parent == themselves).
struct DistField {
  std::vector<double> dist;
  std::vector<Graph::Vertex> parent;
};

DistField dijkstra_from_chain(const Graph& physical,
                              const std::vector<Graph::Vertex>& sources,
                              const std::vector<double>& weight) {
  const std::size_t n = physical.num_vertices();
  DistField field;
  field.dist.assign(n, kInf);
  field.parent.assign(n, 0);
  using Item = std::pair<double, Graph::Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  for (Graph::Vertex s : sources) {
    field.dist[s] = 0.0;  // already part of the chain: free
    field.parent[s] = s;
    pq.emplace(0.0, s);
  }
  while (!pq.empty()) {
    const auto [d, q] = pq.top();
    pq.pop();
    if (d > field.dist[q]) continue;
    for (Graph::Vertex w : physical.neighbors(q)) {
      const double nd = d + weight[w];
      if (nd < field.dist[w]) {
        field.dist[w] = nd;
        field.parent[w] = q;
        pq.emplace(nd, w);
      }
    }
  }
  return field;
}

// BFS order over the logical graph from a max-degree root: neighbors get
// routed near each other on the first pass instead of landing at random.
std::vector<Graph::Vertex> logical_bfs_order(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<bool> seen(n, false);
  std::vector<Graph::Vertex> order;
  order.reserve(n);
  for (std::size_t round = 0; round < n; ++round) {
    // Pick the unseen vertex of highest degree as the next component root.
    std::size_t best = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (!seen[v] && (best == n || g.degree(static_cast<Graph::Vertex>(v)) >
                                        g.degree(static_cast<Graph::Vertex>(best)))) {
        best = v;
      }
    }
    if (best == n) break;
    std::vector<Graph::Vertex> queue{static_cast<Graph::Vertex>(best)};
    seen[best] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Graph::Vertex v = queue[head];
      order.push_back(v);
      for (Graph::Vertex w : g.neighbors(v)) {
        if (!seen[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
  }
  return order;
}

class Embedder {
 public:
  Embedder(const Graph& logical, const Graph& physical, Rng& rng,
           const EmbedOptions& options)
      : logical_(logical), physical_(physical), rng_(rng), options_(options) {}

  std::optional<Embedding> run() {
    const std::size_t n = logical_.num_vertices();
    chains_.assign(n, {});
    usage_.assign(physical_.num_vertices(), 0);

    double penalty = options_.penalty_base;
    std::vector<Graph::Vertex> order = logical_bfs_order(logical_);

    std::size_t best_overuse = std::numeric_limits<std::size_t>::max();
    std::size_t stalled_passes = 0;

    for (std::size_t pass = 0; pass < options_.max_passes; ++pass) {
      // Pass 0 (and periodic diversification passes) reroute everything;
      // otherwise only the chains competing for overused qubits move, so
      // settled chains stay settled (minorminer's improvement stage).
      const bool full_pass = pass % 8 == 0;
      for (Graph::Vertex v : order) {
        if (full_pass || chains_[v].empty() || chain_contested(v)) {
          route_variable(v, penalty);
        }
      }
      if (log_level() <= LogLevel::kDebug) {
        std::size_t total = 0, longest = 0;
        for (const auto& c : chains_) {
          total += c.size();
          longest = std::max(longest, c.size());
        }
        Log(LogLevel::kDebug)
            << "embed pass " << pass << ": overuse " << overuse()
            << ", chain qubits " << total << " (max " << longest << ") of "
            << physical_.num_vertices() << ", embedded "
            << (all_embedded() ? "all" : "partial");
      }
      if (overuse() == 0 && all_embedded()) {
        trim_chains();
        Embedding result;
        result.chains = chains_;
        return result;
      }
      if (pass + 1 == options_.max_passes) {
        std::ostringstream detail;
        for (std::size_t q = 0; q < usage_.size(); ++q) {
          if (usage_[q] > 1) {
            detail << " q" << q << "{";
            for (std::size_t v = 0; v < chains_.size(); ++v) {
              for (Graph::Vertex cq : chains_[v]) {
                if (cq == q) {
                  detail << " v" << v << "(deg "
                         << logical_.degree(static_cast<Graph::Vertex>(v))
                         << ", chain " << chains_[v].size() << ")";
                }
              }
            }
            detail << " }";
          }
        }
        Log(LogLevel::kInfo) << "embed attempt failed: overuse " << overuse()
                             << ", " << (all_embedded() ? "all" : "partial")
                             << " embedded, " << physical_.num_vertices()
                             << " physical qubits;" << detail.str();
      }
      // Stall detection: once chains tangle into a knot that encloses some
      // neighbor chains, sequential rerouting cannot untangle it (every
      // candidate root pays a forced crossing). Rip everything up and start
      // the attempt over with a fresh random order.
      const std::size_t current = overuse();
      if (current < best_overuse) {
        best_overuse = current;
        stalled_passes = 0;
      } else if (++stalled_passes >= 6) {
        for (std::size_t v = 0; v < chains_.size(); ++v) {
          drop_chain(static_cast<Graph::Vertex>(v));
        }
        penalty = options_.penalty_base;
        best_overuse = std::numeric_limits<std::size_t>::max();
        stalled_passes = 0;
        rng_.shuffle(order);
        continue;
      }

      rng_.shuffle(order);  // explore different routings on later passes
      penalty *= options_.penalty_base;
      // The penalty must keep growing: a capped penalty lets high-degree
      // variables *buy* overlap (sitting on a neighbor chain saves many
      // distance terms at a one-off cost), which never converges. Chain
      // ballooning under large penalties is prevented by the Steiner-style
      // segment reuse in route_variable.
      penalty = std::min(penalty, 1e9);
    }
    return std::nullopt;
  }

 private:
  bool all_embedded() const {
    return std::none_of(chains_.begin(), chains_.end(),
                        [](const auto& c) { return c.empty(); });
  }

  std::size_t overuse() const {
    std::size_t over = 0;
    for (unsigned u : usage_) {
      if (u > 1) over += u - 1;
    }
    return over;
  }

  bool chain_contested(Graph::Vertex v) const {
    for (Graph::Vertex q : chains_[v]) {
      if (usage_[q] > 1) return true;
    }
    return false;
  }

  // Removes redundant chain qubits: a qubit can go if it is a leaf of the
  // chain's induced subgraph (so the chain stays connected) and every
  // logical edge it helps realize is still realized by another chain qubit.
  // Union-of-shortest-paths chains routinely carry such slack.
  void trim_chains() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t v = 0; v < chains_.size(); ++v) {
        auto& chain = chains_[v];
        if (chain.size() <= 1) continue;
        for (std::size_t idx = 0; idx < chain.size(); ++idx) {
          const Graph::Vertex q = chain[idx];
          // Leaf check: at most one chain-internal neighbor.
          std::size_t internal = 0;
          for (Graph::Vertex w : physical_.neighbors(q)) {
            for (Graph::Vertex cq : chain) {
              if (cq == w) {
                ++internal;
                break;
              }
            }
          }
          if (internal > 1) continue;
          // Coupler check: every logical neighbor must stay reachable.
          bool needed = false;
          for (Graph::Vertex u : logical_.neighbors(static_cast<Graph::Vertex>(v))) {
            bool via_q = false, via_other = false;
            for (Graph::Vertex uq : chains_[u]) {
              if (physical_.has_edge(q, uq)) via_q = true;
            }
            if (!via_q) continue;
            for (Graph::Vertex cq : chain) {
              if (cq == q) continue;
              for (Graph::Vertex uq : chains_[u]) {
                if (physical_.has_edge(cq, uq)) {
                  via_other = true;
                  break;
                }
              }
              if (via_other) break;
            }
            if (!via_other) {
              needed = true;
              break;
            }
          }
          if (needed) continue;
          --usage_[q];
          chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(idx));
          --idx;
          changed = true;
        }
      }
    }
  }

  void drop_chain(Graph::Vertex v) {
    for (Graph::Vertex q : chains_[v]) --usage_[q];
    chains_[v].clear();
  }

  void adopt_chain(Graph::Vertex v, std::vector<Graph::Vertex> chain) {
    chains_[v] = std::move(chain);
    for (Graph::Vertex q : chains_[v]) ++usage_[q];
  }

  // Weight of stepping onto a qubit: usable qubits cost penalty^usage;
  // isolated (defective) qubits are unreachable by construction.
  std::vector<double> qubit_weights(double penalty) const {
    std::vector<double> w(physical_.num_vertices());
    for (std::size_t q = 0; q < w.size(); ++q) {
      w[q] = std::pow(penalty, static_cast<double>(usage_[q]));
    }
    return w;
  }

  void route_variable(Graph::Vertex v, double penalty) {
    drop_chain(v);

    // Collect embedded neighbors.
    std::vector<Graph::Vertex> nbrs;
    for (Graph::Vertex u : logical_.neighbors(v)) {
      if (!chains_[u].empty()) nbrs.push_back(u);
    }

    const std::vector<double> weight = qubit_weights(penalty);

    if (nbrs.empty()) {
      // Nothing to connect to yet: claim the least-used usable qubit.
      Graph::Vertex best = 0;
      double best_w = kInf;
      for (std::size_t q = 0; q < weight.size(); ++q) {
        if (physical_.degree(static_cast<Graph::Vertex>(q)) == 0) continue;
        const double jitter = weight[q] * (1.0 + 0.01 * rng_.uniform());
        if (jitter < best_w) {
          best_w = jitter;
          best = static_cast<Graph::Vertex>(q);
        }
      }
      adopt_chain(v, {best});
      return;
    }

    // One shortest-path field per embedded neighbor chain.
    std::vector<DistField> fields;
    fields.reserve(nbrs.size());
    for (Graph::Vertex u : nbrs) {
      fields.push_back(dijkstra_from_chain(physical_, chains_[u], weight));
    }

    // Root = usable qubit minimizing (own weight + sum of distances).
    // A small random jitter breaks ties so chains don't pile onto the
    // lowest-index corner of the device.
    Graph::Vertex root = 0;
    double best_cost = kInf;
    for (std::size_t q = 0; q < weight.size(); ++q) {
      if (physical_.degree(static_cast<Graph::Vertex>(q)) == 0) continue;
      double cost = weight[q];
      for (const auto& f : fields) {
        if (f.dist[q] == kInf) {
          cost = kInf;
          break;
        }
        cost += f.dist[q];
      }
      if (cost < kInf) cost *= 1.0 + 0.05 * rng_.uniform();
      if (cost < best_cost) {
        best_cost = cost;
        root = static_cast<Graph::Vertex>(q);
      }
    }
    if (best_cost == kInf) {
      // Physically unreachable this pass; leave unembedded and let later
      // passes (with different orders) try again.
      return;
    }

    // Chain construction, greedy-Steiner style: connect neighbor chains in
    // ascending distance-from-root order, and let each path start from the
    // *closest point of the chain built so far* (the distance fields cover
    // every qubit, so this costs nothing extra). This reuses path segments
    // instead of building a star of independent paths, which keeps chains
    // from ballooning.
    std::vector<std::size_t> by_distance(nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) by_distance[i] = i;
    std::sort(by_distance.begin(), by_distance.end(),
              [&](std::size_t a, std::size_t b) {
                return fields[a].dist[root] < fields[b].dist[root];
              });

    std::vector<bool> in_chain(physical_.num_vertices(), false);
    std::vector<Graph::Vertex> chain;
    auto add = [&](Graph::Vertex q) {
      if (!in_chain[q]) {
        in_chain[q] = true;
        chain.push_back(q);
      }
    };
    add(root);
    for (std::size_t i : by_distance) {
      // Closest contact point between the current chain and neighbor i.
      Graph::Vertex start = chain.front();
      for (Graph::Vertex q : chain) {
        if (fields[i].dist[q] < fields[i].dist[start]) start = q;
      }
      Graph::Vertex q = start;
      while (fields[i].dist[q] > 0.0) {
        const Graph::Vertex p = fields[i].parent[q];
        if (fields[i].dist[p] > 0.0) add(p);  // stop at the neighbor chain
        q = p;
      }
    }
    adopt_chain(v, std::move(chain));
    if (log_level() <= LogLevel::kDebug) {
      for (Graph::Vertex q : chains_[v]) {
        if (usage_[q] > 1) {
          Log(LogLevel::kDebug)
              << "route v" << v << " adopted overlapping q" << q
              << " (weight " << weight[q] << ", root " << root
              << ", best_cost " << best_cost << ", chain "
              << chains_[v].size() << ", penalty " << penalty << ")";
        }
      }
    }
  }

  const Graph& logical_;
  const Graph& physical_;
  Rng& rng_;
  EmbedOptions options_;
  std::vector<std::vector<Graph::Vertex>> chains_;
  std::vector<unsigned> usage_;
};

}  // namespace

namespace {

// BFS ball of roughly `target` usable qubits around a random usable center.
std::vector<Graph::Vertex> bfs_ball(const Graph& physical, std::size_t target,
                                    Rng& rng) {
  const std::size_t n = physical.num_vertices();
  Graph::Vertex center = 0;
  for (std::size_t attempts = 0; attempts < 64; ++attempts) {
    center = static_cast<Graph::Vertex>(rng.below(n));
    if (physical.degree(center) > 0) break;
  }
  std::vector<bool> seen(n, false);
  std::vector<Graph::Vertex> ball{center};
  seen[center] = true;
  for (std::size_t head = 0; head < ball.size() && ball.size() < target;
       ++head) {
    for (Graph::Vertex w : physical.neighbors(ball[head])) {
      if (!seen[w]) {
        seen[w] = true;
        ball.push_back(w);
        if (ball.size() >= target) break;
      }
    }
  }
  return ball;
}

}  // namespace

std::optional<Embedding> find_embedding(const Graph& logical,
                                        const Graph& physical, Rng& rng,
                                        const EmbedOptions& options) {
  if (logical.num_vertices() == 0) return Embedding{};

  for (std::size_t attempt = 0; attempt < options.tries; ++attempt) {
    // Working on a compact subregion of a large device is dramatically
    // faster (Dijkstra fields shrink) *and* yields shorter chains; the
    // region grows geometrically across attempts, ending at the full
    // device.
    const std::size_t want =
        std::max<std::size_t>(128, logical.num_vertices() * 16)
        << (2 * attempt);
    if (want < physical.num_vertices() && attempt + 1 < options.tries) {
      const auto region = bfs_ball(physical, want, rng);
      const Graph sub = physical.induced_subgraph(region);
      Embedder embedder(logical, sub, rng, options);
      if (auto result = embedder.run()) {
        for (auto& chain : result->chains) {
          for (auto& q : chain) q = region[q];  // back to device ids
        }
        return result;
      }
      continue;
    }
    Embedder embedder(logical, physical, rng, options);
    if (auto result = embedder.run()) return result;
  }
  return std::nullopt;
}

EmbeddingCheck validate_embedding(const Graph& logical, const Graph& physical,
                                  const Embedding& embedding) {
  EmbeddingCheck check;
  if (embedding.chains.size() != logical.num_vertices()) {
    check.error = "chain count != logical vertex count";
    return check;
  }
  std::vector<int> owner(physical.num_vertices(), -1);
  for (std::size_t v = 0; v < embedding.chains.size(); ++v) {
    const auto& chain = embedding.chains[v];
    if (chain.empty()) {
      check.error = "empty chain for variable " + std::to_string(v);
      return check;
    }
    for (Graph::Vertex q : chain) {
      if (q >= physical.num_vertices()) {
        check.error = "chain qubit out of range";
        return check;
      }
      if (owner[q] != -1) {
        check.error = "qubit " + std::to_string(q) + " shared by chains " +
                      std::to_string(owner[q]) + " and " + std::to_string(v);
        return check;
      }
      owner[q] = static_cast<int>(v);
    }
    // Connectivity within the chain.
    std::vector<Graph::Vertex> stack{chain[0]};
    std::vector<bool> seen(physical.num_vertices(), false);
    seen[chain[0]] = true;
    std::size_t reached = 1;
    while (!stack.empty()) {
      const Graph::Vertex q = stack.back();
      stack.pop_back();
      for (Graph::Vertex w : physical.neighbors(q)) {
        if (!seen[w] && owner[w] == static_cast<int>(v)) {
          seen[w] = true;
          ++reached;
          stack.push_back(w);
        }
      }
    }
    if (reached != chain.size()) {
      check.error = "chain for variable " + std::to_string(v) +
                    " is not connected";
      return check;
    }
  }
  for (const auto& [a, b] : logical.edges()) {
    bool coupled = false;
    for (Graph::Vertex qa : embedding.chains[a]) {
      for (Graph::Vertex qb : embedding.chains[b]) {
        if (physical.has_edge(qa, qb)) {
          coupled = true;
          break;
        }
      }
      if (coupled) break;
    }
    if (!coupled) {
      check.error = "logical edge (" + std::to_string(a) + "," +
                    std::to_string(b) + ") has no physical coupler";
      return check;
    }
  }
  check.ok = true;
  return check;
}

}  // namespace nck
