// End-to-end annealing backend: NchooseK program -> QUBO -> Ising -> minor
// embedding on the device -> noisy sampling -> logical samples over the
// program's variables. Mirrors what NchooseK does through D-Wave's Ocean
// API, with the QPU replaced by the simulator in sampler.hpp.
#pragma once

#include <optional>

#include "anneal/embedding.hpp"
#include "anneal/sampler.hpp"
#include "anneal/topology.hpp"
#include "core/compile.hpp"
#include "core/env.hpp"
#include "resilience/fault.hpp"
#include "synth/engine.hpp"

namespace nck {

struct AnnealBackendOptions {
  AnnealerSamplerOptions sampler;
  EmbedOptions embed;
  CompileOptions compile;
  double chain_strength = 0.0;  // <= 0: automatic
  /// QUBO presolve before embedding (like Ocean's fix_variables): variables
  /// whose optimal value follows from coefficient signs are pinned and
  /// never consume physical qubits. Off by default so the paper-faithful
  /// benches report unreduced footprints.
  bool use_presolve = false;
  /// When non-null, the backend consults this injector at the session
  /// points where real QPU jobs fail: submission (rejection / queue
  /// timeout, after the embedding is built), calibration drift (added to
  /// the ICE sigma), and mid-session dead-qubit events (which abort the
  /// run with `fault == kDeadQubits` so the caller can re-embed).
  FaultInjector* faults = nullptr;
};

struct AnnealOutcome {
  bool embedded = false;          // false => device too small / embed failed
  std::size_t num_logical = 0;    // QUBO variables (program vars + ancillas)
  std::size_t presolve_fixed = 0; // variables pinned before embedding
  std::size_t qubits_used = 0;    // physical qubits (the paper's x-axis)
  std::size_t max_chain_length = 0;
  /// Samples projected to the program variables, ordered by ascending
  /// logical energy; paired with each sample's program evaluation.
  std::vector<std::vector<bool>> samples;
  std::vector<Evaluation> evaluations;
  DWaveTiming timing;
  /// Injected fault that aborted this run (nullopt = no fault fired).
  std::optional<FaultKind> fault;
  /// Physical qubits killed by a kDeadQubits fault; the caller should
  /// mark them inoperable and re-embed.
  std::vector<std::size_t> dead_qubits;
};

/// Runs the program on the (simulated) annealing device. Uses and warms the
/// provided synthesis engine; pass a fresh one for isolated runs. When
/// `trace` is non-null, the compile / presolve / embed / sample stages and
/// their metrics (chain-length histogram, chain-break counters, modeled
/// device times) are recorded into it.
AnnealOutcome run_annealer(const Env& env, const Device& device,
                           SynthEngine& engine, Rng& rng,
                           const AnnealBackendOptions& options = {},
                           obs::Trace* trace = nullptr);

}  // namespace nck
