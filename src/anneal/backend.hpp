// End-to-end annealing backend: NchooseK program -> QUBO -> Ising -> minor
// embedding on the device -> noisy sampling -> logical samples over the
// program's variables. Mirrors what NchooseK does through D-Wave's Ocean
// API, with the QPU replaced by the simulator in sampler.hpp.
#pragma once

#include <optional>

#include "anneal/embedded_ising.hpp"
#include "anneal/embedding.hpp"
#include "anneal/sampler.hpp"
#include "anneal/topology.hpp"
#include "core/compile.hpp"
#include "core/env.hpp"
#include "qubo/presolve.hpp"
#include "resilience/fault.hpp"
#include "synth/engine.hpp"

namespace nck {

struct AnnealBackendOptions {
  AnnealerSamplerOptions sampler;
  EmbedOptions embed;
  CompileOptions compile;
  double chain_strength = 0.0;  // <= 0: automatic
  /// QUBO presolve before embedding (like Ocean's fix_variables): variables
  /// whose optimal value follows from coefficient signs are pinned and
  /// never consume physical qubits. Off by default so the paper-faithful
  /// benches report unreduced footprints.
  bool use_presolve = false;
  /// When non-null, the backend consults this injector at the session
  /// points where real QPU jobs fail: submission (rejection / queue
  /// timeout, after the embedding is built), calibration drift (added to
  /// the ICE sigma), and mid-session dead-qubit events (which abort the
  /// run with `fault == kDeadQubits` so the caller can re-embed).
  FaultInjector* faults = nullptr;
};

struct AnnealOutcome {
  bool embedded = false;          // false => device too small / embed failed
  std::size_t num_logical = 0;    // QUBO variables (program vars + ancillas)
  std::size_t presolve_fixed = 0; // variables pinned before embedding
  std::size_t qubits_used = 0;    // physical qubits (the paper's x-axis)
  std::size_t max_chain_length = 0;
  /// Samples projected to the program variables, ordered by ascending
  /// logical energy; paired with each sample's program evaluation.
  std::vector<std::vector<bool>> samples;
  std::vector<Evaluation> evaluations;
  DWaveTiming timing;
  /// Injected fault that aborted this run (nullopt = no fault fired).
  std::optional<FaultKind> fault;
  /// Physical qubits killed by a kDeadQubits fault; the caller should
  /// mark them inoperable and re-embed.
  std::vector<std::size_t> dead_qubits;
};

/// The annealer's prepare artifact: everything client-side and
/// deterministic — compiled QUBO, presolve pinning, logical Ising,
/// minor embedding, and the embedded physical program. Immutable once
/// built; execute_annealer() runs any number of sampling sessions
/// against it (the backend::Plan the plan cache stores).
struct AnnealPrepared {
  Env env;  // structural copy used to evaluate unembedded samples
  CompiledQubo compiled;
  bool use_presolve = false;
  PresolveResult pres;
  std::vector<std::size_t> free_vars;  // sampled index -> full QUBO index
  std::size_t num_sampled_vars = 0;    // 0 = presolve pinned everything
  IsingModel logical;                  // over the sampled (compacted) vars
  /// False when no minor embedding was found (the only prepare failure);
  /// the remaining fields below it are then unset.
  bool embedded = false;
  Embedding embedding;
  EmbeddedProblem problem;  // chain strength already applied
  std::size_t qubits_used = 0;
  std::size_t max_chain_length = 0;
  double compile_ms = 0.0;  // client time of the original prepare
  double embed_ms = 0.0;

  /// Approximate heap footprint, for the plan cache's byte budget.
  std::size_t bytes() const noexcept;
};

/// Client-side half: compile -> presolve -> embed -> embedded Ising.
/// Deterministic given (env, device, options, rng state); consumes no
/// faults. When the QUBO is empty after presolve, `embedded` is true
/// with no embedding (the answer is pinned). When `trace` is non-null,
/// records the compile / presolve / embed stage spans.
AnnealPrepared prepare_annealer(const Env& env, const Device& device,
                                SynthEngine& engine, Rng& rng,
                                const AnnealBackendOptions& options = {},
                                obs::Trace* trace = nullptr);

/// Device-side half: submit-fault gate, dead-qubit event, calibration
/// drift, noisy sampling, unembedding, evaluation. Touches `rng` only
/// after the fault gates pass, so a rejected submission leaves the
/// caller's sample stream untouched. Requires prepared.embedded.
AnnealOutcome execute_annealer(const AnnealPrepared& prepared, Rng& rng,
                               const AnnealBackendOptions& options = {},
                               obs::Trace* trace = nullptr);

/// Runs the program on the (simulated) annealing device: prepare_annealer
/// followed by execute_annealer on the same rng. Uses and warms the
/// provided synthesis engine; pass a fresh one for isolated runs. When
/// `trace` is non-null, the compile / presolve / embed / sample stages and
/// their metrics (chain-length histogram, chain-break counters, modeled
/// device times) are recorded into it.
AnnealOutcome run_annealer(const Env& env, const Device& device,
                           SynthEngine& engine, Rng& rng,
                           const AnnealBackendOptions& options = {},
                           obs::Trace* trace = nullptr);

}  // namespace nck
