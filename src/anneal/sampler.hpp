// Noisy annealing sampler: the classical proxy for a quantum annealer run.
// Per read, the physical Ising program is perturbed by integrated control
// errors (Gaussian noise on h and J, as on real hardware), simulated
// annealing relaxes the embedded system, readout errors flip qubits, and
// chains are majority-vote collapsed back to logical variables.
#pragma once

#include "anneal/embedded_ising.hpp"
#include "anneal/timing.hpp"
#include "obs/obs.hpp"
#include "qubo/heuristic.hpp"
#include "util/rng.hpp"

namespace nck {

struct AnnealerSamplerOptions {
  std::size_t num_reads = 100;   // the paper's D-Wave sample count
  std::size_t num_sweeps = 1024; // total Metropolis sweep budget per read
  /// Parallel-tempering ladder width of the packed kernel (anneal/packed.hpp):
  /// each read runs this many replicas at fixed inverse temperatures between
  /// beta_initial and beta_final, splitting `num_sweeps` evenly across them.
  /// 1 disables tempering in favor of a single-replica geometric beta ramp.
  std::size_t num_replicas = 8;
  /// Sweeps between replica-exchange rounds of the tempering ladder.
  std::size_t exchange_interval = 16;
  double beta_initial = 0.05;
  double beta_final = 6.0;
  /// ICE noise: stddev of the Gaussian perturbation applied to each h and J,
  /// relative to the largest absolute coefficient of the physical program.
  double ice_sigma = 0.015;
  /// Per-qubit readout flip probability.
  double readout_error = 0.002;
  /// Spin-reversal (gauge) transforms: each read runs under a random
  /// per-qubit gauge, decorrelating the control-error noise from the
  /// problem structure (a standard D-Wave mitigation).
  bool spin_reversal_transform = true;
  /// Greedy single-flip descent on the *logical* problem after
  /// unembedding (D-Wave's optional post-processing).
  bool postprocess = false;
  /// When postprocess is on and this is nonzero, refine each read with a
  /// deterministic tabu search of this many moves (qubo::tabu_search)
  /// instead of plain descent. Descent cannot cross even a one-soft-unit
  /// ridge of a compiled hard+soft program — the hard scale flattens the
  /// soft landscape far below the final annealing temperature's resolution
  /// — so decomposed sub-solves stall in minimal-but-not-minimum states
  /// without it. This is qbsolv's classical tabu refinement of every
  /// device sample.
  std::size_t postprocess_tabu_iters = 0;
  DWaveTimingModel timing_model;
};

struct AnnealRead {
  std::vector<bool> logical;  // unembedded sample over logical spins
  double logical_energy = 0.0;
  std::size_t chain_breaks = 0;
  std::size_t chain_ties = 0;  // broken chains resolved by a coin flip
  /// Pre-sort position of this read (its per-read RNG stream index). Every
  /// draw of read r comes from stream r, so reads with equal read_index are
  /// comparable across runs that differ only in thread count or
  /// postprocessing — the determinism-regression tests pair reads by it.
  std::size_t read_index = 0;
};

struct AnnealSampleResult {
  std::vector<AnnealRead> reads;  // sorted by ascending logical energy
  DWaveTiming timing;
};

/// Samples the embedded problem `num_reads` times (OpenMP-parallel across
/// reads). `logical` is used only to report logical energies. When `trace`
/// is non-null, records the wall-clock sampling span, the modeled device
/// stages, and chain-break / tie counters (aggregated once after the
/// parallel loop).
AnnealSampleResult sample_annealer(const IsingModel& logical,
                                   const EmbeddedProblem& problem,
                                   const AnnealerSamplerOptions& options,
                                   Rng& rng, obs::Trace* trace = nullptr);

}  // namespace nck
