#include "anneal/sampler.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>

#include "qubo/ising.hpp"

namespace nck {
namespace {

IsingModel perturbed(const IsingModel& ising, double sigma_abs, Rng& rng) {
  IsingModel noisy = ising;
  if (sigma_abs > 0.0) {
    for (double& h : noisy.h) h += rng.gaussian(0.0, sigma_abs);
    for (auto& [a, b, c] : noisy.j) c += rng.gaussian(0.0, sigma_abs);
  }
  return noisy;
}

double max_abs_coefficient(const IsingModel& ising) {
  double m = 0.0;
  for (double h : ising.h) m = std::max(m, std::abs(h));
  for (const auto& [a, b, c] : ising.j) m = std::max(m, std::abs(c));
  return m;
}

}  // namespace

AnnealSampleResult sample_annealer(const IsingModel& logical,
                                   const EmbeddedProblem& problem,
                                   const AnnealerSamplerOptions& options,
                                   Rng& rng, obs::Trace* trace) {
  obs::Span sample_span(trace, "anneal.sample");
  AnnealSampleResult result;
  result.reads.resize(options.num_reads);

  const double scale = max_abs_coefficient(problem.ising);
  const double sigma = options.ice_sigma * scale;

  std::vector<Rng> streams;
  streams.reserve(options.num_reads);
  for (std::size_t r = 0; r < options.num_reads; ++r) {
    streams.push_back(rng.split());
  }

  AnnealParams params;
  params.num_sweeps = options.num_sweeps;
  params.beta_initial = options.beta_initial;
  params.beta_final = options.beta_final;

  const Qubo logical_qubo =
      options.postprocess ? ising_to_qubo(logical) : Qubo();

#pragma omp parallel for schedule(dynamic)
  for (std::int64_t r = 0; r < static_cast<std::int64_t>(options.num_reads);
       ++r) {
    Rng& stream = streams[static_cast<std::size_t>(r)];
    // Spin-reversal transform: gauge the clean program first; the control
    // errors then act on the gauged program, so their effective sign
    // pattern varies per read instead of biasing every read identically.
    std::vector<bool> gauge(problem.ising.num_spins(), false);
    IsingModel gauged = problem.ising;
    if (options.spin_reversal_transform) {
      for (std::size_t q = 0; q < gauge.size(); ++q) {
        gauge[q] = stream.bernoulli(0.5);
        if (gauge[q]) gauged.h[q] = -gauged.h[q];
      }
      for (auto& [a, b, c] : gauged.j) {
        if (gauge[a] != gauge[b]) c = -c;
      }
    }
    // Per-read control-error perturbation, then a classical relaxation of
    // the perturbed physical program. Like the hardware, the program is
    // auto-scaled to the unit coefficient range first, so the annealing
    // temperature schedule is meaningful regardless of problem scale.
    IsingModel noisy = perturbed(gauged, sigma, stream);
    if (scale > 0.0) {
      for (double& h : noisy.h) h /= scale;
      for (auto& [a, b, c] : noisy.j) c /= scale;
      noisy.offset /= scale;
    }
    const Qubo physical_qubo = ising_to_qubo(noisy);
    Sample physical = anneal_once(physical_qubo, params, stream);
    // Readout errors flip individual qubits after the anneal; then the
    // gauge is undone.
    for (std::size_t q = 0; q < physical.x.size(); ++q) {
      if (stream.bernoulli(options.readout_error)) {
        physical.x[q] = !physical.x[q];
      }
      if (options.spin_reversal_transform && gauge[q]) {
        physical.x[q] = !physical.x[q];
      }
    }
    AnnealRead& read = result.reads[static_cast<std::size_t>(r)];
    UnembedStats unembed_stats;
    read.logical = unembed_sample(physical.x, problem, &unembed_stats, &stream);
    read.chain_breaks = unembed_stats.chain_breaks;
    read.chain_ties = unembed_stats.ties;
    if (options.postprocess) {
      read.logical = greedy_descent(logical_qubo, read.logical).x;
    }
    read.logical_energy = logical.energy(read.logical);
  }

  std::sort(result.reads.begin(), result.reads.end(),
            [](const AnnealRead& a, const AnnealRead& b) {
              return a.logical_energy < b.logical_energy;
            });

  result.timing.num_reads = options.num_reads;
  result.timing.programming_us = options.timing_model.programming_us;
  result.timing.sampling_us =
      options.timing_model.sampling_time_us(options.num_reads);
  // The postprocessing tail is only spent when postprocessing actually
  // runs; the model's default charged it unconditionally.
  result.timing.postprocess_us =
      options.postprocess ? options.timing_model.postprocess_us : 0.0;
  result.timing.total_us = result.timing.programming_us +
                           result.timing.sampling_us +
                           result.timing.postprocess_us;

  if (trace) {
    std::size_t total_breaks = 0;
    std::size_t total_ties = 0;
    for (const AnnealRead& read : result.reads) {
      total_breaks += read.chain_breaks;
      total_ties += read.chain_ties;
    }
    const std::size_t num_chains = problem.chain.size();
    obs::Registry& reg = trace->registry();
    reg.add("anneal.reads", static_cast<double>(options.num_reads));
    reg.add("anneal.chain_breaks", static_cast<double>(total_breaks));
    reg.add("anneal.chain_break_ties", static_cast<double>(total_ties));
    reg.set("anneal.chain_break_rate",
            options.num_reads && num_chains
                ? static_cast<double>(total_breaks) /
                      static_cast<double>(options.num_reads * num_chains)
                : 0.0);
    reg.set("anneal.ice_sigma", sigma);
    trace->record_modeled("device.programming", result.timing.programming_us);
    trace->record_modeled("device.sampling", result.timing.sampling_us);
    trace->record_modeled("device.postprocess", result.timing.postprocess_us);
  }
  return result;
}

}  // namespace nck
