#include "anneal/sampler.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>

#include "anneal/packed.hpp"
#include "qubo/ising.hpp"

namespace nck {
namespace {

double max_abs_coefficient(const IsingModel& ising) {
  double m = 0.0;
  for (double h : ising.h) m = std::max(m, std::abs(h));
  for (const auto& [a, b, c] : ising.j) m = std::max(m, std::abs(c));
  return m;
}

}  // namespace

AnnealSampleResult sample_annealer(const IsingModel& logical,
                                   const EmbeddedProblem& problem,
                                   const AnnealerSamplerOptions& options,
                                   Rng& rng, obs::Trace* trace) {
  obs::Span sample_span(trace, "anneal.sample");
  AnnealSampleResult result;
  result.reads.resize(options.num_reads);

  const double scale = max_abs_coefficient(problem.ising);
  const double sigma = options.ice_sigma * scale;

  // Per-read streams split serially from the master before the parallel
  // region: read r's gauge, noise, anneal, readout, and chain-tie draws all
  // come from streams[r], so the schedule (and thread count) cannot change
  // any read's outcome.
  std::vector<Rng> streams;
  streams.reserve(options.num_reads);
  for (std::size_t r = 0; r < options.num_reads; ++r) {
    streams.push_back(rng.split());
  }

  const PackedIsing packed(problem.ising);
  TemperingOptions tempering;
  tempering.num_replicas = options.num_replicas;
  tempering.num_sweeps = options.num_sweeps;
  tempering.exchange_interval = options.exchange_interval;
  tempering.beta_initial = options.beta_initial;
  tempering.beta_final = options.beta_final;

  const Qubo logical_qubo =
      options.postprocess ? ising_to_qubo(logical) : Qubo();

#pragma omp parallel
  {
    // One workspace per thread: the packed program coefficients and the
    // replica ensemble are reused across that thread's reads, so the hot
    // loop is allocation-free after the first read.
    PackedWorkspace workspace(packed);
    std::vector<bool> physical(packed.num_spins());
#pragma omp for schedule(dynamic)
    for (std::int64_t r = 0; r < static_cast<std::int64_t>(options.num_reads);
         ++r) {
      Rng& stream = streams[static_cast<std::size_t>(r)];
      // Spin-reversal transform gauges the clean program first; the ICE
      // control errors then act on the gauged program, so their effective
      // sign pattern varies per read instead of biasing every read
      // identically. Like the hardware, the program is auto-scaled to the
      // unit coefficient range so the temperature ladder is meaningful
      // regardless of problem scale.
      workspace.load_program(options.spin_reversal_transform, sigma, scale,
                             stream);
      const PackedState& best = workspace.anneal(tempering, stream);
      // Readout errors flip individual qubits after the anneal; then the
      // gauge is undone.
      for (std::size_t q = 0; q < physical.size(); ++q) {
        bool bit = best.up(q);
        if (stream.bernoulli(options.readout_error)) bit = !bit;
        if (workspace.gauge_bit(q)) bit = !bit;
        physical[q] = bit;
      }
      AnnealRead& read = result.reads[static_cast<std::size_t>(r)];
      read.read_index = static_cast<std::size_t>(r);
      UnembedStats unembed_stats;
      read.logical = unembed_sample(physical, problem, &unembed_stats, &stream);
      read.chain_breaks = unembed_stats.chain_breaks;
      read.chain_ties = unembed_stats.ties;
      if (options.postprocess) {
        read.logical =
            options.postprocess_tabu_iters > 0
                ? tabu_search(logical_qubo, read.logical,
                              {.max_iters = options.postprocess_tabu_iters})
                      .x
                : greedy_descent(logical_qubo, read.logical).x;
      }
      read.logical_energy = logical.energy(read.logical);
    }
  }

  std::stable_sort(result.reads.begin(), result.reads.end(),
                   [](const AnnealRead& a, const AnnealRead& b) {
                     return a.logical_energy < b.logical_energy;
                   });

  result.timing.num_reads = options.num_reads;
  result.timing.programming_us = options.timing_model.programming_us;
  result.timing.sampling_us =
      options.timing_model.sampling_time_us(options.num_reads);
  // The postprocessing tail is only spent when postprocessing actually
  // runs; the model's default charged it unconditionally.
  result.timing.postprocess_us =
      options.postprocess ? options.timing_model.postprocess_us : 0.0;
  result.timing.total_us = result.timing.programming_us +
                           result.timing.sampling_us +
                           result.timing.postprocess_us;

  if (trace) {
    std::size_t total_breaks = 0;
    std::size_t total_ties = 0;
    for (const AnnealRead& read : result.reads) {
      total_breaks += read.chain_breaks;
      total_ties += read.chain_ties;
    }
    const std::size_t num_chains = problem.chain.size();
    obs::Registry& reg = trace->registry();
    reg.add("anneal.reads", static_cast<double>(options.num_reads));
    reg.add("anneal.chain_breaks", static_cast<double>(total_breaks));
    reg.add("anneal.chain_break_ties", static_cast<double>(total_ties));
    reg.set("anneal.chain_break_rate",
            options.num_reads && num_chains
                ? static_cast<double>(total_breaks) /
                      static_cast<double>(options.num_reads * num_chains)
                : 0.0);
    reg.set("anneal.ice_sigma", sigma);
    reg.set("anneal.replicas",
            static_cast<double>(std::max<std::size_t>(1, options.num_replicas)));
    trace->record_modeled("device.programming", result.timing.programming_us);
    trace->record_modeled("device.sampling", result.timing.sampling_us);
    trace->record_modeled("device.postprocess", result.timing.postprocess_us);
  }
  return result;
}

}  // namespace nck
