#include "anneal/embedded_ising.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace nck {

double recommended_chain_strength(const IsingModel& logical) {
  // Torque-compensation style: ~0.65 * rms(J) * sqrt(average degree),
  // floored at half the strongest single coupler. Stronger chains look
  // safer but are not: after hardware auto-scaling they compress the
  // problem's energy gaps (empirically the fidelity optimum sits near
  // 0.35-0.5x of the classic sqrt(2)-prefactor recommendation; see
  // bench_ablation_anneal).
  double sum_sq = 0.0;
  double max_j = 0.0;
  std::size_t count = 0;
  for (const auto& [a, b, c] : logical.j) {
    sum_sq += c * c;
    max_j = std::max(max_j, std::abs(c));
    ++count;
  }
  if (count == 0 || logical.h.empty()) {
    double max_h = 0.0;
    for (double h : logical.h) max_h = std::max(max_h, std::abs(h));
    return std::max(1.0, max_h);
  }
  const double rms = std::sqrt(sum_sq / static_cast<double>(count));
  const double avg_degree =
      2.0 * static_cast<double>(count) / static_cast<double>(logical.h.size());
  return std::max({1e-3, 0.5 * max_j, 0.65 * rms * std::sqrt(avg_degree)});
}

EmbeddedProblem embed_ising(const IsingModel& logical,
                            const Embedding& embedding, const Graph& physical,
                            double chain_strength) {
  if (embedding.chains.size() < logical.num_spins()) {
    throw std::invalid_argument("embed_ising: embedding too small");
  }
  EmbeddedProblem out;
  out.chain_strength =
      chain_strength > 0.0 ? chain_strength : recommended_chain_strength(logical);

  // Compact index space over used qubits.
  std::unordered_map<Graph::Vertex, std::uint32_t> compact;
  out.chain.resize(logical.num_spins());
  for (std::size_t v = 0; v < logical.num_spins(); ++v) {
    for (Graph::Vertex q : embedding.chains[v]) {
      auto [it, inserted] =
          compact.emplace(q, static_cast<std::uint32_t>(out.qubit.size()));
      if (inserted) out.qubit.push_back(q);
      out.chain[v].push_back(it->second);
    }
  }

  out.ising.h.assign(out.qubit.size(), 0.0);
  out.ising.offset = logical.offset;

  // Fields: split uniformly across the chain.
  for (std::size_t v = 0; v < logical.num_spins(); ++v) {
    const double share =
        logical.h[v] / static_cast<double>(out.chain[v].size());
    for (std::uint32_t c : out.chain[v]) out.ising.h[c] += share;
  }

  // Logical couplers: distributed uniformly across every available physical
  // coupler between the two chains.
  for (const auto& [a, b, jv] : logical.j) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> couplers;
    for (std::size_t ia = 0; ia < out.chain[a].size(); ++ia) {
      for (std::size_t ib = 0; ib < out.chain[b].size(); ++ib) {
        const Graph::Vertex qa = embedding.chains[a][ia];
        const Graph::Vertex qb = embedding.chains[b][ib];
        if (physical.has_edge(qa, qb)) {
          couplers.emplace_back(out.chain[a][ia], out.chain[b][ib]);
        }
      }
    }
    if (couplers.empty()) {
      throw std::invalid_argument(
          "embed_ising: logical coupler has no physical edge (invalid "
          "embedding)");
    }
    const double share = jv / static_cast<double>(couplers.size());
    for (const auto& [ca, cb] : couplers) {
      out.ising.j.emplace_back(std::min(ca, cb), std::max(ca, cb), share);
    }
  }

  // Intra-chain ferromagnetic couplers along every physical edge inside a
  // chain. Offset keeps intact-chain energies aligned with logical energies.
  for (std::size_t v = 0; v < logical.num_spins(); ++v) {
    const auto& chain_q = embedding.chains[v];
    for (std::size_t i = 0; i < chain_q.size(); ++i) {
      for (std::size_t k = i + 1; k < chain_q.size(); ++k) {
        if (physical.has_edge(chain_q[i], chain_q[k])) {
          const std::uint32_t ca = out.chain[v][i];
          const std::uint32_t cb = out.chain[v][k];
          out.ising.j.emplace_back(std::min(ca, cb), std::max(ca, cb),
                                   -out.chain_strength);
          out.ising.offset += out.chain_strength;
        }
      }
    }
  }
  return out;
}

std::vector<bool> unembed_sample(const std::vector<bool>& physical_sample,
                                 const EmbeddedProblem& problem,
                                 UnembedStats* stats, Rng* rng) {
  std::vector<bool> logical(problem.chain.size());
  UnembedStats local;
  for (std::size_t v = 0; v < problem.chain.size(); ++v) {
    std::size_t up = 0;
    for (std::uint32_t c : problem.chain[v]) {
      if (physical_sample[c]) ++up;
    }
    const std::size_t len = problem.chain[v].size();
    if (up != 0 && up != len) ++local.chain_breaks;
    if (len != 0 && 2 * up == len) {
      // Exact tie: a fixed rule would bias every tied chain the same way.
      ++local.ties;
      logical[v] = rng ? rng->bernoulli(0.5) : true;
    } else {
      logical[v] = 2 * up > len;  // majority vote
    }
  }
  if (stats) *stats = local;
  return logical;
}

}  // namespace nck
