#include "classical/exact_solver.hpp"

#include <algorithm>
#include <stdexcept>

namespace nck {
namespace {

// Per-constraint bookkeeping during search. `true_weight` counts assigned
// TRUE occurrences (with multiplicity); `free_weight` counts unassigned
// occurrences. A hard constraint is *dead* when no selection value lies in
// [true_weight, true_weight + free_weight] (a sound relaxation: multiplicity
// gaps only make us prune less, never wrongly).
struct ConstraintState {
  unsigned true_weight = 0;
  unsigned free_weight = 0;
};

class Search {
 public:
  Search(const Env& env, const ExactSolverOptions& options)
      : env_(env), options_(options) {
    const auto& constraints = env.constraints();
    states_.resize(constraints.size());
    occurrences_.resize(env.num_vars());
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      states_[c].free_weight =
          static_cast<unsigned>(constraints[c].collection().size());
      for (VarId v : constraints[c].collection()) {
        // One entry per occurrence; repeated variables appear repeatedly,
        // which is exactly the multiplicity weight we need.
        occurrences_[v].push_back(c);
      }
      if (constraints[c].soft()) ++soft_total_;
    }
    assignment_.assign(env.num_vars(), -1);

    // Branch on variables in descending occurrence count (most constrained
    // first), which empirically shrinks the tree substantially.
    order_.resize(env.num_vars());
    for (std::size_t i = 0; i < order_.size(); ++i) {
      order_[i] = static_cast<VarId>(i);
    }
    std::sort(order_.begin(), order_.end(), [&](VarId a, VarId b) {
      return occurrences_[a].size() > occurrences_[b].size();
    });
  }

  ClassicalSolution run() {
    best_violated_ = soft_total_ + 1;  // sentinel: nothing found yet
    dfs(0, 0);
    ClassicalSolution solution;
    solution.soft_total = soft_total_;
    solution.nodes_explored = nodes_;
    if (best_violated_ <= soft_total_) {
      solution.feasible = true;
      solution.assignment = best_assignment_;
      solution.soft_satisfied = soft_total_ - best_violated_;
    }
    return solution;
  }

 private:
  // Returns the lowest possible / highest possible satisfied status of a
  // constraint: 0 = definitely violated, 1 = definitely satisfied,
  // -1 = still open.
  int status(std::size_t c) const {
    const auto& sel = env_.constraints()[c].selection();
    const unsigned lo = states_[c].true_weight;
    const unsigned hi = lo + states_[c].free_weight;
    if (states_[c].free_weight == 0) return sel.count(lo) ? 1 : 0;
    // Any selection value within [lo, hi] keeps it open.
    auto it = sel.lower_bound(lo);
    if (it == sel.end() || *it > hi) return 0;
    return -1;
  }

  void apply(VarId v, bool value) {
    assignment_[v] = value ? 1 : 0;
    for (std::size_t c : occurrences_[v]) {
      --states_[c].free_weight;
      if (value) ++states_[c].true_weight;
    }
  }

  void undo(VarId v, bool value) {
    assignment_[v] = -1;
    for (std::size_t c : occurrences_[v]) {
      ++states_[c].free_weight;
      if (value) --states_[c].true_weight;
    }
  }

  void dfs(std::size_t depth, std::size_t soft_violated) {
    if (options_.max_nodes && nodes_ >= options_.max_nodes) {
      throw std::runtime_error("solve_exact: node budget exhausted");
    }
    ++nodes_;
    if (soft_violated >= best_violated_) return;  // bound

    // Feasibility/bound check over all constraints. Hard: prune when dead.
    // Soft: count constraints that can no longer be satisfied.
    std::size_t dead_soft = 0;
    for (std::size_t c = 0; c < states_.size(); ++c) {
      const int s = status(c);
      if (s != 0) continue;
      if (env_.constraints()[c].soft()) {
        ++dead_soft;
      } else {
        return;  // a hard constraint is dead on this branch
      }
    }
    if (dead_soft >= best_violated_) return;

    if (depth == order_.size()) {
      best_violated_ = dead_soft;
      best_assignment_.resize(assignment_.size());
      for (std::size_t i = 0; i < assignment_.size(); ++i) {
        best_assignment_[i] = assignment_[i] == 1;
      }
      return;
    }

    const VarId v = order_[depth];
    for (bool value : {false, true}) {
      apply(v, value);
      dfs(depth + 1, dead_soft);
      undo(v, value);
    }
  }

  const Env& env_;
  ExactSolverOptions options_;
  std::vector<ConstraintState> states_;
  std::vector<std::vector<std::size_t>> occurrences_;
  std::vector<int> assignment_;  // -1 unassigned / 0 / 1
  std::vector<VarId> order_;
  std::size_t soft_total_ = 0;
  std::size_t best_violated_ = 0;
  std::vector<bool> best_assignment_;
  std::size_t nodes_ = 0;
};

}  // namespace

ClassicalSolution solve_exact(const Env& env, ExactSolverOptions options) {
  return Search(env, options).run();
}

ClassicalSolution solve_brute_force(const Env& env) {
  const std::size_t n = env.num_vars();
  if (n > 25) {
    throw std::invalid_argument("solve_brute_force: too many variables");
  }
  ClassicalSolution solution;
  solution.soft_total = env.num_soft();
  std::size_t best_soft = 0;
  bool found = false;
  std::vector<bool> x(n);
  for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
    for (std::size_t i = 0; i < n; ++i) x[i] = (bits >> i) & 1u;
    const Evaluation e = env.evaluate(x);
    ++solution.nodes_explored;
    if (!e.feasible()) continue;
    if (!found || e.soft_satisfied > best_soft) {
      found = true;
      best_soft = e.soft_satisfied;
      solution.assignment = x;
    }
  }
  solution.feasible = found;
  solution.soft_satisfied = best_soft;
  return solution;
}

}  // namespace nck
