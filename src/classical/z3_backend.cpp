#include "classical/z3_backend.hpp"

#if NCK_HAVE_Z3

#include <z3++.h>

#include <cstdio>

#include <stdexcept>

namespace nck {
namespace {

// Weighted TRUE count of a constraint's collection as a Z3 integer term.
z3::expr count_expr(z3::context& ctx, const Constraint& c,
                    const std::vector<z3::expr>& vars) {
  z3::expr count = ctx.int_val(0);
  for (VarId v : c.collection()) {
    count = count + z3::ite(vars[v], ctx.int_val(1), ctx.int_val(0));
  }
  return count;
}

// Membership of `count` in the selection set as a disjunction.
z3::expr selection_expr(z3::context& ctx, const Constraint& c,
                        const z3::expr& count) {
  z3::expr_vector options(ctx);
  for (unsigned k : c.selection()) {
    options.push_back(count == ctx.int_val(static_cast<int>(k)));
  }
  return z3::mk_or(options);
}

}  // namespace

ClassicalSolution solve_with_z3(const Env& env, Z3SolveOptions options) {
  z3::context ctx;
  if (options.timeout_ms > 0) {
    ctx.set("timeout", static_cast<int>(options.timeout_ms));
  }
  std::vector<z3::expr> vars;
  vars.reserve(env.num_vars());
  for (std::size_t i = 0; i < env.num_vars(); ++i) {
    vars.push_back(ctx.bool_const(("v" + std::to_string(i)).c_str()));
  }

  ClassicalSolution solution;
  solution.soft_total = env.num_soft();

  const bool use_optimize = options.optimize_soft && env.num_soft() > 0;
  z3::optimize opt(ctx);
  z3::solver solver(ctx);

  for (const auto& c : env.constraints()) {
    const z3::expr member = selection_expr(ctx, c, count_expr(ctx, c, vars));
    if (c.soft()) {
      if (use_optimize) opt.add_soft(member, 1);
    } else if (use_optimize) {
      opt.add(member);
    } else {
      solver.add(member);
    }
  }

  z3::check_result result =
      use_optimize ? opt.check() : solver.check();
  if (result == z3::unknown) {
    throw std::runtime_error("solve_with_z3: solver returned unknown");
  }
  if (result == z3::unsat) return solution;  // infeasible

  z3::model model = use_optimize ? opt.get_model() : solver.get_model();
  solution.feasible = true;
  solution.assignment.resize(env.num_vars());
  for (std::size_t i = 0; i < env.num_vars(); ++i) {
    solution.assignment[i] = model.eval(vars[i], true).is_true();
  }
  solution.soft_satisfied = env.evaluate(solution.assignment).soft_satisfied;
  return solution;
}

QuboSolveResult solve_qubo_with_z3(const Qubo& q, unsigned timeout_ms) {
  z3::context ctx;
  if (timeout_ms > 0) ctx.set("timeout", static_cast<int>(timeout_ms));
  z3::optimize opt(ctx);

  std::vector<z3::expr> bits;
  bits.reserve(q.num_variables());
  for (std::size_t i = 0; i < q.num_variables(); ++i) {
    bits.push_back(ctx.bool_const(("x" + std::to_string(i)).c_str()));
  }

  // The objective must stay *linear* for Z3's optimizer to guarantee a true
  // optimum: monomials become ite-selected constants, never real products.
  auto coeff = [&ctx](double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return ctx.real_val(buf);
  };
  const z3::expr zero = ctx.real_val(0);
  z3::expr objective = coeff(q.offset());
  for (std::size_t i = 0; i < q.num_variables(); ++i) {
    const double a = q.linear(static_cast<Qubo::Var>(i));
    if (a != 0.0) {
      objective = objective + z3::ite(bits[i], coeff(a), zero);
    }
  }
  for (const auto& [i, j, c] : q.quadratic_terms()) {
    objective = objective + z3::ite(bits[i] && bits[j], coeff(c), zero);
  }

  opt.minimize(objective);
  if (opt.check() != z3::sat) {
    throw std::runtime_error("solve_qubo_with_z3: optimization failed");
  }
  z3::model model = opt.get_model();
  QuboSolveResult result;
  result.assignment.resize(q.num_variables());
  for (std::size_t i = 0; i < q.num_variables(); ++i) {
    result.assignment[i] = model.eval(bits[i], true).is_true();
  }
  result.energy = q.energy(result.assignment);
  return result;
}

}  // namespace nck

#endif  // NCK_HAVE_Z3
