// Native exact solver for generalized NchooseK programs: depth-first branch
// and bound with per-constraint count propagation. Serves as the ground
// truth for Definition 8 classification (which needs the maximum achievable
// number of satisfied soft constraints) and as the classical baseline the
// paper implements with Z3.
#pragma once

#include <optional>
#include <vector>

#include "core/env.hpp"

namespace nck {

struct ClassicalSolution {
  bool feasible = false;            // all hard constraints satisfiable?
  std::vector<bool> assignment;     // a witness (empty if infeasible)
  std::size_t soft_satisfied = 0;   // softs satisfied by the witness
  std::size_t soft_total = 0;
  std::size_t nodes_explored = 0;   // search effort metric
};

struct ExactSolverOptions {
  /// Hard cap on explored nodes; 0 means unlimited. When hit, the solver
  /// throws std::runtime_error (never returns a wrong answer).
  std::size_t max_nodes = 0;
};

/// Finds an assignment satisfying every hard constraint and maximizing the
/// number of satisfied soft constraints (Definition 6 semantics).
ClassicalSolution solve_exact(const Env& env, ExactSolverOptions options = {});

/// Exhaustive reference solver (<= 25 variables) used to validate
/// solve_exact in tests.
ClassicalSolution solve_brute_force(const Env& env);

}  // namespace nck
