// Z3-based classical execution of NchooseK programs — the baseline the
// paper uses both to validate quantum results and for the Fig 12 timing
// study. Two modes are provided:
//   * solve_with_z3:       direct encoding (pseudo-Boolean counts + MaxSAT
//                          over soft constraints) — fast;
//   * solve_qubo_with_z3:  minimize a compiled QUBO's objective with Z3's
//                          optimizer — the paper reports this is drastically
//                          slower (10 vertices < 1 s, 20 vertices ~90 s),
//                          which bench_fig12 reproduces in shape.
#pragma once

#if NCK_HAVE_Z3

#include <optional>

#include "classical/exact_solver.hpp"
#include "core/env.hpp"
#include "qubo/qubo.hpp"

namespace nck {

struct Z3SolveOptions {
  /// Soft-constraint optimization: when false, only hard feasibility is
  /// checked (faster; enough for problems without softs).
  bool optimize_soft = true;
  /// Timeout in milliseconds (0 = none). On timeout a std::runtime_error
  /// is thrown rather than returning a possibly-suboptimal answer.
  unsigned timeout_ms = 0;
};

/// Solves the program exactly with Z3 (same contract as solve_exact).
ClassicalSolution solve_with_z3(const Env& env, Z3SolveOptions options = {});

struct QuboSolveResult {
  std::vector<bool> assignment;
  double energy = 0.0;
};

/// Minimizes a QUBO objective with Z3's optimizer. Exponentially slower than
/// the direct encoding on structured problems; exists to reproduce the
/// paper's QUBO-through-Z3 comparison.
QuboSolveResult solve_qubo_with_z3(const Qubo& q, unsigned timeout_ms = 0);

}  // namespace nck

#endif  // NCK_HAVE_Z3
