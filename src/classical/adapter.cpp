#include "classical/adapter.hpp"

#include "classical/exact_solver.hpp"

namespace nck::backend {
namespace {

struct ClassicalPlan final : Plan {
  Env env;
  std::size_t footprint = 0;
  std::size_t bytes() const noexcept override { return footprint; }
};

std::size_t env_bytes(const Env& env) noexcept {
  std::size_t total = sizeof(Env);
  for (const Constraint& c : env.constraints()) {
    total += c.collection().capacity() * sizeof(VarId);
    total += c.distinct_vars().capacity() * sizeof(VarId);
  }
  return total;
}

}  // namespace

bool ClassicalAdapter::validate(std::string* why) const {
  (void)why;
  return true;  // no options to get wrong
}

Fingerprint ClassicalAdapter::plan_key(const PrepareContext& ctx) const {
  Fingerprint fp;
  fp.mix(std::string("classical"));
  mix_env(fp, *ctx.env);
  return fp;
}

PrepareOutcome ClassicalAdapter::prepare(const PrepareContext& ctx) const {
  auto plan = std::make_shared<ClassicalPlan>();
  plan->env = *ctx.env;
  plan->footprint = env_bytes(plan->env);
  PrepareOutcome outcome;
  outcome.plan = std::move(plan);
  return outcome;
}

ExecutionResult ClassicalAdapter::execute(const Plan& plan,
                                          ExecuteContext& ctx) const {
  (void)ctx;
  const auto& classical = static_cast<const ClassicalPlan&>(plan);
  ExecutionResult result;
  const ClassicalSolution solution = solve_exact(classical.env);
  result.single_answer = true;
  result.evaluations.push_back(classical.env.evaluate(solution.assignment));
  result.samples.push_back(solution.assignment);
  return result;
}

Budget ClassicalAdapter::initial_budget(
    const SampleFloors& floors) const noexcept {
  (void)floors;
  return {1, 0, 1, 0};
}

}  // namespace nck::backend
