// backend::Backend adapter over the native exact solver — the trivial
// member of the backend family: prepare() just snapshots the program
// (nothing expensive to cache) and execute() runs branch and bound.
// Always valid, deadline-exempt (it is the fallback chain's guaranteed
// landing), and it produces a single witness sample.
#pragma once

#include "backend/backend.hpp"

namespace nck::backend {

class ClassicalAdapter final : public Backend {
 public:
  BackendKind kind() const noexcept override { return BackendKind::kClassical; }
  const char* name() const noexcept override { return "classical"; }
  bool validate(std::string* why) const override;
  AnalysisTarget analysis_target() const noexcept override { return {}; }
  Fingerprint plan_key(const PrepareContext& ctx) const override;
  PrepareOutcome prepare(const PrepareContext& ctx) const override;
  ExecutionResult execute(const Plan& plan, ExecuteContext& ctx) const override;
  Budget initial_budget(const SampleFloors& floors) const noexcept override;
  bool deadline_exempt() const noexcept override { return true; }
};

}  // namespace nck::backend
