#include "analysis/program_passes.hpp"

#include "analysis/dataflow/counting.hpp"
#include "analysis/reduce/lint.hpp"
#include "analysis/unsat_core.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace nck {

namespace {

using dataflow::selection_hits_interval;
using dataflow::selection_hits_sums;
using dataflow::SumSet;
using dataflow::UnfixedView;
using dataflow::view_under;

/// Truncated constraint rendering for diagnostic labels.
std::string constraint_label(const Env& env, const Constraint& c) {
  std::string s = c.to_string(env.var_names());
  constexpr std::size_t kMax = 64;
  if (s.size() > kMax) {
    s.resize(kMax - 3);
    s += "...";
  }
  return s;
}

}  // namespace

bool propagate_seeded(const Env& env, const ProgramPassOptions& options,
                      std::vector<ForcedValue>& values,
                      std::size_t& failed_constraint) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t ci = 0; ci < env.constraints().size(); ++ci) {
      const Constraint& c = env.constraints()[ci];
      if (c.soft()) continue;
      const UnfixedView view = view_under(c, values);
      const bool exact =
          c.cardinality() <= options.max_propagation_cardinality &&
          view.unfixed.size() <= 64;

      if (exact) {
        SumSet sums(view.unfixed_total);
        for (const auto& [v, m] : view.unfixed) sums.add_item(m);
        if (!selection_hits_sums(c.selection(), view.fixed_true,
                                 view.unfixed_total, sums)) {
          failed_constraint = ci;
          return true;
        }
        for (const auto& [v, m] : view.unfixed) {
          // Reachable sums with v excluded entirely (offset unchanged).
          SumSet without(view.unfixed_total);
          for (const auto& [w, wm] : view.unfixed) {
            if (w != v) without.add_item(wm);
          }
          const bool can_false = selection_hits_sums(
              c.selection(), view.fixed_true, view.unfixed_total - m, without);
          // v TRUE shifts the offset by its multiplicity.
          const bool can_true =
              selection_hits_sums(c.selection(), view.fixed_true + m,
                                  view.unfixed_total - m, without);
          if (!can_false && !can_true) {
            failed_constraint = ci;
            return true;
          }
          if (!can_false) {
            values[v] = ForcedValue::kTrue;
            changed = true;
          } else if (!can_true) {
            values[v] = ForcedValue::kFalse;
            changed = true;
          }
        }
      } else {
        // Interval over-approximation: reachable counts lie in
        // [fixed, fixed + unfixed_total]; still sound for contradiction
        // and forcing checks (it can only fail to fire, never misfire).
        if (!selection_hits_interval(c.selection(), view.fixed_true,
                                     view.fixed_true + view.unfixed_total)) {
          failed_constraint = ci;
          return true;
        }
        for (const auto& [v, m] : view.unfixed) {
          const bool can_false = selection_hits_interval(
              c.selection(), view.fixed_true,
              view.fixed_true + view.unfixed_total - m);
          const bool can_true = selection_hits_interval(
              c.selection(), view.fixed_true + m,
              view.fixed_true + view.unfixed_total);
          if (!can_false && !can_true) {
            failed_constraint = ci;
            return true;
          }
          if (!can_false) {
            values[v] = ForcedValue::kTrue;
            changed = true;
          } else if (!can_true) {
            values[v] = ForcedValue::kFalse;
            changed = true;
          }
        }
      }
    }
  }
  return false;
}

PropagationResult propagate_forced_values(const Env& env,
                                          const ProgramPassOptions& options) {
  PropagationResult result;
  result.values.assign(env.num_vars(), ForcedValue::kUnknown);
  result.contradiction = propagate_seeded(env, options, result.values,
                                          result.failed_constraint);
  return result;
}

namespace {

void pass_tautology(const Env& env, AnalysisReport& report) {
  for (std::size_t ci = 0; ci < env.constraints().size(); ++ci) {
    const Constraint& c = env.constraints()[ci];
    if (c.selection().size() == c.cardinality() + 1) {
      report.add({Severity::kWarning, DiagCode::kTautology,
                  DiagLocation::constraint(ci, constraint_label(env, c)),
                  "selection set covers every count in [0, " +
                      std::to_string(c.cardinality()) +
                      "]; the constraint is always satisfied",
                  "remove the constraint; it never affects any assignment"});
    }
  }
}

std::string collection_key(const Constraint& c) {
  std::vector<VarId> sorted = c.collection();
  std::sort(sorted.begin(), sorted.end());
  std::ostringstream os;
  for (VarId v : sorted) os << v << ",";
  return os.str();
}

void pass_duplicates(const Env& env, AnalysisReport& report) {
  std::map<std::string, std::size_t> seen;  // full key -> first index
  for (std::size_t ci = 0; ci < env.constraints().size(); ++ci) {
    const Constraint& c = env.constraints()[ci];
    std::ostringstream key;
    key << (c.soft() ? "s|" : "h|") << collection_key(c) << "|";
    for (unsigned k : c.selection()) key << k << ",";
    auto [it, inserted] = seen.emplace(key.str(), ci);
    if (inserted) continue;
    if (c.soft()) {
      report.add({Severity::kNote, DiagCode::kDuplicateConstraint,
                  DiagLocation::constraint_pair(it->second, ci,
                                                constraint_label(env, c)),
                  "duplicate soft constraint; repeating it doubles its weight "
                  "in the objective",
                  "keep the duplicate only if the extra weight is intended"});
    } else {
      report.add({Severity::kWarning, DiagCode::kDuplicateConstraint,
                  DiagLocation::constraint_pair(it->second, ci,
                                                constraint_label(env, c)),
                  "duplicate hard constraint; the repeat adds QUBO terms "
                  "without changing the feasible set",
                  "remove the duplicate to shrink the compiled QUBO"});
    }
  }
}

void pass_contradictory_pairs(const Env& env, AnalysisReport& report) {
  // Hard constraints over the same variable multiset must have overlapping
  // selection sets: the TRUE count is a single number.
  struct Group {
    std::size_t first_index;
    std::set<unsigned> intersection;
    bool reported = false;
  };
  std::map<std::string, Group> groups;
  for (std::size_t ci = 0; ci < env.constraints().size(); ++ci) {
    const Constraint& c = env.constraints()[ci];
    if (c.soft()) continue;
    const std::string key = collection_key(c);
    auto it = groups.find(key);
    if (it == groups.end()) {
      groups.emplace(key, Group{ci, c.selection(), false});
      continue;
    }
    Group& g = it->second;
    if (g.reported) continue;
    std::set<unsigned> merged;
    std::set_intersection(g.intersection.begin(), g.intersection.end(),
                          c.selection().begin(), c.selection().end(),
                          std::inserter(merged, merged.begin()));
    g.intersection = std::move(merged);
    if (g.intersection.empty()) {
      report.add(
          {Severity::kError, DiagCode::kContradictoryPair,
           DiagLocation::constraint_pair(
               g.first_index, ci,
               constraint_label(env, env.constraints()[g.first_index])),
           "hard constraints over the same collection have disjoint "
           "selection sets; no assignment can satisfy both",
           "drop one constraint or widen a selection set so they overlap"});
      g.reported = true;
    }
  }
}

void pass_propagation(const Env& env, const ProgramPassOptions& options,
                      AnalysisReport& report) {
  const PropagationResult prop = propagate_forced_values(env, options);
  if (!prop.contradiction) return;
  const Constraint& c = env.constraints()[prop.failed_constraint];
  report.add({Severity::kError, DiagCode::kInfeasibleByPropagation,
              DiagLocation::constraint(prop.failed_constraint,
                                       constraint_label(env, c)),
              "no reachable TRUE count satisfies this constraint once values "
              "forced by the other hard constraints are propagated",
              "the hard-constraint conjunction is unsatisfiable; relax this "
              "constraint or one of those forcing its variables"});
}

void pass_variable_usage(const Env& env, AnalysisReport& report) {
  std::vector<bool> in_hard(env.num_vars(), false);
  std::vector<bool> in_soft(env.num_vars(), false);
  for (const Constraint& c : env.constraints()) {
    for (VarId v : c.collection()) {
      (c.soft() ? in_soft : in_hard)[v] = true;
    }
  }
  for (std::size_t v = 0; v < env.num_vars(); ++v) {
    if (!in_hard[v] && !in_soft[v]) {
      report.add({Severity::kWarning, DiagCode::kUnusedVariable,
                  DiagLocation::variable(v, env.var_name(static_cast<VarId>(v))),
                  "variable appears in no constraint; its value is arbitrary",
                  "remove the variable or constrain it"});
    } else if (!in_hard[v]) {
      report.add({Severity::kNote, DiagCode::kSoftOnlyVariable,
                  DiagLocation::variable(v, env.var_name(static_cast<VarId>(v))),
                  "variable is constrained only by soft constraints",
                  "if the variable must take a definite value, add a hard "
                  "constraint covering it"});
    }
  }
}

void pass_scale_separation(const Env& env, const ProgramPassOptions& options,
                           AnalysisReport& report) {
  if (env.num_hard() == 0 || env.num_soft() == 0) return;
  // compile() scales hard constraints by at least max_soft_energy + margin,
  // and each normalized soft constraint contributes at least 1 to that
  // bound, so the hard/soft coefficient ratio is at least num_soft + 1.
  const double hard_scale = static_cast<double>(env.num_soft()) + 1.0;
  const double soft_unit_after_norm = 1.0 / hard_scale;
  const double noise_floor = options.ice_sigma * options.resolution_factor;
  if (soft_unit_after_norm >= noise_floor) return;
  std::ostringstream msg;
  msg << "hard constraints must be scaled by >= " << hard_scale
      << " to dominate " << env.num_soft()
      << " soft constraints; after normalization one soft-energy unit ("
      << soft_unit_after_norm << ") falls below the annealer ICE noise floor ("
      << noise_floor << ")";
  report.add({Severity::kWarning, DiagCode::kScaleSeparation,
              DiagLocation::program(), msg.str(),
              "reduce the soft-constraint count, aggregate preferences into "
              "fewer constraints, or target the classical backend"});
}

/// When an infeasibility pass fired (NCK-P001/P002/D003), refine the single
/// reported constraint into a minimal unsatisfiable core so the user sees
/// the whole conflicting set at once.
void pass_unsat_core(const Env& env, const ProgramPassOptions& options,
                     AnalysisReport& report) {
  if (!report.has_code(DiagCode::kContradictoryPair) &&
      !report.has_code(DiagCode::kInfeasibleByPropagation) &&
      !report.has_code(DiagCode::kPresolveUnsat)) {
    return;
  }
  const UnsatCore core = extract_unsat_core(env, options);
  if (!core.found) return;
  std::ostringstream msg;
  msg << "minimal unsatisfiable core: these " << core.members.size()
      << " hard constraint(s) are jointly unsatisfiable, and dropping any "
         "single member restores feasibility";
  if (core.verified_minimal) {
    msg << " (minimality re-verified by deletion)";
  }
  report.add({Severity::kNote, DiagCode::kUnsatCore,
              DiagLocation::constraint_set(core.members), msg.str(),
              "relax or remove one constraint from this set"});
}

void pass_synth_budget(const Env& env, const ProgramPassOptions& options,
                       AnalysisReport& report) {
  if (options.synth_var_budget == 0) return;
  for (std::size_t ci = 0; ci < env.constraints().size(); ++ci) {
    const Constraint& c = env.constraints()[ci];
    const std::set<unsigned>& sel = c.selection();
    // Contiguous selection sets (including trivial and singleton) have a
    // closed-form QUBO of any width when the builtin path is on.
    const bool contiguous =
        sel.empty() || (*sel.rbegin() - *sel.begin() + 1 == sel.size());
    if (options.synth_builtin && contiguous) continue;
    const std::size_t d = c.distinct_vars().size();
    if (d > options.synth_var_budget) {
      std::ostringstream msg;
      msg << "constraint has " << d
          << " distinct variables, a non-contiguous selection set, and no "
             "closed form; the general synthesizers accept at most "
          << options.synth_var_budget
          << " total variables (d + ancillas), so synthesis must fail";
      report.add({Severity::kError, DiagCode::kSynthBudgetExceeded,
                  DiagLocation::constraint(ci, constraint_label(env, c)),
                  msg.str(),
                  "split the constraint into narrower ones or rewrite its "
                  "selection set as a contiguous range"});
    } else if (d == options.synth_var_budget) {
      std::ostringstream msg;
      msg << "constraint uses the entire " << options.synth_var_budget
          << "-variable general-synthesis budget, leaving no room for "
             "ancillas; synthesis fails unless an ancilla-free QUBO exists";
      report.add({Severity::kWarning, DiagCode::kSynthBudgetExceeded,
                  DiagLocation::constraint(ci, constraint_label(env, c)),
                  msg.str(),
                  "narrow the constraint if synthesis fails with NCK-Q000"});
    }
  }
}

}  // namespace

void analyze_program(const Env& env, const ProgramPassOptions& options,
                     AnalysisReport& report) {
  if (env.num_constraints() == 0) {
    report.add({Severity::kWarning, DiagCode::kEmptyProgram,
                DiagLocation::program(),
                "program has no constraints; every assignment is optimal",
                "add constraints before dispatching to a backend"});
    return;
  }
  pass_tautology(env, report);
  pass_duplicates(env, report);
  pass_contradictory_pairs(env, report);
  pass_propagation(env, options, report);
  pass_presolve_lint(env, options, report);
  pass_unsat_core(env, options, report);
  pass_variable_usage(env, report);
  pass_synth_budget(env, options, report);
  if (options.scale_separation) {
    pass_scale_separation(env, options, report);
  }
}

}  // namespace nck
