#include "analysis/interaction.hpp"

namespace nck {

Graph variable_interaction_graph(const Env& env) {
  Graph g(env.num_vars());
  for (const Constraint& c : env.constraints()) {
    const std::vector<VarId> vars = c.distinct_vars();
    for (std::size_t a = 0; a < vars.size(); ++a) {
      for (std::size_t b = a + 1; b < vars.size(); ++b) {
        g.add_edge(static_cast<Graph::Vertex>(vars[a]),
                   static_cast<Graph::Vertex>(vars[b]));
      }
    }
  }
  return g;
}

}  // namespace nck
