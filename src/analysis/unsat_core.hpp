// Deletion-based unsat-core (MUS) extraction over the hard constraints.
//
// When the hard conjunction is provably unsatisfiable (NCK-P001/P002), a
// single failing constraint index under-reports the problem: the user needs
// the *set* of constraints that is jointly unsatisfiable but becomes
// satisfiable when any one member is dropped (a minimal unsatisfiable
// subset). The oracle is the same machinery the infeasibility passes use —
// pair-disjointness plus forced-value propagation to fixpoint — which is
// monotone in constraint-set inclusion (adding constraints only adds forced
// values and preserves contradictions), so the classic deletion algorithm
// yields a true MUS. Minimality is nevertheless re-verified member by
// member, and the result says so.
//
// The oracle is incomplete (propagation over-approximates the feasible
// set), so extract_unsat_core only refines infeasibility the passes already
// proved; it never claims unsatisfiability on its own.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/program_passes.hpp"
#include "core/env.hpp"

namespace nck {

struct UnsatCore {
  /// False when the oracle cannot prove the hard conjunction infeasible
  /// (members is then empty).
  bool found = false;
  /// Constraint indices into Env::constraints(), sorted ascending. Jointly
  /// unsatisfiable; every proper subset is oracle-feasible.
  std::vector<std::size_t> members;
  /// Every single-member deletion was re-checked to be oracle-feasible.
  bool verified_minimal = false;
};

/// Is the given subset of constraints (indices into env) provably
/// unsatisfiable by the lint oracle (disjoint same-collection selections,
/// or a propagation contradiction)? Soft members are ignored. Exposed for
/// tests and for the MUS minimality re-check.
bool oracle_infeasible(const Env& env, const std::vector<std::size_t>& subset,
                       const ProgramPassOptions& options);

/// Deletion-based MUS over the hard constraints of `env`. Returns
/// found == false when the oracle cannot prove infeasibility at all.
UnsatCore extract_unsat_core(const Env& env,
                             const ProgramPassOptions& options = {});

}  // namespace nck
