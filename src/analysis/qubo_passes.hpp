// QUBO- and backend-level static-analysis passes: coefficient dynamic range
// against the annealer's integrated-control-error (ICE) noise model, minor-
// embedding feasibility pre-checks against the device topology, and width/
// depth pre-estimates against a heavy-hex circuit device.
//
// Error-severity diagnostics here are *necessary-condition* violations
// (e.g. more logical edges than physical couplers): they only fire when the
// backend provably cannot run the problem, so Solver can abort on them
// without ever rejecting a runnable program.
#pragma once

#include "analysis/diagnostic.hpp"
#include "anneal/topology.hpp"
#include "core/compile.hpp"
#include "graph/graph.hpp"

namespace nck {

struct QuboPassOptions {
  /// ICE model: Gaussian noise stddev on each h/J relative to the largest
  /// absolute coefficient (matches AnnealerSamplerOptions::ice_sigma).
  double ice_sigma = 0.015;
  /// Terms with |coefficient| < noise_floor_factor * ice_sigma * max|c|
  /// are flagged as statistically indistinguishable from control error.
  double noise_floor_factor = 1.0;
  /// Embedding pre-check: warn when the chain-length lower bound uses more
  /// than this fraction of the operable qubits (heuristic embedders rarely
  /// reach full-device utilization).
  double embedding_yield_fraction = 0.5;
  /// QAOA depth assumed by the circuit pre-estimate.
  int qaoa_p = 1;
  /// Modeled SWAP overhead: CX gates per quadratic term routed on the
  /// sparse heavy-hex lattice (2 CX for the ZZ interaction + inserted SWAPs).
  double cx_per_quadratic_term = 5.0;
  /// Per-CX depolarizing error used for the depth/fidelity budget (matches
  /// NoiseModel::error_cx); warn when the estimated circuit fidelity drops
  /// below fidelity_budget.
  double error_cx = 0.004;
  double fidelity_budget = 0.5;
};

/// Interaction graph of a QUBO: one vertex per QUBO variable, one edge per
/// nonzero quadratic term. This is the graph that must minor-embed.
Graph interaction_graph(const Qubo& qubo);

/// Coefficient dynamic-range analysis of the compiled QUBO in Ising form
/// (the representation the ICE noise perturbs).
void analyze_coefficient_range(const CompiledQubo& compiled,
                               const QuboPassOptions& options,
                               AnalysisReport& report);

/// Minor-embedding feasibility pre-check against `device`.
void analyze_embedding_feasibility(const CompiledQubo& compiled,
                                   const Device& device,
                                   const QuboPassOptions& options,
                                   AnalysisReport& report);

/// Width/depth pre-estimate against a circuit device coupling map.
void analyze_circuit_feasibility(const CompiledQubo& compiled,
                                 const Graph& coupling,
                                 const QuboPassOptions& options,
                                 AnalysisReport& report);

}  // namespace nck
