// Analyzer facade: one entry point that runs the program-level passes and,
// when a backend target is known, compiles the program and runs the QUBO/
// hardware-level passes against that target. runtime::Solver runs this
// before dispatching any backend; examples/nck_cli exposes it as the `lint`
// subcommand.
#pragma once

#include "analysis/program_passes.hpp"
#include "analysis/qubo_passes.hpp"
#include "anneal/topology.hpp"
#include "core/env.hpp"
#include "graph/graph.hpp"
#include "synth/engine.hpp"

namespace nck {

struct AnalyzeOptions {
  ProgramPassOptions program;
  QuboPassOptions qubo;
};

/// Which hardware-level passes to run on top of the program passes.
struct AnalysisTarget {
  const Device* annealer = nullptr;  // run embedding/ICE passes against this
  const Graph* coupling = nullptr;   // run circuit passes against this
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzeOptions options = {}) : options_(options) {}

  /// Program-level passes only.
  AnalysisReport analyze(const Env& env) const;

  /// Program passes plus, if the program-level analysis finds no errors,
  /// compilation and the hardware-level passes for each set target. A
  /// failed compilation becomes an NCK-Q000 error instead of an exception.
  AnalysisReport analyze(const Env& env, SynthEngine& engine,
                         const AnalysisTarget& target) const;

  /// Feasibility pre-check of a resilient fallback chain: one target per
  /// rung (both pointers null = the classical rung, always feasible).
  /// Per-rung hardware errors are demoted to warnings — a later rung may
  /// still land the solve — and tagged with their rung index; only when
  /// *no* rung is feasible does the report carry an NCK-R000 error.
  AnalysisReport analyze_chain(const Env& env, SynthEngine& engine,
                               const std::vector<AnalysisTarget>& chain) const;

  const AnalyzeOptions& options() const noexcept { return options_; }
  AnalyzeOptions& options() noexcept { return options_; }

 private:
  AnalyzeOptions options_;
};

}  // namespace nck
