#include "analysis/qubo_passes.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "qubo/ising.hpp"

namespace nck {

Graph interaction_graph(const Qubo& qubo) {
  Graph g(qubo.num_variables());
  for (const auto& [i, j, c] : qubo.quadratic_terms()) {
    (void)c;
    g.add_edge(i, j);
  }
  return g;
}

void analyze_coefficient_range(const CompiledQubo& compiled,
                               const QuboPassOptions& options,
                               AnalysisReport& report) {
  // ICE noise perturbs the *Ising* program h/J, so analyze that form.
  const IsingModel ising = qubo_to_ising(compiled.qubo);
  double max_abs = 0.0;
  for (double h : ising.h) max_abs = std::max(max_abs, std::abs(h));
  for (const auto& [i, j, c] : ising.j) {
    (void)i;
    (void)j;
    max_abs = std::max(max_abs, std::abs(c));
  }
  if (max_abs <= 0.0) return;

  const double floor = options.noise_floor_factor * options.ice_sigma * max_abs;
  std::size_t below = 0, total = 0;
  double min_nonzero = max_abs;
  DiagLocation first = DiagLocation::program();
  for (std::size_t i = 0; i < ising.h.size(); ++i) {
    const double a = std::abs(ising.h[i]);
    if (a <= Qubo::kEps) continue;
    ++total;
    min_nonzero = std::min(min_nonzero, a);
    if (a < floor) {
      if (below == 0) first = DiagLocation::qubo_term(i, i);
      ++below;
    }
  }
  for (const auto& [i, j, c] : ising.j) {
    const double a = std::abs(c);
    if (a <= Qubo::kEps) continue;
    ++total;
    min_nonzero = std::min(min_nonzero, a);
    if (a < floor) {
      if (below == 0) first = DiagLocation::qubo_term(i, j);
      ++below;
    }
  }
  if (below == 0) return;

  std::ostringstream msg;
  msg << below << " of " << total
      << " Ising terms fall below the ICE noise floor (" << floor << " = "
      << options.noise_floor_factor << " * sigma " << options.ice_sigma
      << " * max |coeff| " << max_abs << "); the program's dynamic range is "
      << max_abs / min_nonzero << ":1";
  report.add({Severity::kWarning, DiagCode::kSubNoiseTerm, first, msg.str(),
              "these couplings are dominated by analog control error on the "
              "QPU; rescale penalty weights or drop negligible terms"});
}

void analyze_embedding_feasibility(const CompiledQubo& compiled,
                                   const Device& device,
                                   const QuboPassOptions& options,
                                   AnalysisReport& report) {
  const Graph logical = interaction_graph(compiled.qubo);
  const Graph working = device.working_graph();
  const std::size_t operable = device.num_operable();
  const std::size_t couplers = working.num_edges();
  std::size_t host_degree = 0;
  for (Graph::Vertex q = 0; q < working.num_vertices(); ++q) {
    host_degree = std::max(host_degree, working.degree(q));
  }

  const std::size_t n = logical.num_vertices();
  if (n > operable) {
    std::ostringstream msg;
    msg << "QUBO has " << n << " variables but the device '" << device.name
        << "' has only " << operable << " operable qubits";
    report.add({Severity::kError, DiagCode::kEmbeddingInfeasible,
                DiagLocation::program(), msg.str(),
                "shrink the program or target a larger topology"});
    return;
  }
  if (logical.num_edges() > couplers) {
    std::ostringstream msg;
    msg << "QUBO has " << logical.num_edges()
        << " quadratic terms but the device '" << device.name << "' has only "
        << couplers
        << " couplers; every logical edge needs a distinct physical coupler";
    report.add({Severity::kError, DiagCode::kEmbeddingInfeasible,
                DiagLocation::program(), msg.str(),
                "sparsify the interaction graph (e.g. enable presolve) or "
                "target a larger topology"});
    return;
  }

  // Chain-length lower bound: a chain of L qubits on a host of maximum
  // degree D exposes at most L*(D-2)+2 boundary couplers, so a logical
  // variable of degree d needs L >= ceil((d-2)/(D-2)).
  std::size_t qubit_lower_bound = 0;
  std::size_t max_logical_degree = 0;
  for (Graph::Vertex v = 0; v < n; ++v) {
    const std::size_t d = logical.degree(v);
    max_logical_degree = std::max(max_logical_degree, d);
    std::size_t chain = 1;
    if (d > host_degree && host_degree > 2) {
      chain = (d - 2 + host_degree - 3) / (host_degree - 2);  // ceil
      chain = std::max<std::size_t>(chain, 1);
    }
    qubit_lower_bound += chain;
  }
  if (qubit_lower_bound > operable) {
    std::ostringstream msg;
    msg << "chain-length lower bound needs " << qubit_lower_bound
        << " physical qubits (max logical degree " << max_logical_degree
        << " vs host degree " << host_degree << ") but only " << operable
        << " are operable on '" << device.name << "'";
    report.add({Severity::kError, DiagCode::kEmbeddingInfeasible,
                DiagLocation::program(), msg.str(),
                "shrink the program or target a larger topology"});
    return;
  }
  const double budget =
      options.embedding_yield_fraction * static_cast<double>(operable);
  if (static_cast<double>(qubit_lower_bound) > budget) {
    std::ostringstream msg;
    msg << "chain-length lower bound already needs " << qubit_lower_bound
        << " of " << operable << " operable qubits (> "
        << options.embedding_yield_fraction * 100.0
        << "% yield budget); heuristic embedding is likely to fail or blow "
           "up chain lengths";
    report.add({Severity::kWarning, DiagCode::kEmbeddingTight,
                DiagLocation::program(), msg.str(),
                "expect long chains and chain breaks; raise the chain "
                "strength, enable presolve, or shrink the program"});
  }
}

void analyze_circuit_feasibility(const CompiledQubo& compiled,
                                 const Graph& coupling,
                                 const QuboPassOptions& options,
                                 AnalysisReport& report) {
  const std::size_t n = compiled.num_qubo_vars();
  if (n > coupling.num_vertices()) {
    std::ostringstream msg;
    msg << "QUBO has " << n << " variables (incl. "
        << compiled.num_ancillas << " ancillas) but the coupling map has only "
        << coupling.num_vertices() << " qubits";
    report.add({Severity::kError, DiagCode::kCircuitTooWide,
                DiagLocation::program(), msg.str(),
                "shrink the program or target a wider device"});
    return;
  }

  // Depth/fidelity pre-estimate: p cost layers, each quadratic term routed
  // on the sparse heavy-hex lattice at a modeled CX cost, with roughly n/2
  // two-qubit gates schedulable per depth layer.
  const std::size_t quadratic = compiled.qubo.num_quadratic_terms();
  if (quadratic == 0 || n == 0) return;
  const double est_cx = static_cast<double>(options.qaoa_p) *
                        static_cast<double>(quadratic) *
                        options.cx_per_quadratic_term;
  const double parallelism = std::max(1.0, static_cast<double>(n) / 2.0);
  const double est_depth = 2.0 * est_cx / parallelism +
                           3.0 * static_cast<double>(options.qaoa_p);
  const double est_fidelity = std::exp(-options.error_cx * est_cx);
  if (est_fidelity >= options.fidelity_budget) return;
  std::ostringstream msg;
  msg << "estimated transpiled circuit: ~" << static_cast<std::size_t>(est_cx)
      << " CX gates, depth ~" << static_cast<std::size_t>(est_depth)
      << " at p=" << options.qaoa_p << "; modeled fidelity "
      << est_fidelity << " is below the " << options.fidelity_budget
      << " budget";
  report.add({Severity::kWarning, DiagCode::kCircuitDepthBudget,
              DiagLocation::program(), msg.str(),
              "most shots will decohere into noise; shrink the program, "
              "lower p, or target the annealer/classical backend"});
}

}  // namespace nck
