// Variable-interaction graph of a generalized NchooseK program: one vertex
// per program variable, one edge per pair of variables that co-occur in a
// constraint. Because every constraint synthesizes to a QUBO over exactly
// its own variables (plus constraint-local ancillas), this is the nonzero
// quadratic structure of the summed program QUBO — the graph whose balanced
// partition (graph/algorithms.hpp) defines the qbsolv-style decomposition
// seam: variables in different components never share a quadratic term, and
// a BFS-grown part bounds the clamped boundary of its sub-QUBO.
#pragma once

#include "core/env.hpp"
#include "graph/graph.hpp"

namespace nck {

/// Builds the interaction graph over [0, env.num_vars()). Variables in no
/// constraint are isolated vertices (degree 0).
Graph variable_interaction_graph(const Env& env);

}  // namespace nck
