// Structured diagnostics for the static-analysis subsystem. Every finding
// the analyzer produces is a Diagnostic with a stable machine-readable code
// (grep for "NCK-" to enumerate them), a severity, a location inside the
// program or QUBO, a human-readable message, and an optional fix-it hint.
// Reports render either as an aligned table (util/table) for terminals or
// as JSON for tooling.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace nck {

enum class Severity { kNote, kWarning, kError };

const char* severity_name(Severity s) noexcept;

/// Stable diagnostic codes. P* are program-level passes, Q* QUBO/annealer
/// passes, C* circuit passes, V* semantic-certification passes, D* dataflow/
/// presolve passes. Codes are append-only: never renumber. (Full table:
/// README "NCK diagnostic codes".)
enum class DiagCode {
  kEmptyProgram,             // NCK-P000: program has no constraints
  kContradictoryPair,        // NCK-P001: same collection, disjoint selections
  kInfeasibleByPropagation,  // NCK-P002: constraint dies under forced values
  kTautology,                // NCK-P003: selection covers [0, |N|] entirely
  kUnusedVariable,           // NCK-P004: variable in no constraint
  kSoftOnlyVariable,         // NCK-P005: variable only in soft constraints
  kDuplicateConstraint,      // NCK-P006: identical constraint repeated
  kScaleSeparation,          // NCK-P007: hard/soft bias exceeds resolution
  kSynthBudgetExceeded,      // NCK-P008: constraint exceeds synth d+a budget
  kUnsatCore,                // NCK-P009: minimal unsatisfiable core (MUS)
  kSynthesisFailed,          // NCK-Q000: constraint QUBO synthesis failed
  kSubNoiseTerm,             // NCK-Q001: terms below the ICE noise floor
  kEmbeddingInfeasible,      // NCK-Q002: cannot embed on the topology
  kEmbeddingTight,           // NCK-Q003: embedding likely to fail / be huge
  kCircuitTooWide,           // NCK-C001: more QUBO vars than device qubits
  kCircuitDepthBudget,       // NCK-C002: depth estimate exceeds coherence
  kFallbackChainInfeasible,  // NCK-R000: no rung of the fallback chain fits
  kCertificationFailed,      // NCK-V000: QUBO ground states != sat(nck(N,K))
  kGapDominatedBySoft,       // NCK-V001: soft penalties can drown a hard gap
  kGapMarginThin,            // NCK-V002: dominance margin below noise floor
  kForcedVariable,           // NCK-D000: dataflow forces a variable's value
  kSubsumedConstraint,       // NCK-D001: constraint implied by a tighter one
  kIndependentComponents,    // NCK-D002: program splits into disjoint parts
  kPresolveUnsat,            // NCK-D003: dataflow fixpoint proves unsat
  kReductionRejected,        // NCK-D004: reduction failed equivalence check
  kDecomposed,               // NCK-D005: program solved by decomposition
};

/// "NCK-P001" etc. — the stable identifier emitted in JSON and table output.
const char* diag_code_name(DiagCode code) noexcept;

/// Where a diagnostic points. `index`/`index2` are constraint indices,
/// variable ids, or QUBO variable indices depending on `kind`; `label` is a
/// pre-rendered human-readable name (constraint text, variable name, term).
struct DiagLocation {
  enum class Kind {
    kProgram,         // whole program; indices unused
    kConstraint,      // index = constraint position in Env::constraints()
    kConstraintPair,  // index, index2 = the two constraint positions
    kVariable,        // index = VarId
    kQuboTerm,        // index, index2 = QUBO variable(s); index2==index
                      // for a linear term
    kConstraintSet,   // indices = constraint positions (e.g. an unsat core)
  };

  Kind kind = Kind::kProgram;
  std::size_t index = 0;
  std::size_t index2 = 0;
  /// Member constraint positions for kConstraintSet (sorted ascending);
  /// empty for every other kind. `index` mirrors the first member.
  std::vector<std::size_t> indices;
  std::string label;

  std::string to_string() const;

  static DiagLocation program();
  static DiagLocation constraint(std::size_t i, std::string label = "");
  static DiagLocation constraint_pair(std::size_t i, std::size_t j,
                                      std::string label = "");
  static DiagLocation variable(std::size_t v, std::string name = "");
  static DiagLocation qubo_term(std::size_t i, std::size_t j,
                                std::string label = "");
  static DiagLocation constraint_set(std::vector<std::size_t> members,
                                     std::string label = "");
};

struct Diagnostic {
  Severity severity = Severity::kWarning;
  DiagCode code = DiagCode::kEmptyProgram;
  DiagLocation location;
  std::string message;
  std::string hint;  // fix-it suggestion; empty when none applies
};

/// Ordered collection of diagnostics from one analyzer run.
class AnalysisReport {
 public:
  void add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }
  void merge(AnalysisReport other);

  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }
  bool empty() const noexcept { return diagnostics_.empty(); }
  std::size_t size() const noexcept { return diagnostics_.size(); }

  std::size_t count(Severity s) const noexcept;
  bool has_errors() const noexcept { return count(Severity::kError) > 0; }
  /// True if any diagnostic carries the given code.
  bool has_code(DiagCode code) const noexcept;

  /// One-line summary of every diagnostic at or above `min_severity`,
  /// "; "-joined — the string Solver places into SolveReport::failure.
  std::string summary(Severity min_severity = Severity::kError) const;

  /// Aligned table via util/table: severity | code | location | message.
  void print(std::ostream& os) const;

  /// Machine-readable JSON object:
  /// {"diagnostics":[...],"errors":N,"warnings":N,"notes":N}.
  std::string to_json() const;

  /// Sort diagnostics into the canonical emission order: by code, then by
  /// location (kind, index, index2, set members, label). Stable, so equal
  /// keys keep their pass-relative order. Analyzer entry points call this
  /// before returning, making `lint --json` byte-stable run to run.
  void canonicalize();

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace nck
