// Model-preserving program reductions driven by the dataflow fixpoint
// (analysis/dataflow). `reduce_program` rewrites an Env into a smaller
// equivalent one and records a ReductionTrace that maps assignments between
// the two spaces:
//
//   forced-variable substitution   a variable the hard constraints force is
//                                  removed; each constraint's selection set
//                                  shifts by the multiplicity-weighted
//                                  forced-TRUE total;
//   tautology removal              a hard constraint satisfied by every
//                                  reachable count disappears;
//   duplicate removal              a hard constraint repeated verbatim
//                                  disappears (soft repeats are weights and
//                                  are kept);
//   subsumption removal            of two hard constraints over the same
//                                  collection, the one with the strictly
//                                  larger selection set is implied by the
//                                  tighter one and disappears;
//   decided-soft removal           a soft constraint that is satisfied (or
//                                  violated) under every remaining
//                                  assignment is dropped and tallied into
//                                  the trace's soft offsets;
//   unsat short-circuit            a dataflow contradiction makes the whole
//                                  program unsatisfiable; no reduced
//                                  program is produced.
//
// Soundness: every rule preserves (a) the hard-feasible set, pointwise
// under the forced assignment, and (b) each assignment's satisfied-soft
// count up to the constant `soft_always_satisfied`. `verify_reduction`
// checks exactly that, by exhaustive enumeration, on every instance small
// enough to enumerate — the end-to-end certification backing the per-rule
// structural argument.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/dataflow/dataflow.hpp"
#include "core/env.hpp"

namespace nck {

struct ReduceOptions {
  DataflowOptions dataflow;
  /// `verify_reduction` enumerates all 2^n original assignments up to this
  /// many variables; larger programs rely on the per-rule invariants (each
  /// step still validates structurally via Constraint's constructor).
  std::size_t verify_max_vars = 16;
};

enum class ReductionRule {
  kForcedSubstitution,   // variable pinned by dataflow, value substituted
  kTautologyRemoval,     // hard constraint satisfied by every reachable count
  kDuplicateRemoval,     // hard constraint repeated verbatim
  kSubsumptionRemoval,   // hard constraint implied by a tighter one
  kDecidedSoftRemoval,   // soft constraint decided under every assignment
  kUnsatShortCircuit,    // dataflow contradiction: program unsatisfiable
};

const char* reduction_rule_name(ReductionRule rule) noexcept;

struct ReductionStep {
  ReductionRule rule = ReductionRule::kForcedSubstitution;
  /// Original constraint index, or VarId for kForcedSubstitution.
  std::size_t index = 0;
  /// Second participant: the subsuming/first-duplicate constraint, or the
  /// second witness constraint for kUnsatShortCircuit; == index otherwise.
  std::size_t other = 0;
  std::string detail;
};

/// Maps assignments between the original and reduced variable spaces.
struct ReductionTrace {
  std::size_t original_num_vars = 0;
  /// Per original VarId: the substituted value, or kUnknown if kept/free.
  std::vector<ForcedValue> forced;
  /// Reduced index -> original VarId, ascending.
  std::vector<VarId> kept;
  /// Soft constraints removed as decided: satisfied by every assignment
  /// consistent with `forced` / satisfiable by none. Reduced-space soft
  /// counts are offset by `soft_always_satisfied` to recover original ones.
  std::size_t soft_always_satisfied = 0;
  std::size_t soft_never_satisfied = 0;

  /// True when the trace is a no-op (no forcing, no dropped variables).
  bool identity() const noexcept;

  /// Reduced-space assignment -> original-space assignment: kept variables
  /// copy through, forced variables take their forced value, variables
  /// dropped as unconstrained default to FALSE.
  std::vector<bool> lift(const std::vector<bool>& reduced) const;

  /// Original-space assignment -> reduced-space assignment (projection onto
  /// the kept variables).
  std::vector<bool> project(const std::vector<bool>& original) const;

  /// Does `original` agree with every forced value?
  bool consistent(const std::vector<bool>& original) const;
};

struct ReduceResult {
  /// The reduced program. Empty (0 vars, 0 constraints) when proved_unsat.
  Env reduced;
  ReductionTrace trace;
  std::vector<ReductionStep> steps;
  bool proved_unsat = false;
  /// Dataflow needed pair mining (facts beyond NCK-P002 propagation).
  bool needed_pairs = false;
  /// Connected components of the reduced constraint graph (constraints
  /// joined by shared variables); 0 when there are no constraints left.
  std::size_t components = 0;

  bool changed() const noexcept { return !steps.empty(); }
};

/// Runs dataflow to its fixpoint and applies the reduction catalog.
ReduceResult reduce_program(const Env& env, const ReduceOptions& options = {});

/// A hard constraint implied by (or duplicating) a tighter one over the
/// same collection multiset.
struct Subsumption {
  std::size_t removed = 0;  // the implied (weaker) constraint
  std::size_t by = 0;       // the tighter constraint that implies it
  bool duplicate = false;   // selections equal, not a strict subset
};

/// All subsumption/duplication pairs among the hard constraints, in
/// ascending `removed` order. Exposed for the NCK-D001 lint.
std::vector<Subsumption> find_hard_subsumptions(const Env& env);

/// Constraint indices grouped into connected components (constraints
/// sharing a variable, transitively). Singleton-free programs return one
/// group per isolated constraint; the groups partition [0, num_constraints)
/// and are the decomposition seam for independent sub-program solving.
std::vector<std::vector<std::size_t>> constraint_components(const Env& env);

/// Splits a program into its independent sub-programs, one Env per
/// connected component. `var_maps[k][i]` is the original VarId of component
/// k's variable i; `constraint_maps[k][j]` the original index of its
/// constraint j. Components are joined by *any* shared variable — hard or
/// soft constraints alike — so two hard-disjoint clusters bridged only by a
/// soft constraint land in one component (their soft counts are coupled).
/// Variables in no constraint belong to no component; they are listed in
/// `free_vars` so the var_maps plus free_vars always cover
/// [0, env.num_vars()) exactly once (the decomposer relies on this).
struct ComponentSplit {
  std::vector<Env> programs;
  std::vector<std::vector<VarId>> var_maps;
  std::vector<std::vector<std::size_t>> constraint_maps;
  /// Original VarIds appearing in no constraint, ascending. Any value works
  /// for them (the canonical completion picks FALSE).
  std::vector<VarId> free_vars;
};
ComponentSplit split_components(const Env& env);

/// Outcome of end-to-end equivalence certification between an original
/// program and its reduction.
struct ReductionVerdict {
  /// False when the program was too large to enumerate (the verdict is
  /// then vacuously `ok`; per-rule invariants are the only guarantee).
  bool checked = false;
  bool ok = true;
  std::string detail;  // first counterexample, when !ok
};

/// Certifies `result` against `original` by enumerating all assignments
/// (up to max_vars variables): forced-consistent assignments must agree on
/// hard feasibility and on soft counts up to soft_always_satisfied, and
/// forced-inconsistent ones must be hard-infeasible in the original. When
/// `result.proved_unsat`, instead checks no assignment is hard-feasible.
ReductionVerdict verify_reduction(const Env& original,
                                  const ReduceResult& result,
                                  std::size_t max_vars = 16);

/// Compact statistics for SolveReport / the simplify CLI.
struct PresolveSummary {
  std::size_t original_vars = 0;
  std::size_t reduced_vars = 0;
  std::size_t original_constraints = 0;
  std::size_t reduced_constraints = 0;
  std::size_t forced = 0;
  std::size_t removed_constraints = 0;
  std::size_t components = 0;
  std::size_t soft_always_satisfied = 0;
  std::size_t soft_never_satisfied = 0;
  bool proved_unsat = false;
  bool verified = false;  // equivalence enumeration ran and passed
  bool rejected = false;  // equivalence enumeration ran and FAILED
};

PresolveSummary summarize_reduction(const Env& original,
                                    const ReduceResult& result);

}  // namespace nck
