#include "analysis/reduce/reduce.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "analysis/dataflow/counting.hpp"

namespace nck {

const char* reduction_rule_name(ReductionRule rule) noexcept {
  switch (rule) {
    case ReductionRule::kForcedSubstitution: return "forced-substitution";
    case ReductionRule::kTautologyRemoval: return "tautology-removal";
    case ReductionRule::kDuplicateRemoval: return "duplicate-removal";
    case ReductionRule::kSubsumptionRemoval: return "subsumption-removal";
    case ReductionRule::kDecidedSoftRemoval: return "decided-soft-removal";
    case ReductionRule::kUnsatShortCircuit: return "unsat-short-circuit";
  }
  return "?";
}

bool ReductionTrace::identity() const noexcept {
  if (kept.size() != original_num_vars) return false;
  for (ForcedValue v : forced) {
    if (v != ForcedValue::kUnknown) return false;
  }
  return true;
}

std::vector<bool> ReductionTrace::lift(const std::vector<bool>& reduced) const {
  std::vector<bool> out(original_num_vars, false);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    out[kept[i]] = i < reduced.size() && reduced[i];
  }
  for (std::size_t v = 0; v < forced.size(); ++v) {
    if (forced[v] == ForcedValue::kTrue) out[v] = true;
  }
  return out;
}

std::vector<bool> ReductionTrace::project(
    const std::vector<bool>& original) const {
  std::vector<bool> out(kept.size(), false);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    out[i] = original[kept[i]];
  }
  return out;
}

bool ReductionTrace::consistent(const std::vector<bool>& original) const {
  for (std::size_t v = 0; v < forced.size(); ++v) {
    if (forced[v] == ForcedValue::kTrue && !original[v]) return false;
    if (forced[v] == ForcedValue::kFalse && original[v]) return false;
  }
  return true;
}

namespace {

using dataflow::SumSet;

std::string sorted_collection_key(const std::vector<VarId>& collection) {
  std::vector<VarId> sorted = collection;
  std::sort(sorted.begin(), sorted.end());
  std::ostringstream os;
  for (VarId v : sorted) os << v << ",";
  return os.str();
}

/// One hard constraint in canonical form for the subsumption scan.
struct HardForm {
  std::string key;                  // sorted collection multiset
  const std::set<unsigned>* sel = nullptr;
  std::size_t index = 0;            // caller-space index
};

/// Pairwise subsumption/duplication among hard constraints sharing a
/// collection multiset: sel(by) ⊆ sel(removed) means every assignment
/// satisfying `by` satisfies `removed`, so `removed` is redundant. Equal
/// selections remove the later occurrence only.
std::vector<Subsumption> subsumptions_among(const std::vector<HardForm>& forms) {
  std::map<std::string, std::vector<std::size_t>> groups;  // key -> positions
  for (std::size_t pos = 0; pos < forms.size(); ++pos) {
    groups[forms[pos].key].push_back(pos);
  }
  std::vector<bool> removed(forms.size(), false);
  std::vector<Subsumption> out;
  for (const auto& [key, members] : groups) {
    if (members.size() < 2) continue;
    for (std::size_t a : members) {
      if (removed[a]) continue;
      for (std::size_t b : members) {
        if (a == b || removed[b]) continue;
        const std::set<unsigned>& sa = *forms[a].sel;
        const std::set<unsigned>& sb = *forms[b].sel;
        if (!std::includes(sa.begin(), sa.end(), sb.begin(), sb.end())) {
          continue;  // sb is not a subset of sa
        }
        const bool duplicate = sa.size() == sb.size();
        if (duplicate && b > a) continue;  // only the later copy is redundant
        removed[a] = true;
        out.push_back({forms[a].index, forms[b].index, duplicate});
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Subsumption& x, const Subsumption& y) {
              return x.removed < y.removed;
            });
  return out;
}

/// Achievability of every count in the selection set / outside it, for a
/// collection of unforced variables (multiplicities via repetition).
struct Reachability {
  bool always = false;  // every achievable count lies in the selection
  bool never = false;   // no achievable count lies in the selection
};

Reachability classify_reachability(const std::vector<VarId>& collection,
                                   const std::set<unsigned>& selection) {
  std::map<VarId, unsigned> mult;
  for (VarId v : collection) ++mult[v];
  unsigned total = 0;
  for (const auto& [v, m] : mult) total += m;
  SumSet sums(total);
  for (const auto& [v, m] : mult) sums.add_item(m);
  Reachability r;
  r.always = true;
  r.never = true;
  for (unsigned s = 0; s <= total; ++s) {
    if (!sums.test(s)) continue;
    if (selection.count(s)) {
      r.never = false;
    } else {
      r.always = false;
    }
  }
  return r;
}

}  // namespace

std::vector<Subsumption> find_hard_subsumptions(const Env& env) {
  std::vector<HardForm> forms;
  for (std::size_t ci = 0; ci < env.constraints().size(); ++ci) {
    const Constraint& c = env.constraints()[ci];
    if (c.soft()) continue;
    forms.push_back({sorted_collection_key(c.collection()), &c.selection(), ci});
  }
  return subsumptions_among(forms);
}

std::vector<std::vector<std::size_t>> constraint_components(const Env& env) {
  const std::size_t n = env.num_constraints();
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<std::size_t> find_stack;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  };

  std::map<VarId, std::size_t> first_constraint_with;
  for (std::size_t ci = 0; ci < n; ++ci) {
    for (VarId v : env.constraints()[ci].distinct_vars()) {
      auto [it, inserted] = first_constraint_with.emplace(v, ci);
      if (!inserted) unite(it->second, ci);
    }
  }
  std::map<std::size_t, std::vector<std::size_t>> by_root;
  for (std::size_t ci = 0; ci < n; ++ci) by_root[find(ci)].push_back(ci);
  std::vector<std::vector<std::size_t>> components;
  components.reserve(by_root.size());
  for (auto& [root, members] : by_root) components.push_back(std::move(members));
  return components;
}

ComponentSplit split_components(const Env& env) {
  ComponentSplit split;
  std::vector<bool> constrained(env.num_vars(), false);
  for (const Constraint& c : env.constraints()) {
    for (VarId v : c.collection()) constrained[v] = true;
  }
  for (std::size_t v = 0; v < env.num_vars(); ++v) {
    if (!constrained[v]) split.free_vars.push_back(static_cast<VarId>(v));
  }
  for (const std::vector<std::size_t>& members : constraint_components(env)) {
    std::set<VarId> used;
    for (std::size_t ci : members) {
      const Constraint& c = env.constraints()[ci];
      used.insert(c.collection().begin(), c.collection().end());
    }
    Env sub;
    std::map<VarId, VarId> remap;
    std::vector<VarId> var_map;
    for (VarId v : used) {
      remap[v] = sub.new_var(env.var_name(v));
      var_map.push_back(v);
    }
    for (std::size_t ci : members) {
      const Constraint& c = env.constraints()[ci];
      std::vector<VarId> coll;
      coll.reserve(c.collection().size());
      for (VarId v : c.collection()) coll.push_back(remap[v]);
      sub.nck(std::move(coll), c.selection(), c.kind());
    }
    split.programs.push_back(std::move(sub));
    split.var_maps.push_back(std::move(var_map));
    split.constraint_maps.push_back(members);
  }
  return split;
}

ReduceResult reduce_program(const Env& env, const ReduceOptions& options) {
  ReduceResult result;
  result.trace.original_num_vars = env.num_vars();
  result.trace.forced.assign(env.num_vars(), ForcedValue::kUnknown);

  const DataflowResult flow = solve_dataflow(env, options.dataflow);
  result.needed_pairs = flow.needed_pairs;
  if (flow.proved_unsat) {
    result.proved_unsat = true;
    ReductionStep step;
    step.rule = ReductionRule::kUnsatShortCircuit;
    step.index = flow.unsat_constraint;
    step.other = flow.unsat_constraint2;
    step.detail = flow.pair_witness
                      ? "pairwise constraint-intersection facts admit no "
                        "joint value"
                      : "reachable-count set became empty under propagation";
    result.steps.push_back(std::move(step));
    return result;
  }
  result.trace.forced = flow.values;

  for (std::size_t v = 0; v < env.num_vars(); ++v) {
    if (flow.values[v] == ForcedValue::kUnknown) continue;
    ReductionStep step;
    step.rule = ReductionRule::kForcedSubstitution;
    step.index = v;
    step.other = v;
    step.detail =
        env.var_name(static_cast<VarId>(v)) +
        (flow.values[v] == ForcedValue::kTrue ? " := TRUE" : " := FALSE");
    result.steps.push_back(std::move(step));
  }

  // Rewrite every constraint under the forced assignment: forced-TRUE
  // members shift the selection down by their multiplicity, forced-FALSE
  // members drop out, and out-of-range selections are clipped.
  struct Rewritten {
    std::vector<VarId> collection;  // original VarIds, all unforced
    std::set<unsigned> selection;
    ConstraintKind kind = ConstraintKind::kHard;
    std::size_t original_index = 0;
  };
  std::vector<Rewritten> survivors;
  for (std::size_t ci = 0; ci < env.constraints().size(); ++ci) {
    const Constraint& c = env.constraints()[ci];
    unsigned shift = 0;
    std::vector<VarId> coll;
    for (VarId v : c.collection()) {
      switch (flow.values[v]) {
        case ForcedValue::kTrue: ++shift; break;
        case ForcedValue::kFalse: break;
        case ForcedValue::kUnknown: coll.push_back(v); break;
      }
    }
    std::set<unsigned> sel;
    for (unsigned k : c.selection()) {
      if (k >= shift && k - shift <= coll.size()) sel.insert(k - shift);
    }

    const Reachability reach = classify_reachability(coll, sel);
    if (reach.never) {
      ReductionStep step;
      step.index = ci;
      step.other = ci;
      if (c.soft()) {
        ++result.trace.soft_never_satisfied;
        step.rule = ReductionRule::kDecidedSoftRemoval;
        step.detail = "soft constraint unsatisfiable under every remaining "
                      "assignment";
        result.steps.push_back(std::move(step));
        continue;
      }
      // A hard constraint with no reachable satisfying count contradicts
      // the dataflow fixpoint above; keep the short-circuit as a belt.
      result.proved_unsat = true;
      step.rule = ReductionRule::kUnsatShortCircuit;
      step.detail = "hard constraint unsatisfiable after substitution";
      result.steps.push_back(std::move(step));
      result.reduced = Env{};
      result.trace.kept.clear();
      return result;
    }
    if (reach.always) {
      ReductionStep step;
      step.index = ci;
      step.other = ci;
      if (c.soft()) {
        ++result.trace.soft_always_satisfied;
        step.rule = ReductionRule::kDecidedSoftRemoval;
        step.detail = "soft constraint satisfied under every remaining "
                      "assignment";
      } else {
        step.rule = ReductionRule::kTautologyRemoval;
        step.detail = "hard constraint satisfied by every reachable count";
      }
      result.steps.push_back(std::move(step));
      continue;
    }
    survivors.push_back({std::move(coll), std::move(sel), c.kind(), ci});
  }

  // Duplicate and subsumption removal among the rewritten hard constraints.
  {
    std::vector<HardForm> forms;
    std::vector<std::size_t> positions;  // forms index -> survivors index
    for (std::size_t pos = 0; pos < survivors.size(); ++pos) {
      if (survivors[pos].kind != ConstraintKind::kHard) continue;
      forms.push_back({sorted_collection_key(survivors[pos].collection),
                       &survivors[pos].selection, pos});
    }
    std::vector<bool> drop(survivors.size(), false);
    for (const Subsumption& s : subsumptions_among(forms)) {
      drop[s.removed] = true;
      ReductionStep step;
      step.rule = s.duplicate ? ReductionRule::kDuplicateRemoval
                              : ReductionRule::kSubsumptionRemoval;
      step.index = survivors[s.removed].original_index;
      step.other = survivors[s.by].original_index;
      step.detail = s.duplicate
                        ? "hard constraint repeats an earlier one"
                        : "implied by the tighter selection set of the "
                          "other constraint";
      result.steps.push_back(std::move(step));
    }
    std::vector<Rewritten> filtered;
    filtered.reserve(survivors.size());
    for (std::size_t pos = 0; pos < survivors.size(); ++pos) {
      if (!drop[pos]) filtered.push_back(std::move(survivors[pos]));
    }
    survivors = std::move(filtered);
  }

  // Variable compaction: keep unforced variables that still appear in a
  // surviving constraint, and pass through variables that never appeared in
  // any constraint (their NCK-P004 story is unchanged by presolve).
  std::vector<bool> in_original(env.num_vars(), false);
  for (const Constraint& c : env.constraints()) {
    for (VarId v : c.collection()) in_original[v] = true;
  }
  std::vector<bool> in_survivor(env.num_vars(), false);
  for (const Rewritten& rw : survivors) {
    for (VarId v : rw.collection) in_survivor[v] = true;
  }
  std::vector<VarId> remap(env.num_vars(), 0);
  for (std::size_t v = 0; v < env.num_vars(); ++v) {
    if (flow.values[v] != ForcedValue::kUnknown) continue;
    if (in_survivor[v] || !in_original[v]) {
      remap[v] = result.reduced.new_var(env.var_name(static_cast<VarId>(v)));
      result.trace.kept.push_back(static_cast<VarId>(v));
    }
  }
  for (const Rewritten& rw : survivors) {
    std::vector<VarId> coll;
    coll.reserve(rw.collection.size());
    for (VarId v : rw.collection) coll.push_back(remap[v]);
    result.reduced.nck(std::move(coll), rw.selection, rw.kind);
  }

  result.components = result.reduced.num_constraints() == 0
                          ? 0
                          : constraint_components(result.reduced).size();
  return result;
}

ReductionVerdict verify_reduction(const Env& original,
                                  const ReduceResult& result,
                                  std::size_t max_vars) {
  ReductionVerdict verdict;
  const std::size_t n = original.num_vars();
  if (n > max_vars || n >= 8 * sizeof(std::size_t)) return verdict;
  verdict.checked = true;

  std::vector<bool> x(n, false);
  const std::size_t total = std::size_t{1} << n;
  for (std::size_t bits = 0; bits < total; ++bits) {
    for (std::size_t i = 0; i < n; ++i) x[i] = (bits >> i) & 1u;
    const Evaluation orig = original.evaluate(x);
    auto fail = [&](const std::string& why) {
      verdict.ok = false;
      std::ostringstream os;
      os << why << " at assignment 0x" << std::hex << bits;
      verdict.detail = os.str();
    };
    if (result.proved_unsat) {
      if (orig.feasible()) {
        fail("program reported unsatisfiable has a feasible assignment");
        return verdict;
      }
      continue;
    }
    if (!result.trace.consistent(x)) {
      if (orig.feasible()) {
        fail("forced value excludes a hard-feasible assignment");
        return verdict;
      }
      continue;
    }
    const Evaluation red = result.reduced.evaluate(result.trace.project(x));
    if (orig.feasible() != red.feasible()) {
      fail("hard feasibility diverges between original and reduced");
      return verdict;
    }
    if (orig.soft_satisfied !=
        red.soft_satisfied + result.trace.soft_always_satisfied) {
      fail("soft-satisfaction count diverges between original and reduced");
      return verdict;
    }
  }
  return verdict;
}

PresolveSummary summarize_reduction(const Env& original,
                                    const ReduceResult& result) {
  PresolveSummary s;
  s.original_vars = original.num_vars();
  s.original_constraints = original.num_constraints();
  s.reduced_vars = result.reduced.num_vars();
  s.reduced_constraints = result.reduced.num_constraints();
  for (ForcedValue v : result.trace.forced) {
    if (v != ForcedValue::kUnknown) ++s.forced;
  }
  s.removed_constraints = s.original_constraints - s.reduced_constraints;
  s.components = result.components;
  s.soft_always_satisfied = result.trace.soft_always_satisfied;
  s.soft_never_satisfied = result.trace.soft_never_satisfied;
  s.proved_unsat = result.proved_unsat;
  return s;
}

}  // namespace nck
