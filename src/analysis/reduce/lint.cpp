#include "analysis/reduce/lint.hpp"

#include <sstream>
#include <string>

#include "analysis/dataflow/dataflow.hpp"
#include "analysis/reduce/reduce.hpp"

namespace nck {

namespace {

std::string constraint_label(const Env& env, const Constraint& c) {
  std::string s = c.to_string(env.var_names());
  constexpr std::size_t kMax = 64;
  if (s.size() > kMax) {
    s.resize(kMax - 3);
    s += "...";
  }
  return s;
}

}  // namespace

void pass_presolve_lint(const Env& env, const ProgramPassOptions& options,
                        AnalysisReport& report) {
  DataflowOptions flow_options;
  flow_options.max_propagation_cardinality =
      options.max_propagation_cardinality;
  const DataflowResult flow = solve_dataflow(env, flow_options);

  if (flow.proved_unsat) {
    // NCK-P001/P002 already report the simple shapes; NCK-D003 covers the
    // contradictions only the pair-fact fixpoint can see.
    if (!report.has_code(DiagCode::kContradictoryPair) &&
        !report.has_code(DiagCode::kInfeasibleByPropagation)) {
      const Constraint& c1 = env.constraints()[flow.unsat_constraint];
      DiagLocation loc =
          flow.pair_witness && flow.unsat_constraint != flow.unsat_constraint2
              ? DiagLocation::constraint_pair(flow.unsat_constraint,
                                              flow.unsat_constraint2,
                                              constraint_label(env, c1))
              : DiagLocation::constraint(flow.unsat_constraint,
                                         constraint_label(env, c1));
      report.add(
          {Severity::kError, DiagCode::kPresolveUnsat, std::move(loc),
           "the dataflow fixpoint (count propagation plus pairwise "
           "constraint-intersection facts) proves the hard constraints "
           "jointly unsatisfiable",
           "relax one of the witnessed constraints; `nck_cli simplify` "
           "shows the contradiction"});
    }
    return;  // forced-value notes from a contradicted run would be noise
  }

  for (std::size_t v = 0; v < env.num_vars(); ++v) {
    if (flow.values[v] == ForcedValue::kUnknown) continue;
    const bool value = flow.values[v] == ForcedValue::kTrue;
    report.add({Severity::kNote, DiagCode::kForcedVariable,
                DiagLocation::variable(v, env.var_name(static_cast<VarId>(v))),
                std::string("hard constraints force this variable ") +
                    (value ? "TRUE" : "FALSE") +
                    "; presolve substitutes the value and removes it",
                "run `nck_cli simplify` to see the reduced program"});
  }

  for (const Subsumption& s : find_hard_subsumptions(env)) {
    if (s.duplicate) continue;  // exact repeats are NCK-P006's territory
    const Constraint& c = env.constraints()[s.removed];
    std::ostringstream msg;
    msg << "constraint is implied by constraint #" << s.by
        << " (same collection, tighter selection set); presolve removes it";
    report.add({Severity::kNote, DiagCode::kSubsumedConstraint,
                DiagLocation::constraint_pair(s.removed, s.by,
                                              constraint_label(env, c)),
                msg.str(),
                "drop the weaker constraint; it never changes the feasible "
                "set"});
  }

  const std::size_t components = constraint_components(env).size();
  if (components >= 2) {
    std::ostringstream msg;
    msg << "program splits into " << components
        << " independent sub-programs sharing no variables";
    report.add({Severity::kNote, DiagCode::kIndependentComponents,
                DiagLocation::program(), msg.str(),
                "the components can be solved separately; presolve records "
                "the partition"});
  }
}

}  // namespace nck
