// NCK-D* lint pass: surfaces what the dataflow/presolve layer would do to a
// program as diagnostics, without transforming anything. Runs as part of
// analyze_program.
#pragma once

#include "analysis/diagnostic.hpp"
#include "analysis/program_passes.hpp"
#include "core/env.hpp"

namespace nck {

/// Emits NCK-D000 (forced variable), NCK-D001 (subsumed constraint),
/// NCK-D002 (independent components) notes and the NCK-D003 error
/// (dataflow-proved unsat that neither NCK-P001 nor NCK-P002 caught).
void pass_presolve_lint(const Env& env, const ProgramPassOptions& options,
                        AnalysisReport& report);

}  // namespace nck
