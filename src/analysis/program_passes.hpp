// Program-level static-analysis passes over an NchooseK Env. All passes are
// sound: an error-severity diagnostic is only emitted when the program is
// provably broken (e.g. hard constraints that cannot be jointly satisfied),
// so aborting a solve on errors never rejects a solvable program.
//
// Feasibility reasoning is a fixpoint of per-constraint reachable-count
// propagation: each hard constraint nck(N, K) restricts the multiplicity-
// weighted TRUE-count of N to K; fixing variables (forced TRUE/FALSE)
// shrinks the reachable count set of every other constraint sharing them.
// Reachable counts are computed exactly via subset sums over unfixed
// multiplicities, which subsumes both interval and parity propagation.
#pragma once

#include "analysis/diagnostic.hpp"
#include "core/env.hpp"

namespace nck {

struct ProgramPassOptions {
  /// ICE noise stddev relative to the largest coefficient (matches
  /// AnnealerSamplerOptions::ice_sigma); drives the scale-separation lint.
  double ice_sigma = 0.015;
  /// A soft-energy unit is considered resolvable while
  /// hard_scale * ice_sigma * resolution_factor < 1.
  double resolution_factor = 2.0;
  /// Collections larger than this skip exact subset-sum propagation (the
  /// bitset grows with cardinality); interval reasoning still applies.
  std::size_t max_propagation_cardinality = 4096;
  /// Active SynthEngine general-path variable budget (d + a), from
  /// SynthEngine::general_var_budget(). 0 disables the NCK-P008 pass (no
  /// engine context, e.g. pure-program lint in unit tests).
  std::size_t synth_var_budget = 0;
  /// Whether the engine's closed-form path is enabled; contiguous selection
  /// sets then bypass the general budget and NCK-P008 skips them.
  bool synth_builtin = true;
  /// Run the heuristic NCK-P007 scale-separation pass. Certifying solves
  /// turn this off: NCK-V001/V002 are its sound replacement.
  bool scale_separation = true;
};

/// Runs every program-level pass, appending diagnostics to `report`.
void analyze_program(const Env& env, const ProgramPassOptions& options,
                     AnalysisReport& report);

/// Tri-state assignment derived by hard-constraint propagation.
enum class ForcedValue : unsigned char { kUnknown, kTrue, kFalse };

struct PropagationResult {
  bool contradiction = false;
  /// Index of the hard constraint whose reachable-count set became empty
  /// (meaningful only when contradiction is true).
  std::size_t failed_constraint = 0;
  std::vector<ForcedValue> values;  // per VarId
};

/// Exposed for tests: fixpoint forced-value propagation over the hard
/// constraints only.
PropagationResult propagate_forced_values(const Env& env,
                                          const ProgramPassOptions& options);

/// Seeded variant: continues propagation from the partial assignment in
/// `values` (which must be sized env.num_vars()), updating it in place.
/// Returns true on contradiction, naming the dying hard constraint. The
/// dataflow engine uses this to interleave count propagation with pair
/// mining without restarting from the empty assignment.
bool propagate_seeded(const Env& env, const ProgramPassOptions& options,
                      std::vector<ForcedValue>& values,
                      std::size_t& failed_constraint);

}  // namespace nck
