#include "analysis/certify.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "qubo/brute_force.hpp"

namespace nck {

namespace {

std::string constraint_label(const Env& env, const Constraint& c) {
  std::string s = c.to_string(env.var_names());
  constexpr std::size_t kMax = 64;
  if (s.size() > kMax) {
    s.resize(kMax - 3);
    s += "...";
  }
  return s;
}

/// Shortest round-trippable rendering; certificates must serialize floats
/// losslessly so a warm (cache-recalled) artifact reproduces cold output.
std::string json_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

ConstraintCertificate certify_synthesis(const ConstraintPattern& pattern,
                                        const SynthesizedQubo& synth,
                                        const CertifyOptions& options) {
  ConstraintCertificate cert;
  const std::size_t d = synth.num_vars;
  const std::size_t a = synth.num_ancillas;
  cert.num_vars = d;
  cert.num_ancillas = a;
  cert.declared_gap = synth.gap;
  cert.method = synth.method;
  cert.max_abs_coefficient = synth.qubo.max_abs_coefficient();

  if (d != pattern.num_vars()) {
    cert.error = "synthesized variable count mismatches the pattern";
    return cert;
  }
  if (synth.qubo.num_variables() > d + a) {
    cert.error = "QUBO touches variables beyond d + a";
    return cert;
  }
  if (d + a > options.max_enum_vars) {
    std::ostringstream os;
    os << "constraint too wide to certify: d + a = " << (d + a) << " > "
       << options.max_enum_vars;
    cert.error = os.str();
    return cert;
  }
  if (synth.gap <= 0.0) {
    cert.error = "declared gap is not positive";
    return cert;
  }

  const std::vector<double> minima =
      ancilla_projected_minima(synth.qubo, d, a);
  double min_violating = std::numeric_limits<double>::infinity();
  for (std::uint32_t xb = 0; xb < (1u << d); ++xb) {
    const double best = minima[xb];
    cert.max_min_penalty = std::max(cert.max_min_penalty, best);
    if (pattern.satisfied(xb)) {
      cert.worst_valid_ground =
          std::max(cert.worst_valid_ground, std::abs(best));
      if (std::abs(best) > options.eps) {
        std::ostringstream os;
        os << "satisfying assignment " << xb << " has ground energy " << best
           << " (expected 0)";
        cert.error = os.str();
        return cert;
      }
    } else {
      min_violating = std::min(min_violating, best);
      if (best < synth.gap - options.eps) {
        std::ostringstream os;
        os << "violating assignment " << xb << " reaches energy " << best
           << " below the declared gap " << synth.gap;
        cert.error = os.str();
        return cert;
      }
    }
  }
  // A tautology has no violating assignment; its gap is vacuously the
  // declared one.
  cert.observed_gap =
      std::isinf(min_violating) ? synth.gap : min_violating;
  cert.ok = true;
  return cert;
}

ProgramCertificate certify_program(const Env& env, SynthEngine& engine,
                                   const CertifyOptions& options) {
  ProgramCertificate program;
  program.ok = true;
  for (std::size_t ci = 0; ci < env.constraints().size(); ++ci) {
    const Constraint& c = env.constraints()[ci];
    ConstraintCertificate cert;
    try {
      const SynthesizedQubo synth = engine.synthesize(c.pattern());
      cert = certify_synthesis(c.pattern(), synth, options);
    } catch (const std::exception& e) {
      cert.error = std::string("synthesis failed: ") + e.what();
    }
    cert.constraint = ci;
    cert.soft = c.soft();
    program.ok = program.ok && cert.ok;
    program.constraints.push_back(std::move(cert));
  }

  // Interval propagation mirrors compile(): soft at weight 1/gap, hard at
  // hard_scale/gap. S_max sums certified worst-case projected minima.
  if (program.ok) {
    for (const ConstraintCertificate& cert : program.constraints) {
      if (cert.soft) {
        program.max_soft_energy += cert.max_min_penalty / cert.declared_gap;
      }
    }
    program.hard_scale = program.max_soft_energy + options.hard_margin;
    for (const ConstraintCertificate& cert : program.constraints) {
      const double scale = cert.soft ? 1.0 / cert.declared_gap
                                     : program.hard_scale / cert.declared_gap;
      program.max_abs_scaled_coefficient =
          std::max(program.max_abs_scaled_coefficient,
                   scale * cert.max_abs_coefficient);
    }
  }
  return program;
}

void report_certificate(const Env& env, const ProgramCertificate& cert,
                        const CertifyOptions& options,
                        AnalysisReport& report) {
  for (const ConstraintCertificate& c : cert.constraints) {
    if (c.ok) continue;
    report.add({Severity::kError, DiagCode::kCertificationFailed,
                DiagLocation::constraint(
                    c.constraint,
                    constraint_label(env, env.constraints()[c.constraint])),
                "QUBO ground states do not coincide with the constraint's "
                "satisfying assignments: " +
                    c.error,
                "the compiled objective would optimize the wrong predicate; "
                "report the synthesis path (" +
                    (c.method.empty() ? std::string("unknown") : c.method) +
                    ") and re-run with engine verification on"});
  }
  if (!cert.ok) return;

  // Gap dominance. Any assignment violating hard constraint i costs at
  // least G_i; any feasible assignment costs at most S_max; G_i > S_max is
  // the sound criterion that soft preferences cannot drown the constraint.
  const double s_max = cert.max_soft_energy;
  const double noise =
      options.ice_sigma * options.resolution_factor *
      cert.max_abs_scaled_coefficient;
  for (const ConstraintCertificate& c : cert.constraints) {
    if (c.soft) continue;
    const double scaled_gap =
        cert.hard_scale * c.observed_gap / c.declared_gap;
    const DiagLocation loc = DiagLocation::constraint(
        c.constraint, constraint_label(env, env.constraints()[c.constraint]));
    if (scaled_gap <= s_max + options.eps) {
      std::ostringstream msg;
      msg << "certified penalty gap " << scaled_gap
          << " does not exceed the soft-energy bound " << s_max
          << "; an optimum may violate this hard constraint";
      report.add({Severity::kError, DiagCode::kGapDominatedBySoft, loc,
                  msg.str(),
                  "raise CompileOptions::hard_margin above zero so every "
                  "hard gap clears the total soft energy"});
    } else if (scaled_gap - s_max < noise) {
      std::ostringstream msg;
      msg << "dominance margin " << (scaled_gap - s_max)
          << " is below the annealer noise floor " << noise
          << " (ice_sigma * resolution_factor * max |coefficient|)";
      report.add({Severity::kWarning, DiagCode::kGapMarginThin, loc,
                  msg.str(),
                  "raise CompileOptions::hard_margin or target the classical "
                  "backend, where coefficients are exact"});
    }
  }
}

std::string ProgramCertificate::to_json() const {
  std::ostringstream os;
  os << "{\"ok\":" << (ok ? "true" : "false")
     << ",\"max_soft_energy\":" << json_number(max_soft_energy)
     << ",\"hard_scale\":" << json_number(hard_scale)
     << ",\"max_abs_scaled_coefficient\":"
     << json_number(max_abs_scaled_coefficient) << ",\"constraints\":[";
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    const ConstraintCertificate& c = constraints[i];
    if (i) os << ",";
    os << "{\"constraint\":" << c.constraint
       << ",\"ok\":" << (c.ok ? "true" : "false")
       << ",\"soft\":" << (c.soft ? "true" : "false")
       << ",\"num_vars\":" << c.num_vars
       << ",\"num_ancillas\":" << c.num_ancillas
       << ",\"declared_gap\":" << json_number(c.declared_gap)
       << ",\"observed_gap\":" << json_number(c.observed_gap)
       << ",\"worst_valid_ground\":" << json_number(c.worst_valid_ground)
       << ",\"max_min_penalty\":" << json_number(c.max_min_penalty)
       << ",\"max_abs_coefficient\":" << json_number(c.max_abs_coefficient)
       << ",\"method\":\"" << json_escape(c.method) << "\""
       << ",\"error\":\"" << json_escape(c.error) << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace nck
