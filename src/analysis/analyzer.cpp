#include "analysis/analyzer.hpp"

#include <stdexcept>
#include <string>

namespace nck {
namespace {

/// Hardware-level passes for one target, appended to `report`. Assumes
/// the program-level analysis already passed. Returns false when the
/// program could not even be compiled (NCK-Q000 was added).
bool analyze_hardware(const Env& env, SynthEngine& engine,
                      const AnalysisTarget& target,
                      const AnalyzeOptions& options, AnalysisReport& report) {
  if (!target.annealer && !target.coupling) return true;
  if (env.num_constraints() == 0) return true;

  CompiledQubo compiled;
  try {
    compiled = compile(env, engine);
  } catch (const std::exception& e) {
    report.add({Severity::kError, DiagCode::kSynthesisFailed,
                DiagLocation::program(),
                std::string("constraint QUBO synthesis failed: ") + e.what(),
                "raise the synthesis ancilla budget or enable a general "
                "synthesizer (Z3/LP)"});
    return false;
  }

  if (target.annealer) {
    analyze_coefficient_range(compiled, options.qubo, report);
    analyze_embedding_feasibility(compiled, *target.annealer, options.qubo,
                                  report);
  }
  if (target.coupling) {
    analyze_circuit_feasibility(compiled, *target.coupling, options.qubo,
                                report);
  }
  return true;
}

/// Program-pass options specialized to the engine actually in use: the
/// NCK-P008 budget comes from the engine's general synthesizers unless the
/// caller pinned one explicitly.
ProgramPassOptions with_engine_budget(const AnalyzeOptions& options,
                                      const SynthEngine& engine) {
  ProgramPassOptions program = options.program;
  if (program.synth_var_budget == 0) {
    program.synth_var_budget = engine.general_var_budget();
  }
  program.synth_builtin = engine.builtin_enabled();
  return program;
}

}  // namespace

AnalysisReport Analyzer::analyze(const Env& env) const {
  AnalysisReport report;
  analyze_program(env, options_.program, report);
  report.canonicalize();
  return report;
}

AnalysisReport Analyzer::analyze(const Env& env, SynthEngine& engine,
                                 const AnalysisTarget& target) const {
  AnalysisReport report;
  analyze_program(env, with_engine_budget(options_, engine), report);
  // A program that is already known-broken is not worth compiling, and the
  // compiler's hard-scale computation assumes a satisfiable conjunction.
  if (!report.has_errors()) {
    analyze_hardware(env, engine, target, options_, report);
  }
  report.canonicalize();
  return report;
}

AnalysisReport Analyzer::analyze_chain(
    const Env& env, SynthEngine& engine,
    const std::vector<AnalysisTarget>& chain) const {
  AnalysisReport report;
  analyze_program(env, with_engine_budget(options_, engine), report);
  if (report.has_errors() || chain.empty()) {
    report.canonicalize();
    return report;
  }

  std::size_t feasible_rungs = 0;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    AnalysisReport rung;
    analyze_hardware(env, engine, chain[i], options_, rung);
    if (!rung.has_errors()) ++feasible_rungs;
    // A hard error on one rung is survivable — the solve degrades to the
    // next rung — so it rides along demoted to a warning, tagged with the
    // rung it came from.
    for (Diagnostic d : rung.diagnostics()) {
      if (d.severity == Severity::kError) d.severity = Severity::kWarning;
      d.message = "fallback rung " + std::to_string(i + 1) + ": " + d.message;
      report.add(std::move(d));
    }
  }

  if (feasible_rungs == 0) {
    report.add({Severity::kError, DiagCode::kFallbackChainInfeasible,
                DiagLocation::program(),
                "no backend in the fallback chain can run this program (" +
                    std::to_string(chain.size()) + " rung(s), all infeasible)",
                "shorten the program or append a classical rung to the "
                "fallback chain"});
  }
  report.canonicalize();
  return report;
}

}  // namespace nck
