#include "analysis/analyzer.hpp"

#include <stdexcept>

namespace nck {

AnalysisReport Analyzer::analyze(const Env& env) const {
  AnalysisReport report;
  analyze_program(env, options_.program, report);
  return report;
}

AnalysisReport Analyzer::analyze(const Env& env, SynthEngine& engine,
                                 const AnalysisTarget& target) const {
  AnalysisReport report = analyze(env);
  // A program that is already known-broken is not worth compiling, and the
  // compiler's hard-scale computation assumes a satisfiable conjunction.
  if (report.has_errors()) return report;
  if (!target.annealer && !target.coupling) return report;
  if (env.num_constraints() == 0) return report;

  CompiledQubo compiled;
  try {
    compiled = compile(env, engine);
  } catch (const std::exception& e) {
    report.add({Severity::kError, DiagCode::kSynthesisFailed,
                DiagLocation::program(),
                std::string("constraint QUBO synthesis failed: ") + e.what(),
                "raise the synthesis ancilla budget or enable a general "
                "synthesizer (Z3/LP)"});
    return report;
  }

  if (target.annealer) {
    analyze_coefficient_range(compiled, options_.qubo, report);
    analyze_embedding_feasibility(compiled, *target.annealer, options_.qubo,
                                  report);
  }
  if (target.coupling) {
    analyze_circuit_feasibility(compiled, *target.coupling, options_.qubo,
                                report);
  }
  return report;
}

}  // namespace nck
