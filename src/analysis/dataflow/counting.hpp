// Reachable-count machinery shared by the propagation pass and the dataflow
// engine: exact subset-sum sets over unfixed multiplicities, the unfixed
// slice of a constraint under a partial assignment, and the selection-set
// hit tests. Moved out of program_passes.cpp so src/analysis/dataflow can
// reuse the exact reasoning instead of duplicating it.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "analysis/program_passes.hpp"
#include "core/constraint.hpp"

namespace nck {
namespace dataflow {

/// Bitset over achievable multiplicity sums in [0, cap].
class SumSet {
 public:
  explicit SumSet(std::size_t cap) : cap_(cap), bits_(cap / 64 + 1, 0) {
    bits_[0] = 1;  // the empty subset sums to 0
  }

  /// dp |= dp << m (one item of multiplicity m, chosen or not).
  void add_item(unsigned m) {
    if (m == 0) return;
    const std::size_t word_shift = m / 64;
    const unsigned bit_shift = m % 64;
    for (std::size_t i = bits_.size(); i-- > 0;) {
      std::uint64_t shifted = 0;
      if (i >= word_shift) {
        shifted = bits_[i - word_shift] << bit_shift;
        if (bit_shift != 0 && i > word_shift) {
          shifted |= bits_[i - word_shift - 1] >> (64 - bit_shift);
        }
      }
      bits_[i] |= shifted;
    }
  }

  bool test(std::size_t k) const noexcept {
    if (k > cap_) return false;
    return (bits_[k / 64] >> (k % 64)) & 1u;
  }

 private:
  std::size_t cap_;
  std::vector<std::uint64_t> bits_;
};

/// The unfixed slice of one constraint under a partial assignment.
struct UnfixedView {
  unsigned fixed_true = 0;     // multiplicity-weighted TRUE count so far
  unsigned unfixed_total = 0;  // sum of unfixed multiplicities
  std::vector<std::pair<VarId, unsigned>> unfixed;  // (var, multiplicity)
};

inline UnfixedView view_under(const Constraint& c,
                              const std::vector<ForcedValue>& values) {
  UnfixedView view;
  const auto& vars = c.distinct_vars();
  for (std::size_t i = 0; i < vars.size(); ++i) {
    unsigned mult = 0;
    for (VarId v : c.collection()) {
      if (v == vars[i]) ++mult;
    }
    switch (values[vars[i]]) {
      case ForcedValue::kTrue: view.fixed_true += mult; break;
      case ForcedValue::kFalse: break;
      case ForcedValue::kUnknown:
        view.unfixed.emplace_back(vars[i], mult);
        view.unfixed_total += mult;
        break;
    }
  }
  return view;
}

/// Does the selection set contain any value in [lo, hi]?
inline bool selection_hits_interval(const std::set<unsigned>& selection,
                                    unsigned lo, unsigned hi) {
  auto it = selection.lower_bound(lo);
  return it != selection.end() && *it <= hi;
}

/// Does the selection contain fixed + s for some achievable s, where the
/// achievable sums come from `sums` (offset by `fixed`)?
inline bool selection_hits_sums(const std::set<unsigned>& selection,
                                unsigned fixed, unsigned total,
                                const SumSet& sums) {
  for (auto it = selection.lower_bound(fixed);
       it != selection.end() && *it <= fixed + total; ++it) {
    if (sums.test(*it - fixed)) return true;
  }
  return false;
}

}  // namespace dataflow
}  // namespace nck
