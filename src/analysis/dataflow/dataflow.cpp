#include "analysis/dataflow/dataflow.hpp"

#include <map>
#include <utility>

#include "analysis/dataflow/counting.hpp"

namespace nck {

namespace {

using dataflow::selection_hits_sums;
using dataflow::SumSet;
using dataflow::UnfixedView;
using dataflow::view_under;

struct PairEntry {
  unsigned char mask = kPairAllMask;
  std::size_t first_constraint = 0;  // first constraint that narrowed it
  std::size_t last_constraint = 0;   // most recent narrowing constraint
  bool narrowed = false;
};

/// Projects hard constraint `ci` onto every unfixed pair it covers,
/// intersecting the resulting 4-bit masks into `entries`.
void mine_constraint(const Env& env, std::size_t ci,
                     const std::vector<ForcedValue>& values,
                     const DataflowOptions& options,
                     std::map<std::pair<VarId, VarId>, PairEntry>& entries) {
  const Constraint& c = env.constraints()[ci];
  const UnfixedView view = view_under(c, values);
  if (view.unfixed.size() < 2 || view.unfixed.size() > options.max_pair_vars ||
      c.cardinality() > options.max_propagation_cardinality) {
    return;
  }
  for (std::size_t i = 0; i < view.unfixed.size(); ++i) {
    for (std::size_t j = i + 1; j < view.unfixed.size(); ++j) {
      const auto [vi, mi] = view.unfixed[i];
      const auto [vj, mj] = view.unfixed[j];
      // Reachable sums of the other unfixed members.
      SumSet rest(view.unfixed_total);
      for (std::size_t k = 0; k < view.unfixed.size(); ++k) {
        if (k != i && k != j) rest.add_item(view.unfixed[k].second);
      }
      const unsigned rest_total = view.unfixed_total - mi - mj;
      unsigned char mask = 0;
      for (bool a_true : {false, true}) {
        for (bool b_true : {false, true}) {
          const unsigned offset = view.fixed_true + (a_true ? mi : 0u) +
                                  (b_true ? mj : 0u);
          if (selection_hits_sums(c.selection(), offset, rest_total, rest)) {
            // Orient the bit by ascending VarId, not collection position.
            const bool va = vi < vj ? a_true : b_true;
            const bool vb = vi < vj ? b_true : a_true;
            mask |= pair_bit(va, vb);
          }
        }
      }
      const std::pair<VarId, VarId> key{std::min(vi, vj), std::max(vi, vj)};
      PairEntry& entry = entries[key];
      const unsigned char merged = entry.mask & mask;
      if (merged != entry.mask || mask != kPairAllMask) {
        if (!entry.narrowed && mask != kPairAllMask) {
          entry.first_constraint = ci;
          entry.narrowed = true;
        }
        if (mask != kPairAllMask) entry.last_constraint = ci;
      }
      entry.mask = merged;
    }
  }
}

}  // namespace

DataflowResult solve_dataflow(const Env& env, const DataflowOptions& options) {
  DataflowResult result;
  result.values.assign(env.num_vars(), ForcedValue::kUnknown);

  ProgramPassOptions prop_options;
  prop_options.max_propagation_cardinality =
      options.max_propagation_cardinality;

  std::map<std::pair<VarId, VarId>, PairEntry> entries;
  while (true) {
    ++result.rounds;
    if (propagate_seeded(env, prop_options, result.values,
                         result.unsat_constraint)) {
      result.proved_unsat = true;
      result.unsat_constraint2 = result.unsat_constraint;
      return result;
    }
    if (!options.mine_pairs || result.rounds > options.max_rounds) break;

    entries.clear();
    for (std::size_t ci = 0; ci < env.constraints().size(); ++ci) {
      if (!env.constraints()[ci].soft()) {
        mine_constraint(env, ci, result.values, options, entries);
      }
    }

    bool forced_any = false;
    for (const auto& [key, entry] : entries) {
      if (entry.mask == 0) {
        // No joint value survives the constraint intersection: a
        // contradiction count propagation cannot see (each individual
        // constraint still has satisfying counts).
        result.proved_unsat = true;
        result.needed_pairs = true;
        result.pair_witness = true;
        result.unsat_constraint = entry.first_constraint;
        result.unsat_constraint2 = entry.last_constraint;
        return result;
      }
      // A row or column of the 2x2 value table being empty forces the
      // corresponding variable; propagation then re-runs with the new fact.
      struct Forcing {
        VarId var;
        unsigned char absent_mask;  // bits where the variable takes `value`
        ForcedValue value;
      };
      const Forcing forcings[] = {
          {key.first, static_cast<unsigned char>(0b1010), ForcedValue::kFalse},
          {key.first, static_cast<unsigned char>(0b0101), ForcedValue::kTrue},
          {key.second, static_cast<unsigned char>(0b1100), ForcedValue::kFalse},
          {key.second, static_cast<unsigned char>(0b0011), ForcedValue::kTrue},
      };
      for (const Forcing& f : forcings) {
        if ((entry.mask & f.absent_mask) != 0) continue;
        if (result.values[f.var] == f.value) continue;
        if (result.values[f.var] != ForcedValue::kUnknown) {
          // Two pair facts force opposite values: contradiction.
          result.proved_unsat = true;
          result.needed_pairs = true;
          result.pair_witness = true;
          result.unsat_constraint = entry.first_constraint;
          result.unsat_constraint2 = entry.last_constraint;
          return result;
        }
        result.values[f.var] = f.value;
        result.needed_pairs = true;
        forced_any = true;
      }
    }
    if (!forced_any) break;
  }

  for (const auto& [key, entry] : entries) {
    if (entry.mask != kPairAllMask && entry.mask != 0) {
      result.facts.push_back({key.first, key.second, entry.mask});
    }
  }
  return result;
}

}  // namespace nck
