// Fixpoint abstract interpretation over an NchooseK program.
//
// The per-variable abstract domain is the flat lattice
//
//          free (kUnknown)
//          |            |
//    forced-TRUE   forced-FALSE
//          |            |
//        bottom (contradiction)
//
// Bottom is not stored per variable: reaching it anywhere makes the whole
// program unsatisfiable, so the engine reports it as `proved_unsat` with a
// witness constraint (or pair of constraints).
//
// On top of the unary domain the engine mines binary facts. For every
// unordered pair of variables that co-occur in some hard constraint, each
// such constraint is projected onto the pair: with the other unfixed
// multiplicities summarized by an exact subset-sum set, a 4-bit mask records
// which joint values (a, b) the constraint still permits (bit index
// value(a) + 2 * value(b), a < b by VarId). Masks from all covering
// constraints are intersected; an empty intersection is a contradiction no
// single constraint exposes, and a single-valued row or column forces a
// variable. Count propagation (phase 1) and pair mining (phase 2) alternate
// until neither changes anything — the fixpoint.
//
// Everything here is an over-approximation of the feasible set, so every
// forced value and every excluded pair value is sound: no satisfying
// assignment of the hard constraints is ever ruled out.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/program_passes.hpp"
#include "core/env.hpp"

namespace nck {

struct DataflowOptions {
  /// Collections larger than this skip exact subset-sum reasoning (the
  /// bitset grows with cardinality); interval reasoning still applies in
  /// phase 1, and phase 2 skips the constraint.
  std::size_t max_propagation_cardinality = 4096;
  /// Mine pairwise implication/exclusion facts (phase 2). Off = plain
  /// forced-value propagation, exactly the NCK-P002 engine.
  bool mine_pairs = true;
  /// Constraints with more unfixed distinct variables than this skip pair
  /// mining (the sweep builds O(k^2) subset-sum sets per constraint).
  std::size_t max_pair_vars = 32;
  /// Safety valve on phase-1/phase-2 alternations; each round forces at
  /// least one additional variable, so num_vars rounds always suffice.
  std::size_t max_rounds = 4096;
};

/// Pair-value bit helpers: bit index = value(a) + 2 * value(b).
inline constexpr unsigned char kPairAllMask = 0xF;
inline constexpr unsigned char pair_bit(bool va, bool vb) {
  return static_cast<unsigned char>(1u << ((va ? 1 : 0) + (vb ? 2 : 0)));
}

/// A non-trivial binary fact: the joint values (a, b) may still take.
/// mask == 0b0110 is "a XOR b", 0b1001 is "a == b", etc.
struct PairFact {
  VarId a = 0;  // a < b
  VarId b = 0;
  unsigned char mask = kPairAllMask;
};

struct DataflowResult {
  /// Fixpoint unary lattice, per VarId. Meaningful even when proved_unsat
  /// (the values derived before the contradiction surfaced).
  std::vector<ForcedValue> values;
  /// Non-trivial pair facts (mask != kPairAllMask) at the fixpoint, sorted
  /// by (a, b). Empty when proved_unsat (the fixpoint was never reached).
  std::vector<PairFact> facts;
  bool proved_unsat = false;
  /// True when phase 2 contributed a fact (a forced value or the
  /// contradiction itself) that phase-1 propagation alone had not found —
  /// i.e. the result is strictly stronger than NCK-P002 reasoning.
  bool needed_pairs = false;
  /// When proved_unsat: true if the witness is a pair of constraints whose
  /// pair-projections are jointly empty; false if a single constraint's
  /// reachable-count set died (the NCK-P002 shape).
  bool pair_witness = false;
  std::size_t unsat_constraint = 0;
  std::size_t unsat_constraint2 = 0;  // == unsat_constraint unless pair_witness
  std::size_t rounds = 0;

  std::size_t num_forced() const noexcept {
    std::size_t n = 0;
    for (ForcedValue v : values) {
      if (v != ForcedValue::kUnknown) ++n;
    }
    return n;
  }
};

/// Runs the two-phase engine to its fixpoint over the hard constraints.
DataflowResult solve_dataflow(const Env& env,
                              const DataflowOptions& options = {});

}  // namespace nck
