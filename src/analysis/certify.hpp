// Semantic QUBO certification (the sound core of the V-series passes).
//
// Per constraint, the certificate is an exhaustive proof over all 2^(d+a)
// assignments of the synthesized QUBO that, after projecting out the a
// ancillas by minimization,
//   * every satisfying x of nck(N, K) reaches ground energy 0, and
//   * every violating x costs at least the declared gap,
// i.e. argmin(E) == sat(nck(N, K)). The observed penalty gap (minimum
// violating energy minus maximum valid ground energy) is recorded as a
// structured artifact.
//
// Per program, the certificates compose: compile() scales soft constraints
// to 1/gap and hard ones to hard_scale/gap, so the certified per-constraint
// bounds interval-propagate into
//   * S_max — an upper bound on the total soft energy of ANY assignment
//     (sum of certified worst-case projected minima, normalized), and
//   * G_i  — a lower bound on the energy any assignment violating hard
//     constraint i pays (hard_scale * observed_gap_i / declared_gap_i).
// G_i > S_max proves hard constraint i cannot be drowned by soft
// preferences. report_certificate() turns failures of that dominance into
// NCK-V001 (error: drownable) and NCK-V002 (warning: margin below the
// annealer noise floor) — the sound replacement for the heuristic NCK-P007.
// Certification failures themselves become NCK-V000 errors.
//
// certify_program() is deliberately the only expensive entry point;
// report_certificate() is pure arithmetic over the artifact, so cached
// certificates (runtime::Solver stores them in the backend PlanCache keyed
// by program fingerprint) re-emit diagnostics without re-enumeration.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "core/env.hpp"
#include "synth/engine.hpp"

namespace nck {

struct CertifyOptions {
  /// Energy slack for float comparisons (valid grounds within eps of 0).
  double eps = 1e-6;
  /// Must mirror CompileOptions::hard_margin of the compile being certified;
  /// dominance is computed against hard_scale = S_max + hard_margin.
  double hard_margin = 1.0;
  /// ICE noise stddev relative to the largest compiled coefficient and the
  /// margin multiple considered resolvable (match ProgramPassOptions).
  double ice_sigma = 0.015;
  double resolution_factor = 2.0;
  /// Constraints with d + a beyond this are refused (2^(d+a) enumeration).
  std::size_t max_enum_vars = 24;
};

/// Exhaustive proof artifact for one constraint's synthesized QUBO.
struct ConstraintCertificate {
  std::size_t constraint = 0;  // index into Env::constraints()
  bool ok = false;
  bool soft = false;
  std::size_t num_vars = 0;      // d
  std::size_t num_ancillas = 0;  // a
  double declared_gap = 0.0;     // synth.gap
  /// min over violating x of min_z f(x, z); == declared_gap for tautologies.
  double observed_gap = 0.0;
  /// max over satisfying x of |min_z f(x, z)| — proven <= eps when ok.
  double worst_valid_ground = 0.0;
  /// max over ALL x of min_z f(x, z) — the constraint's worst-case energy
  /// contribution (drives the program-level soft-energy bound).
  double max_min_penalty = 0.0;
  double max_abs_coefficient = 0.0;  // of the unscaled synthesized QUBO
  std::string method;  // synthesis path that produced the QUBO
  std::string error;   // non-empty iff !ok
};

/// Interval-propagated whole-program artifact.
struct ProgramCertificate {
  bool ok = false;  // every per-constraint certificate ok
  std::vector<ConstraintCertificate> constraints;
  /// Upper bound on total normalized soft energy of any assignment (S_max);
  /// equals CompiledQubo::max_soft_energy for the same program.
  double max_soft_energy = 0.0;
  /// S_max + hard_margin — the scale compile() applies per unit hard gap.
  double hard_scale = 0.0;
  /// Largest absolute coefficient of the compiled (scaled) QUBO, bounded
  /// from the per-constraint coefficients; 0 when certification failed.
  double max_abs_scaled_coefficient = 0.0;

  /// Structured artifact: {"ok":...,"hard_scale":...,"constraints":[...]}.
  std::string to_json() const;
};

/// Certifies one synthesized QUBO against its pattern. Never throws on a
/// semantic mismatch — the failure is recorded in the certificate.
ConstraintCertificate certify_synthesis(const ConstraintPattern& pattern,
                                        const SynthesizedQubo& synth,
                                        const CertifyOptions& options = {});

/// Certifies every constraint of the program (synthesizing through
/// `engine`, so warm synth caches are reused) and interval-propagates the
/// program-level bounds. Synthesis failures are recorded per constraint,
/// not thrown.
ProgramCertificate certify_program(const Env& env, SynthEngine& engine,
                                   const CertifyOptions& options = {});

/// Re-derives the NCK-V000/V001/V002 diagnostics from a certificate.
/// Enumeration-free: safe to call on a cache-recalled artifact.
void report_certificate(const Env& env, const ProgramCertificate& cert,
                        const CertifyOptions& options, AnalysisReport& report);

}  // namespace nck
