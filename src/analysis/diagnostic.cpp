#include "analysis/diagnostic.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/table.hpp"

namespace nck {

const char* severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const char* diag_code_name(DiagCode code) noexcept {
  switch (code) {
    case DiagCode::kEmptyProgram: return "NCK-P000";
    case DiagCode::kContradictoryPair: return "NCK-P001";
    case DiagCode::kInfeasibleByPropagation: return "NCK-P002";
    case DiagCode::kTautology: return "NCK-P003";
    case DiagCode::kUnusedVariable: return "NCK-P004";
    case DiagCode::kSoftOnlyVariable: return "NCK-P005";
    case DiagCode::kDuplicateConstraint: return "NCK-P006";
    case DiagCode::kScaleSeparation: return "NCK-P007";
    case DiagCode::kSynthBudgetExceeded: return "NCK-P008";
    case DiagCode::kUnsatCore: return "NCK-P009";
    case DiagCode::kSynthesisFailed: return "NCK-Q000";
    case DiagCode::kSubNoiseTerm: return "NCK-Q001";
    case DiagCode::kEmbeddingInfeasible: return "NCK-Q002";
    case DiagCode::kEmbeddingTight: return "NCK-Q003";
    case DiagCode::kCircuitTooWide: return "NCK-C001";
    case DiagCode::kCircuitDepthBudget: return "NCK-C002";
    case DiagCode::kFallbackChainInfeasible: return "NCK-R000";
    case DiagCode::kCertificationFailed: return "NCK-V000";
    case DiagCode::kGapDominatedBySoft: return "NCK-V001";
    case DiagCode::kGapMarginThin: return "NCK-V002";
    case DiagCode::kForcedVariable: return "NCK-D000";
    case DiagCode::kSubsumedConstraint: return "NCK-D001";
    case DiagCode::kIndependentComponents: return "NCK-D002";
    case DiagCode::kPresolveUnsat: return "NCK-D003";
    case DiagCode::kReductionRejected: return "NCK-D004";
    case DiagCode::kDecomposed: return "NCK-D005";
  }
  return "NCK-????";
}

namespace {

const char* location_kind_name(DiagLocation::Kind kind) noexcept {
  switch (kind) {
    case DiagLocation::Kind::kProgram: return "program";
    case DiagLocation::Kind::kConstraint: return "constraint";
    case DiagLocation::Kind::kConstraintPair: return "constraint-pair";
    case DiagLocation::Kind::kVariable: return "variable";
    case DiagLocation::Kind::kQuboTerm: return "qubo-term";
    case DiagLocation::Kind::kConstraintSet: return "constraint-set";
  }
  return "?";
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string DiagLocation::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kProgram:
      os << "program";
      break;
    case Kind::kConstraint:
      os << "constraint #" << index;
      break;
    case Kind::kConstraintPair:
      os << "constraints #" << index << " and #" << index2;
      break;
    case Kind::kVariable:
      os << "variable #" << index;
      break;
    case Kind::kQuboTerm:
      if (index == index2) {
        os << "qubo term x" << index;
      } else {
        os << "qubo term x" << index << "*x" << index2;
      }
      break;
    case Kind::kConstraintSet:
      os << "constraints {";
      for (std::size_t i = 0; i < indices.size(); ++i) {
        if (i) os << ", ";
        os << "#" << indices[i];
      }
      os << "}";
      break;
  }
  if (!label.empty()) os << " (" << label << ")";
  return os.str();
}

DiagLocation DiagLocation::program() { return {}; }

DiagLocation DiagLocation::constraint(std::size_t i, std::string label) {
  return {Kind::kConstraint, i, i, {}, std::move(label)};
}

DiagLocation DiagLocation::constraint_pair(std::size_t i, std::size_t j,
                                           std::string label) {
  return {Kind::kConstraintPair, i, j, {}, std::move(label)};
}

DiagLocation DiagLocation::variable(std::size_t v, std::string name) {
  return {Kind::kVariable, v, v, {}, std::move(name)};
}

DiagLocation DiagLocation::qubo_term(std::size_t i, std::size_t j,
                                     std::string label) {
  return {Kind::kQuboTerm, i, j, {}, std::move(label)};
}

DiagLocation DiagLocation::constraint_set(std::vector<std::size_t> members,
                                          std::string label) {
  DiagLocation loc;
  loc.kind = Kind::kConstraintSet;
  loc.indices = std::move(members);
  std::sort(loc.indices.begin(), loc.indices.end());
  loc.index = loc.indices.empty() ? 0 : loc.indices.front();
  loc.index2 = loc.index;
  loc.label = std::move(label);
  return loc;
}

void AnalysisReport::merge(AnalysisReport other) {
  diagnostics_.reserve(diagnostics_.size() + other.diagnostics_.size());
  for (auto& d : other.diagnostics_) diagnostics_.push_back(std::move(d));
}

std::size_t AnalysisReport::count(Severity s) const noexcept {
  std::size_t n = 0;
  for (const auto& d : diagnostics_) {
    if (d.severity == s) ++n;
  }
  return n;
}

bool AnalysisReport::has_code(DiagCode code) const noexcept {
  for (const auto& d : diagnostics_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string AnalysisReport::summary(Severity min_severity) const {
  std::ostringstream os;
  bool first = true;
  for (const auto& d : diagnostics_) {
    if (d.severity < min_severity) continue;
    if (!first) os << "; ";
    os << "[" << diag_code_name(d.code) << "] " << d.location.to_string()
       << ": " << d.message;
    first = false;
  }
  return os.str();
}

void AnalysisReport::print(std::ostream& os) const {
  if (diagnostics_.empty()) {
    os << "no diagnostics\n";
    return;
  }
  Table table({"severity", "code", "location", "message"});
  for (const auto& d : diagnostics_) {
    table.row()
        .cell(severity_name(d.severity))
        .cell(diag_code_name(d.code))
        .cell(d.location.to_string())
        .cell(d.hint.empty() ? d.message : d.message + " [hint: " + d.hint +
                                               "]");
  }
  table.print(os);
  os << count(Severity::kError) << " error(s), " << count(Severity::kWarning)
     << " warning(s), " << count(Severity::kNote) << " note(s)\n";
}

void AnalysisReport::canonicalize() {
  std::stable_sort(
      diagnostics_.begin(), diagnostics_.end(),
      [](const Diagnostic& a, const Diagnostic& b) {
        if (a.code != b.code) return a.code < b.code;
        const DiagLocation& la = a.location;
        const DiagLocation& lb = b.location;
        if (la.kind != lb.kind) return la.kind < lb.kind;
        if (la.index != lb.index) return la.index < lb.index;
        if (la.index2 != lb.index2) return la.index2 < lb.index2;
        if (la.indices != lb.indices) return la.indices < lb.indices;
        return la.label < lb.label;
      });
}

std::string AnalysisReport::to_json() const {
  std::ostringstream os;
  os << "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    if (i) os << ",";
    os << "{\"severity\":\"" << severity_name(d.severity) << "\""
       << ",\"code\":\"" << diag_code_name(d.code) << "\""
       << ",\"location\":{\"kind\":\"" << location_kind_name(d.location.kind)
       << "\",\"index\":" << d.location.index
       << ",\"index2\":" << d.location.index2 << ",\"indices\":[";
    for (std::size_t k = 0; k < d.location.indices.size(); ++k) {
      if (k) os << ",";
      os << d.location.indices[k];
    }
    os << "],\"label\":\"" << json_escape(d.location.label) << "\"}"
       << ",\"message\":\"" << json_escape(d.message) << "\""
       << ",\"hint\":\"" << json_escape(d.hint) << "\"}";
  }
  os << "],\"errors\":" << count(Severity::kError)
     << ",\"warnings\":" << count(Severity::kWarning)
     << ",\"notes\":" << count(Severity::kNote) << "}";
  return os.str();
}

}  // namespace nck
