#include "analysis/unsat_core.hpp"

#include "analysis/dataflow/dataflow.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>

namespace nck {

namespace {

/// Sub-program containing the same variables but only the chosen (hard)
/// constraints. Variable ids are preserved, so propagation results map
/// directly back to the original program.
Env subset_env(const Env& env, const std::vector<std::size_t>& subset) {
  Env sub;
  for (const std::string& name : env.var_names()) sub.new_var(name);
  for (std::size_t i : subset) {
    const Constraint& c = env.constraints()[i];
    if (c.soft()) continue;
    sub.nck(c.collection(), c.selection(), ConstraintKind::kHard);
  }
  return sub;
}

std::string collection_key(const Constraint& c) {
  std::vector<VarId> sorted = c.collection();
  std::sort(sorted.begin(), sorted.end());
  std::ostringstream os;
  for (VarId v : sorted) os << v << ",";
  return os.str();
}

/// Two hard constraints over the same collection with an empty selection
/// intersection (the NCK-P001 condition), restricted to `subset`.
bool has_disjoint_pair(const Env& env, const std::vector<std::size_t>& subset) {
  std::map<std::string, std::set<unsigned>> intersections;
  for (std::size_t i : subset) {
    const Constraint& c = env.constraints()[i];
    if (c.soft()) continue;
    auto [it, inserted] = intersections.emplace(collection_key(c),
                                                c.selection());
    if (inserted) continue;
    std::set<unsigned> merged;
    std::set_intersection(it->second.begin(), it->second.end(),
                          c.selection().begin(), c.selection().end(),
                          std::inserter(merged, merged.begin()));
    it->second = std::move(merged);
    if (it->second.empty()) return true;
  }
  return false;
}

}  // namespace

bool oracle_infeasible(const Env& env, const std::vector<std::size_t>& subset,
                       const ProgramPassOptions& options) {
  // Three monotone infeasibility checks, weakest first. Monotonicity in
  // constraint inclusion (adding constraints can only shrink selection
  // intersections, add forced values, and narrow pair masks) is what makes
  // the deletion sweep in extract_unsat_core yield a genuine minimal core.
  if (has_disjoint_pair(env, subset)) return true;
  const Env sub = subset_env(env, subset);
  DataflowOptions flow_options;
  flow_options.max_propagation_cardinality =
      options.max_propagation_cardinality;
  return solve_dataflow(sub, flow_options).proved_unsat;
}

UnsatCore extract_unsat_core(const Env& env,
                             const ProgramPassOptions& options) {
  UnsatCore core;
  std::vector<std::size_t> candidate;
  for (std::size_t i = 0; i < env.constraints().size(); ++i) {
    if (!env.constraints()[i].soft()) candidate.push_back(i);
  }
  if (!oracle_infeasible(env, candidate, options)) return core;

  // Deletion pass: drop each member whose removal keeps the set infeasible.
  // With a monotone oracle one sweep suffices for minimality.
  for (std::size_t pos = 0; pos < candidate.size();) {
    std::vector<std::size_t> without = candidate;
    without.erase(without.begin() + static_cast<std::ptrdiff_t>(pos));
    if (oracle_infeasible(env, without, options)) {
      candidate = std::move(without);  // member was redundant
    } else {
      ++pos;  // member is necessary; keep it
    }
  }

  core.found = true;
  core.members = std::move(candidate);
  // Re-verify minimality member by member rather than trusting the sweep.
  core.verified_minimal = true;
  for (std::size_t pos = 0; pos < core.members.size(); ++pos) {
    std::vector<std::size_t> without = core.members;
    without.erase(without.begin() + static_cast<std::ptrdiff_t>(pos));
    if (oracle_infeasible(env, without, options)) {
      core.verified_minimal = false;
      break;
    }
  }
  return core;
}

}  // namespace nck
