#include "problems/vertex_cover.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"

namespace nck {

Env VertexCoverProblem::encode() const {
  Env env;
  const auto vars = env.new_vars(graph.num_vertices(), "v");
  for (const auto& [u, v] : graph.edges()) {
    env.nck({vars[u], vars[v]}, {1, 2});
  }
  for (VarId v : vars) env.prefer_false(v);
  return env;
}

Qubo VertexCoverProblem::handcrafted_qubo() const {
  constexpr double kA = 2.0;  // edge-coverage penalty weight
  constexpr double kB = 1.0;  // cover-size weight (must be < A)
  Qubo q(graph.num_vertices());
  for (const auto& [u, v] : graph.edges()) {
    // A (1 - x_u)(1 - x_v) = A (1 - x_u - x_v + x_u x_v).
    q.add_offset(kA);
    q.add_linear(u, -kA);
    q.add_linear(v, -kA);
    q.add_quadratic(u, v, kA);
  }
  for (Graph::Vertex v = 0; v < graph.num_vertices(); ++v) {
    q.add_linear(v, kB);
  }
  return q;
}

bool VertexCoverProblem::verify(const std::vector<bool>& assignment) const {
  return is_vertex_cover(graph, assignment);
}

std::size_t VertexCoverProblem::cover_size(
    const std::vector<bool>& assignment) const {
  return static_cast<std::size_t>(
      std::count(assignment.begin(), assignment.end(), true));
}

std::size_t VertexCoverProblem::optimal_cover_size() const {
  return minimum_vertex_cover_size(graph);
}

}  // namespace nck
