// k-SAT (Section VI-A-f), with both NchooseK encodings the paper discusses:
//
//  * dual-rail: every variable x gets a companion !x with hard
//    nck({x, !x}, {1}); each clause of k literals becomes
//    nck({lit_1..lit_k}, {1..k}) over the rail matching each literal's sign
//    — two non-symmetric constraint classes, 2n variables;
//
//  * repeated-variable: one constraint per clause, no companion variables.
//    For a clause with p positive and q negated literals, positive literals
//    get multiplicity q+1 and negated ones multiplicity 1; the weighted
//    count equals q exactly when the clause is falsified, so the selection
//    set is everything except q. (The paper prints the q=1 instance of this
//    trick with a typo — see tests/test_synth.cpp.)
#pragma once

#include <optional>
#include <vector>

#include "qubo/qubo.hpp"
#include "core/env.hpp"
#include "util/rng.hpp"

namespace nck {

struct Literal {
  std::uint32_t var = 0;
  bool negated = false;
};

struct KSatInstance {
  std::size_t num_vars = 0;
  std::vector<std::vector<Literal>> clauses;

  bool clause_satisfied(std::size_t c, const std::vector<bool>& x) const;
  bool satisfied(const std::vector<bool>& x) const;
  std::size_t num_satisfied(const std::vector<bool>& x) const;
};

/// Random k-SAT with a planted satisfying assignment (every clause is
/// checked against the plant and fixed up, so the instance is satisfiable).
KSatInstance random_ksat(std::size_t num_vars, std::size_t num_clauses,
                         std::size_t k, Rng& rng);

/// Random k-SAT with no planting (may be unsatisfiable).
KSatInstance random_ksat_unplanted(std::size_t num_vars,
                                   std::size_t num_clauses, std::size_t k,
                                   Rng& rng);

struct KSatProblem {
  KSatInstance instance;

  /// Dual-rail encoding. Variables [0, n) are the originals; [n, 2n) the
  /// negated companions.
  Env encode_dual_rail() const;

  /// Repeated-variable encoding over exactly n variables.
  Env encode_repeated() const;

  /// Checks an assignment over the first num_vars variables.
  bool verify(const std::vector<bool>& assignment) const;

  /// The handcrafted comparator the paper cites (Section VI-A-f): translate
  /// to Maximum Independent Set over one node per literal *occurrence*
  /// (k*m variables): clique edges within each clause, conflict edges
  /// between every x / !x occurrence pair, MIS objective -sum x + 2 sum
  /// over edges. The instance is satisfiable iff the QUBO minimum is -m.
  /// Worst case O(k m^2 + k^2 m) terms — the Table I entry.
  Qubo handcrafted_mis_qubo() const;

  /// Decodes a ground state of handcrafted_mis_qubo back to a variable
  /// assignment (std::nullopt if the selection is not a size-m independent
  /// set, i.e. the instance looks unsatisfiable).
  std::optional<std::vector<bool>> decode_mis(
      const std::vector<bool>& mis_selection) const;
};

}  // namespace nck
