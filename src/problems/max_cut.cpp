#include "problems/max_cut.hpp"

#include "graph/algorithms.hpp"

namespace nck {

Env MaxCutProblem::encode() const {
  Env env;
  const auto vars = env.new_vars(graph.num_vertices(), "v");
  for (const auto& [u, v] : graph.edges()) {
    env.nck({vars[u], vars[v]}, {1}, ConstraintKind::kSoft);
  }
  return env;
}

Env MaxCutProblem::encode_with_edge_vars() const {
  Env env;
  const auto vars = env.new_vars(graph.num_vertices(), "v");
  for (const auto& [u, v] : graph.edges()) {
    const VarId e = env.new_var("e_" + std::to_string(u) + "_" +
                                std::to_string(v));
    env.nck({vars[u], vars[v], e}, {0, 2});  // e == (u XOR v)
    env.prefer_true(e);
  }
  return env;
}

Qubo MaxCutProblem::handcrafted_qubo() const {
  Qubo q(graph.num_vertices());
  for (const auto& [u, v] : graph.edges()) {
    q.add_linear(u, -1.0);
    q.add_linear(v, -1.0);
    q.add_quadratic(u, v, 2.0);
  }
  return q;
}

std::size_t MaxCutProblem::cut_of(const std::vector<bool>& side) const {
  return cut_size(graph, side);
}

std::size_t MaxCutProblem::optimal_cut() const {
  return maximum_cut_size(graph);
}

}  // namespace nck
