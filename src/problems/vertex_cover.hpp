// Minimum Vertex Cover (Section IV, the paper's motivating NP-hard problem).
// NchooseK encoding: hard nck({u, v}, {1, 2}) per edge (at least one
// endpoint in the cover) plus soft nck({v}, {0}) per vertex (prefer small
// covers). Handcrafted comparison QUBO (Section VI-A-c):
//   H = A sum_{(u,v) in E} (1 - x_u)(1 - x_v) + B sum_v x_v,  A > B.
#pragma once

#include "core/env.hpp"
#include "graph/graph.hpp"
#include "qubo/qubo.hpp"

namespace nck {

struct VertexCoverProblem {
  Graph graph;

  /// Builds the NchooseK program; variable i corresponds to vertex i.
  Env encode() const;

  /// The Lucas-style direct QUBO (A = 2, B = 1).
  Qubo handcrafted_qubo() const;

  /// Is the assignment a vertex cover?
  bool verify(const std::vector<bool>& assignment) const;

  /// Cover size of an assignment.
  std::size_t cover_size(const std::vector<bool>& assignment) const;

  /// Exact optimum (branch and bound).
  std::size_t optimal_cover_size() const;
};

}  // namespace nck
