#include "problems/coloring.hpp"

#include "graph/algorithms.hpp"

namespace nck {
namespace {

// Shared one-hot encoder: exactly-one color per vertex, plus "not both"
// constraints for every (conflict edge, color) pair.
Env encode_one_hot(const Graph& graph, int num_colors,
                   const std::vector<Graph::Edge>& conflicts) {
  Env env;
  const std::size_t n = graph.num_vertices();
  std::vector<std::vector<VarId>> vars(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (int c = 0; c < num_colors; ++c) {
      vars[v].push_back(
          env.new_var("v" + std::to_string(v) + "_c" + std::to_string(c)));
    }
  }
  for (std::size_t v = 0; v < n; ++v) env.exactly(vars[v], 1);
  for (const auto& [u, v] : conflicts) {
    for (int c = 0; c < num_colors; ++c) {
      env.nck({vars[u][static_cast<std::size_t>(c)],
               vars[v][static_cast<std::size_t>(c)]},
              {0, 1});
    }
  }
  return env;
}

Qubo one_hot_qubo(const Graph& graph, int num_colors,
                  const std::vector<Graph::Edge>& conflicts) {
  const std::size_t n = graph.num_vertices();
  const auto id = [num_colors](std::size_t v, int c) {
    return static_cast<Qubo::Var>(v * static_cast<std::size_t>(num_colors) +
                                  static_cast<std::size_t>(c));
  };
  Qubo q(n * static_cast<std::size_t>(num_colors));
  for (std::size_t v = 0; v < n; ++v) {
    // (1 - sum_i x)^2 = 1 - 2 sum x + (sum x)^2; with x^2 == x this is
    // 1 - sum_i x_i + 2 sum_{i<j} x_i x_j.
    q.add_offset(1.0);
    for (int c = 0; c < num_colors; ++c) {
      q.add_linear(id(v, c), -1.0);
      for (int c2 = c + 1; c2 < num_colors; ++c2) {
        q.add_quadratic(id(v, c), id(v, c2), 2.0);
      }
    }
  }
  for (const auto& [u, v] : conflicts) {
    for (int c = 0; c < num_colors; ++c) {
      q.add_quadratic(id(u, c), id(v, c), 1.0);
    }
  }
  return q;
}

}  // namespace

std::optional<std::vector<int>> decode_one_hot(
    const std::vector<bool>& assignment, std::size_t num_vertices,
    std::size_t num_colors) {
  if (assignment.size() < num_vertices * num_colors) return std::nullopt;
  std::vector<int> colors(num_vertices, -1);
  for (std::size_t v = 0; v < num_vertices; ++v) {
    for (std::size_t c = 0; c < num_colors; ++c) {
      if (assignment[v * num_colors + c]) {
        if (colors[v] != -1) return std::nullopt;  // two colors set
        colors[v] = static_cast<int>(c);
      }
    }
    if (colors[v] == -1) return std::nullopt;  // no color set
  }
  return colors;
}

Env MapColoringProblem::encode() const {
  return encode_one_hot(graph, num_colors,
                        {graph.edges().begin(), graph.edges().end()});
}

Qubo MapColoringProblem::handcrafted_qubo() const {
  return one_hot_qubo(graph, num_colors,
                      {graph.edges().begin(), graph.edges().end()});
}

Qubo MapColoringProblem::conflict_qubo() const {
  const auto id = [this](std::size_t v, int c) {
    return static_cast<Qubo::Var>(v * static_cast<std::size_t>(num_colors) +
                                  static_cast<std::size_t>(c));
  };
  Qubo q(graph.num_vertices() * static_cast<std::size_t>(num_colors));
  for (const auto& [u, v] : graph.edges()) {
    for (int c = 0; c < num_colors; ++c) {
      q.add_quadratic(id(u, c), id(v, c), 1.0);
    }
  }
  return q;
}

std::vector<std::vector<Qubo::Var>> MapColoringProblem::one_hot_groups()
    const {
  std::vector<std::vector<Qubo::Var>> groups(graph.num_vertices());
  for (std::size_t v = 0; v < graph.num_vertices(); ++v) {
    for (int c = 0; c < num_colors; ++c) {
      groups[v].push_back(
          static_cast<Qubo::Var>(v * static_cast<std::size_t>(num_colors) +
                                 static_cast<std::size_t>(c)));
    }
  }
  return groups;
}

bool MapColoringProblem::verify(const std::vector<bool>& assignment) const {
  const auto colors = decode_one_hot(assignment, graph.num_vertices(),
                                     static_cast<std::size_t>(num_colors));
  return colors && is_proper_coloring(graph, *colors, num_colors);
}

bool MapColoringProblem::feasible() const {
  return k_colorable(graph, num_colors);
}

Env CliqueCoverProblem::encode() const {
  return encode_one_hot(graph, num_cliques, graph.complement_edges());
}

Qubo CliqueCoverProblem::handcrafted_qubo() const {
  return one_hot_qubo(graph, num_cliques, graph.complement_edges());
}

bool CliqueCoverProblem::verify(const std::vector<bool>& assignment) const {
  const auto colors = decode_one_hot(assignment, graph.num_vertices(),
                                     static_cast<std::size_t>(num_cliques));
  return colors && is_clique_cover(graph, *colors, num_cliques);
}

bool CliqueCoverProblem::feasible() const {
  return clique_coverable(graph, num_cliques);
}

}  // namespace nck
