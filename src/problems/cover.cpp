#include "problems/cover.hpp"

#include <algorithm>
#include <stdexcept>

namespace nck {

std::vector<std::size_t> SetSystem::covering(std::size_t element) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < subsets.size(); ++i) {
    if (std::binary_search(subsets[i].begin(), subsets[i].end(), element)) {
      out.push_back(i);
    }
  }
  return out;
}

SetSystem random_set_system(std::size_t num_elements,
                            std::size_t partition_blocks,
                            std::size_t extra_subsets, Rng& rng) {
  if (partition_blocks == 0 || partition_blocks > num_elements) {
    throw std::invalid_argument("random_set_system: bad partition_blocks");
  }
  SetSystem system;
  system.num_elements = num_elements;
  // Random partition: shuffle elements, split into blocks (each non-empty).
  std::vector<std::size_t> elements(num_elements);
  for (std::size_t i = 0; i < num_elements; ++i) elements[i] = i;
  rng.shuffle(elements);
  std::vector<std::vector<std::size_t>> blocks(partition_blocks);
  for (std::size_t i = 0; i < num_elements; ++i) {
    // First give each block one element, then distribute the rest randomly.
    const std::size_t b = i < partition_blocks
                              ? i
                              : static_cast<std::size_t>(
                                    rng.below(partition_blocks));
    blocks[b].push_back(elements[i]);
  }
  for (auto& block : blocks) {
    std::sort(block.begin(), block.end());
    system.subsets.push_back(std::move(block));
  }
  // Extra random subsets (size 1..num_elements/2, at least 1).
  const std::size_t max_size = std::max<std::size_t>(1, num_elements / 2);
  for (std::size_t s = 0; s < extra_subsets; ++s) {
    const std::size_t size =
        1 + static_cast<std::size_t>(rng.below(max_size));
    std::vector<std::size_t> pool(num_elements);
    for (std::size_t i = 0; i < num_elements; ++i) pool[i] = i;
    rng.shuffle(pool);
    pool.resize(size);
    std::sort(pool.begin(), pool.end());
    system.subsets.push_back(std::move(pool));
  }
  return system;
}

SetSystem chained_set_system(std::size_t num_blocks, std::size_t block_size,
                             std::size_t straddlers_per_boundary,
                             std::size_t straddler_size) {
  if (num_blocks == 0) {
    throw std::invalid_argument("chained_set_system: empty blocks");
  }
  if (block_size < 4 || block_size % 2 != 0) {
    throw std::invalid_argument(
        "chained_set_system: block_size must be even and >= 4");
  }
  const std::size_t half = block_size / 2;
  const std::size_t take_left = straddler_size - straddler_size / 2;
  const std::size_t take_right = straddler_size / 2;
  if (straddlers_per_boundary > 0 &&
      (straddler_size < 2 ||
       take_left + straddlers_per_boundary > half ||
       take_right + straddlers_per_boundary > half)) {
    throw std::invalid_argument(
        "chained_set_system: straddler reach exceeds half a block");
  }
  SetSystem system;
  system.num_elements = num_blocks * block_size;
  // Full blocks F_b: elements [b*block_size, (b+1)*block_size).
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::vector<std::size_t> block(block_size);
    for (std::size_t i = 0; i < block_size; ++i) {
      block[i] = b * block_size + i;
    }
    system.subsets.push_back(std::move(block));
  }
  // Halves H1_b / H2_b: the two alternatives that give every element a
  // second coverer (so presolve cannot force anything).
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::vector<std::size_t> h1(half), h2(half);
    for (std::size_t i = 0; i < half; ++i) {
      h1[i] = b * block_size + i;
      h2[i] = b * block_size + half + i;
    }
    system.subsets.push_back(std::move(h1));
    system.subsets.push_back(std::move(h2));
  }
  // Straddlers at boundary b: the last `take_left` elements of block b
  // shifted back by the straddler index j, plus the first `take_right`
  // elements of block b+1 shifted forward by j. The reach bound keeps
  // them strictly inside the boundary-adjacent halves, preserving a
  // straddler-free element in every half.
  for (std::size_t b = 0; b + 1 < num_blocks; ++b) {
    for (std::size_t j = 0; j < straddlers_per_boundary; ++j) {
      std::vector<std::size_t> straddler;
      for (std::size_t t = 0; t < take_left; ++t) {
        straddler.push_back((b + 1) * block_size - take_left - j + t);
      }
      for (std::size_t t = 0; t < take_right; ++t) {
        straddler.push_back((b + 1) * block_size + j + t);
      }
      system.subsets.push_back(std::move(straddler));
    }
  }
  return system;
}

Env ExactCoverProblem::encode() const {
  Env env;
  const auto vars = env.new_vars(system.subsets.size(), "s");
  for (std::size_t e = 0; e < system.num_elements; ++e) {
    std::vector<VarId> collection;
    for (std::size_t i : system.covering(e)) collection.push_back(vars[i]);
    if (collection.empty()) {
      throw std::invalid_argument("ExactCover: element in no subset");
    }
    env.exactly(collection, 1);
  }
  return env;
}

Qubo ExactCoverProblem::handcrafted_qubo() const {
  Qubo q(system.subsets.size());
  for (std::size_t e = 0; e < system.num_elements; ++e) {
    const auto cover = system.covering(e);
    // (1 - sum x)^2 = 1 - sum x + 2 sum_{i<j} x_i x_j (binary x).
    q.add_offset(1.0);
    for (std::size_t a = 0; a < cover.size(); ++a) {
      q.add_linear(static_cast<Qubo::Var>(cover[a]), -1.0);
      for (std::size_t b = a + 1; b < cover.size(); ++b) {
        q.add_quadratic(static_cast<Qubo::Var>(cover[a]),
                        static_cast<Qubo::Var>(cover[b]), 2.0);
      }
    }
  }
  return q;
}

bool ExactCoverProblem::verify(const std::vector<bool>& chosen) const {
  for (std::size_t e = 0; e < system.num_elements; ++e) {
    std::size_t count = 0;
    for (std::size_t i : system.covering(e)) {
      if (chosen[i]) ++count;
    }
    if (count != 1) return false;
  }
  return true;
}

Env MinSetCoverProblem::encode() const {
  Env env;
  const auto vars = env.new_vars(system.subsets.size(), "s");
  for (std::size_t e = 0; e < system.num_elements; ++e) {
    std::vector<VarId> collection;
    for (std::size_t i : system.covering(e)) collection.push_back(vars[i]);
    if (collection.empty()) {
      throw std::invalid_argument("MinSetCover: element in no subset");
    }
    env.at_least(collection, 1);
  }
  for (VarId v : vars) env.prefer_false(v);
  return env;
}

Qubo MinSetCoverProblem::handcrafted_qubo() const {
  // Lucas 5.1: for each element e with coverage set C_e, counter variables
  // y_{e,m} for m = 1..|C_e| one-hot encode "e is covered m times":
  //   H_A = A sum_e [ (1 - sum_m y_{e,m})^2
  //                   + (sum_m m y_{e,m} - sum_{i in C_e} x_i)^2 ]
  //   H_B = B sum_i x_i.
  constexpr double kA = 2.0;
  constexpr double kB = 1.0;
  const std::size_t num_subsets = system.subsets.size();
  Qubo q;
  // Layout: x_i at [0, N); y_{e,m} appended per element.
  q.resize(num_subsets);
  Qubo::Var next = static_cast<Qubo::Var>(num_subsets);
  for (std::size_t e = 0; e < system.num_elements; ++e) {
    const auto cover = system.covering(e);
    const std::size_t kmax = cover.size();
    std::vector<Qubo::Var> y;
    for (std::size_t m = 0; m < kmax; ++m) y.push_back(next++);

    // (1 - sum y)^2.
    q.add_offset(kA);
    for (std::size_t a = 0; a < y.size(); ++a) {
      q.add_linear(y[a], -kA);
      for (std::size_t b = a + 1; b < y.size(); ++b) {
        q.add_quadratic(y[a], y[b], 2.0 * kA);
      }
    }
    // (sum_m (m+1) y_m - sum x)^2 expanded with binary squares.
    std::vector<std::pair<Qubo::Var, double>> terms;
    for (std::size_t m = 0; m < y.size(); ++m) {
      terms.emplace_back(y[m], static_cast<double>(m + 1));
    }
    for (std::size_t i : cover) {
      terms.emplace_back(static_cast<Qubo::Var>(i), -1.0);
    }
    for (std::size_t a = 0; a < terms.size(); ++a) {
      q.add_linear(terms[a].first, kA * terms[a].second * terms[a].second);
      for (std::size_t b = a + 1; b < terms.size(); ++b) {
        q.add_quadratic(terms[a].first, terms[b].first,
                        2.0 * kA * terms[a].second * terms[b].second);
      }
    }
  }
  for (std::size_t i = 0; i < num_subsets; ++i) {
    q.add_linear(static_cast<Qubo::Var>(i), kB);
  }
  return q;
}

bool MinSetCoverProblem::verify(const std::vector<bool>& chosen) const {
  for (std::size_t e = 0; e < system.num_elements; ++e) {
    bool covered = false;
    for (std::size_t i : system.covering(e)) {
      if (chosen[i]) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

std::size_t MinSetCoverProblem::cover_size(
    const std::vector<bool>& chosen) const {
  return static_cast<std::size_t>(
      std::count(chosen.begin(), chosen.end(), true));
}

std::size_t MinSetCoverProblem::optimal_cover_size() const {
  const std::size_t n = system.subsets.size();
  if (n > 24) {
    throw std::invalid_argument("optimal_cover_size: too many subsets");
  }
  std::size_t best = n + 1;
  std::vector<bool> chosen(n);
  for (std::uint64_t bits = 0; bits < (1ull << n); ++bits) {
    for (std::size_t i = 0; i < n; ++i) chosen[i] = (bits >> i) & 1u;
    if (!verify(chosen)) continue;
    best = std::min(best, cover_size(chosen));
  }
  if (best > n) {
    throw std::runtime_error("optimal_cover_size: system has no cover");
  }
  return best;
}

}  // namespace nck
