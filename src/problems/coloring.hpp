// One-hot graph coloring problems (Sections VI-A-d and VI-A-e).
//
// Map Coloring (NP-complete): vertex v gets variables v_1..v_n (one per
// color); hard nck({v_1..v_n}, {1}) per vertex; hard nck({u_i, v_i}, {0,1})
// per edge per color. Clique Cover (NP-complete) is identical except the
// per-color constraints run over the *complement* edges (non-adjacent
// vertices must not share a color class, since classes must be cliques).
#pragma once

#include <optional>

#include "core/env.hpp"
#include "graph/graph.hpp"
#include "qubo/qubo.hpp"

namespace nck {

/// Decodes a one-hot block assignment: variable layout v * num_colors + c.
/// Returns std::nullopt if any vertex has no color or multiple colors set
/// (an invalid one-hot state — counts as an incorrect result).
std::optional<std::vector<int>> decode_one_hot(
    const std::vector<bool>& assignment, std::size_t num_vertices,
    std::size_t num_colors);

struct MapColoringProblem {
  Graph graph;
  int num_colors = 4;

  Env encode() const;

  /// Handcrafted one-hot QUBO:
  ///   sum_v (1 - sum_i x_{v,i})^2 + sum_{(uv) in E} sum_i x_{u,i} x_{v,i}.
  Qubo handcrafted_qubo() const;

  /// Only the edge-conflict terms (for mixers that enforce one-hot
  /// structure themselves, e.g. the XY Alternating Operator Ansatz).
  Qubo conflict_qubo() const;

  /// The per-vertex one-hot variable groups (variable layout
  /// v * num_colors + c).
  std::vector<std::vector<Qubo::Var>> one_hot_groups() const;

  bool verify(const std::vector<bool>& assignment) const;
  bool feasible() const;  // is the graph num_colors-colorable?
};

struct CliqueCoverProblem {
  Graph graph;
  int num_cliques = 3;

  Env encode() const;

  /// Handcrafted QUBO: one-hot penalty plus complement-edge conflicts.
  Qubo handcrafted_qubo() const;

  bool verify(const std::vector<bool>& assignment) const;
  bool feasible() const;  // coverable by num_cliques cliques?
};

}  // namespace nck
