#include "problems/ksat.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace nck {

bool KSatInstance::clause_satisfied(std::size_t c,
                                    const std::vector<bool>& x) const {
  for (const Literal& lit : clauses[c]) {
    if (x[lit.var] != lit.negated) return true;
  }
  return false;
}

bool KSatInstance::satisfied(const std::vector<bool>& x) const {
  for (std::size_t c = 0; c < clauses.size(); ++c) {
    if (!clause_satisfied(c, x)) return false;
  }
  return true;
}

std::size_t KSatInstance::num_satisfied(const std::vector<bool>& x) const {
  std::size_t n = 0;
  for (std::size_t c = 0; c < clauses.size(); ++c) {
    if (clause_satisfied(c, x)) ++n;
  }
  return n;
}

namespace {

std::vector<Literal> random_clause(std::size_t num_vars, std::size_t k,
                                   Rng& rng) {
  // k distinct variables, random signs.
  std::set<std::uint32_t> vars;
  while (vars.size() < k) {
    vars.insert(static_cast<std::uint32_t>(rng.below(num_vars)));
  }
  std::vector<Literal> clause;
  for (std::uint32_t v : vars) clause.push_back({v, rng.bernoulli(0.5)});
  return clause;
}

}  // namespace

KSatInstance random_ksat(std::size_t num_vars, std::size_t num_clauses,
                         std::size_t k, Rng& rng) {
  if (k == 0 || k > num_vars) throw std::invalid_argument("random_ksat: bad k");
  std::vector<bool> plant(num_vars);
  for (std::size_t i = 0; i < num_vars; ++i) plant[i] = rng.bernoulli(0.5);
  KSatInstance instance;
  instance.num_vars = num_vars;
  while (instance.clauses.size() < num_clauses) {
    auto clause = random_clause(num_vars, k, rng);
    // Fix up clauses the plant falsifies by flipping one literal's sign.
    bool satisfied = false;
    for (const Literal& lit : clause) {
      if (plant[lit.var] != lit.negated) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      auto& lit = clause[rng.below(clause.size())];
      lit.negated = !lit.negated;
    }
    instance.clauses.push_back(std::move(clause));
  }
  return instance;
}

KSatInstance random_ksat_unplanted(std::size_t num_vars,
                                   std::size_t num_clauses, std::size_t k,
                                   Rng& rng) {
  if (k == 0 || k > num_vars) throw std::invalid_argument("random_ksat: bad k");
  KSatInstance instance;
  instance.num_vars = num_vars;
  for (std::size_t c = 0; c < num_clauses; ++c) {
    instance.clauses.push_back(random_clause(num_vars, k, rng));
  }
  return instance;
}

Env KSatProblem::encode_dual_rail() const {
  Env env;
  const std::size_t n = instance.num_vars;
  const auto pos = env.new_vars(n, "x");
  const auto neg = env.new_vars(n, "nx");
  for (std::size_t i = 0; i < n; ++i) env.different(pos[i], neg[i]);
  for (const auto& clause : instance.clauses) {
    std::vector<VarId> collection;
    for (const Literal& lit : clause) {
      collection.push_back(lit.negated ? neg[lit.var] : pos[lit.var]);
    }
    env.at_least(collection, 1);
  }
  return env;
}

Env KSatProblem::encode_repeated() const {
  Env env;
  const auto vars = env.new_vars(instance.num_vars, "x");
  for (const auto& clause : instance.clauses) {
    std::size_t q = 0;  // number of negated literals
    for (const Literal& lit : clause) {
      if (lit.negated) ++q;
    }
    std::vector<VarId> collection;
    for (const Literal& lit : clause) {
      const std::size_t mult = lit.negated ? 1 : q + 1;
      for (std::size_t m = 0; m < mult; ++m) {
        collection.push_back(vars[lit.var]);
      }
    }
    // Weighted count == q exactly when all positives are FALSE and all
    // negated are TRUE (the falsifying assignment); allow everything else.
    std::set<unsigned> selection;
    for (unsigned s = 0; s <= collection.size(); ++s) {
      if (s != q) selection.insert(s);
    }
    env.nck(collection, selection);
  }
  return env;
}

Qubo KSatProblem::handcrafted_mis_qubo() const {
  // Node layout: occurrence j of clause c gets index offset[c] + j.
  std::vector<std::size_t> offset;
  std::size_t total = 0;
  for (const auto& clause : instance.clauses) {
    offset.push_back(total);
    total += clause.size();
  }
  Qubo q(total);
  constexpr double kPenalty = 2.0;  // > 1 so the MIS objective dominates
  for (std::size_t c = 0; c < instance.clauses.size(); ++c) {
    const auto& clause = instance.clauses[c];
    for (std::size_t j = 0; j < clause.size(); ++j) {
      const auto node = static_cast<Qubo::Var>(offset[c] + j);
      q.add_linear(node, -1.0);
      // Clique within the clause: pick at most one literal per clause.
      for (std::size_t j2 = j + 1; j2 < clause.size(); ++j2) {
        q.add_quadratic(node, static_cast<Qubo::Var>(offset[c] + j2),
                        kPenalty);
      }
      // Conflicts with opposite-sign occurrences in other clauses.
      for (std::size_t c2 = c + 1; c2 < instance.clauses.size(); ++c2) {
        const auto& clause2 = instance.clauses[c2];
        for (std::size_t j2 = 0; j2 < clause2.size(); ++j2) {
          if (clause[j].var == clause2[j2].var &&
              clause[j].negated != clause2[j2].negated) {
            q.add_quadratic(node, static_cast<Qubo::Var>(offset[c2] + j2),
                            kPenalty);
          }
        }
      }
    }
  }
  return q;
}

std::optional<std::vector<bool>> KSatProblem::decode_mis(
    const std::vector<bool>& mis_selection) const {
  std::vector<int> value(instance.num_vars, -1);
  std::size_t node = 0;
  std::size_t picked = 0;
  for (const auto& clause : instance.clauses) {
    for (const Literal& lit : clause) {
      if (node < mis_selection.size() && mis_selection[node]) {
        ++picked;
        const int want = lit.negated ? 0 : 1;
        if (value[lit.var] != -1 && value[lit.var] != want) {
          return std::nullopt;  // conflicting picks: not independent
        }
        value[lit.var] = want;
      }
      ++node;
    }
  }
  if (picked != instance.clauses.size()) return std::nullopt;
  std::vector<bool> assignment(instance.num_vars);
  for (std::size_t v = 0; v < instance.num_vars; ++v) {
    assignment[v] = value[v] == 1;  // unconstrained variables default FALSE
  }
  if (!instance.satisfied(assignment)) return std::nullopt;
  return assignment;
}

bool KSatProblem::verify(const std::vector<bool>& assignment) const {
  std::vector<bool> x(assignment.begin(),
                      assignment.begin() +
                          static_cast<std::ptrdiff_t>(instance.num_vars));
  return instance.satisfied(x);
}

}  // namespace nck
