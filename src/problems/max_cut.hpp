// Maximum Cut (Section IV-C / VI-A-g): NP-hard, and the simplest NchooseK
// program — one *soft* nck({u, v}, {1}) per edge, nothing else. Also
// provided: the paper's rejected alternative encoding with one explicit
// cut-indicator variable per edge (used by the encoding ablation bench),
// and the standard Ising/QUBO comparator.
#pragma once

#include "core/env.hpp"
#include "graph/graph.hpp"
#include "qubo/qubo.hpp"

namespace nck {

struct MaxCutProblem {
  Graph graph;

  /// Soft-edge encoding (the paper's preferred form).
  Env encode() const;

  /// Alternative encoding: per edge an extra indicator e with hard
  /// nck({u, v, e}, {0, 2}) — the XOR pattern forcing e == (u != v) — plus
  /// soft nck({e}, {1}). Demonstrates the "adds many unnecessary variables
  /// and greatly increases the number and complexity of constraints" point
  /// of Section IV-C.
  Env encode_with_edge_vars() const;

  /// Standard Ising comparator mapped to QUBO:
  ///   H = sum_{(u,v)} s_u s_v  ->  sum (2 x_u x_v - x_u - x_v) * 2 ... the
  /// conventional per-edge QUBO  -x_u - x_v + 2 x_u x_v (cut edges lower
  /// the energy by 1).
  Qubo handcrafted_qubo() const;

  std::size_t cut_of(const std::vector<bool>& side) const;
  std::size_t optimal_cut() const;
};

}  // namespace nck
