// Set-system problems (Sections VI-A-a and VI-A-b): Exact Cover
// (NP-complete, hard constraints only) and Minimum Set Cover (NP-hard,
// hard + soft). Both run on the same set system, as in the paper's
// experiments. One NchooseK variable per subset ("subset is in the cover").
#pragma once

#include <vector>

#include "core/env.hpp"
#include "qubo/qubo.hpp"
#include "util/rng.hpp"

namespace nck {

struct SetSystem {
  std::size_t num_elements = 0;
  /// subsets[i] = sorted element ids contained in subset i.
  std::vector<std::vector<std::size_t>> subsets;

  /// Subsets containing a given element.
  std::vector<std::size_t> covering(std::size_t element) const;
};

/// Random set system with a planted exact cover: the elements are first
/// partitioned into `partition_blocks` subsets (so an exact cover always
/// exists), then `extra_subsets` random subsets are added.
SetSystem random_set_system(std::size_t num_elements,
                            std::size_t partition_blocks,
                            std::size_t extra_subsets, Rng& rng);

struct ExactCoverProblem {
  SetSystem system;

  /// One hard nck(covering(e), {1}) per element.
  Env encode() const;

  /// Handcrafted QUBO (Lucas Eq. for exact cover):
  ///   H = sum_e (1 - sum_{i : e in S_i} x_i)^2.
  Qubo handcrafted_qubo() const;

  bool verify(const std::vector<bool>& chosen) const;
};

struct MinSetCoverProblem {
  SetSystem system;

  /// One hard nck(covering(e), {1..|covering(e)|}) per element (at least
  /// once) plus one soft nck({s}, {0}) per subset (minimize cover size).
  Env encode() const;

  /// Handcrafted QUBO following Lucas section 5.1: one-hot counter
  /// variables y_{e,m} ("element e is covered exactly m times"), coupling
  /// the counters to the subset variables, plus the B-weighted size term.
  /// This is the formulation whose worst case is O(n N^2) terms (Table I).
  Qubo handcrafted_qubo() const;

  bool verify(const std::vector<bool>& chosen) const;
  std::size_t cover_size(const std::vector<bool>& chosen) const;
  /// Exact minimum cover size (exhaustive over subsets; needs <= 24).
  std::size_t optimal_cover_size() const;
};

}  // namespace nck
