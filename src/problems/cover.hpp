// Set-system problems (Sections VI-A-a and VI-A-b): Exact Cover
// (NP-complete, hard constraints only) and Minimum Set Cover (NP-hard,
// hard + soft). Both run on the same set system, as in the paper's
// experiments. One NchooseK variable per subset ("subset is in the cover").
#pragma once

#include <vector>

#include "core/env.hpp"
#include "qubo/qubo.hpp"
#include "util/rng.hpp"

namespace nck {

struct SetSystem {
  std::size_t num_elements = 0;
  /// subsets[i] = sorted element ids contained in subset i.
  std::vector<std::vector<std::size_t>> subsets;

  /// Subsets containing a given element.
  std::vector<std::size_t> covering(std::size_t element) const;
};

/// Random set system with a planted exact cover: the elements are first
/// partitioned into `partition_blocks` subsets (so an exact cover always
/// exists), then `extra_subsets` random subsets are added.
SetSystem random_set_system(std::size_t num_elements,
                            std::size_t partition_blocks,
                            std::size_t extra_subsets, Rng& rng);

/// Deterministic chained set system with a *provable* minimum cover at any
/// scale (the decomposition headline instance). The num_blocks * block_size
/// elements split into disjoint blocks; block b gets three candidate
/// subsets — the full block F_b (subset b) and its two halves H1_b / H2_b
/// (subsets num_blocks + 2b and num_blocks + 2b + 1) — and each of the
/// num_blocks - 1 block boundaries gains `straddlers_per_boundary` subsets
/// of `straddler_size` elements drawn from the two adjacent halves
/// (shifted per straddler index so they differ).
///
/// Three properties make it the decomposition workload:
///  * Connected: straddlers tie adjacent blocks together, so the
///    interaction graph is one component far past any device cap.
///  * Presolve-proof: every element has at least two covering subsets
///    (F and an H), so no cover constraint is a forced singleton.
///  * Provable optimum: straddlers reach at most
///    straddlers_per_boundary + straddler_size/2 positions into a half,
///    strictly less than block_size/2, so each half keeps an element
///    covered only by {F_b, that half}. Any cover therefore needs a
///    subset from {F_b, H1_b} and one from {F_b, H2_b} for every b —
///    at least num_blocks subsets, with equality exactly for the block
///    cover {F_0..F_{num_blocks-1}}. Minimum cover == num_blocks at
///    sizes far beyond what branch-and-bound ground truth can certify,
///    and every straddler or half a large-neighborhood round picks up is
///    redundant once the neighboring blocks are chosen, so the qbsolv
///    descent provably reaches the optimum.
/// Requires block_size even and >= 4, straddler_size in [2, block_size/2],
/// and straddlers_per_boundary + straddler_size/2 <= block_size/2 (the
/// reach bound; straddler_size/2 counts each side's share, rounded up on
/// the left).
SetSystem chained_set_system(std::size_t num_blocks, std::size_t block_size,
                             std::size_t straddlers_per_boundary,
                             std::size_t straddler_size);

struct ExactCoverProblem {
  SetSystem system;

  /// One hard nck(covering(e), {1}) per element.
  Env encode() const;

  /// Handcrafted QUBO (Lucas Eq. for exact cover):
  ///   H = sum_e (1 - sum_{i : e in S_i} x_i)^2.
  Qubo handcrafted_qubo() const;

  bool verify(const std::vector<bool>& chosen) const;
};

struct MinSetCoverProblem {
  SetSystem system;

  /// One hard nck(covering(e), {1..|covering(e)|}) per element (at least
  /// once) plus one soft nck({s}, {0}) per subset (minimize cover size).
  Env encode() const;

  /// Handcrafted QUBO following Lucas section 5.1: one-hot counter
  /// variables y_{e,m} ("element e is covered exactly m times"), coupling
  /// the counters to the subset variables, plus the B-weighted size term.
  /// This is the formulation whose worst case is O(n N^2) terms (Table I).
  Qubo handcrafted_qubo() const;

  bool verify(const std::vector<bool>& chosen) const;
  std::size_t cover_size(const std::vector<bool>& chosen) const;
  /// Exact minimum cover size (exhaustive over subsets; needs <= 24).
  std::size_t optimal_cover_size() const;
};

}  // namespace nck
