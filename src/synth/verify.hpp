// Exhaustive verification that a synthesized QUBO realizes its constraint:
// used in tests and enabled in the engine's paranoid mode.
#pragma once

#include <string>

#include "synth/synthesizer.hpp"

namespace nck {

struct SynthesisCheck {
  bool ok = false;
  double observed_gap = 0.0;  // min energy over violating assignments
  std::string error;          // empty when ok
};

/// For every assignment x of the d pattern variables, computes
/// min_z f(x, z) over the 2^a ancilla settings and checks:
/// valid x -> min == 0 (within eps); invalid x -> min >= gap - eps.
SynthesisCheck verify_synthesis(const ConstraintPattern& pattern,
                                const SynthesizedQubo& synth,
                                double eps = 1e-6);

}  // namespace nck
