// Canonical form of a single nck(N, K) constraint for QUBO synthesis.
//
// A variable collection may repeat variables (Definition 1); what matters
// for synthesis is only the multiset of multiplicities and the selection
// set. Two constraints with the same canonical pattern share a QUBO
// (this is exactly the symmetric-constraint structure of Definition 7,
// refined by multiplicities), which drives the synthesis cache.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace nck {

class ConstraintPattern {
 public:
  /// `multiplicities[i]` is how many times distinct variable i appears in
  /// the collection (all >= 1); `selection` is the selection set K.
  /// The pattern canonicalizes by sorting multiplicities ascending; callers
  /// that instantiate the synthesized QUBO must order their distinct
  /// variables the same way (see Env::compile).
  ConstraintPattern(std::vector<unsigned> multiplicities,
                    std::set<unsigned> selection);

  /// Number of distinct variables d.
  std::size_t num_vars() const noexcept { return mults_.size(); }

  /// Cardinality of the variable collection (sum of multiplicities).
  unsigned cardinality() const noexcept { return cardinality_; }

  const std::vector<unsigned>& multiplicities() const noexcept { return mults_; }
  const std::set<unsigned>& selection() const noexcept { return selection_; }

  /// True if all multiplicities are 1.
  bool simple() const noexcept;

  /// True if the selection set is a contiguous integer interval.
  bool selection_contiguous() const noexcept;

  /// Does assignment x (bit i = distinct variable i) satisfy the constraint?
  bool satisfied(std::uint32_t assignment_bits) const noexcept;

  /// Weighted TRUE count  sum_i m_i x_i  for the assignment.
  unsigned weighted_count(std::uint32_t assignment_bits) const noexcept;

  /// All satisfying assignments as bitmasks, ascending. Requires d <= 20.
  std::vector<std::uint32_t> valid_assignments() const;

  /// Stable cache key, e.g. "m:1,1,2|k:0,2,4".
  std::string key() const;

  bool operator==(const ConstraintPattern& other) const noexcept {
    return mults_ == other.mults_ && selection_ == other.selection_;
  }

 private:
  std::vector<unsigned> mults_;  // sorted ascending
  std::set<unsigned> selection_;
  unsigned cardinality_ = 0;
};

}  // namespace nck
