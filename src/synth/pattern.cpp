#include "synth/pattern.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace nck {

ConstraintPattern::ConstraintPattern(std::vector<unsigned> multiplicities,
                                     std::set<unsigned> selection)
    : mults_(std::move(multiplicities)), selection_(std::move(selection)) {
  if (mults_.empty()) {
    throw std::invalid_argument("ConstraintPattern: empty variable collection");
  }
  for (unsigned m : mults_) {
    if (m == 0) {
      throw std::invalid_argument("ConstraintPattern: zero multiplicity");
    }
  }
  std::sort(mults_.begin(), mults_.end());
  cardinality_ = std::accumulate(mults_.begin(), mults_.end(), 0u);
  for (unsigned k : selection_) {
    if (k > cardinality_) {
      throw std::invalid_argument(
          "ConstraintPattern: selection value exceeds collection cardinality");
    }
  }
  if (selection_.empty()) {
    throw std::invalid_argument("ConstraintPattern: empty selection set");
  }
}

bool ConstraintPattern::simple() const noexcept {
  return std::all_of(mults_.begin(), mults_.end(),
                     [](unsigned m) { return m == 1; });
}

bool ConstraintPattern::selection_contiguous() const noexcept {
  if (selection_.empty()) return false;
  const unsigned lo = *selection_.begin();
  const unsigned hi = *selection_.rbegin();
  return selection_.size() == static_cast<std::size_t>(hi - lo + 1);
}

unsigned ConstraintPattern::weighted_count(
    std::uint32_t assignment_bits) const noexcept {
  unsigned total = 0;
  for (std::size_t i = 0; i < mults_.size(); ++i) {
    if ((assignment_bits >> i) & 1u) total += mults_[i];
  }
  return total;
}

bool ConstraintPattern::satisfied(std::uint32_t assignment_bits) const noexcept {
  return selection_.count(weighted_count(assignment_bits)) > 0;
}

std::vector<std::uint32_t> ConstraintPattern::valid_assignments() const {
  if (num_vars() > 20) {
    throw std::invalid_argument("ConstraintPattern: too many variables");
  }
  std::vector<std::uint32_t> out;
  const std::uint32_t total = 1u << num_vars();
  for (std::uint32_t bits = 0; bits < total; ++bits) {
    if (satisfied(bits)) out.push_back(bits);
  }
  return out;
}

std::string ConstraintPattern::key() const {
  std::ostringstream os;
  os << "m:";
  for (std::size_t i = 0; i < mults_.size(); ++i) {
    if (i) os << ',';
    os << mults_[i];
  }
  os << "|k:";
  bool first = true;
  for (unsigned k : selection_) {
    if (!first) os << ',';
    os << k;
    first = false;
  }
  return os.str();
}

}  // namespace nck
