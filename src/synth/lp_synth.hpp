// General constraint -> QUBO synthesis by exact linear programming, the
// native (non-Z3) path. For a candidate ancilla count `a`, the QUBO
// coefficients form an LP feasibility problem:
//
//   for every satisfying x:  f(x, z*(x)) == 0 for some chosen z*(x)   (eq)
//                            f(x, z) >= 0 for every z                 (ge)
//   for every violating x:   f(x, z) >= gap for every z               (ge)
//
// The existential choice of z*(x) is resolved by backtracking over per-row
// ancilla ground states, pruning with LP feasibility after each choice.
// Among feasible coefficient vectors, the L1 norm is minimized, which keeps
// the generated QUBOs as small and human-comparable as the handcrafted ones
// (Section VI-B).
#pragma once

#include "synth/synthesizer.hpp"

namespace nck {

struct LpSynthOptions {
  std::size_t max_ancillas = 3;
  /// Total-variable budget: patterns with d + a > max_vars are refused (the
  /// LP has a constraint row per (x, z) pair, so it grows as 2^(d+a)).
  /// NOTE: this budget (8) deliberately differs from Z3SynthOptions::
  /// max_vars (10); Z3's learned-clause search stretches two variables
  /// further. The engine-wide budget visible to lint
  /// (SynthEngine::general_var_budget, NCK-P008) is the max over the
  /// attached general synthesizers, so LP's lower budget only binds in
  /// non-Z3 builds.
  std::size_t max_vars = 8;
  double gap = 1.0;
};

class LpSynthesizer final : public ConstraintSynthesizer {
 public:
  explicit LpSynthesizer(LpSynthOptions options = {}) : options_(options) {}

  std::optional<SynthesizedQubo> synthesize(
      const ConstraintPattern& pattern) override;
  std::string name() const override { return "lp"; }
  std::size_t max_vars() const noexcept override { return options_.max_vars; }

 private:
  LpSynthOptions options_;
};

}  // namespace nck
