// Thread-safe, cross-engine synthesis memo. SynthEngine's own pattern
// cache is per-engine (and per-thread, since engines are not shared across
// threads); wiring engines to one SharedSynthCache lets a whole solver
// pool synthesize each canonical pattern once. Keys are the canonical
// pattern keys of ConstraintPattern::key().
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "synth/synthesizer.hpp"

namespace nck {

class SharedSynthCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t inserts = 0;
    std::size_t entries = 0;
  };

  std::optional<SynthesizedQubo> lookup(const std::string& key) const {
    std::shared_lock lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  void insert(const std::string& key, const SynthesizedQubo& value) {
    std::unique_lock lock(mutex_);
    map_.emplace(key, value);  // first writer wins; duplicates are identical
    inserts_.fetch_add(1, std::memory_order_relaxed);
  }

  Stats stats() const {
    std::shared_lock lock(mutex_);
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed),
            inserts_.load(std::memory_order_relaxed), map_.size()};
  }

 private:
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, SynthesizedQubo> map_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> inserts_{0};
};

}  // namespace nck
