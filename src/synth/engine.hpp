// Synthesis engine: the front end the compiler calls per constraint.
// Tries closed-form constructions first, then the general synthesizers,
// and memoizes by canonical pattern. The paper (Section VIII-C) observes
// that *not* caching symmetric constraints costs 40-50x in compile time;
// the cache here is what `bench_ablation_cache` turns off to reproduce that.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "synth/shared_cache.hpp"
#include "synth/synthesizer.hpp"

namespace nck {

struct SynthEngineOptions {
  bool use_builtin = true;   // closed forms for contiguous selection sets
  bool use_cache = true;     // memoize per canonical pattern
  bool prefer_z3 = true;     // general path order: z3 then lp (if available)
  bool verify = false;       // exhaustively verify every synthesis (tests)
  std::size_t max_ancillas = 3;
};

struct SynthEngineStats {
  std::size_t requests = 0;
  std::size_t cache_hits = 0;
  std::size_t shared_hits = 0;  // served from an attached SharedSynthCache
  std::size_t builtin_hits = 0;
  std::size_t z3_calls = 0;
  std::size_t lp_calls = 0;
};

class SynthEngine {
 public:
  explicit SynthEngine(SynthEngineOptions options = {});

  /// Synthesizes (or recalls) the QUBO for a pattern. Returned by value:
  /// results stay valid across subsequent calls regardless of the cache
  /// setting (a reference into engine-owned storage was silently
  /// invalidated by the next uncached call). Throws std::runtime_error if
  /// no synthesizer succeeds within the ancilla budget, or if verification
  /// is on and fails.
  SynthesizedQubo synthesize(const ConstraintPattern& pattern);

  const SynthEngineStats& stats() const noexcept { return stats_; }

  /// Largest d + a any attached *general* synthesizer accepts (the max over
  /// their max_vars() budgets). Constraints with more distinct variables
  /// than this that also miss the closed forms cannot be synthesized; the
  /// NCK-P008 lint pass uses this to reject them before compile.
  std::size_t general_var_budget() const noexcept;

  /// Whether closed-form constructions are enabled (contiguous selection
  /// sets bypass the general budget entirely when they are).
  bool builtin_enabled() const noexcept { return options_.use_builtin; }

  void reset_stats() noexcept { stats_ = {}; }
  void clear_cache() { cache_.clear(); }

  /// Attaches a cross-engine synthesis memo (may be null to detach). On a
  /// local-cache miss the shared cache is consulted before synthesizing,
  /// and fresh syntheses are published to it. The cache must outlive the
  /// engine; the engine itself stays single-threaded.
  void set_shared_cache(SharedSynthCache* shared) noexcept { shared_ = shared; }

 private:
  SynthesizedQubo synthesize_uncached(const ConstraintPattern& pattern);

  SynthEngineOptions options_;
  SynthEngineStats stats_;
  std::vector<std::unique_ptr<ConstraintSynthesizer>> general_;
  std::unique_ptr<ConstraintSynthesizer> builtin_;
  std::unordered_map<std::string, SynthesizedQubo> cache_;
  SharedSynthCache* shared_ = nullptr;
};

}  // namespace nck
