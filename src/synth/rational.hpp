// Exact rational arithmetic over 128-bit integers, used by the simplex-based
// QUBO coefficient synthesizer where floating-point feasibility decisions
// would be unsound. Overflow is detected and reported by exception (the
// synthesis engine then falls back to the Z3 path).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace nck {

/// Thrown when an exact computation would exceed 128-bit range.
class RationalOverflow : public std::runtime_error {
 public:
  RationalOverflow() : std::runtime_error("rational arithmetic overflow") {}
};

class Rational {
 public:
  using Int = __int128;

  constexpr Rational() noexcept : num_(0), den_(1) {}
  Rational(long long n) : num_(n), den_(1) {}  // NOLINT: implicit by design
  Rational(long long n, long long d);

  static Rational from_int128(Int n, Int d);

  Int num() const noexcept { return num_; }
  Int den() const noexcept { return den_; }

  bool is_zero() const noexcept { return num_ == 0; }
  bool is_negative() const noexcept { return num_ < 0; }
  bool is_integer() const noexcept { return den_ == 1; }

  double to_double() const noexcept;
  std::string to_string() const;

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;
  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const noexcept {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const noexcept { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator<=(const Rational& o) const { return !(o < *this); }
  bool operator>=(const Rational& o) const { return !(*this < o); }

 private:
  void normalize();
  static Int checked_mul(Int a, Int b);

  Int num_;
  Int den_;  // > 0 always
};

}  // namespace nck
