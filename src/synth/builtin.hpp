// Closed-form QUBO constructions for the common constraint shapes, avoiding
// any search. Handles:
//   * trivial selection sets K == {0..cardinality}        -> zero QUBO
//   * singleton K == {k}                                  -> (sum m_i x_i - k)^2
//   * contiguous K == {lo..hi}                            -> squared distance
//     with ceil(log2(hi-lo+1)) binary slack ancillas
// Non-contiguous selection sets (e.g. the XOR pattern {0,2}) fall through to
// the general synthesizers.
#pragma once

#include "synth/synthesizer.hpp"

namespace nck {

class BuiltinSynthesizer final : public ConstraintSynthesizer {
 public:
  std::optional<SynthesizedQubo> synthesize(
      const ConstraintPattern& pattern) override;
  std::string name() const override { return "builtin"; }
};

}  // namespace nck
