// Exact two-phase primal simplex over rationals (Bland's rule, so no
// cycling). Sized for the QUBO-coefficient synthesis LPs: tens of columns,
// up to a few thousand rows. Not a general-purpose LP library.
#pragma once

#include <vector>

#include "synth/rational.hpp"

namespace nck {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  std::vector<Rational> x;  // primal solution (only when kOptimal)
  Rational objective;
};

/// Linear program in the mixed form used by the synthesizer:
///
///   minimize    c' x
///   subject to  A_eq x  = b_eq
///               A_ge x >= b_ge
///               x >= 0
///
/// All rows must have exactly `num_vars` entries.
struct LinearProgram {
  std::size_t num_vars = 0;
  std::vector<std::vector<Rational>> a_eq;
  std::vector<Rational> b_eq;
  std::vector<std::vector<Rational>> a_ge;
  std::vector<Rational> b_ge;
  std::vector<Rational> c;  // size num_vars; empty means pure feasibility

  void add_eq(std::vector<Rational> row, Rational rhs);
  void add_ge(std::vector<Rational> row, Rational rhs);

  /// Push/pop-style row scoping for incremental reuse: mark() remembers the
  /// current row counts, rewind() drops every row added since. The LP
  /// synthesizer's DFS appends its per-node ground-state equalities to one
  /// persistent program and rewinds after solving, instead of copying the
  /// whole (2^(d+a)-row) base per node.
  struct Mark {
    std::size_t num_eq = 0;
    std::size_t num_ge = 0;
  };
  Mark mark() const noexcept { return {a_eq.size(), a_ge.size()}; }
  void rewind(const Mark& m);
};

LpResult solve_lp(const LinearProgram& lp);

}  // namespace nck
