#include "synth/lp_synth.hpp"

#include <cstdint>

#include "synth/simplex.hpp"
#include "util/logging.hpp"

namespace nck {
namespace {

// Coefficient layout for v = d + a QUBO variables:
//   index 0: constant offset
//   1 .. v: linear coefficients
//   v+1 ..: quadratic coefficients (i < j in row-major pair order)
struct CoeffLayout {
  std::size_t v;
  std::size_t count;

  explicit CoeffLayout(std::size_t v_) : v(v_), count(1 + v_ + v_ * (v_ - 1) / 2) {}

  std::size_t offset() const { return 0; }
  std::size_t linear(std::size_t i) const { return 1 + i; }
  std::size_t quadratic(std::size_t i, std::size_t j) const {
    if (i > j) std::swap(i, j);
    // Pairs ordered (0,1),(0,2),...,(0,v-1),(1,2),...
    return 1 + v + i * v - i * (i + 1) / 2 + (j - i - 1);
  }
};

// Row of the LP for evaluating f at assignment `bits` over v variables:
// coefficient k gets weight 1 if its monomial is active.
std::vector<Rational> eval_row(const CoeffLayout& lay, std::uint32_t bits) {
  std::vector<Rational> row(lay.count, Rational(0));
  row[lay.offset()] = Rational(1);
  for (std::size_t i = 0; i < lay.v; ++i) {
    if (!((bits >> i) & 1u)) continue;
    row[lay.linear(i)] = Rational(1);
    for (std::size_t j = i + 1; j < lay.v; ++j) {
      if ((bits >> j) & 1u) row[lay.quadratic(i, j)] = Rational(1);
    }
  }
  return row;
}

// Free coefficients are split as coeff = pos - neg with pos, neg >= 0; the
// LP variable vector is [pos_0..pos_{c-1}, neg_0..neg_{c-1}].
std::vector<Rational> split_row(const std::vector<Rational>& row) {
  std::vector<Rational> out;
  out.reserve(row.size() * 2);
  for (const auto& r : row) out.push_back(r);
  for (const auto& r : row) out.push_back(-r);
  return out;
}

struct SearchContext {
  const ConstraintPattern& pattern;
  CoeffLayout lay;
  std::size_t num_ancillas;
  Rational gap;
  // Constant part of the LP (inequalities shared by all branches).
  LinearProgram base;
  std::vector<std::uint32_t> valid;  // satisfying assignments over d vars

  SearchContext(const ConstraintPattern& p, std::size_t a, Rational g)
      : pattern(p), lay(p.num_vars() + a), num_ancillas(a), gap(g) {
    base.num_vars = lay.count * 2;
    const std::size_t d = p.num_vars();
    const std::uint32_t num_z = 1u << a;
    for (std::uint32_t x = 0; x < (1u << d); ++x) {
      const bool ok = p.satisfied(x);
      if (ok) valid.push_back(x);
      for (std::uint32_t z = 0; z < num_z; ++z) {
        const std::uint32_t bits = x | (z << d);
        base.add_ge(split_row(eval_row(lay, bits)), ok ? Rational(0) : gap);
      }
    }
  }

  // Solves the LP with ground-state equalities for valid rows [0, chosen.size())
  // fixed to the given ancilla values. `minimize_l1` adds the L1 objective.
  // The per-node equalities are pushed onto the persistent base program and
  // rewound after the solve (mark/rewind scoping) — the DFS never copies the
  // 2^(d+a)-row inequality block.
  LpResult solve(const std::vector<std::uint32_t>& chosen, bool minimize_l1) {
    const LinearProgram::Mark scope = base.mark();
    const std::size_t d = pattern.num_vars();
    for (std::size_t i = 0; i < chosen.size(); ++i) {
      const std::uint32_t bits = valid[i] | (chosen[i] << d);
      base.add_eq(split_row(eval_row(lay, bits)), Rational(0));
    }
    if (minimize_l1) {
      base.c.assign(base.num_vars, Rational(1));
    }
    LpResult result = solve_lp(base);
    base.rewind(scope);
    base.c.clear();
    return result;
  }

  // Depth-first search over per-valid-row ancilla ground choices.
  bool search(std::vector<std::uint32_t>& chosen) {
    if (chosen.size() == valid.size()) return true;
    const std::uint32_t num_z = 1u << num_ancillas;
    for (std::uint32_t z = 0; z < num_z; ++z) {
      chosen.push_back(z);
      if (solve(chosen, /*minimize_l1=*/false).status == LpStatus::kOptimal &&
          search(chosen)) {
        return true;
      }
      chosen.pop_back();
    }
    return false;
  }
};

}  // namespace

std::optional<SynthesizedQubo> LpSynthesizer::synthesize(
    const ConstraintPattern& pattern) {
  const std::size_t d = pattern.num_vars();
  const Rational gap(static_cast<long long>(options_.gap));

  for (std::size_t a = 0; a <= options_.max_ancillas; ++a) {
    if (d + a > options_.max_vars) break;
    try {
      SearchContext ctx(pattern, a, gap);
      if (ctx.valid.empty()) {
        // Unsatisfiable constraint: cannot be expressed as a gap-respecting
        // QUBO with a zero ground state. Callers reject these earlier.
        return std::nullopt;
      }
      std::vector<std::uint32_t> chosen;
      if (!ctx.search(chosen)) continue;  // needs more ancillas
      LpResult final = ctx.solve(chosen, /*minimize_l1=*/true);
      if (final.status != LpStatus::kOptimal) {
        // Feasible during search but objective failed -> internal issue.
        Log(LogLevel::kWarn) << "lp_synth: L1 phase failed for "
                             << pattern.key() << "; retrying feasibility only";
        final = ctx.solve(chosen, /*minimize_l1=*/false);
        if (final.status != LpStatus::kOptimal) continue;
      }

      SynthesizedQubo out;
      out.num_vars = d;
      out.num_ancillas = a;
      out.gap = options_.gap;
      out.method = "lp";
      const CoeffLayout& lay = ctx.lay;
      auto coeff = [&](std::size_t k) {
        return (final.x[k] - final.x[lay.count + k]).to_double();
      };
      Qubo q(d + a);
      q.add_offset(coeff(lay.offset()));
      for (std::size_t i = 0; i < d + a; ++i) {
        q.add_linear(static_cast<Qubo::Var>(i), coeff(lay.linear(i)));
      }
      for (std::size_t i = 0; i < d + a; ++i) {
        for (std::size_t j = i + 1; j < d + a; ++j) {
          const double c = coeff(lay.quadratic(i, j));
          if (c != 0.0) {
            q.add_quadratic(static_cast<Qubo::Var>(i),
                            static_cast<Qubo::Var>(j), c);
          }
        }
      }
      out.qubo = std::move(q);
      return out;
    } catch (const RationalOverflow&) {
      Log(LogLevel::kWarn) << "lp_synth: rational overflow for "
                           << pattern.key() << " with " << a << " ancillas";
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace nck
