#include "synth/builtin.hpp"

#include <cmath>
#include <vector>

namespace nck {

Qubo square_of_linear(std::span<const double> coeffs, double c0) {
  Qubo q(coeffs.size());
  q.add_offset(c0 * c0);
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    // c_i^2 y_i^2 + 2 c0 c_i y_i, with y^2 == y folded together.
    q.add_linear(static_cast<Qubo::Var>(i),
                 coeffs[i] * coeffs[i] + 2.0 * c0 * coeffs[i]);
    for (std::size_t j = i + 1; j < coeffs.size(); ++j) {
      q.add_quadratic(static_cast<Qubo::Var>(i), static_cast<Qubo::Var>(j),
                      2.0 * coeffs[i] * coeffs[j]);
    }
  }
  return q;
}

std::optional<SynthesizedQubo> BuiltinSynthesizer::synthesize(
    const ConstraintPattern& p) {
  if (!p.selection_contiguous()) return std::nullopt;
  const unsigned lo = *p.selection().begin();
  const unsigned hi = *p.selection().rbegin();
  const std::size_t d = p.num_vars();

  SynthesizedQubo out;
  out.num_vars = d;
  out.gap = 1.0;

  if (lo == 0 && hi == p.cardinality()) {
    // Every assignment satisfies the constraint.
    out.qubo = Qubo(d);
    out.method = "builtin-trivial";
    return out;
  }

  std::vector<double> coeffs(p.multiplicities().begin(),
                             p.multiplicities().end());

  if (lo == 0 && hi == 1) {
    // At-most-one (weighted): pairwise penalties catch any two TRUE
    // variables; variables with multiplicity >= 2 can never be TRUE.
    Qubo q(d);
    for (std::size_t i = 0; i < d; ++i) {
      if (p.multiplicities()[i] >= 2) {
        q.add_linear(static_cast<Qubo::Var>(i), 1.0);
      }
      for (std::size_t j = i + 1; j < d; ++j) {
        q.add_quadratic(static_cast<Qubo::Var>(i), static_cast<Qubo::Var>(j),
                        1.0);
      }
    }
    out.qubo = std::move(q);
    out.num_ancillas = 0;
    out.method = "builtin-at-most-one";
    return out;
  }

  if (lo == 1 && hi == p.cardinality() && d == 2) {
    // At-least-one over two variables: the paper's Section V QUBO
    // f(a, b) = ab - a - b, normalized to ground energy 0.
    Qubo q(d);
    q.add_offset(1.0);
    q.add_linear(0, -1.0);
    q.add_linear(1, -1.0);
    q.add_quadratic(0, 1, 1.0);
    out.qubo = std::move(q);
    out.num_ancillas = 0;
    out.method = "builtin-at-least-one-pair";
    return out;
  }

  if (lo == hi) {
    // Exactly-k: (sum m_i x_i - k)^2. Integer-valued, so gap >= 1... in fact
    // the gap is (distance)^2 >= 1 with ground exactly 0 for valid rows.
    out.qubo = square_of_linear(coeffs, -static_cast<double>(lo));
    out.num_ancillas = 0;
    out.method = "builtin-exact-k";
    return out;
  }

  // Contiguous interval {lo..hi}: (sum m_i x_i - lo - slack)^2 where the
  // binary slack weights cover exactly 0..(hi - lo).
  const unsigned span = hi - lo;  // >= 1 here
  std::vector<double> weights;
  unsigned covered = 0;
  while (covered < span) {
    // Next power-of-two weight, truncated so total coverage is exactly span.
    unsigned w = covered + 1;  // doubles coverage: 1, 2, 4, ...
    if (covered + w > span) w = span - covered;
    weights.push_back(static_cast<double>(w));
    covered += w;
  }
  for (double w : weights) coeffs.push_back(-w);
  out.qubo = square_of_linear(coeffs, -static_cast<double>(lo));
  out.num_ancillas = weights.size();
  out.method = "builtin-interval";
  return out;
}

}  // namespace nck
