#include "synth/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "synth/builtin.hpp"
#include "synth/lp_synth.hpp"
#include "synth/verify.hpp"
#if NCK_HAVE_Z3
#include "synth/z3_synth.hpp"
#endif

namespace nck {

SynthEngine::SynthEngine(SynthEngineOptions options) : options_(options) {
  builtin_ = std::make_unique<BuiltinSynthesizer>();
  auto add_lp = [&] {
    LpSynthOptions lp;
    lp.max_ancillas = options_.max_ancillas;
    general_.push_back(std::make_unique<LpSynthesizer>(lp));
  };
#if NCK_HAVE_Z3
  auto add_z3 = [&] {
    Z3SynthOptions z3;
    z3.max_ancillas = options_.max_ancillas;
    general_.push_back(std::make_unique<Z3Synthesizer>(z3));
  };
  if (options_.prefer_z3) {
    add_z3();
    add_lp();
  } else {
    add_lp();
    add_z3();
  }
#else
  add_lp();
#endif
}

std::size_t SynthEngine::general_var_budget() const noexcept {
  std::size_t budget = 0;
  for (const auto& synth : general_) {
    budget = std::max(budget, synth->max_vars());
  }
  return budget;
}

SynthesizedQubo SynthEngine::synthesize_uncached(
    const ConstraintPattern& pattern) {
  if (options_.use_builtin) {
    if (auto result = builtin_->synthesize(pattern)) {
      ++stats_.builtin_hits;
      return std::move(*result);
    }
  }
  for (const auto& synth : general_) {
    if (synth->name() == "z3") {
      ++stats_.z3_calls;
    } else {
      ++stats_.lp_calls;
    }
    if (auto result = synth->synthesize(pattern)) {
      return std::move(*result);
    }
  }
  throw std::runtime_error("SynthEngine: no synthesizer handled pattern " +
                           pattern.key());
}

SynthesizedQubo SynthEngine::synthesize(const ConstraintPattern& pattern) {
  ++stats_.requests;
  const std::string key = pattern.key();
  if (options_.use_cache) {
    if (auto it = cache_.find(key); it != cache_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }
    if (shared_ != nullptr) {
      if (auto found = shared_->lookup(key)) {
        ++stats_.cache_hits;
        ++stats_.shared_hits;
        return cache_.emplace(key, std::move(*found)).first->second;
      }
    }
  }
  SynthesizedQubo result = synthesize_uncached(pattern);
  if (options_.verify) {
    const SynthesisCheck check = verify_synthesis(pattern, result);
    if (!check.ok) {
      throw std::runtime_error("SynthEngine: verification failed for " + key +
                               " (" + result.method + "): " + check.error);
    }
  }
  if (options_.use_cache) {
    const SynthesizedQubo& stored =
        cache_.emplace(key, std::move(result)).first->second;
    if (shared_ != nullptr) shared_->insert(key, stored);
    return stored;
  }
  return result;
}

}  // namespace nck
