#include "synth/z3_synth.hpp"

#if NCK_HAVE_Z3

#include <z3++.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.hpp"

namespace nck {

// The incremental SMT session: context, solver, and coefficient-variable
// pools persist across synthesize() calls; per-attempt state (coefficient
// bounds, ground/gap assertions) lives in a push/pop scope. Z3 constants
// are context-level and unscoped — variables from larger past attempts
// are simply unconstrained inside later scopes, which is harmless.
struct Z3Synthesizer::Incremental {
  z3::context ctx;
  z3::solver solver;
  z3::expr offset;
  std::vector<z3::expr> lin;
  std::vector<std::vector<z3::expr>> quad;  // quad[i][j - i - 1], i < j

  Incremental() : solver(ctx), offset(ctx.int_const("c")) {}

  const z3::expr& linear(std::size_t i) {
    while (lin.size() <= i) {
      const std::string name = "a" + std::to_string(lin.size());
      lin.push_back(ctx.int_const(name.c_str()));
    }
    return lin[i];
  }

  const z3::expr& quadratic(std::size_t i, std::size_t j) {
    while (quad.size() <= i) quad.emplace_back();
    std::vector<z3::expr>& row = quad[i];
    while (row.size() < j - i) {
      const std::size_t jj = i + 1 + row.size();
      const std::string name =
          "b" + std::to_string(i) + "_" + std::to_string(jj);
      row.push_back(ctx.int_const(name.c_str()));
    }
    return row[j - i - 1];
  }

  // Symbolic energy f(bits) = offset + sum a_i + sum b_ij over the
  // monomials active in `bits`.
  z3::expr energy(std::uint32_t bits, std::size_t v) {
    z3::expr e = offset;
    for (std::size_t i = 0; i < v; ++i) {
      if (!((bits >> i) & 1u)) continue;
      e = e + linear(i);
      for (std::size_t j = i + 1; j < v; ++j) {
        if ((bits >> j) & 1u) e = e + quadratic(i, j);
      }
    }
    return e;
  }
};

Z3Synthesizer::Z3Synthesizer(Z3SynthOptions options) : options_(options) {}

Z3Synthesizer::~Z3Synthesizer() = default;

std::optional<SynthesizedQubo> Z3Synthesizer::synthesize(
    const ConstraintPattern& pattern) {
  const std::size_t d = pattern.num_vars();

  std::vector<std::uint32_t> valid = pattern.valid_assignments();
  if (valid.empty()) return std::nullopt;

  if (!inc_) inc_ = std::make_unique<Incremental>();
  Incremental& inc = *inc_;

  for (std::size_t a = 0; a <= options_.max_ancillas; ++a) {
    const std::size_t v = d + a;
    if (v > options_.max_vars) break;
    const std::uint32_t num_z = 1u << a;

    for (long long bound = options_.initial_bound; bound <= options_.max_bound;
         bound *= 2) {
      inc.solver.push();

      auto bound_var = [&](const z3::expr& e) {
        inc.solver.add(
            e >= inc.ctx.int_val(static_cast<std::int64_t>(-bound)) &&
            e <= inc.ctx.int_val(static_cast<std::int64_t>(bound)));
      };
      bound_var(inc.offset);
      for (std::size_t i = 0; i < v; ++i) bound_var(inc.linear(i));
      for (std::size_t i = 0; i < v; ++i) {
        for (std::size_t j = i + 1; j < v; ++j) bound_var(inc.quadratic(i, j));
      }

      for (std::uint32_t x = 0; x < (1u << d); ++x) {
        const bool ok = pattern.satisfied(x);
        z3::expr_vector ground_options(inc.ctx);
        for (std::uint32_t z = 0; z < num_z; ++z) {
          const std::uint32_t bits = x | (z << d);
          z3::expr f = inc.energy(bits, v);
          if (ok) {
            inc.solver.add(f >= 0);
            ground_options.push_back(f == 0);
          } else {
            inc.solver.add(f >= 1);
          }
        }
        if (ok) inc.solver.add(z3::mk_or(ground_options));
      }

      if (inc.solver.check() != z3::sat) {
        inc.solver.pop();
        continue;
      }

      z3::model model = inc.solver.get_model();
      auto value = [&](const z3::expr& e) {
        return static_cast<double>(model.eval(e, true).get_numeral_int64());
      };
      SynthesizedQubo out;
      out.num_vars = d;
      out.num_ancillas = a;
      out.gap = 1.0;
      out.method = "z3";
      Qubo q(v);
      q.add_offset(value(inc.offset));
      for (std::size_t i = 0; i < v; ++i) {
        q.add_linear(static_cast<Qubo::Var>(i), value(inc.linear(i)));
      }
      for (std::size_t i = 0; i < v; ++i) {
        for (std::size_t j = i + 1; j < v; ++j) {
          const double c = value(inc.quadratic(i, j));
          if (c != 0.0) {
            q.add_quadratic(static_cast<Qubo::Var>(i),
                            static_cast<Qubo::Var>(j), c);
          }
        }
      }
      out.qubo = std::move(q);
      inc.solver.pop();
      return out;
    }
    Log(LogLevel::kDebug) << "z3_synth: " << pattern.key() << " needs more than "
                          << a << " ancillas (or larger coefficients)";
  }
  return std::nullopt;
}

}  // namespace nck

#endif  // NCK_HAVE_Z3
