#include "synth/z3_synth.hpp"

#if NCK_HAVE_Z3

#include <z3++.h>

#include <cstdint>
#include <vector>

#include "util/logging.hpp"

namespace nck {
namespace {

// Builds the symbolic energy f(bits) = offset + sum a_i + sum b_ij over the
// monomials active in `bits`.
z3::expr energy_expr(z3::context& /*ctx*/, const z3::expr& offset,
                     const std::vector<z3::expr>& lin,
                     const std::vector<std::vector<int>>& quad_index,
                     const std::vector<z3::expr>& quad, std::uint32_t bits,
                     std::size_t v) {
  z3::expr e = offset;
  for (std::size_t i = 0; i < v; ++i) {
    if (!((bits >> i) & 1u)) continue;
    e = e + lin[i];
    for (std::size_t j = i + 1; j < v; ++j) {
      if ((bits >> j) & 1u) e = e + quad[static_cast<std::size_t>(quad_index[i][j])];
    }
  }
  return e;
}

}  // namespace

std::optional<SynthesizedQubo> Z3Synthesizer::synthesize(
    const ConstraintPattern& pattern) {
  const std::size_t d = pattern.num_vars();

  std::vector<std::uint32_t> valid = pattern.valid_assignments();
  if (valid.empty()) return std::nullopt;

  for (std::size_t a = 0; a <= options_.max_ancillas; ++a) {
    const std::size_t v = d + a;
    if (v > options_.max_vars) break;
    const std::uint32_t num_z = 1u << a;

    for (long long bound = options_.initial_bound; bound <= options_.max_bound;
         bound *= 2) {
      z3::context ctx;
      z3::solver solver(ctx);

      z3::expr offset = ctx.int_const("c");
      std::vector<z3::expr> lin;
      for (std::size_t i = 0; i < v; ++i) {
        std::string lin_name = "a";
        lin_name += std::to_string(i);
        lin.push_back(ctx.int_const(lin_name.c_str()));
      }
      std::vector<std::vector<int>> quad_index(v, std::vector<int>(v, -1));
      std::vector<z3::expr> quad;
      for (std::size_t i = 0; i < v; ++i) {
        for (std::size_t j = i + 1; j < v; ++j) {
          quad_index[i][j] = static_cast<int>(quad.size());
          std::string quad_name = "b";
          quad_name += std::to_string(i);
          quad_name += "_";
          quad_name += std::to_string(j);
          quad.push_back(ctx.int_const(quad_name.c_str()));
        }
      }

      auto bound_var = [&](const z3::expr& e) {
        solver.add(e >= ctx.int_val(static_cast<std::int64_t>(-bound)) &&
                   e <= ctx.int_val(static_cast<std::int64_t>(bound)));
      };
      bound_var(offset);
      for (const auto& e : lin) bound_var(e);
      for (const auto& e : quad) bound_var(e);

      for (std::uint32_t x = 0; x < (1u << d); ++x) {
        const bool ok = pattern.satisfied(x);
        z3::expr_vector ground_options(ctx);
        for (std::uint32_t z = 0; z < num_z; ++z) {
          const std::uint32_t bits = x | (z << d);
          z3::expr f = energy_expr(ctx, offset, lin, quad_index, quad, bits, v);
          if (ok) {
            solver.add(f >= 0);
            ground_options.push_back(f == 0);
          } else {
            solver.add(f >= 1);
          }
        }
        if (ok) solver.add(z3::mk_or(ground_options));
      }

      if (solver.check() != z3::sat) continue;

      z3::model model = solver.get_model();
      auto value = [&](const z3::expr& e) {
        return static_cast<double>(model.eval(e, true).get_numeral_int64());
      };
      SynthesizedQubo out;
      out.num_vars = d;
      out.num_ancillas = a;
      out.gap = 1.0;
      out.method = "z3";
      Qubo q(v);
      q.add_offset(value(offset));
      for (std::size_t i = 0; i < v; ++i) {
        q.add_linear(static_cast<Qubo::Var>(i), value(lin[i]));
      }
      for (std::size_t i = 0; i < v; ++i) {
        for (std::size_t j = i + 1; j < v; ++j) {
          const double c = value(quad[static_cast<std::size_t>(quad_index[i][j])]);
          if (c != 0.0) {
            q.add_quadratic(static_cast<Qubo::Var>(i),
                            static_cast<Qubo::Var>(j), c);
          }
        }
      }
      out.qubo = std::move(q);
      return out;
    }
    Log(LogLevel::kDebug) << "z3_synth: " << pattern.key() << " needs more than "
                          << a << " ancillas (or larger coefficients)";
  }
  return std::nullopt;
}

}  // namespace nck

#endif  // NCK_HAVE_Z3
