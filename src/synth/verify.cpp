#include "synth/verify.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "qubo/brute_force.hpp"

namespace nck {

SynthesisCheck verify_synthesis(const ConstraintPattern& pattern,
                                const SynthesizedQubo& synth, double eps) {
  SynthesisCheck check;
  const std::size_t d = synth.num_vars;
  const std::size_t a = synth.num_ancillas;
  if (d != pattern.num_vars()) {
    check.error = "variable count mismatch";
    return check;
  }
  if (synth.qubo.num_variables() > d + a) {
    check.error = "QUBO touches variables beyond d + a";
    return check;
  }
  const std::vector<double> minima =
      ancilla_projected_minima(synth.qubo, d, a);
  double min_violating = std::numeric_limits<double>::infinity();
  for (std::uint32_t xb = 0; xb < (1u << d); ++xb) {
    const double best = minima[xb];
    if (pattern.satisfied(xb)) {
      if (std::abs(best) > eps) {
        std::ostringstream os;
        os << "valid assignment " << xb << " has ground energy " << best;
        check.error = os.str();
        return check;
      }
    } else {
      min_violating = std::min(min_violating, best);
      if (best < synth.gap - eps) {
        std::ostringstream os;
        os << "violating assignment " << xb << " has energy " << best
           << " below gap " << synth.gap;
        check.error = os.str();
        return check;
      }
    }
  }
  check.ok = true;
  check.observed_gap =
      std::isinf(min_violating) ? synth.gap : min_violating;
  return check;
}

}  // namespace nck
