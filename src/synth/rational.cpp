#include "synth/rational.hpp"

namespace nck {
namespace {

using Int = Rational::Int;

Int int_abs(Int x) noexcept { return x < 0 ? -x : x; }

Int gcd(Int a, Int b) noexcept {
  a = int_abs(a);
  b = int_abs(b);
  while (b != 0) {
    const Int t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

Rational::Int Rational::checked_mul(Int a, Int b) {
  if (a == 0 || b == 0) return 0;
  const Int r = a * b;
  if (r / b != a) throw RationalOverflow();
  return r;
}

Rational::Rational(long long n, long long d) : num_(n), den_(d) {
  if (d == 0) throw std::invalid_argument("Rational: zero denominator");
  normalize();
}

Rational Rational::from_int128(Int n, Int d) {
  if (d == 0) throw std::invalid_argument("Rational: zero denominator");
  Rational r;
  r.num_ = n;
  r.den_ = d;
  r.normalize();
  return r;
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  const Int g = gcd(num_, den_);
  num_ /= g;
  den_ /= g;
}

double Rational::to_double() const noexcept {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  auto int_to_string = [](Int v) {
    if (v == 0) return std::string("0");
    const bool neg = v < 0;
    if (neg) v = -v;
    std::string s;
    while (v > 0) {
      s.push_back(static_cast<char>('0' + static_cast<int>(v % 10)));
      v /= 10;
    }
    if (neg) s.push_back('-');
    return std::string(s.rbegin(), s.rend());
  };
  if (den_ == 1) return int_to_string(num_);
  return int_to_string(num_) + "/" + int_to_string(den_);
}

Rational Rational::operator-() const {
  Rational r = *this;
  r.num_ = -r.num_;
  return r;
}

Rational Rational::operator+(const Rational& o) const {
  const Int g = gcd(den_, o.den_);
  const Int lhs_scale = o.den_ / g;
  const Int rhs_scale = den_ / g;
  const Int n = checked_mul(num_, lhs_scale) + checked_mul(o.num_, rhs_scale);
  const Int d = checked_mul(den_, lhs_scale);
  return from_int128(n, d);
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  // Cross-reduce before multiplying to keep magnitudes small.
  const Int g1 = gcd(num_, o.den_);
  const Int g2 = gcd(o.num_, den_);
  const Int n = checked_mul(num_ / g1, o.num_ / g2);
  const Int d = checked_mul(den_ / g2, o.den_ / g1);
  return from_int128(n, d);
}

Rational Rational::operator/(const Rational& o) const {
  if (o.num_ == 0) throw std::invalid_argument("Rational: division by zero");
  return *this * from_int128(o.den_, o.num_);
}

bool Rational::operator<(const Rational& o) const {
  // num_/den_ < o.num_/o.den_  <=>  num_*o.den_ < o.num_*den_ (dens > 0).
  return checked_mul(num_, o.den_) < checked_mul(o.num_, den_);
}

}  // namespace nck
