#include "synth/simplex.hpp"

#include <stdexcept>

namespace nck {

void LinearProgram::add_eq(std::vector<Rational> row, Rational rhs) {
  if (row.size() != num_vars) {
    throw std::invalid_argument("LinearProgram::add_eq: row size mismatch");
  }
  a_eq.push_back(std::move(row));
  b_eq.push_back(rhs);
}

void LinearProgram::add_ge(std::vector<Rational> row, Rational rhs) {
  if (row.size() != num_vars) {
    throw std::invalid_argument("LinearProgram::add_ge: row size mismatch");
  }
  a_ge.push_back(std::move(row));
  b_ge.push_back(rhs);
}

void LinearProgram::rewind(const Mark& m) {
  if (m.num_eq > a_eq.size() || m.num_ge > a_ge.size()) {
    throw std::invalid_argument("LinearProgram::rewind: stale mark");
  }
  a_eq.resize(m.num_eq);
  b_eq.resize(m.num_eq);
  a_ge.resize(m.num_ge);
  b_ge.resize(m.num_ge);
}

namespace {

// Dense rational tableau. Layout: `a` is m x n, basis[i] is the basic
// variable of row i. Costs are kept in a separate reduced-cost row `z`
// with objective value in z_rhs (minimization; z holds c_B B^-1 A - c).
class Tableau {
 public:
  Tableau(std::size_t m, std::size_t n) : m_(m), n_(n), a_(m, std::vector<Rational>(n)), b_(m), basis_(m) {}

  std::vector<std::vector<Rational>>& a() { return a_; }
  std::vector<Rational>& b() { return b_; }
  std::vector<std::size_t>& basis() { return basis_; }

  // Pivots on (row, col): row scaled so a[row][col] == 1, then eliminated
  // from all other rows and from the cost row.
  void pivot(std::size_t row, std::size_t col, std::vector<Rational>& z,
             Rational& z_rhs) {
    const Rational p = a_[row][col];
    for (std::size_t j = 0; j < n_; ++j) a_[row][j] /= p;
    b_[row] /= p;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == row || a_[i][col].is_zero()) continue;
      const Rational f = a_[i][col];
      for (std::size_t j = 0; j < n_; ++j) a_[i][j] -= f * a_[row][j];
      b_[i] -= f * b_[row];
    }
    if (!z[col].is_zero()) {
      const Rational f = z[col];
      for (std::size_t j = 0; j < n_; ++j) z[j] -= f * a_[row][j];
      z_rhs -= f * b_[row];
    }
    basis_[row] = col;
  }

  // Runs simplex iterations with Bland's rule on the given cost row,
  // restricted to columns [0, usable_cols). Returns false on unboundedness.
  bool optimize(std::vector<Rational>& z, Rational& z_rhs,
                std::size_t usable_cols) {
    for (;;) {
      // Bland: entering variable = smallest index with positive reduced cost
      // (we maximize -obj internally; see construction below).
      std::size_t enter = usable_cols;
      for (std::size_t j = 0; j < usable_cols; ++j) {
        if (z[j] > Rational(0)) {
          enter = j;
          break;
        }
      }
      if (enter == usable_cols) return true;  // optimal
      // Ratio test; Bland tie-break on smallest basis index.
      std::size_t leave = m_;
      Rational best_ratio;
      for (std::size_t i = 0; i < m_; ++i) {
        if (a_[i][enter] > Rational(0)) {
          const Rational ratio = b_[i] / a_[i][enter];
          if (leave == m_ || ratio < best_ratio ||
              (ratio == best_ratio && basis_[i] < basis_[leave])) {
            leave = i;
            best_ratio = ratio;
          }
        }
      }
      if (leave == m_) return false;  // unbounded
      pivot(leave, enter, z, z_rhs);
    }
  }

  std::size_t m() const { return m_; }
  std::size_t n() const { return n_; }

 private:
  std::size_t m_, n_;
  std::vector<std::vector<Rational>> a_;
  std::vector<Rational> b_;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpResult solve_lp(const LinearProgram& lp) {
  const std::size_t n = lp.num_vars;
  const std::size_t m_eq = lp.a_eq.size();
  const std::size_t m_ge = lp.a_ge.size();
  const std::size_t m = m_eq + m_ge;

  // Columns: [0, n) structural, [n, n + m_ge) surplus, [n + m_ge, +m) artificial.
  const std::size_t surplus0 = n;
  const std::size_t art0 = n + m_ge;
  const std::size_t total_cols = n + m_ge + m;

  Tableau t(m, total_cols);
  for (std::size_t i = 0; i < m; ++i) {
    const bool is_eq = i < m_eq;
    const auto& row = is_eq ? lp.a_eq[i] : lp.a_ge[i - m_eq];
    Rational rhs = is_eq ? lp.b_eq[i] : lp.b_ge[i - m_eq];
    // Sign chosen so rhs >= 0 after possible negation.
    const bool negate = rhs < Rational(0);
    for (std::size_t j = 0; j < n; ++j) {
      t.a()[i][j] = negate ? -row[j] : row[j];
    }
    if (!is_eq) {
      // A x - s = b  (s >= 0). After negation the surplus sign flips too.
      t.a()[i][surplus0 + (i - m_eq)] = negate ? Rational(1) : Rational(-1);
    }
    t.b()[i] = negate ? -rhs : rhs;
    t.a()[i][art0 + i] = Rational(1);
    t.basis()[i] = art0 + i;
  }

  // Phase 1: minimize sum of artificials. Using the "positive reduced cost
  // enters" convention, the cost row starts as sum of constraint rows over
  // non-artificial columns.
  std::vector<Rational> z(total_cols, Rational(0));
  Rational z_rhs(0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < art0; ++j) z[j] += t.a()[i][j];
    z_rhs += t.b()[i];
  }
  if (!t.optimize(z, z_rhs, art0)) {
    throw std::runtime_error("simplex: phase 1 unbounded (internal error)");
  }
  if (z_rhs > Rational(0)) {
    return {LpStatus::kInfeasible, {}, Rational(0)};
  }
  // Drive any artificial still in the basis out (degenerate rows).
  for (std::size_t i = 0; i < m; ++i) {
    if (t.basis()[i] >= art0) {
      std::size_t piv = art0;
      for (std::size_t j = 0; j < art0; ++j) {
        if (!t.a()[i][j].is_zero()) {
          piv = j;
          break;
        }
      }
      if (piv < art0) {
        t.pivot(i, piv, z, z_rhs);
      }
      // else: the row is all-zero over structural columns — redundant
      // constraint; leaving the artificial basic at value 0 is harmless.
    }
  }

  // Phase 2: minimize c'x. Build reduced costs for the current basis:
  // row z = c_B B^-1 A - c over structural+surplus columns; artificials
  // are excluded from pivoting.
  std::vector<Rational> z2(total_cols, Rational(0));
  Rational z2_rhs(0);
  if (!lp.c.empty()) {
    if (lp.c.size() != n) {
      throw std::invalid_argument("solve_lp: objective size mismatch");
    }
    for (std::size_t j = 0; j < n; ++j) z2[j] = -lp.c[j];
    // Make reduced costs of basic variables zero by adding multiples of rows.
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t bj = t.basis()[i];
      if (bj < n && !z2[bj].is_zero()) {
        const Rational f = z2[bj];
        for (std::size_t j = 0; j < total_cols; ++j) {
          z2[j] -= f * t.a()[i][j];
        }
        z2_rhs -= f * t.b()[i];
      }
    }
    if (!t.optimize(z2, z2_rhs, art0)) {
      return {LpStatus::kUnbounded, {}, Rational(0)};
    }
  }

  LpResult result;
  result.status = LpStatus::kOptimal;
  result.x.assign(n, Rational(0));
  for (std::size_t i = 0; i < m; ++i) {
    if (t.basis()[i] < n) result.x[t.basis()[i]] = t.b()[i];
  }
  // Invariant: the cost row is z = -c + sum_i lambda_i A_i with
  // z_rhs = sum_i lambda_i b_i, so for the basic solution c'x == z_rhs.
  result.objective = z2_rhs;
  return result;
}

}  // namespace nck
