// Z3-backed constraint -> QUBO synthesis — the path the paper's NchooseK
// implementation uses (Section V): coefficients become SMT integer unknowns,
// the ground/gap conditions become assertions, and Z3 searches for a model.
// Coefficient bounds escalate geometrically, which keeps the found QUBOs
// small-coefficient and human-comparable (e.g. it recovers Eq. 3's XOR QUBO
// up to ancilla symmetry).
#pragma once

#include "synth/synthesizer.hpp"

#if NCK_HAVE_Z3

namespace nck {

struct Z3SynthOptions {
  std::size_t max_ancillas = 3;
  std::size_t max_vars = 10;      // d + a limit
  long long initial_bound = 4;    // first coefficient magnitude bound
  long long max_bound = 64;       // give up past this bound
};

class Z3Synthesizer final : public ConstraintSynthesizer {
 public:
  explicit Z3Synthesizer(Z3SynthOptions options = {}) : options_(options) {}

  std::optional<SynthesizedQubo> synthesize(
      const ConstraintPattern& pattern) override;
  std::string name() const override { return "z3"; }

 private:
  Z3SynthOptions options_;
};

}  // namespace nck

#endif  // NCK_HAVE_Z3
