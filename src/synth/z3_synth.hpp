// Z3-backed constraint -> QUBO synthesis — the path the paper's NchooseK
// implementation uses (Section V): coefficients become SMT integer unknowns,
// the ground/gap conditions become assertions, and Z3 searches for a model.
// Coefficient bounds escalate geometrically, which keeps the found QUBOs
// small-coefficient and human-comparable (e.g. it recovers Eq. 3's XOR QUBO
// up to ancilla symmetry).
#pragma once

#include <memory>

#include "synth/synthesizer.hpp"

#if NCK_HAVE_Z3

namespace nck {

struct Z3SynthOptions {
  std::size_t max_ancillas = 3;
  /// Total-variable budget: patterns with d + a > max_vars are refused
  /// (the SMT search space doubles per variable). NOTE: this budget (10)
  /// deliberately differs from LpSynthOptions::max_vars (8) — the LP grows
  /// a row per (x, z) pair and saturates earlier. The engine-wide budget
  /// visible to lint (SynthEngine::general_var_budget, NCK-P008) is the
  /// max over the attached general synthesizers, i.e. 10 when Z3 is built.
  std::size_t max_vars = 10;
  long long initial_bound = 4;    // first coefficient magnitude bound
  long long max_bound = 64;       // give up past this bound
};

class Z3Synthesizer final : public ConstraintSynthesizer {
 public:
  explicit Z3Synthesizer(Z3SynthOptions options = {});
  ~Z3Synthesizer() override;

  std::optional<SynthesizedQubo> synthesize(
      const ConstraintPattern& pattern) override;
  std::string name() const override { return "z3"; }
  std::size_t max_vars() const noexcept override { return options_.max_vars; }

 private:
  /// One incremental z3::context + z3::solver held for the synthesizer's
  /// (i.e. the owning SynthEngine's) lifetime, with lazily-grown coefficient
  /// variable pools. Each (ancilla, bound) attempt is a push/pop scope over
  /// the same solver instead of a from-scratch solver build — the
  /// rmc-compiler smt.h idiom. Pimpl keeps z3++.h out of this header.
  struct Incremental;
  Z3SynthOptions options_;
  std::unique_ptr<Incremental> inc_;
};

}  // namespace nck

#endif  // NCK_HAVE_Z3
