// Constraint -> QUBO synthesis interfaces (Section V of the paper).
//
// A synthesized QUBO for a pattern with d distinct variables and a ancilla
// variables uses QUBO indices [0, d) for the variables (ordered to match the
// pattern's sorted multiplicities) and [d, d+a) for ancillas. It is
// normalized so that
//   * min over ancillas of f(x, z) == 0 for every satisfying x, and
//   * min over ancillas of f(x, z) >= gap (> 0) for every violating x.
#pragma once

#include <optional>
#include <string>

#include "qubo/qubo.hpp"
#include "synth/pattern.hpp"

namespace nck {

struct SynthesizedQubo {
  Qubo qubo;
  std::size_t num_vars = 0;      // d — distinct constraint variables
  std::size_t num_ancillas = 0;  // a — extra degrees of freedom
  double gap = 1.0;              // minimum energy of any violating assignment
  std::string method;            // which synthesis path produced it
};

class ConstraintSynthesizer {
 public:
  virtual ~ConstraintSynthesizer() = default;

  /// Returns std::nullopt if this synthesizer cannot handle the pattern
  /// (e.g. a closed-form synthesizer given a non-contiguous selection set,
  /// or ancilla budget exhausted). Throws only on internal errors.
  virtual std::optional<SynthesizedQubo> synthesize(
      const ConstraintPattern& pattern) = 0;

  virtual std::string name() const = 0;

  /// Largest total variable count d + a this synthesizer accepts; patterns
  /// with more distinct variables than this are refused outright. The
  /// NCK-P008 lint pass compares constraint widths against the engine-wide
  /// maximum of this budget so oversized constraints fail at lint time
  /// instead of mid-solve. Default: unbounded (closed forms).
  virtual std::size_t max_vars() const noexcept {
    return static_cast<std::size_t>(-1);
  }
};

/// Expands (c0 + sum_i coeffs[i] * y_i)^2 into a QUBO over y (binary), using
/// y^2 == y. Shared by the closed-form synthesizers.
Qubo square_of_linear(std::span<const double> coeffs, double c0);

}  // namespace nck
