#include "decompose/decompose.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <set>
#include <stdexcept>

#include "analysis/interaction.hpp"
#include "graph/graph.hpp"

namespace nck::decompose {

namespace {

// Greedy cost-bounded growth of one part inside an oversized component.
// Charges 1 per program variable plus the ancillas of every constraint the
// part touches (each constraint at most once per part), and always extends
// by the cheapest frontier variable (ties to the lowest id) so the cut
// tracks the QUBO budget, not just the variable count.
class PartBuilder {
 public:
  PartBuilder(const Graph& g,
              const std::vector<std::vector<std::size_t>>& var_constraints,
              const std::vector<std::size_t>& ancillas,
              std::vector<bool>& assigned, std::size_t budget)
      : g_(g),
        var_constraints_(var_constraints),
        ancillas_(ancillas),
        assigned_(assigned),
        budget_(budget),
        constraint_counted_(ancillas.size(), false) {}

  // Cost of adding `v` on top of the current part: the variable itself plus
  // every not-yet-charged constraint it touches.
  std::size_t marginal(VarId v) const {
    std::size_t m = 1;
    for (std::size_t ci : var_constraints_[v]) {
      if (!constraint_counted_[ci]) m += ancillas_[ci];
    }
    return m;
  }

  void add(VarId v) {
    part_.push_back(v);
    cost_ += marginal(v);
    assigned_[v] = true;
    for (std::size_t ci : var_constraints_[v]) constraint_counted_[ci] = true;
    for (Graph::Vertex w : g_.neighbors(static_cast<Graph::Vertex>(v))) {
      if (!assigned_[w] && !in_frontier_[w]) {
        in_frontier_[w] = true;
        frontier_.push_back(static_cast<VarId>(w));
      }
    }
  }

  // Cheapest affordable frontier variable, or nullopt when the budget is
  // exhausted (or the frontier is empty).
  std::optional<VarId> next() {
    std::erase_if(frontier_, [&](VarId v) { return assigned_[v]; });
    VarId best = 0;
    std::size_t best_cost = std::numeric_limits<std::size_t>::max();
    for (VarId v : frontier_) {
      const std::size_t m = marginal(v);
      if (m < best_cost || (m == best_cost && v < best)) {
        best_cost = m;
        best = v;
      }
    }
    if (best_cost == std::numeric_limits<std::size_t>::max() ||
        cost_ + best_cost > budget_) {
      return std::nullopt;
    }
    return best;
  }

  std::vector<VarId> take() {
    std::sort(part_.begin(), part_.end());
    return std::move(part_);
  }

  void reserve_frontier(std::size_t n) { in_frontier_.assign(n, false); }

 private:
  const Graph& g_;
  const std::vector<std::vector<std::size_t>>& var_constraints_;
  const std::vector<std::size_t>& ancillas_;
  std::vector<bool>& assigned_;
  std::size_t budget_;
  std::vector<bool> constraint_counted_;
  std::vector<bool> in_frontier_;
  std::vector<VarId> part_;
  std::vector<VarId> frontier_;
  std::size_t cost_ = 0;
};

}  // namespace

Partition plan_partition(const Env& env, std::size_t max_qubo_vars,
                         SynthEngine* engine) {
  if (max_qubo_vars == 0) {
    throw std::invalid_argument("plan_partition: max_qubo_vars == 0");
  }
  const std::size_t n = env.num_vars();
  const Graph g = variable_interaction_graph(env);

  // Per-constraint ancilla estimate (0 without an engine) and the
  // var -> touching-constraints incidence the cost model charges against.
  const auto& constraints = env.constraints();
  std::vector<std::size_t> ancillas(constraints.size(), 0);
  if (engine != nullptr) {
    for (std::size_t ci = 0; ci < constraints.size(); ++ci) {
      ancillas[ci] = engine->synthesize(constraints[ci].pattern()).num_ancillas;
    }
  }
  std::vector<std::vector<std::size_t>> var_constraints(n);
  for (std::size_t ci = 0; ci < constraints.size(); ++ci) {
    for (VarId v : constraints[ci].distinct_vars()) {
      var_constraints[v].push_back(ci);
    }
  }

  Partition plan;
  if (n == 0) return plan;

  // Components (a constraint's variables form a clique, so every constraint
  // lives inside exactly one component).
  UnionFind uf(n);
  for (const auto& [u, v] : g.edges()) uf.unite(u, v);
  plan.components = uf.num_sets();

  std::vector<std::vector<VarId>> component_vars;
  {
    std::vector<std::size_t> comp_index(n, n);
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t root = uf.find(v);
      if (comp_index[root] == n) {
        comp_index[root] = component_vars.size();
        component_vars.emplace_back();
      }
      component_vars[comp_index[root]].push_back(static_cast<VarId>(v));
    }
  }

  // Whole components within budget pack together first-fit (component costs
  // are additive across a part: constraints never straddle components).
  // Oversized components are split by cheapest-frontier growth.
  std::vector<std::vector<VarId>> packed;
  std::vector<std::size_t> packed_cost;
  std::vector<bool> assigned(n, false);
  for (const std::vector<VarId>& comp : component_vars) {
    std::size_t comp_cost = comp.size();
    std::vector<bool> counted(constraints.size(), false);
    for (VarId v : comp) {
      for (std::size_t ci : var_constraints[v]) {
        if (!counted[ci]) {
          counted[ci] = true;
          comp_cost += ancillas[ci];
        }
      }
    }
    if (comp_cost <= max_qubo_vars) {
      bool placed = false;
      for (std::size_t p = 0; p < packed.size(); ++p) {
        if (packed_cost[p] + comp_cost <= max_qubo_vars) {
          packed[p].insert(packed[p].end(), comp.begin(), comp.end());
          packed_cost[p] += comp_cost;
          placed = true;
          break;
        }
      }
      if (!placed) {
        packed.push_back(comp);
        packed_cost.push_back(comp_cost);
      }
      continue;
    }
    // Split: seeds advance in ascending id; each part grows by the
    // cheapest frontier variable until the budget binds. A seed whose own
    // cost exceeds the budget still becomes a (singleton) part.
    for (VarId seed : comp) {
      if (assigned[seed]) continue;
      PartBuilder builder(g, var_constraints, ancillas, assigned,
                          max_qubo_vars);
      builder.reserve_frontier(n);
      builder.add(seed);
      while (auto v = builder.next()) builder.add(*v);
      plan.parts.push_back(builder.take());
    }
  }
  for (std::vector<VarId>& part : packed) {
    std::sort(part.begin(), part.end());
    plan.parts.push_back(std::move(part));
  }
  std::sort(plan.parts.begin(), plan.parts.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return plan;
}

Subproblem clamp_to_incumbent(const Env& env, const std::vector<VarId>& part,
                              const std::vector<bool>& incumbent) {
  Subproblem sub;
  sub.vars = part;
  // remap[v] = sub-space id of free variable v, or the sentinel for clamped.
  constexpr VarId kClamped = static_cast<VarId>(-1);
  std::vector<VarId> remap(env.num_vars(), kClamped);
  for (VarId v : part) {
    remap[v] = sub.env.new_var(env.var_name(v));
  }

  for (const Constraint& c : env.constraints()) {
    // Split the collection into free members (remapped, multiplicity kept)
    // and the clamped-TRUE multiplicity t.
    unsigned clamped_true = 0;
    std::vector<VarId> free_members;
    for (VarId v : c.collection()) {
      if (remap[v] != kClamped) {
        free_members.push_back(remap[v]);
      } else if (incumbent[v]) {
        ++clamped_true;
      }
    }

    if (free_members.empty()) {
      // Decided entirely by the boundary.
      const bool satisfied = c.selection().count(clamped_true) > 0;
      if (c.soft()) {
        ++(satisfied ? sub.clamped_soft_satisfied : sub.clamped_soft_violated);
      } else if (!satisfied) {
        ++sub.clamped_hard_violated;
      }
      continue;
    }

    // Conditional selection set: counts the free collection can still hit.
    std::set<unsigned> selection;
    for (unsigned s : c.selection()) {
      if (s >= clamped_true && s - clamped_true <= free_members.size()) {
        selection.insert(s - clamped_true);
      }
    }
    if (selection.empty()) {
      // No free count satisfies the constraint given the boundary.
      if (c.soft()) {
        ++sub.clamped_soft_violated;
      } else {
        ++sub.clamped_hard_violated;
      }
      continue;
    }
    if (selection.size() == free_members.size() + 1) {
      // Every free count satisfies it: a tautology of the conditional
      // program (selection is exactly {0..|free|} since values are clamped
      // to that range above).
      if (c.soft()) ++sub.clamped_soft_satisfied;
      continue;
    }
    sub.env.nck(std::move(free_members), std::move(selection), c.kind());
  }
  return sub;
}

std::vector<bool> polish_assignment(const Env& env, std::vector<bool> start,
                                    std::size_t max_iters) {
  const std::size_t n = env.num_vars();
  start.resize(n, false);
  const auto& constraints = env.constraints();
  if (n == 0 || max_iters == 0 || constraints.empty()) return start;

  // Incidence with multiplicity: flipping v moves constraint ci's true
  // count by v's multiplicity in its collection.
  std::vector<std::vector<std::pair<std::size_t, unsigned>>> touching(n);
  std::size_t num_soft = 0;
  for (std::size_t ci = 0; ci < constraints.size(); ++ci) {
    if (constraints[ci].soft()) ++num_soft;
    std::vector<VarId> members(constraints[ci].collection());
    std::sort(members.begin(), members.end());
    for (std::size_t i = 0; i < members.size();) {
      std::size_t j = i;
      while (j < members.size() && members[j] == members[i]) ++j;
      touching[members[i]].emplace_back(ci, static_cast<unsigned>(j - i));
      i = j;
    }
  }
  // Scalar objective mirroring `improves`: every violated hard constraint
  // outweighs all soft constraints together.
  const long long kHardWeight = static_cast<long long>(num_soft) + 1;
  const auto violation_cost = [&](std::size_t ci, unsigned k) -> long long {
    const Constraint& c = constraints[ci];
    if (c.selection().count(k) > 0) return 0;
    return c.soft() ? 1 : kHardWeight;
  };

  std::vector<unsigned> count(constraints.size(), 0);
  long long energy = 0;
  for (std::size_t ci = 0; ci < constraints.size(); ++ci) {
    for (VarId v : constraints[ci].collection()) {
      if (start[v]) ++count[ci];
    }
    energy += violation_cost(ci, count[ci]);
  }
  const auto delta = [&](std::size_t v) -> long long {
    long long d = 0;
    for (const auto& [ci, m] : touching[v]) {
      const unsigned k = count[ci];
      const unsigned flipped = start[v] ? k - m : k + m;
      d += violation_cost(ci, flipped) - violation_cost(ci, k);
    }
    return d;
  };
  const auto flip = [&](std::size_t v, long long d) {
    for (const auto& [ci, m] : touching[v]) {
      count[ci] = start[v] ? count[ci] - m : count[ci] + m;
    }
    start[v] = !start[v];
    energy += d;
  };

  std::vector<bool> best = start;
  long long best_energy = energy;
  const std::size_t tenure = std::min<std::size_t>(20, n / 4) + 1;
  const std::size_t stall_iters = max_iters / 4 + 1;
  std::vector<std::size_t> tabu_until(n, 0);
  std::size_t stall = 0;
  for (std::size_t iter = 1; iter <= max_iters && stall < stall_iters;
       ++iter) {
    std::size_t move = n;
    long long move_delta = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const long long d = delta(v);
      const bool tabu = tabu_until[v] >= iter;
      if (tabu && energy + d >= best_energy) continue;
      if (move == n || d < move_delta) {
        move = v;
        move_delta = d;
      }
    }
    if (move == n) break;
    flip(move, move_delta);
    tabu_until[move] = iter + tenure;
    if (energy < best_energy) {
      best_energy = energy;
      best = start;
      stall = 0;
    } else {
      ++stall;
    }
  }
  return best;
}

bool improves(const Evaluation& candidate,
              const Evaluation& incumbent) noexcept {
  if (candidate.hard_violated != incumbent.hard_violated) {
    return candidate.hard_violated < incumbent.hard_violated;
  }
  return candidate.soft_satisfied > incumbent.soft_satisfied;
}

}  // namespace nck::decompose
