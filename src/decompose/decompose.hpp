// qbsolv-style large-neighborhood decomposition mechanics (DESIGN.md §3i).
//
// The paper's devices cap every scenario at a fixed QUBO size (65 variables
// on Brooklyn, embedding blow-up beyond a few dozen logical variables on
// Pegasus). The established route around a fixed-size device is Booth/
// Reinhardt/Roy's qbsolv loop: partition the problem's variable-interaction
// graph into device-sized neighborhoods, clamp everything outside the
// active neighborhood to the incumbent assignment, solve the clamped
// sub-QUBO on the device, stitch the result back, and iterate until no
// neighborhood improves the incumbent.
//
// This module owns the *mechanics* of that loop — partition planning and
// incumbent clamping — as pure, deterministic Env-to-Env transformations.
// The loop itself (sub-solve fan-out across SolverPool, acceptance,
// convergence, observability) lives in runtime::Solver's decompose stage,
// layered above this module.
//
// Clamping is exact at the program level, not the QUBO level: a constraint
// nck(N, K) with some members clamped becomes nck(N ∩ free, K') where K'
// shifts K down by the clamped-TRUE multiplicity and drops counts the free
// collection cannot reach. Constraints decided by the clamp alone (no free
// member, or an empty/full shifted selection) leave the sub-program and are
// tallied, so a sub-program never carries a constraint the Constraint
// constructor would reject and the sub-solve optimizes exactly the
// conditional program given the boundary.
#pragma once

#include <cstddef>
#include <vector>

#include "core/env.hpp"
#include "synth/engine.hpp"

namespace nck::decompose {

/// Knobs of the decompose stage (SolveOptions::decompose). Off by default:
/// enabling it only changes solves whose post-presolve program exceeds
/// `subproblem_vars` (the trivial one-subproblem case stays byte-identical
/// to the undecomposed path).
struct DecomposeOptions {
  bool enabled = false;
  /// Per-sub-QUBO variable cap — the device ceiling being broken. The cap
  /// counts *QUBO* variables (program variables plus the synthesized
  /// ancillas of every constraint the neighborhood touches), because that
  /// is what the device sees: a set-cover neighborhood of 16 program
  /// variables already compiles to a ~50-variable QUBO. The default is
  /// Brooklyn's 65-qubit budget, the hardest cap in the paper.
  std::size_t subproblem_vars = 65;
  /// Large-neighborhood rounds before giving up on further improvement.
  std::size_t max_rounds = 16;
  /// Worker threads for the per-round sub-solve fan-out; 0 = hardware
  /// concurrency. Results are bit-identical across any thread count.
  std::size_t num_threads = 0;
  /// Polish every annealer sub-sample with a deterministic tabu search on
  /// the logical problem (AnnealerSamplerOptions::postprocess +
  /// postprocess_tabu_iters) before the stitch. qbsolv's loop always
  /// refines device samples with classical tabu — and it is load-bearing
  /// here: the compiled hard scale flattens the soft landscape below the
  /// device's thermal resolution, so raw (or merely descent-quenched)
  /// samples stall in minimal-but-not-minimum states that a one-soft-unit
  /// uphill move would escape.
  bool polish_subsolves = true;
  /// Exact ground truth is computed component-wise when every interaction
  /// component has at most this many variables; otherwise the report's
  /// truth is referenced to the final incumbent (truth_exact == false).
  std::size_t truth_component_vars = 30;
};

/// The fixed decomposition seam: parts of the variable-interaction graph,
/// each within the sub-QUBO budget, covering every variable exactly once.
/// Planned once per solve; rounds re-clamp, never re-cut.
struct Partition {
  /// Part k's variables (work-space VarIds, ascending). Deterministic.
  std::vector<std::vector<VarId>> parts;
  /// Connected components of the interaction graph (before packing).
  std::size_t components = 0;
};

/// Plans the partition for `env` with parts whose *estimated sub-QUBO*
/// stays within `max_qubo_vars`: each part is charged one QUBO variable
/// per program variable plus the synthesized ancilla count of every
/// constraint touching the part (a straddling constraint is charged to
/// every part it touches, mirroring its clamped copy in each
/// sub-program; the estimate uses the unclamped pattern, so it is
/// conservative). With a null engine the ancilla charge is zero and the
/// cap degenerates to a plain per-part variable cap. Whole components
/// within budget are packed together first-fit; oversized components are
/// split by deterministic cheapest-frontier BFS growth. A single variable
/// whose constraints alone exceed the budget still gets its own part —
/// decomposition can shrink neighborhoods, not constraints. Requires
/// max_qubo_vars >= 1.
Partition plan_partition(const Env& env, std::size_t max_qubo_vars,
                         SynthEngine* engine = nullptr);

/// One clamped sub-program: the conditional program over `vars` given that
/// every other variable is pinned to the incumbent.
struct Subproblem {
  /// The sub-program. Variable i of `env` is work-space variable vars[i].
  Env env;
  /// Part members (work-space VarIds, ascending), including variables every
  /// constraint of which was decided by the clamp.
  std::vector<VarId> vars;
  /// Hard constraints the clamp alone already violates (no free member can
  /// save them). The sub-solve proceeds — the violation belongs to the
  /// boundary, and a later round re-clamps it.
  std::size_t clamped_hard_violated = 0;
  /// Soft constraints decided by the clamp: satisfied / violated constants
  /// of the conditional program.
  std::size_t clamped_soft_satisfied = 0;
  std::size_t clamped_soft_violated = 0;
};

/// Builds the clamped sub-program of `env` for the free set `part` (must be
/// ascending work-space VarIds) under `incumbent` (size env.num_vars()).
Subproblem clamp_to_incumbent(const Env& env, const std::vector<VarId>& part,
                              const std::vector<bool>& incumbent);

/// Strict lexicographic improvement for the acceptance scan: fewer violated
/// hard constraints wins, then more satisfied soft constraints.
bool improves(const Evaluation& candidate, const Evaluation& incumbent) noexcept;

/// Deterministic program-level tabu polish of a sub-solve result: single
/// variable flips minimizing (hard_violated, soft_violated) lexically,
/// steepest admissible move first (ties to the lowest VarId), tenure
/// min(20, n/4) + 1, aspiration on the best state seen. Returns the best
/// assignment visited (never worse than `start`).
///
/// This runs where qbsolv runs its tabu refinement — between the device
/// sample and the stitch — but on the *program*, not the compiled QUBO.
/// The distinction is load-bearing: in QUBO space a one-soft-unit swap
/// (set cover's two halves for the full block) hides behind a hard-scale
/// ancilla barrier that steepest-move tabu never climbs while ±1 plateau
/// moves remain, so sub-solves systematically stall in minimal-but-not-
/// minimum states. In program space the same swap is a one-unit ridge.
std::vector<bool> polish_assignment(const Env& env, std::vector<bool> start,
                                    std::size_t max_iters = 512);

/// Per-round record for SolveReport::decompose (and BENCH_decompose.json):
/// the incumbent's energy after the round plus the round's sub-plan cache
/// traffic (delta of the shared plan cache across the round).
struct RoundStats {
  std::size_t round = 0;            // 1-based
  std::size_t hard_violated = 0;    // incumbent energy after the round
  std::size_t soft_satisfied = 0;
  std::size_t improved = 0;         // accepted neighborhood moves
  std::size_t subproblems_ran = 0;  // sub-solves that produced a sample
  std::size_t cache_hits = 0;       // plan-cache delta during the round
  std::size_t cache_misses = 0;
};

/// Decompose-stage statistics carried on SolveReport::decompose; engaged
/// only when the stage actually ran (the program exceeded the cap).
struct DecomposeSummary {
  std::size_t num_vars = 0;       // post-presolve program size
  std::size_t subproblems = 0;    // parts in the fixed partition
  std::size_t components = 0;     // interaction-graph components
  std::size_t rounds = 0;
  /// The loop stopped because no neighborhood improved the incumbent (as
  /// opposed to hitting max_rounds or the wall deadline).
  bool converged = false;
  /// Ground truth was computed exactly (component-wise); when false the
  /// report's truth is referenced to the final incumbent — a bound, not a
  /// proof — and kOptimal means "no sub-neighborhood improves it".
  bool truth_exact = false;
  std::vector<RoundStats> round_stats;
};

}  // namespace nck::decompose
