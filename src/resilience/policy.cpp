#include "resilience/policy.hpp"

#include <algorithm>
#include <cmath>

namespace nck {

double RetryPolicy::backoff_ms(std::size_t retry, Rng& rng) const noexcept {
  if (retry == 0) retry = 1;
  double base = backoff_initial_ms;
  for (std::size_t i = 1; i < retry && base < backoff_max_ms; ++i) {
    base *= backoff_multiplier;
  }
  base = std::min(base, backoff_max_ms);
  const double factor =
      backoff_jitter > 0.0
          ? rng.uniform(1.0 - backoff_jitter, 1.0 + backoff_jitter)
          : 1.0;
  return std::max(0.0, base * factor);
}

bool RetryPolicy::validate(std::string* why) const {
  const auto bad = [&](const char* what) {
    if (why) *why = what;
    return false;
  };
  if (std::isnan(backoff_initial_ms) || backoff_initial_ms < 0.0 ||
      !std::isfinite(backoff_initial_ms)) {
    return bad("backoff_initial_ms must be finite and >= 0");
  }
  if (std::isnan(backoff_multiplier) || backoff_multiplier < 1.0 ||
      !std::isfinite(backoff_multiplier)) {
    return bad("backoff_multiplier must be finite and >= 1");
  }
  if (std::isnan(backoff_max_ms) || backoff_max_ms < 0.0 ||
      !std::isfinite(backoff_max_ms)) {
    return bad("backoff_max_ms must be finite and >= 0");
  }
  if (std::isnan(backoff_jitter) || backoff_jitter < 0.0 ||
      backoff_jitter > 1.0) {
    return bad("backoff_jitter must be in [0, 1]");
  }
  if (std::isnan(deadline_ms) || deadline_ms <= 0.0) {
    return bad("deadline_ms must be > 0 (infinity = no deadline)");
  }
  return true;
}

std::size_t degrade_samples(std::size_t current, std::size_t floor) noexcept {
  if (current <= floor) return floor;
  return std::max(floor, current / 2);
}

}  // namespace nck
