#include "resilience/fault.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace nck {
namespace {

constexpr double kDefaultTimeoutMs = 1000.0;
constexpr double kDefaultDriftSigma = 0.01;
constexpr double kDefaultDeadQubits = 1.0;

double default_param(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kQueueTimeout: return kDefaultTimeoutMs;
    case FaultKind::kCalibrationDrift: return kDefaultDriftSigma;
    case FaultKind::kDeadQubits: return kDefaultDeadQubits;
    case FaultKind::kJobRejection:
    case FaultKind::kExecutionError: return 0.0;
  }
  return 0.0;
}

bool takes_param(FaultKind kind) noexcept {
  return kind == FaultKind::kQueueTimeout ||
         kind == FaultKind::kCalibrationDrift ||
         kind == FaultKind::kDeadQubits;
}

/// Short spec-grammar keyword ("reject", "dead", ...).
const char* spec_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kJobRejection: return "reject";
    case FaultKind::kQueueTimeout: return "timeout";
    case FaultKind::kCalibrationDrift: return "drift";
    case FaultKind::kDeadQubits: return "dead";
    case FaultKind::kExecutionError: return "exec";
  }
  return "?";
}

[[noreturn]] void bad_spec(const std::string& token, const std::string& why) {
  throw std::invalid_argument("fault spec: bad event \"" + token + "\" (" +
                              why + ")");
}

FaultEvent parse_event(const std::string& token) {
  std::string body = token;
  FaultEvent event;

  const std::size_t at = body.find('@');
  if (at != std::string::npos) {
    const std::string attempt_text = body.substr(at + 1);
    try {
      std::size_t used = 0;
      const unsigned long long attempt = std::stoull(attempt_text, &used);
      if (used != attempt_text.size() || attempt == 0) {
        bad_spec(token, "attempt must be a positive integer");
      }
      event.attempt = static_cast<std::size_t>(attempt);
    } catch (const std::invalid_argument&) {
      bad_spec(token, "attempt must be a positive integer");
    } catch (const std::out_of_range&) {
      bad_spec(token, "attempt out of range");
    }
    body = body.substr(0, at);
  }

  std::string param_text;
  const std::size_t colon = body.find(':');
  if (colon != std::string::npos) {
    param_text = body.substr(colon + 1);
    body = body.substr(0, colon);
  }

  if (body == "reject") {
    event.kind = FaultKind::kJobRejection;
  } else if (body == "timeout") {
    event.kind = FaultKind::kQueueTimeout;
  } else if (body == "drift") {
    event.kind = FaultKind::kCalibrationDrift;
  } else if (body == "dead") {
    event.kind = FaultKind::kDeadQubits;
  } else if (body == "exec") {
    event.kind = FaultKind::kExecutionError;
  } else {
    bad_spec(token, "unknown kind; expected reject|timeout|drift|dead|exec");
  }

  event.param = default_param(event.kind);
  if (!param_text.empty()) {
    if (!takes_param(event.kind)) bad_spec(token, "kind takes no parameter");
    try {
      std::size_t used = 0;
      event.param = std::stod(param_text, &used);
      if (used != param_text.size()) bad_spec(token, "malformed parameter");
    } catch (const std::invalid_argument&) {
      bad_spec(token, "malformed parameter");
    } catch (const std::out_of_range&) {
      bad_spec(token, "parameter out of range");
    }
    if (!std::isfinite(event.param) || event.param < 0.0) {
      bad_spec(token, "parameter must be finite and non-negative");
    }
    if (event.kind == FaultKind::kDeadQubits && event.param < 1.0) {
      bad_spec(token, "dead needs at least one qubit");
    }
  }
  return event;
}

}  // namespace

const char* fault_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kJobRejection: return "job-rejection";
    case FaultKind::kQueueTimeout: return "queue-timeout";
    case FaultKind::kCalibrationDrift: return "calibration-drift";
    case FaultKind::kDeadQubits: return "dead-qubits";
    case FaultKind::kExecutionError: return "execution-error";
  }
  return "?";
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const FaultEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << spec_name(e.kind);
    if (takes_param(e.kind)) os << ":" << e.param;
    if (e.attempt != 0) os << "@" << e.attempt;
  }
  return os.str();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    const std::string token = spec.substr(start, end - start);
    if (token.empty()) {
      throw std::invalid_argument("fault spec: empty event in \"" + spec +
                                  "\"");
    }
    plan.events.push_back(parse_event(token));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return plan;
}

FaultPlan FaultPlan::chaos_default() { return parse("reject@1,dead:2@2"); }

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), rng_(seed) {}

void FaultInjector::begin_attempt(std::size_t attempt) {
  attempt_ = attempt;
  submit_armed_ = drift_armed_ = dead_armed_ = exec_armed_ = true;
}

std::optional<FaultKind> FaultInjector::submit_fault() {
  if (!submit_armed_ || attempt_ == 0) return std::nullopt;
  submit_armed_ = false;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kJobRejection && due(e)) {
      history_.push_back({e.kind, attempt_, 0.0, 0});
      return FaultKind::kJobRejection;
    }
  }
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kQueueTimeout && due(e)) {
      history_.push_back({e.kind, attempt_, e.param, 0});
      return FaultKind::kQueueTimeout;
    }
  }
  return std::nullopt;
}

double FaultInjector::drift_sigma() {
  if (!drift_armed_ || attempt_ == 0) return 0.0;
  drift_armed_ = false;
  double sigma = 0.0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind != FaultKind::kCalibrationDrift || !due(e)) continue;
    // Unpinned drift accumulates: the device wanders further from its
    // last calibration on every attempt of the session.
    sigma += e.attempt == 0 ? e.param * static_cast<double>(attempt_)
                            : e.param;
  }
  if (sigma > 0.0) {
    history_.push_back({FaultKind::kCalibrationDrift, attempt_, sigma, 0});
  }
  return sigma;
}

std::vector<std::size_t> FaultInjector::dead_qubit_event(
    const std::vector<std::size_t>& in_use) {
  if (!dead_armed_ || attempt_ == 0 || in_use.empty()) return {};
  dead_armed_ = false;
  std::size_t requested = 0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kDeadQubits && due(e)) {
      requested += static_cast<std::size_t>(e.param);
    }
  }
  if (requested == 0) return {};

  // Seeded partial Fisher-Yates over the embedded qubits.
  std::vector<std::size_t> pool = in_use;
  const std::size_t kill = std::min(requested, pool.size());
  for (std::size_t i = 0; i < kill; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng_.below(pool.size() - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(kill);
  std::sort(pool.begin(), pool.end());
  history_.push_back({FaultKind::kDeadQubits, attempt_,
                      static_cast<double>(requested), kill});
  return pool;
}

bool FaultInjector::execution_fault() {
  if (!exec_armed_ || attempt_ == 0) return false;
  exec_armed_ = false;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kExecutionError && due(e)) {
      history_.push_back({e.kind, attempt_, 0.0, 0});
      return true;
    }
  }
  return false;
}

double FaultInjector::modeled_wait_ms(std::size_t attempt) const noexcept {
  double ms = 0.0;
  for (const FaultRecord& r : history_) {
    if (r.kind == FaultKind::kQueueTimeout && r.attempt == attempt) {
      ms += r.param;
    }
  }
  return ms;
}

}  // namespace nck
