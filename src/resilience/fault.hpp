// Deterministic fault injection for the solve path. A FaultPlan is a
// seeded schedule of the session failures real QPU backends exhibit —
// job rejections, queue timeouts, calibration drift (growing h/J offsets
// on top of the modeled ICE noise), mid-session dead-qubit events that
// invalidate the current minor embedding, and transient circuit-execution
// errors. Backends consult a FaultInjector at the points where the real
// failure would surface (submit, post-embed, pre-execution), so the
// recovery machinery in runtime::Solver can be exercised reproducibly:
// the same plan + seed always fires the same faults on the same attempts.
//
// Plan spec grammar (the `nck_cli solve --faults=` argument):
//
//   spec    := event (',' event)*
//   event   := kind [':' param] ['@' attempt]
//   kind    := reject | timeout | drift | dead | exec
//
// `attempt` is the 1-based solve attempt the event fires on; omitted
// means "every attempt". `param` is kind-specific: for `dead` the number
// of embedded qubits to kill (default 1), for `drift` the per-attempt
// sigma added to the ICE noise (default 0.01), for `timeout` the modeled
// milliseconds wasted waiting in the queue (default 1000). Examples:
// "reject@1" (first submission bounces), "dead:2@2" (two embedded qubits
// die mid-session on attempt 2), "drift:0.005" (calibration drifts a
// little more every attempt).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace nck {

enum class FaultKind {
  kJobRejection,      // the (simulated) scheduler refuses the job
  kQueueTimeout,      // the job waits past the queue limit; time is wasted
  kCalibrationDrift,  // growing h/J offsets on top of the ICE noise
  kDeadQubits,        // embedded qubits drop from the working graph
  kExecutionError,    // transient circuit-execution failure
};

/// "job-rejection", "queue-timeout", ... — stable names used in spec
/// parsing, obs counters, and the ResilienceLog.
const char* fault_name(FaultKind kind) noexcept;

struct FaultEvent {
  FaultKind kind = FaultKind::kJobRejection;
  double param = 0.0;       // see the grammar comment for per-kind meaning
  std::size_t attempt = 0;  // 1-based attempt that triggers it; 0 = every
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const noexcept { return events.empty(); }
  /// Canonical spec string ("dead:2@2,reject@1"); parse(to_string()) is
  /// the identity on the event list.
  std::string to_string() const;
  /// Parses the spec grammar above. Throws std::invalid_argument naming
  /// the offending token on malformed input.
  static FaultPlan parse(const std::string& spec);
  /// The fixed schedule enabled by NCK_CHAOS=1: first submission
  /// rejected, then a two-qubit dead-qubit event on attempt 2.
  static FaultPlan chaos_default();
};

/// One fault that actually fired, for the ResilienceLog.
struct FaultRecord {
  FaultKind kind = FaultKind::kJobRejection;
  std::size_t attempt = 0;
  double param = 0.0;           // resolved value (drift sigma, timeout ms)
  std::size_t qubits_killed = 0;
};

/// Consults the plan on behalf of a backend. One injector lives for one
/// solve; runtime::Solver calls begin_attempt() before each dispatch and
/// the backend calls the query methods at the matching pipeline points.
/// Every query is consumed at most once per attempt, so a backend that
/// asks twice cannot double-fire an event.
class FaultInjector {
 public:
  /// An empty injector never fires (the no-resilience fast path).
  FaultInjector() = default;
  FaultInjector(FaultPlan plan, std::uint64_t seed);

  bool armed() const noexcept { return !plan_.events.empty(); }

  /// Starts attempt `attempt` (1-based) and re-arms the per-attempt
  /// queries.
  void begin_attempt(std::size_t attempt);

  /// Job-submission outcome: kJobRejection or kQueueTimeout when one is
  /// due this attempt (rejection wins if both are), nullopt otherwise.
  std::optional<FaultKind> submit_fault();

  /// Extra ICE sigma for this attempt. Events pinned to an attempt
  /// contribute their sigma once; "every attempt" events contribute
  /// sigma * attempt — the drift grows over the session until the next
  /// calibration.
  double drift_sigma();

  /// Mid-session dead-qubit event: returns the physical qubits (drawn
  /// seeded from `in_use`, i.e. the current embedding) that just died,
  /// or an empty vector when no event is due.
  std::vector<std::size_t> dead_qubit_event(
      const std::vector<std::size_t>& in_use);

  /// Transient execution failure due this attempt?
  bool execution_fault();

  std::size_t attempt() const noexcept { return attempt_; }
  const std::vector<FaultRecord>& history() const noexcept { return history_; }
  /// Modeled milliseconds wasted by queue timeouts recorded at `attempt`.
  double modeled_wait_ms(std::size_t attempt) const noexcept;

 private:
  bool due(const FaultEvent& e) const noexcept {
    return e.attempt == 0 || e.attempt == attempt_;
  }

  FaultPlan plan_;
  Rng rng_{0};
  std::size_t attempt_ = 0;
  bool submit_armed_ = false;
  bool drift_armed_ = false;
  bool dead_armed_ = false;
  bool exec_armed_ = false;
  std::vector<FaultRecord> history_;
};

}  // namespace nck
