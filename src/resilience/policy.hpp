// Retry policy and session-time accounting for resilient solves.
//
// All waiting is *modeled*: retries back off on a session clock that sums
// measured client wall time, modeled device/QPU time, and modeled waits
// (backoff sleeps, queue-timeout losses) — nothing actually sleeps, so
// tests and CI exercise deadline pressure deterministically and fast. The
// per-solve deadline budget in RetryPolicy::deadline_ms is checked against
// this combined clock (DESIGN.md §3c spells out the accounting rules).
#pragma once

#include <cstddef>
#include <limits>
#include <string>

#include "util/rng.hpp"

namespace nck {

struct RetryPolicy {
  /// Extra attempts allowed after the first, per backend in the fallback
  /// chain. 0 = today's one-shot behavior.
  std::size_t max_retries = 0;
  double backoff_initial_ms = 50.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 5000.0;
  /// Uniform jitter fraction in [0, 1]: each wait is scaled by a factor
  /// drawn from [1 - jitter, 1 + jitter] to decorrelate retry storms.
  double backoff_jitter = 0.25;
  /// Total session budget (wall + modeled device + modeled waits) in
  /// milliseconds. Infinity = no deadline.
  double deadline_ms = std::numeric_limits<double>::infinity();

  /// Modeled wait before retry number `retry` (1-based):
  /// min(initial * multiplier^(retry-1), max), jittered via `rng`.
  double backoff_ms(std::size_t retry, Rng& rng) const noexcept;

  /// False (with an explanation in `why`) when any knob is NaN, negative,
  /// or otherwise meaningless — surfaced as FailureKind::kBadOptions.
  bool validate(std::string* why) const;
};

/// Modeled session clock: one budget across the three cost buckets.
class SessionClock {
 public:
  void charge_wall_ms(double ms) noexcept { wall_ms_ += ms; }
  void charge_device_ms(double ms) noexcept { device_ms_ += ms; }
  void charge_wait_ms(double ms) noexcept { wait_ms_ += ms; }

  double wall_ms() const noexcept { return wall_ms_; }
  double device_ms() const noexcept { return device_ms_; }
  double wait_ms() const noexcept { return wait_ms_; }
  double elapsed_ms() const noexcept { return wall_ms_ + device_ms_ + wait_ms_; }

 private:
  double wall_ms_ = 0.0;
  double device_ms_ = 0.0;
  double wait_ms_ = 0.0;
};

/// One rung of the sample-budget degradation ladder: halves `current`
/// toward `floor` (never below it). Applied repeatedly under deadline
/// pressure until the modeled attempt cost fits the remaining budget.
std::size_t degrade_samples(std::size_t current, std::size_t floor) noexcept;

}  // namespace nck
