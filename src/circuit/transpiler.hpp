// Transpilation of a logical circuit onto a physical coupling map:
//   1. initial layout — interaction-degree-ordered logical qubits placed on
//      a BFS-ordered connected region of the device;
//   2. routing — SWAPs inserted along shortest physical paths for every
//      two-qubit gate between non-adjacent qubits (the compiler behaviour
//      whose noise cost Section VIII-B discusses);
//   3. basis decomposition — RZZ -> CX RZ CX, SWAP -> 3 CX, producing the
//      {1q rotations, CX} basis of IBM backends.
// The resulting physical depth and CX count drive the Figs 8-10 metrics and
// the depolarizing noise model.
#pragma once

#include <optional>

#include "circuit/circuit.hpp"
#include "graph/graph.hpp"

namespace nck {

struct TranspileResult {
  Circuit physical;                    // over physical qubit indices
  std::vector<std::uint32_t> layout;   // logical -> physical
  std::size_t depth = 0;               // physical circuit depth
  std::size_t cx_count = 0;
  std::size_t swap_count = 0;          // routing SWAPs inserted
  std::size_t qubits_touched = 0;      // physical qubits with >= 1 gate
};

/// Transpiles `logical` for the `coupling` map. Returns std::nullopt when
/// the device has fewer (connected) qubits than the circuit needs.
std::optional<TranspileResult> transpile(const Circuit& logical,
                                         const Graph& coupling);

}  // namespace nck
