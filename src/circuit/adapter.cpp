#include "circuit/adapter.hpp"

#include <string>

#include "resilience/policy.hpp"

namespace nck::backend {
namespace {

struct CircuitPlan final : Plan {
  CircuitPrepared prepared;
  std::size_t footprint = 0;
  std::size_t bytes() const noexcept override { return footprint; }
};

}  // namespace

bool CircuitAdapter::validate(std::string* why) const {
  const QaoaOptions& q = options_->qaoa;
  if (q.shots == 0) {
    if (why) *why = "circuit shots must be > 0";
    return false;
  }
  if (q.p < 1) {
    if (why) *why = "QAOA depth p must be >= 1";
    return false;
  }
  return true;
}

AnalysisTarget CircuitAdapter::analysis_target() const noexcept {
  AnalysisTarget target;
  target.coupling = coupling_;
  return target;
}

Fingerprint CircuitAdapter::plan_key(const PrepareContext& ctx) const {
  Fingerprint fp;
  fp.mix(std::string("circuit"));
  mix_env(fp, *ctx.env);
  mix_graph(fp, *coupling_);
  fp.mix(options_->compile.hard_margin);
  fp.mix(options_->qaoa.p);
  return fp;
}

PrepareOutcome CircuitAdapter::prepare(const PrepareContext& ctx) const {
  auto plan = std::make_shared<CircuitPlan>();
  plan->prepared = prepare_circuit_backend(*ctx.env, *coupling_, *ctx.engine,
                                           *options_, ctx.trace);
  PrepareOutcome outcome;
  if (!plan->prepared.fits) {
    outcome.failure = FailureKind::kDeviceTooSmall;
    outcome.detail =
        "problem does not fit the " +
        std::to_string(coupling_->num_vertices()) + "-qubit device";
    return outcome;
  }
  plan->footprint = plan->prepared.bytes();
  outcome.plan = std::move(plan);
  return outcome;
}

ExecutionResult CircuitAdapter::execute(const Plan& plan,
                                        ExecuteContext& ctx) const {
  const auto& circuit_plan = static_cast<const CircuitPlan&>(plan);
  CircuitBackendOptions options = *options_;
  options.qaoa.shots = ctx.budget.samples;
  options.qaoa.optimizer.max_evaluations = ctx.budget.aux;
  options.faults = ctx.faults;
  CircuitOutcome outcome = execute_circuit_backend(circuit_plan.prepared,
                                                   *ctx.rng, options,
                                                   ctx.trace);

  ExecutionResult result;
  result.device_seconds = outcome.total_seconds;
  result.qubits_used = outcome.qubits_used;
  result.circuit_depth = outcome.depth;
  if (outcome.fault) {
    result.failure = failure_from_fault(*outcome.fault);
    result.detail = failure_kind_description(result.failure);
    return result;
  }
  if (outcome.samples.empty()) {
    result.failure = FailureKind::kNoSamples;
    result.detail = "circuit backend returned no samples";
    return result;
  }
  // QAOA reports a single answer: the lowest-energy sample.
  result.single_answer = true;
  result.samples = std::move(outcome.samples);
  result.evaluations = std::move(outcome.evaluations);
  return result;
}

Budget CircuitAdapter::initial_budget(
    const SampleFloors& floors) const noexcept {
  return {options_->qaoa.shots, options_->qaoa.optimizer.max_evaluations,
          floors.min_shots, 4};
}

double CircuitAdapter::estimate_attempt_ms(const Budget& budget) const noexcept {
  const IbmTimingModel& t = options_->timing;
  const double jobs = static_cast<double>(budget.aux) + 1.0;
  return (t.server_overhead_s +
          jobs * (t.job_base_s + 0.5 * t.job_jitter_s +
                  t.optimizer_s_per_job)) *
         1e3;
}

bool CircuitAdapter::degrade(Budget& budget) const noexcept {
  if (budget.samples <= budget.min_samples && budget.aux <= budget.min_aux) {
    return false;
  }
  budget.samples = degrade_samples(budget.samples, budget.min_samples);
  budget.aux = degrade_samples(budget.aux, budget.min_aux);
  return true;
}

}  // namespace nck::backend
