// Dense state-vector simulator for the circuit-model backend. Amplitudes
// are stored with qubit 0 as the least significant bit of the basis index.
// Gate kernels are OpenMP-parallel; practical up to ~24 qubits.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace nck {

class StateVector {
 public:
  using Amplitude = std::complex<double>;

  /// Initializes |0...0>. Throws for num_qubits > kMaxQubits.
  explicit StateVector(std::size_t num_qubits);

  static constexpr std::size_t kMaxQubits = 26;

  std::size_t num_qubits() const noexcept { return num_qubits_; }
  std::size_t dimension() const noexcept { return amps_.size(); }

  Amplitude amplitude(std::uint64_t basis) const { return amps_[basis]; }

  /// Applies an arbitrary single-qubit unitary (row-major 2x2).
  void apply_1q(std::size_t q, const Amplitude u[4]);

  void h(std::size_t q);
  void x(std::size_t q);
  void rx(std::size_t q, double theta);
  void ry(std::size_t q, double theta);
  void rz(std::size_t q, double theta);

  void cx(std::size_t control, std::size_t target);
  void cz(std::size_t a, std::size_t b);
  /// exp(-i theta/2 Z\otimes Z) — the QAOA cost-layer two-qubit gate.
  void rzz(std::size_t a, std::size_t b, double theta);
  /// exp(-i theta/4 (X\otimes X + Y\otimes Y)) — the number-preserving
  /// "XY" / Givens mixing gate of the Quantum Alternating Operator Ansatz:
  /// rotates within the {|01>, |10>} subspace, leaving |00> and |11> fixed.
  void xy(std::size_t a, std::size_t b, double theta);
  void swap(std::size_t a, std::size_t b);

  /// Resets to the uniform superposition |+>^n — the QAOA initial state,
  /// replacing n Hadamard passes with one fill.
  void fill_uniform();

  /// Fused diagonal layer: amps[z] *= exp(-i * scale * table[z]) in a
  /// single pass. `table` must have one entry per basis state (the
  /// DiagonalCost energy table); throws on size mismatch.
  void apply_phase_table(const std::vector<double>& table, double scale);

  /// Applies rx(theta) to every qubit — the QAOA transverse-field mixer
  /// layer — iterating amplitude pairs directly (half the index space, no
  /// per-element branch) instead of one skip-half traversal per gate.
  void rx_layer(double theta);

  /// Rescales so norm() == 1, pinning the drift of long products of unit
  /// complex factors (deep-p QAOA); no-op on the zero vector.
  void renormalize();

  /// Sum of |amplitude|^2 (1 for any unitary evolution; tested invariant).
  double norm() const;

  /// Probability of each basis state.
  std::vector<double> probabilities() const;

  /// Samples `shots` basis states i.i.d. from the output distribution.
  std::vector<std::uint64_t> sample(std::size_t shots, Rng& rng) const;

 private:
  std::size_t num_qubits_;
  std::vector<Amplitude> amps_;
};

}  // namespace nck
