// Physical coupling maps for circuit-model devices. IBM's large machines
// use heavy-hex-style lattices: long rows of linearly coupled qubits joined
// by sparse bridge qubits. The 65-qubit instance reproduces the
// ibmq_brooklyn / ibmq_manhattan (Hummingbird) layout: alternating rows of
// 10/11 qubits with three bridges between consecutive rows.
#pragma once

#include "graph/graph.hpp"

namespace nck {

/// Heavy-hex style lattice with `rows` horizontal rows (>= 2). First and
/// last rows hold 10 qubits, middle rows 11; consecutive rows are joined by
/// 3 bridge qubits whose attachment points alternate between
/// {0, 4, 8} and {2, 6, 10} across gaps. rows == 5 gives the 65-qubit
/// Brooklyn-class map.
Graph heavy_hex_lattice(int rows);

/// The 65-qubit ibmq_brooklyn-class coupling map.
Graph brooklyn_coupling();

}  // namespace nck
