#include "circuit/transpiler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

namespace nck {
namespace {

// BFS order over the largest connected component, starting from the
// highest-degree vertex: a compact region for the initial layout.
std::vector<Graph::Vertex> bfs_region(const Graph& coupling) {
  const std::size_t n = coupling.num_vertices();
  std::vector<bool> seen(n, false);
  std::vector<Graph::Vertex> best_order;
  for (std::size_t start = 0; start < n; ++start) {
    if (seen[start]) continue;
    // BFS from the highest-degree unvisited vertex of this component.
    Graph::Vertex root = static_cast<Graph::Vertex>(start);
    // (component discovery and ordering in one pass)
    std::vector<Graph::Vertex> order;
    std::queue<Graph::Vertex> queue;
    queue.push(root);
    seen[root] = true;
    while (!queue.empty()) {
      const Graph::Vertex v = queue.front();
      queue.pop();
      order.push_back(v);
      // Deterministic neighbor order.
      std::vector<Graph::Vertex> nbrs(coupling.neighbors(v).begin(),
                                      coupling.neighbors(v).end());
      std::sort(nbrs.begin(), nbrs.end());
      for (Graph::Vertex w : nbrs) {
        if (!seen[w]) {
          seen[w] = true;
          queue.push(w);
        }
      }
    }
    if (order.size() > best_order.size()) best_order = std::move(order);
  }
  return best_order;
}

// All-pairs unnecessary; per-routing-step we need shortest paths from one
// vertex. Plain BFS since the coupling graph is unweighted.
std::vector<Graph::Vertex> shortest_path(const Graph& g, Graph::Vertex from,
                                         Graph::Vertex to) {
  std::vector<std::int64_t> parent(g.num_vertices(), -1);
  std::queue<Graph::Vertex> queue;
  queue.push(from);
  parent[from] = from;
  while (!queue.empty()) {
    const Graph::Vertex v = queue.front();
    queue.pop();
    if (v == to) break;
    for (Graph::Vertex w : g.neighbors(v)) {
      if (parent[w] == -1) {
        parent[w] = v;
        queue.push(w);
      }
    }
  }
  if (parent[to] == -1) return {};
  std::vector<Graph::Vertex> path{to};
  while (path.back() != from) {
    path.push_back(static_cast<Graph::Vertex>(parent[path.back()]));
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::optional<TranspileResult> transpile(const Circuit& logical,
                                         const Graph& coupling) {
  const std::size_t n = logical.num_qubits();
  const std::vector<Graph::Vertex> region = bfs_region(coupling);
  if (region.size() < n) return std::nullopt;

  // Interaction degree of each logical qubit (how many distinct partners).
  std::vector<std::size_t> partners(n, 0);
  {
    std::vector<std::vector<bool>> seen(n, std::vector<bool>(n, false));
    for (const Gate& g : logical.gates()) {
      if (!g.two_qubit()) continue;
      if (!seen[g.q0][g.q1]) {
        seen[g.q0][g.q1] = seen[g.q1][g.q0] = true;
        ++partners[g.q0];
        ++partners[g.q1];
      }
    }
  }
  std::vector<std::uint32_t> logical_order(n);
  std::iota(logical_order.begin(), logical_order.end(), 0);
  std::sort(logical_order.begin(), logical_order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return partners[a] > partners[b];
            });

  // layout: logical -> physical; phys_to_logical: inverse (-1 = free).
  std::vector<std::uint32_t> layout(n);
  std::vector<std::int64_t> phys_to_logical(coupling.num_vertices(), -1);
  for (std::size_t i = 0; i < n; ++i) {
    layout[logical_order[i]] = region[i];
    phys_to_logical[region[i]] = logical_order[i];
  }

  TranspileResult result{Circuit(coupling.num_vertices()), layout, 0, 0, 0, 0};
  Circuit& phys = result.physical;

  auto apply_swap = [&](Graph::Vertex a, Graph::Vertex b) {
    // SWAP in the CX basis.
    phys.cx(a, b);
    phys.cx(b, a);
    phys.cx(a, b);
    ++result.swap_count;
    const std::int64_t la = phys_to_logical[a];
    const std::int64_t lb = phys_to_logical[b];
    if (la >= 0) layout[static_cast<std::size_t>(la)] = b;
    if (lb >= 0) layout[static_cast<std::size_t>(lb)] = a;
    std::swap(phys_to_logical[a], phys_to_logical[b]);
  };

  for (const Gate& g : logical.gates()) {
    if (!g.two_qubit()) {
      const Graph::Vertex p = layout[g.q0];
      switch (g.kind) {
        case GateKind::kH: phys.h(p); break;
        case GateKind::kX: phys.x(p); break;
        case GateKind::kRX: phys.rx(p, g.angle); break;
        case GateKind::kRY: phys.ry(p, g.angle); break;
        case GateKind::kRZ: phys.rz(p, g.angle); break;
        default: break;
      }
      continue;
    }
    // Route q1's carrier next to q0's carrier.
    Graph::Vertex pa = layout[g.q0];
    Graph::Vertex pb = layout[g.q1];
    if (!coupling.has_edge(pa, pb)) {
      const auto path = shortest_path(coupling, pa, pb);
      if (path.empty()) return std::nullopt;  // disconnected carriers
      // Swap pb backwards along the path until adjacent to pa.
      for (std::size_t i = path.size() - 1; i >= 2; --i) {
        apply_swap(path[i], path[i - 1]);
      }
      pa = layout[g.q0];
      pb = layout[g.q1];
    }
    switch (g.kind) {
      case GateKind::kCX:
        phys.cx(pa, pb);
        break;
      case GateKind::kCZ:
        // CZ = H(target) CX H(target).
        phys.h(pb);
        phys.cx(pa, pb);
        phys.h(pb);
        break;
      case GateKind::kRZZ:
        // RZZ(theta) = CX RZ(theta) CX.
        phys.cx(pa, pb);
        phys.rz(pb, g.angle);
        phys.cx(pa, pb);
        break;
      case GateKind::kXY: {
        // XY(theta) = RXX(theta/2) RYY(theta/2); each factor is RZZ
        // conjugated into the right basis (4 CX total).
        const double half = g.angle / 2.0;
        // RXX: H-conjugated RZZ.
        phys.h(pa);
        phys.h(pb);
        phys.cx(pa, pb);
        phys.rz(pb, half);
        phys.cx(pa, pb);
        phys.h(pa);
        phys.h(pb);
        // RYY: RX(pi/2)-conjugated RZZ.
        phys.rx(pa, M_PI_2);
        phys.rx(pb, M_PI_2);
        phys.cx(pa, pb);
        phys.rz(pb, half);
        phys.cx(pa, pb);
        phys.rx(pa, -M_PI_2);
        phys.rx(pb, -M_PI_2);
        break;
      }
      case GateKind::kSwap:
        apply_swap(pa, pb);
        --result.swap_count;  // explicit user swap, not routing overhead
        break;
      default:
        break;
    }
  }

  result.layout = layout;
  result.depth = phys.depth();
  result.cx_count = 0;
  std::vector<bool> touched(coupling.num_vertices(), false);
  for (const Gate& g : phys.gates()) {
    if (g.kind == GateKind::kCX) ++result.cx_count;
    touched[g.q0] = true;
    if (g.two_qubit()) touched[g.q1] = true;
  }
  result.qubits_touched = static_cast<std::size_t>(
      std::count(touched.begin(), touched.end(), true));
  return result;
}

}  // namespace nck
