// Derivative-free classical optimizers for the QAOA outer loop. Nelder-Mead
// is the default (Qiskit's COBYLA analogue for our purposes: tens of
// objective evaluations, each a quantum "job"); SPSA is provided for the
// noisy-objective regime.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace nck {

using Objective = std::function<double(const std::vector<double>&)>;

struct OptimizeResult {
  std::vector<double> x;
  double value = 0.0;
  std::size_t evaluations = 0;  // objective calls ("jobs" in IBM terms)
};

struct NelderMeadOptions {
  std::size_t max_evaluations = 60;
  double initial_step = 0.4;
  double tolerance = 1e-4;  // simplex spread stopping criterion
};

OptimizeResult nelder_mead(const Objective& f, std::vector<double> x0,
                           const NelderMeadOptions& options = {});

struct SpsaOptions {
  std::size_t iterations = 40;
  double a = 0.2;   // step-size numerator
  double c = 0.15;  // perturbation size
  double alpha = 0.602;
  double gamma = 0.101;
  std::uint64_t seed = 1;
};

OptimizeResult spsa(const Objective& f, std::vector<double> x0,
                    const SpsaOptions& options = {});

}  // namespace nck
