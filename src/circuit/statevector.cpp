#include "circuit/statevector.hpp"

#include <omp.h>

#include <cmath>
#include <stdexcept>

namespace nck {

StateVector::StateVector(std::size_t num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits > kMaxQubits) {
    throw std::invalid_argument("StateVector: too many qubits");
  }
  amps_.assign(1ull << num_qubits, Amplitude(0.0, 0.0));
  amps_[0] = Amplitude(1.0, 0.0);
}

void StateVector::apply_1q(std::size_t q, const Amplitude u[4]) {
  const std::uint64_t stride = 1ull << q;
  const std::int64_t n = static_cast<std::int64_t>(amps_.size());
  const Amplitude u00 = u[0], u01 = u[1], u10 = u[2], u11 = u[3];
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    if (idx & stride) continue;  // handle each pair once, from the 0 side
    const Amplitude a0 = amps_[idx];
    const Amplitude a1 = amps_[idx | stride];
    amps_[idx] = u00 * a0 + u01 * a1;
    amps_[idx | stride] = u10 * a0 + u11 * a1;
  }
}

void StateVector::h(std::size_t q) {
  const double s = 1.0 / std::sqrt(2.0);
  const Amplitude u[4] = {{s, 0}, {s, 0}, {s, 0}, {-s, 0}};
  apply_1q(q, u);
}

void StateVector::x(std::size_t q) {
  const Amplitude u[4] = {{0, 0}, {1, 0}, {1, 0}, {0, 0}};
  apply_1q(q, u);
}

void StateVector::rx(std::size_t q, double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  const Amplitude u[4] = {{c, 0}, {0, -s}, {0, -s}, {c, 0}};
  apply_1q(q, u);
}

void StateVector::ry(std::size_t q, double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  const Amplitude u[4] = {{c, 0}, {-s, 0}, {s, 0}, {c, 0}};
  apply_1q(q, u);
}

void StateVector::rz(std::size_t q, double theta) {
  const Amplitude e0 = std::polar(1.0, -theta / 2);
  const Amplitude e1 = std::polar(1.0, theta / 2);
  const std::uint64_t stride = 1ull << q;
  const std::int64_t n = static_cast<std::int64_t>(amps_.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    amps_[idx] *= (idx & stride) ? e1 : e0;
  }
}

void StateVector::cx(std::size_t control, std::size_t target) {
  const std::uint64_t cbit = 1ull << control;
  const std::uint64_t tbit = 1ull << target;
  const std::int64_t n = static_cast<std::int64_t>(amps_.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    if ((idx & cbit) && !(idx & tbit)) {
      std::swap(amps_[idx], amps_[idx | tbit]);
    }
  }
}

void StateVector::cz(std::size_t a, std::size_t b) {
  const std::uint64_t mask = (1ull << a) | (1ull << b);
  const std::int64_t n = static_cast<std::int64_t>(amps_.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    if ((idx & mask) == mask) amps_[idx] = -amps_[idx];
  }
}

void StateVector::rzz(std::size_t a, std::size_t b, double theta) {
  const std::uint64_t abit = 1ull << a;
  const std::uint64_t bbit = 1ull << b;
  const Amplitude even = std::polar(1.0, -theta / 2);  // Z.Z eigenvalue +1
  const Amplitude odd = std::polar(1.0, theta / 2);    // Z.Z eigenvalue -1
  const std::int64_t n = static_cast<std::int64_t>(amps_.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    const bool parity = ((idx & abit) != 0) != ((idx & bbit) != 0);
    amps_[idx] *= parity ? odd : even;
  }
}

void StateVector::xy(std::size_t a, std::size_t b, double theta) {
  const std::uint64_t abit = 1ull << a;
  const std::uint64_t bbit = 1ull << b;
  const double c = std::cos(theta / 2);
  const Amplitude ms(0.0, -std::sin(theta / 2));
  const std::int64_t n = static_cast<std::int64_t>(amps_.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    // Touch each {|01>, |10>} pair once, from the a-set/b-clear side.
    if ((idx & abit) && !(idx & bbit)) {
      const std::uint64_t other = (idx & ~abit) | bbit;
      const Amplitude hi = amps_[idx];
      const Amplitude lo = amps_[other];
      amps_[idx] = c * hi + ms * lo;
      amps_[other] = ms * hi + c * lo;
    }
  }
}

void StateVector::swap(std::size_t a, std::size_t b) {
  const std::uint64_t abit = 1ull << a;
  const std::uint64_t bbit = 1ull << b;
  const std::int64_t n = static_cast<std::int64_t>(amps_.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    if ((idx & abit) && !(idx & bbit)) {
      std::swap(amps_[idx], amps_[(idx & ~abit) | bbit]);
    }
  }
}

void StateVector::fill_uniform() {
  const double a = 1.0 / std::sqrt(static_cast<double>(amps_.size()));
  const std::int64_t n = static_cast<std::int64_t>(amps_.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    amps_[static_cast<std::uint64_t>(i)] = Amplitude(a, 0.0);
  }
}

void StateVector::apply_phase_table(const std::vector<double>& table,
                                    double scale) {
  if (table.size() != amps_.size()) {
    throw std::invalid_argument("apply_phase_table: table size mismatch");
  }
  const std::int64_t n = static_cast<std::int64_t>(amps_.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    amps_[idx] *= std::polar(1.0, -scale * table[idx]);
  }
}

void StateVector::rx_layer(double theta) {
  const double c = std::cos(theta / 2);
  const Amplitude ms(0.0, -std::sin(theta / 2));
  for (std::size_t q = 0; q < num_qubits_; ++q) {
    const std::uint64_t stride = 1ull << q;
    const std::int64_t pairs = static_cast<std::int64_t>(amps_.size() >> 1);
#pragma omp parallel for schedule(static)
    for (std::int64_t p = 0; p < pairs; ++p) {
      const auto k = static_cast<std::uint64_t>(p);
      // Interleave the pair index around bit q: low bits stay, high bits
      // shift up one, leaving bit q clear for the |0> side of the pair.
      const std::uint64_t lo = ((k & ~(stride - 1)) << 1) | (k & (stride - 1));
      const std::uint64_t hi = lo | stride;
      const Amplitude a0 = amps_[lo];
      const Amplitude a1 = amps_[hi];
      amps_[lo] = c * a0 + ms * a1;
      amps_[hi] = ms * a0 + c * a1;
    }
  }
}

void StateVector::renormalize() {
  const double total = norm();
  if (total <= 0.0) return;
  const double inv = 1.0 / std::sqrt(total);
  const std::int64_t n = static_cast<std::int64_t>(amps_.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    amps_[static_cast<std::uint64_t>(i)] *= inv;
  }
}

double StateVector::norm() const {
  double total = 0.0;
  const std::int64_t n = static_cast<std::int64_t>(amps_.size());
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::int64_t i = 0; i < n; ++i) {
    total += std::norm(amps_[static_cast<std::uint64_t>(i)]);
  }
  return total;
}

std::vector<double> StateVector::probabilities() const {
  std::vector<double> p(amps_.size());
  const std::int64_t n = static_cast<std::int64_t>(amps_.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    p[static_cast<std::uint64_t>(i)] =
        std::norm(amps_[static_cast<std::uint64_t>(i)]);
  }
  return p;
}

std::vector<std::uint64_t> StateVector::sample(std::size_t shots,
                                               Rng& rng) const {
  // Cumulative inverse sampling; the CDF build dominates, so shots are cheap.
  std::vector<double> cdf(amps_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::norm(amps_[i]);
    cdf[i] = acc;
  }
  std::vector<std::uint64_t> out(shots);
  for (std::size_t s = 0; s < shots; ++s) {
    const double r = rng.uniform() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    out[s] = static_cast<std::uint64_t>(it - cdf.begin());
  }
  return out;
}

}  // namespace nck
