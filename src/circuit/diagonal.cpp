#include "circuit/diagonal.hpp"

#include <omp.h>

#include <stdexcept>

namespace nck {

DiagonalCost::DiagonalCost(const IsingModel& ising, std::size_t num_qubits)
    : num_qubits_(num_qubits) {
  if (num_qubits > StateVector::kMaxQubits) {
    throw std::invalid_argument("DiagonalCost: too many qubits");
  }
  table_.assign(1ull << num_qubits, 0.0);
  const std::int64_t dim = static_cast<std::int64_t>(table_.size());
  // One unit-stride pass per nonzero term: the field h_q adds +-h_q by
  // bit q, the coupler J_ab adds +-J_ab by the parity of bits a and b.
  for (std::size_t q = 0; q < ising.h.size(); ++q) {
    const double hq = ising.h[q];
    if (hq == 0.0) continue;
    if (q >= num_qubits) {
      throw std::invalid_argument("DiagonalCost: field index out of range");
    }
    const std::uint64_t qbit = 1ull << q;
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < dim; ++i) {
      const auto z = static_cast<std::uint64_t>(i);
      table_[z] += (z & qbit) != 0 ? hq : -hq;
    }
  }
  for (const auto& [a, b, w] : ising.j) {
    if (w == 0.0) continue;
    if (a >= num_qubits || b >= num_qubits) {
      throw std::invalid_argument("DiagonalCost: coupler index out of range");
    }
    const std::uint64_t abit = 1ull << a;
    const std::uint64_t bbit = 1ull << b;
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < dim; ++i) {
      const auto z = static_cast<std::uint64_t>(i);
      const bool parity = ((z & abit) != 0) != ((z & bbit) != 0);
      table_[z] += parity ? -w : w;  // s_a s_b = +1 iff the bits agree
    }
  }
}

void DiagonalCost::apply(StateVector& state, double gamma) const {
  state.apply_phase_table(table_, gamma);
}

void DiagonalCost::evolve_qaoa(StateVector& state,
                               const std::vector<double>& params) const {
  if (params.size() % 2 != 0 || params.empty()) {
    throw std::invalid_argument("evolve_qaoa: need 2p parameters");
  }
  state.fill_uniform();
  for (std::size_t layer = 0; layer < params.size() / 2; ++layer) {
    apply(state, params[2 * layer]);
    state.rx_layer(2.0 * params[2 * layer + 1]);
  }
  state.renormalize();
}

}  // namespace nck
