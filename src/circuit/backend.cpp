#include "circuit/backend.hpp"

#include <algorithm>
#include <numeric>

#include "util/timer.hpp"

namespace nck {

std::size_t CircuitPrepared::bytes() const noexcept {
  std::size_t total = sizeof(CircuitPrepared);
  total += compiled.qubo.num_variables() * sizeof(double);
  total += compiled.qubo.num_quadratic_terms() * 3 * sizeof(double);
  total += qaoa.ising.h.capacity() * sizeof(double);
  total += qaoa.ising.j.capacity() *
           sizeof(std::tuple<Qubo::Var, Qubo::Var, double>);
  for (const Constraint& c : env.constraints()) {
    total += c.collection().capacity() * sizeof(VarId);
    total += c.distinct_vars().capacity() * sizeof(VarId);
  }
  return total;
}

CircuitPrepared prepare_circuit_backend(const Env& env, const Graph& coupling,
                                        SynthEngine& engine,
                                        const CircuitBackendOptions& options,
                                        obs::Trace* trace) {
  CircuitPrepared prepared;
  prepared.env = env;

  Timer compile_timer;
  prepared.compiled = compile(env, engine, options.compile, trace);
  prepared.compile_ms = compile_timer.milliseconds();

  if (prepared.compiled.num_qubo_vars() > coupling.num_vertices()) {
    return prepared;  // fits == false: more variables than physical qubits
  }
  try {
    prepared.qaoa =
        prepare_qaoa(prepared.compiled.qubo, coupling, options.qaoa, trace);
  } catch (const std::invalid_argument&) {
    return prepared;  // device region too small after layout
  }
  prepared.fits = true;
  return prepared;
}

CircuitOutcome execute_circuit_backend(const CircuitPrepared& prepared,
                                       Rng& rng,
                                       const CircuitBackendOptions& options,
                                       obs::Trace* trace) {
  CircuitOutcome outcome;
  outcome.client_compile_ms = prepared.compile_ms;
  outcome.qubits_used = prepared.compiled.num_qubo_vars();

  if (!prepared.fits) return outcome;  // fits == false

  if (options.faults) {
    // Session faults surface at submission / first execution, before any
    // server time is spent (the job never leaves the queue). Note: `rng`
    // is untouched until both gates pass.
    if (const auto fault = options.faults->submit_fault()) {
      outcome.fault = fault;
      obs::count(trace, std::string("resilience.fault.") + fault_name(*fault));
      return outcome;
    }
    if (options.faults->execution_fault()) {
      outcome.fault = FaultKind::kExecutionError;
      obs::count(trace, "resilience.fault.execution-error");
      return outcome;
    }
  }

  const QaoaResult qaoa = run_qaoa_prepared(prepared.compiled.qubo,
                                            prepared.qaoa, options.qaoa, rng,
                                            trace);
  outcome.fits = true;
  outcome.qubits_touched = qaoa.qubits_touched;
  outcome.depth = qaoa.depth;
  outcome.cx_count = qaoa.cx_count;
  outcome.num_jobs = qaoa.num_jobs;
  outcome.fidelity = qaoa.fidelity;
  outcome.mode = qaoa.mode;

  // Order samples by energy so samples.front() is the reported result.
  std::vector<std::size_t> order(qaoa.samples.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return qaoa.energies[a] < qaoa.energies[b];
  });
  outcome.samples.reserve(order.size());
  outcome.evaluations.reserve(order.size());
  for (std::size_t idx : order) {
    std::vector<bool> program_vars(
        qaoa.samples[idx].begin(),
        qaoa.samples[idx].begin() +
            static_cast<std::ptrdiff_t>(prepared.compiled.num_problem_vars));
    outcome.evaluations.push_back(prepared.env.evaluate(program_vars));
    outcome.samples.push_back(std::move(program_vars));
  }

  outcome.job_seconds.reserve(outcome.num_jobs);
  double total = options.timing.server_overhead_s;
  double job_total = 0.0;
  for (std::size_t j = 0; j < outcome.num_jobs; ++j) {
    const double t = options.timing.job_seconds(rng);
    outcome.job_seconds.push_back(t);
    job_total += t;
    total += t + options.timing.optimizer_s_per_job;
  }
  outcome.total_seconds = total;
  if (trace) {
    obs::Registry& reg = trace->registry();
    reg.add("qaoa.jobs", static_cast<double>(outcome.num_jobs));
    trace->record_modeled("device.server_overhead",
                          options.timing.server_overhead_s * 1e6);
    trace->record_modeled("device.jobs", job_total * 1e6);
  }
  return outcome;
}

CircuitOutcome run_circuit_backend(const Env& env, const Graph& coupling,
                                   SynthEngine& engine, Rng& rng,
                                   const CircuitBackendOptions& options,
                                   obs::Trace* trace) {
  const CircuitPrepared prepared =
      prepare_circuit_backend(env, coupling, engine, options, trace);
  return execute_circuit_backend(prepared, rng, options, trace);
}

}  // namespace nck
