#include "circuit/aoa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuit/diagonal.hpp"

namespace nck {

std::size_t OneHotGroups::num_qubits() const {
  std::size_t n = 0;
  for (const auto& g : groups) n += g.size();
  return n;
}

void OneHotGroups::validate(std::size_t total_qubits) const {
  std::vector<bool> seen(total_qubits, false);
  for (const auto& g : groups) {
    if (g.empty()) {
      throw std::invalid_argument("OneHotGroups: empty group");
    }
    for (Qubo::Var v : g) {
      if (v >= total_qubits) {
        throw std::invalid_argument("OneHotGroups: variable out of range");
      }
      if (seen[v]) {
        throw std::invalid_argument("OneHotGroups: groups must be disjoint");
      }
      seen[v] = true;
    }
  }
}

namespace {

// W-state preparation on a group: X on the first qubit, then a chain of
// Givens (XY) rotations peeling off amplitude so that every one-hot basis
// state of the group ends with probability 1/k. (Each hop contributes a -i
// phase; the mixer preserves the subspace regardless.)
void prepare_w_state(Circuit& circuit, const std::vector<Qubo::Var>& group) {
  const std::size_t k = group.size();
  circuit.x(group[0]);
  for (std::size_t j = 1; j < k; ++j) {
    // Keep probability 1/(k-j+1) of what remains at position j-1.
    const double keep = 1.0 / std::sqrt(static_cast<double>(k - j + 1));
    const double theta = 2.0 * std::acos(keep);
    circuit.xy(group[j - 1], group[j], theta);
  }
}

}  // namespace

Circuit build_aoa_circuit(const IsingModel& conflict_cost,
                          const OneHotGroups& groups,
                          const std::vector<double>& params) {
  if (params.size() % 2 != 0 || params.empty()) {
    throw std::invalid_argument("build_aoa_circuit: need 2p parameters");
  }
  const std::size_t n = conflict_cost.num_spins();
  Circuit circuit(n);
  for (const auto& group : groups.groups) prepare_w_state(circuit, group);

  for (std::size_t layer = 0; layer < params.size() / 2; ++layer) {
    const double gamma = params[2 * layer];
    const double beta = params[2 * layer + 1];
    // Phase separator over the conflict Hamiltonian only.
    for (const auto& [a, b, j] : conflict_cost.j) {
      if (j != 0.0) circuit.rzz(a, b, 2.0 * gamma * j);
    }
    for (std::uint32_t q = 0; q < n; ++q) {
      // theta = -2 gamma h for e^{-i gamma h s}; see build_qaoa_circuit.
      if (conflict_cost.h[q] != 0.0) {
        circuit.rz(q, -2.0 * gamma * conflict_cost.h[q]);
      }
    }
    // XY ring mixer per group (a single XY suffices for pairs).
    for (const auto& group : groups.groups) {
      const std::size_t k = group.size();
      if (k < 2) continue;
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t next = (i + 1) % k;
        if (k == 2 && i == 1) break;  // avoid the duplicate pair edge
        circuit.xy(group[i], group[next], 2.0 * beta);
      }
    }
  }
  return circuit;
}

QaoaResult run_aoa(const Qubo& conflict_qubo, const Qubo& eval_qubo,
                   const OneHotGroups& groups, const Graph& coupling,
                   const QaoaOptions& options, Rng& rng) {
  const std::size_t n =
      std::max(conflict_qubo.num_variables(), eval_qubo.num_variables());
  groups.validate(n);
  if (n > options.max_sim_qubits || n > StateVector::kMaxQubits) {
    throw std::invalid_argument("run_aoa: problem too wide to simulate");
  }

  QaoaResult result;
  result.qubits = n;
  result.mode = "xy-mixer-aoa";
  IsingModel conflict = qubo_to_ising(conflict_qubo);
  conflict.h.resize(n, 0.0);

  // Transpiled metrics from a probe circuit.
  const std::vector<double> probe(static_cast<std::size_t>(2 * options.p), 0.5);
  const Circuit probe_circuit = build_aoa_circuit(conflict, groups, probe);
  const auto transpiled = transpile(probe_circuit, coupling);
  if (!transpiled) {
    throw std::invalid_argument("run_aoa: circuit does not fit the device");
  }
  result.depth = transpiled->depth;
  result.cx_count = transpiled->cx_count;
  result.swap_count = transpiled->swap_count;
  result.qubits_touched = transpiled->qubits_touched;
  const std::size_t n_1q = transpiled->physical.num_gates() -
                           transpiled->physical.num_two_qubit_gates();
  result.fidelity = options.noise.fidelity(n_1q, result.cx_count);

  // Fused phase separator: the conflict Hamiltonian's RZZ/RZ diagonal is a
  // precomputed table applied in one pass per layer; the W-state prep is
  // angle-independent, so its circuit is built once outside the optimizer
  // loop, and only the XY ring mixers run gate-by-gate.
  const DiagonalCost cost(conflict, n);
  Circuit prep(n);
  for (const auto& group : groups.groups) prepare_w_state(prep, group);

  auto sample_circuit = [&](const std::vector<double>& params,
                            std::size_t shots) {
    StateVector state(n);
    prep.run(state);
    for (std::size_t layer = 0; layer < params.size() / 2; ++layer) {
      const double gamma = params[2 * layer];
      const double beta = params[2 * layer + 1];
      cost.apply(state, gamma);
      // XY ring mixer per group (a single XY suffices for pairs).
      for (const auto& group : groups.groups) {
        const std::size_t k = group.size();
        if (k < 2) continue;
        for (std::size_t i = 0; i < k; ++i) {
          const std::size_t next = (i + 1) % k;
          if (k == 2 && i == 1) break;  // avoid the duplicate pair edge
          state.xy(group[i], group[next], 2.0 * beta);
        }
      }
    }
    state.renormalize();
    const auto basis = state.sample(shots, rng);
    std::vector<std::vector<bool>> out;
    out.reserve(basis.size());
    for (std::uint64_t b : basis) {
      std::vector<bool> x(n);
      for (std::size_t i = 0; i < n; ++i) x[i] = (b >> i) & 1u;
      out.push_back(std::move(x));
    }
    // Same noise channel as standard QAOA; note depolarized shots may leave
    // the one-hot subspace, exactly as they would on hardware.
    for (auto& shot : out) {
      if (!rng.bernoulli(result.fidelity)) {
        for (std::size_t i = 0; i < shot.size(); ++i) {
          shot[i] = rng.bernoulli(0.5);
        }
      } else if (options.noise.readout_flip > 0.0) {
        for (std::size_t i = 0; i < shot.size(); ++i) {
          if (rng.bernoulli(options.noise.readout_flip)) shot[i] = !shot[i];
        }
      }
    }
    return out;
  };

  const Objective objective = [&](const std::vector<double>& params) {
    const auto shots = sample_circuit(
        params, std::max<std::size_t>(256, options.shots / 8));
    double mean = 0.0;
    for (const auto& shot : shots) mean += eval_qubo.energy(shot);
    return mean / static_cast<double>(shots.size());
  };
  std::vector<double> x0(static_cast<std::size_t>(2 * options.p));
  for (std::size_t i = 0; i < x0.size(); ++i) {
    x0[i] = i % 2 == 0 ? 0.6 : 0.5;
  }
  const OptimizeResult opt = nelder_mead(objective, x0, options.optimizer);
  result.samples = sample_circuit(opt.x, options.shots);
  result.num_jobs = opt.evaluations + 1;

  result.energies.reserve(result.samples.size());
  double best = std::numeric_limits<double>::infinity();
  for (const auto& s : result.samples) {
    const double e = eval_qubo.energy(s);
    result.energies.push_back(e);
    best = std::min(best, e);
  }
  result.best_energy = best;
  return result;
}

}  // namespace nck
