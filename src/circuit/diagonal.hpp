// Fused diagonal cost kernel for QAOA-style circuits (DESIGN.md §3g). The
// RZZ/RZ layer of each cost step is the diagonal unitary exp(-i gamma H_C),
// so instead of one state-vector traversal per gate the Ising energy table
// E(z) is precomputed once per problem and every cost layer becomes a single
// phase pass; the optimizer's repeated evolutions reuse the same table.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/statevector.hpp"
#include "qubo/ising.hpp"

namespace nck {

class DiagonalCost {
 public:
  /// Tabulates E(z) = sum_q h_q s_q + sum_{a<b} J_ab s_a s_b for every
  /// basis state z, with bit q of z set meaning s_q = +1 (the repo-wide
  /// x = (1+s)/2 convention). The model offset is excluded — it is a
  /// global phase. Throws for num_qubits > StateVector::kMaxQubits or a
  /// coupler index out of range.
  DiagonalCost(const IsingModel& ising, std::size_t num_qubits);

  std::size_t num_qubits() const noexcept { return num_qubits_; }
  const std::vector<double>& table() const noexcept { return table_; }

  /// One fused cost layer: amps[z] *= exp(-i gamma E(z)) — matches the
  /// per-gate RZZ/RZ sequence of build_qaoa_circuit exactly (up to
  /// floating-point association).
  void apply(StateVector& state, double gamma) const;

  /// The full fused QAOA evolution: |+>^n via fill_uniform, then per layer
  /// one fused cost pass and one vectorized RX mixer layer, then a final
  /// renormalize to pin ||psi|| against unit-factor drift at deep p.
  /// params = {gamma_1, beta_1, ..., gamma_p, beta_p}.
  void evolve_qaoa(StateVector& state, const std::vector<double>& params) const;

 private:
  std::size_t num_qubits_;
  std::vector<double> table_;
};

}  // namespace nck
